// kconv-scope metrics registry (docs/MODEL.md §11).
//
// One shared implementation of the serving stack's quantitative telemetry:
// counters, gauges, and log-bucketed latency histograms, rolled up per
// (network, shape, mode) group. Two properties drive the design:
//
//  * DETERMINISM — a Metrics delta is built per request and merged into the
//    registry in request-index order (the §5a stats-shard discipline), so
//    every value is bit-identical across worker-thread counts. Merging is
//    a pure function of the merged multiset: any association order of the
//    same deltas produces the same state (pinned by the associativity
//    tests in tests/obs/metrics_test.cpp).
//
//  * EXACT PERCENTILES — a Histogram keeps sqrt(2)-spaced log buckets (the
//    mergeable, snapshot-friendly shape) AND the exact sorted sample
//    multiset up to kExactCap entries. While under the cap, percentile()
//    is the nearest-rank statistic of the true samples — bit-equal to a
//    sorted-vector oracle, which is what lets one implementation replace
//    the ad-hoc percentile code in bench_serving and the serving CLI
//    without changing a digit. Past the cap it degrades to the containing
//    bucket's upper bound (bounded relative error, still deterministic).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace kconv::obs {

/// Log-bucketed histogram with an exact-sample tier.
class Histogram {
 public:
  /// Exact-tier capacity: below this many samples percentile() is the true
  /// nearest-rank order statistic. 16k doubles = 128 KiB worst case — cheap
  /// against serving traffic where one sample is one whole request.
  static constexpr std::size_t kExactCap = 16384;

  /// Bucket boundaries are sqrt(2)-spaced from 1 microsecond: bucket b
  /// covers (upper(b-1), upper(b)] with upper(b) = 1e-6 * 2^(b/2) seconds.
  /// Non-positive samples land in the dedicated kUnderflow bucket.
  static constexpr i32 kUnderflow = -1000;
  static i32 bucket_of(double v);
  static double bucket_upper(i32 bucket);

  void add(double v);
  void merge(const Histogram& o);

  u64 count() const { return count_; }
  /// Canonical (sorted-order) accumulation while exact(), so the value is a
  /// pure function of the sample multiset; running total after the spill.
  double sum() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// True while percentile() serves exact order statistics.
  bool exact() const { return exact_; }

  /// Nearest-rank percentile, q in [0, 1]: the ceil(q*n)-th smallest sample
  /// (clamped to the extremes; 0 on an empty histogram). Matches
  /// sorted[min(n-1, ceil(q*n)-1)] exactly while exact() holds; serves the
  /// containing bucket's upper bound after the exact tier spills.
  double percentile(double q) const;

  /// Occupied buckets in ascending bucket order.
  const std::map<i32, u64>& buckets() const { return buckets_; }

  /// {"count":N,"sum":S,"min":m,"max":M,"exact":b,"p50":..,"p95":..,
  ///  "p99":..,"buckets":[[b,n],...]} — the metrics.jsonl shape.
  std::string to_json() const;

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool exact_ = true;
  std::vector<double> samples_;  // sorted while exact_
  std::map<i32, u64> buckets_;
};

/// One roll-up group's metrics: named counters (monotone adds), gauges
/// (high-water marks — the deterministic merge of "current depth" style
/// observations), and histograms.
struct Metrics {
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;  // merged by max
  std::map<std::string, Histogram> hists;

  void count(const std::string& name, u64 v = 1) { counters[name] += v; }
  void gauge_max(const std::string& name, double v);
  Histogram& hist(const std::string& name) { return hists[name]; }

  void merge(const Metrics& o);
};

/// Identity of one roll-up group. Ordered so registry iteration (and the
/// metrics.jsonl line order) is deterministic.
struct MetricsKey {
  std::string network;
  std::string shape;  ///< "CxHxW" of the request input
  std::string mode;   ///< "cold" | "warm_replay" | "warm_analytic"
  bool operator<(const MetricsKey& o) const {
    if (network != o.network) return network < o.network;
    if (shape != o.shape) return shape < o.shape;
    return mode < o.mode;
  }
};

/// The per-(network, shape, mode) roll-up. NOT thread-safe: callers merge
/// deltas in a deterministic order under their own lock (TelemetrySink
/// serializes for the serving driver).
class MetricsRegistry {
 public:
  Metrics& group(const MetricsKey& key) { return groups_[key]; }
  void merge(const MetricsKey& key, const Metrics& delta) {
    groups_[key].merge(delta);
  }

  const std::map<MetricsKey, Metrics>& groups() const { return groups_; }

  /// One JSONL line per group:
  /// {"snapshot":k,"network":..,"shape":..,"mode":..,"counters":{..},
  ///  "gauges":{..},"histograms":{..}}
  std::string snapshot_jsonl(u64 snapshot) const;

 private:
  std::map<MetricsKey, Metrics> groups_;
};

}  // namespace kconv::obs
