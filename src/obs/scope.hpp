// kconv-scope: request-scoped tracing for the serving stack
// (docs/MODEL.md §11).
//
// A TelemetrySink is a purely observational side channel: it mints span IDs,
// appends structured events to <dir>/events.jsonl, owns the MetricsRegistry
// snapshotted to <dir>/metrics.jsonl, and retains span/device-lane records in
// memory for the unified Chrome trace export. Nothing in the simulator reads
// it back — the house invariant (outputs and scheduling-invariant counters
// byte-identical with telemetry on or off) holds because every hook is a
// guarded append.
//
// Propagation is by value: a TelemetryScope {sink, trace, parent} rides in
// sim::LaunchOptions. The serving driver mints trace = request id and a
// request span at enqueue; run_graph opens a span per node and re-parents the
// scope it hands to conv2d/launch; launch_impl opens the launch span, records
// the §5d plan-cache outcome, and one event per fleet device chunk. A default
// scope (null sink) turns every hook into a no-op.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/obs/metrics.hpp"

namespace kconv::obs {

/// Running totals over the §5d plan-cache outcome taxonomy. One counter per
/// status string PlanCache::load_view (and launch_impl) can report, plus
/// `unplanned` for launches with no plan store configured — so total() always
/// equals the number of conv launches observed.
struct PlanCacheTaxonomy {
  u64 hit = 0;
  u64 miss = 0;
  u64 corrupt = 0;
  u64 corrupt_payload = 0;
  u64 stale_version = 0;
  u64 stale_key = 0;
  u64 stale_arch = 0;
  u64 stale_config = 0;
  u64 stale_trace_level = 0;
  u64 stale_static_signature = 0;
  u64 disabled = 0;
  u64 unplanned = 0;  ///< launch ran with no plan store at all

  /// Maps a LaunchResult::plan_cache_status string ("" → unplanned; unknown
  /// strings conservatively count as corrupt so total() stays exhaustive).
  void add(const std::string& status, u64 n = 1);
  u64 total() const;
  u64 stale_total() const {
    return stale_version + stale_key + stale_arch + stale_config +
           stale_trace_level + stale_static_signature;
  }
  u64 miss_total() const { return total() - hit; }
  PlanCacheTaxonomy& operator+=(const PlanCacheTaxonomy& o);
};

/// One completed (or still-open, end_us < 0) span.
struct SpanRecord {
  u64 trace = 0;   ///< request id; 0 = driver-level (batch lane)
  u64 span = 0;    ///< unique within the sink, minted from 1
  u64 parent = 0;  ///< 0 = root
  std::string tier;  ///< "serving" | "graph" | "launch"
  std::string name;
  std::string args_json;  ///< "" or a JSON object literal
  double begin_us = 0.0;
  double end_us = -1.0;
};

/// One priced interval on a device lane of the unified trace: transfer time
/// from the chunk's TransferLedger or its modeled compute time. Lane
/// placement uses a per-device cursor so each track is monotone regardless
/// of worker-thread arrival order.
struct DeviceLaneSlice {
  u32 device = 0;
  bool transfer = false;  ///< true = transfer lane, false = compute lane
  std::string name;
  double begin_us = 0.0;
  double dur_us = 0.0;
  u64 bytes = 0;
};

/// Thread-safe JSONL event sink + metrics owner. Construction creates the
/// output directory and opens events.jsonl / metrics.jsonl for writing,
/// throwing kconv::Error if the directory is unusable (the CLI maps that to
/// exit 2, mirroring the PlanCache probe).
class TelemetrySink {
 public:
  explicit TelemetrySink(std::string dir);
  ~TelemetrySink();
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  const std::string& dir() const { return dir_; }

  /// Opens a span and appends its span_begin event. Returns the span id.
  u64 begin_span(u64 trace, u64 parent, const char* tier,
                 const std::string& name, std::string args_json = {});
  void end_span(u64 span);

  /// §5d plan-cache outcome for one launch ("" normalises to "unplanned").
  void plan_cache_event(u64 trace, u64 span, const std::string& status,
                        u64 blocks_replayed);
  /// Per-device fleet chunk: ledger byte totals, priced transfer vs modeled
  /// compute seconds, and the communication-bound flag. Also extends the
  /// device's transfer + compute lanes for the unified trace.
  void fleet_device_event(u64 trace, u64 span, u32 device, u64 blocks,
                          u64 h2d_bytes, u64 d2h_bytes, u64 d2d_bytes,
                          double transfer_s, double compute_s,
                          double comm_ratio);
  /// Arena slot assignment for one graph node output; reused = true when the
  /// liveness planner recycled a previously occupied slot.
  void arena_event(u64 trace, u64 span, const std::string& node, i64 slot,
                   bool reused, u64 bytes);

  /// Merge one deterministic delta into a registry group. Serialized by the
  /// sink mutex; callers are responsible for calling in index order.
  void merge_metrics(const MetricsKey& key, const Metrics& delta);
  /// Appends one snapshot (all groups) to metrics.jsonl.
  void snapshot_metrics();

  u64 events_written() const;
  u64 snapshots_written() const;
  u64 open_spans() const;
  std::vector<SpanRecord> spans() const;
  std::vector<DeviceLaneSlice> device_slices() const;
  MetricsRegistry metrics_copy() const;

  /// Monotonic microseconds since sink construction.
  double now_us() const;

 private:
  void write_line(const std::string& line);  // callers hold mu_

  std::string dir_;
  std::FILE* events_ = nullptr;
  std::FILE* metrics_file_ = nullptr;
  mutable std::mutex mu_;
  u64 next_span_ = 1;
  u64 events_written_ = 0;
  u64 snapshots_ = 0;
  u64 open_ = 0;
  std::vector<SpanRecord> spans_;
  std::map<u64, std::size_t> span_index_;
  std::vector<DeviceLaneSlice> device_slices_;
  std::map<u32, double> device_cursor_us_;
  MetricsRegistry registry_;
  i64 epoch_ns_ = 0;
};

/// Value-propagated handle threaded through LaunchOptions. Default state is
/// "off": every instrumentation site guards on on().
struct TelemetryScope {
  TelemetrySink* sink = nullptr;
  u64 trace = 0;   ///< request id this work belongs to
  u64 parent = 0;  ///< enclosing span id
  bool on() const { return sink != nullptr; }
  /// Scope for work nested under `span`.
  TelemetryScope child(u64 span) const { return TelemetryScope{sink, trace, span}; }
};

}  // namespace kconv::obs
