#include "src/obs/telemetry_report.hpp"

#include "src/common/strutil.hpp"

namespace kconv::obs {

std::vector<HealthVerdict> health_verdicts(const ServingTelemetry& t) {
  std::vector<HealthVerdict> out;

  {
    HealthVerdict v;
    v.name = "warm-path";
    const double r = t.warm_path_ratio();
    if (t.requests == 0) {
      v.verdict = "idle";
      v.detail = "no requests observed";
    } else if (r >= 0.5) {
      v.verdict = "warm";
      v.detail = strf(
          "%.0f%% of requests rode the plan-replay/analytic fast paths "
          "(MODEL.md §5d): steady-state traffic amortizes Li et al.'s "
          "per-launch capture cost (PAPER.md)",
          r * 100.0);
    } else {
      v.verdict = "cold-dominated";
      v.detail = strf(
          "only %.0f%% of requests avoided cold capture: the memory-"
          "efficiency win Li et al. argue for (PAPER.md) is re-paid per "
          "request until the plan store warms",
          r * 100.0);
    }
    out.push_back(std::move(v));
  }

  {
    HealthVerdict v;
    v.name = "communication";
    if (t.fleet_device_chunks == 0) {
      v.verdict = "single-device";
      v.detail = "no fleet device chunks observed";
    } else if (t.comm_bound_devices == 0) {
      v.verdict = "compute-bound";
      v.detail = strf(
          "all %llu device chunks spent more modeled time computing than "
          "moving bytes: traffic stays inside the Demmel-Dinh "
          "communication lower bound regime (PAPERS.md)",
          (unsigned long long)t.fleet_device_chunks);
    } else {
      v.verdict = "communication-bound";
      v.detail = strf(
          "%llu of %llu device chunks were communication-bound (modeled "
          "transfer > compute): per Demmel-Dinh (PAPERS.md), shrink halo "
          "traffic or coarsen the shard before adding devices",
          (unsigned long long)t.comm_bound_devices,
          (unsigned long long)t.fleet_device_chunks);
    }
    out.push_back(std::move(v));
  }

  {
    HealthVerdict v;
    v.name = "plan-churn";
    const double churn = t.eviction_churn();
    if (t.plan_stores == 0) {
      v.verdict = "no-store";
      v.detail = "no plan-cache stores observed";
    } else if (churn > 0.5) {
      v.verdict = "thrashing";
      v.detail = strf(
          "%.2f evictions per store: the byte budget cannot hold the "
          "serving working set, so §5d replay keeps degrading to "
          "re-capture (eviction only costs a re-capture, but sustained "
          "churn forfeits the warm path entirely)",
          churn);
    } else {
      v.verdict = "stable";
      v.detail = strf("%.2f evictions per store: the plan store retains "
                      "the working set",
                      churn);
    }
    out.push_back(std::move(v));
  }

  return out;
}

std::string taxonomy_to_json(const PlanCacheTaxonomy& t, u64 stores,
                             u64 evictions) {
  return strf(
      "{\"launches\": %llu, \"hit\": %llu, \"miss\": %llu, "
      "\"corrupt\": %llu, \"corrupt_payload\": %llu, "
      "\"stale_version\": %llu, \"stale_key\": %llu, \"stale_arch\": %llu, "
      "\"stale_config\": %llu, \"stale_trace_level\": %llu, "
      "\"stale_static_signature\": %llu, \"disabled\": %llu, "
      "\"unplanned\": %llu, \"stores\": %llu, \"evictions\": %llu}",
      (unsigned long long)t.total(), (unsigned long long)t.hit,
      (unsigned long long)t.miss, (unsigned long long)t.corrupt,
      (unsigned long long)t.corrupt_payload,
      (unsigned long long)t.stale_version, (unsigned long long)t.stale_key,
      (unsigned long long)t.stale_arch, (unsigned long long)t.stale_config,
      (unsigned long long)t.stale_trace_level,
      (unsigned long long)t.stale_static_signature,
      (unsigned long long)t.disabled, (unsigned long long)t.unplanned,
      (unsigned long long)stores, (unsigned long long)evictions);
}

std::string telemetry_to_json(const ServingTelemetry& t, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  auto line = [&](const std::string& body, bool last = false) {
    out += pad + "  " + body + (last ? "\n" : ",\n");
  };
  line(strf("\"dir\": \"%s\"", t.dir.c_str()));
  line(strf("\"events\": %llu", (unsigned long long)t.events));
  line(strf("\"snapshots\": %llu", (unsigned long long)t.snapshots));
  line(strf("\"metric_groups\": %llu", (unsigned long long)t.metric_groups));
  line(strf("\"requests\": %llu", (unsigned long long)t.requests));
  line(strf("\"batches\": %llu", (unsigned long long)t.batches));
  line(strf("\"cold\": %llu", (unsigned long long)t.cold));
  line(strf("\"warm\": %llu", (unsigned long long)t.warm));
  line(strf("\"analytic\": %llu", (unsigned long long)t.analytic));
  line(strf("\"conv_launches\": %llu", (unsigned long long)t.conv_launches));
  line(strf("\"plan_cache\": %s",
            taxonomy_to_json(t.taxonomy, t.plan_stores, t.plan_evictions)
                .c_str()));
  line(strf("\"warm_path_ratio\": %.6f", t.warm_path_ratio()));
  line(strf("\"eviction_churn\": %.6f", t.eviction_churn()));
  line(strf("\"fleet_device_chunks\": %llu",
            (unsigned long long)t.fleet_device_chunks));
  line(strf("\"comm_bound_devices\": %llu",
            (unsigned long long)t.comm_bound_devices));
  line(strf("\"max_queue_depth\": %llu",
            (unsigned long long)t.max_queue_depth));
  line(strf("\"max_inflight_batches\": %llu",
            (unsigned long long)t.max_inflight_batches));
  line(strf("\"arena_peak_bytes\": %llu",
            (unsigned long long)t.arena_peak_bytes));
  line(strf("\"latency_s\": %s", t.latency_s.to_json().c_str()));
  // Health verdicts, machine-checkable.
  out += pad + "  \"health\": [\n";
  const std::vector<HealthVerdict> verdicts = health_verdicts(t);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    std::string detail;
    for (char c : verdicts[i].detail) {
      if (c == '"' || c == '\\') detail += '\\';
      detail += c;
    }
    out += pad + strf("    {\"name\": \"%s\", \"verdict\": \"%s\", "
                      "\"detail\": \"%s\"}%s\n",
                      verdicts[i].name.c_str(), verdicts[i].verdict.c_str(),
                      detail.c_str(),
                      i + 1 < verdicts.size() ? "," : "");
  }
  out += pad + "  ]\n";
  out += pad + "}";
  return out;
}

std::string format_telemetry(const ServingTelemetry& t) {
  std::string out;
  out += strf("kconv-scope telemetry -> %s\n", t.dir.c_str());
  out += strf("  events=%llu snapshots=%llu metric-groups=%llu\n",
              (unsigned long long)t.events, (unsigned long long)t.snapshots,
              (unsigned long long)t.metric_groups);
  out += strf("  requests=%llu (cold=%llu warm=%llu analytic=%llu) "
              "launches=%llu\n",
              (unsigned long long)t.requests, (unsigned long long)t.cold,
              (unsigned long long)t.warm, (unsigned long long)t.analytic,
              (unsigned long long)t.conv_launches);
  out += strf("  plan-cache: hit=%llu miss=%llu stale=%llu corrupt=%llu "
              "disabled=%llu unplanned=%llu stores=%llu evictions=%llu\n",
              (unsigned long long)t.taxonomy.hit,
              (unsigned long long)t.taxonomy.miss,
              (unsigned long long)t.taxonomy.stale_total(),
              (unsigned long long)(t.taxonomy.corrupt +
                                   t.taxonomy.corrupt_payload),
              (unsigned long long)t.taxonomy.disabled,
              (unsigned long long)t.taxonomy.unplanned,
              (unsigned long long)t.plan_stores,
              (unsigned long long)t.plan_evictions);
  if (t.latency_s.count() > 0) {
    out += strf("  latency ms: p50=%.3f p95=%.3f p99=%.3f (n=%llu%s)\n",
                t.latency_s.percentile(0.50) * 1e3,
                t.latency_s.percentile(0.95) * 1e3,
                t.latency_s.percentile(0.99) * 1e3,
                (unsigned long long)t.latency_s.count(),
                t.latency_s.exact() ? ", exact" : ", bucketed");
  }
  out += "  health:\n";
  for (const HealthVerdict& v : health_verdicts(t)) {
    out += strf("    %-13s %-19s %s\n", (v.name + ":").c_str(),
                v.verdict.c_str(), v.detail.c_str());
  }
  return out;
}

}  // namespace kconv::obs
