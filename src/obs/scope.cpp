#include "src/obs/scope.hpp"

#include <chrono>
#include <filesystem>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"

namespace kconv::obs {

namespace fs = std::filesystem;

void PlanCacheTaxonomy::add(const std::string& status, u64 n) {
  if (status.empty() || status == "unplanned") {
    unplanned += n;
  } else if (status == "hit") {
    hit += n;
  } else if (status == "miss") {
    miss += n;
  } else if (status == "corrupt") {
    corrupt += n;
  } else if (status == "corrupt-payload") {
    corrupt_payload += n;
  } else if (status == "stale-version") {
    stale_version += n;
  } else if (status == "stale-key") {
    stale_key += n;
  } else if (status == "stale-arch") {
    stale_arch += n;
  } else if (status == "stale-config") {
    stale_config += n;
  } else if (status == "stale-trace-level") {
    stale_trace_level += n;
  } else if (status == "stale-static-signature") {
    stale_static_signature += n;
  } else if (status == "disabled") {
    disabled += n;
  } else {
    corrupt += n;
  }
}

u64 PlanCacheTaxonomy::total() const {
  return hit + miss + corrupt + corrupt_payload + stale_version + stale_key +
         stale_arch + stale_config + stale_trace_level +
         stale_static_signature + disabled + unplanned;
}

PlanCacheTaxonomy& PlanCacheTaxonomy::operator+=(const PlanCacheTaxonomy& o) {
  hit += o.hit;
  miss += o.miss;
  corrupt += o.corrupt;
  corrupt_payload += o.corrupt_payload;
  stale_version += o.stale_version;
  stale_key += o.stale_key;
  stale_arch += o.stale_arch;
  stale_config += o.stale_config;
  stale_trace_level += o.stale_trace_level;
  stale_static_signature += o.stale_static_signature;
  disabled += o.disabled;
  unplanned += o.unplanned;
  return *this;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strf("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

TelemetrySink::TelemetrySink(std::string dir) : dir_(std::move(dir)) {
  KCONV_CHECK(!dir_.empty(), "telemetry output directory path is empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  KCONV_CHECK(!ec && fs::is_directory(dir_, ec),
              strf("telemetry path '%s' is not a usable directory",
                   dir_.c_str()));
  const std::string events_path = dir_ + "/events.jsonl";
  events_ = std::fopen(events_path.c_str(), "wb");
  KCONV_CHECK(events_ != nullptr,
              strf("telemetry directory '%s' is not writable", dir_.c_str()));
  const std::string metrics_path = dir_ + "/metrics.jsonl";
  metrics_file_ = std::fopen(metrics_path.c_str(), "wb");
  if (metrics_file_ == nullptr) {
    std::fclose(events_);
    events_ = nullptr;
    KCONV_CHECK(false, strf("telemetry directory '%s' is not writable",
                            dir_.c_str()));
  }
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

TelemetrySink::~TelemetrySink() {
  if (events_ != nullptr) std::fclose(events_);
  if (metrics_file_ != nullptr) std::fclose(metrics_file_);
}

double TelemetrySink::now_us() const {
  const i64 ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  return static_cast<double>(ns - epoch_ns_) / 1e3;
}

void TelemetrySink::write_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), events_);
  std::fputc('\n', events_);
  std::fflush(events_);
  ++events_written_;
}

u64 TelemetrySink::begin_span(u64 trace, u64 parent, const char* tier,
                              const std::string& name,
                              std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 id = next_span_++;
  SpanRecord rec;
  rec.trace = trace;
  rec.span = id;
  rec.parent = parent;
  rec.tier = tier;
  rec.name = name;
  rec.args_json = std::move(args_json);
  rec.begin_us = now_us();
  span_index_[id] = spans_.size();
  std::string line = strf(
      "{\"ev\":\"span_begin\",\"trace\":%llu,\"span\":%llu,\"parent\":%llu,"
      "\"tier\":\"%s\",\"name\":\"%s\",\"ts_us\":%.3f",
      (unsigned long long)trace, (unsigned long long)id,
      (unsigned long long)parent, tier, json_escape(name).c_str(),
      rec.begin_us);
  if (!rec.args_json.empty()) line += strf(",\"args\":%s", rec.args_json.c_str());
  line += "}";
  spans_.push_back(std::move(rec));
  ++open_;
  write_line(line);
  return id;
}

void TelemetrySink::end_span(u64 span) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = span_index_.find(span);
  if (it == span_index_.end()) return;
  SpanRecord& rec = spans_[it->second];
  if (rec.end_us >= 0.0) return;
  rec.end_us = now_us();
  if (open_ > 0) --open_;
  write_line(strf("{\"ev\":\"span_end\",\"trace\":%llu,\"span\":%llu,"
                  "\"ts_us\":%.3f}",
                  (unsigned long long)rec.trace, (unsigned long long)span,
                  rec.end_us));
}

void TelemetrySink::plan_cache_event(u64 trace, u64 span,
                                     const std::string& status,
                                     u64 blocks_replayed) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string st = status.empty() ? "unplanned" : status;
  write_line(strf("{\"ev\":\"plan_cache\",\"trace\":%llu,\"span\":%llu,"
                  "\"status\":\"%s\",\"blocks_replayed\":%llu,"
                  "\"ts_us\":%.3f}",
                  (unsigned long long)trace, (unsigned long long)span,
                  json_escape(st).c_str(), (unsigned long long)blocks_replayed,
                  now_us()));
}

void TelemetrySink::fleet_device_event(u64 trace, u64 span, u32 device,
                                       u64 blocks, u64 h2d_bytes,
                                       u64 d2h_bytes, u64 d2d_bytes,
                                       double transfer_s, double compute_s,
                                       double comm_ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool comm_bound = transfer_s > compute_s;
  write_line(strf(
      "{\"ev\":\"fleet_device\",\"trace\":%llu,\"span\":%llu,\"device\":%u,"
      "\"blocks\":%llu,\"h2d_bytes\":%llu,\"d2h_bytes\":%llu,"
      "\"d2d_bytes\":%llu,\"transfer_us\":%.3f,\"compute_us\":%.3f,"
      "\"comm_ratio\":%.6f,\"comm_bound\":%s,\"ts_us\":%.3f}",
      (unsigned long long)trace, (unsigned long long)span, device,
      (unsigned long long)blocks, (unsigned long long)h2d_bytes,
      (unsigned long long)d2h_bytes, (unsigned long long)d2d_bytes,
      transfer_s * 1e6, compute_s * 1e6, comm_ratio,
      comm_bound ? "true" : "false", now_us()));
  // Device lanes: the launch model serialises a chunk's transfers before its
  // compute, so the lane cursor advances transfer-then-compute per event.
  double& cur = device_cursor_us_[device];
  DeviceLaneSlice t;
  t.device = device;
  t.transfer = true;
  t.name = strf("transfer trace=%llu", (unsigned long long)trace);
  t.begin_us = cur;
  t.dur_us = transfer_s * 1e6;
  t.bytes = h2d_bytes + d2h_bytes + d2d_bytes;
  device_slices_.push_back(t);
  DeviceLaneSlice c;
  c.device = device;
  c.transfer = false;
  c.name = strf("compute trace=%llu blocks=%llu", (unsigned long long)trace,
                (unsigned long long)blocks);
  c.begin_us = cur + t.dur_us;
  c.dur_us = compute_s * 1e6;
  c.bytes = 0;
  device_slices_.push_back(c);
  cur = c.begin_us + c.dur_us;
}

void TelemetrySink::arena_event(u64 trace, u64 span, const std::string& node,
                                i64 slot, bool reused, u64 bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  write_line(strf("{\"ev\":\"arena_slot\",\"trace\":%llu,\"span\":%llu,"
                  "\"node\":\"%s\",\"slot\":%lld,\"reused\":%s,"
                  "\"bytes\":%llu,\"ts_us\":%.3f}",
                  (unsigned long long)trace, (unsigned long long)span,
                  json_escape(node).c_str(), (long long)slot,
                  reused ? "true" : "false", (unsigned long long)bytes,
                  now_us()));
}

void TelemetrySink::merge_metrics(const MetricsKey& key,
                                  const Metrics& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.merge(key, delta);
}

void TelemetrySink::snapshot_metrics() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string lines = registry_.snapshot_jsonl(snapshots_++);
  std::fwrite(lines.data(), 1, lines.size(), metrics_file_);
  std::fflush(metrics_file_);
}

u64 TelemetrySink::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_written_;
}

u64 TelemetrySink::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

u64 TelemetrySink::open_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

std::vector<SpanRecord> TelemetrySink::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<DeviceLaneSlice> TelemetrySink::device_slices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return device_slices_;
}

MetricsRegistry TelemetrySink::metrics_copy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_;
}

}  // namespace kconv::obs
