// Serving telemetry roll-up: the `telemetry` report/JSON block and the
// health verdicts derived from it (docs/MODEL.md §11).
#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/scope.hpp"

namespace kconv::obs {

/// Aggregated view of one serving run, assembled by the CLI from ServeStats
/// and the sink. Plain data so tests can build and round-trip it without a
/// serving driver.
struct ServingTelemetry {
  std::string dir;
  u64 events = 0;
  u64 snapshots = 0;
  u64 metric_groups = 0;

  u64 requests = 0;
  u64 batches = 0;
  u64 cold = 0;
  u64 warm = 0;
  u64 analytic = 0;

  u64 conv_launches = 0;
  PlanCacheTaxonomy taxonomy;
  u64 plan_stores = 0;
  u64 plan_evictions = 0;

  u64 fleet_device_chunks = 0;   ///< per-device chunk observations
  u64 comm_bound_devices = 0;    ///< chunks with transfer time > compute time

  u64 max_queue_depth = 0;
  u64 max_inflight_batches = 0;
  u64 arena_peak_bytes = 0;

  Histogram latency_s;  ///< host seconds per request

  /// Fraction of requests that avoided the cold capture path (replay or
  /// analytic fast path).
  double warm_path_ratio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(requests - cold) /
                     static_cast<double>(requests);
  }
  /// Evictions per store: sustained churn near 1 means the byte budget
  /// cannot hold the working set.
  double eviction_churn() const {
    return plan_stores == 0 ? 0.0
                            : static_cast<double>(plan_evictions) /
                                  static_cast<double>(plan_stores);
  }
};

struct HealthVerdict {
  std::string name;     ///< "warm-path" | "communication" | "plan-churn"
  std::string verdict;  ///< short machine-matchable status
  std::string detail;   ///< paper-cited interpretation
};

/// The three serving health checks with paper-cited interpretations.
std::vector<HealthVerdict> health_verdicts(const ServingTelemetry& t);

/// Single-line JSON object for a taxonomy: {"launches":N,"hit":..,...,
/// "stores":S,"evictions":E}. Shared by the serving `plan_cache` block and
/// the `telemetry` block so the two can be cross-checked field by field.
std::string taxonomy_to_json(const PlanCacheTaxonomy& t, u64 stores,
                             u64 evictions);

/// The report/JSON `telemetry` block. `indent` is the number of spaces
/// prefixed to every line so callers can nest it in their own object.
std::string telemetry_to_json(const ServingTelemetry& t, int indent);

/// Human-readable health summary for report output.
std::string format_telemetry(const ServingTelemetry& t);

}  // namespace kconv::obs
