#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/strutil.hpp"

namespace kconv::obs {

namespace {

// Round-trippable double for JSON output; 1e-9 switches "-0" to "0" noise
// off by normalising negative zero.
std::string jnum(double v) {
  if (v == 0.0) v = 0.0;
  return strf("%.17g", v);
}

}  // namespace

i32 Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return kUnderflow;
  // Smallest b with 1e-6 * 2^(b/2) >= v. Nudge the log by one ulp-scale
  // epsilon so exact boundary values stay in their own bucket instead of
  // spilling up on platforms whose log2 rounds high.
  double b = 2.0 * std::log2(v / 1e-6);
  i32 up = static_cast<i32>(std::ceil(b - 1e-9));
  if (up < -120) up = -120;
  if (up > 220) up = 220;  // 2^110 s — beyond any modeled time
  return up;
}

double Histogram::bucket_upper(i32 bucket) {
  if (bucket == kUnderflow) return 0.0;
  return 1e-6 * std::pow(2.0, bucket / 2.0);
}

void Histogram::add(double v) {
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++buckets_[bucket_of(v)];
  if (exact_) {
    if (samples_.size() < kExactCap) {
      samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), v),
                      v);
    } else {
      exact_ = false;
      samples_.clear();
      samples_.shrink_to_fit();
    }
  }
}

void Histogram::merge(const Histogram& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
  for (const auto& [b, n] : o.buckets_) buckets_[b] += n;
  if (exact_ && o.exact_ && samples_.size() + o.samples_.size() <= kExactCap) {
    std::vector<double> merged;
    merged.reserve(samples_.size() + o.samples_.size());
    std::merge(samples_.begin(), samples_.end(), o.samples_.begin(),
               o.samples_.end(), std::back_inserter(merged));
    samples_ = std::move(merged);
  } else {
    exact_ = false;
    samples_.clear();
    samples_.shrink_to_fit();
  }
}

double Histogram::sum() const {
  // While exact, the reported sum is accumulated over the sorted samples —
  // a canonical association order, so merged histograms report the same sum
  // no matter how their deltas were grouped (FP addition does not
  // reassociate for free). After the exact tier spills, the running total
  // stands in; it is still deterministic for a fixed merge order.
  if (!exact_) return sum_;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank, 0-based: the formula the serving CLI and bench_serving
  // historically applied to their sorted vectors.
  u64 rank = static_cast<u64>(std::ceil(q * static_cast<double>(count_)));
  rank = rank == 0 ? 0 : rank - 1;
  if (rank >= count_) rank = count_ - 1;
  if (exact_) return samples_[rank];
  u64 cum = 0;
  for (const auto& [b, n] : buckets_) {
    cum += n;
    if (cum > rank) {
      // Tightest deterministic bound we still hold for this sample.
      return b == kUnderflow ? min_ : std::min(bucket_upper(b), max_);
    }
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::string out = strf(
      "{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,\"exact\":%s,"
      "\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[",
      (unsigned long long)count_, jnum(sum()).c_str(), jnum(min()).c_str(),
      jnum(max()).c_str(), exact_ ? "true" : "false",
      jnum(percentile(0.50)).c_str(), jnum(percentile(0.95)).c_str(),
      jnum(percentile(0.99)).c_str());
  bool first = true;
  for (const auto& [b, n] : buckets_) {
    if (!first) out += ",";
    first = false;
    out += strf("[%d,%llu]", (int)b, (unsigned long long)n);
  }
  out += "]}";
  return out;
}

void Metrics::gauge_max(const std::string& name, double v) {
  auto it = gauges.find(name);
  if (it == gauges.end()) {
    gauges[name] = v;
  } else {
    it->second = std::max(it->second, v);
  }
}

void Metrics::merge(const Metrics& o) {
  for (const auto& [k, v] : o.counters) counters[k] += v;
  for (const auto& [k, v] : o.gauges) gauge_max(k, v);
  for (const auto& [k, h] : o.hists) hists[k].merge(h);
}

std::string MetricsRegistry::snapshot_jsonl(u64 snapshot) const {
  std::string out;
  for (const auto& [key, m] : groups_) {
    out += strf("{\"snapshot\":%llu,\"network\":\"%s\",\"shape\":\"%s\","
                "\"mode\":\"%s\",\"counters\":{",
                (unsigned long long)snapshot, key.network.c_str(),
                key.shape.c_str(), key.mode.c_str());
    bool first = true;
    for (const auto& [k, v] : m.counters) {
      if (!first) out += ",";
      first = false;
      out += strf("\"%s\":%llu", k.c_str(), (unsigned long long)v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [k, v] : m.gauges) {
      if (!first) out += ",";
      first = false;
      out += strf("\"%s\":%s", k.c_str(), jnum(v).c_str());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [k, h] : m.hists) {
      if (!first) out += ",";
      first = false;
      out += strf("\"%s\":%s", k.c_str(), h.to_json().c_str());
    }
    out += "}}\n";
  }
  return out;
}

}  // namespace kconv::obs
