#include "src/obs/unified_trace.hpp"

#include <algorithm>
#include <map>

#include "src/common/strutil.hpp"

namespace kconv::obs {

std::string unified_trace_json(
    const TelemetrySink& sink, const sim::Arch& arch,
    const std::vector<profile::LabeledTimeline>& blocks) {
  const std::vector<SpanRecord> spans = sink.spans();
  std::map<u64, u64> lane_of;  // trace id -> lane
  std::vector<profile::ServingTraceSpan> serving;
  serving.reserve(spans.size());
  double max_end = 0.0;
  for (const SpanRecord& rec : spans) {
    max_end = std::max(max_end, std::max(rec.begin_us, rec.end_us));
  }
  for (const SpanRecord& rec : spans) {
    profile::ServingTraceSpan sp;
    sp.name = rec.name;
    if (rec.trace == 0) {
      sp.lane = 0;
      sp.lane_name = "batches";
    } else {
      auto it = lane_of.find(rec.trace);
      if (it == lane_of.end()) {
        it = lane_of.emplace(rec.trace, lane_of.size() + 1).first;
      }
      sp.lane = it->second;
      sp.lane_name = strf("request %llu", (unsigned long long)rec.trace);
    }
    sp.begin_us = rec.begin_us;
    // A span still open at export time is closed at the trace horizon so
    // check_trace's "every span closed" invariant holds for the artifact.
    sp.end_us = rec.end_us >= 0.0 ? rec.end_us : max_end;
    serving.push_back(std::move(sp));
  }

  std::vector<profile::DeviceTraceSlice> devices;
  for (const DeviceLaneSlice& sl : sink.device_slices()) {
    profile::DeviceTraceSlice d;
    d.device = sl.device;
    d.transfer = sl.transfer;
    d.name = sl.name;
    d.begin_us = sl.begin_us;
    d.dur_us = sl.dur_us;
    d.bytes = sl.bytes;
    devices.push_back(std::move(d));
  }

  return profile::unified_chrome_trace_json(arch, serving, devices, blocks);
}

}  // namespace kconv::obs
