// Bridges the TelemetrySink's span/device-lane records into the unified
// Chrome trace export (src/profile/trace_export.hpp, docs/MODEL.md §11).
#pragma once

#include <string>
#include <vector>

#include "src/obs/scope.hpp"
#include "src/profile/trace_export.hpp"
#include "src/sim/arch.hpp"

namespace kconv::obs {

/// Builds the unified serving trace from everything the sink recorded plus
/// optional §7 block timelines (typically from a profiled probe run of the
/// served network). Lane mapping: driver-level spans (trace 0) share the
/// "batches" lane; each request trace gets its own lane in order of first
/// appearance, which is enqueue order and therefore deterministic.
std::string unified_trace_json(
    const TelemetrySink& sink, const sim::Arch& arch,
    const std::vector<profile::LabeledTimeline>& blocks);

}  // namespace kconv::obs
