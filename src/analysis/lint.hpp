// Memory-efficiency lints over a launch's aggregate statistics.
//
// Each diagnostic encodes one inefficiency pattern the paper names, with
// the measured metric, the threshold it crossed, and the paper's
// remediation. Thresholds live in LintThresholds so tests can pin them and
// callers can tighten/loosen; the defaults are calibrated so every
// shipping kconv kernel passes clean while each seeded defect in
// tests/analysis/ trips exactly its diagnostic (docs/MODEL.md §6).
#pragma once

#include <vector>

#include "src/analysis/diagnostics.hpp"
#include "src/sim/arch.hpp"
#include "src/sim/config.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/timing.hpp"

namespace kconv::analysis {

struct LintThresholds {
  // Noise floors: a metric computed over fewer instructions than this is
  // not diagnosed (tiny launches prove nothing).
  u64 min_smem_instrs = 32;
  u64 min_gm_instrs = 32;
  u64 min_const_instrs = 32;
  /// bank-width-mismatch: average lane access width below this fraction of
  /// the bank width (W_CD < W_SMB, §2.1 Eq. 1).
  double bank_width_fraction = 0.75;
  /// bank-conflict-replays: SM request cycles per instruction above this
  /// (1.0 = conflict-free; checked separately for loads and stores).
  /// Calibrated above the bounded 2-way column-boundary conflicts the
  /// shipping general kernel keeps even with padded filter rows (stores
  /// 1.4-1.8 across Table 1 shapes) and far below the 15-27x factor of the
  /// unpadded transposed-store defect (§4.2 gray box).
  double conflict_replay_factor = 2.5;
  /// uncoalesced-gmem: sector bytes moved per useful byte above this.
  /// Fully scalar per-lane access measures 8x (4 useful B per 32 B
  /// sector); the shipping general kernel's halo reload plus its by-design
  /// uncoalesced write-back phase (§4's "negligible" store phase) lands at
  /// 2.2-3.2x depending on shape, which must not trip.
  double gm_overfetch = 4.0;
  /// smem-occupancy-cap: warp occupancy below this fraction while shared
  /// memory is the limiter.
  double occupancy_fraction = 0.5;
  /// low-cm-broadcast: serialized CM requests per instruction above this
  /// (1.0 = every constant read a full-warp broadcast).
  double const_requests_per_instr = 1.5;
};

/// Runs every lint over `stats`/`timing` (a Timing-trace launch). Findings
/// come back in catalog order; empty means clean.
std::vector<LintFinding> lint_stats(const sim::Arch& arch,
                                    const sim::LaunchConfig& cfg,
                                    const sim::KernelStats& stats,
                                    const sim::TimingEstimate& timing,
                                    const LintThresholds& th = {});

}  // namespace kconv::analysis
