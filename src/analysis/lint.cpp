#include "src/analysis/lint.hpp"

#include "src/common/strutil.hpp"

namespace kconv::analysis {

namespace {

LintFinding make(LintKind kind, Severity sev, double value, double threshold,
                 std::string message, std::string remediation) {
  LintFinding f;
  f.kind = kind;
  f.severity = sev;
  f.value = value;
  f.threshold = threshold;
  f.message = std::move(message);
  f.remediation = std::move(remediation);
  return f;
}

}  // namespace

std::vector<LintFinding> lint_stats(const sim::Arch& arch,
                                    const sim::LaunchConfig& cfg,
                                    const sim::KernelStats& stats,
                                    const sim::TimingEstimate& timing,
                                    const LintThresholds& th) {
  std::vector<LintFinding> out;

  // --- bank-width-mismatch (§2.1, Fig. 1; fix per Eq. 1) -------------------
  // Average bytes each lane slot moves per SM instruction: scalar float
  // traffic on an 8-byte-bank arch averages ~4 (half of every bank's cycle
  // wasted); matched float2 traffic averages ~8. Predicated-off lanes count
  // as zero, so the metric dips slightly below the access width — the 0.75
  // fraction absorbs that.
  if (stats.smem_instrs >= th.min_smem_instrs) {
    const double avg_lane_bytes =
        static_cast<double>(stats.smem_lane_bytes) /
        (static_cast<double>(stats.smem_instrs) * arch.warp_size);
    const double floor = th.bank_width_fraction * arch.smem_bank_bytes;
    if (avg_lane_bytes < floor) {
      out.push_back(make(
          LintKind::BankWidthMismatch, Severity::Warning, avg_lane_bytes,
          floor,
          strf("average lane access width %.2f B is below the %u B shared-"
               "memory bank width (W_CD < W_SMB)",
               avg_lane_bytes, arch.smem_bank_bytes),
          strf("widen the computation data width to the bank width (Eq. 1: "
               "%u-byte units, e.g. float%u accesses) so each bank cycle "
               "moves a full word — the paper's §2.1/Fig. 1 mechanism",
               arch.smem_bank_bytes, arch.smem_bank_bytes / 4)));
    }
  }

  // --- bank-conflict-replays (§2.1; §4.2 gray box) -------------------------
  // Loads and stores diagnosed separately: the paper's transposed-filter
  // staging conflicts live entirely on the store side and would be diluted
  // by conflict-free loads in a combined average.
  if (stats.smem_instrs >= th.min_smem_instrs) {
    const u64 ld_instrs = stats.smem_instrs - stats.smem_store_instrs;
    const u64 ld_cycles =
        stats.smem_request_cycles - stats.smem_store_request_cycles;
    const double ld_factor =
        ld_instrs == 0 ? 0.0
                       : static_cast<double>(ld_cycles) /
                             static_cast<double>(ld_instrs);
    const double st_factor = stats.smem_store_replay_factor();
    const bool st_trips = st_factor > th.conflict_replay_factor;
    const bool ld_trips = ld_factor > th.conflict_replay_factor;
    if (st_trips || ld_trips) {
      const double worst = st_trips && st_factor >= ld_factor ? st_factor
                                                              : ld_factor;
      out.push_back(make(
          LintKind::BankConflictReplays, Severity::Warning, worst,
          th.conflict_replay_factor,
          strf("shared-memory %s replay %.2f request cycles per instruction "
               "(loads %.2f, stores %.2f; 1.0 = conflict-free)",
               st_trips && st_factor >= ld_factor ? "stores" : "loads", worst,
               ld_factor, st_factor),
          "restructure the layout so a warp's lanes hit distinct banks — "
          "e.g. pad transposed rows by one bank word as in the paper's §4.2 "
          "filter staging, or swizzle the leading dimension"));
    }
  }

  // --- uncoalesced-gmem (§2.2) ---------------------------------------------
  if (stats.gm_instrs >= th.min_gm_instrs) {
    const double overfetch = stats.gm_overfetch(arch.gm_sector_bytes);
    if (overfetch > th.gm_overfetch) {
      out.push_back(make(
          LintKind::UncoalescedGmem, Severity::Warning, overfetch,
          th.gm_overfetch,
          strf("global memory moved %.2fx the bytes the lanes asked for "
               "(%u B sector granularity)",
               overfetch, arch.gm_sector_bytes),
          "make warps access contiguous addresses so requests coalesce "
          "into full sectors (§2.2) — reorder the thread-to-data mapping "
          "or stage through shared memory"));
    }
  }

  // --- smem-occupancy-cap (§4.3) -------------------------------------------
  // Advisory: the paper's kernels deliberately trade occupancy for reuse;
  // it becomes a problem only when latency can no longer be hidden.
  if (timing.occupancy.limiter == sim::OccupancyLimiter::SharedMem &&
      timing.occupancy.fraction < th.occupancy_fraction) {
    out.push_back(make(
        LintKind::SmemOccupancyCap, Severity::Info,
        timing.occupancy.fraction, th.occupancy_fraction,
        strf("shared memory (%u B/block) limits occupancy to %.0f%% of the "
             "SM's warp capacity",
             cfg.shared_bytes, 100.0 * timing.occupancy.fraction),
        "shrink the per-block tile or stage fewer channels at a time "
        "(smaller CSH) so more blocks fit per SM (§4.3's occupancy/reuse "
        "trade-off)"));
  }

  // --- low-cm-broadcast (§2.3/§3.3) ----------------------------------------
  if (stats.const_instrs >= th.min_const_instrs) {
    const double rpi = static_cast<double>(stats.const_requests) /
                       static_cast<double>(stats.const_instrs);
    if (rpi > th.const_requests_per_instr) {
      out.push_back(make(
          LintKind::LowCmBroadcast, Severity::Warning, rpi,
          th.const_requests_per_instr,
          strf("constant loads serialize into %.2f requests per instruction "
               "(1.0 = full-warp broadcast)",
               rpi),
          "make every lane of a warp read the same constant address per "
          "instruction (loop filters in the same order across lanes, §3.3) "
          "— or move diverging tables to shared memory"));
    }
  }

  return out;
}

}  // namespace kconv::analysis
