#include "src/analysis/report.hpp"

#include "src/common/strutil.hpp"

namespace kconv::analysis {

const char* hazard_kind_name(HazardKind k) {
  switch (k) {
    case HazardKind::SmemRaw: return "smem-race-raw";
    case HazardKind::SmemWar: return "smem-race-war";
    case HazardKind::SmemWaw: return "smem-race-waw";
    case HazardKind::SmemIntraWarp: return "smem-race-intra-warp";
    case HazardKind::GmemBlockOverlap: return "gmem-block-overlap";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* lint_kind_name(LintKind k) {
  switch (k) {
    case LintKind::BankWidthMismatch: return "bank-width-mismatch";
    case LintKind::BankConflictReplays: return "bank-conflict-replays";
    case LintKind::UncoalescedGmem: return "uncoalesced-gmem";
    case LintKind::SmemOccupancyCap: return "smem-occupancy-cap";
    case LintKind::LowCmBroadcast: return "low-cm-broadcast";
  }
  return "?";
}

namespace {

std::string format_hazard(const HazardRecord& r) {
  if (r.kind == HazardKind::GmemBlockOverlap) {
    return strf("  [%s] blocks (%u,%u,%u) and (%u,%u,%u) both write GM "
                "bytes [0x%llx, +%llu)\n",
                hazard_kind_name(r.kind), r.other_block.x, r.other_block.y,
                r.other_block.z, r.block.x, r.block.y, r.block.z,
                static_cast<unsigned long long>(r.addr),
                static_cast<unsigned long long>(r.bytes));
  }
  return strf("  [%s] block (%u,%u,%u) smem byte 0x%llx (epoch %llu): "
              "%s lane %u (warp %u, op #%llu) vs %s lane %u (warp %u, "
              "op #%llu)\n",
              hazard_kind_name(r.kind), r.block.x, r.block.y, r.block.z,
              static_cast<unsigned long long>(r.addr),
              static_cast<unsigned long long>(r.epoch),
              sim::op_name(r.first.op), r.first.lane, r.first.warp,
              static_cast<unsigned long long>(r.first.op_index),
              sim::op_name(r.second.op), r.second.lane, r.second.warp,
              static_cast<unsigned long long>(r.second.op_index));
}

/// The only non-literal JSON strings are our own messages (plain ASCII),
/// but escape the JSON-significant characters anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_hazard(const HazardRecord& r, const std::string& pad) {
  std::string o = pad + "{";
  o += strf("\"kind\": \"%s\", \"block\": [%u,%u,%u], ",
            hazard_kind_name(r.kind), r.block.x, r.block.y, r.block.z);
  if (r.kind == HazardKind::GmemBlockOverlap) {
    o += strf("\"other_block\": [%u,%u,%u], ", r.other_block.x,
              r.other_block.y, r.other_block.z);
  }
  o += strf("\"addr\": %llu, \"bytes\": %llu",
            static_cast<unsigned long long>(r.addr),
            static_cast<unsigned long long>(r.bytes));
  if (r.kind != HazardKind::GmemBlockOverlap) {
    o += strf(", \"epoch\": %llu", static_cast<unsigned long long>(r.epoch));
    const auto op_json = [](const HazardOp& h) {
      return strf("{\"op\": \"%s\", \"warp\": %u, \"lane\": %u, "
                  "\"round\": %u, \"op_index\": %llu}",
                  sim::op_name(h.op), h.warp, h.lane, h.round,
                  static_cast<unsigned long long>(h.op_index));
    };
    o += ", \"first\": " + op_json(r.first);
    o += ", \"second\": " + op_json(r.second);
  }
  o += "}";
  return o;
}

std::string json_lint(const LintFinding& f, const std::string& pad) {
  return pad +
         strf("{\"kind\": \"%s\", \"severity\": \"%s\", \"value\": %.6g, "
              "\"threshold\": %.6g, \"message\": \"%s\", "
              "\"remediation\": \"%s\"}",
              lint_kind_name(f.kind), severity_name(f.severity), f.value,
              f.threshold, json_escape(f.message).c_str(),
              json_escape(f.remediation).c_str());
}

}  // namespace

std::string format_analysis(const AnalysisReport& rep) {
  std::string out = "=== kconv-check ===\n";
  if (rep.hazard_checked) {
    if (rep.races_total == 0 && rep.gm_overlaps_total == 0) {
      out += strf("hazards: clean (%llu blocks fully checked)\n",
                  static_cast<unsigned long long>(rep.blocks_checked));
    } else {
      out += strf("hazards: %llu shared-memory races, %llu cross-block GM "
                  "overlaps (%llu blocks fully checked)\n",
                  static_cast<unsigned long long>(rep.races_total),
                  static_cast<unsigned long long>(rep.gm_overlaps_total),
                  static_cast<unsigned long long>(rep.blocks_checked));
      for (const HazardRecord& r : rep.hazards) out += format_hazard(r);
      const u64 shown = rep.hazards.size();
      const u64 total = rep.races_total + rep.gm_overlaps_total;
      if (total > shown) {
        out += strf("  ... and %llu more (record cap)\n",
                    static_cast<unsigned long long>(total - shown));
      }
    }
  }
  if (rep.linted) {
    if (rep.lints.empty()) {
      out += "lints: clean\n";
    } else {
      out += strf("lints: %zu finding%s\n", rep.lints.size(),
                  rep.lints.size() == 1 ? "" : "s");
      for (const LintFinding& f : rep.lints) {
        out += strf("  [%s] %s: %s (measured %.3g, threshold %.3g)\n",
                    severity_name(f.severity), lint_kind_name(f.kind),
                    f.message.c_str(), f.value, f.threshold);
        out += strf("      fix: %s\n", f.remediation.c_str());
      }
    }
  }
  out += strf("verdict: %s\n", rep.clean() ? "PASS" : "FAIL");
  return out;
}

std::string to_json(const AnalysisReport& rep, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n";
  out += in1 + strf("\"hazard_checked\": %s,\n",
                    rep.hazard_checked ? "true" : "false");
  out += in1 + strf("\"linted\": %s,\n", rep.linted ? "true" : "false");
  out += in1 + strf("\"clean\": %s,\n", rep.clean() ? "true" : "false");
  out += in1 + strf("\"blocks_checked\": %llu,\n",
                    static_cast<unsigned long long>(rep.blocks_checked));
  out += in1 + strf("\"races_total\": %llu,\n",
                    static_cast<unsigned long long>(rep.races_total));
  out += in1 + strf("\"gm_overlaps_total\": %llu,\n",
                    static_cast<unsigned long long>(rep.gm_overlaps_total));
  out += in1 + "\"hazards\": [";
  for (std::size_t i = 0; i < rep.hazards.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += json_hazard(rep.hazards[i], in2);
  }
  out += rep.hazards.empty() ? "],\n" : "\n" + in1 + "],\n";
  out += in1 + "\"lints\": [";
  for (std::size_t i = 0; i < rep.lints.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += json_lint(rep.lints[i], in2);
  }
  out += rep.lints.empty() ? "]\n" : "\n" + in1 + "]\n";
  out += pad + "}";
  return out;
}

}  // namespace kconv::analysis
