// Shadow-state hazard detection for shared and global memory.
//
// BlockChecker maintains per-byte shadow state over one block's shared
// memory: the last writer (lane/warp/round/op index) and the last readers,
// each versioned by a *barrier epoch*. ThreadCtx::sync() — surfaced to the
// checker as on_barrier() — advances the epoch instead of clearing the
// shadow, so a block's worth of state resets in O(1). Conflicting accesses
// (>= 1 write) to the same byte within one epoch are a race when they come
// from different warps; within a warp, different scheduling rounds are
// ordered by lockstep execution, and only same-round pairs (divergent
// subgroups of one warp instruction) race. See docs/MODEL.md §6.
//
// The same object accumulates every block's global-memory write intervals
// (GmemWriteMap); after the launch, a sort-and-sweep over all blocks
// reports bytes written by more than one block.
//
// One BlockChecker serves one launch chunk (serial launches have exactly
// one), mirroring how L2 shadows and pattern caches are scoped: no locks,
// deterministic, merged in chunk index order by finalize_hazards().
#pragma once

#include <vector>

#include "src/analysis/diagnostics.hpp"
#include "src/sim/config.hpp"

namespace kconv::analysis {

/// Per-block global-memory write intervals, coalesced per block and
/// sort-swept across blocks for overlaps.
class GmemWriteMap {
 public:
  void begin_block(u64 flat_id, sim::Dim3 block);
  void note(u64 addr, u32 bytes);
  void seal_block();
  void append(GmemWriteMap&& o);

  /// Sorts all sealed intervals and appends one HazardRecord per interval
  /// that overlaps an earlier (lower flat id on ties) block's interval,
  /// up to `cap` records; `overlaps_total` counts them all. Destructive —
  /// call once, after every block is sealed.
  void detect(std::vector<HazardRecord>& out, u64& overlaps_total,
              std::size_t cap);

 private:
  struct Interval {
    u64 addr = 0;
    u64 end = 0;
    u64 flat = 0;  // flat block id, for deterministic ordering
    sim::Dim3 block;
  };
  std::vector<Interval> sealed_;
  std::vector<Interval> staged_;  // current block, coalesced on seal
  u64 cur_flat_ = 0;
  sim::Dim3 cur_block_;
};

class BlockChecker {
 public:
  BlockChecker(const sim::LaunchConfig& cfg, u32 warp_size);

  // --- Full shadow-state check (direct execution of a block) --------------
  void begin_block(sim::Dim3 block);
  /// Feed one lane's retired access (in retire order). Predicated-off
  /// accesses (bytes == 0) are ignored. `op_index` is the event's index in
  /// the lane's retired stream (diagnostics only).
  void on_access(u32 lane, u32 round, u64 op_index, const sim::Access& a);
  /// A __syncthreads barrier released: advance the epoch.
  void on_barrier();
  void end_block();

  /// Did the block between the last begin_block/end_block pair race? Replay
  /// uses this to taint a class whose representative raced.
  bool current_block_raced() const { return block_race_accesses_ > 0; }

  // --- GM-only path (replay-congruent blocks) -----------------------------
  // Congruent blocks share their representative's shared-memory access
  // pattern (the congruence hash covers SM offsets and sync placement), so
  // only their global writes — which do shift per block — need re-checking.
  void gm_begin(sim::Dim3 block);
  void gm_note(u64 addr, u32 bytes) { gm_.note(addr, bytes); }
  void gm_end() { gm_.seal_block(); }

  u64 blocks_checked() const { return blocks_checked_; }
  u64 races_total() const { return races_total_; }
  const std::vector<HazardRecord>& records() const { return records_; }
  GmemWriteMap& writes() { return gm_; }

 private:
  struct Shadow {
    u64 write_epoch = 0;
    u64 read_epoch = 0;
    u64 w_op = 0;
    u64 r0_op = 0;
    u64 r1_op = 0;
    u32 w_lane = 0, w_round = 0;
    u32 r0_lane = 0, r0_round = 0;
    u32 r1_lane = 0, r1_round = 0;
    u32 reader_warps = 0;  // warp bitmask for this read_epoch
    sim::Op w_kind = sim::Op::StoreShared;
    sim::Op r0_kind = sim::Op::LoadShared;
    sim::Op r1_kind = sim::Op::LoadShared;
  };

  void report(HazardKind kind, u64 byte, const sim::Access& a, u32 lane,
              u32 round, u64 op_index, const HazardOp& first);
  u64 flat_id(sim::Dim3 b) const;

  std::vector<Shadow> shadow_;  // one entry per shared-memory byte
  GmemWriteMap gm_;
  sim::Dim3 grid_;
  sim::Dim3 cur_block_;
  u32 warp_size_ = 32;
  u64 epoch_ = 0;
  u64 blocks_checked_ = 0;
  u64 races_total_ = 0;
  u32 block_race_accesses_ = 0;
  std::vector<HazardRecord> records_;

  /// Caps keep pathological kernels from flooding memory with findings;
  /// races_total_ stays exact past them.
  static constexpr u32 kMaxRecordsPerBlock = 8;
  static constexpr std::size_t kMaxRecords = 256;
  u32 block_records_ = 0;
};

/// Merges per-chunk checkers — in chunk index order, so results are
/// independent of host scheduling — into `rep`, then runs the cross-block
/// GM overlap scan over the union of all chunks' writes.
void finalize_hazards(std::vector<BlockChecker*> checkers,
                      AnalysisReport& rep);

}  // namespace kconv::analysis
