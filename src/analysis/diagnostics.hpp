// Typed findings produced by the kconv-check analysis subsystem.
//
// Two families of diagnostics (ISSUE 4 / docs/MODEL.md §6):
//   * HazardRecord — hard errors from the shadow-state race detector:
//     same-epoch shared-memory conflicts between warps (or unordered
//     intra-warp lane pairs), and cross-block global-memory write overlaps.
//   * LintFinding — paper-grounded efficiency diagnostics over a launch's
//     aggregate statistics (Chen et al. DAC'17 §2.1), each carrying the
//     measured metric, its trip threshold, and the paper's remediation.
//
// This header is intentionally light: only sim geometry/event value types,
// so everything above the simulator (CLI, tests, tools) can consume
// findings without linking the execution engine.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/event.hpp"

namespace kconv::analysis {

/// Hazard classes the detector reports. The RAW/WAR/WAW names describe the
/// order the two accesses retired in (for cross-warp pairs within one
/// barrier epoch the true hardware order is undefined — that is the bug).
enum class HazardKind : u8 {
  /// Shared memory: a read observed a same-epoch write from another warp.
  SmemRaw,
  /// Shared memory: a write hit a byte read this epoch by another warp.
  SmemWar,
  /// Shared memory: two warps wrote the same byte in one epoch.
  SmemWaw,
  /// Shared memory: two lanes of the SAME warp touched the same byte in
  /// the same scheduling round with no ordering edge (divergent subgroups
  /// of one warp instruction, at least one a write).
  SmemIntraWarp,
  /// Global memory: two different blocks wrote the same byte.
  GmemBlockOverlap,
};

const char* hazard_kind_name(HazardKind k);  // kebab-case, stable

/// One endpoint of a hazard: which lane touched the bytes, and when.
struct HazardOp {
  sim::Op op = sim::Op::Sync;
  u32 warp = 0;
  u32 lane = 0;      // flat thread index within the block
  u32 round = 0;     // scheduling round within the barrier segment
  u64 op_index = 0;  // index in the lane's retired event stream
};

struct HazardRecord {
  HazardKind kind = HazardKind::SmemRaw;
  sim::Dim3 block;        // block the hazard was detected in
  sim::Dim3 other_block;  // GmemBlockOverlap only: the earlier writer
  /// First conflicting byte: a block-local shared-memory offset for the
  /// Smem* kinds, a flat device address for GmemBlockOverlap.
  u64 addr = 0;
  /// Conflicting extent: the width of the exposing access (Smem*) or of
  /// the overlapping write interval (GmemBlockOverlap).
  u64 bytes = 0;
  /// Barrier epoch the conflict happened in (Smem* kinds; epochs count
  /// across blocks, so equal epochs always mean "same block, same segment").
  u64 epoch = 0;
  HazardOp first;   // access already in the shadow state
  HazardOp second;  // access that exposed the hazard
};

enum class Severity : u8 { Info, Warning, Error };
const char* severity_name(Severity s);

/// Efficiency lint classes, one per memory-inefficiency pattern the paper
/// names. See docs/MODEL.md §6 for the catalog with citations.
enum class LintKind : u8 {
  /// Average lane access width below the SM bank width (W_CD < W_SMB):
  /// scalar float traffic on 8-byte-bank hardware wastes half of every
  /// bank's bandwidth (§2.1, Fig. 1; fix per Eq. 1: float2 accesses).
  BankWidthMismatch,
  /// SM request cycles per instruction above threshold: bank-conflict
  /// replays serialize the warp (§2.1; e.g. the unpadded transposed filter
  /// store of §4.2's gray box).
  BankConflictReplays,
  /// GM sector bytes moved per useful byte above threshold: uncoalesced
  /// access wastes DRAM bandwidth on 32B-sector granularity (§2.2).
  UncoalescedGmem,
  /// Occupancy limited by shared memory below half the SM's warp capacity:
  /// the tile sizing spends more SM than the latency hiding it buys (§4.3).
  SmemOccupancyCap,
  /// Constant-memory requests per instruction above threshold: lanes
  /// diverge on CM addresses instead of broadcasting (§2.3/§3.3).
  LowCmBroadcast,
};

const char* lint_kind_name(LintKind k);  // kebab-case, stable

struct LintFinding {
  LintKind kind = LintKind::BankWidthMismatch;
  Severity severity = Severity::Warning;
  double value = 0.0;      // measured metric
  double threshold = 0.0;  // trip point it crossed
  std::string message;     // what was measured, with numbers
  std::string remediation; // what the paper says to do about it
};

/// Everything kconv-check produced for one launch.
struct AnalysisReport {
  bool hazard_checked = false;
  bool linted = false;
  /// Blocks that ran under the full shadow-state check (replay-congruent
  /// blocks are covered by their class representative and not recounted).
  u64 blocks_checked = 0;
  /// Accesses involved in >= 1 shared-memory race. Exact even when the
  /// recorded list below is capped.
  u64 races_total = 0;
  /// Cross-block GM write intervals that overlapped another block's. Exact
  /// even when the recorded list below is capped.
  u64 gm_overlaps_total = 0;
  std::vector<HazardRecord> hazards;
  std::vector<LintFinding> lints;

  /// A launch passes kconv-check when it has no hazards and no lint at
  /// Warning or above (Info findings are advisory).
  bool clean() const {
    if (races_total != 0 || gm_overlaps_total != 0) return false;
    for (const LintFinding& f : lints) {
      if (f.severity != Severity::Info) return false;
    }
    return true;
  }
};

}  // namespace kconv::analysis
