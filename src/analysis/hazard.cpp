#include "src/analysis/hazard.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace kconv::analysis {

namespace {
/// Ceiling on hazards carried in one AnalysisReport (totals stay exact).
constexpr std::size_t kMaxReportedHazards = 1024;
}  // namespace

// --- GmemWriteMap ----------------------------------------------------------

void GmemWriteMap::begin_block(u64 flat_id, sim::Dim3 block) {
  cur_flat_ = flat_id;
  cur_block_ = block;
  staged_.clear();
}

void GmemWriteMap::note(u64 addr, u32 bytes) {
  if (bytes == 0) return;  // predicated off
  // Lane order usually walks contiguous addresses — extend the last run.
  if (!staged_.empty() && staged_.back().end == addr) {
    staged_.back().end = addr + bytes;
    return;
  }
  staged_.push_back({addr, addr + bytes, cur_flat_, cur_block_});
}

void GmemWriteMap::seal_block() {
  if (staged_.empty()) return;
  std::sort(staged_.begin(), staged_.end(),
            [](const Interval& a, const Interval& b) {
              return a.addr < b.addr || (a.addr == b.addr && a.end < b.end);
            });
  // Merge runs within the block: a block overwriting its own bytes is not
  // a cross-block hazard, and merging keeps the global sweep linear.
  Interval cur = staged_.front();
  for (std::size_t i = 1; i < staged_.size(); ++i) {
    const Interval& nxt = staged_[i];
    if (nxt.addr <= cur.end) {
      cur.end = std::max(cur.end, nxt.end);
    } else {
      sealed_.push_back(cur);
      cur = nxt;
    }
  }
  sealed_.push_back(cur);
  staged_.clear();
}

void GmemWriteMap::append(GmemWriteMap&& o) {
  sealed_.insert(sealed_.end(), o.sealed_.begin(), o.sealed_.end());
  o.sealed_.clear();
}

void GmemWriteMap::detect(std::vector<HazardRecord>& out, u64& overlaps_total,
                          std::size_t cap) {
  if (sealed_.empty()) return;
  // Global order is independent of which chunk (or launch path) produced
  // each interval, so the verdict is deterministic across serial, parallel
  // and replay launches.
  std::sort(sealed_.begin(), sealed_.end(),
            [](const Interval& a, const Interval& b) {
              if (a.addr != b.addr) return a.addr < b.addr;
              if (a.end != b.end) return a.end < b.end;
              return a.flat < b.flat;
            });
  // Sweep keeping the active interval with the furthest end: every interval
  // overlapping any earlier block's writes is flagged at least once.
  Interval active = sealed_.front();
  for (std::size_t i = 1; i < sealed_.size(); ++i) {
    const Interval& nxt = sealed_[i];
    if (nxt.addr < active.end && nxt.flat != active.flat) {
      ++overlaps_total;
      if (out.size() < cap) {
        HazardRecord r;
        r.kind = HazardKind::GmemBlockOverlap;
        r.block = nxt.block;
        r.other_block = active.block;
        r.addr = nxt.addr;
        r.bytes = std::min(active.end, nxt.end) - nxt.addr;
        r.first.op = sim::Op::StoreGlobal;
        r.second.op = sim::Op::StoreGlobal;
        out.push_back(r);
      }
    }
    if (nxt.end > active.end) active = nxt;
  }
}

// --- BlockChecker ----------------------------------------------------------

BlockChecker::BlockChecker(const sim::LaunchConfig& cfg, u32 warp_size)
    : shadow_(cfg.shared_bytes), grid_(cfg.grid), warp_size_(warp_size) {
  KCONV_ASSERT(warp_size_ > 0);
  // The reader set is a warp bitmask; every supported arch caps blocks at
  // 32 warps (1024 threads, warp size 32).
  KCONV_CHECK(ceil_div(static_cast<i64>(cfg.block.count()),
                       static_cast<i64>(warp_size_)) <= 32,
              "hazard checker supports at most 32 warps per block");
}

u64 BlockChecker::flat_id(sim::Dim3 b) const {
  return b.x + static_cast<u64>(grid_.x) *
                   (b.y + static_cast<u64>(grid_.y) * b.z);
}

void BlockChecker::begin_block(sim::Dim3 block) {
  // Epochs never repeat across blocks, so stale shadow entries can never
  // alias a fresh block — the whole shadow resets in O(1).
  ++epoch_;
  cur_block_ = block;
  block_race_accesses_ = 0;
  block_records_ = 0;
  gm_begin(block);
}

void BlockChecker::gm_begin(sim::Dim3 block) {
  gm_.begin_block(flat_id(block), block);
}

void BlockChecker::on_barrier() { ++epoch_; }

void BlockChecker::end_block() {
  gm_end();
  ++blocks_checked_;
}

void BlockChecker::report(HazardKind kind, u64 byte, const sim::Access& a,
                          u32 lane, u32 round, u64 op_index,
                          const HazardOp& first) {
  if (block_records_ >= kMaxRecordsPerBlock ||
      records_.size() >= kMaxRecords) {
    return;
  }
  ++block_records_;
  HazardRecord r;
  r.kind = kind;
  r.block = cur_block_;
  r.addr = byte;
  r.bytes = a.bytes;
  r.epoch = epoch_;
  r.first = first;
  r.second = HazardOp{a.op, lane / warp_size_, lane, round, op_index};
  records_.push_back(r);
}

void BlockChecker::on_access(u32 lane, u32 round, u64 op_index,
                             const sim::Access& a) {
  if (a.bytes == 0) return;  // predicated-off lane: no memory touched
  switch (a.op) {
    case sim::Op::StoreGlobal:
      gm_.note(a.addr, a.bytes);
      return;
    case sim::Op::LoadShared:
    case sim::Op::StoreShared:
      break;
    default:
      return;
  }
  KCONV_ASSERT(a.addr + a.bytes <= shadow_.size());
  const u32 warp = lane / warp_size_;
  const bool is_write = a.op == sim::Op::StoreShared;
  // One report per racing access (the first conflicting byte), but the
  // shadow is updated for the full range so later hazards stay precise.
  bool raced = false;
  for (u64 byte = a.addr; byte < a.addr + a.bytes; ++byte) {
    Shadow& s = shadow_[byte];
    if (!raced && s.write_epoch == epoch_) {
      const u32 w_warp = s.w_lane / warp_size_;
      if (w_warp != warp) {
        report(is_write ? HazardKind::SmemWaw : HazardKind::SmemRaw, byte, a,
               lane, round, op_index,
               HazardOp{s.w_kind, w_warp, s.w_lane, s.w_round, s.w_op});
        raced = true;
      } else if (s.w_round == round && s.w_lane != lane) {
        // Same warp instruction split into divergent subgroups: no
        // ordering edge between the lanes.
        report(HazardKind::SmemIntraWarp, byte, a, lane, round, op_index,
               HazardOp{s.w_kind, w_warp, s.w_lane, s.w_round, s.w_op});
        raced = true;
      }
    }
    if (!raced && is_write && s.read_epoch == epoch_) {
      const u32 other_warps = s.reader_warps & ~(1u << warp);
      const u32 r0_warp = s.r0_lane / warp_size_;
      if (other_warps != 0) {
        // Report a reader from another warp: r0 if it qualifies, else r1
        // (which by construction is from a different warp than r0).
        if (r0_warp != warp) {
          report(HazardKind::SmemWar, byte, a, lane, round, op_index,
                 HazardOp{s.r0_kind, r0_warp, s.r0_lane, s.r0_round,
                          s.r0_op});
        } else {
          report(HazardKind::SmemWar, byte, a, lane, round, op_index,
                 HazardOp{s.r1_kind, s.r1_lane / warp_size_, s.r1_lane,
                          s.r1_round, s.r1_op});
        }
        raced = true;
      } else if (s.r0_round == round && s.r0_lane != lane) {
        report(HazardKind::SmemIntraWarp, byte, a, lane, round, op_index,
               HazardOp{s.r0_kind, r0_warp, s.r0_lane, s.r0_round, s.r0_op});
        raced = true;
      }
    }
    if (is_write) {
      s.write_epoch = epoch_;
      s.w_lane = lane;
      s.w_round = round;
      s.w_op = op_index;
      s.w_kind = a.op;
    } else {
      if (s.read_epoch != epoch_) {
        s.read_epoch = epoch_;
        s.reader_warps = 0;
      }
      if (s.reader_warps != 0 && s.r0_lane / warp_size_ != warp) {
        s.r1_lane = s.r0_lane;
        s.r1_round = s.r0_round;
        s.r1_op = s.r0_op;
        s.r1_kind = s.r0_kind;
      }
      s.r0_lane = lane;
      s.r0_round = round;
      s.r0_op = op_index;
      s.r0_kind = a.op;
      s.reader_warps |= 1u << warp;
    }
  }
  if (raced) {
    ++races_total_;
    ++block_race_accesses_;
  }
}

void finalize_hazards(std::vector<BlockChecker*> checkers,
                      AnalysisReport& rep) {
  rep.hazard_checked = true;
  GmemWriteMap all_writes;
  for (BlockChecker* c : checkers) {
    if (c == nullptr) continue;
    rep.blocks_checked += c->blocks_checked();
    rep.races_total += c->races_total();
    for (const HazardRecord& r : c->records()) {
      if (rep.hazards.size() < kMaxReportedHazards) rep.hazards.push_back(r);
    }
    all_writes.append(std::move(c->writes()));
  }
  all_writes.detect(rep.hazards, rep.gm_overlaps_total, kMaxReportedHazards);
}

}  // namespace kconv::analysis
