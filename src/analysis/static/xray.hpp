// kconv-xray: symbolic static kernel analysis (docs/MODEL.md §10).
//
// A KernelModel describes a kernel as a list of *access sites* (one per
// static memory instruction in the source) plus an `emit` function that
// re-derives every lane's address affinely from the launch config and the
// block index — no Device, no coroutines, no functional memory. The engine
// walks the emitted instruction stream exactly like the dynamic executor
// walks retired warp transactions: per instruction, per warp, the lanes'
// accesses feed the very same analyze_smem / analyze_gmem / analyze_const
// models, so the predicted counters are bit-equal to an executed launch by
// construction (the exact-vs-bounded contract is spelled out in
// `cross_validate` and docs/MODEL.md §10).
//
// On top of the counter prediction the engine derives, per access site:
//   * bank-conflict degree under the native, 4-byte and 8-byte bank modes
//     (the paper's §2.1 Kepler-vs-Fermi axis),
//   * GM coalescing sector counts (§2.2),
//   * a barrier-interval may-overlap analysis over shared-memory ranges
//     that classifies every smem site pair as definite-race /
//     possible-race / proven-disjoint,
// and paper-cited findings in the style of the kconv-check linter.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.hpp"
#include "src/common/types.hpp"
#include "src/sim/arch.hpp"
#include "src/sim/config.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/event.hpp"
#include "src/sim/stats.hpp"

namespace kconv::xray {

/// One lane's slot in a modeled warp instruction. `pred == false` mirrors a
/// predicated-off lane (`ld_global_if` with a false guard): the executor
/// sees an empty Access{op, 0, 0} for it, and the counter engine does the
/// same. `addr`/`bytes` still carry the would-be access, and `pred_any`
/// widens the predicate to "active in SOME block of the grid" (its
/// block-invariant part): the superset race pass reasons over pred_any so
/// edge-block predicates are covered without inventing accesses no block
/// ever issues.
struct LaneAccess {
  u64 addr = 0;
  u32 bytes = 0;
  bool pred = true;      ///< active in the block being modeled
  bool pred_any = true;  ///< active in at least one block of the grid
};

/// One static memory instruction of the kernel source.
struct SiteDecl {
  std::string name;       ///< stable kebab-case id, e.g. "img-stage-sm-store"
  sim::Op op = sim::Op::Sync;
  std::string citation;   ///< paper section grounding this access pattern
  /// True when the site's addresses depend on runtime data (none of the
  /// shipping kernels have such sites — every predicate and index is a pure
  /// function of launch config and block id). Data-dependent sites demote
  /// race verdicts to possible-race and are excluded from the exact
  /// cross-validation contract.
  bool data_dependent = false;
};

/// Aggregated per-site profile over the analyzed blocks.
struct SiteStats {
  u64 instrs = 0;         ///< retired warp transactions (all-off groups skipped)
  u64 live_lanes = 0;     ///< predicated-on lane slots across those instrs
  u64 lane_bytes = 0;     ///< bytes the live lanes asked for
  u64 unique_bytes = 0;   ///< smem: distinct bytes moved across banks
  u64 request_cycles = 0;      ///< smem, native bank mode
  u64 request_cycles_4b = 0;   ///< smem, forced 4-byte banks (Fermi/Maxwell)
  u64 request_cycles_8b = 0;   ///< smem, forced 8-byte banks (Kepler)
  u32 max_conflict_degree = 0; ///< worst single-instruction cycles, native
  u64 sectors = 0;        ///< gm: distinct 32B sectors requested
  u64 const_requests = 0; ///< const: serialized broadcast requests
};

enum class RaceVerdict : u8 { ProvenDisjoint, PossibleRace, DefiniteRace };
const char* race_verdict_name(RaceVerdict v);  // kebab-case, stable

/// Verdict for one unordered smem site pair (site_a <= site_b).
struct RacePair {
  u32 site_a = 0;
  u32 site_b = 0;
  RaceVerdict verdict = RaceVerdict::ProvenDisjoint;
  /// True when the two sites ever touch a common smem byte with at least
  /// one write inside one barrier interval (disjoint pairs that never
  /// overlap have this false).
  bool overlap = false;
  u64 witness_addr = 0;  ///< first conflicting byte (non-disjoint verdicts)
};

/// A paper-cited static finding, in the spirit of analysis::LintFinding but
/// anchored to an access site.
struct Finding {
  std::string site;  ///< site name, or "" for launch-level findings
  std::string kind;  ///< kebab-case, stable (pinned by the schema tests)
  analysis::Severity severity = analysis::Severity::Info;
  double value = 0.0;
  double threshold = 0.0;
  std::string message;
  std::string remediation;
  std::string citation;
};

class ModelSink;

/// The symbolic description of one kernel launch.
struct KernelModel {
  std::string kernel;  ///< e.g. "general_conv"
  sim::LaunchConfig cfg;
  std::vector<SiteDecl> sites;
  /// The §3/§4 communication lower bound in GM bytes (input + filters +
  /// output each moved once); 0 when the kernel states no bound.
  double min_gm_bytes = 0.0;
  /// Emits the block's full instruction stream, in program order, into the
  /// sink. Each `site` call covers EVERY lane of the block (the kernels are
  /// lockstep: loop bounds are thread-independent); each `sync` is one
  /// block-wide barrier. Must be a pure function of (cfg, arch, block).
  std::function<void(sim::Dim3 block, ModelSink& sink)> emit;
};

/// Receives the modeled instruction stream of one block.
class ModelSink {
 public:
  virtual ~ModelSink() = default;
  /// One warp-synchronous instruction at `site`; `lanes.size()` must equal
  /// the block's lane count.
  virtual void site(u32 site, std::span<const LaneAccess> lanes) = 0;
  virtual void sync() = 0;
  /// Arithmetic issued uniformly by every lane (warp-attributed like the
  /// executor: lane ops sum, warp instrs take the per-warp max). Only
  /// *explicit* kernel arithmetic goes here — the one address-computation
  /// ALU op ThreadCtx charges per taken global/shared access is derived by
  /// the engine from each site's predicates automatically.
  virtual void fma(u64 lane_ops) = 0;
  virtual void alu(u64 lane_ops) = 0;
};

struct XrayOptions {
  /// Flat block ids to analyze (empty = the whole grid). The autotuner
  /// passes the same evenly spaced sample the launch layer would execute.
  std::vector<u64> block_ids;
  /// Run the barrier-interval may-overlap analysis (two extra passes over
  /// the first analyzed block).
  bool races = true;
  /// Score each smem site under forced 4-byte and 8-byte banks too.
  bool dual_bank_modes = true;
  /// Derive paper-cited findings from the site profiles.
  bool findings = true;
};

/// Everything the static pass derives for one launch.
struct StaticReport {
  std::string kernel;
  sim::LaunchConfig cfg;
  std::vector<SiteDecl> sites;
  std::vector<SiteStats> site_stats;   // parallel to `sites`
  /// Every unordered smem site pair, classified. Pairs that never overlap
  /// are ProvenDisjoint with overlap == false.
  std::vector<RacePair> races;
  /// Predicted dynamic counters. Exact fields per the cross-validation
  /// contract; gm_sectors_dram / const_line_misses / pattern counters stay
  /// 0 (cache-state-dependent — see docs/MODEL.md §10).
  sim::KernelStats predicted;
  u64 blocks_analyzed = 0;
  u64 blocks_total = 0;
  bool sampled = false;
  double min_gm_bytes = 0.0;
  double gm_bytes_moved = 0.0;  ///< predicted sectors x sector bytes
  /// FNV-1a over the first analyzed block's site profile + launch geometry:
  /// the kernel's static access signature (plan-cache pre-validation).
  u64 signature = 0;
  std::vector<Finding> findings;

  /// No definite races and no findings at Warning or above.
  bool clean() const;
};

/// Runs the symbolic analysis. Throws kconv::Error on malformed models
/// (site index out of range, lane count mismatch).
StaticReport analyze(const sim::Arch& arch, const KernelModel& model,
                     const XrayOptions& opt = {});

/// The block-0-only access signature — the cheap entry the kernel runners
/// call when a plan cache is attached. Equal to `analyze(...).signature`
/// whenever block 0 is the first analyzed block.
u64 static_signature(const sim::Arch& arch, const KernelModel& model);

/// static_signature behind a process-wide memo: `make` builds the model
/// (and the block-0 symbolic walk runs) only the first time a given
/// (`key`, signature-relevant arch geometry) combination is seen.
/// `key` must uniquely determine the model — the kernel runners pass
/// their plan key, which folds in every access-shaping parameter.
/// Thread-safe; keeps warm/analytic launch paths from paying a
/// block's worth of symbolic execution per launch.
u64 memoized_signature(const sim::Arch& arch, const std::string& key,
                       const std::function<KernelModel()>& make);

/// Static-vs-dynamic counter comparison (the cross-validation contract,
/// docs/MODEL.md §10). Exact fields — bit-equal on any full-grid launch
/// (serial, parallel, replay):
///   smem_instrs, smem_request_cycles, smem_bytes, smem_lane_bytes,
///   smem_store_instrs, smem_store_request_cycles, gm_instrs, gm_sectors,
///   gm_bytes_useful, const_instrs, const_requests, barriers, gm_phases,
///   gm_dep_phases, divergent_retires, fma/alu lane ops + warp instrs,
///   max_warp_instrs, blocks_executed.
/// Under `analytic` launches the address-dependent gm_sectors is served
/// scaled-from-representative by the dynamic side and is skipped here.
/// Never compared (cache-state / instrumentation): gm_sectors_dram,
/// const_line_misses, pattern_lookups, pattern_hits.
struct CrossCheck {
  bool ok = true;
  std::vector<std::string> mismatches;  // "field: static=X dynamic=Y"
};
CrossCheck cross_validate(const StaticReport& rep,
                          const sim::KernelStats& dyn, bool analytic);

/// Human-readable report ("=== kconv-xray ===" ... verdict line).
std::string format_static(const StaticReport& rep);

/// JSON object (no trailing newline), members indented by `indent` spaces —
/// same embedding convention as analysis::to_json.
std::string to_json(const StaticReport& rep, int indent = 0);

/// Models the Device allocator so describers can place buffers at the exact
/// flat addresses a real run would see (GM sector splits depend on base
/// alignment). Mirrors sim::Device: monotonic bump from 0x1000 with
/// 256-byte-aligned successors; constant space is a separate instance.
class AddressSpace {
 public:
  u64 alloc_bytes(u64 bytes) {
    const u64 base = next_;
    next_ = static_cast<u64>(round_up(static_cast<i64>(base + bytes), 256));
    return base;
  }
  u64 alloc_floats(i64 count) {
    return alloc_bytes(static_cast<u64>(count) * sizeof(float));
  }
  /// A DevicePlanes<float> allocation: returns the base address and writes
  /// the row pitch (elements) — pitch rows padded to 16B, plus the 16-float
  /// over-read slack.
  u64 alloc_planes(i64 planes, i64 h, i64 w, i64& pitch_out) {
    pitch_out = round_up(w, 4);
    return alloc_floats(planes * h * pitch_out + 16);
  }

 private:
  u64 next_ = 0x1000;
};

}  // namespace kconv::xray
