#include "src/analysis/static/xray.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"
#include "src/sim/banks.hpp"
#include "src/sim/coalescing.hpp"
#include "src/sim/constmem.hpp"

namespace kconv::xray {

const char* race_verdict_name(RaceVerdict v) {
  switch (v) {
    case RaceVerdict::ProvenDisjoint: return "proven-disjoint";
    case RaceVerdict::PossibleRace: return "possible-race";
    case RaceVerdict::DefiniteRace: return "definite-race";
  }
  return "?";
}

bool StaticReport::clean() const {
  for (const RacePair& r : races) {
    if (r.verdict == RaceVerdict::DefiniteRace) return false;
  }
  for (const Finding& f : findings) {
    if (f.severity != analysis::Severity::Info) return false;
  }
  return true;
}

namespace {

constexpr u64 kFnvOffset = 1469598103934665603ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

u64 fnv1a(u64 h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

u64 fnv_u64(u64 h, u64 v) { return fnv1a(h, &v, sizeof(v)); }

u64 fnv_str(u64 h, const std::string& s) {
  h = fnv_u64(h, s.size());
  return fnv1a(h, s.data(), s.size());
}

sim::Dim3 unflatten(const sim::Dim3& grid, u64 flat) {
  return sim::Dim3{static_cast<u32>(flat % grid.x),
                   static_cast<u32>((flat / grid.x) % grid.y),
                   static_cast<u32>(flat / (static_cast<u64>(grid.x) *
                                            grid.y))};
}

bool is_smem(sim::Op op) {
  return op == sim::Op::LoadShared || op == sim::Op::StoreShared;
}
bool is_gmem(sim::Op op) {
  return op == sim::Op::LoadGlobal || op == sim::Op::StoreGlobal;
}

/// Mirrors the executor's retire loop (block_exec.cpp) over the modeled
/// stream: per instruction, per warp, the lanes' accesses feed the same
/// analyzers under the same counting rules, so the predicted counters are
/// bit-equal to an executed launch by construction.
class CounterSink final : public ModelSink {
 public:
  CounterSink(const sim::Arch& arch, const KernelModel& model,
              bool dual_banks, std::vector<SiteStats>& site_stats,
              sim::KernelStats& stats)
      : arch_(arch),
        model_(model),
        dual_banks_(dual_banks),
        site_stats_(site_stats),
        stats_(stats),
        n_lanes_(static_cast<u32>(model.cfg.block.count())),
        n_warps_(static_cast<u32>(
            ceil_div(static_cast<i64>(n_lanes_), arch.warp_size))) {
    acc_.reserve(arch.warp_size);
    gcost_.sectors.reserve(2 * arch.warp_size);
    lane_alu_.resize(n_lanes_);
  }

  void begin_block() {
    events_ = 0;
    fma_per_lane_ = 0;
    alu_per_lane_ = 0;
    std::fill(lane_alu_.begin(), lane_alu_.end(), u64{0});
    seg_gm_load_ = false;
    seg_sm_store_ = false;
  }

  /// Flushes the final (sync-less) segment and the warp-granular arithmetic
  /// attribution, exactly like run_block's epilogue. Events and FMA ops are
  /// lane-uniform (every lane executes every co_await and every arithmetic
  /// statement); only the implicit address-ALU charge varies by predicate,
  /// so the per-warp maxes reduce to per-warp lane_alu_ maxes.
  void end_block() {
    if (seg_gm_load_) ++stats_.gm_phases;
    if (seg_gm_load_ && seg_sm_store_) ++stats_.gm_dep_phases;
    seg_gm_load_ = false;
    seg_sm_store_ = false;
    stats_.fma_lane_ops += fma_per_lane_ * n_lanes_;
    stats_.fma_warp_instrs += fma_per_lane_ * n_warps_;
    for (u32 w = 0; w < n_warps_; ++w) {
      const u32 lo = w * arch_.warp_size;
      const u32 hi = std::min(lo + arch_.warp_size, n_lanes_);
      u64 max_alu = 0;
      for (u32 t = lo; t < hi; ++t) {
        stats_.alu_lane_ops += alu_per_lane_ + lane_alu_[t];
        max_alu = std::max(max_alu, alu_per_lane_ + lane_alu_[t]);
      }
      stats_.alu_warp_instrs += max_alu;
      stats_.max_warp_instrs = std::max(
          stats_.max_warp_instrs, events_ + fma_per_lane_ + max_alu);
    }
    ++stats_.blocks_executed;
  }

  void site(u32 site, std::span<const LaneAccess> lanes) override {
    KCONV_CHECK(site < model_.sites.size(),
                "xray: site index out of range");
    KCONV_CHECK(lanes.size() == n_lanes_,
                strf("xray: site '%s' emitted %zu lanes for a %u-lane block",
                     model_.sites[site].name.c_str(), lanes.size(),
                     n_lanes_));
    ++events_;
    const sim::Op op = model_.sites[site].op;
    // ThreadCtx charges one address-computation ALU op on the taken path of
    // every global/shared load and store (never for constant loads, never
    // for predicated-off lanes) — mirror it here so alu counters stay exact.
    if (op != sim::Op::LoadConst) {
      for (u32 t = 0; t < n_lanes_; ++t) {
        if (lanes[t].pred) ++lane_alu_[t];
      }
    }
    SiteStats& ss = site_stats_[site];
    for (u32 w = 0; w < n_warps_; ++w) {
      const u32 lo = w * arch_.warp_size;
      const u32 hi = std::min(lo + arch_.warp_size, n_lanes_);
      acc_.clear();
      for (u32 t = lo; t < hi; ++t) {
        if (lanes[t].pred) {
          acc_.push_back(
              {op, lanes[t].addr, lanes[t].bytes, profile::Phase::Other});
        } else {
          // A predicated-off lane keeps its slot as an empty access.
          acc_.push_back({op, 0, 0, profile::Phase::Other});
        }
      }
      retire(op, ss);
    }
  }

  void sync() override {
    ++events_;
    ++stats_.barriers;
    if (seg_gm_load_) ++stats_.gm_phases;
    if (seg_gm_load_ && seg_sm_store_) ++stats_.gm_dep_phases;
    seg_gm_load_ = false;
    seg_sm_store_ = false;
  }

  void fma(u64 lane_ops) override { fma_per_lane_ += lane_ops; }
  void alu(u64 lane_ops) override { alu_per_lane_ += lane_ops; }

 private:
  u64 live_count() const {
    u64 live = 0;
    for (const sim::Access& a : acc_) live += a.bytes > 0 ? 1 : 0;
    return live;
  }

  void retire(sim::Op op, SiteStats& ss) {
    switch (op) {
      case sim::Op::LoadShared:
      case sim::Op::StoreShared: {
        const sim::SmemCost c = sim::analyze_smem(acc_, arch_.smem_banks,
                                                  arch_.smem_bank_bytes);
        if (c.lane_bytes == 0) break;  // every lane predicated off
        ++stats_.smem_instrs;
        stats_.smem_request_cycles += c.request_cycles;
        stats_.smem_bytes += c.unique_bytes;
        stats_.smem_lane_bytes += c.lane_bytes;
        if (op == sim::Op::StoreShared) {
          ++stats_.smem_store_instrs;
          stats_.smem_store_request_cycles += c.request_cycles;
          seg_sm_store_ = true;
        }
        ++ss.instrs;
        ss.live_lanes += live_count();
        ss.lane_bytes += c.lane_bytes;
        ss.unique_bytes += c.unique_bytes;
        ss.request_cycles += c.request_cycles;
        ss.max_conflict_degree =
            std::max(ss.max_conflict_degree, c.request_cycles);
        if (dual_banks_) {
          ss.request_cycles_4b +=
              sim::analyze_smem(acc_, arch_.smem_banks, 4).request_cycles;
          ss.request_cycles_8b +=
              sim::analyze_smem(acc_, arch_.smem_banks, 8).request_cycles;
        }
        break;
      }
      case sim::Op::LoadGlobal:
      case sim::Op::StoreGlobal: {
        sim::analyze_gmem(acc_, arch_.gm_sector_bytes, gcost_);
        if (gcost_.lane_bytes == 0) break;
        ++stats_.gm_instrs;
        stats_.gm_sectors += gcost_.sectors.size();
        stats_.gm_bytes_useful += gcost_.lane_bytes;
        if (op == sim::Op::LoadGlobal) seg_gm_load_ = true;
        ++ss.instrs;
        ss.live_lanes += live_count();
        ss.lane_bytes += gcost_.lane_bytes;
        ss.sectors += gcost_.sectors.size();
        break;
      }
      case sim::Op::LoadConst: {
        const sim::ConstCost c =
            sim::analyze_const(acc_, arch_.const_line_bytes);
        ++stats_.const_instrs;
        stats_.const_requests += c.requests;
        ++ss.instrs;
        ss.live_lanes += live_count();
        ss.const_requests += c.requests;
        for (const sim::Access& a : acc_) ss.lane_bytes += a.bytes;
        break;
      }
      default:
        KCONV_CHECK(false, "xray: unsupported site op");
    }
  }

  const sim::Arch& arch_;
  const KernelModel& model_;
  const bool dual_banks_;
  std::vector<SiteStats>& site_stats_;
  sim::KernelStats& stats_;
  const u32 n_lanes_;
  const u32 n_warps_;
  std::vector<sim::Access> acc_;
  sim::GmemCost gcost_;
  std::vector<u64> lane_alu_;  // implicit address-ALU charges, per lane
  u64 events_ = 0;
  u64 fma_per_lane_ = 0;
  u64 alu_per_lane_ = 0;
  bool seg_gm_load_ = false;
  bool seg_sm_store_ = false;
};

/// Byte-exact may-overlap analysis over one block's shared memory, one
/// barrier interval at a time. Two accesses conflict iff they touch a
/// common byte from DIFFERENT warps inside one interval with at least one
/// write: same-warp accesses are either ordered (different instructions
/// retire in round order) or warp-synchronous (one lockstep instruction),
/// matching the dynamic detector's epoch model. The `superset` pass widens
/// every predicate to its pred_any form, covering the access pattern of
/// every block of the grid (predicates only remove accesses, and smem
/// addresses are block-invariant in the shipping kernels).
class RaceSink final : public ModelSink {
 public:
  RaceSink(const KernelModel& model, u32 warp_size, bool superset)
      : model_(model),
        superset_(superset),
        warp_size_(warp_size),
        n_sites_(static_cast<u32>(model.sites.size())),
        smem_bytes_(model.cfg.shared_bytes) {
    stamp_.assign(smem_bytes_, 0);
    wmask_.assign(static_cast<std::size_t>(smem_bytes_) * n_sites_, 0);
    rmask_.assign(static_cast<std::size_t>(smem_bytes_) * n_sites_, 0);
    const std::size_t pairs = static_cast<std::size_t>(n_sites_) * n_sites_;
    race_.assign(pairs, false);
    overlap_.assign(pairs, false);
    witness_.assign(pairs, 0);
  }

  void site(u32 site, std::span<const LaneAccess> lanes) override {
    const sim::Op op = model_.sites[site].op;
    if (!is_smem(op)) return;
    const bool write = op == sim::Op::StoreShared;
    for (u32 t = 0; t < lanes.size(); ++t) {
      if (superset_ ? !lanes[t].pred_any : !lanes[t].pred) continue;
      const u32 warp = t / warp_size_;
      // Superset addresses of predicated-off lanes may decode past the
      // staging area (the guarded index math is free to); clamp.
      const u64 end =
          std::min<u64>(lanes[t].addr + lanes[t].bytes, smem_bytes_);
      for (u64 b = lanes[t].addr; b < end; ++b) touch(site, warp, b, write);
    }
  }

  void sync() override { ++epoch_; }
  void fma(u64) override {}
  void alu(u64) override {}

  bool race(u32 a, u32 b) const { return race_[a * n_sites_ + b]; }
  bool overlap(u32 a, u32 b) const { return overlap_[a * n_sites_ + b]; }
  u64 witness(u32 a, u32 b) const { return witness_[a * n_sites_ + b]; }

  /// Folds (a, b) and (b, a) entries together so lookups are symmetric.
  void symmetrize() {
    for (u32 a = 0; a < n_sites_; ++a) {
      for (u32 b = 0; b < a; ++b) {
        merge(a * n_sites_ + b, b * n_sites_ + a);
        merge(b * n_sites_ + a, a * n_sites_ + b);
      }
    }
  }

 private:
  void merge(std::size_t dst, std::size_t src) {
    if (race_[src] && !race_[dst]) witness_[dst] = witness_[src];
    race_[dst] = race_[dst] || race_[src];
    overlap_[dst] = overlap_[dst] || overlap_[src];
  }

  void touch(u32 site, u32 warp, u64 byte, bool write) {
    u32* wm = &wmask_[byte * n_sites_];
    u32* rm = &rmask_[byte * n_sites_];
    if (stamp_[byte] != epoch_) {
      std::fill_n(wm, n_sites_, 0u);
      std::fill_n(rm, n_sites_, 0u);
      stamp_[byte] = epoch_;
    }
    const u32 other = ~(1u << warp);
    for (u32 s2 = 0; s2 < n_sites_; ++s2) {
      // Earlier same-interval accesses that make this one a conflict
      // candidate: any write (and, when this is a write, any read too).
      const u32 cm = write ? (wm[s2] | rm[s2]) : wm[s2];
      if (cm == 0) continue;
      const std::size_t pair = site * n_sites_ + s2;
      if (!overlap_[pair]) overlap_[pair] = true;
      if ((cm & other) != 0 && !race_[pair]) {
        race_[pair] = true;
        witness_[pair] = byte;
      }
    }
    if (write) {
      wm[site] |= 1u << warp;
    } else {
      rm[site] |= 1u << warp;
    }
  }

  const KernelModel& model_;
  const bool superset_;
  const u32 warp_size_;
  const u32 n_sites_;
  const u64 smem_bytes_;
  u32 epoch_ = 1;
  std::vector<u32> stamp_;
  std::vector<u32> wmask_;  // [byte][site] -> warps that wrote the byte
  std::vector<u32> rmask_;  // [byte][site] -> warps that read the byte
  std::vector<char> race_;
  std::vector<char> overlap_;
  std::vector<u64> witness_;
};

/// The access signature: launch geometry + the per-site retire profile of
/// the first analyzed block. Any change to an address expression, a
/// predicate, a site's op, or the instruction mix moves it.
u64 signature_of(const KernelModel& model,
                 const std::vector<SiteStats>& first_block,
                 const sim::KernelStats& stats) {
  u64 h = kFnvOffset;
  h = fnv_str(h, model.kernel);
  h = fnv_u64(h, model.cfg.grid.x);
  h = fnv_u64(h, model.cfg.grid.y);
  h = fnv_u64(h, model.cfg.grid.z);
  h = fnv_u64(h, model.cfg.block.x);
  h = fnv_u64(h, model.cfg.block.y);
  h = fnv_u64(h, model.cfg.block.z);
  h = fnv_u64(h, model.cfg.shared_bytes);
  for (std::size_t i = 0; i < model.sites.size(); ++i) {
    const SiteDecl& d = model.sites[i];
    h = fnv_str(h, d.name);
    h = fnv_u64(h, static_cast<u64>(d.op));
    const SiteStats& s = first_block[i];
    h = fnv_u64(h, s.instrs);
    h = fnv_u64(h, s.lane_bytes);
    h = fnv_u64(h, s.unique_bytes);
    h = fnv_u64(h, s.request_cycles);
    h = fnv_u64(h, s.sectors);
    h = fnv_u64(h, s.const_requests);
  }
  h = fnv_u64(h, stats.barriers);
  h = fnv_u64(h, stats.max_warp_instrs);
  return h;
}

// Finding calibration. Thresholds follow the dynamic linter
// (analysis::LintThresholds) where a counterpart exists; the volume gates
// keep structurally-minor sites (halo tails, staging stores) from drowning
// the report — the paper's own kernels must come out clean.
constexpr u64 kMinSiteInstrs = 32;
constexpr double kReplayTrip = 2.0;
constexpr double kWidthFraction = 0.75;
constexpr double kWidthVolumeGate = 0.25;
constexpr double kOverfetchTrip = 4.0;
constexpr double kOverfetchVolumeGate = 0.10;
constexpr double kConstRequestsTrip = 2.0;

void add_finding(StaticReport& rep, std::string site, std::string kind,
                 analysis::Severity sev, double value, double threshold,
                 std::string message, std::string remediation,
                 std::string citation) {
  Finding f;
  f.site = std::move(site);
  f.kind = std::move(kind);
  f.severity = sev;
  f.value = value;
  f.threshold = threshold;
  f.message = std::move(message);
  f.remediation = std::move(remediation);
  f.citation = std::move(citation);
  rep.findings.push_back(std::move(f));
}

void derive_findings(const sim::Arch& arch, StaticReport& rep) {
  for (std::size_t i = 0; i < rep.sites.size(); ++i) {
    const SiteDecl& d = rep.sites[i];
    const SiteStats& s = rep.site_stats[i];
    if (s.instrs < kMinSiteInstrs) continue;
    const double instrs = static_cast<double>(s.instrs);
    if (is_smem(d.op)) {
      const double replay = static_cast<double>(s.request_cycles) / instrs;
      if (replay > kReplayTrip) {
        const double r4 = static_cast<double>(s.request_cycles_4b) / instrs;
        const double r8 = static_cast<double>(s.request_cycles_8b) / instrs;
        add_finding(
            rep, d.name, "bank-conflict-replays", analysis::Severity::Warning,
            replay, kReplayTrip,
            strf("%s replays %.2f request cycles per instruction (worst "
                 "single instruction %u; 4-byte banks %.2f, 8-byte banks "
                 "%.2f; 1.0 = conflict-free)",
                 sim::op_name(d.op), replay, s.max_conflict_degree, r4, r8),
            "restructure the layout so a warp's lanes hit distinct banks — "
            "pad the transposed leading dimension by one bank word as in "
            "the paper's §4.2 filter staging",
            d.citation.empty() ? "§2.1" : d.citation);
      }
      const double avg_lane =
          s.live_lanes == 0 ? 0.0
                            : static_cast<double>(s.lane_bytes) /
                                  static_cast<double>(s.live_lanes);
      const double floor = kWidthFraction * arch.smem_bank_bytes;
      const bool dominant =
          rep.predicted.smem_lane_bytes > 0 &&
          static_cast<double>(s.lane_bytes) >=
              kWidthVolumeGate *
                  static_cast<double>(rep.predicted.smem_lane_bytes);
      if (avg_lane < floor && dominant) {
        add_finding(
            rep, d.name, "bank-width-mismatch", analysis::Severity::Warning,
            avg_lane, floor,
            strf("average lane access width %.2f B is below the %u B bank "
                 "width (W_CD < W_SMB) on a dominant site",
                 avg_lane, arch.smem_bank_bytes),
            strf("widen the computation data width to the bank width "
                 "(Eq. 1: %u-byte units, e.g. float%u accesses) so each "
                 "bank cycle moves a full word",
                 arch.smem_bank_bytes, arch.smem_bank_bytes / 4),
            d.citation.empty() ? "§2.1" : d.citation);
      }
    } else if (is_gmem(d.op)) {
      const double moved =
          static_cast<double>(s.sectors) * arch.gm_sector_bytes;
      const double overfetch = moved / static_cast<double>(s.lane_bytes);
      const bool dominant =
          rep.gm_bytes_moved > 0 &&
          moved >= kOverfetchVolumeGate * rep.gm_bytes_moved;
      if (overfetch > kOverfetchTrip && dominant) {
        add_finding(
            rep, d.name, "uncoalesced-gmem", analysis::Severity::Warning,
            overfetch, kOverfetchTrip,
            strf("%s moves %.2fx the bytes its lanes ask for (%u B sector "
                 "granularity)",
                 sim::op_name(d.op), overfetch, arch.gm_sector_bytes),
            "make contiguous lanes access contiguous addresses so requests "
            "coalesce into full sectors, or stage through shared memory",
            d.citation.empty() ? "§2.2" : d.citation);
      }
    } else if (d.op == sim::Op::LoadConst) {
      const double rpi = static_cast<double>(s.const_requests) / instrs;
      if (rpi > kConstRequestsTrip) {
        add_finding(
            rep, d.name, "low-cm-broadcast", analysis::Severity::Warning,
            rpi, kConstRequestsTrip,
            strf("constant loads serialize into %.2f requests per "
                 "instruction (1.0 = full-warp broadcast)",
                 rpi),
            "make every lane of a warp read the same constant address per "
            "instruction (loop filters in the same order across lanes)",
            d.citation.empty() ? "§2.3/§3.3" : d.citation);
      }
    }
  }

  for (const RacePair& p : rep.races) {
    if (p.verdict == RaceVerdict::ProvenDisjoint) continue;
    const bool definite = p.verdict == RaceVerdict::DefiniteRace;
    add_finding(
        rep, rep.sites[p.site_a].name + "+" + rep.sites[p.site_b].name,
        definite ? "smem-definite-race" : "smem-possible-race",
        definite ? analysis::Severity::Error : analysis::Severity::Warning,
        static_cast<double>(p.witness_addr), 0.0,
        strf("sites '%s' and '%s' touch smem byte 0x%llx from different "
             "warps within one barrier interval%s",
             rep.sites[p.site_a].name.c_str(),
             rep.sites[p.site_b].name.c_str(),
             static_cast<unsigned long long>(p.witness_addr),
             definite ? "" : " under some block's predicates"),
        "order the conflicting accesses with a barrier (__syncthreads "
        "between the staging store and the consuming load)",
        "§3 Alg. 1 / §4 Alg. 2");
  }

  if (rep.min_gm_bytes > 0) {
    const double ratio = rep.gm_bytes_moved / rep.min_gm_bytes;
    add_finding(
        rep, "", "gm-traffic-vs-bound", analysis::Severity::Info, ratio, 1.0,
        strf("predicted GM traffic is %.2fx the communication lower bound "
             "(%.3g MB moved vs %.3g MB minimum)",
             ratio, rep.gm_bytes_moved / 1e6, rep.min_gm_bytes / 1e6),
        "halo re-reads and per-tile filter reloads account for the excess; "
        "larger tiles trade occupancy for traffic",
        "§3.1/§4.1");
  }
}

}  // namespace

StaticReport analyze(const sim::Arch& arch, const KernelModel& model,
                     const XrayOptions& opt) {
  KCONV_CHECK(model.emit != nullptr, "xray: model has no emit function");
  KCONV_CHECK(model.cfg.block.count() >= 1 &&
                  model.cfg.block.count() <= 1024,
              "xray: block size out of range");
  KCONV_CHECK(model.cfg.grid.count() >= 1, "xray: empty grid");

  StaticReport rep;
  rep.kernel = model.kernel;
  rep.cfg = model.cfg;
  rep.sites = model.sites;
  rep.site_stats.assign(model.sites.size(), SiteStats{});
  rep.blocks_total = model.cfg.grid.count();
  rep.min_gm_bytes = model.min_gm_bytes;
  rep.sampled =
      !opt.block_ids.empty() && opt.block_ids.size() < rep.blocks_total;

  CounterSink counters(arch, model, opt.dual_bank_modes, rep.site_stats,
                       rep.predicted);
  u64 first_flat = 0;
  const auto run_one = [&](u64 flat) {
    counters.begin_block();
    model.emit(unflatten(model.cfg.grid, flat), counters);
    counters.end_block();
    if (rep.blocks_analyzed == 0) {
      first_flat = flat;
      rep.signature = signature_of(model, rep.site_stats, rep.predicted);
    }
    ++rep.blocks_analyzed;
  };
  if (opt.block_ids.empty()) {
    for (u64 flat = 0; flat < rep.blocks_total; ++flat) run_one(flat);
  } else {
    for (const u64 flat : opt.block_ids) {
      KCONV_CHECK(flat < rep.blocks_total,
                  "xray: sampled block id out of range");
      run_one(flat);
    }
  }
  rep.gm_bytes_moved =
      static_cast<double>(rep.predicted.gm_sectors) * arch.gm_sector_bytes;

  const bool have_smem = std::any_of(
      model.sites.begin(), model.sites.end(),
      [](const SiteDecl& d) { return is_smem(d.op); });
  if (opt.races && have_smem && model.cfg.shared_bytes > 0) {
    const sim::Dim3 b0 = unflatten(model.cfg.grid, first_flat);
    RaceSink actual(model, arch.warp_size, /*superset=*/false);
    model.emit(b0, actual);
    actual.symmetrize();
    RaceSink superset(model, arch.warp_size, /*superset=*/true);
    model.emit(b0, superset);
    superset.symmetrize();
    const u32 n = static_cast<u32>(model.sites.size());
    for (u32 a = 0; a < n; ++a) {
      if (!is_smem(model.sites[a].op)) continue;
      for (u32 b = a; b < n; ++b) {
        if (!is_smem(model.sites[b].op)) continue;
        RacePair p;
        p.site_a = a;
        p.site_b = b;
        p.overlap = superset.overlap(a, b);
        if (actual.race(a, b)) {
          p.verdict = RaceVerdict::DefiniteRace;
          p.witness_addr = actual.witness(a, b);
        } else if (superset.race(a, b) ||
                   (p.overlap && (model.sites[a].data_dependent ||
                                  model.sites[b].data_dependent))) {
          p.verdict = RaceVerdict::PossibleRace;
          p.witness_addr = superset.witness(a, b);
        }
        rep.races.push_back(p);
      }
    }
  }

  if (opt.findings) derive_findings(arch, rep);
  return rep;
}

u64 static_signature(const sim::Arch& arch, const KernelModel& model) {
  XrayOptions opt;
  opt.block_ids = {0};
  opt.races = false;
  opt.dual_bank_modes = false;
  opt.findings = false;
  return analyze(arch, model, opt).signature;
}

u64 memoized_signature(const sim::Arch& arch, const std::string& key,
                       const std::function<KernelModel()>& make) {
  // Only the geometry the signature hash actually consumes (bank layout,
  // sector size, warp width, constant line) discriminates between archs;
  // bandwidth/latency knobs cannot move an access signature.
  const std::string full_key =
      strf("%s|banks=%u.%u|sector=%u|warp=%u|cline=%u", key.c_str(),
           arch.smem_banks, arch.smem_bank_bytes, arch.gm_sector_bytes,
           arch.warp_size, arch.const_line_bytes);
  static std::mutex mu;
  static std::unordered_map<std::string, u64> memo;
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = memo.find(full_key);
    if (it != memo.end()) return it->second;
  }
  const u64 sig = static_signature(arch, make());
  std::lock_guard<std::mutex> lock(mu);
  memo.emplace(full_key, sig);
  return sig;
}

CrossCheck cross_validate(const StaticReport& rep,
                          const sim::KernelStats& dyn, bool analytic) {
  CrossCheck cc;
  const sim::KernelStats& s = rep.predicted;
  const auto cmp = [&](const char* name, u64 a, u64 b) {
    if (a != b) {
      cc.ok = false;
      cc.mismatches.push_back(
          strf("%s: static=%llu dynamic=%llu", name,
               static_cast<unsigned long long>(a),
               static_cast<unsigned long long>(b)));
    }
  };
  cmp("smem_instrs", s.smem_instrs, dyn.smem_instrs);
  cmp("smem_request_cycles", s.smem_request_cycles, dyn.smem_request_cycles);
  cmp("smem_bytes", s.smem_bytes, dyn.smem_bytes);
  cmp("smem_lane_bytes", s.smem_lane_bytes, dyn.smem_lane_bytes);
  cmp("smem_store_instrs", s.smem_store_instrs, dyn.smem_store_instrs);
  cmp("smem_store_request_cycles", s.smem_store_request_cycles,
      dyn.smem_store_request_cycles);
  cmp("gm_instrs", s.gm_instrs, dyn.gm_instrs);
  if (!analytic) cmp("gm_sectors", s.gm_sectors, dyn.gm_sectors);
  cmp("gm_bytes_useful", s.gm_bytes_useful, dyn.gm_bytes_useful);
  cmp("const_instrs", s.const_instrs, dyn.const_instrs);
  cmp("const_requests", s.const_requests, dyn.const_requests);
  cmp("barriers", s.barriers, dyn.barriers);
  cmp("gm_phases", s.gm_phases, dyn.gm_phases);
  cmp("gm_dep_phases", s.gm_dep_phases, dyn.gm_dep_phases);
  cmp("divergent_retires", s.divergent_retires, dyn.divergent_retires);
  cmp("fma_lane_ops", s.fma_lane_ops, dyn.fma_lane_ops);
  cmp("fma_warp_instrs", s.fma_warp_instrs, dyn.fma_warp_instrs);
  cmp("alu_lane_ops", s.alu_lane_ops, dyn.alu_lane_ops);
  cmp("alu_warp_instrs", s.alu_warp_instrs, dyn.alu_warp_instrs);
  cmp("max_warp_instrs", s.max_warp_instrs, dyn.max_warp_instrs);
  cmp("blocks_executed", s.blocks_executed, dyn.blocks_executed);
  return cc;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string format_static(const StaticReport& rep) {
  std::string out = "=== kconv-xray ===\n";
  out += strf("kernel: %s  grid %ux%ux%u  block %ux%ux%u  smem %u B\n",
              rep.kernel.c_str(), rep.cfg.grid.x, rep.cfg.grid.y,
              rep.cfg.grid.z, rep.cfg.block.x, rep.cfg.block.y,
              rep.cfg.block.z, rep.cfg.shared_bytes);
  out += strf("blocks: %llu analyzed of %llu%s  signature 0x%016llx\n",
              static_cast<unsigned long long>(rep.blocks_analyzed),
              static_cast<unsigned long long>(rep.blocks_total),
              rep.sampled ? " (sampled)" : "",
              static_cast<unsigned long long>(rep.signature));
  const sim::KernelStats& s = rep.predicted;
  out += strf("predicted: smem %llu instrs / %llu cycles (replay %.3f), "
              "gm %llu instrs / %llu sectors, const %llu instrs / %llu "
              "requests, %llu barriers\n",
              static_cast<unsigned long long>(s.smem_instrs),
              static_cast<unsigned long long>(s.smem_request_cycles),
              s.smem_replay_factor(),
              static_cast<unsigned long long>(s.gm_instrs),
              static_cast<unsigned long long>(s.gm_sectors),
              static_cast<unsigned long long>(s.const_instrs),
              static_cast<unsigned long long>(s.const_requests),
              static_cast<unsigned long long>(s.barriers));
  if (rep.min_gm_bytes > 0) {
    out += strf("traffic: %.3g MB GM moved vs %.3g MB lower bound (%.2fx)\n",
                rep.gm_bytes_moved / 1e6, rep.min_gm_bytes / 1e6,
                rep.gm_bytes_moved / rep.min_gm_bytes);
  }
  out += strf("sites: %zu\n", rep.sites.size());
  for (std::size_t i = 0; i < rep.sites.size(); ++i) {
    const SiteDecl& d = rep.sites[i];
    const SiteStats& st = rep.site_stats[i];
    out += strf("  [%s] %s (%s): %llu instrs", d.name.c_str(),
                sim::op_name(d.op), d.citation.c_str(),
                static_cast<unsigned long long>(st.instrs));
    if (st.instrs == 0) {
      out += "\n";
      continue;
    }
    const double instrs = static_cast<double>(st.instrs);
    if (is_smem(d.op)) {
      out += strf(", replay %.2f (4B banks %.2f / 8B banks %.2f), worst %u",
                  static_cast<double>(st.request_cycles) / instrs,
                  static_cast<double>(st.request_cycles_4b) / instrs,
                  static_cast<double>(st.request_cycles_8b) / instrs,
                  st.max_conflict_degree);
    } else if (is_gmem(d.op)) {
      out += strf(", %llu sectors, %llu B useful",
                  static_cast<unsigned long long>(st.sectors),
                  static_cast<unsigned long long>(st.lane_bytes));
    } else {
      out += strf(", %.2f requests/instr",
                  static_cast<double>(st.const_requests) / instrs);
    }
    out += "\n";
  }
  if (!rep.races.empty()) {
    u64 disjoint = 0;
    for (const RacePair& p : rep.races) {
      if (p.verdict == RaceVerdict::ProvenDisjoint) ++disjoint;
    }
    out += strf("races: %llu site pairs proven disjoint\n",
                static_cast<unsigned long long>(disjoint));
    for (const RacePair& p : rep.races) {
      if (p.verdict == RaceVerdict::ProvenDisjoint) continue;
      out += strf("  [%s] %s vs %s at smem byte 0x%llx\n",
                  race_verdict_name(p.verdict),
                  rep.sites[p.site_a].name.c_str(),
                  rep.sites[p.site_b].name.c_str(),
                  static_cast<unsigned long long>(p.witness_addr));
    }
  }
  if (!rep.findings.empty()) {
    out += strf("findings: %zu\n", rep.findings.size());
    for (const Finding& f : rep.findings) {
      out += strf("  [%s] %s%s%s: %s (measured %.3g, threshold %.3g, %s)\n",
                  analysis::severity_name(f.severity), f.kind.c_str(),
                  f.site.empty() ? "" : " at ",
                  f.site.c_str(), f.message.c_str(), f.value, f.threshold,
                  f.citation.c_str());
      out += strf("      fix: %s\n", f.remediation.c_str());
    }
  }
  out += strf("verdict: %s\n", rep.clean() ? "PASS" : "FAIL");
  return out;
}

std::string to_json(const StaticReport& rep, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n";
  out += in1 + strf("\"kernel\": \"%s\",\n", json_escape(rep.kernel).c_str());
  out += in1 + strf("\"grid\": [%u,%u,%u],\n", rep.cfg.grid.x, rep.cfg.grid.y,
                    rep.cfg.grid.z);
  out += in1 + strf("\"block\": [%u,%u,%u],\n", rep.cfg.block.x,
                    rep.cfg.block.y, rep.cfg.block.z);
  out += in1 + strf("\"shared_bytes\": %u,\n", rep.cfg.shared_bytes);
  out += in1 + strf("\"blocks_total\": %llu,\n",
                    static_cast<unsigned long long>(rep.blocks_total));
  out += in1 + strf("\"blocks_analyzed\": %llu,\n",
                    static_cast<unsigned long long>(rep.blocks_analyzed));
  out += in1 + strf("\"sampled\": %s,\n", rep.sampled ? "true" : "false");
  // Hex string: a raw 64-bit JSON number would lose precision past 2^53.
  out += in1 + strf("\"signature\": \"0x%016llx\",\n",
                    static_cast<unsigned long long>(rep.signature));
  out += in1 + strf("\"clean\": %s,\n", rep.clean() ? "true" : "false");
  const sim::KernelStats& s = rep.predicted;
  out += in1 + "\"predicted\": {\n";
  out += in2 + strf("\"smem_instrs\": %llu, \"smem_request_cycles\": %llu, "
                    "\"smem_bytes\": %llu, \"smem_lane_bytes\": %llu,\n",
                    static_cast<unsigned long long>(s.smem_instrs),
                    static_cast<unsigned long long>(s.smem_request_cycles),
                    static_cast<unsigned long long>(s.smem_bytes),
                    static_cast<unsigned long long>(s.smem_lane_bytes));
  out += in2 + strf("\"smem_store_instrs\": %llu, "
                    "\"smem_store_request_cycles\": %llu,\n",
                    static_cast<unsigned long long>(s.smem_store_instrs),
                    static_cast<unsigned long long>(
                        s.smem_store_request_cycles));
  out += in2 + strf("\"gm_instrs\": %llu, \"gm_sectors\": %llu, "
                    "\"gm_bytes_useful\": %llu,\n",
                    static_cast<unsigned long long>(s.gm_instrs),
                    static_cast<unsigned long long>(s.gm_sectors),
                    static_cast<unsigned long long>(s.gm_bytes_useful));
  out += in2 + strf("\"const_instrs\": %llu, \"const_requests\": %llu,\n",
                    static_cast<unsigned long long>(s.const_instrs),
                    static_cast<unsigned long long>(s.const_requests));
  out += in2 + strf("\"barriers\": %llu, \"gm_phases\": %llu, "
                    "\"gm_dep_phases\": %llu,\n",
                    static_cast<unsigned long long>(s.barriers),
                    static_cast<unsigned long long>(s.gm_phases),
                    static_cast<unsigned long long>(s.gm_dep_phases));
  out += in2 + strf("\"fma_lane_ops\": %llu, \"fma_warp_instrs\": %llu, "
                    "\"alu_lane_ops\": %llu, \"alu_warp_instrs\": %llu,\n",
                    static_cast<unsigned long long>(s.fma_lane_ops),
                    static_cast<unsigned long long>(s.fma_warp_instrs),
                    static_cast<unsigned long long>(s.alu_lane_ops),
                    static_cast<unsigned long long>(s.alu_warp_instrs));
  out += in2 + strf("\"max_warp_instrs\": %llu, \"blocks_executed\": %llu\n",
                    static_cast<unsigned long long>(s.max_warp_instrs),
                    static_cast<unsigned long long>(s.blocks_executed));
  out += in1 + "},\n";
  out += in1 + strf("\"gm_bytes_moved\": %.6g,\n", rep.gm_bytes_moved);
  out += in1 + strf("\"min_gm_bytes\": %.6g,\n", rep.min_gm_bytes);
  out += in1 + "\"sites\": [";
  for (std::size_t i = 0; i < rep.sites.size(); ++i) {
    const SiteDecl& d = rep.sites[i];
    const SiteStats& st = rep.site_stats[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 +
           strf("{\"name\": \"%s\", \"op\": \"%s\", \"citation\": \"%s\", "
                "\"data_dependent\": %s, \"instrs\": %llu, "
                "\"live_lanes\": %llu, "
                "\"lane_bytes\": %llu, \"unique_bytes\": %llu, "
                "\"request_cycles\": %llu, \"request_cycles_4b\": %llu, "
                "\"request_cycles_8b\": %llu, \"max_conflict_degree\": %u, "
                "\"sectors\": %llu, \"const_requests\": %llu}",
                json_escape(d.name).c_str(), sim::op_name(d.op),
                json_escape(d.citation).c_str(),
                d.data_dependent ? "true" : "false",
                static_cast<unsigned long long>(st.instrs),
                static_cast<unsigned long long>(st.live_lanes),
                static_cast<unsigned long long>(st.lane_bytes),
                static_cast<unsigned long long>(st.unique_bytes),
                static_cast<unsigned long long>(st.request_cycles),
                static_cast<unsigned long long>(st.request_cycles_4b),
                static_cast<unsigned long long>(st.request_cycles_8b),
                st.max_conflict_degree,
                static_cast<unsigned long long>(st.sectors),
                static_cast<unsigned long long>(st.const_requests));
  }
  out += rep.sites.empty() ? "],\n" : "\n" + in1 + "],\n";
  out += in1 + "\"races\": [";
  for (std::size_t i = 0; i < rep.races.size(); ++i) {
    const RacePair& p = rep.races[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 +
           strf("{\"site_a\": \"%s\", \"site_b\": \"%s\", \"verdict\": "
                "\"%s\", \"overlap\": %s, \"witness_addr\": %llu}",
                json_escape(rep.sites[p.site_a].name).c_str(),
                json_escape(rep.sites[p.site_b].name).c_str(),
                race_verdict_name(p.verdict), p.overlap ? "true" : "false",
                static_cast<unsigned long long>(p.witness_addr));
  }
  out += rep.races.empty() ? "],\n" : "\n" + in1 + "],\n";
  out += in1 + "\"findings\": [";
  for (std::size_t i = 0; i < rep.findings.size(); ++i) {
    const Finding& f = rep.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 +
           strf("{\"site\": \"%s\", \"kind\": \"%s\", \"severity\": \"%s\", "
                "\"value\": %.6g, \"threshold\": %.6g, \"message\": \"%s\", "
                "\"remediation\": \"%s\", \"citation\": \"%s\"}",
                json_escape(f.site).c_str(), json_escape(f.kind).c_str(),
                analysis::severity_name(f.severity), f.value, f.threshold,
                json_escape(f.message).c_str(),
                json_escape(f.remediation).c_str(),
                json_escape(f.citation).c_str());
  }
  out += rep.findings.empty() ? "]\n" : "\n" + in1 + "]\n";
  out += pad + "}";
  return out;
}

}  // namespace kconv::xray
