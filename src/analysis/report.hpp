// Rendering of kconv-check results: human-readable text and JSON.
#pragma once

#include <string>

#include "src/analysis/diagnostics.hpp"

namespace kconv::analysis {

/// Multi-line human summary: verdict, then every recorded hazard and lint.
std::string format_analysis(const AnalysisReport& rep);

/// JSON object (no trailing newline) with verdict, totals, and the full
/// hazard/lint lists. `indent` is the number of spaces the object's members
/// are indented by (the opening brace is not indented — callers embed it
/// after a key).
std::string to_json(const AnalysisReport& rep, int indent = 0);

}  // namespace kconv::analysis
