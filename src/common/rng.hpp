// Deterministic random number generation.
//
// All stochastic inputs in kconv (tensor fills, sampled block selection)
// flow through Rng so that every test, example, and benchmark is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace kconv {

/// xoshiro256** generator: fast, high-quality, and stable across platforms
/// (std::mt19937's distributions are not bit-stable across libstdc++
/// versions, which would make golden tests fragile).
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to spread low-entropy seeds across all 256 bits.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  u64 below(u64 n) {
    KCONV_ASSERT(n > 0);
    return next_u64() % n;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4] = {};
};

}  // namespace kconv
