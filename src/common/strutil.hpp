// Small string formatting helpers (GCC 12 ships no <format>).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace kconv {

/// snprintf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a byte count with a binary-unit suffix ("12.0 KiB").
std::string human_bytes(double bytes);

}  // namespace kconv
