// Fundamental scalar and vector types shared across kconv.
//
// Device programs compute on `float` but may *store and move* data at other
// widths (the paper's conclusion discusses fp16/int8, where the bank-width
// mismatch exists even on 4-byte-bank architectures). `DType` describes the
// storage element; `VecN<T>` describes the per-thread computation unit whose
// width the paper's model matches against the shared-memory bank width.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/error.hpp"

namespace kconv {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Storage element types supported by the memory model.
enum class DType : u8 { F32, F16, I8 };

/// Byte width of one storage element.
constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F32: return 4;
    case DType::F16: return 2;
    case DType::I8: return 1;
  }
  return 4;
}

constexpr const char* dtype_name(DType t) {
  switch (t) {
    case DType::F32: return "f32";
    case DType::F16: return "f16";
    case DType::I8: return "i8";
  }
  return "?";
}

/// IEEE 754 binary16 stored in 2 bytes; converts through float.
/// Used to model short-data-type kernels (extension experiment E1) with the
/// same rounding a real fp16 pipeline would apply on store.
struct f16 {
  u16 bits = 0;

  f16() = default;
  explicit f16(float f) : bits(from_float(f)) {}
  explicit operator float() const { return to_float(bits); }

  static u16 from_float(float f) {
    // Round-to-nearest-even float -> half conversion.
    u32 x;
    __builtin_memcpy(&x, &f, 4);
    const u32 sign = (x >> 16) & 0x8000u;
    i32 exp = static_cast<i32>((x >> 23) & 0xFF) - 127 + 15;
    u32 mant = x & 0x7FFFFFu;
    if (exp >= 31) return static_cast<u16>(sign | 0x7C00u);  // overflow -> inf
    if (exp <= 0) {
      if (exp < -10) return static_cast<u16>(sign);  // underflow -> zero
      mant |= 0x800000u;
      const u32 shift = static_cast<u32>(14 - exp);
      u32 half_mant = mant >> shift;
      const u32 rem = mant & ((1u << shift) - 1);
      const u32 halfway = 1u << (shift - 1);
      if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
      return static_cast<u16>(sign | half_mant);
    }
    u32 half = sign | (static_cast<u32>(exp) << 10) | (mant >> 13);
    const u32 rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1))) ++half;
    return static_cast<u16>(half);
  }

  static float to_float(u16 h) {
    const u32 sign = (static_cast<u32>(h) & 0x8000u) << 16;
    u32 exp = (h >> 10) & 0x1F;
    u32 mant = h & 0x3FFu;
    u32 out;
    if (exp == 0) {
      if (mant == 0) {
        out = sign;
      } else {
        // Subnormal half: normalize.
        exp = 127 - 15 + 1;
        while ((mant & 0x400u) == 0) {
          mant <<= 1;
          --exp;
        }
        mant &= 0x3FFu;
        out = sign | (exp << 23) | (mant << 13);
      }
    } else if (exp == 31) {
      out = sign | 0x7F800000u | (mant << 13);
    } else {
      out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float f;
    __builtin_memcpy(&f, &out, 4);
    return f;
  }
};

/// Fixed-point signed 8-bit storage element with saturation, unit scale.
struct i8q {
  std::int8_t bits = 0;

  i8q() = default;
  explicit i8q(float f) {
    const float r = f < 0 ? f - 0.5f : f + 0.5f;
    const float c = r < -128.f ? -128.f : (r > 127.f ? 127.f : r);
    bits = static_cast<std::int8_t>(c);
  }
  explicit operator float() const { return static_cast<float>(bits); }
};

/// Per-thread computation unit of N elements of T — the `float2`/`float4`
/// analogue whose byte width the paper matches to the SM bank width.
template <typename T, int N>
struct Vec {
  static_assert(N >= 1 && N <= 8, "vector width out of range");
  T v[N] = {};

  static constexpr int width = N;
  T& operator[](int i) { return v[i]; }
  const T& operator[](int i) const { return v[i]; }
};

using vec1f = Vec<float, 1>;
using vec2f = Vec<float, 2>;
using vec4f = Vec<float, 4>;

/// Integer ceiling division for extents and tiling math.
constexpr i64 ceil_div(i64 a, i64 b) {
  KCONV_ASSERT(b > 0);
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b`.
constexpr i64 round_up(i64 a, i64 b) { return ceil_div(a, b) * b; }

}  // namespace kconv
