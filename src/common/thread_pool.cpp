#include "src/common/thread_pool.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace kconv {

u32 ThreadPool::resolve_threads(u32 requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(u32 threads) {
  const u32 n = resolve_threads(threads);
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  u64 seen_seq = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      ++joined_;
      ++running_;
    }

    // Claim chunks until the shared counter runs dry (the "stealing": fast
    // workers keep claiming whatever slower ones have not).
    std::exception_ptr err;
    while (true) {
      const u64 c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks_) break;
      const u64 b = begin_ + c * grain_;
      const u64 e = std::min(b + grain_, end_);
      try {
        (*body_)(b, e, static_cast<u32>(c));
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) error_ = err;
      --running_;
      if (running_ == 0 && joined_ == workers_.size()) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(u64 begin, u64 end, u64 grain,
                              const ChunkBody& body) {
  if (end <= begin) return;
  KCONV_CHECK(grain >= 1, "parallel_for grain must be positive");

  std::unique_lock<std::mutex> lock(mu_);
  KCONV_CHECK(body_ == nullptr, "ThreadPool::parallel_for is not reentrant");
  body_ = &body;
  begin_ = begin;
  end_ = end;
  grain_ = grain;
  n_chunks_ = (end - begin + grain - 1) / grain;
  next_chunk_.store(0, std::memory_order_relaxed);
  joined_ = 0;
  running_ = 0;
  error_ = nullptr;
  ++job_seq_;
  work_cv_.notify_all();

  // Wait until every worker both observed the job and left its drain loop;
  // afterwards no worker can still be reading the job state, so it is safe
  // to reset (and for the next call to rewrite) it.
  done_cv_.wait(lock, [&] { return joined_ == workers_.size() && running_ == 0; });
  body_ = nullptr;
  n_chunks_ = 0;
  const std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace kconv
