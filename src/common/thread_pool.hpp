// A small chunked work-stealing thread pool for host-side parallelism.
//
// The simulator executes thread blocks serially within a worker, but blocks
// are independent (CUDA semantics: no inter-block ordering), so a launch can
// shard its block list across host threads. The pool hands out contiguous
// chunks from a shared atomic counter — workers that finish early steal the
// remaining chunks, so ragged per-chunk costs still load-balance — while the
// chunk *indices* stay deterministic, which is what lets callers keep
// per-chunk state (stats shards, cache replicas) and merge it in index
// order regardless of which worker ran which chunk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/types.hpp"

namespace kconv {

/// Persistent worker pool executing chunked parallel-for jobs.
///
/// One job runs at a time (parallel_for blocks the caller); the workers
/// survive across jobs so repeated launches do not pay thread creation.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(u32 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// The body of one contiguous chunk: [begin, end) plus the chunk index.
  using ChunkBody = std::function<void(u64 begin, u64 end, u32 chunk)>;

  /// Splits [begin, end) into chunks of at most `grain` items and runs
  /// `body` on the workers (chunk k covers [begin + k*grain, ...)). Blocks
  /// until every chunk finished; rethrows the first exception a body threw
  /// (remaining chunks still run to completion first).
  void parallel_for(u64 begin, u64 end, u64 grain, const ChunkBody& body);

  /// Maps a user-facing thread-count request to an actual count:
  /// 0 = hardware concurrency (at least 1), anything else verbatim.
  static u32 resolve_threads(u32 requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new job / shutdown
  std::condition_variable done_cv_;  // signals caller: job drained

  // State of the in-flight job. Written by the caller under mu_ before the
  // job_seq_ bump; workers first read it after observing the bump under mu_,
  // and the caller only rewrites it after every worker checked in and out
  // again — so the lock-free reads inside the drain loop are race-free.
  const ChunkBody* body_ = nullptr;
  u64 begin_ = 0;
  u64 end_ = 0;
  u64 grain_ = 1;
  u64 n_chunks_ = 0;
  std::atomic<u64> next_chunk_{0};
  u64 job_seq_ = 0;    // bumped per job so sleeping workers spot new work
  u32 joined_ = 0;     // workers that observed the current job
  u32 running_ = 0;    // workers currently inside the drain loop
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace kconv
