// Error handling primitives for kconv.
//
// API misuse and device-program faults (out-of-bounds accesses, misaligned
// vector loads, illegal launch configurations) are reported by throwing
// kconv::Error. Internal invariants use KCONV_ASSERT, which also throws so
// that tests can exercise failure paths without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace kconv {

/// Exception type thrown for all kconv-detected failures.
///
/// Carries a human-readable message that always includes the source location
/// of the failing check.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Builds the exception message and throws. Out-of-line to keep the check
/// macros cheap at call sites.
[[noreturn]] void throw_error(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace kconv

/// Validates a user-facing precondition; throws kconv::Error on failure.
/// `msg` is any expression convertible to std::string (use kconv::strf).
#define KCONV_CHECK(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::kconv::detail::throw_error(__FILE__, __LINE__, #cond, (msg));      \
    }                                                                      \
  } while (false)

/// Internal invariant check. Semantically an assert, but throws so that a
/// violated invariant surfaces as a testable error instead of a core dump.
#define KCONV_ASSERT(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::kconv::detail::throw_error(__FILE__, __LINE__, #cond,               \
                                   "internal invariant violated");          \
    }                                                                       \
  } while (false)
