#include "src/common/strutil.hpp"

#include <cstdarg>

namespace kconv {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strf("%.1f %s", bytes, units[u]);
}

}  // namespace kconv
