#include "src/common/error.hpp"

#include <sstream>

namespace kconv::detail {

void throw_error(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream os;
  os << "kconv error: " << message << " [check `" << expr << "` failed at "
     << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace kconv::detail
