// Metrics registry for kconv-prof (docs/MODEL.md §7).
//
// A BlockProfiler is the per-block charging surface the executor talks to:
// retire_group() reports each warp transaction's cost deltas tagged with
// the phase stamped on the retiring accesses, and the segment loop drains
// per-lane arithmetic at every barrier. Charges land in a chunk-level
// PhaseProfile sink (merged index-order into the launch roll-up, so totals
// are thread-count-invariant) and, for the first few executed blocks, in a
// BlockTimeline of ordered slices the Perfetto exporter turns into tracks.
#pragma once

#include <vector>

#include "src/common/types.hpp"
#include "src/profile/phase.hpp"
#include "src/sim/dim.hpp"

namespace kconv::profile {

/// One contiguous stretch of a block's execution spent in one phase.
/// Slices are appended in retirement order; a new slice opens whenever the
/// phase differs from the slice currently at the tail, so alternating
/// phases (load/stage interleave) produce alternating slices.
struct PhaseSlice {
  Phase phase = Phase::Other;
  PhaseStats stats;
};

/// Ordered slice list for one executed block. `seq` is the block's index
/// in launch iteration order (grid-flattened, sample-adjusted), which the
/// exporter uses as the Perfetto process id.
struct BlockTimeline {
  sim::Dim3 block;
  u64 seq = 0;
  std::vector<PhaseSlice> slices;
};

/// Kernel-provided context for the roofline attribution: which paper case
/// applies and the launch-wide traffic lower bounds derived from its
/// closed forms. Filled by the kernel runners when profiling is on.
struct RooflineHints {
  enum class Kind : u8 { None = 0, Special, General, ImplicitGemm };
  Kind kind = Kind::None;
  u32 k = 0;   // filter K
  u32 wt = 0;  // per-thread output tile width WT (general case)
  u32 ft = 0;  // per-thread filter count FT (general case)
  /// Minimum bytes the staging phases must read from GM for the whole
  /// launch (paper §3 for special: one 4-byte read per input pixel modulo
  /// halo; §4 tiling for general/implicit-GEMM).
  double gm_load_bound_bytes = 0.0;
  /// Minimum SM *load* elements per FMA in the compute phase (general
  /// case, §4: (WT+K-1)/(K*FT*WT) image reads + 1/WT filter reads).
  double smem_load_elems_per_fma_bound = 0.0;
};

/// Launch-level profiling result, attached to LaunchResult. Empty (and
/// `enabled == false`) unless LaunchOptions::profile was set.
struct LaunchProfile {
  bool enabled = false;
  PhaseProfile phases;
  std::vector<BlockTimeline> timelines;
  RooflineHints hints;
};

/// Per-block charging interface handed to run_block(). All methods add
/// into the chunk sink; the timeline (optional) additionally records the
/// charge on its tail slice. Replay-side bulk charges (`add`) bypass the
/// timeline: a replayed block re-uses its representative's profile and
/// has no retirement sequence of its own.
class BlockProfiler {
 public:
  explicit BlockProfiler(PhaseProfile& sink, BlockTimeline* timeline = nullptr)
      : sink_(&sink), timeline_(timeline) {}

  PhaseProfile& sink() { return *sink_; }
  BlockTimeline* timeline() { return timeline_; }

  /// Shared-memory transaction retired in phase `ph`. Mirrors KernelStats'
  /// semantics: smem_instrs/request_cycles count loads AND stores, the
  /// smem_store_* fields are the store-side split of the same totals.
  void smem(Phase ph, u64 request_cycles, u64 bytes, u64 lane_bytes,
            bool is_store) {
    charge(ph, [&](PhaseStats& s) {
      ++s.smem_instrs;
      s.smem_request_cycles += request_cycles;
      if (is_store) {
        ++s.smem_store_instrs;
        s.smem_store_request_cycles += request_cycles;
        s.smem_store_lane_bytes += lane_bytes;
      }
      s.smem_bytes += bytes;
      s.smem_lane_bytes += lane_bytes;
    });
  }

  /// Global-memory transaction retired in phase `ph`.
  void gmem(Phase ph, u64 sectors, u64 sectors_dram, u64 lane_bytes) {
    charge(ph, [&](PhaseStats& s) {
      ++s.gm_instrs;
      s.gm_sectors += sectors;
      s.gm_sectors_dram += sectors_dram;
      s.gm_bytes_useful += lane_bytes;
    });
  }

  /// Constant-memory transaction retired in phase `ph`.
  void cmem(Phase ph, u64 requests, u64 line_misses) {
    charge(ph, [&](PhaseStats& s) {
      ++s.const_instrs;
      s.const_requests += requests;
      s.const_line_misses += line_misses;
    });
  }

  /// Pattern-cache activity observed while retiring in phase `ph`.
  void pattern(Phase ph, u64 lookups, u64 hits) {
    if (lookups == 0 && hits == 0) return;
    charge(ph, [&](PhaseStats& s) {
      s.pattern_lookups += lookups;
      s.pattern_hits += hits;
    });
  }

  /// Arithmetic drained from lane profiles at a segment boundary.
  void compute(Phase ph, u64 fma_lane_ops, u64 alu_lane_ops) {
    if (fma_lane_ops == 0 && alu_lane_ops == 0) return;
    charge(ph, [&](PhaseStats& s) {
      s.fma_lane_ops += fma_lane_ops;
      s.alu_lane_ops += alu_lane_ops;
    });
  }

  /// Barrier release (pairs 1:1 with KernelStats::barriers).
  void barrier() {
    charge(Phase::Sync, [](PhaseStats& s) { ++s.barriers; });
  }

  /// Bulk charge into the sink only — used by replay for the stored
  /// invariant/compute profiles of the class representative.
  void add(const PhaseProfile& p) { *sink_ += p; }

 private:
  template <class F>
  void charge(Phase ph, F&& f) {
    f(sink_->at(ph));
    if (timeline_ != nullptr) {
      if (timeline_->slices.empty() || timeline_->slices.back().phase != ph)
        timeline_->slices.push_back(PhaseSlice{ph, {}});
      f(timeline_->slices.back().stats);
    }
  }

  PhaseProfile* sink_;
  BlockTimeline* timeline_;
};

}  // namespace kconv::profile
