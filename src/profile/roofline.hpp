// Roofline bottleneck attribution for kconv-prof (docs/MODEL.md §7).
//
// Per phase, mirrors the timing model's pipe decomposition onto the
// phase's own counter deltas, names the binding resource, and compares
// measured traffic against the paper's closed-form lower bounds (§3 one
// GM read per input pixel for the special case; §4's (WT+K-1)/(WT*K) SM
// and ~1/K GM reductions for the general case).
#pragma once

#include <string>
#include <vector>

#include "src/profile/collector.hpp"
#include "src/sim/arch.hpp"

namespace kconv::profile {

/// Pipe demands of one phase in SM-cycles (work placed on a single SM;
/// divide by Arch::sm_count for an even-spread launch view).
struct PipeCycles {
  double compute = 0.0;
  double issue = 0.0;
  double smem = 0.0;
  double gmem = 0.0;
  double cmem = 0.0;
  double sync = 0.0;
  double total = 0.0;  // max of the above: the modeled cycles of the phase
};

/// Pipe decomposition of `s` under `arch`'s throughput model. Warp
/// instruction counts are approximated as lane-ops / warp_size (phases do
/// not track per-warp maxima; full warps make this exact).
PipeCycles phase_pipe_cycles(const sim::Arch& arch, const PhaseStats& s);

/// One attributed phase of the launch roll-up.
struct PhaseAttribution {
  Phase phase = Phase::Other;
  PhaseStats stats;
  PipeCycles pipes;
  /// Binding resource: "gm-bound", "sm-bound", "bank-conflict-bound",
  /// "compute-bound", "const-bound", "sync-bound", or "idle".
  std::string bound;
  /// Efficiency of the binding resource in [0,1]: useful/(moved) bytes for
  /// GM, instrs/request-cycles for SM, fma/(fma+alu) for compute,
  /// instrs/requests for CM; 1.0 for sync/idle.
  double efficiency = 1.0;
};

/// Launch-level attribution against the paper bounds.
struct RooflineReport {
  std::vector<PhaseAttribution> phases;  // active phases, taxonomy order
  RooflineHints hints;
  /// Measured staging GM read bytes (gm_load + prefetch phases).
  double gm_load_bytes = 0.0;
  /// gm_load_bytes / hints.gm_load_bound_bytes (0 when no bound).
  double gm_load_ratio = 0.0;
  /// Measured SM load elements per FMA in the compute phase.
  double smem_load_elems_per_fma = 0.0;
  /// Paper §4 headline SM-traffic ratio (WT+K-1)/(WT*K) for the hints'
  /// tiling, 0 unless the general case applies.
  double sm_reduction_bound = 0.0;
};

RooflineReport attribute_roofline(const sim::Arch& arch,
                                  const LaunchProfile& prof);

/// Text block appended to sim::format_report when profiling is on.
std::string format_profile(const sim::Arch& arch, const LaunchProfile& prof);

/// JSON object for the report's "profile" key, indented by `indent`
/// spaces: {"phases": [...], "roofline": {...}}.
std::string profile_to_json(const sim::Arch& arch, const LaunchProfile& prof,
                            int indent);

}  // namespace kconv::profile
