#include "src/profile/trace_export.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "src/common/strutil.hpp"
#include "src/profile/roofline.hpp"

namespace kconv::profile {

namespace {

// Modeled wall time of one slice under the single-block pipe model, in
// microseconds. Sync slices cost barriers * barrier_cost; everything else
// costs its binding pipe. Floored at a tenth of a cycle so zero-cost
// slices stay visible and timestamps stay strictly ordered per track.
double slice_us(const sim::Arch& arch, const PhaseSlice& sl) {
  double cycles;
  if (sl.phase == Phase::Sync) {
    cycles = static_cast<double>(sl.stats.barriers) * arch.barrier_cost;
  } else {
    cycles = phase_pipe_cycles(arch, sl.stats).total;
  }
  cycles = std::max(cycles, 0.1);
  return cycles / (arch.clock_ghz * 1e3);
}

using Emit = std::function<void(std::string)>;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strf("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

// Emits one block timeline under `pid` with the given process label.
// Shared by the single-launch export and the unified serving export.
void emit_block_timeline(const Emit& emit, const sim::Arch& arch,
                         const BlockTimeline& tl, unsigned long long pid,
                         const std::string& label) {
  emit(strf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
            "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
            pid, escape(label).c_str()));
  emit(strf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %llu, "
            "\"tid\": 0, \"args\": {\"name\": \"phases\"}}",
            pid));
  double ts = 0.0;
  for (const PhaseSlice& sl : tl.slices) {
    const double dur = slice_us(arch, sl);
    const PhaseStats& s = sl.stats;
    emit(strf("{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %llu, "
              "\"tid\": 0, \"ts\": %.6f, \"dur\": %.6f, \"args\": "
              "{\"gm_sectors\": %llu, \"smem_request_cycles\": %llu, "
              "\"const_requests\": %llu, \"fma_lane_ops\": %llu, "
              "\"barriers\": %llu}}",
              phase_name(sl.phase), pid, ts, dur,
              static_cast<unsigned long long>(s.gm_sectors),
              static_cast<unsigned long long>(s.smem_request_cycles),
              static_cast<unsigned long long>(s.const_requests),
              static_cast<unsigned long long>(s.fma_lane_ops),
              static_cast<unsigned long long>(s.barriers)));
    // Average bandwidths over the slice, as counter tracks.
    const double secs = dur * 1e-6;
    const double gm_gbps = static_cast<double>(s.gm_sectors) *
                           arch.gm_sector_bytes / secs / 1e9;
    const double sm_gbps = static_cast<double>(s.smem_bytes) / secs / 1e9;
    emit(strf("{\"name\": \"GM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
              "\"ts\": %.6f, \"args\": {\"value\": %.4g}}",
              pid, ts, gm_gbps));
    emit(strf("{\"name\": \"SM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
              "\"ts\": %.6f, \"args\": {\"value\": %.4g}}",
              pid, ts, sm_gbps));
    ts += dur;
  }
  // Close the counter tracks so the last value has an extent.
  emit(strf("{\"name\": \"GM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
            "\"ts\": %.6f, \"args\": {\"value\": 0}}",
            pid, ts));
  emit(strf("{\"name\": \"SM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
            "\"ts\": %.6f, \"args\": {\"value\": 0}}",
            pid, ts));
}

}  // namespace

std::string chrome_trace_json(const sim::Arch& arch,
                              const LaunchProfile& prof) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  Emit emit = [&](std::string ev) {
    if (!first) out += ",\n";
    first = false;
    out += ev;
  };
  for (const BlockTimeline& tl : prof.timelines) {
    emit_block_timeline(emit, arch, tl, tl.seq,
                        strf("block (%u,%u,%u)", tl.block.x, tl.block.y,
                             tl.block.z));
  }
  out += "\n]}";
  return out;
}

std::string unified_chrome_trace_json(
    const sim::Arch& arch, const std::vector<ServingTraceSpan>& serving,
    const std::vector<DeviceTraceSlice>& devices,
    const std::vector<LabeledTimeline>& blocks) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  Emit emit = [&](std::string ev) {
    if (!first) out += ",\n";
    first = false;
    out += ev;
  };

  // ---- serving tier: pid 0, B/E spans, one lane per thread -------------
  emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
       "\"tid\": 0, \"args\": {\"name\": \"serving\"}}");
  std::map<u64, std::vector<const ServingTraceSpan*>> lanes;
  for (const ServingTraceSpan& sp : serving) lanes[sp.lane].push_back(&sp);
  for (auto& [lane, spans] : lanes) {
    emit(strf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
              "\"tid\": %llu, \"args\": {\"name\": \"%s\"}}",
              (unsigned long long)lane,
              escape(spans.front()->lane_name).c_str()));
    // Spans on a lane nest by construction; sort outer-first (earlier
    // begin, then longer) and emit B/E with an explicit stack so every
    // inner end precedes its enclosing end.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const ServingTraceSpan* a, const ServingTraceSpan* b) {
                       if (a->begin_us != b->begin_us)
                         return a->begin_us < b->begin_us;
                       return a->end_us > b->end_us;
                     });
    std::vector<const ServingTraceSpan*> stack;
    auto close_until = [&](double ts) {
      while (!stack.empty() && stack.back()->end_us <= ts) {
        emit(strf("{\"name\": \"%s\", \"ph\": \"E\", \"pid\": 0, "
                  "\"tid\": %llu, \"ts\": %.3f}",
                  escape(stack.back()->name).c_str(),
                  (unsigned long long)lane, stack.back()->end_us));
        stack.pop_back();
      }
    };
    for (const ServingTraceSpan* sp : spans) {
      close_until(sp->begin_us);
      const double end = std::max(sp->end_us, sp->begin_us);
      emit(strf("{\"name\": \"%s\", \"ph\": \"B\", \"pid\": 0, "
                "\"tid\": %llu, \"ts\": %.3f}",
                escape(sp->name).c_str(), (unsigned long long)lane,
                sp->begin_us));
      stack.push_back(sp);
      // Keep the stack consistent even for zero-width spans.
      (void)end;
    }
    close_until(1e300);
  }

  // ---- device tier: pid 100+d, transfer (tid 0) / compute (tid 1) ------
  std::map<u32, std::map<int, std::vector<const DeviceTraceSlice*>>> devs;
  for (const DeviceTraceSlice& sl : devices) {
    devs[sl.device][sl.transfer ? 0 : 1].push_back(&sl);
  }
  for (auto& [dev, tids] : devs) {
    const unsigned long long pid = 100ull + dev;
    emit(strf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
              "\"tid\": 0, \"args\": {\"name\": \"device %u\"}}",
              pid, dev));
    for (auto& [tid, slices] : tids) {
      emit(strf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %llu, "
                "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                pid, tid, tid == 0 ? "transfer" : "compute"));
      std::stable_sort(slices.begin(), slices.end(),
                       [](const DeviceTraceSlice* a,
                          const DeviceTraceSlice* b) {
                         return a->begin_us < b->begin_us;
                       });
      for (const DeviceTraceSlice* sl : slices) {
        emit(strf("{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %llu, "
                  "\"tid\": %d, \"ts\": %.6f, \"dur\": %.6f, "
                  "\"args\": {\"bytes\": %llu}}",
                  escape(sl->name).c_str(), pid, tid, sl->begin_us,
                  sl->dur_us, (unsigned long long)sl->bytes));
      }
    }
  }

  // ---- block tier: pid 1000+i, the §7 phase timelines ------------------
  unsigned long long next = 1000;
  for (const LabeledTimeline& lt : blocks) {
    const BlockTimeline& tl = lt.timeline;
    emit_block_timeline(emit, arch, tl, next++,
                        strf("block %s (%u,%u,%u)", lt.label.c_str(),
                             tl.block.x, tl.block.y, tl.block.z));
  }

  out += "\n]}";
  return out;
}

}  // namespace kconv::profile
