#include "src/profile/trace_export.hpp"

#include <algorithm>

#include "src/common/strutil.hpp"
#include "src/profile/roofline.hpp"

namespace kconv::profile {

namespace {

// Modeled wall time of one slice under the single-block pipe model, in
// microseconds. Sync slices cost barriers * barrier_cost; everything else
// costs its binding pipe. Floored at a tenth of a cycle so zero-cost
// slices stay visible and timestamps stay strictly ordered per track.
double slice_us(const sim::Arch& arch, const PhaseSlice& sl) {
  double cycles;
  if (sl.phase == Phase::Sync) {
    cycles = static_cast<double>(sl.stats.barriers) * arch.barrier_cost;
  } else {
    cycles = phase_pipe_cycles(arch, sl.stats).total;
  }
  cycles = std::max(cycles, 0.1);
  return cycles / (arch.clock_ghz * 1e3);
}

}  // namespace

std::string chrome_trace_json(const sim::Arch& arch,
                              const LaunchProfile& prof) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](std::string ev) {
    if (!first) out += ",\n";
    first = false;
    out += ev;
  };

  for (const BlockTimeline& tl : prof.timelines) {
    const unsigned long long pid = tl.seq;
    emit(strf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
              "\"tid\": 0, \"args\": {\"name\": \"block (%u,%u,%u)\"}}",
              pid, tl.block.x, tl.block.y, tl.block.z));
    emit(strf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %llu, "
              "\"tid\": 0, \"args\": {\"name\": \"phases\"}}",
              pid));
    double ts = 0.0;
    for (const PhaseSlice& sl : tl.slices) {
      const double dur = slice_us(arch, sl);
      const PhaseStats& s = sl.stats;
      emit(strf("{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %llu, "
                "\"tid\": 0, \"ts\": %.6f, \"dur\": %.6f, \"args\": "
                "{\"gm_sectors\": %llu, \"smem_request_cycles\": %llu, "
                "\"const_requests\": %llu, \"fma_lane_ops\": %llu, "
                "\"barriers\": %llu}}",
                phase_name(sl.phase), pid, ts, dur,
                static_cast<unsigned long long>(s.gm_sectors),
                static_cast<unsigned long long>(s.smem_request_cycles),
                static_cast<unsigned long long>(s.const_requests),
                static_cast<unsigned long long>(s.fma_lane_ops),
                static_cast<unsigned long long>(s.barriers)));
      // Average bandwidths over the slice, as counter tracks.
      const double secs = dur * 1e-6;
      const double gm_gbps = static_cast<double>(s.gm_sectors) *
                             arch.gm_sector_bytes / secs / 1e9;
      const double sm_gbps =
          static_cast<double>(s.smem_bytes) / secs / 1e9;
      emit(strf("{\"name\": \"GM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
                "\"ts\": %.6f, \"args\": {\"value\": %.4g}}",
                pid, ts, gm_gbps));
      emit(strf("{\"name\": \"SM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
                "\"ts\": %.6f, \"args\": {\"value\": %.4g}}",
                pid, ts, sm_gbps));
      ts += dur;
    }
    // Close the counter tracks so the last value has an extent.
    emit(strf("{\"name\": \"GM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
              "\"ts\": %.6f, \"args\": {\"value\": 0}}",
              pid, ts));
    emit(strf("{\"name\": \"SM GB/s\", \"ph\": \"C\", \"pid\": %llu, "
              "\"ts\": %.6f, \"args\": {\"value\": 0}}",
              pid, ts));
  }
  out += "\n]}";
  return out;
}

}  // namespace kconv::profile
