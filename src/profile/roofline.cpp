#include "src/profile/roofline.hpp"

#include <algorithm>

#include "src/common/strutil.hpp"

namespace kconv::profile {

namespace {

const char* roofline_kind_name(RooflineHints::Kind k) {
  switch (k) {
    case RooflineHints::Kind::None: return "none";
    case RooflineHints::Kind::Special: return "special";
    case RooflineHints::Kind::General: return "general";
    case RooflineHints::Kind::ImplicitGemm: return "implicit_gemm";
  }
  return "?";
}

// Binding resource + efficiency from a phase's pipe decomposition. The
// SM pipe splits into "sm-bound" (issue-rate limited) vs
// "bank-conflict-bound" (replay factor well above 1) because the paper's
// whole §4 is about removing the latter.
void attribute_phase(PhaseAttribution& a) {
  const PhaseStats& s = a.stats;
  const PipeCycles& p = a.pipes;
  const struct {
    double v;
    int which;  // 0 compute/issue, 1 smem, 2 gmem, 3 const, 4 sync
  } pipes[] = {{p.compute, 0}, {p.issue, 0}, {p.smem, 1},
               {p.gmem, 2},    {p.cmem, 3},  {p.sync, 4}};
  double best = 0.0;
  int which = -1;
  for (const auto& e : pipes) {
    if (e.v > best) {
      best = e.v;
      which = e.which;
    }
  }
  switch (which) {
    case 0: {
      a.bound = "compute-bound";
      const double ops =
          static_cast<double>(s.fma_lane_ops + s.alu_lane_ops);
      a.efficiency =
          ops > 0.0 ? static_cast<double>(s.fma_lane_ops) / ops : 1.0;
      break;
    }
    case 1: {
      const u64 instrs = s.smem_instrs;
      const u64 cycles = s.smem_request_cycles;
      const double replay =
          instrs > 0 ? static_cast<double>(cycles) / instrs : 1.0;
      a.bound = replay > 1.2 ? "bank-conflict-bound" : "sm-bound";
      a.efficiency = cycles > 0 ? static_cast<double>(instrs) / cycles : 1.0;
      break;
    }
    case 2:
      // Efficiency (useful/moved bytes) filled by the caller, which knows
      // the arch's sector size.
      a.bound = "gm-bound";
      break;
    case 3:
      a.bound = "const-bound";
      a.efficiency = s.const_requests > 0
                         ? static_cast<double>(s.const_instrs) /
                               static_cast<double>(s.const_requests)
                         : 1.0;
      break;
    case 4:
      a.bound = "sync-bound";
      a.efficiency = 1.0;
      break;
    default:
      a.bound = "idle";
      a.efficiency = 1.0;
      break;
  }
}

std::string json_phase(const PhaseAttribution& a, const std::string& pad) {
  const PhaseStats& s = a.stats;
  std::string out = pad + "{";
  out += strf("\"phase\": \"%s\", ", phase_name(a.phase));
  out += strf("\"cycles\": %.6g, ", a.pipes.total);
  out += strf("\"bound\": \"%s\", ", a.bound.c_str());
  out += strf("\"efficiency\": %.6g,\n", a.efficiency);
  out += pad + " ";
  out += strf("\"fma_lane_ops\": %llu, \"alu_lane_ops\": %llu, "
              "\"smem_instrs\": %llu, \"smem_request_cycles\": %llu, "
              "\"smem_lane_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.fma_lane_ops),
              static_cast<unsigned long long>(s.alu_lane_ops),
              static_cast<unsigned long long>(s.smem_instrs),
              static_cast<unsigned long long>(s.smem_request_cycles),
              static_cast<unsigned long long>(s.smem_lane_bytes));
  out += pad + " ";
  out += strf("\"smem_store_instrs\": %llu, "
              "\"smem_store_request_cycles\": %llu, "
              "\"smem_store_lane_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.smem_store_instrs),
              static_cast<unsigned long long>(s.smem_store_request_cycles),
              static_cast<unsigned long long>(s.smem_store_lane_bytes));
  out += pad + " ";
  out += strf("\"gm_instrs\": %llu, \"gm_sectors\": %llu, "
              "\"gm_sectors_dram\": %llu, \"gm_bytes_useful\": %llu,\n",
              static_cast<unsigned long long>(s.gm_instrs),
              static_cast<unsigned long long>(s.gm_sectors),
              static_cast<unsigned long long>(s.gm_sectors_dram),
              static_cast<unsigned long long>(s.gm_bytes_useful));
  out += pad + " ";
  out += strf("\"const_instrs\": %llu, \"const_requests\": %llu, "
              "\"const_line_misses\": %llu, \"barriers\": %llu, "
              "\"pattern_lookups\": %llu, \"pattern_hits\": %llu}",
              static_cast<unsigned long long>(s.const_instrs),
              static_cast<unsigned long long>(s.const_requests),
              static_cast<unsigned long long>(s.const_line_misses),
              static_cast<unsigned long long>(s.barriers),
              static_cast<unsigned long long>(s.pattern_lookups),
              static_cast<unsigned long long>(s.pattern_hits));
  return out;
}

}  // namespace

PipeCycles phase_pipe_cycles(const sim::Arch& arch, const PhaseStats& s) {
  PipeCycles p;
  // Warp instructions ~ lane-ops / warp_size (exact for full warps).
  const double fma_wi =
      static_cast<double>(s.fma_lane_ops) / arch.warp_size;
  const double alu_wi =
      static_cast<double>(s.alu_lane_ops) / arch.warp_size;
  p.compute =
      (fma_wi + alu_wi) / (arch.warp_fma_per_cycle() * arch.fma_efficiency);
  const double mem_wi = static_cast<double>(s.smem_instrs + s.gm_instrs);
  p.issue = (fma_wi + alu_wi + mem_wi) / arch.issue_slots_per_cycle;
  p.smem = static_cast<double>(s.smem_request_cycles) /
           arch.smem_requests_per_cycle;
  const double sectors_dram = static_cast<double>(s.gm_sectors_dram);
  const double sectors_l2 =
      static_cast<double>(s.gm_sectors) - sectors_dram;
  p.gmem = sectors_dram * arch.gm_sector_bytes /
               (arch.dram_bytes_per_sm_cycle() * arch.dram_efficiency) +
           sectors_l2 * arch.gm_sector_bytes / arch.l2_bytes_per_sm_cycle();
  p.cmem =
      static_cast<double>(s.const_requests) / arch.const_broadcasts_per_cycle;
  p.sync = static_cast<double>(s.barriers) * arch.barrier_cost;
  p.total = std::max({p.compute, p.issue, p.smem, p.gmem, p.cmem, p.sync});
  return p;
}

RooflineReport attribute_roofline(const sim::Arch& arch,
                                  const LaunchProfile& prof) {
  RooflineReport r;
  r.hints = prof.hints;
  for (u32 i = 0; i < kNumPhases; ++i) {
    const PhaseStats& s = prof.phases.p[i];
    if (s.empty()) continue;
    PhaseAttribution a;
    a.phase = static_cast<Phase>(i);
    a.stats = s;
    a.pipes = phase_pipe_cycles(arch, s);
    attribute_phase(a);
    if (a.bound == "gm-bound" && s.gm_sectors > 0) {
      a.efficiency = static_cast<double>(s.gm_bytes_useful) /
                     (static_cast<double>(s.gm_sectors) * arch.gm_sector_bytes);
    }
    r.phases.push_back(std::move(a));
  }

  const PhaseStats& ld = prof.phases.at(Phase::GmLoad);
  const PhaseStats& pf = prof.phases.at(Phase::Prefetch);
  r.gm_load_bytes =
      static_cast<double>(ld.gm_bytes_useful + pf.gm_bytes_useful);
  if (r.hints.gm_load_bound_bytes > 0.0)
    r.gm_load_ratio = r.gm_load_bytes / r.hints.gm_load_bound_bytes;

  const PhaseStats& cp = prof.phases.at(Phase::Compute);
  if (cp.fma_lane_ops > 0) {
    // SM *loads* only: the compute phase issues no SM stores in our
    // kernels, but subtract them anyway so the metric stays a load metric.
    const u64 load_bytes = cp.smem_lane_bytes - cp.smem_store_lane_bytes;
    r.smem_load_elems_per_fma = static_cast<double>(load_bytes) / 4.0 /
                                static_cast<double>(cp.fma_lane_ops);
  }
  if (r.hints.kind == RooflineHints::Kind::General && r.hints.k > 0 &&
      r.hints.wt > 0) {
    r.sm_reduction_bound =
        static_cast<double>(r.hints.wt + r.hints.k - 1) /
        (static_cast<double>(r.hints.wt) * r.hints.k);
  }
  return r;
}

std::string format_profile(const sim::Arch& arch, const LaunchProfile& prof) {
  const RooflineReport r = attribute_roofline(arch, prof);
  std::string out;
  out += "--- profile (per phase) ---\n";
  for (const PhaseAttribution& a : r.phases) {
    const PhaseStats& s = a.stats;
    out += strf("%-10s %12.0f cyc  %-19s eff %.2f", phase_name(a.phase),
                a.pipes.total, a.bound.c_str(), a.efficiency);
    if (s.gm_instrs > 0) {
      out += strf("  gm %llu sect (%s useful)",
                  static_cast<unsigned long long>(s.gm_sectors),
                  human_bytes(static_cast<double>(s.gm_bytes_useful)).c_str());
    }
    if (s.smem_instrs > 0) {
      const u64 instrs = s.smem_instrs;
      const u64 cycles = s.smem_request_cycles;
      out += strf("  smem %llu instr (replay %.2f)",
                  static_cast<unsigned long long>(instrs),
                  instrs ? static_cast<double>(cycles) / instrs : 0.0);
    }
    if (s.const_requests > 0) {
      out += strf("  const %llu req",
                  static_cast<unsigned long long>(s.const_requests));
    }
    if (s.fma_lane_ops > 0) {
      out += strf("  fma %llu",
                  static_cast<unsigned long long>(s.fma_lane_ops));
    }
    if (s.barriers > 0) {
      out += strf("  barriers %llu",
                  static_cast<unsigned long long>(s.barriers));
    }
    out += "\n";
  }
  out += strf("roofline (%s case):", roofline_kind_name(r.hints.kind));
  if (r.hints.gm_load_bound_bytes > 0.0) {
    out += strf(" GM staging reads %s vs bound %s (%.2fx)",
                human_bytes(r.gm_load_bytes).c_str(),
                human_bytes(r.hints.gm_load_bound_bytes).c_str(),
                r.gm_load_ratio);
  }
  if (r.smem_load_elems_per_fma > 0.0) {
    out += strf("; SM loads/FMA %.4f", r.smem_load_elems_per_fma);
    if (r.hints.smem_load_elems_per_fma_bound > 0.0) {
      out += strf(" vs bound %.4f (paper SM ratio (WT+K-1)/(WT*K) = %.3f)",
                  r.hints.smem_load_elems_per_fma_bound, r.sm_reduction_bound);
    }
  }
  out += "\n";
  return out;
}

std::string profile_to_json(const sim::Arch& arch, const LaunchProfile& prof,
                            int indent) {
  const RooflineReport r = attribute_roofline(arch, prof);
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad3 = pad2 + "  ";
  std::string out = "{\n";
  out += pad2 + "\"phases\": [\n";
  for (size_t i = 0; i < r.phases.size(); ++i) {
    out += json_phase(r.phases[i], pad3);
    out += i + 1 < r.phases.size() ? ",\n" : "\n";
  }
  out += pad2 + "],\n";
  out += pad2 + "\"roofline\": {\n";
  out += pad3 + strf("\"kind\": \"%s\",\n", roofline_kind_name(r.hints.kind));
  out += pad3 + strf("\"k\": %u, \"wt\": %u, \"ft\": %u,\n", r.hints.k,
                     r.hints.wt, r.hints.ft);
  out += pad3 + strf("\"gm_load_bytes\": %.6g,\n", r.gm_load_bytes);
  out += pad3 + strf("\"gm_load_bound_bytes\": %.6g,\n",
                     r.hints.gm_load_bound_bytes);
  out += pad3 + strf("\"gm_load_ratio\": %.6g,\n", r.gm_load_ratio);
  out += pad3 + strf("\"smem_load_elems_per_fma\": %.6g,\n",
                     r.smem_load_elems_per_fma);
  out += pad3 + strf("\"smem_load_elems_per_fma_bound\": %.6g,\n",
                     r.hints.smem_load_elems_per_fma_bound);
  out += pad3 + strf("\"sm_reduction_bound\": %.6g\n", r.sm_reduction_bound);
  out += pad2 + "}\n";
  out += pad + "}";
  return out;
}

}  // namespace kconv::profile
