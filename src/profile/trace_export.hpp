// Chrome trace-event / Perfetto export of profiled launches.
#pragma once

#include <string>

#include "src/profile/collector.hpp"
#include "src/sim/arch.hpp"

namespace kconv::profile {

/// Renders the profiled timelines as Chrome trace-event JSON (loadable in
/// ui.perfetto.dev or chrome://tracing). One "process" per recorded block
/// (pid = executed-sequence index), complete ("X") slices for its phases
/// on thread 0 with modeled durations from the roofline pipe model, and
/// per-block counter tracks for GM and SM bandwidth. Timestamps are
/// microseconds of modeled time and monotonically non-decreasing per
/// track.
std::string chrome_trace_json(const sim::Arch& arch,
                              const LaunchProfile& prof);

}  // namespace kconv::profile
