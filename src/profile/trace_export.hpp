// Chrome trace-event / Perfetto export of profiled launches.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/profile/collector.hpp"
#include "src/sim/arch.hpp"

namespace kconv::profile {

/// Renders the profiled timelines as Chrome trace-event JSON (loadable in
/// ui.perfetto.dev or chrome://tracing). One "process" per recorded block
/// (pid = executed-sequence index), complete ("X") slices for its phases
/// on thread 0 with modeled durations from the roofline pipe model, and
/// per-block counter tracks for GM and SM bandwidth. Timestamps are
/// microseconds of modeled time and monotonically non-decreasing per
/// track.
std::string chrome_trace_json(const sim::Arch& arch,
                              const LaunchProfile& prof);

// ---------------------------------------------------------------------------
// Unified serving trace (docs/MODEL.md §11).
//
// The unified export merges three tiers into one track hierarchy:
//   pid 0            "serving"   — B/E spans, one thread per lane (lane 0 is
//                                  the batch lane, lanes 1.. are requests)
//   pid 100+d        "device d"  — X slices on a transfer and a compute
//                                  thread, priced from each TransferLedger
//   pid 1000+i       "block ..." — the §7 per-block phase timelines
// Inputs are plain structs so callers above the profile layer (obs, CLI)
// can feed it without this library depending on them.
// ---------------------------------------------------------------------------

/// One serving-tier span, already placed on a lane. Spans on a lane must
/// nest (each span's interval is contained in its enclosing span's); the
/// exporter emits them as Chrome B/E pairs in valid order.
struct ServingTraceSpan {
  std::string name;
  u64 lane = 0;           ///< thread id within the serving process
  std::string lane_name;  ///< label for the lane (first writer wins)
  double begin_us = 0.0;
  double end_us = 0.0;
};

/// One priced interval on a device's transfer or compute thread.
struct DeviceTraceSlice {
  u32 device = 0;
  bool transfer = false;
  std::string name;
  double begin_us = 0.0;
  double dur_us = 0.0;
  u64 bytes = 0;  ///< ledger bytes for transfer slices, 0 for compute
};

/// A §7 block timeline with a human label for its process name (typically
/// the graph node that launched it).
struct LabeledTimeline {
  std::string label;
  BlockTimeline timeline;
};

std::string unified_chrome_trace_json(
    const sim::Arch& arch, const std::vector<ServingTraceSpan>& serving,
    const std::vector<DeviceTraceSlice>& devices,
    const std::vector<LabeledTimeline>& blocks);

}  // namespace kconv::profile
