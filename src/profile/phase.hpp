// kconv-prof phase taxonomy (docs/MODEL.md §7).
//
// The paper's accounting is per *kernel phase*: the staging copy, the
// compute loop, the prefetch and the write-back each have their own GM/SM
// traffic signature, and the closed-form bounds (§3 one GM read per pixel,
// §4's (WT+K-1)/(WT*K) SM reduction) apply phase by phase. A Phase tags
// every Access a lane issues and every arithmetic op it charges, so the
// executor can split the existing KernelStats counters into per-phase
// deltas without changing what it counts.
//
// Deliberately header-only over kconv_common types: the sim executor
// consumes these value types the same way it consumes analysis ones, while
// kconv_profile itself never links kconv_sim.
#pragma once

#include "src/common/types.hpp"

namespace kconv::profile {

/// Which part of the kernel an access/op belongs to. `Other` is the
/// default for unannotated code; `Sync` is stamped automatically on
/// barrier events (kernels never need to annotate their syncs).
enum class Phase : u8 {
  Other = 0,
  GmLoad,     // cooperative GM -> register staging loads
  SmemStage,  // register/GM -> shared-memory publishing stores
  Sync,       // __syncthreads barriers (auto-attributed)
  Compute,    // SM/CM reads feeding the FMA loop, and the FMAs themselves
  Writeback,  // accumulator -> GM output stores
  Prefetch,   // early GM loads overlapping the compute loop
};

inline constexpr u32 kNumPhases = 7;

inline constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Other: return "other";
    case Phase::GmLoad: return "gm_load";
    case Phase::SmemStage: return "smem_stage";
    case Phase::Sync: return "sync";
    case Phase::Compute: return "compute";
    case Phase::Writeback: return "writeback";
    case Phase::Prefetch: return "prefetch";
  }
  return "?";
}

inline constexpr u32 phase_index(Phase p) { return static_cast<u32>(p); }

/// Per-phase delta of the KernelStats counters the paper reasons about.
/// Invariant (pinned by tests/profile/): summing any field over the seven
/// phases equals the corresponding launch-total KernelStats field. As in
/// KernelStats, smem_instrs/smem_request_cycles count loads and stores
/// together and the smem_store_* fields are the store-side split.
/// `smem_store_lane_bytes` has no KernelStats counterpart — it exists so
/// the compute phase's *load* traffic is separable for the §4 SM bound.
struct PhaseStats {
  u64 fma_lane_ops = 0;
  u64 alu_lane_ops = 0;
  u64 smem_instrs = 0;
  u64 smem_request_cycles = 0;
  u64 smem_bytes = 0;
  u64 smem_lane_bytes = 0;
  u64 smem_store_instrs = 0;
  u64 smem_store_request_cycles = 0;
  u64 smem_store_lane_bytes = 0;
  u64 gm_instrs = 0;
  u64 gm_sectors = 0;
  u64 gm_sectors_dram = 0;
  u64 gm_bytes_useful = 0;
  u64 const_instrs = 0;
  u64 const_requests = 0;
  u64 const_line_misses = 0;
  u64 barriers = 0;
  u64 pattern_lookups = 0;
  u64 pattern_hits = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    fma_lane_ops += o.fma_lane_ops;
    alu_lane_ops += o.alu_lane_ops;
    smem_instrs += o.smem_instrs;
    smem_request_cycles += o.smem_request_cycles;
    smem_bytes += o.smem_bytes;
    smem_lane_bytes += o.smem_lane_bytes;
    smem_store_instrs += o.smem_store_instrs;
    smem_store_request_cycles += o.smem_store_request_cycles;
    smem_store_lane_bytes += o.smem_store_lane_bytes;
    gm_instrs += o.gm_instrs;
    gm_sectors += o.gm_sectors;
    gm_sectors_dram += o.gm_sectors_dram;
    gm_bytes_useful += o.gm_bytes_useful;
    const_instrs += o.const_instrs;
    const_requests += o.const_requests;
    const_line_misses += o.const_line_misses;
    barriers += o.barriers;
    pattern_lookups += o.pattern_lookups;
    pattern_hits += o.pattern_hits;
    return *this;
  }

  bool empty() const {
    return fma_lane_ops == 0 && alu_lane_ops == 0 && smem_instrs == 0 &&
           gm_instrs == 0 && const_instrs == 0 && barriers == 0 &&
           pattern_lookups == 0;
  }
};

/// One launch/chunk/block's full per-phase breakdown.
struct PhaseProfile {
  PhaseStats p[kNumPhases];

  PhaseStats& at(Phase ph) { return p[phase_index(ph)]; }
  const PhaseStats& at(Phase ph) const { return p[phase_index(ph)]; }

  PhaseProfile& operator+=(const PhaseProfile& o) {
    for (u32 i = 0; i < kNumPhases; ++i) p[i] += o.p[i];
    return *this;
  }

  /// Sum of one counter over all phases (the roll-up the sum-invariant
  /// tests compare against launch totals).
  u64 total(u64 PhaseStats::* field) const {
    u64 s = 0;
    for (u32 i = 0; i < kNumPhases; ++i) s += p[i].*field;
    return s;
  }
};

/// Per-lane arithmetic attribution, bound to a ThreadCtx while profiling:
/// fma()/alu() bump the slot of the lane's current phase. The lane's base
/// counters (ctx.fma_ops) are maintained independently, so binding one is
/// purely observational.
struct LaneProfile {
  u64 fma[kNumPhases] = {};
  u64 alu[kNumPhases] = {};
};

/// Splits a captured representative's per-phase profile the same way
/// replay splits its KernelStats (trace.hpp): `compute` keeps the
/// arithmetic recounted from replayed lanes, `invariant` keeps everything
/// except the address-dependent counters (GM sectors, DRAM misses,
/// constant-line misses) and the pattern-cache counters, all recharged
/// live per replayed block.
inline void split_replay_profile(const PhaseProfile& local,
                                 PhaseProfile& invariant,
                                 PhaseProfile& compute) {
  for (u32 i = 0; i < kNumPhases; ++i) {
    const PhaseStats& l = local.p[i];
    PhaseStats& c = compute.p[i];
    c = PhaseStats{};
    c.fma_lane_ops = l.fma_lane_ops;
    c.alu_lane_ops = l.alu_lane_ops;
    PhaseStats& v = invariant.p[i];
    v = l;
    v.fma_lane_ops = 0;
    v.alu_lane_ops = 0;
    v.gm_sectors = 0;
    v.gm_sectors_dram = 0;
    v.const_line_misses = 0;
    v.pattern_lookups = 0;
    v.pattern_hits = 0;
  }
}

/// The third slice of the representative's profile: exactly the
/// address-dependent counters split_replay_profile zeroes out of
/// `invariant` (minus the pattern counters, which analytic blocks never
/// generate — they probe no cache). Analytic launches charge
/// invariant + compute + addr_dep per served block, so the per-phase sum
/// invariant holds against the analytic launch totals too.
inline void split_addr_dep_profile(const PhaseProfile& local,
                                   PhaseProfile& addr_dep) {
  for (u32 i = 0; i < kNumPhases; ++i) {
    const PhaseStats& l = local.p[i];
    PhaseStats& a = addr_dep.p[i];
    a = PhaseStats{};
    a.gm_sectors = l.gm_sectors;
    a.gm_sectors_dram = l.gm_sectors_dram;
    a.const_line_misses = l.const_line_misses;
  }
}

}  // namespace kconv::profile
