#include "src/core/backward.hpp"

#include "src/kernels/gemm_kernels.hpp"
#include "src/kernels/im2col_conv.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::core {

namespace {

/// rot180 + swap the filter/channel axes: W (F, C, K, K) -> W' (C, F, K, K)
/// with W'[c][f][ky][kx] = W[f][c][K-1-ky][K-1-kx].
tensor::Tensor flip_and_transpose(const tensor::Tensor& filters) {
  const i64 k = filters.h();
  tensor::Tensor out(filters.c(), filters.n(), k, k);
  for (i64 f = 0; f < filters.n(); ++f)
    for (i64 c = 0; c < filters.c(); ++c)
      for (i64 y = 0; y < k; ++y)
        for (i64 x = 0; x < k; ++x)
          out.at(c, f, y, x) = filters.at(f, c, k - 1 - y, k - 1 - x);
  return out;
}

}  // namespace

ConvGradResult conv2d_backward_data(sim::Device& dev,
                                    const tensor::Tensor& grad_output,
                                    const tensor::Tensor& filters,
                                    const ConvOptions& opt) {
  KCONV_CHECK(grad_output.n() == 1, "single image");
  KCONV_CHECK(grad_output.c() == filters.n(),
              strf("grad_output has %lld maps but there are %lld filters",
                   static_cast<long long>(grad_output.c()),
                   static_cast<long long>(filters.n())));
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 k = filters.h();

  // Full correlation: zero-pad dY by K-1 and convolve with the flipped,
  // channel-transposed bank. The result has the forward input's extent.
  const tensor::Tensor padded = tensor::pad_image(grad_output, k - 1);
  const tensor::Tensor wt = flip_and_transpose(filters);

  ConvOptions inner = opt;
  inner.padding = Padding::Valid;
  const ConvResult res = conv2d(dev, padded, wt, inner);

  ConvGradResult out;
  out.grad = res.output;
  out.grad_valid = res.output_valid;
  out.total_seconds = res.total_seconds;
  out.algo_used = res.algo_used;
  return out;
}

ConvGradResult conv2d_backward_filters(sim::Device& dev,
                                       const tensor::Tensor& input,
                                       const tensor::Tensor& grad_output,
                                       const ConvOptions& opt) {
  KCONV_CHECK(input.n() == 1 && grad_output.n() == 1, "single image");
  const i64 k = input.h() - grad_output.h() + 1;
  KCONV_CHECK(k >= 1 && input.w() - grad_output.w() + 1 == k,
              "grad_output extent inconsistent with a square valid filter");
  const i64 C = input.c(), F = grad_output.c();
  const i64 ho = grad_output.h(), wo = grad_output.w();

  ConvGradResult out;
  out.algo_used = Algo::Im2colGemm;

  // B' = im2col(X)^T on the device ...
  const auto cols = kernels::im2col_transposed(dev, input, k, opt.launch);
  out.total_seconds += cols.launch.timing.seconds;

  // ... then dW_flat = dY_flat x B' as one GEMM.
  tensor::Matrix dy_flat(F, ho * wo);
  for (i64 f = 0; f < F; ++f)
    for (i64 y = 0; y < ho; ++y)
      for (i64 x = 0; x < wo; ++x)
        dy_flat.at(f, y * wo + x) = grad_output.at(0, f, y, x);

  tensor::Matrix bt(ho * wo, C * k * k);
  if (cols.output_valid) bt = cols.cols_t;
  const auto g = kernels::gemm(dev, dy_flat, bt, kernels::gemm_cublas_like(),
                               opt.launch);
  out.total_seconds += g.launch.timing.seconds;

  if (g.output_valid) {
    out.grad = tensor::Tensor(F, C, k, k);
    for (i64 f = 0; f < F; ++f)
      for (i64 c = 0; c < C; ++c)
        for (i64 y = 0; y < k; ++y)
          for (i64 x = 0; x < k; ++x)
            out.grad.at(f, c, y, x) = g.c.at(f, (c * k + y) * k + x);
    out.grad_valid = true;
  }
  return out;
}

}  // namespace kconv::core
