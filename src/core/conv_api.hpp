// The public convolution API — the front door of the library.
//
//   sim::Device dev(sim::kepler_k40m());
//   auto out = core::conv2d(dev, input, filters).output;
//
// conv2d picks the algorithm (the paper's special-case kernel for C = 1,
// the general-case kernel otherwise, each with sane default tilings) and
// handles `same` padding by staging a zero-padded input. Every algorithm
// is also individually selectable for comparisons.
#pragma once

#include <span>
#include <string>

#include "src/analysis/static/xray.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::core {

enum class Algo : u8 {
  Auto,          ///< special kernel when C==1, general kernel otherwise
  Special,       ///< the paper's Algorithm 1 (requires C == 1)
  General,       ///< the paper's Algorithm 2
  ImplicitGemm,  ///< cuDNN-style baseline
  Im2colGemm,    ///< Caffe-style explicit im2col + GEMM baseline
  NaiveDirect,   ///< one thread per output pixel
  Winograd,      ///< F(2x2,3x3) transform pipeline (3x3 filters only)
  Fft,           ///< frequency-domain pipeline (filters padded to image size)
};

const char* algo_name(Algo a);

enum class Padding : u8 {
  Valid,  ///< output (Hi-K+1) x (Wi-K+1)
  Same,   ///< output Hi x Wi (zero-padded input; odd K only)
};

struct ConvOptions {
  Algo algo = Algo::Auto;
  Padding padding = Padding::Valid;
  /// Forwarded to the chosen kernel; 0 keeps each kernel's default.
  i64 vec_width = 0;
  /// Non-empty (F entries, caller keeps the storage alive for the call):
  /// fold out = max(0, conv + bias[f]) into the kernel's write-back instead
  /// of a separate bias_relu launch. Bit-identical to the two-launch
  /// sequence; the intermediate never round-trips simulated GM. Supported by
  /// the Special and General algorithms (Auto resolves to one of them);
  /// other algorithms reject it.
  std::span<const float> fuse_bias_relu;
  sim::LaunchOptions launch;
};

struct ConvResult {
  tensor::Tensor output;
  bool output_valid = false;
  Algo algo_used = Algo::Auto;
  /// Timing/traffic of the main kernel (for Im2colGemm: the GEMM stage;
  /// total_seconds covers all stages).
  sim::LaunchResult launch;
  double total_seconds = 0.0;
  /// Effective performance: useful convolution flops / total time.
  double effective_gflops = 0.0;
};

/// Convolves input (1, C, Hi, Wi) with filters (F, C, K, K).
/// Throws kconv::Error for invalid shapes or configurations.
ConvResult conv2d(sim::Device& dev, const tensor::Tensor& input,
                  const tensor::Tensor& filters,
                  const ConvOptions& opt = {});

/// Batched convolution: input (N, C, Hi, Wi) -> output (N, F, Ho, Wo).
/// Images are independent, so the batch runs as N back-to-back launches
/// (timing sums; the launch/stats fields describe the LAST image). The
/// paper evaluates batch-1 direct convolution; this is the convenience
/// wrapper a CNN framework would call.
ConvResult conv2d_batched(sim::Device& dev, const tensor::Tensor& input,
                          const tensor::Tensor& filters,
                          const ConvOptions& opt = {});

/// Useful flops of a valid convolution (2 per MAC).
double conv_flops(i64 c, i64 f, i64 k, i64 ho, i64 wo);

/// The kconv-xray model (docs/MODEL.md §10) of the exact kernel launch
/// conv2d would make for a (1, C, Hi, Wi) input and (F, C, K, K) filters:
/// same algorithm resolution, same `same`-padding staging, same tiling
/// shrinks and filter-count padding — derived without a Device and without
/// executing a block. Supported for the Special, General and ImplicitGemm
/// algorithms (Auto resolves as conv2d does); throws kconv::Error for
/// algorithms without a static describer or configurations the kernel
/// would reject.
xray::KernelModel conv2d_xray_model(const sim::Arch& arch, i64 c, i64 f,
                                    i64 k, i64 hi, i64 wi,
                                    const ConvOptions& opt = {});

}  // namespace kconv::core
