#include "src/core/autotune.hpp"

#include <algorithm>

#include "src/common/rng.hpp"

namespace kconv::core {

GeneralAutotuneResult autotune_general(sim::Device& dev, i64 k, i64 c, i64 f,
                                       i64 n, const GeneralSpace& space,
                                       u64 sample_blocks) {
  Rng rng(0xDE5E);
  tensor::Tensor img = tensor::Tensor::image(c, n, n);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, k);
  flt.fill_random(rng);

  sim::LaunchOptions opt;
  opt.sample_max_blocks = sample_blocks;

  GeneralAutotuneResult res;
  for (const i64 w : space.block_w) {
    for (const i64 h : space.block_h) {
      for (const i64 ftb : space.ftb) {
        for (const i64 wt : space.wt) {
          for (const i64 ft : space.ft) {
            for (const i64 csh : space.csh) {
              kernels::GeneralConvConfig cfg;
              cfg.block_w = w;
              cfg.block_h = h;
              cfg.ftb = ftb;
              cfg.wt = wt;
              cfg.ft = ft;
              cfg.csh = csh;
              try {
                auto run = kernels::general_conv(dev, img, flt, cfg, opt);
                res.ranking.push_back({cfg, run.launch.timing.gflops});
                ++res.evaluated;
              } catch (const Error&) {
                ++res.skipped;  // illegal tiling for this K/C/F
              }
            }
          }
        }
      }
    }
  }
  KCONV_CHECK(res.evaluated > 0, "no legal configuration in the search space");
  std::stable_sort(res.ranking.begin(), res.ranking.end(),
                   [](const auto& a, const auto& b) {
                     return a.gflops > b.gflops;
                   });
  res.best = res.ranking.front();
  return res;
}

SpecialAutotuneResult autotune_special(sim::Device& dev, i64 k, i64 f, i64 n,
                                       const SpecialSpace& space,
                                       u64 sample_blocks) {
  Rng rng(0xDE5F);
  tensor::Tensor img = tensor::Tensor::image(1, n, n);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, 1, k);
  flt.fill_random(rng);

  sim::LaunchOptions opt;
  opt.sample_max_blocks = sample_blocks;

  SpecialAutotuneResult res;
  for (const i64 w : space.block_w) {
    for (const i64 h : space.block_h) {
      kernels::SpecialConvConfig cfg;
      cfg.block_w = w;
      cfg.block_h = h;
      try {
        auto run = kernels::special_conv(dev, img, flt, cfg, opt);
        res.ranking.push_back({cfg, run.launch.timing.gflops});
        ++res.evaluated;
      } catch (const Error&) {
        ++res.skipped;
      }
    }
  }
  KCONV_CHECK(res.evaluated > 0, "no legal configuration in the search space");
  std::stable_sort(res.ranking.begin(), res.ranking.end(),
                   [](const auto& a, const auto& b) {
                     return a.gflops > b.gflops;
                   });
  res.best = res.ranking.front();
  return res;
}

}  // namespace kconv::core
