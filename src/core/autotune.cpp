#include "src/core/autotune.hpp"

#include <algorithm>
#include <limits>

#include "src/analysis/static/xray.hpp"
#include "src/common/rng.hpp"
#include "src/common/strutil.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/plan_io.hpp"
#include "src/sim/timing.hpp"

namespace kconv::core {

namespace {

std::string join_dims(const std::vector<i64>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += strf(i == 0 ? "%lld" : ",%lld", static_cast<long long>(v[i]));
  }
  return out;
}

template <typename Result, typename SaveEntry>
std::string serialize_ranking(const Result& res, const SaveEntry& save_entry) {
  sim::PlanWriter w;
  w.put_u64(static_cast<u64>(res.evaluated));
  w.put_u64(static_cast<u64>(res.skipped));
  w.put_u64(static_cast<u64>(res.pruned));
  w.put_u32(static_cast<u32>(res.ranking.size()));
  for (const auto& e : res.ranking) {
    save_entry(w, e);
    w.put_f64(e.gflops);
  }
  return w.take();
}

/// Restores a persisted ranking; false leaves `res` untouched (the caller
/// falls back to a cold sweep that overwrites the stale entry).
template <typename Result, typename LoadEntry>
bool deserialize_ranking(const std::string& payload, Result& res,
                         const LoadEntry& load_entry) {
  sim::PlanReader r(payload);
  Result out;
  out.evaluated = static_cast<i64>(r.get_u64());
  out.skipped = static_cast<i64>(r.get_u64());
  out.pruned = static_cast<i64>(r.get_u64());
  const u32 count = r.get_u32();
  if (!r.ok() || count == 0 || count > (1u << 20) ||
      static_cast<i64>(count) != out.evaluated) {
    return false;
  }
  out.ranking.resize(count);
  for (u32 i = 0; i < count; ++i) {
    load_entry(r, out.ranking[i]);
    out.ranking[i].gflops = r.get_f64();
  }
  if (!r.ok() || !r.at_end()) return false;
  out.best = out.ranking.front();
  out.from_plan_cache = true;
  res = std::move(out);
  return true;
}

/// Per-candidate outcome slot. Exactly one worker writes each slot (the
/// sweep runs with grain 1), so no synchronization is needed beyond the
/// pool's own join.
struct Outcome {
  bool evaluated = false;
  double gflops = 0.0;
};

/// Evaluates `eval` for every candidate whose `check` string is empty, on
/// `num_threads` host threads. Illegal candidates are counted as skipped
/// without ever constructing a kernel; a defensive catch keeps a candidate
/// that still throws in the skipped bucket rather than poisoning the sweep.
template <typename Check, typename Eval>
std::vector<Outcome> sweep(u64 count, u32 num_threads, const Check& check,
                           const Eval& eval) {
  std::vector<Outcome> out(count);
  const u32 threads = static_cast<u32>(std::min<u64>(
      ThreadPool::resolve_threads(num_threads), std::max<u64>(count, 1)));
  const auto body = [&](u64 b, u64 e, u32 /*chunk*/) {
    for (u64 i = b; i < e; ++i) {
      if (!check(i).empty()) continue;
      try {
        out[i].gflops = eval(i);
        out[i].evaluated = true;
      } catch (const Error&) {
        // Pre-validation should have caught this; count it as skipped.
      }
    }
  };
  if (threads <= 1 || count <= 1) {
    body(0, count, 0);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(0, count, 1, body);
  }
  return out;
}

/// Static score of one candidate (docs/MODEL.md §10): run kconv-xray over
/// the same evenly spaced block sample the probe launch would execute and
/// feed the predicted counters to the simulator's own timing model. No
/// Device, no coroutines — the cost is a handful of symbolic blocks.
/// Cache state is invisible to the static pass, so DRAM demand uses the
/// pessimistic all-miss assumption, uniformly across candidates (the
/// relative order is what pruning consumes).
double static_score(const sim::Arch& arch, const xray::KernelModel& model,
                    u64 sample_blocks) {
  const u64 total = model.cfg.grid.count();
  xray::XrayOptions xopt;
  xopt.races = false;
  xopt.dual_bank_modes = false;
  xopt.findings = false;
  if (sample_blocks > 0 && sample_blocks < total) {
    // Mirror the launch layer's BlockSet sampling: even spacing, offset
    // half a stride so border blocks are not over-represented.
    const double stride =
        static_cast<double>(total) / static_cast<double>(sample_blocks);
    for (u64 i = 0; i < sample_blocks; ++i) {
      xopt.block_ids.push_back(
          static_cast<u64>((static_cast<double>(i) + 0.5) * stride));
    }
  }
  const xray::StaticReport rep = xray::analyze(arch, model, xopt);
  sim::KernelStats s = rep.predicted;
  s.gm_sectors_dram = s.gm_sectors;
  return sim::estimate_time(arch, model.cfg, s, total).gflops;
}

/// keep[i] for every candidate: true when the candidate survives the
/// static pre-pass — the top ceil(legal/2) by static score, enumeration
/// order breaking ties so the verdict is deterministic. Illegal
/// candidates (score slot NaN) are never kept.
std::vector<char> prune_keep(const std::vector<double>& score) {
  std::vector<u64> legal;
  for (std::size_t i = 0; i < score.size(); ++i) {
    if (score[i] == score[i]) legal.push_back(i);  // not NaN
  }
  std::stable_sort(legal.begin(), legal.end(), [&](u64 a, u64 b) {
    return score[a] > score[b];
  });
  const std::size_t kept = (legal.size() + 1) / 2;
  std::vector<char> keep(score.size(), 0);
  for (std::size_t i = 0; i < kept; ++i) keep[legal[i]] = 1;
  return keep;
}

template <typename Scored, typename Result>
void finish(const std::vector<Scored>& scored,
            const std::vector<Outcome>& outcomes, Result& res) {
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (outcomes[i].evaluated) {
      res.ranking.push_back({scored[i], outcomes[i].gflops});
      ++res.evaluated;
    } else {
      ++res.skipped;
    }
  }
  KCONV_CHECK(res.evaluated > 0, "no legal configuration in the search space");
  std::stable_sort(res.ranking.begin(), res.ranking.end(),
                   [](const auto& a, const auto& b) {
                     return a.gflops > b.gflops;
                   });
  res.best = res.ranking.front();
}

}  // namespace

GeneralAutotuneResult autotune_general(sim::Device& dev, i64 k, i64 c, i64 f,
                                       i64 n, const GeneralSpace& space,
                                       u64 sample_blocks, u32 num_threads,
                                       sim::PlanCache* plans, bool analytic,
                                       bool static_prune) {
  const auto save_entry = [](sim::PlanWriter& w, const ScoredGeneralConfig& e) {
    w.put_i64(e.config.block_w);
    w.put_i64(e.config.block_h);
    w.put_i64(e.config.ftb);
    w.put_i64(e.config.wt);
    w.put_i64(e.config.ft);
    w.put_i64(e.config.csh);
    w.put_i64(e.config.vec_width);
    w.put_u8(e.config.pad_filters ? 1 : 0);
    w.put_u8(e.config.prefetch ? 1 : 0);
  };
  const auto load_entry = [](sim::PlanReader& r, ScoredGeneralConfig& e) {
    e.config.block_w = r.get_i64();
    e.config.block_h = r.get_i64();
    e.config.ftb = r.get_i64();
    e.config.wt = r.get_i64();
    e.config.ft = r.get_i64();
    e.config.csh = r.get_i64();
    e.config.vec_width = r.get_i64();
    e.config.pad_filters = r.get_u8() != 0;
    e.config.prefetch = r.get_u8() != 0;
  };
  std::string ranking_key;
  if (plans != nullptr) {
    ranking_key = strf(
        "autotune_general|v2|%s|k=%lld|c=%lld|f=%lld|n=%lld|sample=%llu|"
        "analytic=%d|w=%s|h=%s|ftb=%s|wt=%s|ft=%s|csh=%s",
        sim::arch_fingerprint(dev.arch()).c_str(), static_cast<long long>(k),
        static_cast<long long>(c), static_cast<long long>(f),
        static_cast<long long>(n),
        static_cast<unsigned long long>(sample_blocks), analytic ? 1 : 0,
        join_dims(space.block_w).c_str(), join_dims(space.block_h).c_str(),
        join_dims(space.ftb).c_str(), join_dims(space.wt).c_str(),
        join_dims(space.ft).c_str(), join_dims(space.csh).c_str());
    // Pruned and unpruned rankings are different artifacts (fewer entries,
    // a non-zero pruned count) — never served interchangeably.
    if (static_prune) ranking_key += "|prune=1";
    std::string payload;
    GeneralAutotuneResult warm;
    if (plans->load(ranking_key, payload) &&
        deserialize_ranking(payload, warm, load_entry)) {
      return warm;
    }
  }

  Rng rng(0xDE5E);
  tensor::Tensor img = tensor::Tensor::image(c, n, n);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, k);
  flt.fill_random(rng);

  sim::LaunchOptions opt;
  opt.sample_max_blocks = sample_blocks;
  // Probe launches replay repeated block classes (exact counters on the
  // serial inner launches, so scores and rankings are unchanged — only
  // faster). See docs/MODEL.md §5b.
  opt.replay = true;
  // Probe launches share the plan store too: an interrupted sweep's traces
  // are reused candidate-by-candidate on the next cold run.
  opt.plan_cache = plans;
  opt.analytic = analytic;

  // Enumeration order is the ranking's tie-break order — keep it fixed.
  std::vector<kernels::GeneralConvConfig> candidates;
  for (const i64 w : space.block_w) {
    for (const i64 h : space.block_h) {
      for (const i64 ftb : space.ftb) {
        for (const i64 wt : space.wt) {
          for (const i64 ft : space.ft) {
            for (const i64 csh : space.csh) {
              kernels::GeneralConvConfig cfg;
              cfg.block_w = w;
              cfg.block_h = h;
              cfg.ftb = ftb;
              cfg.wt = wt;
              cfg.ft = ft;
              cfg.csh = csh;
              candidates.push_back(cfg);
            }
          }
        }
      }
    }
  }

  const sim::Arch& arch = dev.arch();
  const auto check = [&](u64 i) {
    return kernels::general_conv_check(arch, k, c, f, n, n, candidates[i]);
  };

  // kconv-xray pre-pass (docs/MODEL.md §10): rank every legal candidate on
  // its statically predicted counters and keep the top half. Dominated
  // configurations are never simulated.
  std::vector<char> keep;
  i64 pruned_count = 0;
  if (static_prune) {
    std::vector<double> score(candidates.size(),
                              std::numeric_limits<double>::quiet_NaN());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!check(i).empty()) continue;
      score[i] = static_score(
          arch, kernels::general_conv_xray(arch, k, c, f, n, n, candidates[i]),
          sample_blocks);
    }
    keep = prune_keep(score);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (score[i] == score[i] && keep[i] == 0) ++pruned_count;
    }
  }

  const auto outcomes = sweep(
      candidates.size(), num_threads,
      [&](u64 i) {
        if (!keep.empty() && keep[i] == 0) return std::string("pruned");
        return check(i);
      },
      [&](u64 i) {
        // A fresh device per candidate: scores never depend on what the
        // sweep ran before (allocator addresses, L2 warmth), so the ranking
        // is identical for any thread count.
        sim::Device cand_dev(arch);
        auto run = kernels::general_conv(cand_dev, img, flt, candidates[i], opt);
        return run.launch.timing.gflops;
      });

  GeneralAutotuneResult res;
  finish(candidates, outcomes, res);
  res.pruned = pruned_count;
  res.skipped -= pruned_count;
  if (plans != nullptr) {
    plans->store(ranking_key, serialize_ranking(res, save_entry));
  }
  return res;
}

SpecialAutotuneResult autotune_special(sim::Device& dev, i64 k, i64 f, i64 n,
                                       const SpecialSpace& space,
                                       u64 sample_blocks, u32 num_threads,
                                       sim::PlanCache* plans, bool analytic,
                                       bool static_prune) {
  const auto save_entry = [](sim::PlanWriter& w, const ScoredSpecialConfig& e) {
    w.put_i64(e.config.block_w);
    w.put_i64(e.config.block_h);
    w.put_i64(e.config.vec_width);
  };
  const auto load_entry = [](sim::PlanReader& r, ScoredSpecialConfig& e) {
    e.config.block_w = r.get_i64();
    e.config.block_h = r.get_i64();
    e.config.vec_width = r.get_i64();
  };
  std::string ranking_key;
  if (plans != nullptr) {
    ranking_key = strf(
        "autotune_special|v2|%s|k=%lld|f=%lld|n=%lld|sample=%llu|"
        "analytic=%d|w=%s|h=%s",
        sim::arch_fingerprint(dev.arch()).c_str(), static_cast<long long>(k),
        static_cast<long long>(f), static_cast<long long>(n),
        static_cast<unsigned long long>(sample_blocks), analytic ? 1 : 0,
        join_dims(space.block_w).c_str(), join_dims(space.block_h).c_str());
    if (static_prune) ranking_key += "|prune=1";
    std::string payload;
    SpecialAutotuneResult warm;
    if (plans->load(ranking_key, payload) &&
        deserialize_ranking(payload, warm, load_entry)) {
      return warm;
    }
  }

  Rng rng(0xDE5F);
  tensor::Tensor img = tensor::Tensor::image(1, n, n);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, 1, k);
  flt.fill_random(rng);

  sim::LaunchOptions opt;
  opt.sample_max_blocks = sample_blocks;
  opt.replay = true;
  opt.plan_cache = plans;
  opt.analytic = analytic;

  std::vector<kernels::SpecialConvConfig> candidates;
  for (const i64 w : space.block_w) {
    for (const i64 h : space.block_h) {
      kernels::SpecialConvConfig cfg;
      cfg.block_w = w;
      cfg.block_h = h;
      candidates.push_back(cfg);
    }
  }

  const sim::Arch& arch = dev.arch();
  const auto check = [&](u64 i) {
    return kernels::special_conv_check(arch, k, f, n, n, candidates[i]);
  };

  std::vector<char> keep;
  i64 pruned_count = 0;
  if (static_prune) {
    std::vector<double> score(candidates.size(),
                              std::numeric_limits<double>::quiet_NaN());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!check(i).empty()) continue;
      score[i] = static_score(
          arch, kernels::special_conv_xray(arch, k, f, n, n, candidates[i]),
          sample_blocks);
    }
    keep = prune_keep(score);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (score[i] == score[i] && keep[i] == 0) ++pruned_count;
    }
  }

  const auto outcomes = sweep(
      candidates.size(), num_threads,
      [&](u64 i) {
        if (!keep.empty() && keep[i] == 0) return std::string("pruned");
        return check(i);
      },
      [&](u64 i) {
        sim::Device cand_dev(arch);
        auto run = kernels::special_conv(cand_dev, img, flt, candidates[i], opt);
        return run.launch.timing.gflops;
      });

  SpecialAutotuneResult res;
  finish(candidates, outcomes, res);
  res.pruned = pruned_count;
  res.skipped -= pruned_count;
  if (plans != nullptr) {
    plans->store(ranking_key, serialize_ranking(res, save_entry));
  }
  return res;
}

}  // namespace kconv::core
