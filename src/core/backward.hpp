// Backward-pass convolutions for training.
//
// "Propagating through these convolutional layers is always a computation
// bottleneck in BOTH the training and inference phases" (paper §1). The
// forward kernels cover inference; these two gradients complete the
// training triangle, each reduced to operations the library already
// optimizes:
//
//  - data gradient:   dX = conv_valid(zero-pad(dY, K-1), rot180(W)^T),
//    i.e. a full correlation — runs through the paper's own direct kernels
//    via conv2d() with spatially flipped, channel-transposed filters;
//  - weight gradient: dW = dY_flat (F x HoWo) * im2col(X)^T (HoWo x CKK),
//    one device GEMM fed by the transposed-im2col kernel.
#pragma once

#include "src/core/conv_api.hpp"

namespace kconv::core {

struct ConvGradResult {
  tensor::Tensor grad;
  bool grad_valid = false;
  double total_seconds = 0.0;
  Algo algo_used = Algo::Auto;
};

/// Gradient w.r.t. the input: dY (1, F, Ho, Wo) and the forward filters
/// (F, C, K, K) -> dX (1, C, Hi, Wi) with Hi = Ho + K - 1.
ConvGradResult conv2d_backward_data(sim::Device& dev,
                                    const tensor::Tensor& grad_output,
                                    const tensor::Tensor& filters,
                                    const ConvOptions& opt = {});

/// Gradient w.r.t. the filters: forward input (1, C, Hi, Wi) and dY
/// (1, F, Ho, Wo) -> dW (F, C, K, K) with K = Hi - Ho + 1.
ConvGradResult conv2d_backward_filters(sim::Device& dev,
                                       const tensor::Tensor& input,
                                       const tensor::Tensor& grad_output,
                                       const ConvOptions& opt = {});

}  // namespace kconv::core
