// Design-space exploration for the kernels' tiling parameters.
//
// The paper's Table 1 ("best configurations of our general case convolution
// kernel... determined through design space exploration") is reproduced by
// sweeping {W, H, FTB, WT, FT, CSH} over a candidate grid, scoring each
// legal configuration on a sampled proxy problem, and reporting the
// fastest. Illegal combinations (divisibility, register/shared-memory
// capacity) are skipped, mirroring what a real DSE over launchable kernels
// does. The special-case {W, H} sweep works the same way.
#pragma once

#include <vector>

#include "src/kernels/general_conv.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/sim/launch.hpp"
#include "src/sim/plan_cache.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::core {

struct GeneralSpace {
  std::vector<i64> block_w = {32, 64};
  std::vector<i64> block_h = {4, 8};
  std::vector<i64> ftb = {32, 64};
  std::vector<i64> wt = {8, 16};
  std::vector<i64> ft = {4, 8};
  std::vector<i64> csh = {1, 2};
};

struct ScoredGeneralConfig {
  kernels::GeneralConvConfig config;
  double gflops = 0.0;
};

struct GeneralAutotuneResult {
  ScoredGeneralConfig best;
  /// Every evaluated configuration, best first.
  std::vector<ScoredGeneralConfig> ranking;
  i64 evaluated = 0;
  i64 skipped = 0;  // illegal configurations rejected by the kernel
  /// Legal configurations the kconv-xray pre-pass (static_prune) ranked
  /// out before simulation (docs/MODEL.md §10). 0 when pruning was off.
  i64 pruned = 0;
  /// The full ranking was served from a persisted plan store; no candidate
  /// was simulated. Scores are bit-identical to the cold sweep that wrote
  /// the entry (same arch, proxy, space, sampling and probe mode).
  bool from_plan_cache = false;
};

/// Sweeps the general-case kernel on a proxy problem with the given K.
/// `c`/`f`/`n` define the proxy (modest sizes keep the sweep fast; the
/// ranking is stable across problem sizes for fixed K, which is why the
/// paper tabulates per-K configurations).
///
/// Candidates are evaluated on `num_threads` host threads (0 = hardware
/// concurrency), each on a fresh Device cloned from `dev.arch()` so every
/// score is independent of sweep order; results are merged in enumeration
/// order, making the ranking identical for any thread count.
///
/// With `plans` set, the finished ranking is persisted keyed by (arch,
/// problem, space, sampling, probe mode); a warm call returns the stored
/// ranking without simulating a single candidate (from_plan_cache = true).
/// Candidate probe launches also share the store, so even a cold sweep
/// after an interrupted one reuses captured traces. `analytic` runs the
/// probes in analytic replay mode (docs/MODEL.md §5d): scores keep the
/// exact compute/smem counters and per-class approximate GM counters —
/// rankings on these proxies are unchanged, only cheaper. Analytic and
/// non-analytic sweeps are keyed separately.
///
/// `static_prune` (docs/MODEL.md §10) runs the kconv-xray symbolic pass
/// over every legal candidate first — no Device, no block execution —
/// scores each on the analytic time estimate of its predicted counters
/// (same sampled block ids the probe launch would run), and simulates only
/// the top half. Dominated configurations land in `pruned` instead of the
/// ranking; the winner is unchanged on the shipping spaces (asserted by
/// tests and the bench baseline), because the static counters are the
/// exact inputs the simulator's own timing model consumes.
GeneralAutotuneResult autotune_general(sim::Device& dev, i64 k, i64 c, i64 f,
                                       i64 n, const GeneralSpace& space = {},
                                       u64 sample_blocks = 2,
                                       u32 num_threads = 0,
                                       sim::PlanCache* plans = nullptr,
                                       bool analytic = false,
                                       bool static_prune = false);

struct SpecialSpace {
  std::vector<i64> block_w = {64, 128, 256, 512};
  std::vector<i64> block_h = {2, 4, 8, 16};
};

struct ScoredSpecialConfig {
  kernels::SpecialConvConfig config;
  double gflops = 0.0;
};

struct SpecialAutotuneResult {
  ScoredSpecialConfig best;
  std::vector<ScoredSpecialConfig> ranking;
  i64 evaluated = 0;
  i64 skipped = 0;
  /// Legal configurations the kconv-xray pre-pass ranked out (§10).
  i64 pruned = 0;
  bool from_plan_cache = false;
};

/// Sweeps the special-case kernel's {W, H} (paper: best is 256 x 8).
/// Parallel evaluation, persistence, analytic-probe and static_prune
/// semantics match `autotune_general`.
SpecialAutotuneResult autotune_special(sim::Device& dev, i64 k, i64 f, i64 n,
                                       const SpecialSpace& space = {},
                                       u64 sample_blocks = 4,
                                       u32 num_threads = 0,
                                       sim::PlanCache* plans = nullptr,
                                       bool analytic = false,
                                       bool static_prune = false);

}  // namespace kconv::core
