// The paper's §2.1 bank-width matching model (Eq. 1):  W_SMB = n * W_CD.
//
// Given an architecture's shared-memory bank width and a storage element
// width, this computes the vector width n a kernel must use per thread so
// that each SM request cycle moves full bank words. n = 1 means the widths
// already match; n > 1 means a conventional scalar kernel would waste a
// factor n of SM bandwidth (Fig. 1).
#pragma once

#include "src/common/types.hpp"
#include "src/sim/arch.hpp"

namespace kconv::core {

/// The matched computation data width, in elements, for `elem_bytes`-wide
/// storage on `arch` (Eq. 1 solved for n; at least 1).
inline i64 matched_vector_width(const sim::Arch& arch, std::size_t elem_bytes) {
  KCONV_CHECK(elem_bytes > 0, "zero element width");
  const i64 n = static_cast<i64>(arch.smem_bank_bytes / elem_bytes);
  return n < 1 ? 1 : n;
}

/// Same, by data type.
inline i64 matched_vector_width(const sim::Arch& arch, DType t) {
  return matched_vector_width(arch, dtype_size(t));
}

/// True when a thread computing 1 element per unit already saturates the
/// bank width (the "matched" case needing no redesign).
inline bool naturally_matched(const sim::Arch& arch, DType t) {
  return matched_vector_width(arch, t) == 1;
}

/// The SM bandwidth multiplier the paper's redesign yields: using n-wide
/// units moves n times the bytes per request cycle.
inline double matching_speedup_bound(const sim::Arch& arch, DType t) {
  return static_cast<double>(matched_vector_width(arch, t));
}

}  // namespace kconv::core
