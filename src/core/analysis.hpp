// Closed-form communication bounds from the paper's analysis (§3.2, §4.2).
//
// These are testable predictions: the simulator's measured traffic must
// match them, which is exactly what tests/core/analysis_test.cpp asserts.
#pragma once

#include "src/common/types.hpp"

namespace kconv::core {

/// §3.2: in the special-case kernel every in-block pixel is read from GM
/// exactly once; only halo pixels are re-read. Expected GM loads per block
/// (in pixels) for a W x H *output* tile with a K x K filter.
inline double special_gm_pixels_per_block(i64 w, i64 h, i64 k) {
  return static_cast<double>(w + k - 1) * (h + k - 1);
}

/// §3.2: the halo overhead over the theoretical lower bound of one read per
/// pixel. "The proportion of such halo pixels is small."
inline double special_halo_overhead(i64 w, i64 h, i64 k) {
  return special_gm_pixels_per_block(w, h, k) /
             (static_cast<double>(w) * h) -
         1.0;
}

/// §4.2: SM image traffic per thread is (WT+K-1) pixels per K rounds rather
/// than WT*K — the reduction factor of computing WT contiguous pixels per
/// thread instead of scattering them across threads.
inline double general_smem_image_ratio(i64 wt, i64 k) {
  return static_cast<double>(wt + k - 1) /
         (static_cast<double>(wt) * k);
}

/// §4.3: GM image traffic versus a GEMM-based method — one image row feeds
/// the convolutions of K output rows, so direct staging reads each pixel
/// once per block while im2col-style lowering reads it ~K times (per
/// vertical reuse; the full K*K factor is softened by caches).
inline double general_gm_ratio_vs_gemm(i64 k) {
  return 1.0 / static_cast<double>(k);
}

}  // namespace kconv::core
