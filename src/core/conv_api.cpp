#include "src/core/conv_api.hpp"

#include <algorithm>
#include <vector>

#include "src/kernels/general_conv.hpp"
#include "src/kernels/im2col_conv.hpp"
#include "src/kernels/implicit_gemm_conv.hpp"
#include "src/kernels/naive_conv.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/kernels/fft_conv.hpp"
#include "src/kernels/winograd_conv.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::core {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::Auto: return "auto";
    case Algo::Special: return "special";
    case Algo::General: return "general";
    case Algo::ImplicitGemm: return "implicit-gemm";
    case Algo::Im2colGemm: return "im2col-gemm";
    case Algo::NaiveDirect: return "naive";
    case Algo::Winograd: return "winograd";
    case Algo::Fft: return "fft";
  }
  return "?";
}

double conv_flops(i64 c, i64 f, i64 k, i64 ho, i64 wo) {
  return 2.0 * static_cast<double>(c) * f * k * k * ho * wo;
}

namespace {

/// A general-case launch plan for arbitrary C and F: a tiling satisfying
/// the kernel's divisibility rules, plus the filter-count padding needed
/// when F doesn't divide into any legal FTB (extra filters are zeros and
/// their output planes are dropped — the standard trick for ragged F).
struct GeneralPlan {
  kernels::GeneralConvConfig cfg;
  i64 f_padded = 0;
};

GeneralPlan plan_general(i64 k, i64 c, i64 f) {
  GeneralPlan plan;
  plan.cfg = (k == 3 || k == 5 || k == 7) ? kernels::table1_config(k)
                                          : kernels::table1_config(3);
  kernels::GeneralConvConfig& cfg = plan.cfg;
  // FTB never shrinks below 4 so FT stays a multiple of the matched width.
  while (cfg.ftb > 4 && f % cfg.ftb != 0) cfg.ftb /= 2;
  if (cfg.ft > cfg.ftb) cfg.ft = cfg.ftb;
  while (cfg.csh > 1 && c % cfg.csh != 0) cfg.csh /= 2;

  // Shrinking FTB shrinks the thread block; make sure the cooperative
  // staging still fits the kernel's per-thread register caps (worst case
  // n = 1, i.e. the unmatched variant). Smaller WT buys more threads.
  const auto staging_fits = [&] {
    const i64 threads =
        (cfg.ftb / cfg.ft) * (cfg.block_w * cfg.block_h / cfg.wt);
    if (threads < 1 || threads > 1024) return false;
    const i64 img_units = ceil_div(
        cfg.csh * (cfg.block_h + k - 1) * (cfg.block_w + k - 1), threads);
    const i64 flt_scalars = ceil_div(cfg.csh * k * k * cfg.ftb, threads);
    return img_units <= 16 && flt_scalars <= 64;
  };
  while (!staging_fits() && cfg.wt > 4) cfg.wt /= 2;
  while (!staging_fits() && cfg.csh > 1) cfg.csh /= 2;

  plan.f_padded = round_up(f, cfg.ftb);
  return plan;
}

/// Zero-pads an (F, C, K, K) bank to `f_padded` filters.
tensor::Tensor pad_filter_bank(const tensor::Tensor& filters, i64 f_padded) {
  tensor::Tensor out(f_padded, filters.c(), filters.h(), filters.w());
  for (i64 fidx = 0; fidx < filters.n(); ++fidx)
    for (i64 c = 0; c < filters.c(); ++c)
      for (i64 y = 0; y < filters.h(); ++y)
        for (i64 x = 0; x < filters.w(); ++x)
          out.at(fidx, c, y, x) = filters.at(fidx, c, y, x);
  return out;
}

}  // namespace

ConvResult conv2d_batched(sim::Device& dev, const tensor::Tensor& input,
                          const tensor::Tensor& filters,
                          const ConvOptions& opt) {
  KCONV_CHECK(input.n() >= 1, "empty batch");
  if (input.n() == 1) return conv2d(dev, input, filters, opt);

  // Batch sharding with a real batch means whole images, not block slabs:
  // images round-robin across devices, each running single-device (outputs
  // stay bit-identical), and the batch makespan is the busiest device's
  // summed compute plus its staging ledger (filters land once per device).
  const sim::FleetOptions& fopt = opt.launch.fleet;
  const bool image_shard =
      fopt.devices > 1 && fopt.strategy == sim::ShardStrategy::Batch;
  ConvOptions per = opt;
  if (image_shard) per.launch.fleet = sim::FleetOptions{};
  std::vector<double> dev_busy;
  std::vector<sim::TransferLedger> dev_led;
  std::vector<u64> dev_images;
  if (image_shard) {
    dev_busy.assign(fopt.devices, 0.0);
    dev_led.assign(fopt.devices, sim::TransferLedger{});
    dev_images.assign(fopt.devices, 0);
  }

  // Slice each image out of the batch and run it; filters are identical
  // across the batch, which in a real deployment keeps them resident (the
  // simulator re-uploads per launch — the timing model charges GM filter
  // loads per launch either way).
  ConvResult total;
  for (i64 img = 0; img < input.n(); ++img) {
    tensor::Tensor one(1, input.c(), input.h(), input.w());
    for (i64 c = 0; c < input.c(); ++c)
      for (i64 y = 0; y < input.h(); ++y)
        for (i64 x = 0; x < input.w(); ++x)
          one.at(0, c, y, x) = input.at(img, c, y, x);
    ConvResult r = conv2d(dev, one, filters, per);
    if (image_shard) {
      const u32 d = static_cast<u32>(img % fopt.devices);
      sim::TransferLedger& led = dev_led[d];
      const u64 fs = sizeof(float);
      if (dev_images[d] == 0) {
        led.h2d_bytes += fs * static_cast<u64>(filters.n() * filters.c() *
                                               filters.h() * filters.w());
        led.h2d_ops += 1;
      }
      led.h2d_bytes +=
          fs * static_cast<u64>(input.c() * input.h() * input.w());
      led.h2d_ops += 1;
      dev_busy[d] += r.total_seconds;
      dev_images[d] += 1;
    }
    if (img == 0) {
      total = std::move(r);
      if (total.output_valid) {
        tensor::Tensor batched(input.n(), total.output.c(), total.output.h(),
                               total.output.w());
        for (i64 c = 0; c < total.output.c(); ++c)
          for (i64 y = 0; y < total.output.h(); ++y)
            for (i64 x = 0; x < total.output.w(); ++x)
              batched.at(0, c, y, x) = total.output.at(0, c, y, x);
        total.output = std::move(batched);
      }
      continue;
    }
    total.total_seconds += r.total_seconds;
    total.launch = r.launch;
    if (total.output_valid && r.output_valid) {
      for (i64 c = 0; c < r.output.c(); ++c)
        for (i64 y = 0; y < r.output.h(); ++y)
          for (i64 x = 0; x < r.output.w(); ++x)
            total.output.at(img, c, y, x) = r.output.at(0, c, y, x);
    } else {
      total.output_valid = false;
    }
  }
  const i64 k = filters.h();
  const i64 ho = total.output_valid ? total.output.h()
                                    : tensor::conv_out_extent(
                                          opt.padding == Padding::Same
                                              ? input.h() + k - 1
                                              : input.h(),
                                          k, 0);
  const i64 wo = total.output_valid ? total.output.w()
                                    : tensor::conv_out_extent(
                                          opt.padding == Padding::Same
                                              ? input.w() + k - 1
                                              : input.w(),
                                          k, 0);
  if (image_shard) {
    sim::FleetResult& f = total.launch.fleet;
    f.enabled = true;
    f.devices = fopt.devices;
    f.strategy = fopt.strategy;
    f.interconnect = fopt.interconnect.name;
    f.p2p = fopt.interconnect.p2p;
    const u64 fs = sizeof(float);
    double makespan = 0.0;
    for (u32 d = 0; d < fopt.devices; ++d) {
      sim::TransferLedger& led = dev_led[d];
      led.d2h_bytes +=
          fs * static_cast<u64>(filters.n() * ho * wo) * dev_images[d];
      led.d2h_ops += dev_images[d];
      const double transfer = led.seconds(fopt.interconnect);
      sim::FleetDeviceReport rep;
      rep.device = d;
      rep.blocks = dev_images[d];  // image-granular sharding: images, not blocks
      rep.ledger = led;
      rep.transfer_seconds = transfer;
      rep.compute_seconds = dev_busy[d];
      f.device_reports.push_back(rep);
      f.h2d_bytes += led.h2d_bytes;
      f.d2h_bytes += led.d2h_bytes;
      f.transfer_seconds += transfer;
      f.compute_seconds = std::max(f.compute_seconds, dev_busy[d]);
      makespan = std::max(makespan, dev_busy[d] + transfer);
    }
    f.seconds = makespan;
    total.total_seconds = makespan;
  }
  total.effective_gflops =
      input.n() * conv_flops(input.c(), filters.n(), k, ho, wo) /
      total.total_seconds / 1e9;
  return total;
}

ConvResult conv2d(sim::Device& dev, const tensor::Tensor& input,
                  const tensor::Tensor& filters, const ConvOptions& opt) {
  KCONV_CHECK(input.n() == 1, "conv2d operates on a single image");
  KCONV_CHECK(filters.c() == input.c(),
              strf("channel mismatch: input C=%lld, filters C=%lld",
                   static_cast<long long>(input.c()),
                   static_cast<long long>(filters.c())));
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 k = filters.h();

  tensor::Tensor padded;
  const tensor::Tensor* in = &input;
  if (opt.padding == Padding::Same) {
    KCONV_CHECK(k % 2 == 1, "`same` padding requires an odd filter size");
    padded = tensor::pad_image(input, (k - 1) / 2);
    in = &padded;
  }

  Algo algo = opt.algo;
  if (algo == Algo::Auto) {
    algo = input.c() == 1 ? Algo::Special : Algo::General;
  }
  KCONV_CHECK(opt.fuse_bias_relu.empty() || algo == Algo::Special ||
                  algo == Algo::General,
              strf("fuse_bias_relu is not supported by the '%s' algorithm",
                   algo_name(algo)));
  // Only the paper kernels declare shard-axis hints; sharding the other
  // algorithms would silently skip the transfer model, so reject instead.
  KCONV_CHECK(opt.launch.fleet.devices <= 1 || algo == Algo::Special ||
                  algo == Algo::General,
              strf("multi-device sharding is not supported by the '%s' "
                   "algorithm",
                   algo_name(algo)));

  const i64 ho = tensor::conv_out_extent(in->h(), k, 0);
  const i64 wo = tensor::conv_out_extent(in->w(), k, 0);
  const double flops = conv_flops(input.c(), filters.n(), k, ho, wo);

  ConvResult res;
  res.algo_used = algo;
  switch (algo) {
    case Algo::Special: {
      kernels::SpecialConvConfig cfg;
      cfg.vec_width = opt.vec_width;
      // Shrink the default tile for images narrower than 256 outputs.
      while (cfg.block_w > 16 && cfg.block_w > wo * 2) cfg.block_w /= 2;
      auto run = kernels::special_conv(dev, *in, filters, cfg, opt.launch,
                                       opt.fuse_bias_relu);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.launch;
      res.total_seconds = run.launch.timing.seconds;
      break;
    }
    case Algo::General: {
      auto plan = plan_general(k, input.c(), filters.n());
      plan.cfg.vec_width = opt.vec_width;
      kernels::KernelRun run;
      if (plan.f_padded != filters.n()) {
        const tensor::Tensor padded_bank =
            pad_filter_bank(filters, plan.f_padded);
        // Zero-pad the fused bias alongside the zero filters: the padding
        // planes come out as max(0, 0 + 0) = 0 and are trimmed anyway.
        std::vector<float> padded_bias;
        std::span<const float> bias = opt.fuse_bias_relu;
        if (!bias.empty()) {
          padded_bias.assign(bias.begin(), bias.end());
          padded_bias.resize(static_cast<std::size_t>(plan.f_padded), 0.0f);
          bias = padded_bias;
        }
        run = kernels::general_conv(dev, *in, padded_bank, plan.cfg,
                                    opt.launch, bias);
        if (run.output_valid) {
          // Drop the zero-filter planes.
          tensor::Tensor trimmed(1, filters.n(), run.output.h(),
                                 run.output.w());
          for (i64 fidx = 0; fidx < filters.n(); ++fidx)
            for (i64 y = 0; y < run.output.h(); ++y)
              for (i64 x = 0; x < run.output.w(); ++x)
                trimmed.at(0, fidx, y, x) = run.output.at(0, fidx, y, x);
          run.output = std::move(trimmed);
        }
      } else {
        run = kernels::general_conv(dev, *in, filters, plan.cfg, opt.launch,
                                    opt.fuse_bias_relu);
      }
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.launch;
      res.total_seconds = run.launch.timing.seconds;
      break;
    }
    case Algo::ImplicitGemm: {
      auto cfg = kernels::implicit_gemm_auto_config(filters.n(), input.c(), k);
      if (opt.vec_width != 0) cfg.vec_width = opt.vec_width;
      auto run =
          kernels::implicit_gemm_conv(dev, *in, filters, cfg, opt.launch);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.launch;
      res.total_seconds = run.launch.timing.seconds;
      break;
    }
    case Algo::Im2colGemm: {
      auto run = kernels::im2col_gemm_conv(dev, *in, filters,
                                           kernels::gemm_cublas_like(),
                                           opt.launch);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.gemm_launch;
      res.total_seconds = run.seconds();
      break;
    }
    case Algo::NaiveDirect: {
      auto run = kernels::naive_conv(dev, *in, filters, {}, opt.launch);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.launch;
      res.total_seconds = run.launch.timing.seconds;
      break;
    }
    case Algo::Winograd: {
      auto run = kernels::winograd_conv(dev, *in, filters,
                                        kernels::GemmConfig{.bm = 0},
                                        opt.launch);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.launch = run.output_tf_launch;
      res.total_seconds = run.seconds();
      break;
    }
    case Algo::Fft: {
      auto run = kernels::fft_conv(dev, *in, filters, opt.launch);
      res.output = std::move(run.output);
      res.output_valid = run.output_valid;
      res.total_seconds = run.seconds();
      break;
    }
    case Algo::Auto:
      KCONV_ASSERT(false);
  }
  if (res.launch.fleet.enabled) {
    // A sharded launch's end-to-end time is the fleet makespan (staging +
    // the busiest device), not the single-device kernel estimate.
    res.total_seconds = res.launch.fleet.seconds;
  }
  res.effective_gflops =
      res.total_seconds > 0 ? flops / res.total_seconds / 1e9 : 0.0;
  return res;
}

xray::KernelModel conv2d_xray_model(const sim::Arch& arch, i64 c, i64 f,
                                    i64 k, i64 hi, i64 wi,
                                    const ConvOptions& opt) {
  KCONV_CHECK(c >= 1 && f >= 1 && k >= 1 && hi >= k && wi >= k,
              "conv2d_xray_model: degenerate problem shape");
  if (opt.padding == Padding::Same) {
    KCONV_CHECK(k % 2 == 1, "`same` padding requires an odd filter size");
    hi += k - 1;
    wi += k - 1;
  }
  Algo algo = opt.algo;
  if (algo == Algo::Auto) algo = c == 1 ? Algo::Special : Algo::General;
  const bool fused = !opt.fuse_bias_relu.empty();
  KCONV_CHECK(!fused || algo == Algo::Special || algo == Algo::General,
              strf("fuse_bias_relu is not supported by the '%s' algorithm",
                   algo_name(algo)));
  const i64 wo = tensor::conv_out_extent(wi, k, 0);

  if (algo == Algo::Special) {
    KCONV_CHECK(c == 1, "the special-case kernel requires C == 1");
    kernels::SpecialConvConfig cfg;
    cfg.vec_width = opt.vec_width;
    while (cfg.block_w > 16 && cfg.block_w > wo * 2) cfg.block_w /= 2;
    const std::string err =
        kernels::special_conv_check(arch, k, f, hi, wi, cfg);
    KCONV_CHECK(err.empty(), err);
    return kernels::special_conv_xray(arch, k, f, hi, wi, cfg, fused);
  }
  if (algo == Algo::General) {
    auto plan = plan_general(k, c, f);
    plan.cfg.vec_width = opt.vec_width;
    const std::string err = kernels::general_conv_check(arch, k, c,
                                                        plan.f_padded, hi, wi,
                                                        plan.cfg);
    KCONV_CHECK(err.empty(), err);
    return kernels::general_conv_xray(arch, k, c, plan.f_padded, hi, wi,
                                      plan.cfg, fused);
  }
  KCONV_CHECK(algo == Algo::ImplicitGemm,
              strf("the '%s' algorithm has no kconv-xray describer",
                   algo_name(algo)));
  auto cfg = kernels::implicit_gemm_auto_config(f, c, k);
  if (opt.vec_width != 0) cfg.vec_width = opt.vec_width;
  const std::string err =
      kernels::implicit_gemm_check(arch, k, c, f, hi, wi, cfg);
  KCONV_CHECK(err.empty(), err);
  return kernels::implicit_gemm_xray(arch, k, c, f, hi, wi, cfg);
}

}  // namespace kconv::core
