// The serving driver: request queue, shape batching, and warm fast paths.
//
// A ServingDriver accepts inference requests against named networks,
// batches queued work that targets the same (network, input shape) pair,
// and executes batches on the process-wide ThreadPool — each request on its
// own simulated device (requests are independent; the simulator is
// deterministic, so results are byte-identical for any worker count).
//
// All requests share one PlanCache: the first (cold) request through a
// network captures and persists each conv's launch plan; every later (warm)
// request replays it, and with `analytic` set, warm conv launches take the
// §5d pure-analytic fast path — timing/traffic derived from the stored tape
// with zero representative block execution (such requests return timings but
// no activation data).
//
// Host-parallelism caveat: request batches scale with worker threads, but on
// a single-CPU host (the CI runner) `threads > 1` only overlaps scheduling,
// not compute — throughput numbers there reflect one core.
#pragma once

#include <mutex>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/serve/networks.hpp"
#include "src/sim/plan_cache.hpp"

namespace kconv::serve {

struct ServeOptions {
  /// Worker threads for request-level parallelism (0 = hardware count).
  u32 threads = 1;
  /// Shared across all requests; nullptr serves every request cold.
  sim::PlanCache* plan_cache = nullptr;
  /// Fold conv -> bias+ReLU pairs into the conv write-back.
  bool fuse = true;
  /// Run warm conv launches analytically (timings only, no output data).
  bool analytic = false;
  /// Base launch options for every node (replay, num_threads, profile...).
  sim::LaunchOptions launch;
};

struct ServeReply {
  u64 id = 0;
  bool ok = false;        ///< graph executed and produced valid output
  bool warm = false;      ///< every plan-cached conv launch hit
  bool analytic = false;  ///< conv launches took the analytic fast path
  double sim_seconds = 0.0;   ///< simulated device time of the whole graph
  double host_seconds = 0.0;  ///< wall-clock host time for this request
  tensor::Tensor output;
};

struct ServeStats {
  u64 processed = 0;
  u64 batches = 0;  ///< same-(network, shape) groups executed
  u64 cold = 0, warm = 0, analytic = 0;
  u64 fused_pairs = 0;
  double fusion_gm_bytes_eliminated = 0.0;
  /// Fleet traffic aggregates when ServeOptions::launch.fleet requests
  /// multi-device sharding: modeled staging/halo bytes summed over every
  /// sharded conv launch of every request (docs/MODEL.md §9).
  u64 fleet_h2d_bytes = 0, fleet_d2h_bytes = 0, fleet_d2d_bytes = 0;
  double fleet_transfer_seconds = 0.0;
};

class ServingDriver {
 public:
  explicit ServingDriver(ServeOptions opt);

  /// Queues one request; `net` must outlive the drain that serves it.
  /// Returns the request id replies are matched by.
  u64 enqueue(const Network& net, tensor::Tensor input);

  /// Runs every queued request, batching same-(network, shape) work, and
  /// returns replies ordered by request id. Thread-safe against concurrent
  /// enqueue() (requests queued mid-drain wait for the next drain).
  std::vector<ServeReply> drain();

  ServeStats stats() const;
  const ServeOptions& options() const { return opt_; }

 private:
  struct Pending {
    u64 id = 0;
    const Network* net = nullptr;
    tensor::Tensor input;
  };

  ServeOptions opt_;
  ThreadPool pool_;
  mutable std::mutex mu_;
  std::vector<Pending> queue_;
  u64 next_id_ = 0;
  ServeStats stats_;
};

}  // namespace kconv::serve
