// The serving driver: request queue, shape batching, and warm fast paths.
//
// A ServingDriver accepts inference requests against named networks,
// batches queued work that targets the same (network, input shape) pair,
// and executes batches on the process-wide ThreadPool — each request on its
// own simulated device (requests are independent; the simulator is
// deterministic, so results are byte-identical for any worker count).
//
// All requests share one PlanCache: the first (cold) request through a
// network captures and persists each conv's launch plan; every later (warm)
// request replays it, and with `analytic` set, warm conv launches take the
// §5d pure-analytic fast path — timing/traffic derived from the stored tape
// with zero representative block execution (such requests return timings but
// no activation data).
//
// Host-parallelism caveat: request batches scale with worker threads, but on
// a single-CPU host (the CI runner) `threads > 1` only overlaps scheduling,
// not compute — throughput numbers there reflect one core.
#pragma once

#include <mutex>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/scope.hpp"
#include "src/serve/networks.hpp"
#include "src/sim/plan_cache.hpp"

namespace kconv::serve {

struct ServeOptions {
  /// Worker threads for request-level parallelism (0 = hardware count).
  u32 threads = 1;
  /// Shared across all requests; nullptr serves every request cold.
  sim::PlanCache* plan_cache = nullptr;
  /// Fold conv -> bias+ReLU pairs into the conv write-back.
  bool fuse = true;
  /// Run warm conv launches analytically (timings only, no output data).
  bool analytic = false;
  /// Base launch options for every node (replay, num_threads, profile...).
  sim::LaunchOptions launch;
  /// kconv-scope sink (docs/MODEL.md §11). When set, the driver mints one
  /// trace per request (trace = request id + 1; trace 0 is the driver's
  /// batch lane), spans every queue wait / batch / execution, rolls metrics
  /// up per (network, shape, mode) in request-index order, and snapshots
  /// them after each drain. Purely observational: replies and every
  /// scheduling-invariant counter are byte-identical with this null or set.
  obs::TelemetrySink* telemetry = nullptr;
};

struct ServeReply {
  u64 id = 0;
  bool ok = false;        ///< graph executed and produced valid output
  bool warm = false;      ///< every plan-cached conv launch hit
  bool analytic = false;  ///< conv launches took the analytic fast path
  double sim_seconds = 0.0;   ///< simulated device time of the whole graph
  double host_seconds = 0.0;  ///< wall-clock host time for this request
  tensor::Tensor output;
};

struct ServeStats {
  u64 processed = 0;
  u64 batches = 0;  ///< same-(network, shape) groups executed
  u64 cold = 0, warm = 0, analytic = 0;
  u64 fused_pairs = 0;
  double fusion_gm_bytes_eliminated = 0.0;
  /// Fleet traffic aggregates when ServeOptions::launch.fleet requests
  /// multi-device sharding: modeled staging/halo bytes summed over every
  /// sharded conv launch of every request (docs/MODEL.md §9).
  u64 fleet_h2d_bytes = 0, fleet_d2h_bytes = 0, fleet_d2d_bytes = 0;
  double fleet_transfer_seconds = 0.0;

  /// kconv-scope roll-ups (docs/MODEL.md §11). All scheduling-invariant
  /// except the latency histogram, whose *samples* are wall-clock host
  /// times but whose structure (count, merge order) is index-ordered and
  /// therefore deterministic.
  u64 conv_launches = 0;
  /// §5d plan-cache outcome per conv launch; total() == conv_launches.
  obs::PlanCacheTaxonomy plan_taxonomy;
  u64 fleet_device_chunks = 0;
  u64 comm_bound_devices = 0;  ///< chunks with transfer time > compute time
  u64 arena_slot_reuses = 0;
  u64 arena_peak_bytes = 0;      ///< max over requests
  u64 max_queue_depth = 0;       ///< high-water queued requests
  u64 max_inflight_batches = 0;  ///< high-water batches per drain
  obs::Histogram latency;        ///< host seconds per request
  obs::Histogram sim_latency;    ///< simulated seconds per request
};

class ServingDriver {
 public:
  explicit ServingDriver(ServeOptions opt);

  /// Queues one request; `net` must outlive the drain that serves it.
  /// Returns the request id replies are matched by.
  u64 enqueue(const Network& net, tensor::Tensor input);

  /// Runs every queued request, batching same-(network, shape) work, and
  /// returns replies ordered by request id. Thread-safe against concurrent
  /// enqueue() (requests queued mid-drain wait for the next drain).
  std::vector<ServeReply> drain();

  ServeStats stats() const;
  const ServeOptions& options() const { return opt_; }

 private:
  struct Pending {
    u64 id = 0;
    const Network* net = nullptr;
    tensor::Tensor input;
    u64 request_span = 0;  ///< open from enqueue to reply completion
    u64 queued_span = 0;   ///< open from enqueue to execution start
  };

  ServeOptions opt_;
  ThreadPool pool_;
  mutable std::mutex mu_;
  std::vector<Pending> queue_;
  u64 next_id_ = 0;
  ServeStats stats_;
};

}  // namespace kconv::serve
