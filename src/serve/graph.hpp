// Layer-graph runner: composing the library's kernels into whole networks.
//
// A Graph is a small DAG of layer nodes (input, conv, bias+ReLU, 2x2
// max-pool, dense/GEMM) over single-image activations. run_graph() executes
// it on a simulated device with three properties the hand-sequenced
// examples do not have:
//
//  * FUSION — a conv whose only consumer is a bias+ReLU node executes with
//    the epilogue folded into the conv's write-back (special_conv /
//    general_conv `fuse_bias_relu`), so the intermediate activation never
//    round-trips simulated global memory. Outputs are bit-identical to the
//    two-launch sequence; the eliminated GM traffic is reported.
//
//  * TENSOR ARENA — intermediate activations live in a small set of reusable
//    slots assigned by liveness analysis (a node's slot is recycled after
//    its last consumer ran), instead of keeping every activation alive to
//    the end of the pass.
//
//  * FAST PATHS — the LaunchOptions are forwarded to every conv launch, so a
//    shared PlanCache turns warm traffic into §5d warm-replay or
//    pure-analytic launches. Non-conv kernels have no replay classes; they
//    always execute directly (and never see the analytic flag).
#pragma once

#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/obs/scope.hpp"
#include "src/sim/launch.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::serve {

enum class OpKind : u8 { Input, Conv, BiasRelu, MaxPool, Dense };

const char* op_name(OpKind k);

/// One layer. Nodes are single-input; fan-out (several consumers of one
/// node) is allowed and handled by the arena's liveness analysis.
struct Node {
  OpKind kind = OpKind::Input;
  i32 input = -1;  ///< producer node id; -1 only for Input
  std::string name;
  i64 in_c = 0, in_h = 0, in_w = 0;  ///< Input: declared shape
  tensor::Tensor filters;            ///< Conv: (F, C, K, K)
  std::vector<float> bias;           ///< BiasRelu: C entries
  tensor::Matrix weights;            ///< Dense: (out_features, in_features)
};

/// Activation shape flowing along an edge (single image, C x H x W; a dense
/// layer's logits are (out, 1, 1)).
struct Shape {
  i64 c = 0, h = 0, w = 0;
  i64 elems() const { return c * h * w; }
  bool operator==(const Shape&) const = default;
};

class Graph {
 public:
  /// Every builder validates eagerly (shapes are known at build time) and
  /// returns the new node's id.
  i32 add_input(i64 c, i64 h, i64 w);
  i32 add_conv(i32 input, tensor::Tensor filters, std::string name = {});
  i32 add_bias_relu(i32 input, std::vector<float> bias,
                    std::string name = {});
  i32 add_max_pool(i32 input, std::string name = {});
  i32 add_dense(i32 input, tensor::Matrix weights, std::string name = {});

  const std::vector<Node>& nodes() const { return nodes_; }
  i32 input_node() const;
  /// The unique sink (node no other node consumes). Throws when the graph
  /// is empty or has more than one sink.
  i32 output_node() const;
  u32 consumer_count(i32 id) const;

  /// Output shape of every node. Node ids are topologically ordered by
  /// construction (a node's input must already exist), so this is one pass.
  std::vector<Shape> shapes() const;

 private:
  i32 push(Node n);
  std::vector<Node> nodes_;
};

// ---------------------------------------------------------------------------
// Tensor arena: liveness-based slot assignment for intermediates.

struct ArenaPlan {
  std::vector<i32> slot;  ///< per node: which arena slot holds its output
  i32 num_slots = 0;
};

/// Assigns slots greedily over the (topological) node order: a node takes
/// the lowest free slot, and a producer's slot is freed right after its
/// last consumer. The graph output's slot is never recycled.
ArenaPlan plan_arena(const Graph& g);

/// "" when no two simultaneously-live node outputs share a slot (and every
/// node has a valid slot id); otherwise the first violation found. The
/// arena-aliasing regression tests drive this against both generated and
/// deliberately corrupted plans.
std::string validate_arena_plan(const Graph& g, const ArenaPlan& p);

// ---------------------------------------------------------------------------
// Execution.

struct GraphRunOptions {
  /// Fold conv -> bias+ReLU pairs into the conv's write-back epilogue.
  bool fuse = true;
  /// Forwarded to every launch; `analytic` applies to conv nodes only (the
  /// other kernels have no replay classes and reject the flag).
  sim::LaunchOptions launch;
};

struct NodeRun {
  OpKind kind = OpKind::Input;
  std::string name;
  bool fused = false;  ///< conv that absorbed its bias+ReLU consumer
  sim::LaunchResult launch;
};

struct GraphRun {
  /// Output of the sink node ((1, out, 1, 1) for a dense head). Invalid
  /// under analytic/sampled launches, which produce timings but no data.
  tensor::Tensor output;
  bool output_valid = false;
  double total_seconds = 0.0;
  /// Every plan-cached conv launch hit (resp. ran the analytic fast path).
  bool warm = false;
  bool analytic = false;
  std::vector<NodeRun> nodes;  ///< one per executed launch

  /// Fusion roofline accounting: GM bytes the fused epilogue never moved —
  /// the standalone bias_relu pass's write + read round-trip of each fused
  /// intermediate (8 bytes per activation element).
  u64 fused_pairs = 0;
  double fusion_gm_bytes_eliminated = 0.0;

  /// Fleet aggregates (LaunchOptions::fleet.devices > 1): modeled staging
  /// and halo traffic summed over every sharded conv launch in the graph
  /// (docs/MODEL.md §9). Zero on single-device runs.
  u64 fleet_h2d_bytes = 0;
  u64 fleet_d2h_bytes = 0;
  u64 fleet_d2d_bytes = 0;
  double fleet_transfer_seconds = 0.0;

  /// Arena accounting (bytes are activation payloads, host-side view).
  i32 arena_slots = 0;
  i32 arena_tensors = 0;  ///< intermediates that would otherwise stay live
  u64 arena_peak_bytes = 0;
  u64 naive_peak_bytes = 0;

  /// kconv-scope roll-ups (docs/MODEL.md §11). Scheduling-invariant: pure
  /// functions of the launch sequence, identical across thread counts and
  /// with telemetry on or off.
  u32 conv_launches = 0;
  /// §5d plan-cache outcome of every conv launch; total() == conv_launches.
  obs::PlanCacheTaxonomy plan_taxonomy;
  u64 fleet_device_chunks = 0;  ///< per-device chunk reports seen
  u64 comm_bound_devices = 0;   ///< chunks with transfer time > compute time
  u64 arena_slot_reuses = 0;    ///< node outputs placed into a recycled slot
};

/// Runs the graph on `input` ((1, C, H, W) matching the Input node).
/// Byte-identity contract: for the same graph and input, the output is
/// bit-for-bit identical with fusion on or off, and across serial,
/// parallel, warm-replay and (trivially, by having no output) analytic
/// launch modes.
GraphRun run_graph(sim::Device& dev, const Graph& g,
                   const tensor::Tensor& input,
                   const GraphRunOptions& opt = {});

}  // namespace kconv::serve
