#include "src/serve/graph.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"
#include "src/core/conv_api.hpp"
#include "src/kernels/gemm_kernels.hpp"
#include "src/kernels/layer_ops.hpp"

namespace kconv::serve {

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::Input: return "input";
    case OpKind::Conv: return "conv";
    case OpKind::BiasRelu: return "bias_relu";
    case OpKind::MaxPool: return "max_pool";
    case OpKind::Dense: return "dense";
  }
  return "?";
}

i32 Graph::push(Node n) {
  if (n.kind != OpKind::Input) {
    KCONV_CHECK(n.input >= 0 && n.input < static_cast<i32>(nodes_.size()),
                strf("node input id %d out of range", n.input));
  }
  if (n.name.empty()) {
    n.name = strf("%s%zu", op_name(n.kind), nodes_.size());
  }
  nodes_.push_back(std::move(n));
  return static_cast<i32>(nodes_.size()) - 1;
}

i32 Graph::add_input(i64 c, i64 h, i64 w) {
  KCONV_CHECK(nodes_.empty(), "a graph has exactly one input node, first");
  KCONV_CHECK(c >= 1 && h >= 1 && w >= 1, "empty input shape");
  Node n;
  n.kind = OpKind::Input;
  n.in_c = c;
  n.in_h = h;
  n.in_w = w;
  return push(std::move(n));
}

i32 Graph::add_conv(i32 input, tensor::Tensor filters, std::string name) {
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  Node n;
  n.kind = OpKind::Conv;
  n.input = input;
  n.filters = std::move(filters);
  n.name = std::move(name);
  return push(std::move(n));
}

i32 Graph::add_bias_relu(i32 input, std::vector<float> bias,
                         std::string name) {
  KCONV_CHECK(!bias.empty(), "empty bias vector");
  Node n;
  n.kind = OpKind::BiasRelu;
  n.input = input;
  n.bias = std::move(bias);
  n.name = std::move(name);
  return push(std::move(n));
}

i32 Graph::add_max_pool(i32 input, std::string name) {
  Node n;
  n.kind = OpKind::MaxPool;
  n.input = input;
  n.name = std::move(name);
  return push(std::move(n));
}

i32 Graph::add_dense(i32 input, tensor::Matrix weights, std::string name) {
  KCONV_CHECK(weights.rows >= 1 && weights.cols >= 1, "empty dense weights");
  Node n;
  n.kind = OpKind::Dense;
  n.input = input;
  n.weights = std::move(weights);
  n.name = std::move(name);
  return push(std::move(n));
}

i32 Graph::input_node() const {
  KCONV_CHECK(!nodes_.empty() && nodes_[0].kind == OpKind::Input,
              "graph has no input node");
  return 0;
}

u32 Graph::consumer_count(i32 id) const {
  u32 count = 0;
  for (const Node& n : nodes_) {
    if (n.kind != OpKind::Input && n.input == id) ++count;
  }
  return count;
}

i32 Graph::output_node() const {
  i32 sink = -1;
  for (i32 i = 0; i < static_cast<i32>(nodes_.size()); ++i) {
    if (consumer_count(i) == 0) {
      KCONV_CHECK(sink < 0, "graph has more than one sink node");
      sink = i;
    }
  }
  KCONV_CHECK(sink >= 0, "graph has no sink node");
  return sink;
}

std::vector<Shape> Graph::shapes() const {
  std::vector<Shape> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const auto fail = [&](const std::string& why) {
      KCONV_CHECK(false, strf("node %zu (%s): %s", i, n.name.c_str(),
                              why.c_str()));
    };
    Shape in{};
    if (n.kind != OpKind::Input) in = out[static_cast<std::size_t>(n.input)];
    Shape s{};
    switch (n.kind) {
      case OpKind::Input:
        s = Shape{n.in_c, n.in_h, n.in_w};
        break;
      case OpKind::Conv: {
        if (n.filters.c() != in.c) {
          fail(strf("filters expect %lld channels, input has %lld",
                    static_cast<long long>(n.filters.c()),
                    static_cast<long long>(in.c)));
        }
        const i64 k = n.filters.h();
        s = Shape{n.filters.n(), in.h - k + 1, in.w - k + 1};
        if (s.h < 1 || s.w < 1) fail("image smaller than the filter");
        break;
      }
      case OpKind::BiasRelu:
        if (static_cast<i64>(n.bias.size()) != in.c) {
          fail(strf("bias has %zu entries for %lld channels", n.bias.size(),
                    static_cast<long long>(in.c)));
        }
        s = in;
        break;
      case OpKind::MaxPool:
        if (in.h < 2 || in.w < 2) fail("input too small to pool");
        s = Shape{in.c, in.h / 2, in.w / 2};
        break;
      case OpKind::Dense:
        if (n.weights.cols != in.elems()) {
          fail(strf("dense expects %lld features, input has %lld",
                    static_cast<long long>(n.weights.cols),
                    static_cast<long long>(in.elems())));
        }
        s = Shape{n.weights.rows, 1, 1};
        break;
    }
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Arena.

namespace {

/// Step index after which node `i`'s output is dead: the id of its last
/// consumer (the sink stays live to the end).
std::vector<i32> last_uses(const Graph& g) {
  const auto& nodes = g.nodes();
  std::vector<i32> last(nodes.size());
  for (i32 i = 0; i < static_cast<i32>(nodes.size()); ++i) {
    last[static_cast<std::size_t>(i)] = i;
  }
  for (i32 i = 0; i < static_cast<i32>(nodes.size()); ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    if (n.kind != OpKind::Input) {
      auto& l = last[static_cast<std::size_t>(n.input)];
      l = std::max(l, i);
    }
  }
  // The sink's output is the graph's result: pin it past every step.
  last[static_cast<std::size_t>(g.output_node())] =
      static_cast<i32>(nodes.size());
  return last;
}

}  // namespace

ArenaPlan plan_arena(const Graph& g) {
  const auto& nodes = g.nodes();
  const std::vector<i32> last = last_uses(g);
  ArenaPlan p;
  p.slot.assign(nodes.size(), -1);
  std::vector<bool> free_slot;  // index = slot id
  std::vector<bool> released(nodes.size(), false);
  for (i32 i = 0; i < static_cast<i32>(nodes.size()); ++i) {
    // Release slots whose owner died strictly before this step, so a node
    // never writes into the slot it is reading from.
    for (i32 p2 = 0; p2 < i; ++p2) {
      if (!released[static_cast<std::size_t>(p2)] &&
          last[static_cast<std::size_t>(p2)] < i) {
        free_slot[static_cast<std::size_t>(
            p.slot[static_cast<std::size_t>(p2)])] = true;
        released[static_cast<std::size_t>(p2)] = true;
      }
    }
    i32 chosen = -1;
    for (std::size_t s = 0; s < free_slot.size(); ++s) {
      if (free_slot[s]) {
        chosen = static_cast<i32>(s);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<i32>(free_slot.size());
      free_slot.push_back(false);
    }
    free_slot[static_cast<std::size_t>(chosen)] = false;
    p.slot[static_cast<std::size_t>(i)] = chosen;
  }
  p.num_slots = static_cast<i32>(free_slot.size());
  return p;
}

std::string validate_arena_plan(const Graph& g, const ArenaPlan& p) {
  const auto& nodes = g.nodes();
  if (p.slot.size() != nodes.size()) return "plan covers wrong node count";
  const std::vector<i32> last = last_uses(g);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (p.slot[i] < 0 || p.slot[i] >= p.num_slots) {
      return strf("node %zu has invalid slot %d", i, p.slot[i]);
    }
  }
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      if (p.slot[a] != p.slot[b]) continue;
      // b is created at step b; a is live through step last[a]. b reusing
      // the slot while a is still needed (b <= last[a]) aliases them.
      if (static_cast<i32>(b) <= last[a]) {
        return strf("nodes %zu and %zu alias slot %d while both live", a, b,
                    p.slot[a]);
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Execution.

GraphRun run_graph(sim::Device& dev, const Graph& g,
                   const tensor::Tensor& input, const GraphRunOptions& opt) {
  const auto& nodes = g.nodes();
  const std::vector<Shape> shp = g.shapes();
  const i32 in_id = g.input_node();
  const i32 out_id = g.output_node();
  KCONV_CHECK(input.n() == 1, "graphs run single-image activations");
  KCONV_CHECK((Shape{input.c(), input.h(), input.w()} ==
               shp[static_cast<std::size_t>(in_id)]),
              strf("input is %lldx%lldx%lld, graph expects %lldx%lldx%lld",
                   static_cast<long long>(input.c()),
                   static_cast<long long>(input.h()),
                   static_cast<long long>(input.w()),
                   static_cast<long long>(shp[0].c),
                   static_cast<long long>(shp[0].h),
                   static_cast<long long>(shp[0].w)));

  const ArenaPlan arena = plan_arena(g);
  KCONV_ASSERT(validate_arena_plan(g, arena).empty());
  const std::vector<i32> last = last_uses(g);

  // Fusion pairing: a conv whose single consumer is the bias+ReLU node
  // right after it absorbs that node. The adjacency requirement (j == i+1)
  // is what makes writing the fused result into j's arena slot at step i
  // safe: any previous occupant of that slot had its last consumer at or
  // before step i, so it is dead by the time the conv has executed.
  std::vector<i32> fuse_with(nodes.size(), -1);  // conv id -> bias node id
  std::vector<bool> absorbed(nodes.size(), false);
  if (opt.fuse) {
    for (i32 j = 1; j < static_cast<i32>(nodes.size()); ++j) {
      const Node& n = nodes[static_cast<std::size_t>(j)];
      if (n.kind != OpKind::BiasRelu || n.input != j - 1) continue;
      if (nodes[static_cast<std::size_t>(n.input)].kind != OpKind::Conv) {
        continue;
      }
      if (g.consumer_count(n.input) != 1) continue;
      fuse_with[static_cast<std::size_t>(n.input)] = j;
      absorbed[static_cast<std::size_t>(j)] = true;
    }
  }

  // Non-conv kernels have no replay classes: they always execute directly.
  const bool analytic_mode = opt.launch.analytic;
  sim::LaunchOptions aux = opt.launch;
  aux.analytic = false;
  aux.replay = false;
  // Fleet sharding applies to the conv launches (which declare shard-axis
  // hints); the epilogue kernels are a rounding error of the graph's work
  // and run single-device.
  aux.fleet = sim::FleetOptions{};

  GraphRun run;
  run.arena_slots = arena.num_slots;
  std::vector<tensor::Tensor> slots(static_cast<std::size_t>(arena.num_slots));
  std::vector<bool> valid(nodes.size(), false);

  // Peak-memory accounting over materialized outputs (fused convs never
  // materialize): what the arena holds vs. keeping every activation alive
  // the way the hand-sequenced examples do.
  {
    std::vector<u64> bytes(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const u64 b = static_cast<u64>(shp[i].elems()) * sizeof(float);
      // Naive = the hand-sequenced path: every activation (fused or not)
      // stays live to the end of the pass.
      run.naive_peak_bytes += b;
      if (fuse_with[i] >= 0) continue;  // fused conv never materializes
      bytes[i] = b;
      ++run.arena_tensors;
    }
    for (i32 step = 0; step < static_cast<i32>(nodes.size()); ++step) {
      u64 live = 0;
      for (i32 i = 0; i <= step; ++i) {
        if (last[static_cast<std::size_t>(i)] >= step) {
          live += bytes[static_cast<std::size_t>(i)];
        }
      }
      run.arena_peak_bytes = std::max(run.arena_peak_bytes, live);
    }
  }

  // kconv-scope (docs/MODEL.md §11): one span per executed node, re-parented
  // under the caller's scope; arena events record slot recycling as it
  // happens. All guarded — a null sink leaves the run byte-identical.
  const obs::TelemetryScope tel = opt.launch.telemetry;
  u64 node_span = 0;  // current node's span, captured by place() below
  std::vector<bool> slot_occupied(static_cast<std::size_t>(arena.num_slots),
                                  false);

  // Input tensor for node `id`'s producer; under analytic/sampled launches
  // upstream data may not exist, so a zero dummy of the right shape keeps
  // the launch sequence (and its timings) intact.
  tensor::Tensor dummy;
  const auto input_of = [&](i32 id) -> const tensor::Tensor& {
    const i32 p = nodes[static_cast<std::size_t>(id)].input;
    if (valid[static_cast<std::size_t>(p)]) {
      return slots[static_cast<std::size_t>(
          arena.slot[static_cast<std::size_t>(p)])];
    }
    const Shape s = shp[static_cast<std::size_t>(p)];
    dummy = tensor::Tensor(1, s.c, s.h, s.w);
    return dummy;
  };
  const auto place = [&](i32 id, tensor::Tensor t, bool ok) {
    const i32 slot = arena.slot[static_cast<std::size_t>(id)];
    const bool reused = slot_occupied[static_cast<std::size_t>(slot)];
    if (reused) ++run.arena_slot_reuses;
    if (tel.on()) {
      tel.sink->arena_event(
          tel.trace, node_span != 0 ? node_span : tel.parent,
          nodes[static_cast<std::size_t>(id)].name, slot, reused,
          static_cast<u64>(shp[static_cast<std::size_t>(id)].elems()) *
              sizeof(float));
    }
    slot_occupied[static_cast<std::size_t>(slot)] = true;
    slots[static_cast<std::size_t>(slot)] = std::move(t);
    valid[static_cast<std::size_t>(id)] = ok;
  };

  u32 conv_launches = 0, conv_hits = 0, conv_analytic = 0;
  for (i32 i = 0; i < static_cast<i32>(nodes.size()); ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    if (absorbed[static_cast<std::size_t>(i)]) continue;  // ran fused
    node_span = 0;
    if (tel.on() && n.kind != OpKind::Input) {
      node_span = tel.sink->begin_span(
          tel.trace, tel.parent, "graph", strf("node:%s", n.name.c_str()),
          strf("{\"kind\":\"%s\",\"fused\":%s}", op_name(n.kind),
               fuse_with[static_cast<std::size_t>(i)] >= 0 ? "true"
                                                           : "false"));
    }
    // Launch options for this node's kernels, scoped under its span.
    const auto scoped = [&](const sim::LaunchOptions& base) {
      sim::LaunchOptions lo = base;
      if (tel.on()) lo.telemetry = tel.child(node_span);
      return lo;
    };
    switch (n.kind) {
      case OpKind::Input:
        place(i, input, true);
        break;
      case OpKind::Conv: {
        const i32 j = fuse_with[static_cast<std::size_t>(i)];
        core::ConvOptions copt;
        copt.launch = scoped(opt.launch);
        if (j >= 0) {
          copt.fuse_bias_relu = nodes[static_cast<std::size_t>(j)].bias;
        }
        const bool in_ok = valid[static_cast<std::size_t>(n.input)];
        auto res = core::conv2d(dev, input_of(i), n.filters, copt);
        run.total_seconds += res.total_seconds;
        if (res.launch.fleet.enabled) {
          run.fleet_h2d_bytes += res.launch.fleet.h2d_bytes;
          run.fleet_d2h_bytes += res.launch.fleet.d2h_bytes;
          run.fleet_d2d_bytes += res.launch.fleet.d2d_bytes;
          run.fleet_transfer_seconds += res.launch.fleet.transfer_seconds;
        }
        ++conv_launches;
        if (res.launch.plan_cache_hit) ++conv_hits;
        if (res.launch.analytic) ++conv_analytic;
        run.plan_taxonomy.add(res.launch.plan_cache_status);
        for (const sim::FleetDeviceReport& d :
             res.launch.fleet.device_reports) {
          ++run.fleet_device_chunks;
          if (d.transfer_seconds > d.compute_seconds) {
            ++run.comm_bound_devices;
          }
        }
        NodeRun nr;
        nr.kind = OpKind::Conv;
        nr.name = n.name;
        nr.fused = j >= 0;
        nr.launch = res.launch;
        run.nodes.push_back(std::move(nr));
        if (j >= 0) {
          ++run.fused_pairs;
          // The unfused sequence writes the conv output to GM and the
          // bias_relu pass reads it back: 8 bytes per element eliminated.
          run.fusion_gm_bytes_eliminated +=
              8.0 * static_cast<double>(shp[static_cast<std::size_t>(i)]
                                            .elems());
          place(j, std::move(res.output), res.output_valid && in_ok);
        } else {
          place(i, std::move(res.output), res.output_valid && in_ok);
        }
        break;
      }
      case OpKind::BiasRelu: {
        const bool in_ok = valid[static_cast<std::size_t>(n.input)];
        auto res = kernels::bias_relu(dev, input_of(i), n.bias, scoped(aux));
        run.total_seconds += res.launch.timing.seconds;
        NodeRun nr;
        nr.kind = n.kind;
        nr.name = n.name;
        nr.launch = res.launch;
        run.nodes.push_back(std::move(nr));
        place(i, std::move(res.output), res.output_valid && in_ok);
        break;
      }
      case OpKind::MaxPool: {
        const bool in_ok = valid[static_cast<std::size_t>(n.input)];
        auto res = kernels::max_pool_2x2(dev, input_of(i), scoped(aux));
        run.total_seconds += res.launch.timing.seconds;
        NodeRun nr;
        nr.kind = n.kind;
        nr.name = n.name;
        nr.launch = res.launch;
        run.nodes.push_back(std::move(nr));
        place(i, std::move(res.output), res.output_valid && in_ok);
        break;
      }
      case OpKind::Dense: {
        const bool in_ok = valid[static_cast<std::size_t>(n.input)];
        const tensor::Tensor& x = input_of(i);
        tensor::Matrix xin(n.weights.cols, 1);
        for (i64 f = 0; f < n.weights.cols; ++f) {
          xin.data[static_cast<std::size_t>(f)] =
              x.flat()[static_cast<std::size_t>(f)];
        }
        auto fc = kernels::gemm(dev, n.weights, xin,
                                kernels::gemm_magma_mod(), scoped(aux));
        run.total_seconds += fc.launch.timing.seconds;
        NodeRun nr;
        nr.kind = n.kind;
        nr.name = n.name;
        nr.launch = fc.launch;
        run.nodes.push_back(std::move(nr));
        tensor::Tensor logits(1, n.weights.rows, 1, 1);
        for (i64 r = 0; r < n.weights.rows; ++r) {
          logits.at(0, r, 0, 0) = fc.c.data[static_cast<std::size_t>(r)];
        }
        place(i, std::move(logits), fc.output_valid && in_ok);
        break;
      }
    }
    if (node_span != 0) tel.sink->end_span(node_span);
  }

  run.conv_launches = conv_launches;
  run.warm = conv_launches > 0 && conv_hits == conv_launches;
  run.analytic = analytic_mode && conv_launches > 0 &&
                 conv_analytic == conv_launches;
  run.output_valid = valid[static_cast<std::size_t>(out_id)];
  if (run.output_valid || analytic_mode) {
    run.output = std::move(
        slots[static_cast<std::size_t>(
            arena.slot[static_cast<std::size_t>(out_id)])]);
  }
  return run;
}

}  // namespace kconv::serve
