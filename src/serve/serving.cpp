#include "src/serve/serving.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/strutil.hpp"
#include "src/sim/sim.hpp"

namespace kconv::serve {

ServingDriver::ServingDriver(ServeOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {}

u64 ServingDriver::enqueue(const Network& net, tensor::Tensor input) {
  std::lock_guard<std::mutex> lock(mu_);
  Pending p;
  const u64 id = next_id_++;
  p.id = id;
  p.net = &net;
  p.input = std::move(input);
  if (opt_.telemetry != nullptr) {
    // Trace = request id + 1: trace 0 is the driver's batch lane. The
    // request span stays open until the reply is complete; the queued span
    // closes when a worker picks the request up, making queue wait a
    // first-class interval in the unified trace.
    const u64 trace = id + 1;
    p.request_span = opt_.telemetry->begin_span(
        trace, 0, "serving", "request",
        strf("{\"id\":%llu,\"network\":\"%s\","
             "\"shape\":\"%lldx%lldx%lld\"}",
             static_cast<unsigned long long>(id), net.name.c_str(),
             static_cast<long long>(p.input.c()),
             static_cast<long long>(p.input.h()),
             static_cast<long long>(p.input.w())));
    p.queued_span = opt_.telemetry->begin_span(trace, p.request_span,
                                               "serving", "queued");
  }
  queue_.push_back(std::move(p));
  stats_.max_queue_depth =
      std::max<u64>(stats_.max_queue_depth, queue_.size());
  return id;
}

ServeStats ServingDriver::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ServeReply> ServingDriver::drain() {
  std::vector<Pending> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work.swap(queue_);
  }
  if (work.empty()) return {};

  // Batch by (network, input shape) in first-appearance order; requests
  // keep their queue order inside a batch.
  struct Batch {
    const Network* net;
    Shape shape;
    std::vector<std::size_t> members;  // indices into `work`
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Shape s{work[i].input.c(), work[i].input.h(), work[i].input.w()};
    Batch* home = nullptr;
    for (Batch& b : batches) {
      if (b.net == work[i].net && b.shape == s) {
        home = &b;
        break;
      }
    }
    if (home == nullptr) {
      batches.push_back(Batch{work[i].net, s, {}});
      home = &batches.back();
    }
    home->members.push_back(i);
  }

  GraphRunOptions gopt;
  gopt.fuse = opt_.fuse;
  gopt.launch = opt_.launch;
  gopt.launch.plan_cache = opt_.plan_cache;
  if (opt_.plan_cache != nullptr) gopt.launch.replay = true;
  gopt.launch.analytic = opt_.analytic;

  obs::TelemetrySink* const sink = opt_.telemetry;
  std::vector<ServeReply> replies(work.size());
  std::vector<u64> fused(work.size(), 0);
  std::vector<double> gm_eliminated(work.size(), 0.0);
  std::vector<GraphRun> fleet_runs(work.size());
  ServeStats delta;
  delta.max_inflight_batches = batches.size();
  for (const Batch& batch : batches) {
    ++delta.batches;
    u64 batch_span = 0;
    if (sink != nullptr) {
      batch_span = sink->begin_span(
          0, 0, "serving",
          strf("batch %s %lldx%lldx%lld", batch.net->name.c_str(),
               static_cast<long long>(batch.shape.c),
               static_cast<long long>(batch.shape.h),
               static_cast<long long>(batch.shape.w)),
          strf("{\"requests\":%zu}", batch.members.size()));
    }
    // One simulated device per request: requests are independent and the
    // simulator is deterministic, so results do not depend on which worker
    // (or how many workers) ran them.
    pool_.parallel_for(
        0, batch.members.size(), 1, [&](u64 begin, u64 end, u32) {
          for (u64 m = begin; m < end; ++m) {
            const Pending& p = work[batch.members[m]];
            u64 exec_span = 0;
            GraphRunOptions g = gopt;
            if (sink != nullptr) {
              sink->end_span(p.queued_span);
              exec_span = sink->begin_span(p.id + 1, p.request_span,
                                           "serving", "execute");
              g.launch.telemetry =
                  obs::TelemetryScope{sink, p.id + 1, exec_span};
            }
            const auto t0 = std::chrono::steady_clock::now();
            sim::Device dev(sim::kepler_k40m());
            GraphRun r = run_graph(dev, p.net->graph, p.input, g);
            const auto t1 = std::chrono::steady_clock::now();
            ServeReply& reply = replies[batch.members[m]];
            reply.id = p.id;
            reply.ok = r.output_valid;
            reply.warm = r.warm;
            reply.analytic = r.analytic;
            reply.sim_seconds = r.total_seconds;
            reply.host_seconds =
                std::chrono::duration<double>(t1 - t0).count();
            reply.output = std::move(r.output);
            fused[batch.members[m]] = r.fused_pairs;
            gm_eliminated[batch.members[m]] = r.fusion_gm_bytes_eliminated;
            GraphRun& fr = fleet_runs[batch.members[m]];
            fr.fleet_h2d_bytes = r.fleet_h2d_bytes;
            fr.fleet_d2h_bytes = r.fleet_d2h_bytes;
            fr.fleet_d2d_bytes = r.fleet_d2d_bytes;
            fr.fleet_transfer_seconds = r.fleet_transfer_seconds;
            fr.conv_launches = r.conv_launches;
            fr.plan_taxonomy = r.plan_taxonomy;
            fr.fleet_device_chunks = r.fleet_device_chunks;
            fr.comm_bound_devices = r.comm_bound_devices;
            fr.arena_slot_reuses = r.arena_slot_reuses;
            fr.arena_peak_bytes = r.arena_peak_bytes;
            if (sink != nullptr) {
              sink->end_span(exec_span);
              sink->end_span(p.request_span);
            }
          }
        });
    if (sink != nullptr) sink->end_span(batch_span);
  }
  // Request-index order: every merge below (stats and the telemetry
  // registry alike) is deterministic across worker-thread counts (§5a).
  for (std::size_t i = 0; i < work.size(); ++i) {
    ++delta.processed;
    const char* mode;
    if (replies[i].analytic) {
      ++delta.analytic;
      mode = "warm_analytic";
    } else if (replies[i].warm) {
      ++delta.warm;
      mode = "warm_replay";
    } else {
      ++delta.cold;
      mode = "cold";
    }
    delta.fused_pairs += fused[i];
    delta.fusion_gm_bytes_eliminated += gm_eliminated[i];
    delta.fleet_h2d_bytes += fleet_runs[i].fleet_h2d_bytes;
    delta.fleet_d2h_bytes += fleet_runs[i].fleet_d2h_bytes;
    delta.fleet_d2d_bytes += fleet_runs[i].fleet_d2d_bytes;
    delta.fleet_transfer_seconds += fleet_runs[i].fleet_transfer_seconds;
    delta.conv_launches += fleet_runs[i].conv_launches;
    delta.plan_taxonomy += fleet_runs[i].plan_taxonomy;
    delta.fleet_device_chunks += fleet_runs[i].fleet_device_chunks;
    delta.comm_bound_devices += fleet_runs[i].comm_bound_devices;
    delta.arena_slot_reuses += fleet_runs[i].arena_slot_reuses;
    delta.arena_peak_bytes =
        std::max(delta.arena_peak_bytes, fleet_runs[i].arena_peak_bytes);
    delta.latency.add(replies[i].host_seconds);
    delta.sim_latency.add(replies[i].sim_seconds);
    if (sink != nullptr) {
      obs::MetricsKey key;
      key.network = work[i].net->name;
      key.shape = strf("%lldx%lldx%lld",
                       static_cast<long long>(work[i].input.c()),
                       static_cast<long long>(work[i].input.h()),
                       static_cast<long long>(work[i].input.w()));
      key.mode = mode;
      obs::Metrics m;
      m.count("requests");
      m.count("conv_launches", fleet_runs[i].conv_launches);
      m.count("fused_pairs", fused[i]);
      m.count("plan_hit", fleet_runs[i].plan_taxonomy.hit);
      m.count("plan_miss", fleet_runs[i].plan_taxonomy.miss_total());
      m.count("arena_slot_reuses", fleet_runs[i].arena_slot_reuses);
      m.count("fleet_device_chunks", fleet_runs[i].fleet_device_chunks);
      m.count("comm_bound_devices", fleet_runs[i].comm_bound_devices);
      m.gauge_max("queue_depth", static_cast<double>(work.size()));
      m.gauge_max("inflight_batches", static_cast<double>(batches.size()));
      m.gauge_max("arena_peak_bytes",
                  static_cast<double>(fleet_runs[i].arena_peak_bytes));
      m.hist("latency_s").add(replies[i].host_seconds);
      m.hist("sim_s").add(replies[i].sim_seconds);
      sink->merge_metrics(key, m);
    }
  }
  if (sink != nullptr) sink->snapshot_metrics();
  std::sort(replies.begin(), replies.end(),
            [](const ServeReply& a, const ServeReply& b) {
              return a.id < b.id;
            });
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.processed += delta.processed;
    stats_.batches += delta.batches;
    stats_.cold += delta.cold;
    stats_.warm += delta.warm;
    stats_.analytic += delta.analytic;
    stats_.fused_pairs += delta.fused_pairs;
    stats_.fusion_gm_bytes_eliminated += delta.fusion_gm_bytes_eliminated;
    stats_.fleet_h2d_bytes += delta.fleet_h2d_bytes;
    stats_.fleet_d2h_bytes += delta.fleet_d2h_bytes;
    stats_.fleet_d2d_bytes += delta.fleet_d2d_bytes;
    stats_.fleet_transfer_seconds += delta.fleet_transfer_seconds;
    stats_.conv_launches += delta.conv_launches;
    stats_.plan_taxonomy += delta.plan_taxonomy;
    stats_.fleet_device_chunks += delta.fleet_device_chunks;
    stats_.comm_bound_devices += delta.comm_bound_devices;
    stats_.arena_slot_reuses += delta.arena_slot_reuses;
    stats_.arena_peak_bytes =
        std::max(stats_.arena_peak_bytes, delta.arena_peak_bytes);
    stats_.max_inflight_batches =
        std::max(stats_.max_inflight_batches, delta.max_inflight_batches);
    stats_.latency.merge(delta.latency);
    stats_.sim_latency.merge(delta.sim_latency);
  }
  return replies;
}

}  // namespace kconv::serve
