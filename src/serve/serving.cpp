#include "src/serve/serving.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/sim/sim.hpp"

namespace kconv::serve {

ServingDriver::ServingDriver(ServeOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {}

u64 ServingDriver::enqueue(const Network& net, tensor::Tensor input) {
  std::lock_guard<std::mutex> lock(mu_);
  Pending p;
  const u64 id = next_id_++;
  p.id = id;
  p.net = &net;
  p.input = std::move(input);
  queue_.push_back(std::move(p));
  return id;
}

ServeStats ServingDriver::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ServeReply> ServingDriver::drain() {
  std::vector<Pending> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work.swap(queue_);
  }
  if (work.empty()) return {};

  // Batch by (network, input shape) in first-appearance order; requests
  // keep their queue order inside a batch.
  struct Batch {
    const Network* net;
    Shape shape;
    std::vector<std::size_t> members;  // indices into `work`
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Shape s{work[i].input.c(), work[i].input.h(), work[i].input.w()};
    Batch* home = nullptr;
    for (Batch& b : batches) {
      if (b.net == work[i].net && b.shape == s) {
        home = &b;
        break;
      }
    }
    if (home == nullptr) {
      batches.push_back(Batch{work[i].net, s, {}});
      home = &batches.back();
    }
    home->members.push_back(i);
  }

  GraphRunOptions gopt;
  gopt.fuse = opt_.fuse;
  gopt.launch = opt_.launch;
  gopt.launch.plan_cache = opt_.plan_cache;
  if (opt_.plan_cache != nullptr) gopt.launch.replay = true;
  gopt.launch.analytic = opt_.analytic;

  std::vector<ServeReply> replies(work.size());
  std::vector<u64> fused(work.size(), 0);
  std::vector<double> gm_eliminated(work.size(), 0.0);
  std::vector<GraphRun> fleet_runs(work.size());
  ServeStats delta;
  for (const Batch& batch : batches) {
    ++delta.batches;
    // One simulated device per request: requests are independent and the
    // simulator is deterministic, so results do not depend on which worker
    // (or how many workers) ran them.
    pool_.parallel_for(
        0, batch.members.size(), 1, [&](u64 begin, u64 end, u32) {
          for (u64 m = begin; m < end; ++m) {
            const Pending& p = work[batch.members[m]];
            const auto t0 = std::chrono::steady_clock::now();
            sim::Device dev(sim::kepler_k40m());
            GraphRun r = run_graph(dev, p.net->graph, p.input, gopt);
            const auto t1 = std::chrono::steady_clock::now();
            ServeReply& reply = replies[batch.members[m]];
            reply.id = p.id;
            reply.ok = r.output_valid;
            reply.warm = r.warm;
            reply.analytic = r.analytic;
            reply.sim_seconds = r.total_seconds;
            reply.host_seconds =
                std::chrono::duration<double>(t1 - t0).count();
            reply.output = std::move(r.output);
            fused[batch.members[m]] = r.fused_pairs;
            gm_eliminated[batch.members[m]] = r.fusion_gm_bytes_eliminated;
            GraphRun& fr = fleet_runs[batch.members[m]];
            fr.fleet_h2d_bytes = r.fleet_h2d_bytes;
            fr.fleet_d2h_bytes = r.fleet_d2h_bytes;
            fr.fleet_d2d_bytes = r.fleet_d2d_bytes;
            fr.fleet_transfer_seconds = r.fleet_transfer_seconds;
          }
        });
  }
  for (std::size_t i = 0; i < work.size(); ++i) {
    ++delta.processed;
    if (replies[i].analytic) {
      ++delta.analytic;
    } else if (replies[i].warm) {
      ++delta.warm;
    } else {
      ++delta.cold;
    }
    delta.fused_pairs += fused[i];
    delta.fusion_gm_bytes_eliminated += gm_eliminated[i];
    delta.fleet_h2d_bytes += fleet_runs[i].fleet_h2d_bytes;
    delta.fleet_d2h_bytes += fleet_runs[i].fleet_d2h_bytes;
    delta.fleet_d2d_bytes += fleet_runs[i].fleet_d2d_bytes;
    delta.fleet_transfer_seconds += fleet_runs[i].fleet_transfer_seconds;
  }
  std::sort(replies.begin(), replies.end(),
            [](const ServeReply& a, const ServeReply& b) {
              return a.id < b.id;
            });
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.processed += delta.processed;
    stats_.batches += delta.batches;
    stats_.cold += delta.cold;
    stats_.warm += delta.warm;
    stats_.analytic += delta.analytic;
    stats_.fused_pairs += delta.fused_pairs;
    stats_.fusion_gm_bytes_eliminated += delta.fusion_gm_bytes_eliminated;
    stats_.fleet_h2d_bytes += delta.fleet_h2d_bytes;
    stats_.fleet_d2h_bytes += delta.fleet_d2h_bytes;
    stats_.fleet_d2d_bytes += delta.fleet_d2d_bytes;
    stats_.fleet_transfer_seconds += delta.fleet_transfer_seconds;
  }
  return replies;
}

}  // namespace kconv::serve
