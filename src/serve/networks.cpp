#include "src/serve/networks.hpp"

#include <utility>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/strutil.hpp"

namespace kconv::serve {

namespace {

std::vector<float> random_bias(Rng& rng, i64 n) {
  std::vector<float> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-0.1f, 0.1f);
  return b;
}

tensor::Matrix random_dense(Rng& rng, i64 rows, i64 cols) {
  tensor::Matrix m(rows, cols);
  for (auto& v : m.data) v = rng.uniform(-0.1f, 0.1f);
  return m;
}

/// conv(F@KxK) -> bias+ReLU appended to `g` after `at`.
i32 conv_block(Graph& g, Rng& rng, i32 at, i64 f, i64 c, i64 k,
               const char* tag) {
  tensor::Tensor w = tensor::Tensor::filters(f, c, k);
  w.fill_random(rng, -0.3f, 0.3f);
  const i32 conv = g.add_conv(at, std::move(w), strf("conv_%s", tag));
  return g.add_bias_relu(conv, random_bias(rng, f), strf("bias_%s", tag));
}

Network make_lenet(u64 seed) {
  Rng rng(seed);
  Network net;
  net.name = "lenet";
  net.input = Shape{1, 28, 28};
  Graph& g = net.graph;
  i32 x = g.add_input(1, 28, 28);
  x = conv_block(g, rng, x, 8, 1, 5, "1");   // special case (C = 1)
  x = g.add_max_pool(x, "pool_1");
  x = conv_block(g, rng, x, 16, 8, 5, "2");  // general case
  x = g.add_max_pool(x, "pool_2");
  g.add_dense(x, random_dense(rng, 10, 16 * 4 * 4), "fc");
  return net;
}

Network make_lenet_wide(u64 seed) {
  Rng rng(seed);
  Network net;
  net.name = "lenet-wide";
  net.input = Shape{1, 36, 36};
  Graph& g = net.graph;
  i32 x = g.add_input(1, 36, 36);
  x = conv_block(g, rng, x, 48, 1, 5, "1");   // 36 -> 32, special case
  x = g.add_max_pool(x, "pool_1");            // 32 -> 16
  x = conv_block(g, rng, x, 96, 48, 5, "2");  // 16 -> 12, general case
  x = g.add_max_pool(x, "pool_2");            // 12 -> 6
  // An extra pool keeps the FC layer small: dense/pool/bias have no replay
  // hooks, so their cost is the floor under every warm serving mode.
  x = g.add_max_pool(x, "pool_3");            // 6 -> 3
  g.add_dense(x, random_dense(rng, 10, 96 * 3 * 3), "fc");
  return net;
}

Network make_vgg_tiny(u64 seed) {
  Rng rng(seed);
  Network net;
  net.name = "vgg-tiny";
  net.input = Shape{1, 32, 32};
  Graph& g = net.graph;
  i32 x = g.add_input(1, 32, 32);
  x = conv_block(g, rng, x, 8, 1, 3, "1");   // 32 -> 30, special case
  x = g.add_max_pool(x, "pool_1");           // 30 -> 15
  x = conv_block(g, rng, x, 16, 8, 3, "2");  // 15 -> 13, general case
  x = g.add_max_pool(x, "pool_2");           // 13 -> 6
  g.add_dense(x, random_dense(rng, 10, 16 * 6 * 6), "fc");
  return net;
}

}  // namespace

std::vector<std::string> network_names() {
  return {"lenet", "lenet-wide", "vgg-tiny"};
}

Network make_network(std::string_view name, u64 seed) {
  if (name == "lenet") return make_lenet(seed);
  if (name == "lenet-wide") return make_lenet_wide(seed);
  if (name == "vgg-tiny") return make_vgg_tiny(seed);
  const std::string n(name);
  KCONV_CHECK(false,
              strf("unknown network '%s' (known: lenet, lenet-wide, "
                   "vgg-tiny)",
                   n.c_str()));
  return {};
}

tensor::Tensor make_network_input(const Network& net, u64 salt) {
  Rng rng(0xC0FFEEull ^ (salt * 0x9E3779B97F4A7C15ull));
  tensor::Tensor t(1, net.input.c, net.input.h, net.input.w);
  for (auto& v : t.flat()) v = rng.uniform(0.0f, 1.0f);
  return t;
}

}  // namespace kconv::serve
