// Named, deterministic network definitions for serving and benchmarks.
//
// Weights are pseudo-random from a fixed seed (these demonstrate the
// serving pipeline, not trained models), so two processes that build the
// same network name get bit-identical graphs — which is what lets a shared
// plan cache serve both, and lets tests compare outputs across processes
// and thread counts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/serve/graph.hpp"

namespace kconv::serve {

struct Network {
  std::string name;
  Graph graph;
  Shape input;  ///< expected (C, H, W) of requests
};

/// Names understood by make_network().
std::vector<std::string> network_names();

/// Builds a named network:
///  - "lenet":      28x28x1 -> conv 8@5x5 (special case) -> bias+ReLU ->
///                  pool -> conv 16@5x5 (general case) -> bias+ReLU ->
///                  pool -> dense 10
///  - "lenet-wide": 36x36x1, the same chain at 48/96 channels with an extra
///                  pool before the FC layer — conv-dominated, the regime
///                  where the warm/analytic serving fast paths pay off (the
///                  toy networks are bound by the aux layers, which have no
///                  replay hooks)
///  - "vgg-tiny":   32x32x1 -> conv 8@3x3 -> bias+ReLU -> pool
///                  -> conv 16@3x3 -> bias+ReLU -> pool -> dense 10
/// Throws kconv::Error for unknown names (kconv_cli maps that to its
/// bad-config exit code).
Network make_network(std::string_view name, u64 seed = 1234);

/// A deterministic synthetic input for `net` derived from `salt`.
tensor::Tensor make_network_input(const Network& net, u64 salt = 0);

}  // namespace kconv::serve
