#include "src/kernels/general_conv.hpp"

#include <algorithm>
#include <optional>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

/// Capacity of the per-thread staging registers (validated at config time).
constexpr i64 kMaxImgUnits = 16;
constexpr i64 kMaxFltScalars = 64;

template <int N>
class GeneralKernel {
 public:
  PlanesView in;   // (C, Hi, Wi)
  PlanesView out;  // (F, Ho, Wo)
  sim::BufferView<float> filt;  // F*C*K*K, filter-major (f, c, ky, kx)
  i64 K = 0, C = 0, F = 0, Ho = 0, Wo = 0;
  i64 W = 0, H = 0, FTB = 0, WT = 0, FT = 0, CSH = 0;
  i64 TX = 0, TY = 0, nbx = 0;
  i64 rows_halo = 0, cols_halo = 0;
  i64 stride_img = 0, stride_flt = 0;
  u32 img_off = 0, flt_off = 0;
  bool prefetch = true;
  sim::BufferView<float> bias;  // F scalars; read only when fused
  bool fused = false;           // write-back applies max(0, acc + bias[f])

  /// Block equivalence class for trace replay (docs/MODEL.md §5b). Control
  /// flow and every predicate depend only on whether the spatial tile sits
  /// on the right edge and/or the bottom edge of the output: interior tiles
  /// have provably always-true bounds checks (Hi = Ho+K-1, and a non-last
  /// tile ends at least K-1 pixels before the image edge), while each edge
  /// flavor corresponds to exactly one sx (or sy) value, making its
  /// predication mask a constant of the class. The filter-group coordinate
  /// b.x shifts addresses only.
  u64 replay_class(sim::Dim3 b) const {
    const i64 sx = b.y % nbx;
    const i64 sy = b.y / nbx;
    const i64 nby = ceil_div(Ho, H);
    return static_cast<u64>((sx == nbx - 1 ? 1 : 0) |
                            (sy == nby - 1 ? 2 : 0));
  }

  /// Per-block buffer anchors for coroutine-free functional replay
  /// (docs/MODEL.md §5b). Every address the kernel issues is affine in the
  /// block coordinates with these anchors: image accesses are relative to
  /// the tile's top-left input pixel, output accesses to the tile's first
  /// output pixel of the block's first filter, and filter accesses to the
  /// filter group's first scalar.
  void replay_origins(sim::Dim3 b, sim::ReplayOrigins& o) const {
    const i64 sx = static_cast<i64>(b.y) % nbx;
    const i64 sy = static_cast<i64>(b.y) / nbx;
    const i64 fblk = b.x;
    o.add(in.buf, in.idx(0, sy * H, sx * W));
    o.add(out.buf, out.idx(fblk * FTB, sy * H, sx * W));
    o.add(filt, fblk * FTB * C * K * K);
    if (fused) o.add(bias, fblk * FTB);
  }

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<float, N>;
    const i64 tx = t.thread_idx.x;
    const i64 ty = t.thread_idx.y;
    const i64 tid = tx + TX * ty;
    const i64 nthreads = TX * TY;
    const i64 fblk = t.block_idx.x;            // filter group
    const i64 sx = t.block_idx.y % nbx;        // spatial block column
    const i64 sy = t.block_idx.y / nbx;        // spatial block row
    const i64 KK = K * K;
    const i64 Hi = in.h, Wi = in.w;

    auto sh_img = t.shared<float>(img_off, CSH * rows_halo * stride_img);
    auto sh_flt = t.shared<float>(flt_off, CSH * KK * stride_flt);

    // Work splits for the cooperative staging loops.
    const i64 units_per_row = ceil_div(cols_halo, N);
    const i64 total_img_units = CSH * rows_halo * units_per_row;
    const i64 total_flt = CSH * KK * FTB;
    // Padded trip counts: every lane runs the same number of iterations
    // (inactive iterations are predicated off) so warps never drift.
    const i64 img_iters = ceil_div(total_img_units, nthreads);
    const i64 flt_iters = ceil_div(total_flt, nthreads);

    // This thread's outputs: WT contiguous pixels of one tile row.
    const i64 orow_local = (ty * WT) / W;
    const i64 ocol_local = (ty * WT) % W;

    // Algorithm 2, line 1: the register working set.
    float acc[kGeneralMaxFT][kGeneralMaxWT] = {};
    float rimg[kGeneralMaxWT + kGeneralMaxK - 1 + 4] = {};
    float rflt[kGeneralMaxFT] = {};
    VecN pf_img[kMaxImgUnits] = {};
    bool pf_img_ok[kMaxImgUnits] = {};
    float pf_flt[kMaxFltScalars] = {};

    // Lines 4-5: stage channels [0, CSH) straight into shared memory. This
    // initial fill is the one unavoidable load->store dependent phase.
    // kconv-prof scopes re-label accesses only; issue order is untouched.
    for (i64 it = 0; it < img_iters; ++it) {
      const i64 u = tid + it * nthreads;
      const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
      const i64 rem = u % (rows_halo * units_per_row);
      const i64 ry = rem / units_per_row;
      const i64 cu = rem % units_per_row;
      const i64 iy = sy * H + ry;
      const i64 ix = sx * W + cu * N;
      const bool ok = u < total_img_units && iy < Hi && ix < Wi;
      VecN v{};
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v = co_await t.template ld_global_if<VecN>(
            ok, in.buf, ok ? in.idx(ci, iy, ix) : 0);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(
            ok, sh_img, (ci * rows_halo + ry) * stride_img + cu * N, v);
      }
    }
    for (i64 it = 0; it < flt_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const bool ok = e < total_flt;
      const i64 f = ok ? e / (CSH * KK) : 0;
      const i64 rem = ok ? e % (CSH * KK) : 0;
      const i64 ci = rem / KK;
      const i64 kk = rem % KK;
      float v = 0.0f;
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v = co_await t.ld_global_if(
            ok, filt, ((fblk * FTB + f) * C + ci) * KK + kk);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(ok, sh_flt, (ci * KK + kk) * stride_flt + f,
                                v);
      }
    }
    co_await t.sync();  // line 6

    // Line 7: accumulate over all channels, CSH at a time.
    for (i64 c0 = 0; c0 < C; c0 += CSH) {
      const bool has_next = c0 + CSH < C;

      // Lines 10-15: K rows x K rounds per staged channel. One rImg row of
      // WT+K-1 pixels feeds K rounds — the SM-traffic reduction of §4.2.
      // The SM reads feeding registers here belong to the compute phase:
      // their per-fma ratio is exactly what the §4.2 bound constrains.
      {
        sim::ProfilePhase phase(t, profile::Phase::Compute);
        for (i64 i = 0; i < CSH; ++i) {
          for (i64 j = 0; j < K; ++j) {
            const i64 row_base =
                (i * rows_halo + orow_local + j) * stride_img + ocol_local;
            for (i64 u = 0; u * N < WT + K - 1; ++u) {
              VecN v = co_await t.template ld_shared<VecN>(sh_img,
                                                           row_base + u * N);
              for (int jj = 0; jj < N; ++jj) rimg[u * N + jj] = v[jj];
            }
            for (i64 kx = 0; kx < K; ++kx) {
              const i64 flt_base = (i * KK + j * K + kx) * stride_flt;
              for (i64 u = 0; u < FT / N; ++u) {
                VecN v = co_await t.template ld_shared<VecN>(
                    sh_flt, flt_base + (tx + u * TX) * N);
                for (int jj = 0; jj < N; ++jj) rflt[u * N + jj] = v[jj];
              }
              for (i64 s = 0; s < FT; ++s) {
                for (i64 wu = 0; wu * N < WT; ++wu) {
                  VecN xs, av;
                  for (int jj = 0; jj < N; ++jj) {
                    xs[jj] = rimg[kx + wu * N + jj];
                    av[jj] = acc[s][wu * N + jj];
                  }
                  av = t.fma(xs, rflt[s], av);
                  for (int jj = 0; jj < N; ++jj)
                    acc[s][wu * N + jj] = av[jj];
                }
              }
            }
          }
        }
      }
      // Lines 8-9: prefetch the next CSH channels into registers. The paper
      // issues these before the compute loop to overlap their latency; the
      // simulator's pipe-max timing captures that overlap regardless of
      // issue order, so they run after the (uniform) compute to keep warp
      // lanes aligned — same modeled cost, no spurious divergence.
      if (prefetch && has_next) {
        sim::ProfilePhase phase(t, profile::Phase::Prefetch);
        for (i64 it = 0; it < img_iters; ++it) {
          const i64 u = tid + it * nthreads;
          const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
          const i64 rem = u % (rows_halo * units_per_row);
          const i64 ry = rem / units_per_row;
          const i64 cu = rem % units_per_row;
          const i64 iy = sy * H + ry;
          const i64 ix = sx * W + cu * N;
          pf_img_ok[it] = u < total_img_units && iy < Hi && ix < Wi;
          pf_img[it] = co_await t.template ld_global_if<VecN>(
              pf_img_ok[it], in.buf,
              pf_img_ok[it] ? in.idx(c0 + CSH + ci, iy, ix) : 0);
        }
        for (i64 it = 0; it < flt_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const bool ok = e < total_flt;
          const i64 f = ok ? e / (CSH * KK) : 0;
          const i64 rem = ok ? e % (CSH * KK) : 0;
          const i64 ci = rem / KK;
          const i64 kk = rem % KK;
          pf_flt[it] = co_await t.ld_global_if(
              ok, filt, ((fblk * FTB + f) * C + c0 + CSH + ci) * KK + kk);
        }
      }

      co_await t.sync();  // line 16

      // Lines 17-18: publish the next channels to SM (from registers when
      // prefetching, straight from GM otherwise — ablation A1).
      if (has_next) {
        if (prefetch) {
          sim::ProfilePhase phase(t, profile::Phase::SmemStage);
          for (i64 it = 0; it < img_iters; ++it) {
            const i64 u = tid + it * nthreads;
            const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
            const i64 rem = u % (rows_halo * units_per_row);
            const i64 ry = rem / units_per_row;
            const i64 cu = rem % units_per_row;
            co_await t.st_shared_if(
                pf_img_ok[it], sh_img,
                (ci * rows_halo + ry) * stride_img + cu * N, pf_img[it]);
          }
          for (i64 it = 0; it < flt_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const bool ok = e < total_flt;
            const i64 f = ok ? e / (CSH * KK) : 0;
            const i64 rem = ok ? e % (CSH * KK) : 0;
            const i64 ci = rem / KK;
            const i64 kk = rem % KK;
            co_await t.st_shared_if(
                ok, sh_flt, (ci * KK + kk) * stride_flt + f, pf_flt[it]);
          }
        } else {
          for (i64 it = 0; it < img_iters; ++it) {
            const i64 u = tid + it * nthreads;
            const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
            const i64 rem = u % (rows_halo * units_per_row);
            const i64 ry = rem / units_per_row;
            const i64 cu = rem % units_per_row;
            const i64 iy = sy * H + ry;
            const i64 ix = sx * W + cu * N;
            const bool ok = u < total_img_units && iy < Hi && ix < Wi;
            VecN v{};
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              v = co_await t.template ld_global_if<VecN>(
                  ok, in.buf, ok ? in.idx(c0 + CSH + ci, iy, ix) : 0);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(
                  ok, sh_img, (ci * rows_halo + ry) * stride_img + cu * N,
                  v);
            }
          }
          for (i64 it = 0; it < flt_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const bool ok = e < total_flt;
            const i64 f = ok ? e / (CSH * KK) : 0;
            const i64 rem = ok ? e % (CSH * KK) : 0;
            const i64 ci = rem / KK;
            const i64 kk = rem % KK;
            float v = 0.0f;
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              v = co_await t.ld_global_if(
                  ok, filt,
                  ((fblk * FTB + f) * C + c0 + CSH + ci) * KK + kk);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(
                  ok, sh_flt, (ci * KK + kk) * stride_flt + f, v);
            }
          }
        }
      }
      co_await t.sync();  // line 19
    }

    // Line 20: write the accumulators back. Contiguous threads in X write
    // different output planes — uncoalesced by design; the paper measured
    // this phase as negligible and so left it unbuffered.
    const i64 orow = sy * H + orow_local;
    sim::ProfilePhase phase(t, profile::Phase::Writeback);
    for (i64 s = 0; s < FT; ++s) {
      const i64 gf = fblk * FTB + (tx + (s / N) * TX) * N + (s % N);
      // gf < (fblk+1)*FTB <= F always, so the fused bias load needs no
      // predicate; `fused` is launch-uniform, so lanes never diverge here.
      float bv = 0.0f;
      if (fused) bv = co_await t.ld_global(bias, gf);
      for (i64 wu = 0; wu * N < WT; ++wu) {
        const i64 ocol = sx * W + ocol_local + wu * N;
        const bool ok = orow < Ho && ocol < Wo;
        VecN v;
        for (int jj = 0; jj < N; ++jj) v[jj] = acc[s][wu * N + jj];
        if (fused) v = t.bias_relu(v, bv);
        co_await t.st_global_if(ok, out.buf,
                                ok ? out.idx(gf, orow, ocol) : 0, v);
      }
    }
  }
};

/// Everything general_conv derives from (arch, shapes, cfg) before it can
/// launch: thread-block geometry, staging splits, shared-memory strides and
/// the LaunchConfig. Computed once, shared by the legality probe and the
/// runner so they can never disagree.
struct GeneralLaunchPlan {
  i64 n = 0;  // vector width (W_SMB / W_CD when matched)
  i64 Ho = 0, Wo = 0;
  i64 TX = 0, TY = 0, nbx = 0;
  i64 rows_halo = 0, cols_halo = 0;
  i64 stride_img = 0, stride_flt = 0;
  i64 img_iters = 0, flt_scalars = 0;
  u32 img_off = 0, flt_off = 0;
  sim::LaunchConfig lc;
};

/// Fills `p` for the given problem; returns "" when legal, otherwise the
/// first violated constraint (the message general_conv throws with).
std::string plan_general(const sim::Arch& arch, i64 K, i64 C, i64 F, i64 Hi,
                         i64 Wi, const GeneralConvConfig& cfg,
                         GeneralLaunchPlan& p) {
  if (K < 1 || K > kGeneralMaxK) {
    return strf("filter size %lld outside supported range [1, %lld]",
                static_cast<long long>(K),
                static_cast<long long>(kGeneralMaxK));
  }
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);
  if (n != 1 && n != 2 && n != 4) {
    return strf("unsupported vector width %lld", static_cast<long long>(n));
  }
  if (cfg.ftb < 1 || F % cfg.ftb != 0) {
    return strf("F=%lld must be a multiple of FTB=%lld",
                static_cast<long long>(F), static_cast<long long>(cfg.ftb));
  }
  if (cfg.csh < 1 || C % cfg.csh != 0) {
    return strf("C=%lld must be a multiple of CSH=%lld",
                static_cast<long long>(C), static_cast<long long>(cfg.csh));
  }
  if (cfg.ft < 1 || cfg.ftb % cfg.ft != 0) {
    return "FTB must be a multiple of FT";
  }
  if (cfg.wt < 1 || cfg.wt > kGeneralMaxWT || cfg.ft > kGeneralMaxFT) {
    return "WT/FT exceed the kernel's register capacity";
  }
  if (cfg.block_w % cfg.wt != 0) {
    return "block_w must be a multiple of WT (threads tile whole rows)";
  }
  if ((cfg.block_w * cfg.block_h) % cfg.wt != 0) {
    return "block area must be a multiple of WT";
  }
  if (cfg.wt % n != 0 || cfg.ft % n != 0 || cfg.ftb % n != 0 ||
      cfg.block_w % n != 0) {
    return "WT, FT, FTB and block_w must be multiples of the vector width";
  }
  if (cfg.block_w % 4 != 0) return "block_w must be a multiple of 4";

  p.n = n;
  p.Ho = tensor::conv_out_extent(Hi, K, 0);
  p.Wo = tensor::conv_out_extent(Wi, K, 0);
  if (p.Ho < 1 || p.Wo < 1) return "image smaller than the filter";
  p.TX = cfg.ftb / cfg.ft;
  p.TY = cfg.block_w * cfg.block_h / cfg.wt;
  p.nbx = ceil_div(p.Wo, cfg.block_w);
  p.rows_halo = cfg.block_h + K - 1;
  p.cols_halo = cfg.block_w + K - 1;

  const i64 nthreads = p.TX * p.TY;
  p.img_iters =
      ceil_div(cfg.csh * p.rows_halo * ceil_div(p.cols_halo, n), nthreads);
  p.flt_scalars = ceil_div(cfg.csh * K * K * cfg.ftb, nthreads);
  if (p.img_iters > kMaxImgUnits || p.flt_scalars > kMaxFltScalars) {
    return strf("staging work per thread too large (%lld image units, "
                "%lld filter values); use more threads or smaller CSH",
                static_cast<long long>(p.img_iters),
                static_cast<long long>(p.flt_scalars));
  }

  sim::SharedLayout smem;
  p.stride_img = round_up(p.cols_halo + n, 4);
  // One bank word of padding keeps the transposing filter stores
  // conflict-free (the paper's Fig. 6 gray box).
  const i64 pad = cfg.pad_filters ? arch.smem_bank_bytes / sizeof(float) : 0;
  p.stride_flt = cfg.ftb + pad;
  p.img_off = smem.alloc<float>(cfg.csh * p.rows_halo * p.stride_img);
  p.flt_off = smem.alloc<float>(cfg.csh * K * K * p.stride_flt);

  p.lc.grid = sim::Dim3{static_cast<u32>(F / cfg.ftb),
                        static_cast<u32>(p.nbx * ceil_div(p.Ho, cfg.block_h)),
                        1};
  p.lc.block = sim::Dim3{static_cast<u32>(p.TX), static_cast<u32>(p.TY), 1};
  p.lc.shared_bytes = smem.size();
  p.lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.ft * cfg.wt + (cfg.wt + K - 1) + cfg.ft + p.img_iters * n +
          p.flt_scalars + 24,
      arch.max_regs_per_thread));
  return sim::launch_feasibility_error(arch, p.lc);
}

template <int N>
KernelRun run_general(sim::Device& dev, const tensor::Tensor& input,
                      const tensor::Tensor& filters,
                      const GeneralConvConfig& cfg,
                      const GeneralLaunchPlan& p,
                      const sim::LaunchOptions& opt,
                      std::span<const float> fuse_bias_relu) {
  const i64 K = filters.h();
  const i64 C = input.c();
  const i64 F = filters.n();
  const i64 Hi = input.h(), Wi = input.w();

  GeneralKernel<N> k;
  k.K = K;
  k.C = C;
  k.F = F;
  k.Ho = p.Ho;
  k.Wo = p.Wo;
  k.W = cfg.block_w;
  k.H = cfg.block_h;
  k.FTB = cfg.ftb;
  k.WT = cfg.wt;
  k.FT = cfg.ft;
  k.CSH = cfg.csh;
  k.TX = p.TX;
  k.TY = p.TY;
  k.nbx = p.nbx;
  k.rows_halo = p.rows_halo;
  k.cols_halo = p.cols_halo;
  k.prefetch = cfg.prefetch;
  k.stride_img = p.stride_img;
  k.stride_flt = p.stride_flt;
  k.img_off = p.img_off;
  k.flt_off = p.flt_off;

  DevicePlanes d_in(dev, C, Hi, Wi);
  d_in.upload(input);
  DevicePlanes d_out(dev, F, p.Ho, p.Wo);
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt = d_filt.view();

  // Allocated only when fused so unfused launches keep their exact historic
  // address layout (and thus timing/plan bytes).
  std::optional<decltype(dev.alloc<float>(fuse_bias_relu))> d_bias;
  if (!fuse_bias_relu.empty()) {
    d_bias.emplace(dev.alloc<float>(fuse_bias_relu));
    k.bias = d_bias->view();
    k.fused = true;
  }

  // Every parameter that shapes the access pattern is folded into the plan
  // key; the "v1" tag invalidates stored plans if the kernel body changes.
  sim::LaunchOptions lopt = opt;
  std::string canonical_key = strf(
      "general_conv|v1|n=%d|k=%lld|c=%lld|f=%lld|hi=%lld|wi=%lld|bw=%lld|"
      "bh=%lld|ftb=%lld|wt=%lld|ft=%lld|csh=%lld|pad=%d|pf=%d",
      N, static_cast<long long>(K), static_cast<long long>(C),
      static_cast<long long>(F), static_cast<long long>(Hi),
      static_cast<long long>(Wi), static_cast<long long>(cfg.block_w),
      static_cast<long long>(cfg.block_h), static_cast<long long>(cfg.ftb),
      static_cast<long long>(cfg.wt), static_cast<long long>(cfg.ft),
      static_cast<long long>(cfg.csh), cfg.pad_filters ? 1 : 0,
      cfg.prefetch ? 1 : 0);
  // Appended (not always present) so unfused keys match pre-fusion stores.
  if (k.fused) canonical_key += "|fused=br";
  if (lopt.plan_key.empty()) lopt.plan_key = canonical_key;
  // Warm-plan pre-validation (docs/MODEL.md §10): stamp the launch with the
  // kernel's xray signature so a stored plan captured under a different
  // access pattern is rejected ("stale-static-signature"), not replayed.
  // Memoized: the block-0 symbolic walk runs once per config per process.
  if (lopt.plan_cache != nullptr && lopt.plan_static_signature == 0) {
    lopt.plan_static_signature = xray::memoized_signature(
        dev.arch(), canonical_key, [&] {
          return general_conv_xray(dev.arch(), K, C, F, Hi, Wi, cfg, k.fused);
        });
  }

  if (lopt.fleet.devices > 1) {
    // Shard geometry for the fleet layer (docs/MODEL.md §9): grid.x walks
    // filter groups (channel axis), grid.y folds nbx column tiles under
    // each output-row group (spatial axis, minor = nbx).
    sim::FleetHints& fh = lopt.fleet_hints;
    fh.provided = true;
    fh.channel_axis = 0;
    fh.spatial_axis = 1;
    fh.spatial_minor = static_cast<u32>(p.nbx);
    const u64 fs = sizeof(float);
    fh.input_bytes = fs * static_cast<u64>(C * Hi * Wi);
    fh.filter_bytes = fs * static_cast<u64>(C * K * K * F);
    fh.output_bytes = fs * static_cast<u64>(F * p.Ho * p.Wo);
    fh.halo_bytes_per_cut = fs * static_cast<u64>(C * (K - 1) * Wi);
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, p.lc, lopt);
  if (opt.profile) {
    // Paper §4 bounds: each filter group re-reads the image once (the ~1/K
    // GM reduction leaves grid.x passes, halo excluded from the bound) and
    // each spatial block reads its filter group once; the compute phase
    // needs (WT+K-1)/(K*FT*WT) image + 1/WT filter SM loads per FMA.
    profile::RooflineHints& h = run.launch.profile.hints;
    h.kind = profile::RooflineHints::Kind::General;
    h.k = static_cast<u32>(K);
    h.wt = static_cast<u32>(cfg.wt);
    h.ft = static_cast<u32>(cfg.ft);
    const double fs = static_cast<double>(sizeof(float));
    h.gm_load_bound_bytes =
        fs * static_cast<double>(C * Hi * Wi) * static_cast<double>(p.lc.grid.x) +
        fs * static_cast<double>(C * K * K * F) *
            static_cast<double>(ceil_div(p.Ho, cfg.block_h) * p.nbx);
    h.smem_load_elems_per_fma_bound =
        static_cast<double>(cfg.wt + K - 1) /
            static_cast<double>(K * cfg.ft * cfg.wt) +
        1.0 / static_cast<double>(cfg.wt);
    if (k.fused) {
      // The fused epilogue adds one bias read per (spatial block, filter):
      // FTB scalars per block across grid.y blocks.
      h.gm_load_bound_bytes +=
          fs * static_cast<double>(F) *
          static_cast<double>(ceil_div(p.Ho, cfg.block_h) * p.nbx);
    }
  }
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

GeneralConvConfig table1_config(i64 k) {
  GeneralConvConfig c;
  switch (k) {
    case 3:
      c.block_w = 32; c.block_h = 4; c.ftb = 64; c.wt = 16; c.ft = 4;
      c.csh = 2;
      break;
    case 5:
      c.block_w = 32; c.block_h = 8; c.ftb = 32; c.wt = 8; c.ft = 8;
      c.csh = 1;
      break;
    case 7:
      c.block_w = 64; c.block_h = 4; c.ftb = 32; c.wt = 8; c.ft = 8;
      c.csh = 1;
      break;
    default:
      KCONV_CHECK(false, strf("no Table 1 configuration for K=%lld",
                              static_cast<long long>(k)));
  }
  return c;
}

std::string general_conv_check(const sim::Arch& arch, i64 k, i64 c, i64 f,
                               i64 hi, i64 wi, const GeneralConvConfig& cfg) {
  GeneralLaunchPlan plan;
  return plan_general(arch, k, c, f, hi, wi, cfg, plan);
}

xray::KernelModel general_conv_xray(const sim::Arch& arch, i64 k, i64 c,
                                    i64 f, i64 hi, i64 wi,
                                    const GeneralConvConfig& cfg, bool fused) {
  GeneralLaunchPlan plan;
  const std::string err = plan_general(arch, k, c, f, hi, wi, cfg, plan);
  KCONV_CHECK(err.empty(), err);

  // Every parameter below replicates run_general<N> line for line: the same
  // DevicePlanes pitches, the same GM allocation order (image, output,
  // filters, then bias when fused), the same SharedLayout offsets.
  struct P {
    i64 K, C, F, Hi, Wi, Ho, Wo, W, H, FTB, WT, FT, CSH, TX, TY, nbx, N;
    i64 rows_halo, cols_halo, stride_img, stride_flt;
    i64 nthreads, units_per_row, total_img_units, total_flt;
    i64 img_iters, flt_iters;
    i64 in_pitch, out_pitch;
    u64 in_base, out_base, filt_base, bias_base;
    u64 sh_img, sh_flt;
    bool prefetch, fused;
  } p{};
  p.K = k;
  p.C = c;
  p.F = f;
  p.Hi = hi;
  p.Wi = wi;
  p.Ho = plan.Ho;
  p.Wo = plan.Wo;
  p.W = cfg.block_w;
  p.H = cfg.block_h;
  p.FTB = cfg.ftb;
  p.WT = cfg.wt;
  p.FT = cfg.ft;
  p.CSH = cfg.csh;
  p.TX = plan.TX;
  p.TY = plan.TY;
  p.nbx = plan.nbx;
  p.N = plan.n;
  p.rows_halo = plan.rows_halo;
  p.cols_halo = plan.cols_halo;
  p.stride_img = plan.stride_img;
  p.stride_flt = plan.stride_flt;
  p.nthreads = plan.TX * plan.TY;
  p.units_per_row = ceil_div(plan.cols_halo, plan.n);
  p.total_img_units = cfg.csh * plan.rows_halo * p.units_per_row;
  p.total_flt = cfg.csh * k * k * cfg.ftb;
  p.img_iters = plan.img_iters;
  p.flt_iters = plan.flt_scalars;
  p.prefetch = cfg.prefetch;
  p.fused = fused;

  xray::AddressSpace gm;
  p.in_base = gm.alloc_planes(c, hi, wi, p.in_pitch);
  p.out_base = gm.alloc_planes(f, p.Ho, p.Wo, p.out_pitch);
  p.filt_base = gm.alloc_floats(f * c * k * k);
  p.bias_base = fused ? gm.alloc_floats(f) : 0;
  p.sh_img = plan.img_off;
  p.sh_flt = plan.flt_off;

  xray::KernelModel m;
  m.kernel = "general_conv";
  m.cfg = plan.lc;
  // Paper §4 bound: each filter group re-reads the image once (grid.x
  // passes), each spatial block reads its filter group once, each output is
  // written once — the same terms as the roofline hints plus the store side.
  const double fs = static_cast<double>(sizeof(float));
  const double nby = static_cast<double>(ceil_div(p.Ho, p.H));
  m.min_gm_bytes =
      fs * static_cast<double>(c * hi * wi) *
          static_cast<double>(plan.lc.grid.x) +
      fs * static_cast<double>(c * k * k * f) * nby *
          static_cast<double>(p.nbx) +
      fs * static_cast<double>(f) * static_cast<double>(p.Ho) *
          static_cast<double>(p.Wo);
  if (fused) {
    m.min_gm_bytes +=
        fs * static_cast<double>(f) * nby * static_cast<double>(p.nbx);
  }

  enum Site : u32 {
    kGmImgStage, kSmImgStage, kGmFltStage, kSmFltStage,
    kSmImgRow, kSmFltCompute,
    kGmImgNext, kGmFltNext, kSmImgPublish, kSmFltPublish,
    kGmWriteback,
    kGmBias,  // only declared when fused
  };
  m.sites = {
      {"gm-img-stage", sim::Op::LoadGlobal, "§4.1 Alg. 2 line 4", false},
      {"sm-img-stage", sim::Op::StoreShared, "§4.1 Alg. 2 line 5", false},
      {"gm-flt-stage", sim::Op::LoadGlobal, "§4.2 Alg. 2 line 4", false},
      {"sm-flt-stage", sim::Op::StoreShared, "§4.2 Fig. 6", false},
      {"sm-img-row", sim::Op::LoadShared, "§4.2 Alg. 2 line 11", false},
      {"sm-flt-compute", sim::Op::LoadShared, "§4.2 Alg. 2 line 12", false},
      {"gm-img-next", sim::Op::LoadGlobal, "§4.1 Alg. 2 lines 8/17", false},
      {"gm-flt-next", sim::Op::LoadGlobal, "§4.2 Alg. 2 lines 9/17", false},
      {"sm-img-publish", sim::Op::StoreShared, "§4.1 Alg. 2 line 17", false},
      {"sm-flt-publish", sim::Op::StoreShared, "§4.2 Fig. 6", false},
      {"gm-writeback", sim::Op::StoreGlobal, "§4 Alg. 2 line 20", false},
  };
  if (fused) {
    m.sites.push_back({"gm-bias", sim::Op::LoadGlobal,
                       "§4 Alg. 2 line 20 (fused epilogue)", false});
  }

  m.emit = [p](sim::Dim3 b, xray::ModelSink& sink) {
    constexpr u32 kNone = ~0u;
    const u32 vb = static_cast<u32>(p.N * sizeof(float));
    const u32 sb = static_cast<u32>(sizeof(float));
    const i64 fblk = b.x;
    const i64 sx = static_cast<i64>(b.y) % p.nbx;
    const i64 sy = static_cast<i64>(b.y) / p.nbx;
    const i64 KK = p.K * p.K;
    const auto in_addr = [&p](i64 ci, i64 y, i64 x) {
      return p.in_base + static_cast<u64>(
                             (((ci * p.Hi + y) * p.in_pitch) + x) *
                             static_cast<i64>(sizeof(float)));
    };
    const auto out_addr = [&p](i64 pf, i64 y, i64 x) {
      return p.out_base + static_cast<u64>(
                              (((pf * p.Ho + y) * p.out_pitch) + x) *
                              static_cast<i64>(sizeof(float)));
    };
    const auto filt_addr = [&p](i64 idx) {
      return p.filt_base + static_cast<u64>(idx) * sizeof(float);
    };
    const auto sm_img = [&p](i64 idx) {
      return p.sh_img + static_cast<u64>(idx) * sizeof(float);
    };
    const auto sm_flt = [&p](i64 idx) {
      return p.sh_flt + static_cast<u64>(idx) * sizeof(float);
    };
    std::vector<xray::LaneAccess> lanes(static_cast<size_t>(p.nthreads));
    const auto each = [&](auto&& fill) {
      for (i64 t = 0; t < p.nthreads; ++t) {
        lanes[static_cast<size_t>(t)] = fill(t % p.TX, t / p.TX);
      }
    };

    // Lines 4-5 / 8-9 / 17-18: the cooperative image staging loop, emitted
    // for channel base `cbase` with either or both of its GM-load and
    // SM-store halves (prefetch splits them across a barrier).
    const auto img_stage = [&](i64 cbase, u32 gm_site, u32 sm_site) {
      for (i64 it = 0; it < p.img_iters; ++it) {
        const auto idx = [&](i64 tx, i64 ty, i64& ci, i64& ry, i64& cu,
                             bool& ok, bool& any) {
          const i64 u = (tx + p.TX * ty) + it * p.nthreads;
          ci = (u / (p.rows_halo * p.units_per_row)) % p.CSH;
          const i64 rem = u % (p.rows_halo * p.units_per_row);
          ry = rem / p.units_per_row;
          cu = rem % p.units_per_row;
          any = u < p.total_img_units;
          ok = any && sy * p.H + ry < p.Hi && sx * p.W + cu * p.N < p.Wi;
        };
        if (gm_site != kNone) {
          each([&](i64 tx, i64 ty) -> xray::LaneAccess {
            i64 ci, ry, cu;
            bool ok, any;
            idx(tx, ty, ci, ry, cu, ok, any);
            return {ok ? in_addr(cbase + ci, sy * p.H + ry, sx * p.W + cu * p.N)
                       : 0,
                    vb, ok, any};
          });
          sink.site(gm_site, lanes);
        }
        if (sm_site != kNone) {
          each([&](i64 tx, i64 ty) -> xray::LaneAccess {
            i64 ci, ry, cu;
            bool ok, any;
            idx(tx, ty, ci, ry, cu, ok, any);
            return {sm_img((ci * p.rows_halo + ry) * p.stride_img + cu * p.N),
                    vb, ok, any};
          });
          sink.site(sm_site, lanes);
        }
      }
    };
    // The filter staging loop; the in-range predicate is block-invariant.
    const auto flt_stage = [&](i64 cbase, u32 gm_site, u32 sm_site) {
      for (i64 it = 0; it < p.flt_iters; ++it) {
        const auto idx = [&](i64 tx, i64 ty, i64& ff, i64& ci, i64& kk,
                             bool& ok) {
          const i64 e = (tx + p.TX * ty) + it * p.nthreads;
          ok = e < p.total_flt;
          ff = ok ? e / (p.CSH * KK) : 0;
          const i64 rem = ok ? e % (p.CSH * KK) : 0;
          ci = rem / KK;
          kk = rem % KK;
        };
        if (gm_site != kNone) {
          each([&](i64 tx, i64 ty) -> xray::LaneAccess {
            i64 ff, ci, kk;
            bool ok;
            idx(tx, ty, ff, ci, kk, ok);
            return {ok ? filt_addr(((fblk * p.FTB + ff) * p.C + cbase + ci) *
                                   KK + kk)
                       : 0,
                    sb, ok, ok};
          });
          sink.site(gm_site, lanes);
        }
        if (sm_site != kNone) {
          each([&](i64 tx, i64 ty) -> xray::LaneAccess {
            i64 ff, ci, kk;
            bool ok;
            idx(tx, ty, ff, ci, kk, ok);
            return {sm_flt((ci * KK + kk) * p.stride_flt + ff), sb, ok, ok};
          });
          sink.site(sm_site, lanes);
        }
      }
    };

    // Lines 4-6: the initial fill.
    img_stage(0, kGmImgStage, kSmImgStage);
    flt_stage(0, kGmFltStage, kSmFltStage);
    sink.sync();

    // Line 7: the channel loop.
    for (i64 c0 = 0; c0 < p.C; c0 += p.CSH) {
      const bool has_next = c0 + p.CSH < p.C;

      // Lines 10-15: compute. All addresses are block-invariant; TX
      // consecutive threads broadcast image rows and stride filter units.
      for (i64 i = 0; i < p.CSH; ++i) {
        for (i64 j = 0; j < p.K; ++j) {
          for (i64 u = 0; u * p.N < p.WT + p.K - 1; ++u) {
            each([&](i64, i64 ty) -> xray::LaneAccess {
              const i64 orow_local = (ty * p.WT) / p.W;
              const i64 ocol_local = (ty * p.WT) % p.W;
              return {sm_img((i * p.rows_halo + orow_local + j) *
                                 p.stride_img + ocol_local + u * p.N),
                      vb, true, true};
            });
            sink.site(kSmImgRow, lanes);
          }
          for (i64 kx = 0; kx < p.K; ++kx) {
            for (i64 u = 0; u < p.FT / p.N; ++u) {
              each([&](i64 tx, i64) -> xray::LaneAccess {
                return {sm_flt((i * KK + j * p.K + kx) * p.stride_flt +
                               (tx + u * p.TX) * p.N),
                        vb, true, true};
              });
              sink.site(kSmFltCompute, lanes);
            }
            sink.fma(static_cast<u64>(p.FT * p.WT));
          }
        }
      }

      // Lines 8-9: prefetch the next channels into registers.
      if (p.prefetch && has_next) {
        img_stage(c0 + p.CSH, kGmImgNext, kNone);
        flt_stage(c0 + p.CSH, kGmFltNext, kNone);
      }
      sink.sync();  // line 16
      // Lines 17-18: publish (from registers, or straight from GM — A1).
      if (has_next) {
        if (p.prefetch) {
          img_stage(c0 + p.CSH, kNone, kSmImgPublish);
          flt_stage(c0 + p.CSH, kNone, kSmFltPublish);
        } else {
          img_stage(c0 + p.CSH, kGmImgNext, kSmImgPublish);
          flt_stage(c0 + p.CSH, kGmFltNext, kSmFltPublish);
        }
      }
      sink.sync();  // line 19
    }

    // Line 20: write-back — contiguous threads in X hit different output
    // planes, uncoalesced by design.
    for (i64 s = 0; s < p.FT; ++s) {
      const auto gf_of = [&](i64 tx) {
        return fblk * p.FTB + (tx + (s / p.N) * p.TX) * p.N + s % p.N;
      };
      if (p.fused) {
        each([&](i64 tx, i64) -> xray::LaneAccess {
          return {p.bias_base + static_cast<u64>(gf_of(tx)) * sizeof(float),
                  sb, true, true};
        });
        sink.site(kGmBias, lanes);
      }
      for (i64 wu = 0; wu * p.N < p.WT; ++wu) {
        if (p.fused) sink.alu(static_cast<u64>(2 * p.N));
        each([&](i64 tx, i64 ty) -> xray::LaneAccess {
          const i64 orow = sy * p.H + (ty * p.WT) / p.W;
          const i64 ocol = sx * p.W + (ty * p.WT) % p.W + wu * p.N;
          const bool ok = orow < p.Ho && ocol < p.Wo;
          return {ok ? out_addr(gf_of(tx), orow, ocol) : 0, vb, ok, true};
        });
        sink.site(kGmWriteback, lanes);
      }
    }
  };
  return m;
}

KernelRun general_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const GeneralConvConfig& cfg,
                       const sim::LaunchOptions& opt,
                       std::span<const float> fuse_bias_relu) {
  KCONV_CHECK(input.n() == 1, "general case operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  KCONV_CHECK(fuse_bias_relu.empty() ||
                  static_cast<i64>(fuse_bias_relu.size()) == filters.n(),
              strf("fused bias has %zu entries for %lld filters",
                   fuse_bias_relu.size(),
                   static_cast<long long>(filters.n())));

  GeneralLaunchPlan plan;
  const std::string err =
      plan_general(dev.arch(), filters.h(), input.c(), filters.n(),
                   input.h(), input.w(), cfg, plan);
  KCONV_CHECK(err.empty(), err);

  switch (plan.n) {
    case 1:
      return run_general<1>(dev, input, filters, cfg, plan, opt,
                            fuse_bias_relu);
    case 2:
      return run_general<2>(dev, input, filters, cfg, plan, opt,
                            fuse_bias_relu);
    default:
      return run_general<4>(dev, input, filters, cfg, plan, opt,
                            fuse_bias_relu);
  }
}

}  // namespace kconv::kernels
