#include "src/kernels/general_conv.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

/// Capacity of the per-thread staging registers (validated at config time).
constexpr i64 kMaxImgUnits = 16;
constexpr i64 kMaxFltScalars = 64;

template <int N>
class GeneralKernel {
 public:
  PlanesView in;   // (C, Hi, Wi)
  PlanesView out;  // (F, Ho, Wo)
  sim::BufferView<float> filt;  // F*C*K*K, filter-major (f, c, ky, kx)
  i64 K = 0, C = 0, F = 0, Ho = 0, Wo = 0;
  i64 W = 0, H = 0, FTB = 0, WT = 0, FT = 0, CSH = 0;
  i64 TX = 0, TY = 0, nbx = 0;
  i64 rows_halo = 0, cols_halo = 0;
  i64 stride_img = 0, stride_flt = 0;
  u32 img_off = 0, flt_off = 0;
  bool prefetch = true;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<float, N>;
    const i64 tx = t.thread_idx.x;
    const i64 ty = t.thread_idx.y;
    const i64 tid = tx + TX * ty;
    const i64 nthreads = TX * TY;
    const i64 fblk = t.block_idx.x;            // filter group
    const i64 sx = t.block_idx.y % nbx;        // spatial block column
    const i64 sy = t.block_idx.y / nbx;        // spatial block row
    const i64 KK = K * K;
    const i64 Hi = in.h, Wi = in.w;

    auto sh_img = t.shared<float>(img_off, CSH * rows_halo * stride_img);
    auto sh_flt = t.shared<float>(flt_off, CSH * KK * stride_flt);

    // Work splits for the cooperative staging loops.
    const i64 units_per_row = ceil_div(cols_halo, N);
    const i64 total_img_units = CSH * rows_halo * units_per_row;
    const i64 total_flt = CSH * KK * FTB;
    // Padded trip counts: every lane runs the same number of iterations
    // (inactive iterations are predicated off) so warps never drift.
    const i64 img_iters = ceil_div(total_img_units, nthreads);
    const i64 flt_iters = ceil_div(total_flt, nthreads);

    // This thread's outputs: WT contiguous pixels of one tile row.
    const i64 orow_local = (ty * WT) / W;
    const i64 ocol_local = (ty * WT) % W;

    // Algorithm 2, line 1: the register working set.
    float acc[kGeneralMaxFT][kGeneralMaxWT] = {};
    float rimg[kGeneralMaxWT + kGeneralMaxK - 1 + 4] = {};
    float rflt[kGeneralMaxFT] = {};
    VecN pf_img[kMaxImgUnits] = {};
    bool pf_img_ok[kMaxImgUnits] = {};
    float pf_flt[kMaxFltScalars] = {};

    // Lines 4-5: stage channels [0, CSH) straight into shared memory. This
    // initial fill is the one unavoidable load->store dependent phase.
    for (i64 it = 0; it < img_iters; ++it) {
      const i64 u = tid + it * nthreads;
      const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
      const i64 rem = u % (rows_halo * units_per_row);
      const i64 ry = rem / units_per_row;
      const i64 cu = rem % units_per_row;
      const i64 iy = sy * H + ry;
      const i64 ix = sx * W + cu * N;
      const bool ok = u < total_img_units && iy < Hi && ix < Wi;
      VecN v = co_await t.template ld_global_if<VecN>(
          ok, in.buf, ok ? in.idx(ci, iy, ix) : 0);
      co_await t.st_shared_if(
          ok, sh_img, (ci * rows_halo + ry) * stride_img + cu * N, v);
    }
    for (i64 it = 0; it < flt_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const bool ok = e < total_flt;
      const i64 f = ok ? e / (CSH * KK) : 0;
      const i64 rem = ok ? e % (CSH * KK) : 0;
      const i64 ci = rem / KK;
      const i64 kk = rem % KK;
      const float v = co_await t.ld_global_if(
          ok, filt, ((fblk * FTB + f) * C + ci) * KK + kk);
      co_await t.st_shared_if(ok, sh_flt, (ci * KK + kk) * stride_flt + f, v);
    }
    co_await t.sync();  // line 6

    // Line 7: accumulate over all channels, CSH at a time.
    for (i64 c0 = 0; c0 < C; c0 += CSH) {
      const bool has_next = c0 + CSH < C;

      // Lines 10-15: K rows x K rounds per staged channel. One rImg row of
      // WT+K-1 pixels feeds K rounds — the SM-traffic reduction of §4.2.
      for (i64 i = 0; i < CSH; ++i) {
        for (i64 j = 0; j < K; ++j) {
          const i64 row_base =
              (i * rows_halo + orow_local + j) * stride_img + ocol_local;
          for (i64 u = 0; u * N < WT + K - 1; ++u) {
            VecN v = co_await t.template ld_shared<VecN>(sh_img,
                                                         row_base + u * N);
            for (int jj = 0; jj < N; ++jj) rimg[u * N + jj] = v[jj];
          }
          for (i64 kx = 0; kx < K; ++kx) {
            const i64 flt_base = (i * KK + j * K + kx) * stride_flt;
            for (i64 u = 0; u < FT / N; ++u) {
              VecN v = co_await t.template ld_shared<VecN>(
                  sh_flt, flt_base + (tx + u * TX) * N);
              for (int jj = 0; jj < N; ++jj) rflt[u * N + jj] = v[jj];
            }
            for (i64 s = 0; s < FT; ++s) {
              for (i64 wu = 0; wu * N < WT; ++wu) {
                VecN xs, av;
                for (int jj = 0; jj < N; ++jj) {
                  xs[jj] = rimg[kx + wu * N + jj];
                  av[jj] = acc[s][wu * N + jj];
                }
                av = t.fma(xs, rflt[s], av);
                for (int jj = 0; jj < N; ++jj) acc[s][wu * N + jj] = av[jj];
              }
            }
          }
        }
      }
      // Lines 8-9: prefetch the next CSH channels into registers. The paper
      // issues these before the compute loop to overlap their latency; the
      // simulator's pipe-max timing captures that overlap regardless of
      // issue order, so they run after the (uniform) compute to keep warp
      // lanes aligned — same modeled cost, no spurious divergence.
      if (prefetch && has_next) {
        for (i64 it = 0; it < img_iters; ++it) {
          const i64 u = tid + it * nthreads;
          const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
          const i64 rem = u % (rows_halo * units_per_row);
          const i64 ry = rem / units_per_row;
          const i64 cu = rem % units_per_row;
          const i64 iy = sy * H + ry;
          const i64 ix = sx * W + cu * N;
          pf_img_ok[it] = u < total_img_units && iy < Hi && ix < Wi;
          pf_img[it] = co_await t.template ld_global_if<VecN>(
              pf_img_ok[it], in.buf,
              pf_img_ok[it] ? in.idx(c0 + CSH + ci, iy, ix) : 0);
        }
        for (i64 it = 0; it < flt_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const bool ok = e < total_flt;
          const i64 f = ok ? e / (CSH * KK) : 0;
          const i64 rem = ok ? e % (CSH * KK) : 0;
          const i64 ci = rem / KK;
          const i64 kk = rem % KK;
          pf_flt[it] = co_await t.ld_global_if(
              ok, filt, ((fblk * FTB + f) * C + c0 + CSH + ci) * KK + kk);
        }
      }

      co_await t.sync();  // line 16

      // Lines 17-18: publish the next channels to SM (from registers when
      // prefetching, straight from GM otherwise — ablation A1).
      if (has_next) {
        if (prefetch) {
          for (i64 it = 0; it < img_iters; ++it) {
            const i64 u = tid + it * nthreads;
            const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
            const i64 rem = u % (rows_halo * units_per_row);
            const i64 ry = rem / units_per_row;
            const i64 cu = rem % units_per_row;
            co_await t.st_shared_if(
                pf_img_ok[it], sh_img,
                (ci * rows_halo + ry) * stride_img + cu * N, pf_img[it]);
          }
          for (i64 it = 0; it < flt_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const bool ok = e < total_flt;
            const i64 f = ok ? e / (CSH * KK) : 0;
            const i64 rem = ok ? e % (CSH * KK) : 0;
            const i64 ci = rem / KK;
            const i64 kk = rem % KK;
            co_await t.st_shared_if(
                ok, sh_flt, (ci * KK + kk) * stride_flt + f, pf_flt[it]);
          }
        } else {
          for (i64 it = 0; it < img_iters; ++it) {
            const i64 u = tid + it * nthreads;
            const i64 ci = (u / (rows_halo * units_per_row)) % CSH;
            const i64 rem = u % (rows_halo * units_per_row);
            const i64 ry = rem / units_per_row;
            const i64 cu = rem % units_per_row;
            const i64 iy = sy * H + ry;
            const i64 ix = sx * W + cu * N;
            const bool ok = u < total_img_units && iy < Hi && ix < Wi;
            VecN v = co_await t.template ld_global_if<VecN>(
                ok, in.buf, ok ? in.idx(c0 + CSH + ci, iy, ix) : 0);
            co_await t.st_shared_if(
                ok, sh_img, (ci * rows_halo + ry) * stride_img + cu * N, v);
          }
          for (i64 it = 0; it < flt_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const bool ok = e < total_flt;
            const i64 f = ok ? e / (CSH * KK) : 0;
            const i64 rem = ok ? e % (CSH * KK) : 0;
            const i64 ci = rem / KK;
            const i64 kk = rem % KK;
            const float v = co_await t.ld_global_if(
                ok, filt, ((fblk * FTB + f) * C + c0 + CSH + ci) * KK + kk);
            co_await t.st_shared_if(
                ok, sh_flt, (ci * KK + kk) * stride_flt + f, v);
          }
        }
      }
      co_await t.sync();  // line 19
    }

    // Line 20: write the accumulators back. Contiguous threads in X write
    // different output planes — uncoalesced by design; the paper measured
    // this phase as negligible and so left it unbuffered.
    const i64 orow = sy * H + orow_local;
    for (i64 s = 0; s < FT; ++s) {
      const i64 gf = fblk * FTB + (tx + (s / N) * TX) * N + (s % N);
      for (i64 wu = 0; wu * N < WT; ++wu) {
        const i64 ocol = sx * W + ocol_local + wu * N;
        const bool ok = orow < Ho && ocol < Wo;
        VecN v;
        for (int jj = 0; jj < N; ++jj) v[jj] = acc[s][wu * N + jj];
        co_await t.st_global_if(ok, out.buf,
                                ok ? out.idx(gf, orow, ocol) : 0, v);
      }
    }
  }
};

template <int N>
KernelRun run_general(sim::Device& dev, const tensor::Tensor& input,
                      const tensor::Tensor& filters,
                      const GeneralConvConfig& cfg,
                      const sim::LaunchOptions& opt) {
  const i64 K = filters.h();
  const i64 C = input.c();
  const i64 F = filters.n();
  const i64 Hi = input.h(), Wi = input.w();
  const i64 Ho = tensor::conv_out_extent(Hi, K, 0);
  const i64 Wo = tensor::conv_out_extent(Wi, K, 0);

  GeneralKernel<N> k;
  k.K = K;
  k.C = C;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.W = cfg.block_w;
  k.H = cfg.block_h;
  k.FTB = cfg.ftb;
  k.WT = cfg.wt;
  k.FT = cfg.ft;
  k.CSH = cfg.csh;
  k.TX = cfg.ftb / cfg.ft;
  k.TY = cfg.block_w * cfg.block_h / cfg.wt;
  k.nbx = ceil_div(Wo, cfg.block_w);
  k.rows_halo = cfg.block_h + K - 1;
  k.cols_halo = cfg.block_w + K - 1;
  k.prefetch = cfg.prefetch;

  const i64 nthreads = k.TX * k.TY;
  const i64 img_units =
      ceil_div(k.CSH * k.rows_halo * ceil_div(k.cols_halo, N), nthreads);
  const i64 flt_scalars = ceil_div(k.CSH * K * K * cfg.ftb, nthreads);
  KCONV_CHECK(img_units <= kMaxImgUnits && flt_scalars <= kMaxFltScalars,
              strf("staging work per thread too large (%lld image units, "
                   "%lld filter values); use more threads or smaller CSH",
                   static_cast<long long>(img_units),
                   static_cast<long long>(flt_scalars)));

  DevicePlanes d_in(dev, C, Hi, Wi);
  d_in.upload(input);
  DevicePlanes d_out(dev, F, Ho, Wo);
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt = d_filt.view();

  sim::SharedLayout smem;
  k.stride_img = round_up(k.cols_halo + N, 4);
  // One bank word of padding keeps the transposing filter stores
  // conflict-free (the paper's Fig. 6 gray box).
  const i64 pad =
      cfg.pad_filters ? dev.arch().smem_bank_bytes / sizeof(float) : 0;
  k.stride_flt = cfg.ftb + pad;
  k.img_off = smem.alloc<float>(k.CSH * k.rows_halo * k.stride_img);
  k.flt_off = smem.alloc<float>(k.CSH * K * K * k.stride_flt);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(F / cfg.ftb),
                      static_cast<u32>(k.nbx * ceil_div(Ho, cfg.block_h)), 1};
  lc.block = sim::Dim3{static_cast<u32>(k.TX), static_cast<u32>(k.TY), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.ft * cfg.wt + (cfg.wt + K - 1) + cfg.ft + img_units * N +
          flt_scalars + 24,
      dev.arch().max_regs_per_thread));

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, opt);
  if (!run.launch.sampled) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

GeneralConvConfig table1_config(i64 k) {
  GeneralConvConfig c;
  switch (k) {
    case 3:
      c.block_w = 32; c.block_h = 4; c.ftb = 64; c.wt = 16; c.ft = 4;
      c.csh = 2;
      break;
    case 5:
      c.block_w = 32; c.block_h = 8; c.ftb = 32; c.wt = 8; c.ft = 8;
      c.csh = 1;
      break;
    case 7:
      c.block_w = 64; c.block_h = 4; c.ftb = 32; c.wt = 8; c.ft = 8;
      c.csh = 1;
      break;
    default:
      KCONV_CHECK(false, strf("no Table 1 configuration for K=%lld",
                              static_cast<long long>(k)));
  }
  return c;
}

KernelRun general_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const GeneralConvConfig& cfg,
                       const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "general case operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 K = filters.h();
  KCONV_CHECK(K >= 1 && K <= kGeneralMaxK,
              strf("filter size %lld outside supported range [1, %lld]",
                   static_cast<long long>(K),
                   static_cast<long long>(kGeneralMaxK)));

  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);
  KCONV_CHECK(n == 1 || n == 2 || n == 4,
              strf("unsupported vector width %lld",
                   static_cast<long long>(n)));

  KCONV_CHECK(cfg.ftb >= 1 && filters.n() % cfg.ftb == 0,
              strf("F=%lld must be a multiple of FTB=%lld",
                   static_cast<long long>(filters.n()),
                   static_cast<long long>(cfg.ftb)));
  KCONV_CHECK(cfg.csh >= 1 && input.c() % cfg.csh == 0,
              strf("C=%lld must be a multiple of CSH=%lld",
                   static_cast<long long>(input.c()),
                   static_cast<long long>(cfg.csh)));
  KCONV_CHECK(cfg.ft >= 1 && cfg.ftb % cfg.ft == 0,
              "FTB must be a multiple of FT");
  KCONV_CHECK(cfg.wt >= 1 && cfg.wt <= kGeneralMaxWT &&
                  cfg.ft <= kGeneralMaxFT,
              "WT/FT exceed the kernel's register capacity");
  KCONV_CHECK(cfg.block_w % cfg.wt == 0,
              "block_w must be a multiple of WT (threads tile whole rows)");
  KCONV_CHECK((cfg.block_w * cfg.block_h) % cfg.wt == 0,
              "block area must be a multiple of WT");
  KCONV_CHECK(cfg.wt % n == 0 && cfg.ft % n == 0 && cfg.ftb % n == 0 &&
                  cfg.block_w % n == 0,
              "WT, FT, FTB and block_w must be multiples of the vector width");
  KCONV_CHECK(cfg.block_w % 4 == 0, "block_w must be a multiple of 4");

  switch (n) {
    case 1: return run_general<1>(dev, input, filters, cfg, opt);
    case 2: return run_general<2>(dev, input, filters, cfg, opt);
    default: return run_general<4>(dev, input, filters, cfg, opt);
  }
}

}  // namespace kconv::kernels
