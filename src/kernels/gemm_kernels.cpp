#include "src/kernels/gemm_kernels.hpp"

#include <algorithm>

#include "src/sim/sim.hpp"

namespace kconv::kernels {

namespace {

constexpr i64 kMaxMicro = 8;      // tm, tn ceiling (acc register file)
constexpr i64 kMaxStage = 16;     // staged elements per thread per tile

template <int N>
class GemmKernel {
 public:
  sim::BufferView<float> a, b, c;
  i64 M = 0, Nc = 0, Kd = 0;             // problem extents
  i64 BM = 0, BN = 0, BK = 0, TM = 0, TN = 0;
  i64 TXg = 0, TYg = 0;                   // thread grid = (BN/TN, BM/TM)
  i64 stride_a = 0, stride_b = 0;         // SM row strides in floats
  u32 a_off = 0, b_off = 0;
  bool prefetch = true;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<float, N>;
    const i64 tx = t.thread_idx.x;
    const i64 ty = t.thread_idx.y;
    const i64 tid = tx + TXg * ty;
    const i64 nthreads = TXg * TYg;
    const i64 m0 = t.block_idx.y * BM;
    const i64 n0 = t.block_idx.x * BN;

    auto sh_a = t.shared<float>(a_off, BK * stride_a);
    auto sh_b = t.shared<float>(b_off, BK * stride_b);

    float acc[kMaxMicro][kMaxMicro] = {};
    float fa[kMaxMicro], fb[kMaxMicro];
    float pf_a[kMaxStage] = {}, pf_b[kMaxStage] = {};

    const i64 a_elems = BM * BK;  // per-tile staging work
    const i64 b_elems = BK * BN;
    const i64 a_iters = ceil_div(a_elems, nthreads);
    const i64 b_iters = ceil_div(b_elems, nthreads);
    const i64 steps = ceil_div(Kd, BK);

    // Stage the first K-slab. A is transposed into SM (padded rows); B is
    // copied straight through. Out-of-range elements stage zeros so the
    // accumulate loop needs no predicates.
    for (i64 it = 0; it < a_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 m = (e / BK) % BM, kk = e % BK;
      const bool ld_ok = e < a_elems && m0 + m < M && kk < Kd;
      const float v = co_await t.ld_global_if(ld_ok, a, (m0 + m) * Kd + kk);
      co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m, v);
    }
    for (i64 it = 0; it < b_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 r = (e / BN) % BK, col = e % BN;
      const bool ld_ok = e < b_elems && r < Kd && n0 + col < Nc;
      const float v = co_await t.ld_global_if(ld_ok, b, r * Nc + n0 + col);
      co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col, v);
    }
    co_await t.sync();

    for (i64 s = 0; s < steps; ++s) {
      const i64 kb = s * BK;
      const bool has_next = s + 1 < steps;

      // Double-buffer the next slab through registers.
      if (prefetch && has_next) {
        for (i64 it = 0; it < a_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
          const bool ok = e < a_elems && m0 + m < M && kk < Kd;
          pf_a[it] = co_await t.ld_global_if(ok, a, (m0 + m) * Kd + kk);
        }
        for (i64 it = 0; it < b_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 r = kb + BK + (e / BN) % BK, col = e % BN;
          const bool ok = e < b_elems && r < Kd && n0 + col < Nc;
          pf_b[it] = co_await t.ld_global_if(ok, b, r * Nc + n0 + col);
        }
      }

      // The rank-BK update: per k, TM/N + TN/N fragment loads feed TM*TN
      // FMAs. Fragment rows/cols are strided by the thread grid so that
      // contiguous threads touch contiguous N-wide units (conflict-free,
      // and full bank bandwidth exactly when N matches the bank width).
      for (i64 k = 0; k < BK; ++k) {
        for (i64 u = 0; u * N < TM; ++u) {
          VecN v = co_await t.template ld_shared<VecN>(
              sh_a, k * stride_a + (ty + u * TYg) * N);
          for (int jj = 0; jj < N; ++jj) fa[u * N + jj] = v[jj];
        }
        for (i64 u = 0; u * N < TN; ++u) {
          VecN v = co_await t.template ld_shared<VecN>(
              sh_b, k * stride_b + (tx + u * TXg) * N);
          for (int jj = 0; jj < N; ++jj) fb[u * N + jj] = v[jj];
        }
        for (i64 i = 0; i < TM; ++i) {
          for (i64 ju = 0; ju * N < TN; ++ju) {
            VecN xv, av;
            for (int jj = 0; jj < N; ++jj) {
              xv[jj] = fb[ju * N + jj];
              av[jj] = acc[i][ju * N + jj];
            }
            av = t.fma(xv, fa[i], av);
            for (int jj = 0; jj < N; ++jj) acc[i][ju * N + jj] = av[jj];
          }
        }
      }
      co_await t.sync();

      if (has_next) {
        if (prefetch) {
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = e % BK;
            co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m,
                                    pf_a[it]);
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col,
                                    pf_b[it]);
          }
        } else {
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
            const bool ok = e < a_elems && m0 + m < M && kk < Kd;
            const float v = co_await t.ld_global_if(ok, a, (m0 + m) * Kd + kk);
            co_await t.st_shared_if(e < a_elems, sh_a,
                                    (e % BK) * stride_a + m, v);
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            const bool ok = e < b_elems && kb + BK + r < Kd && n0 + col < Nc;
            const float v =
                co_await t.ld_global_if(ok, b, (kb + BK + r) * Nc + n0 + col);
            co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col, v);
          }
        }
      }
      co_await t.sync();
    }

    // Write the micro-tile back (strided fragment layout).
    for (i64 i = 0; i < TM; ++i) {
      const i64 row = m0 + (ty + (i / N) * TYg) * N + (i % N);
      for (i64 j = 0; j < TN; ++j) {
        const i64 col = n0 + (tx + (j / N) * TXg) * N + (j % N);
        const bool ok = row < M && col < Nc;
        co_await t.st_global_if(ok, c, ok ? row * Nc + col : 0, acc[i][j]);
      }
    }
  }
};

template <int N>
GemmRun run_gemm(sim::Device& dev, const tensor::Matrix& a,
                 const tensor::Matrix& b, const GemmConfig& cfg,
                 const sim::LaunchOptions& opt) {
  GemmKernel<N> k;
  k.M = a.rows;
  k.Nc = b.cols;
  k.Kd = a.cols;
  k.BM = cfg.bm;
  k.BN = cfg.bn;
  k.BK = cfg.bk;
  k.TM = cfg.tm;
  k.TN = cfg.tn;
  k.TXg = cfg.bn / cfg.tn;
  k.TYg = cfg.bm / cfg.tm;
  k.prefetch = cfg.prefetch;

  const i64 nthreads = k.TXg * k.TYg;
  KCONV_CHECK(ceil_div(k.BM * k.BK, nthreads) <= kMaxStage &&
                  ceil_div(k.BK * k.BN, nthreads) <= kMaxStage,
              "tile staging work exceeds per-thread register capacity");

  auto d_a = dev.alloc<float>(std::span<const float>(a.data));
  auto d_b = dev.alloc<float>(std::span<const float>(b.data));
  auto d_c = dev.alloc<float>(k.M * k.Nc);
  k.a = d_a.view();
  k.b = d_b.view();
  k.c = d_c.view();

  sim::SharedLayout smem;
  const i64 pad = cfg.pad_a ? dev.arch().smem_bank_bytes / sizeof(float) : 0;
  k.stride_a = cfg.bm + pad;
  k.stride_b = cfg.bn;
  k.a_off = smem.alloc<float>(cfg.bk * k.stride_a);
  k.b_off = smem.alloc<float>(cfg.bk * k.stride_b);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(k.Nc, cfg.bn)),
                      static_cast<u32>(ceil_div(k.M, cfg.bm)), 1};
  lc.block = sim::Dim3{static_cast<u32>(k.TXg), static_cast<u32>(k.TYg), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.tm * cfg.tn + cfg.tm + cfg.tn + 2 * kMaxStage + 20, dev.arch().max_regs_per_thread));

  GemmRun run;
  run.launch = sim::launch(dev, k, lc, opt);
  if (!run.launch.sampled) {
    run.c = tensor::Matrix(k.M, k.Nc);
    run.c.data = d_c.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

GemmConfig gemm_cublas_like() {
  GemmConfig c;
  c.bm = 96;
  c.bn = 96;
  c.bk = 8;
  c.tm = 6;
  c.tn = 6;
  c.vec_width = 0;  // matched
  return c;
}

GemmConfig gemm_magma_fermi() {
  GemmConfig c;
  c.bm = 64;
  c.bn = 64;
  c.bk = 16;
  c.tm = 4;
  c.tn = 4;
  c.vec_width = 1;  // float fragments: mismatched on 8-byte banks
  return c;
}

GemmConfig gemm_magma_mod() {
  GemmConfig c = gemm_magma_fermi();
  c.vec_width = 0;  // the paper's fix: float2 fragments
  return c;
}

GemmRun gemm(sim::Device& dev, const tensor::Matrix& a,
             const tensor::Matrix& b, const GemmConfig& cfg,
             const sim::LaunchOptions& opt) {
  KCONV_CHECK(a.cols == b.rows,
              strf("GEMM shape mismatch: %lldx%lld * %lldx%lld",
                   static_cast<long long>(a.rows),
                   static_cast<long long>(a.cols),
                   static_cast<long long>(b.rows),
                   static_cast<long long>(b.cols)));
  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);
  KCONV_CHECK(n == 1 || n == 2 || n == 4, "unsupported vector width");
  KCONV_CHECK(cfg.tm >= 1 && cfg.tm <= kMaxMicro && cfg.tn >= 1 &&
                  cfg.tn <= kMaxMicro,
              "micro-tile exceeds register capacity");
  KCONV_CHECK(cfg.bm % cfg.tm == 0 && cfg.bn % cfg.tn == 0,
              "tile extents must be multiples of the micro-tile");
  KCONV_CHECK(cfg.tm % n == 0 && cfg.tn % n == 0,
              "micro-tile must be a multiple of the vector width");

  switch (n) {
    case 1: return run_gemm<1>(dev, a, b, cfg, opt);
    case 2: return run_gemm<2>(dev, a, b, cfg, opt);
    default: return run_gemm<4>(dev, a, b, cfg, opt);
  }
}

}  // namespace kconv::kernels
