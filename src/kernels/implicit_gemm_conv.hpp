// cuDNN-style implicit-GEMM convolution (the paper's baseline [8]).
//
// Convolution as GEMM: M = F filters, N' = Ho*Wo output pixels,
// Kdim = C*K*K. Instead of materializing the im2col patch matrix, each
// thread block builds its BK x BN sub-block of it in shared memory on the
// fly ("sub-blocks of the input matrices are constructed in on-chip memory
// at run-time, and thus no additional memory is needed" — cuDNN [8]).
//
// This is a competent Kepler kernel: matched float2 SM fragments,
// conflict-free padded staging, register double-buffering. What it cannot
// avoid — and what the paper's kernels eliminate — is re-reading every
// input pixel up to K*K times from global memory (softened by L2) and
// spending index arithmetic on the im2col address decode.
#pragma once

#include "src/analysis/static/xray.hpp"
#include "src/common/types.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct ImplicitGemmConfig {
  i64 bm = 64;  ///< filters per tile
  i64 bn = 64;  ///< output pixels per tile
  i64 bk = 8;   ///< im2col depth per stage
  i64 tm = 4;   ///< micro-tile rows (filters) per thread
  i64 tn = 4;   ///< micro-tile cols (pixels) per thread
  i64 vec_width = 0;
  bool prefetch = true;
};

/// Tile selection mimicking cuDNN v5's fixed kernel menu: K-depth is
/// always staged in slabs of 32 (zero-padded when C*K*K is smaller — the
/// big waste in the C=1 special case), and the filter-tile is 128 or 64
/// rows depending on F. This rigidity is faithful: cuDNN ships a handful
/// of pre-compiled SASS tiles and pads every problem into them.
ImplicitGemmConfig implicit_gemm_auto_config(i64 f, i64 c, i64 k);

/// Cheap legality probe for a candidate configuration on a (K, C, F, Hi,
/// Wi) problem: empty string when `implicit_gemm_conv` with the same
/// parameters would launch, otherwise the reason it would be rejected
/// (micro-tile capacity, divisibility, staging-register capacity,
/// shared-memory or occupancy limits). Runs no simulation and allocates
/// nothing.
std::string implicit_gemm_check(const sim::Arch& arch, i64 k, i64 c, i64 f,
                                i64 hi, i64 wi,
                                const ImplicitGemmConfig& cfg);

/// The kernel's access-site descriptor for kconv-xray (docs/MODEL.md §10):
/// replays the tiled-GEMM instruction stream symbolically — same allocation
/// order, same address expressions (including the im2col decode), same
/// predicates as `implicit_gemm_conv` — without a Device. Callers must pass
/// a configuration `implicit_gemm_check` accepts.
xray::KernelModel implicit_gemm_xray(const sim::Arch& arch, i64 k, i64 c,
                                     i64 f, i64 hi, i64 wi,
                                     const ImplicitGemmConfig& cfg);

/// Runs the implicit-GEMM convolution: input (1, C, Hi, Wi), filters
/// (F, C, K, K) -> valid output (1, F, Ho, Wo). Works for any C >= 1
/// (including the special case, where the GEMM depth K*K is tiny and the
/// kernel's efficiency collapses — Fig. 7).
KernelRun implicit_gemm_conv(sim::Device& dev, const tensor::Tensor& input,
                             const tensor::Tensor& filters,
                             const ImplicitGemmConfig& cfg = {},
                             const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
