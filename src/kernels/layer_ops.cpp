#include "src/kernels/layer_ops.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"

namespace kconv::kernels {

namespace {

class MaxPoolKernel {
 public:
  PlanesView in;   // (C, H, W)
  PlanesView out;  // (C, H/2, W/2)

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 x = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 y = t.block_idx.y % out.h;
    const i64 c = t.block_idx.y / out.h;
    const bool live = x < out.w;
    float best = -3.4e38f;
    for (int i = 0; i < 4; ++i) {
      const i64 yy = y * 2 + i / 2, xx = x * 2 + i % 2;
      const float v = co_await t.ld_global_if(
          live, in.buf, live ? in.idx(c, yy, xx) : 0);
      best = std::max(best, v);
      t.alu(1);
    }
    co_await t.st_global_if(live, out.buf, live ? out.idx(c, y, x) : 0,
                            best);
  }
};

class BiasReluKernel {
 public:
  PlanesView in;
  PlanesView out;
  sim::BufferView<float> bias;  // C

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 x = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 y = t.block_idx.y % in.h;
    const i64 c = t.block_idx.y / in.h;
    const bool live = x < in.w;
    const float b = co_await t.ld_global(bias, c);  // warp-uniform: 1 sector
    const float v =
        co_await t.ld_global_if(live, in.buf, live ? in.idx(c, y, x) : 0);
    t.alu(2);
    co_await t.st_global_if(live, out.buf, live ? out.idx(c, y, x) : 0,
                            std::max(0.0f, v + b));
  }
};

/// Reinterprets an (N, C, H, W) batch as the layout-identical
/// (1, N*C, H, W) image (NCHW planes are contiguous).
tensor::Tensor fold_batch(const tensor::Tensor& t) {
  tensor::Tensor out(1, t.n() * t.c(), t.h(), t.w());
  std::copy(t.flat().begin(), t.flat().end(), out.flat().begin());
  return out;
}

/// Inverse of fold_batch for a kernel's (1, N*C, Ho, Wo) output.
tensor::Tensor unfold_batch(const tensor::Tensor& t, i64 n, i64 c) {
  tensor::Tensor out(n, c, t.h(), t.w());
  std::copy(t.flat().begin(), t.flat().end(), out.flat().begin());
  return out;
}

}  // namespace

KernelRun max_pool_2x2(sim::Device& dev, const tensor::Tensor& input,
                       const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.h() >= 2 && input.w() >= 2, "input too small to pool");
  const i64 NB = input.n(), C = NB * input.c();
  const i64 Ho = input.h() / 2, Wo = input.w() / 2;

  const tensor::Tensor* in = &input;
  tensor::Tensor folded;
  if (NB > 1) {
    folded = fold_batch(input);
    in = &folded;
  }

  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(*in);
  DevicePlanes d_out(dev, C, Ho, Wo);

  MaxPoolKernel k;
  k.in = d_in.view();
  k.out = d_out.view();

  sim::LaunchConfig lc;
  lc.block = sim::Dim3{128, 1, 1};
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, 128)),
                      static_cast<u32>(C * Ho), 1};
  lc.regs_per_thread = 16;

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, opt);
  if (!run.launch.sampled) {
    run.output = d_out.download();
    if (NB > 1) run.output = unfold_batch(run.output, NB, input.c());
    run.output_valid = true;
  }
  return run;
}

KernelRun bias_relu(sim::Device& dev, const tensor::Tensor& input,
                    std::span<const float> bias,
                    const sim::LaunchOptions& opt) {
  KCONV_CHECK(static_cast<i64>(bias.size()) == input.c(),
              strf("bias has %zu entries for %lld channels", bias.size(),
                   static_cast<long long>(input.c())));
  const i64 NB = input.n(), C = NB * input.c();
  const i64 H = input.h(), W = input.w();

  const tensor::Tensor* in = &input;
  tensor::Tensor folded;
  std::vector<float> tiled_bias;
  std::span<const float> plane_bias = bias;
  if (NB > 1) {
    folded = fold_batch(input);
    in = &folded;
    // One bias value per plane; the batch repeats the C-channel vector.
    tiled_bias.reserve(static_cast<std::size_t>(C));
    for (i64 b = 0; b < NB; ++b)
      tiled_bias.insert(tiled_bias.end(), bias.begin(), bias.end());
    plane_bias = tiled_bias;
  }

  DevicePlanes d_in(dev, C, H, W);
  d_in.upload(*in);
  DevicePlanes d_out(dev, C, H, W);
  auto d_bias = dev.alloc<float>(plane_bias);

  BiasReluKernel k;
  k.in = d_in.view();
  k.out = d_out.view();
  k.bias = d_bias.view();

  sim::LaunchConfig lc;
  lc.block = sim::Dim3{128, 1, 1};
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(W, 128)),
                      static_cast<u32>(C * H), 1};
  lc.regs_per_thread = 12;

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, opt);
  if (!run.launch.sampled) {
    run.output = d_out.download();
    if (NB > 1) run.output = unfold_batch(run.output, NB, input.c());
    run.output_valid = true;
  }
  return run;
}

}  // namespace kconv::kernels
