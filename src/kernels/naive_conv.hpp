// Naive direct convolution — one thread per output pixel, everything
// streamed from global memory (filters re-read per pixel, input re-read
// K*K*F times, only L2 softening the damage). The floor every optimized
// kernel is measured against.
#pragma once

#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct NaiveConvConfig {
  i64 tile_w = 32;  ///< threads per block in x (output columns)
  i64 tile_h = 8;   ///< threads per block in y (output rows)
};

/// input (1, C, Hi, Wi), filters (F, C, K, K) -> valid output.
KernelRun naive_conv(sim::Device& dev, const tensor::Tensor& input,
                     const tensor::Tensor& filters,
                     const NaiveConvConfig& cfg = {},
                     const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
