#include "src/kernels/short_dtype_conv.hpp"

#include <algorithm>

#include "src/kernels/detail/special_kernel.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

template <typename T, int N>
KernelRun run_typed(sim::Device& dev, const tensor::Tensor& input,
                    const tensor::Tensor& filters,
                    const ShortDtypeConvConfig& cfg,
                    const sim::LaunchOptions& opt) {
  const i64 K = filters.h();
  const i64 F = filters.n();
  const i64 Hi = input.h(), Wi = input.w();
  const i64 Ho = tensor::conv_out_extent(Hi, K, 0);
  const i64 Wo = tensor::conv_out_extent(Wi, K, 0);
  const i64 W = cfg.block_w, H = cfg.block_h;

  DevicePlanesT<T> d_in(dev, 1, Hi, Wi);
  d_in.upload(input);
  DevicePlanesT<T> d_out(dev, F, Ho, Wo);

  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc_const<float>(flat);

  detail::SpecialKernelT<T, N> k;
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt =
      sim::ConstView<float>(d_filt.get(), 0, static_cast<i64>(flat.size()));
  k.K = K;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.W = W;
  k.H = H;
  k.n_tail = ceil_div(K - 1, N);

  sim::SharedLayout smem;
  k.sh_stride = round_up(W + K + N, 16);
  k.sh_off = smem.alloc<T>(K * k.sh_stride);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, W)),
                      static_cast<u32>(ceil_div(Ho, H)), 1};
  lc.block = sim::Dim3{static_cast<u32>(W / N), 1, 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(
      std::min<i64>(K * (K + N - 1) + 3 * N + 12, dev.arch().max_regs_per_thread));

  sim::LaunchOptions lopt = opt;
  if (lopt.plan_key.empty()) {
    lopt.plan_key = strf(
        "short_dtype|v1|dt=%d|n=%d|k=%lld|f=%lld|hi=%lld|wi=%lld|bw=%lld|"
        "bh=%lld",
        static_cast<int>(cfg.dtype), N, static_cast<long long>(K),
        static_cast<long long>(F), static_cast<long long>(Hi),
        static_cast<long long>(Wi), static_cast<long long>(W),
        static_cast<long long>(H));
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, lopt);
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

template <typename T>
KernelRun dispatch_width(sim::Device& dev, const tensor::Tensor& input,
                         const tensor::Tensor& filters,
                         const ShortDtypeConvConfig& cfg, i64 n,
                         const sim::LaunchOptions& opt) {
  switch (n) {
    case 1: return run_typed<T, 1>(dev, input, filters, cfg, opt);
    case 2: return run_typed<T, 2>(dev, input, filters, cfg, opt);
    case 4: return run_typed<T, 4>(dev, input, filters, cfg, opt);
    case 8: return run_typed<T, 8>(dev, input, filters, cfg, opt);
    default:
      KCONV_CHECK(false, strf("unsupported vector width %lld",
                              static_cast<long long>(n)));
      __builtin_unreachable();
  }
}

}  // namespace

KernelRun short_dtype_conv(sim::Device& dev, const tensor::Tensor& input,
                           const tensor::Tensor& filters,
                           const ShortDtypeConvConfig& cfg,
                           const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "short-dtype conv operates on a single image");
  KCONV_CHECK(input.c() == 1 && filters.c() == 1,
              "short-dtype conv implements the special case (C = 1)");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 K = filters.h();
  KCONV_CHECK(K >= 1 && K <= kSpecialMaxK, "filter size out of range");
  KCONV_CHECK(cfg.block_w >= 4 && cfg.block_w % 4 == 0 && cfg.block_h >= 1,
              "invalid tile configuration");

  const std::size_t elem = dtype_size(cfg.dtype);
  i64 n = cfg.vec_width;
  if (n == 0) {
    n = std::max<i64>(1, static_cast<i64>(dev.arch().smem_bank_bytes / elem));
  }
  KCONV_CHECK(cfg.block_w % n == 0,
              "block_w must be a multiple of the vector width");

  switch (cfg.dtype) {
    case DType::F32:
      return dispatch_width<float>(dev, input, filters, cfg, n, opt);
    case DType::F16:
      return dispatch_width<f16>(dev, input, filters, cfg, n, opt);
    case DType::I8:
      return dispatch_width<i8q>(dev, input, filters, cfg, n, opt);
  }
  KCONV_ASSERT(false);
  __builtin_unreachable();
}

}  // namespace kconv::kernels
