// Auxiliary CNN layer operations on the simulator: 2x2 max-pooling and
// fused bias + ReLU.
//
// Not part of the paper's contribution — they exist so the examples and the
// serving graph runner can execute a complete CNN forward pass
// (conv -> bias/ReLU -> pool -> ... -> FC) through the library, the way a
// framework would consume it. Both are simple memory-bound kernels with
// coalesced access.
//
// Both ops accept full (N, C, H, W) batches: an NCHW batch is
// layout-identical to a single (N*C)-plane image, so the batched op is the
// same kernel launched over N*C planes — batch-1 calls are bit-for-bit the
// launches they always were.
#pragma once

#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

/// 2x2 max pooling with stride 2 over (N, C, H, W); odd tails truncate
/// (floor semantics, like Caffe). Output (N, C, H/2, W/2).
KernelRun max_pool_2x2(sim::Device& dev, const tensor::Tensor& input,
                       const sim::LaunchOptions& opt = {});

/// out[n][c][y][x] = max(0, in[n][c][y][x] + bias[c]) over (N, C, H, W).
/// `bias.size()` must equal C.
KernelRun bias_relu(sim::Device& dev, const tensor::Tensor& input,
                    std::span<const float> bias,
                    const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
