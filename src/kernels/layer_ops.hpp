// Auxiliary CNN layer operations on the simulator: 2x2 max-pooling and
// fused bias + ReLU.
//
// Not part of the paper's contribution — they exist so the examples can run
// a complete CNN forward pass (conv -> bias/ReLU -> pool -> ... -> FC)
// through the library, the way a framework would consume it. Both are
// simple memory-bound kernels with coalesced access.
#pragma once

#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

/// 2x2 max pooling with stride 2 over (1, C, H, W); odd tails truncate
/// (floor semantics, like Caffe). Output (1, C, H/2, W/2).
KernelRun max_pool_2x2(sim::Device& dev, const tensor::Tensor& input,
                       const sim::LaunchOptions& opt = {});

/// out[c][y][x] = max(0, in[c][y][x] + bias[c]) over (1, C, H, W).
/// `bias.size()` must equal C.
KernelRun bias_relu(sim::Device& dev, const tensor::Tensor& input,
                    std::span<const float> bias,
                    const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
