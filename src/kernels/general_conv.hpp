// The paper's general-case convolution kernel (§4, Algorithm 2): multiple
// input channels, filters too large for constant memory.
//
// Structure (inspired by blocked GEMM [19], with the paper's data-sharing
// twists):
//  - 2D grid: X over groups of FTB filters, Y over spatial H x W image
//    blocks; each thread block iterates over ALL C channels, staging CSH
//    channels of image block (with halo) and filters in shared memory at a
//    time, double-buffered through registers (prefetch).
//  - Filters are stored TRANSPOSED in SM — (channel, tap) rows of FTB
//    values — with one bank-word of padding per row to keep the transposing
//    stores conflict-free (the paper's gray box; `pad_filters=false`
//    reproduces the conflict for the ablation).
//  - Each thread computes WT *contiguous* output pixels x FT filters. The
//    contiguity is the paper's key departure from blocked GEMM: one row of
//    WT+K-1 pixels in registers serves K rounds of computation, cutting SM
//    image traffic by (WT+K-1)/(WT*K).
//  - All SM accesses move n-wide units (n = W_SMB / W_CD, float2 on
//    Kepler); TX contiguous threads read identical image addresses
//    (broadcast) and contiguous filter units (conflict-free).
#pragma once

#include <span>

#include "src/analysis/static/xray.hpp"
#include "src/common/types.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

/// Tuning parameters (the paper's Table 1 dimensions) plus ablation
/// switches.
struct GeneralConvConfig {
  i64 block_w = 32;  ///< W: image-block width in output pixels
  i64 block_h = 4;   ///< H: image-block height in output rows
  i64 ftb = 64;      ///< FTB: filters per thread block
  i64 wt = 16;       ///< WT: contiguous output pixels per thread
  i64 ft = 4;        ///< FT: filters per thread
  i64 csh = 2;       ///< CSH: channels staged in shared memory
  /// 0 = match the bank width (paper), 1 = unmatched ablation.
  i64 vec_width = 0;
  /// Pad transposed filter rows in SM by one bank word (ablation A2).
  bool pad_filters = true;
  /// Double-buffer GM loads through registers (ablation A1).
  bool prefetch = true;
};

/// The paper's Table 1: best configuration per filter size on Kepler K40m.
GeneralConvConfig table1_config(i64 k);

/// Hard ceilings imposed by the fixed-size register arrays in the kernel.
inline constexpr i64 kGeneralMaxK = 7;
inline constexpr i64 kGeneralMaxWT = 16;
inline constexpr i64 kGeneralMaxFT = 8;

/// Cheap legality probe for a candidate configuration on a (K, C, F, Hi, Wi)
/// problem: empty string when `general_conv` with the same parameters would
/// launch, otherwise the reason it would be rejected (divisibility,
/// register/staging capacity, shared-memory or occupancy limits). Runs no
/// simulation and allocates nothing — autotuner sweeps use it to skip
/// illegal points without exceptions as control flow.
std::string general_conv_check(const sim::Arch& arch, i64 k, i64 c, i64 f,
                               i64 hi, i64 wi, const GeneralConvConfig& cfg);

/// The kernel's access-site descriptor for kconv-xray (docs/MODEL.md §10):
/// replays Algorithm 2's instruction stream symbolically — same allocation
/// order, same address expressions, same predicates as `general_conv` —
/// without a Device. Callers must pass a configuration `general_conv_check`
/// accepts. `fused` mirrors a non-empty `fuse_bias_relu`.
xray::KernelModel general_conv_xray(const sim::Arch& arch, i64 k, i64 c,
                                    i64 f, i64 hi, i64 wi,
                                    const GeneralConvConfig& cfg,
                                    bool fused = false);

/// Runs the general-case kernel: `input` is (1, C, Hi, Wi), `filters` is
/// (F, C, K, K); output is the valid convolution (1, F, Ho, Wo).
///
/// A non-empty `fuse_bias_relu` (F entries) folds the bias-add + ReLU
/// epilogue into the write-back: out = max(0, conv + bias[f]). Bit-identical
/// to a separate `bias_relu` pass over the unfused output (both compute
/// std::max(0.0f, v + b) on the same fp32 values), but the intermediate
/// never round-trips global memory.
///
/// Constraints (checked, throwing kconv::Error): K odd sizes up to 7,
/// F % FTB == 0, C % CSH == 0, FTB % FT == 0, (W*H) % WT == 0,
/// W % WT == 0, WT and FT multiples of the vector width.
KernelRun general_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const GeneralConvConfig& cfg = {},
                       const sim::LaunchOptions& opt = {},
                       std::span<const float> fuse_bias_relu = {});

}  // namespace kconv::kernels
