#include "src/kernels/special_conv.hpp"

#include <algorithm>
#include <memory>

#include "src/kernels/detail/special_kernel.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

template <int N>
KernelRun run_special(sim::Device& dev, const tensor::Tensor& input,
                      const tensor::Tensor& filters,
                      const SpecialConvConfig& cfg,
                      const sim::LaunchOptions& opt,
                      std::span<const float> fuse_bias_relu) {
  const i64 K = filters.h();
  const i64 F = filters.n();
  const i64 Hi = input.h(), Wi = input.w();
  const i64 Ho = tensor::conv_out_extent(Hi, K, 0);
  const i64 Wo = tensor::conv_out_extent(Wi, K, 0);
  const i64 W = cfg.block_w, H = cfg.block_h;

  DevicePlanes d_in(dev, 1, Hi, Wi);
  d_in.upload(input);
  DevicePlanes d_out(dev, F, Ho, Wo);

  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc_const<float>(flat);

  detail::SpecialKernelT<float, N> k;
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt =
      sim::ConstView<float>(d_filt.get(), 0, static_cast<i64>(flat.size()));

  // The fused bias rides in constant memory next to the filters: f is
  // warp-uniform in the write-back, so each read is a broadcast.
  std::unique_ptr<sim::ConstBuffer> d_bias;
  if (!fuse_bias_relu.empty()) {
    d_bias = dev.alloc_const<float>(fuse_bias_relu);
    k.bias = sim::ConstView<float>(
        d_bias.get(), 0, static_cast<i64>(fuse_bias_relu.size()));
    k.fused = true;
  }
  k.K = K;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.W = W;
  k.H = H;
  k.n_tail = ceil_div(K - 1, N);

  sim::SharedLayout smem;
  k.sh_stride = round_up(W + K + N, 16);
  k.sh_off = smem.alloc<float>(K * k.sh_stride);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, W)),
                      static_cast<u32>(ceil_div(Ho, H)), 1};
  lc.block = sim::Dim3{static_cast<u32>(W / N), 1, 1};
  lc.shared_bytes = smem.size();
  // Window + accumulator + prefetch registers plus bookkeeping, mirroring
  // what nvcc would allocate for Algorithm 1.
  lc.regs_per_thread = static_cast<u32>(
      std::min<i64>(K * (K + N - 1) + 3 * N + 12, dev.arch().max_regs_per_thread));

  sim::LaunchOptions lopt = opt;
  if (lopt.plan_key.empty()) {
    lopt.plan_key = strf(
        "special_conv|v1|n=%d|k=%lld|f=%lld|hi=%lld|wi=%lld|bw=%lld|bh=%lld",
        N, static_cast<long long>(K), static_cast<long long>(F),
        static_cast<long long>(Hi), static_cast<long long>(Wi),
        static_cast<long long>(W), static_cast<long long>(H));
    // Appended (not always present) so unfused keys match pre-fusion stores.
    if (k.fused) lopt.plan_key += "|fused=br";
  }

  if (lopt.fleet.devices > 1) {
    // Shard geometry for the fleet layer (docs/MODEL.md §9). The grid is
    // (col-tiles, row-tiles): output rows shard along y with no folded
    // minor axis. There is no filter-group grid axis — the kernel loops F
    // internally — so channel sharding stays undeclared (rejected loudly).
    sim::FleetHints& fh = lopt.fleet_hints;
    fh.provided = true;
    fh.spatial_axis = 1;
    fh.spatial_minor = 1;
    const u64 fs = sizeof(float);
    fh.input_bytes = fs * static_cast<u64>(Hi * Wi);
    fh.filter_bytes = fs * static_cast<u64>(F * K * K);
    fh.output_bytes = fs * static_cast<u64>(F * Ho * Wo);
    fh.halo_bytes_per_cut = fs * static_cast<u64>((K - 1) * Wi);
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, lopt);
  if (opt.profile) {
    // Paper §3: the special case reads each input pixel from GM exactly
    // once, modulo the tile halo — one 4-byte load per pixel is the bound.
    profile::RooflineHints& h = run.launch.profile.hints;
    h.kind = profile::RooflineHints::Kind::Special;
    h.k = static_cast<u32>(K);
    h.gm_load_bound_bytes =
        static_cast<double>(sizeof(float)) * static_cast<double>(Hi * Wi);
  }
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

std::string special_conv_check(const sim::Arch& arch, i64 k, i64 f, i64 hi,
                               i64 wi, const SpecialConvConfig& cfg) {
  if (k < 1 || k > kSpecialMaxK) {
    return strf("filter size %lld outside supported range [1, %lld]",
                static_cast<long long>(k),
                static_cast<long long>(kSpecialMaxK));
  }
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);  // Eq. (1)
  if (n != 1 && n != 2 && n != 4) {
    return strf("unsupported vector width %lld", static_cast<long long>(n));
  }
  if (cfg.block_w < 4 || cfg.block_w % 4 != 0) {
    return "block_w must be a positive multiple of 4";
  }
  if (cfg.block_h < 1) return "block_h must be positive";
  const i64 Ho = tensor::conv_out_extent(hi, k, 0);
  const i64 Wo = tensor::conv_out_extent(wi, k, 0);
  if (Ho < 1 || Wo < 1) return "image smaller than the filter";
  const i64 filt_bytes = f * k * k * static_cast<i64>(sizeof(float));
  if (filt_bytes > arch.const_capacity) {
    return strf("filters need %lld B of constant memory (capacity %u)",
                static_cast<long long>(filt_bytes), arch.const_capacity);
  }

  sim::SharedLayout smem;
  (void)smem.alloc<float>(k * round_up(cfg.block_w + k + n, 16));
  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, cfg.block_w)),
                      static_cast<u32>(ceil_div(Ho, cfg.block_h)), 1};
  lc.block = sim::Dim3{static_cast<u32>(cfg.block_w / n), 1, 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(
      std::min<i64>(k * (k + n - 1) + 3 * n + 12, arch.max_regs_per_thread));
  return sim::launch_feasibility_error(arch, lc);
}

KernelRun special_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const SpecialConvConfig& cfg,
                       const sim::LaunchOptions& opt,
                       std::span<const float> fuse_bias_relu) {
  KCONV_CHECK(input.n() == 1, "special case operates on a single image");
  KCONV_CHECK(input.c() == 1 && filters.c() == 1,
              "special case requires exactly one input channel (C = 1)");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  KCONV_CHECK(fuse_bias_relu.empty() ||
                  static_cast<i64>(fuse_bias_relu.size()) == filters.n(),
              strf("fused bias has %zu entries for %lld filters",
                   fuse_bias_relu.size(),
                   static_cast<long long>(filters.n())));
  const std::string err =
      special_conv_check(dev.arch(), filters.h(), filters.n(), input.h(),
                         input.w(), cfg);
  KCONV_CHECK(err.empty(), err);
  if (!fuse_bias_relu.empty()) {
    const i64 cm_bytes = (filters.n() * filters.h() * filters.w() +
                          static_cast<i64>(fuse_bias_relu.size())) *
                         static_cast<i64>(sizeof(float));
    KCONV_CHECK(cm_bytes <= dev.arch().const_capacity,
                strf("filters + fused bias need %lld B of constant memory "
                     "(capacity %u)",
                     static_cast<long long>(cm_bytes),
                     dev.arch().const_capacity));
  }

  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);  // Eq. (1)
  switch (n) {
    case 1: return run_special<1>(dev, input, filters, cfg, opt, fuse_bias_relu);
    case 2: return run_special<2>(dev, input, filters, cfg, opt, fuse_bias_relu);
    default: return run_special<4>(dev, input, filters, cfg, opt, fuse_bias_relu);
  }
}

}  // namespace kconv::kernels
