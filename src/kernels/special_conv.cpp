#include "src/kernels/special_conv.hpp"

#include <algorithm>
#include <memory>

#include "src/kernels/detail/special_kernel.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

template <int N>
KernelRun run_special(sim::Device& dev, const tensor::Tensor& input,
                      const tensor::Tensor& filters,
                      const SpecialConvConfig& cfg,
                      const sim::LaunchOptions& opt,
                      std::span<const float> fuse_bias_relu) {
  const i64 K = filters.h();
  const i64 F = filters.n();
  const i64 Hi = input.h(), Wi = input.w();
  const i64 Ho = tensor::conv_out_extent(Hi, K, 0);
  const i64 Wo = tensor::conv_out_extent(Wi, K, 0);
  const i64 W = cfg.block_w, H = cfg.block_h;

  DevicePlanes d_in(dev, 1, Hi, Wi);
  d_in.upload(input);
  DevicePlanes d_out(dev, F, Ho, Wo);

  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc_const<float>(flat);

  detail::SpecialKernelT<float, N> k;
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt =
      sim::ConstView<float>(d_filt.get(), 0, static_cast<i64>(flat.size()));

  // The fused bias rides in constant memory next to the filters: f is
  // warp-uniform in the write-back, so each read is a broadcast.
  std::unique_ptr<sim::ConstBuffer> d_bias;
  if (!fuse_bias_relu.empty()) {
    d_bias = dev.alloc_const<float>(fuse_bias_relu);
    k.bias = sim::ConstView<float>(
        d_bias.get(), 0, static_cast<i64>(fuse_bias_relu.size()));
    k.fused = true;
  }
  k.K = K;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.W = W;
  k.H = H;
  k.n_tail = ceil_div(K - 1, N);

  sim::SharedLayout smem;
  k.sh_stride = round_up(W + K + N, 16);
  k.sh_off = smem.alloc<float>(K * k.sh_stride);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, W)),
                      static_cast<u32>(ceil_div(Ho, H)), 1};
  lc.block = sim::Dim3{static_cast<u32>(W / N), 1, 1};
  lc.shared_bytes = smem.size();
  // Window + accumulator + prefetch registers plus bookkeeping, mirroring
  // what nvcc would allocate for Algorithm 1.
  lc.regs_per_thread = static_cast<u32>(
      std::min<i64>(K * (K + N - 1) + 3 * N + 12, dev.arch().max_regs_per_thread));

  sim::LaunchOptions lopt = opt;
  std::string canonical_key = strf(
      "special_conv|v1|n=%d|k=%lld|f=%lld|hi=%lld|wi=%lld|bw=%lld|bh=%lld",
      N, static_cast<long long>(K), static_cast<long long>(F),
      static_cast<long long>(Hi), static_cast<long long>(Wi),
      static_cast<long long>(W), static_cast<long long>(H));
  // Appended (not always present) so unfused keys match pre-fusion stores.
  if (k.fused) canonical_key += "|fused=br";
  if (lopt.plan_key.empty()) lopt.plan_key = canonical_key;
  // Warm-plan pre-validation (docs/MODEL.md §10): stamp the launch with the
  // kernel's xray signature so a stored plan captured under a different
  // access pattern is rejected ("stale-static-signature"), not replayed.
  // Memoized: the block-0 symbolic walk runs once per config per process.
  if (lopt.plan_cache != nullptr && lopt.plan_static_signature == 0) {
    lopt.plan_static_signature = xray::memoized_signature(
        dev.arch(), canonical_key, [&] {
          return special_conv_xray(dev.arch(), K, F, Hi, Wi, cfg, k.fused);
        });
  }

  if (lopt.fleet.devices > 1) {
    // Shard geometry for the fleet layer (docs/MODEL.md §9). The grid is
    // (col-tiles, row-tiles): output rows shard along y with no folded
    // minor axis. There is no filter-group grid axis — the kernel loops F
    // internally — so channel sharding stays undeclared (rejected loudly).
    sim::FleetHints& fh = lopt.fleet_hints;
    fh.provided = true;
    fh.spatial_axis = 1;
    fh.spatial_minor = 1;
    const u64 fs = sizeof(float);
    fh.input_bytes = fs * static_cast<u64>(Hi * Wi);
    fh.filter_bytes = fs * static_cast<u64>(F * K * K);
    fh.output_bytes = fs * static_cast<u64>(F * Ho * Wo);
    fh.halo_bytes_per_cut = fs * static_cast<u64>((K - 1) * Wi);
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, lopt);
  if (opt.profile) {
    // Paper §3: the special case reads each input pixel from GM exactly
    // once, modulo the tile halo — one 4-byte load per pixel is the bound.
    profile::RooflineHints& h = run.launch.profile.hints;
    h.kind = profile::RooflineHints::Kind::Special;
    h.k = static_cast<u32>(K);
    h.gm_load_bound_bytes =
        static_cast<double>(sizeof(float)) * static_cast<double>(Hi * Wi);
  }
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

std::string special_conv_check(const sim::Arch& arch, i64 k, i64 f, i64 hi,
                               i64 wi, const SpecialConvConfig& cfg) {
  if (k < 1 || k > kSpecialMaxK) {
    return strf("filter size %lld outside supported range [1, %lld]",
                static_cast<long long>(k),
                static_cast<long long>(kSpecialMaxK));
  }
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);  // Eq. (1)
  if (n != 1 && n != 2 && n != 4) {
    return strf("unsupported vector width %lld", static_cast<long long>(n));
  }
  if (cfg.block_w < 4 || cfg.block_w % 4 != 0) {
    return "block_w must be a positive multiple of 4";
  }
  if (cfg.block_h < 1) return "block_h must be positive";
  const i64 Ho = tensor::conv_out_extent(hi, k, 0);
  const i64 Wo = tensor::conv_out_extent(wi, k, 0);
  if (Ho < 1 || Wo < 1) return "image smaller than the filter";
  const i64 filt_bytes = f * k * k * static_cast<i64>(sizeof(float));
  if (filt_bytes > arch.const_capacity) {
    return strf("filters need %lld B of constant memory (capacity %u)",
                static_cast<long long>(filt_bytes), arch.const_capacity);
  }

  sim::SharedLayout smem;
  (void)smem.alloc<float>(k * round_up(cfg.block_w + k + n, 16));
  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, cfg.block_w)),
                      static_cast<u32>(ceil_div(Ho, cfg.block_h)), 1};
  lc.block = sim::Dim3{static_cast<u32>(cfg.block_w / n), 1, 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(
      std::min<i64>(k * (k + n - 1) + 3 * n + 12, arch.max_regs_per_thread));
  return sim::launch_feasibility_error(arch, lc);
}

xray::KernelModel special_conv_xray(const sim::Arch& arch, i64 k, i64 f,
                                    i64 hi, i64 wi,
                                    const SpecialConvConfig& cfg,
                                    bool fused) {
  const std::string err = special_conv_check(arch, k, f, hi, wi, cfg);
  KCONV_CHECK(err.empty(), err);
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);  // Eq. (1)

  // Every launch parameter below replicates run_special<N> line for line:
  // the same DevicePlanes pitches, the same allocation order (image, output
  // in GM; filters then bias in constant space), the same SharedLayout.
  struct P {
    i64 K, F, Hi, Wi, Ho, Wo, W, H, N, n_tail, nthreads, rows_wcols;
    i64 in_pitch, out_pitch;
    u64 in_base, out_base, filt_base, bias_base;
    i64 sh_stride;
    u64 sh_off;
    bool fused;
  } p{};
  p.K = k;
  p.F = f;
  p.Hi = hi;
  p.Wi = wi;
  p.Ho = tensor::conv_out_extent(hi, k, 0);
  p.Wo = tensor::conv_out_extent(wi, k, 0);
  p.W = cfg.block_w;
  p.H = cfg.block_h;
  p.N = n;
  p.n_tail = ceil_div(k - 1, n);
  p.nthreads = cfg.block_w / n;
  p.rows_wcols = round_up(k + n - 1, n);
  p.fused = fused;

  xray::AddressSpace gm;
  p.in_base = gm.alloc_planes(1, hi, wi, p.in_pitch);
  p.out_base = gm.alloc_planes(f, p.Ho, p.Wo, p.out_pitch);
  xray::AddressSpace cm;
  p.filt_base = cm.alloc_floats(f * k * k);
  p.bias_base = fused ? cm.alloc_floats(f) : 0;

  sim::SharedLayout smem;
  p.sh_stride = round_up(p.W + k + n, 16);
  p.sh_off = smem.alloc<float>(k * p.sh_stride);

  xray::KernelModel m;
  m.kernel = "special_conv";
  m.cfg.grid = sim::Dim3{static_cast<u32>(ceil_div(p.Wo, p.W)),
                         static_cast<u32>(ceil_div(p.Ho, p.H)), 1};
  m.cfg.block = sim::Dim3{static_cast<u32>(p.nthreads), 1, 1};
  m.cfg.shared_bytes = smem.size();
  m.cfg.regs_per_thread = static_cast<u32>(std::min<i64>(
      k * (k + n - 1) + 3 * n + 12, arch.max_regs_per_thread));
  // Paper §3: each input pixel read from GM once, each output written once
  // (filters live in constant memory and never touch GM).
  m.min_gm_bytes = static_cast<double>(sizeof(float)) *
                   (static_cast<double>(hi) * static_cast<double>(wi) +
                    static_cast<double>(f) * static_cast<double>(p.Ho) *
                        static_cast<double>(p.Wo));

  enum Site : u32 {
    kGmStageMain, kSmStageMain, kGmStageTail, kSmStageTail,
    kSmWindow, kSmRow, kConstFilter, kGmWriteback,
    kGmPrefetchMain, kGmPrefetchTail, kSmPublishMain, kSmPublishTail,
    kConstBias,  // only declared when fused
  };
  m.sites = {
      {"gm-stage-main", sim::Op::LoadGlobal, "§3.1 Alg. 1 line 1", false},
      {"sm-stage-main", sim::Op::StoreShared, "§3.1 Alg. 1 line 1", false},
      {"gm-stage-tail", sim::Op::LoadGlobal, "§3.1 Alg. 1 line 1", false},
      {"sm-stage-tail", sim::Op::StoreShared, "§3.1 Alg. 1 line 1", false},
      {"sm-window", sim::Op::LoadShared, "§3.1 Alg. 1 line 3 / §2.1", false},
      {"sm-row", sim::Op::LoadShared, "§3.1 Alg. 1 line 6 / §2.1", false},
      {"const-filter", sim::Op::LoadConst, "§3.3", false},
      {"gm-writeback", sim::Op::StoreGlobal, "§3.2 Alg. 1 line 8", false},
      {"gm-prefetch-main", sim::Op::LoadGlobal, "§3.1 Alg. 1 line 5", false},
      {"gm-prefetch-tail", sim::Op::LoadGlobal, "§3.1 Alg. 1 line 5", false},
      {"sm-publish-main", sim::Op::StoreShared, "§3.1 Alg. 1 line 10", false},
      {"sm-publish-tail", sim::Op::StoreShared, "§3.1 Alg. 1 line 10", false},
  };
  if (fused) {
    m.sites.push_back({"const-bias", sim::Op::LoadConst, "§3.3", false});
  }

  m.emit = [p](sim::Dim3 b, xray::ModelSink& sink) {
    const u32 vb = static_cast<u32>(p.N * sizeof(float));
    const i64 bx = b.x, by = b.y;
    const i64 row0 = by * p.H;
    const i64 rows = std::min<i64>(p.H, p.Ho - row0);
    const auto in_addr = [&p](i64 y, i64 x) {
      return p.in_base +
             static_cast<u64>((y * p.in_pitch + x) * sizeof(float));
    };
    const auto out_addr = [&p](i64 pf, i64 y, i64 x) {
      return p.out_base + static_cast<u64>(
                              ((pf * p.Ho + y) * p.out_pitch + x) *
                              sizeof(float));
    };
    const auto sm_addr = [&p](i64 idx) {
      return p.sh_off + static_cast<u64>(idx * sizeof(float));
    };
    std::vector<xray::LaneAccess> lanes(static_cast<size_t>(p.nthreads));
    const auto each = [&](auto&& fill) {
      for (i64 t = 0; t < p.nthreads; ++t) {
        lanes[static_cast<size_t>(t)] = fill(t);
      }
    };

    // Algorithm 1, line 1: stage the first K rows.
    for (i64 r = 0; r < p.K; ++r) {
      const i64 ir = row0 + r;
      each([&](i64 t) -> xray::LaneAccess {
        const i64 col0 = bx * p.W + t * p.N;
        const bool ok = col0 < p.Wi;
        return {ok ? in_addr(ir, col0) : 0, vb, ok, true};
      });
      sink.site(kGmStageMain, lanes);
      each([&](i64 t) -> xray::LaneAccess {
        const bool ok = bx * p.W + t * p.N < p.Wi;
        return {sm_addr(r * p.sh_stride + t * p.N), vb, ok, true};
      });
      sink.site(kSmStageMain, lanes);
      each([&](i64 t) -> xray::LaneAccess {
        const i64 tc = bx * p.W + p.W + t * p.N;
        const bool ok = t < p.n_tail && tc < p.Wi;
        return {ok ? in_addr(ir, tc) : 0, vb, ok, t < p.n_tail};
      });
      sink.site(kGmStageTail, lanes);
      each([&](i64 t) -> xray::LaneAccess {
        const bool ok = t < p.n_tail && bx * p.W + p.W + t * p.N < p.Wi;
        return {sm_addr(r * p.sh_stride + p.W + t * p.N), vb, ok,
                t < p.n_tail};
      });
      sink.site(kSmStageTail, lanes);
    }
    sink.sync();

    // Line 3: first K-1 rows into the register window.
    for (i64 r = 0; r + 1 < p.K; ++r) {
      for (i64 i = 0; i < p.rows_wcols; i += p.N) {
        each([&](i64 t) -> xray::LaneAccess {
          return {sm_addr(r * p.sh_stride + t * p.N + i), vb, true, true};
        });
        sink.site(kSmWindow, lanes);
      }
    }

    // Lines 4-11: one output row per iteration.
    for (i64 rr = 0; rr < rows; ++rr) {
      const i64 orow = row0 + rr;
      const i64 slot = (rr + p.K - 1) % p.K;
      for (i64 i = 0; i < p.rows_wcols; i += p.N) {
        each([&](i64 t) -> xray::LaneAccess {
          return {sm_addr(slot * p.sh_stride + t * p.N + i), vb, true, true};
        });
        sink.site(kSmRow, lanes);
      }
      for (i64 ff = 0; ff < p.F; ++ff) {
        for (i64 e = 0; e < p.K * p.K; ++e) {
          each([&](i64) -> xray::LaneAccess {
            return {p.filt_base +
                        static_cast<u64>((ff * p.K * p.K + e) *
                                         sizeof(float)),
                    sizeof(float), true, true};
          });
          sink.site(kConstFilter, lanes);
        }
        sink.fma(static_cast<u64>(p.K * p.K * p.N));
        if (p.fused) {
          each([&](i64) -> xray::LaneAccess {
            return {p.bias_base + static_cast<u64>(ff * sizeof(float)),
                    sizeof(float), true, true};
          });
          sink.site(kConstBias, lanes);
          sink.alu(static_cast<u64>(2 * p.N));
        }
        each([&](i64 t) -> xray::LaneAccess {
          const i64 col0 = bx * p.W + t * p.N;
          const bool ok = col0 < p.Wo;
          return {ok ? out_addr(ff, orow, col0) : 0, vb, ok, true};
        });
        sink.site(kGmWriteback, lanes);
      }
      const bool pf = rr + 1 < rows;
      const i64 ir = row0 + rr + p.K;
      each([&](i64 t) -> xray::LaneAccess {
        const i64 col0 = bx * p.W + t * p.N;
        const bool ok = pf && col0 < p.Wi;
        return {ok ? in_addr(ir, col0) : 0, vb, ok, true};
      });
      sink.site(kGmPrefetchMain, lanes);
      each([&](i64 t) -> xray::LaneAccess {
        const i64 tc = bx * p.W + p.W + t * p.N;
        const bool ok = pf && t < p.n_tail && tc < p.Wi;
        return {ok ? in_addr(ir, tc) : 0, vb, ok, t < p.n_tail};
      });
      sink.site(kGmPrefetchTail, lanes);
      sink.sync();  // line 9
      each([&](i64 t) -> xray::LaneAccess {
        const bool ok = pf && bx * p.W + t * p.N < p.Wi;
        return {sm_addr((rr % p.K) * p.sh_stride + t * p.N), vb, ok, true};
      });
      sink.site(kSmPublishMain, lanes);
      each([&](i64 t) -> xray::LaneAccess {
        const bool ok =
            pf && t < p.n_tail && bx * p.W + p.W + t * p.N < p.Wi;
        return {sm_addr((rr % p.K) * p.sh_stride + p.W + t * p.N), vb, ok,
                t < p.n_tail};
      });
      sink.site(kSmPublishTail, lanes);
      sink.sync();  // line 11
    }
  };
  return m;
}

KernelRun special_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const SpecialConvConfig& cfg,
                       const sim::LaunchOptions& opt,
                       std::span<const float> fuse_bias_relu) {
  KCONV_CHECK(input.n() == 1, "special case operates on a single image");
  KCONV_CHECK(input.c() == 1 && filters.c() == 1,
              "special case requires exactly one input channel (C = 1)");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  KCONV_CHECK(fuse_bias_relu.empty() ||
                  static_cast<i64>(fuse_bias_relu.size()) == filters.n(),
              strf("fused bias has %zu entries for %lld filters",
                   fuse_bias_relu.size(),
                   static_cast<long long>(filters.n())));
  const std::string err =
      special_conv_check(dev.arch(), filters.h(), filters.n(), input.h(),
                         input.w(), cfg);
  KCONV_CHECK(err.empty(), err);
  if (!fuse_bias_relu.empty()) {
    const i64 cm_bytes = (filters.n() * filters.h() * filters.w() +
                          static_cast<i64>(fuse_bias_relu.size())) *
                         static_cast<i64>(sizeof(float));
    KCONV_CHECK(cm_bytes <= dev.arch().const_capacity,
                strf("filters + fused bias need %lld B of constant memory "
                     "(capacity %u)",
                     static_cast<long long>(cm_bytes),
                     dev.arch().const_capacity));
  }

  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);  // Eq. (1)
  switch (n) {
    case 1: return run_special<1>(dev, input, filters, cfg, opt, fuse_bias_relu);
    case 2: return run_special<2>(dev, input, filters, cfg, opt, fuse_bias_relu);
    default: return run_special<4>(dev, input, filters, cfg, opt, fuse_bias_relu);
  }
}

}  // namespace kconv::kernels
