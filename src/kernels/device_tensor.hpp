// Pitched multi-plane device images (the cudaMallocPitch idiom), generic
// over the storage element type.
//
// Device images are `planes` row-major planes whose rows are padded to a
// 16-byte-aligned pitch. The pitch guarantees that the vector-unit accesses
// the paper's kernels rely on (float2/float4, or half8/char8 in the
// short-dtype extension) are always naturally aligned at any row start, and
// a small tail slack lets edge threads over-read harmlessly instead of
// faulting.
//
// Storage types: `float` (the paper's evaluation), `f16`, `i8q` (the
// conclusion's short-data-type extension). Host-side values are always
// float; conversion happens on upload/download and inside kernels on
// load/store, matching what a real mixed-precision pipeline does.
#pragma once

#include "src/sim/device.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::kernels {

/// Non-owning device-side view: index math only, captured by kernels.
template <typename T>
struct PlanesViewT {
  sim::BufferView<T> buf;
  i64 planes = 0;
  i64 h = 0;
  i64 w = 0;
  i64 pitch = 0;  // elements per row; pitch * sizeof(T) is 16B-aligned

  /// Element index of (plane, row, col). Columns may reach into the pitch
  /// padding (but never past it) — that is by design, see file comment.
  i64 idx(i64 p, i64 y, i64 x) const { return (p * h + y) * pitch + x; }
};

using PlanesView = PlanesViewT<float>;

/// Owning pitched allocation + its view.
template <typename T>
class DevicePlanesT {
 public:
  DevicePlanesT() = default;

  /// Allocates `planes` x `h` x `w` with aligned pitch on `dev`, zeroed.
  DevicePlanesT(sim::Device& dev, i64 planes, i64 h, i64 w) {
    KCONV_CHECK(planes >= 1 && h >= 1 && w >= 1,
                "empty device plane allocation");
    const i64 align_elems = static_cast<i64>(16 / sizeof(T));
    const i64 pitch = round_up(w, align_elems);
    // Slack: edge threads may over-read within their last vector unit.
    arr_ = dev.alloc<T>(planes * h * pitch + 4 * align_elems);
    view_ = PlanesViewT<T>{arr_.view(), planes, h, w, pitch};
  }

  const PlanesViewT<T>& view() const { return view_; }

  /// Uploads image `n` of a (N, C, H, W) float tensor, converting each
  /// element to T (rounding for f16, saturating for i8q).
  void upload(const tensor::Tensor& t, i64 n = 0) {
    KCONV_CHECK(t.c() == view_.planes && t.h() == view_.h && t.w() == view_.w,
                "tensor shape does not match device planes");
    std::vector<T> staged(
        static_cast<std::size_t>(arr_.size()), T{});
    for (i64 p = 0; p < view_.planes; ++p)
      for (i64 y = 0; y < view_.h; ++y)
        for (i64 x = 0; x < view_.w; ++x)
          staged[static_cast<std::size_t>(view_.idx(p, y, x))] =
              T(t.at(n, p, y, x));
    arr_.upload(staged);
  }

  /// Downloads into a fresh (1, planes, h, w) float tensor.
  tensor::Tensor download() const {
    const auto raw = arr_.download();
    tensor::Tensor t(1, view_.planes, view_.h, view_.w);
    for (i64 p = 0; p < view_.planes; ++p)
      for (i64 y = 0; y < view_.h; ++y)
        for (i64 x = 0; x < view_.w; ++x)
          t.at(0, p, y, x) = static_cast<float>(
              raw[static_cast<std::size_t>(view_.idx(p, y, x))]);
    return t;
  }

  void zero() { arr_.zero(); }

 private:
  sim::DeviceArray<T> arr_;
  PlanesViewT<T> view_;
};

using DevicePlanes = DevicePlanesT<float>;

/// Flattens an (F, C, K, K) filter tensor into a host vector in
/// filter-major order (f, c, ky, kx) — the GM layout of the general case
/// and the CM layout of the special case.
inline std::vector<float> flatten_filters(const tensor::Tensor& filters) {
  std::vector<float> flat;
  flat.reserve(static_cast<std::size_t>(filters.size()));
  for (i64 f = 0; f < filters.n(); ++f)
    for (i64 c = 0; c < filters.c(); ++c)
      for (i64 y = 0; y < filters.h(); ++y)
        for (i64 x = 0; x < filters.w(); ++x)
          flat.push_back(filters.at(f, c, y, x));
  return flat;
}

}  // namespace kconv::kernels
