#include "src/kernels/smem_microbench.hpp"

#include "src/sim/sim.hpp"

namespace kconv::kernels {

namespace {

template <typename T, int N>
class SmemSweepKernel {
 public:
  i64 stride_units = 1;
  i64 elems_half = 0;  // elements per half-buffer
  u32 passes = 1;
  u32 src_off = 0, dst_off = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    auto src = t.shared<T>(src_off, elems_half);
    auto dst = t.shared<T>(dst_off, elems_half);
    const i64 tid = t.thread_idx.x;
    for (u32 p = 0; p < passes; ++p) {
      // Each pass: every thread moves one N-unit at its strided slot, then
      // rotates by one unit so the whole half-buffer is exercised.
      const i64 unit =
          (tid * stride_units + p) % (elems_half / N);
      Vec<T, N> v =
          co_await t.template ld_shared<Vec<T, N>>(src, unit * N);
      co_await t.st_shared(dst, unit * N, v);
    }
    co_await t.sync();
  }
};

template <typename T, int N>
SmemMicrobenchResult run_sweep(sim::Device& dev,
                               const SmemMicrobenchConfig& cfg) {
  SmemSweepKernel<T, N> k;
  k.stride_units = cfg.stride_units;
  k.passes = cfg.passes;

  // Two fixed 16 KiB half-buffers; strided patterns wrap modulo the unit
  // count, which preserves their bank mapping while bounding the footprint.
  k.elems_half = round_up(static_cast<i64>(16 * 1024 / sizeof(T)), 16);

  sim::SharedLayout smem;
  k.src_off = smem.alloc<T>(k.elems_half);
  k.dst_off = smem.alloc<T>(k.elems_half);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{cfg.blocks, 1, 1};
  lc.block = sim::Dim3{cfg.threads, 1, 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = 16;

  SmemMicrobenchResult res;
  res.launch = sim::launch(dev, k, lc);
  const auto& s = res.launch.stats;
  if (s.smem_request_cycles > 0) {
    res.bytes_per_request_cycle =
        static_cast<double>(s.smem_bytes) /
        static_cast<double>(s.smem_request_cycles);
  }
  res.replay_factor = s.smem_replay_factor();
  return res;
}

template <typename T>
SmemMicrobenchResult dispatch_width(sim::Device& dev,
                                    const SmemMicrobenchConfig& cfg, i64 n) {
  switch (n) {
    case 1: return run_sweep<T, 1>(dev, cfg);
    case 2: return run_sweep<T, 2>(dev, cfg);
    case 4: return run_sweep<T, 4>(dev, cfg);
    case 8: return run_sweep<T, 8>(dev, cfg);
    default:
      KCONV_CHECK(false, strf("unsupported vector width %lld",
                              static_cast<long long>(n)));
      __builtin_unreachable();
  }
}

}  // namespace

SmemMicrobenchResult smem_microbench(sim::Device& dev,
                                     const SmemMicrobenchConfig& cfg) {
  KCONV_CHECK(cfg.threads >= 32 && cfg.threads <= 1024 && cfg.passes >= 1 &&
                  cfg.blocks >= 1 && cfg.stride_units >= 1,
              "invalid microbenchmark configuration");
  const std::size_t elem = dtype_size(cfg.dtype);
  i64 n = cfg.vec_width;
  if (n == 0) {
    n = std::max<i64>(1, static_cast<i64>(dev.arch().smem_bank_bytes / elem));
  }
  switch (cfg.dtype) {
    case DType::F32: return dispatch_width<float>(dev, cfg, n);
    case DType::F16: return dispatch_width<f16>(dev, cfg, n);
    case DType::I8: return dispatch_width<i8q>(dev, cfg, n);
  }
  KCONV_ASSERT(false);
  __builtin_unreachable();
}

}  // namespace kconv::kernels
