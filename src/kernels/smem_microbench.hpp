// Shared-memory access-pattern microbenchmark — Fig. 1 made executable.
//
// A block of threads sweeps shared memory, each thread moving `units` of
// N elements of T per pass (load from one half, store to the other). With
// the conventional pattern (N = 1) contiguous threads access contiguous
// scalars: on an architecture whose bank width exceeds sizeof(T), each
// request cycle moves only part of the available 32-bank width. With the
// matched pattern (N = W_SMB / sizeof(T)) each request cycle moves full
// bank words. The reported bytes-per-request-cycle ratio is the paper's
// n-fold SM bandwidth claim, measured rather than asserted.
#pragma once

#include "src/common/types.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct SmemMicrobenchConfig {
  DType dtype = DType::F32;
  /// Elements per thread unit; 0 = matched (Eq. 1), 1 = conventional.
  i64 vec_width = 1;
  /// Inter-thread stride in units (1 = contiguous; bank-conflict patterns
  /// use larger strides, e.g. 32 words hits a single bank).
  i64 stride_units = 1;
  u32 threads = 256;
  u32 passes = 64;
  u32 blocks = 8;
};

struct SmemMicrobenchResult {
  sim::LaunchResult launch;
  /// Unique bytes moved per shared-memory request cycle (peak = banks *
  /// bank_bytes when perfectly matched and conflict-free).
  double bytes_per_request_cycle = 0.0;
  /// Request cycles per warp instruction (1.0 = conflict-free).
  double replay_factor = 0.0;
};

SmemMicrobenchResult smem_microbench(sim::Device& dev,
                                     const SmemMicrobenchConfig& cfg = {});

}  // namespace kconv::kernels
