// The paper's special-case convolution kernel (§3, Algorithm 1): single
// input channel, filters resident in constant memory.
//
// Thread layout: the output is tiled into H x W blocks; one thread block of
// W/n threads computes each tile, where n is the vector width that matches
// the computation data width W_CD to the shared-memory bank width W_SMB
// (n = 2 via float2 on Kepler; n = 1 reproduces the paper's "unmatched"
// ablation kernel of Fig. 7b).
//
// Data movement per tile row (Algorithm 1):
//   - one cooperative, coalesced GM read stages the next image row in SM
//     (prefetched one iteration ahead to overlap with compute);
//   - horizontally, threads share row pixels through SM;
//   - vertically, each thread carries a K x (K+n-1) register window so a
//     row read from GM serves the convolutions of K output rows.
// Every in-tile pixel is read from GM exactly once — the communication
// lower bound; only inter-tile halo columns/rows are re-read.
#pragma once

#include <span>

#include "src/analysis/static/xray.hpp"
#include "src/common/types.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

/// Tuning parameters for the special-case kernel.
struct SpecialConvConfig {
  /// Tile width in output pixels (threads per block = block_w / vec_width).
  i64 block_w = 256;
  /// Tile height in output rows.
  i64 block_h = 8;
  /// Computation data width in floats per thread unit; 0 = match the
  /// architecture's bank width (the paper's Eq. 1), 1 = unmatched ablation.
  i64 vec_width = 0;
};

/// Maximum filter size the register window supports (paper evaluates up to
/// 5x5 in the special case; 7 keeps the general-case sizes available too).
inline constexpr i64 kSpecialMaxK = 7;

/// Cheap legality probe for a candidate configuration on an (K, F, Hi, Wi)
/// single-channel problem: empty string when `special_conv` with the same
/// parameters would launch, otherwise the reason it would be rejected
/// (filter size, tile shape, constant-memory capacity, occupancy). Runs no
/// simulation and allocates nothing — autotuner sweeps use it to skip
/// illegal points without exceptions as control flow.
std::string special_conv_check(const sim::Arch& arch, i64 k, i64 f, i64 hi,
                               i64 wi, const SpecialConvConfig& cfg);

/// The kernel's access-site descriptor for kconv-xray (docs/MODEL.md §10):
/// replays Algorithm 1's instruction stream symbolically — same allocation
/// order, same address expressions, same predicates as `special_conv` —
/// without a Device. Callers must pass a configuration `special_conv_check`
/// accepts. `fused` mirrors a non-empty `fuse_bias_relu`.
xray::KernelModel special_conv_xray(const sim::Arch& arch, i64 k, i64 f,
                                    i64 hi, i64 wi,
                                    const SpecialConvConfig& cfg,
                                    bool fused = false);

/// Runs the special-case kernel: `input` is (1, 1, Hi, Wi), `filters` is
/// (F, 1, K, K), output is the valid convolution (1, F, Hi-K+1, Wi-K+1).
///
/// A non-empty `fuse_bias_relu` (F entries, staged in constant memory next
/// to the filters) folds the bias-add + ReLU epilogue into the write-back:
/// out = max(0, conv + bias[f]). Bit-identical to a separate `bias_relu`
/// pass over the unfused output, without the intermediate's GM round-trip.
///
/// Throws kconv::Error on invalid shapes/configs (C != 1, K even or > 7,
/// filters (+ fused bias) exceeding constant memory, misaligned tile sizes).
KernelRun special_conv(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const SpecialConvConfig& cfg = {},
                       const sim::LaunchOptions& opt = {},
                       std::span<const float> fuse_bias_relu = {});

}  // namespace kconv::kernels
