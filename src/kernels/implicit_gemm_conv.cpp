#include "src/kernels/implicit_gemm_conv.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

constexpr i64 kMaxMicro = 8;
constexpr i64 kMaxStage = 16;

template <int N>
class ImplicitGemmKernel {
 public:
  PlanesView in;                 // (C, Hi, Wi)
  PlanesView out;                // (F, Ho, Wo)
  sim::BufferView<float> filt;   // F*C*K*K filter-major
  i64 K = 0, C = 0, F = 0, Ho = 0, Wo = 0;
  i64 BM = 0, BN = 0, BK = 0, TM = 0, TN = 0;
  i64 TXg = 0, TYg = 0;
  i64 stride_a = 0, stride_b = 0;
  u32 a_off = 0, b_off = 0;
  bool prefetch = true;

  /// Block equivalence class for trace replay (docs/MODEL.md §5b). The
  /// only block-dependent predicates are the partial-tile guards
  /// `m0 + m < F` and `p0 + col < Np`: full tiles have them always true,
  /// and each partial flavor matches exactly one b.y (resp. b.x), so its
  /// masks are constants of the class. The im2col div/mod addressing is
  /// non-affine in p0, but replay re-analyzes addresses per block anyway.
  u64 replay_class(sim::Dim3 b) const {
    const i64 Np = Ho * Wo;
    const bool partial_n = (static_cast<i64>(b.x) + 1) * BN > Np;
    const bool partial_m = (static_cast<i64>(b.y) + 1) * BM > F;
    return (partial_n ? 1u : 0u) | (partial_m ? 2u : 0u);
  }

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<float, N>;
    const i64 tx = t.thread_idx.x;
    const i64 ty = t.thread_idx.y;
    const i64 tid = tx + TXg * ty;
    const i64 nthreads = TXg * TYg;
    const i64 m0 = t.block_idx.y * BM;  // filter block
    const i64 p0 = t.block_idx.x * BN;  // output-pixel block
    const i64 KK = K * K;
    const i64 Kdim = C * KK;
    const i64 Np = Ho * Wo;

    auto sh_a = t.shared<float>(a_off, BK * stride_a);
    auto sh_b = t.shared<float>(b_off, BK * stride_b);

    float acc[kMaxMicro][kMaxMicro] = {};
    float fa[kMaxMicro], fb[kMaxMicro];
    float pf_a[kMaxStage] = {}, pf_b[kMaxStage] = {};

    const i64 a_elems = BM * BK;
    const i64 b_elems = BK * BN;
    const i64 a_iters = ceil_div(a_elems, nthreads);
    const i64 b_iters = ceil_div(b_elems, nthreads);
    const i64 steps = ceil_div(Kdim, BK);

    // Stages row `kb` of the implicit B matrix for pixel column p: the
    // im2col decode the explicit pipeline pays memory for, paid here in
    // index arithmetic instead.
    // (c, dy, dx) = unflatten(kb); (y, x) = unflatten(p).

    // kconv-prof scopes re-label accesses only; issue order is untouched.
    for (i64 it = 0; it < a_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 m = (e / BK) % BM, kk = e % BK;
      const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
      float v = 0.0f;
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m, v);
      }
    }
    for (i64 it = 0; it < b_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 r = (e / BN) % BK, col = e % BN;
      const bool ok = e < b_elems && r < Kdim && p0 + col < Np;
      const i64 c = r / KK, dy = (r % KK) / K, dx = r % K;
      const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
      float v = 0.0f;
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        t.alu(12);  // im2col decode: div/mod emulation + bounds checks
        v = co_await t.ld_global_if(
            ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col, v);
      }
    }
    co_await t.sync();

    for (i64 s = 0; s < steps; ++s) {
      const i64 kb = s * BK;
      const bool has_next = s + 1 < steps;

      if (prefetch && has_next) {
        sim::ProfilePhase phase(t, profile::Phase::Prefetch);
        for (i64 it = 0; it < a_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
          const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
          pf_a[it] = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
        }
        for (i64 it = 0; it < b_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 r = kb + BK + (e / BN) % BK, col = e % BN;
          const bool ok = e < b_elems && r < Kdim && p0 + col < Np;
          const i64 c = r / KK, dy = (r % KK) / K, dx = r % K;
          const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
          t.alu(12);
          pf_b[it] = co_await t.ld_global_if(
              ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
        }
      }

      {
        sim::ProfilePhase phase(t, profile::Phase::Compute);
        for (i64 k = 0; k < BK; ++k) {
          for (i64 u = 0; u * N < TM; ++u) {
            VecN v = co_await t.template ld_shared<VecN>(
                sh_a, k * stride_a + (ty + u * TYg) * N);
            for (int jj = 0; jj < N; ++jj) fa[u * N + jj] = v[jj];
          }
          for (i64 u = 0; u * N < TN; ++u) {
            VecN v = co_await t.template ld_shared<VecN>(
                sh_b, k * stride_b + (tx + u * TXg) * N);
            for (int jj = 0; jj < N; ++jj) fb[u * N + jj] = v[jj];
          }
          for (i64 i = 0; i < TM; ++i) {
            for (i64 ju = 0; ju * N < TN; ++ju) {
              VecN xv, av;
              for (int jj = 0; jj < N; ++jj) {
                xv[jj] = fb[ju * N + jj];
                av[jj] = acc[i][ju * N + jj];
              }
              av = t.fma(xv, fa[i], av);
              for (int jj = 0; jj < N; ++jj) acc[i][ju * N + jj] = av[jj];
            }
          }
        }
      }
      co_await t.sync();

      if (has_next) {
        if (prefetch) {
          sim::ProfilePhase phase(t, profile::Phase::SmemStage);
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = e % BK;
            co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m,
                                    pf_a[it]);
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col,
                                    pf_b[it]);
          }
        } else {
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
            const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
            float v = 0.0f;
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              v = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(e < a_elems, sh_a,
                                      (e % BK) * stride_a + m, v);
            }
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            const i64 kk = kb + BK + r;
            const bool ok = e < b_elems && kk < Kdim && p0 + col < Np;
            const i64 c = kk / KK, dy = (kk % KK) / K, dx = kk % K;
            const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
            float v = 0.0f;
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              t.alu(12);
              v = co_await t.ld_global_if(
                  ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col,
                                      v);
            }
          }
        }
      }
      co_await t.sync();
    }

    // Scatter the micro-tile to the output planes. Rows are filters, so
    // this is the uncoalesced-by-nature phase shared with the paper's
    // general kernel.
    sim::ProfilePhase phase(t, profile::Phase::Writeback);
    for (i64 i = 0; i < TM; ++i) {
      const i64 f = m0 + (ty + (i / N) * TYg) * N + (i % N);
      for (i64 j = 0; j < TN; ++j) {
        const i64 p = p0 + (tx + (j / N) * TXg) * N + (j % N);
        const bool ok = f < F && p < Np;
        t.alu(2);
        co_await t.st_global_if(ok, out.buf,
                                ok ? out.idx(f, p / Wo, p % Wo) : 0,
                                acc[i][j]);
      }
    }
  }
};

template <int N>
KernelRun run_implicit(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const ImplicitGemmConfig& cfg,
                       const sim::LaunchOptions& opt) {
  const i64 K = filters.h();
  const i64 C = input.c();
  const i64 F = filters.n();
  const i64 Ho = tensor::conv_out_extent(input.h(), K, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), K, 0);

  ImplicitGemmKernel<N> k;
  k.K = K;
  k.C = C;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.BM = cfg.bm;
  k.BN = cfg.bn;
  k.BK = cfg.bk;
  k.TM = cfg.tm;
  k.TN = cfg.tn;
  k.TXg = cfg.bn / cfg.tn;
  k.TYg = cfg.bm / cfg.tm;
  k.prefetch = cfg.prefetch;

  const i64 nthreads = k.TXg * k.TYg;
  KCONV_CHECK(ceil_div(cfg.bm * cfg.bk, nthreads) <= kMaxStage &&
                  ceil_div(cfg.bk * cfg.bn, nthreads) <= kMaxStage,
              "tile staging work exceeds per-thread register capacity");

  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  DevicePlanes d_out(dev, F, Ho, Wo);
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt = d_filt.view();

  sim::SharedLayout smem;
  const i64 pad = dev.arch().smem_bank_bytes / sizeof(float);
  k.stride_a = cfg.bm + pad;
  k.stride_b = cfg.bn;
  k.a_off = smem.alloc<float>(cfg.bk * k.stride_a);
  k.b_off = smem.alloc<float>(cfg.bk * k.stride_b);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Ho * Wo, cfg.bn)),
                      static_cast<u32>(ceil_div(F, cfg.bm)), 1};
  lc.block = sim::Dim3{static_cast<u32>(k.TXg), static_cast<u32>(k.TYg), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.tm * cfg.tn + cfg.tm + cfg.tn + 2 * kMaxStage + 24, dev.arch().max_regs_per_thread));

  sim::LaunchOptions lopt = opt;
  if (lopt.plan_key.empty()) {
    lopt.plan_key = strf(
        "implicit_gemm|v1|n=%d|k=%lld|c=%lld|f=%lld|hi=%lld|wi=%lld|bm=%lld|"
        "bn=%lld|bk=%lld|tm=%lld|tn=%lld|pf=%d",
        N, static_cast<long long>(K), static_cast<long long>(C),
        static_cast<long long>(F), static_cast<long long>(input.h()),
        static_cast<long long>(input.w()), static_cast<long long>(cfg.bm),
        static_cast<long long>(cfg.bn), static_cast<long long>(cfg.bk),
        static_cast<long long>(cfg.tm), static_cast<long long>(cfg.tn),
        cfg.prefetch ? 1 : 0);
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, lopt);
  if (opt.profile) {
    // GEMM tiling traffic: the A (filter) panel is re-read once per
    // pixel-block column and the implicit B panel once per filter-block
    // row; predicated-off lanes load nothing, so the bound is exact.
    profile::RooflineHints& h = run.launch.profile.hints;
    h.kind = profile::RooflineHints::Kind::ImplicitGemm;
    h.k = static_cast<u32>(K);
    const i64 Kdim = C * K * K;
    const i64 Np = Ho * Wo;
    h.gm_load_bound_bytes =
        static_cast<double>(sizeof(float)) *
        (static_cast<double>(F * Kdim) * static_cast<double>(lc.grid.x) +
         static_cast<double>(Kdim * Np) * static_cast<double>(lc.grid.y));
  }
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

ImplicitGemmConfig implicit_gemm_auto_config(i64 f, i64 c, i64 k) {
  // cuDNN v5 ships a small menu of pre-compiled SASS GEMM tiles; the
  // 128-row, K-slab-32 shape is the workhorse. Problems smaller than the
  // tile are zero-padded into it — the source of its special-case (C=1,
  // modest F) collapse that Fig. 7 measures.
  ImplicitGemmConfig cfg;
  cfg.bk = 32;
  cfg.bm = 128;
  cfg.tm = 8;
  cfg.bn = 64;
  cfg.tn = 4;
  (void)f;
  (void)c;
  (void)k;
  return cfg;
}

KernelRun implicit_gemm_conv(sim::Device& dev, const tensor::Tensor& input,
                             const tensor::Tensor& filters,
                             const ImplicitGemmConfig& cfg,
                             const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "implicit GEMM operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");

  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);
  KCONV_CHECK(n == 1 || n == 2 || n == 4, "unsupported vector width");
  KCONV_CHECK(cfg.tm >= 1 && cfg.tm <= kMaxMicro && cfg.tn >= 1 &&
                  cfg.tn <= kMaxMicro,
              "micro-tile exceeds register capacity");
  KCONV_CHECK(cfg.bm % cfg.tm == 0 && cfg.bn % cfg.tn == 0,
              "tile extents must be multiples of the micro-tile");
  KCONV_CHECK(cfg.tm % n == 0 && cfg.tn % n == 0,
              "micro-tile must be a multiple of the vector width");

  switch (n) {
    case 1: return run_implicit<1>(dev, input, filters, cfg, opt);
    case 2: return run_implicit<2>(dev, input, filters, cfg, opt);
    default: return run_implicit<4>(dev, input, filters, cfg, opt);
  }
}

}  // namespace kconv::kernels
