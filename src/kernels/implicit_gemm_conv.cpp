#include "src/kernels/implicit_gemm_conv.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

constexpr i64 kMaxMicro = 8;
constexpr i64 kMaxStage = 16;

template <int N>
class ImplicitGemmKernel {
 public:
  PlanesView in;                 // (C, Hi, Wi)
  PlanesView out;                // (F, Ho, Wo)
  sim::BufferView<float> filt;   // F*C*K*K filter-major
  i64 K = 0, C = 0, F = 0, Ho = 0, Wo = 0;
  i64 BM = 0, BN = 0, BK = 0, TM = 0, TN = 0;
  i64 TXg = 0, TYg = 0;
  i64 stride_a = 0, stride_b = 0;
  u32 a_off = 0, b_off = 0;
  bool prefetch = true;

  /// Block equivalence class for trace replay (docs/MODEL.md §5b). The
  /// only block-dependent predicates are the partial-tile guards
  /// `m0 + m < F` and `p0 + col < Np`: full tiles have them always true,
  /// and each partial flavor matches exactly one b.y (resp. b.x), so its
  /// masks are constants of the class. The im2col div/mod addressing is
  /// non-affine in p0, but replay re-analyzes addresses per block anyway.
  u64 replay_class(sim::Dim3 b) const {
    const i64 Np = Ho * Wo;
    const bool partial_n = (static_cast<i64>(b.x) + 1) * BN > Np;
    const bool partial_m = (static_cast<i64>(b.y) + 1) * BM > F;
    return (partial_n ? 1u : 0u) | (partial_m ? 2u : 0u);
  }

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<float, N>;
    const i64 tx = t.thread_idx.x;
    const i64 ty = t.thread_idx.y;
    const i64 tid = tx + TXg * ty;
    const i64 nthreads = TXg * TYg;
    const i64 m0 = t.block_idx.y * BM;  // filter block
    const i64 p0 = t.block_idx.x * BN;  // output-pixel block
    const i64 KK = K * K;
    const i64 Kdim = C * KK;
    const i64 Np = Ho * Wo;

    auto sh_a = t.shared<float>(a_off, BK * stride_a);
    auto sh_b = t.shared<float>(b_off, BK * stride_b);

    float acc[kMaxMicro][kMaxMicro] = {};
    float fa[kMaxMicro], fb[kMaxMicro];
    float pf_a[kMaxStage] = {}, pf_b[kMaxStage] = {};

    const i64 a_elems = BM * BK;
    const i64 b_elems = BK * BN;
    const i64 a_iters = ceil_div(a_elems, nthreads);
    const i64 b_iters = ceil_div(b_elems, nthreads);
    const i64 steps = ceil_div(Kdim, BK);

    // Stages row `kb` of the implicit B matrix for pixel column p: the
    // im2col decode the explicit pipeline pays memory for, paid here in
    // index arithmetic instead.
    // (c, dy, dx) = unflatten(kb); (y, x) = unflatten(p).

    // kconv-prof scopes re-label accesses only; issue order is untouched.
    for (i64 it = 0; it < a_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 m = (e / BK) % BM, kk = e % BK;
      const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
      float v = 0.0f;
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m, v);
      }
    }
    for (i64 it = 0; it < b_iters; ++it) {
      const i64 e = tid + it * nthreads;
      const i64 r = (e / BN) % BK, col = e % BN;
      const bool ok = e < b_elems && r < Kdim && p0 + col < Np;
      const i64 c = r / KK, dy = (r % KK) / K, dx = r % K;
      const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
      float v = 0.0f;
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        t.alu(12);  // im2col decode: div/mod emulation + bounds checks
        v = co_await t.ld_global_if(
            ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col, v);
      }
    }
    co_await t.sync();

    for (i64 s = 0; s < steps; ++s) {
      const i64 kb = s * BK;
      const bool has_next = s + 1 < steps;

      if (prefetch && has_next) {
        sim::ProfilePhase phase(t, profile::Phase::Prefetch);
        for (i64 it = 0; it < a_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
          const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
          pf_a[it] = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
        }
        for (i64 it = 0; it < b_iters; ++it) {
          const i64 e = tid + it * nthreads;
          const i64 r = kb + BK + (e / BN) % BK, col = e % BN;
          const bool ok = e < b_elems && r < Kdim && p0 + col < Np;
          const i64 c = r / KK, dy = (r % KK) / K, dx = r % K;
          const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
          t.alu(12);
          pf_b[it] = co_await t.ld_global_if(
              ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
        }
      }

      {
        sim::ProfilePhase phase(t, profile::Phase::Compute);
        for (i64 k = 0; k < BK; ++k) {
          for (i64 u = 0; u * N < TM; ++u) {
            VecN v = co_await t.template ld_shared<VecN>(
                sh_a, k * stride_a + (ty + u * TYg) * N);
            for (int jj = 0; jj < N; ++jj) fa[u * N + jj] = v[jj];
          }
          for (i64 u = 0; u * N < TN; ++u) {
            VecN v = co_await t.template ld_shared<VecN>(
                sh_b, k * stride_b + (tx + u * TXg) * N);
            for (int jj = 0; jj < N; ++jj) fb[u * N + jj] = v[jj];
          }
          for (i64 i = 0; i < TM; ++i) {
            for (i64 ju = 0; ju * N < TN; ++ju) {
              VecN xv, av;
              for (int jj = 0; jj < N; ++jj) {
                xv[jj] = fb[ju * N + jj];
                av[jj] = acc[i][ju * N + jj];
              }
              av = t.fma(xv, fa[i], av);
              for (int jj = 0; jj < N; ++jj) acc[i][ju * N + jj] = av[jj];
            }
          }
        }
      }
      co_await t.sync();

      if (has_next) {
        if (prefetch) {
          sim::ProfilePhase phase(t, profile::Phase::SmemStage);
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = e % BK;
            co_await t.st_shared_if(e < a_elems, sh_a, kk * stride_a + m,
                                    pf_a[it]);
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col,
                                    pf_b[it]);
          }
        } else {
          for (i64 it = 0; it < a_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 m = (e / BK) % BM, kk = kb + BK + e % BK;
            const bool ok = e < a_elems && m0 + m < F && kk < Kdim;
            float v = 0.0f;
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              v = co_await t.ld_global_if(ok, filt, (m0 + m) * Kdim + kk);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(e < a_elems, sh_a,
                                      (e % BK) * stride_a + m, v);
            }
          }
          for (i64 it = 0; it < b_iters; ++it) {
            const i64 e = tid + it * nthreads;
            const i64 r = (e / BN) % BK, col = e % BN;
            const i64 kk = kb + BK + r;
            const bool ok = e < b_elems && kk < Kdim && p0 + col < Np;
            const i64 c = kk / KK, dy = (kk % KK) / K, dx = kk % K;
            const i64 y = (p0 + col) / Wo, x = (p0 + col) % Wo;
            float v = 0.0f;
            {
              sim::ProfilePhase phase(t, profile::Phase::GmLoad);
              t.alu(12);
              v = co_await t.ld_global_if(
                  ok, in.buf, ok ? in.idx(c, y + dy, x + dx) : 0);
            }
            {
              sim::ProfilePhase phase(t, profile::Phase::SmemStage);
              co_await t.st_shared_if(e < b_elems, sh_b, r * stride_b + col,
                                      v);
            }
          }
        }
      }
      co_await t.sync();
    }

    // Scatter the micro-tile to the output planes. Rows are filters, so
    // this is the uncoalesced-by-nature phase shared with the paper's
    // general kernel.
    sim::ProfilePhase phase(t, profile::Phase::Writeback);
    for (i64 i = 0; i < TM; ++i) {
      const i64 f = m0 + (ty + (i / N) * TYg) * N + (i % N);
      for (i64 j = 0; j < TN; ++j) {
        const i64 p = p0 + (tx + (j / N) * TXg) * N + (j % N);
        const bool ok = f < F && p < Np;
        t.alu(2);
        co_await t.st_global_if(ok, out.buf,
                                ok ? out.idx(f, p / Wo, p % Wo) : 0,
                                acc[i][j]);
      }
    }
  }
};

template <int N>
KernelRun run_implicit(sim::Device& dev, const tensor::Tensor& input,
                       const tensor::Tensor& filters,
                       const ImplicitGemmConfig& cfg,
                       const sim::LaunchOptions& opt) {
  const i64 K = filters.h();
  const i64 C = input.c();
  const i64 F = filters.n();
  const i64 Ho = tensor::conv_out_extent(input.h(), K, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), K, 0);

  ImplicitGemmKernel<N> k;
  k.K = K;
  k.C = C;
  k.F = F;
  k.Ho = Ho;
  k.Wo = Wo;
  k.BM = cfg.bm;
  k.BN = cfg.bn;
  k.BK = cfg.bk;
  k.TM = cfg.tm;
  k.TN = cfg.tn;
  k.TXg = cfg.bn / cfg.tn;
  k.TYg = cfg.bm / cfg.tm;
  k.prefetch = cfg.prefetch;

  const i64 nthreads = k.TXg * k.TYg;
  KCONV_CHECK(ceil_div(cfg.bm * cfg.bk, nthreads) <= kMaxStage &&
                  ceil_div(cfg.bk * cfg.bn, nthreads) <= kMaxStage,
              "tile staging work exceeds per-thread register capacity");

  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  DevicePlanes d_out(dev, F, Ho, Wo);
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt = d_filt.view();

  sim::SharedLayout smem;
  const i64 pad = dev.arch().smem_bank_bytes / sizeof(float);
  k.stride_a = cfg.bm + pad;
  k.stride_b = cfg.bn;
  k.a_off = smem.alloc<float>(cfg.bk * k.stride_a);
  k.b_off = smem.alloc<float>(cfg.bk * k.stride_b);

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Ho * Wo, cfg.bn)),
                      static_cast<u32>(ceil_div(F, cfg.bm)), 1};
  lc.block = sim::Dim3{static_cast<u32>(k.TXg), static_cast<u32>(k.TYg), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.tm * cfg.tn + cfg.tm + cfg.tn + 2 * kMaxStage + 24, dev.arch().max_regs_per_thread));

  sim::LaunchOptions lopt = opt;
  const std::string canonical_key = strf(
      "implicit_gemm|v1|n=%d|k=%lld|c=%lld|f=%lld|hi=%lld|wi=%lld|bm=%lld|"
      "bn=%lld|bk=%lld|tm=%lld|tn=%lld|pf=%d",
      N, static_cast<long long>(K), static_cast<long long>(C),
      static_cast<long long>(F), static_cast<long long>(input.h()),
      static_cast<long long>(input.w()), static_cast<long long>(cfg.bm),
      static_cast<long long>(cfg.bn), static_cast<long long>(cfg.bk),
      static_cast<long long>(cfg.tm), static_cast<long long>(cfg.tn),
      cfg.prefetch ? 1 : 0);
  if (lopt.plan_key.empty()) lopt.plan_key = canonical_key;
  // Warm-plan pre-validation (docs/MODEL.md §10): stamp the launch with the
  // kernel's xray signature so a stored plan captured under a different
  // access pattern is rejected ("stale-static-signature"), not replayed.
  // Memoized: the block-0 symbolic walk runs once per config per process.
  if (lopt.plan_cache != nullptr && lopt.plan_static_signature == 0) {
    lopt.plan_static_signature = xray::memoized_signature(
        dev.arch(), canonical_key, [&] {
          return implicit_gemm_xray(dev.arch(), K, C, F, input.h(),
                                    input.w(), cfg);
        });
  }

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, lopt);
  if (opt.profile) {
    // GEMM tiling traffic: the A (filter) panel is re-read once per
    // pixel-block column and the implicit B panel once per filter-block
    // row; predicated-off lanes load nothing, so the bound is exact.
    profile::RooflineHints& h = run.launch.profile.hints;
    h.kind = profile::RooflineHints::Kind::ImplicitGemm;
    h.k = static_cast<u32>(K);
    const i64 Kdim = C * K * K;
    const i64 Np = Ho * Wo;
    h.gm_load_bound_bytes =
        static_cast<double>(sizeof(float)) *
        (static_cast<double>(F * Kdim) * static_cast<double>(lc.grid.x) +
         static_cast<double>(Kdim * Np) * static_cast<double>(lc.grid.y));
  }
  if (!run.launch.sampled && !run.launch.analytic) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace

std::string implicit_gemm_check(const sim::Arch& arch, i64 k, i64 c, i64 f,
                                i64 hi, i64 wi,
                                const ImplicitGemmConfig& cfg) {
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);
  if (n != 1 && n != 2 && n != 4) {
    return strf("unsupported vector width %lld", static_cast<long long>(n));
  }
  if (cfg.tm < 1 || cfg.tm > kMaxMicro || cfg.tn < 1 || cfg.tn > kMaxMicro) {
    return "micro-tile exceeds register capacity";
  }
  if (cfg.bm % cfg.tm != 0 || cfg.bn % cfg.tn != 0) {
    return "tile extents must be multiples of the micro-tile";
  }
  if (cfg.tm % n != 0 || cfg.tn % n != 0) {
    return "micro-tile must be a multiple of the vector width";
  }
  const i64 Ho = tensor::conv_out_extent(hi, k, 0);
  const i64 Wo = tensor::conv_out_extent(wi, k, 0);
  if (Ho < 1 || Wo < 1) return "image smaller than the filter";
  const i64 nthreads = (cfg.bn / cfg.tn) * (cfg.bm / cfg.tm);
  if (ceil_div(cfg.bm * cfg.bk, nthreads) > kMaxStage ||
      ceil_div(cfg.bk * cfg.bn, nthreads) > kMaxStage) {
    return "tile staging work exceeds per-thread register capacity";
  }
  (void)c;

  sim::SharedLayout smem;
  const i64 pad = arch.smem_bank_bytes / sizeof(float);
  (void)smem.alloc<float>(cfg.bk * (cfg.bm + pad));
  (void)smem.alloc<float>(cfg.bk * cfg.bn);
  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Ho * Wo, cfg.bn)),
                      static_cast<u32>(ceil_div(f, cfg.bm)), 1};
  lc.block = sim::Dim3{static_cast<u32>(cfg.bn / cfg.tn),
                       static_cast<u32>(cfg.bm / cfg.tm), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.tm * cfg.tn + cfg.tm + cfg.tn + 2 * kMaxStage + 24,
      arch.max_regs_per_thread));
  return sim::launch_feasibility_error(arch, lc);
}

xray::KernelModel implicit_gemm_xray(const sim::Arch& arch, i64 k, i64 c,
                                     i64 f, i64 hi, i64 wi,
                                     const ImplicitGemmConfig& cfg) {
  const std::string err = implicit_gemm_check(arch, k, c, f, hi, wi, cfg);
  KCONV_CHECK(err.empty(), err);
  i64 n = cfg.vec_width;
  if (n == 0) n = arch.smem_bank_bytes / sizeof(float);

  // Every parameter below replicates run_implicit<N> line for line: the
  // same DevicePlanes pitches, the same GM allocation order (image, output,
  // filters), the same SharedLayout offsets and padded A-panel stride.
  struct P {
    i64 K, C, F, Hi, Wi, Ho, Wo, BM, BN, BK, TM, TN, TXg, TYg, N;
    i64 stride_a, stride_b;
    i64 nthreads, a_elems, b_elems, a_iters, b_iters, steps, Kdim, Np;
    i64 in_pitch, out_pitch;
    u64 in_base, out_base, filt_base;
    u64 sh_a, sh_b;
    bool prefetch;
  } p{};
  p.K = k;
  p.C = c;
  p.F = f;
  p.Hi = hi;
  p.Wi = wi;
  p.Ho = tensor::conv_out_extent(hi, k, 0);
  p.Wo = tensor::conv_out_extent(wi, k, 0);
  p.BM = cfg.bm;
  p.BN = cfg.bn;
  p.BK = cfg.bk;
  p.TM = cfg.tm;
  p.TN = cfg.tn;
  p.TXg = cfg.bn / cfg.tn;
  p.TYg = cfg.bm / cfg.tm;
  p.N = n;
  p.nthreads = p.TXg * p.TYg;
  p.a_elems = cfg.bm * cfg.bk;
  p.b_elems = cfg.bk * cfg.bn;
  p.a_iters = ceil_div(p.a_elems, p.nthreads);
  p.b_iters = ceil_div(p.b_elems, p.nthreads);
  p.Kdim = c * k * k;
  p.Np = p.Ho * p.Wo;
  p.steps = ceil_div(p.Kdim, cfg.bk);
  p.prefetch = cfg.prefetch;

  xray::AddressSpace gm;
  p.in_base = gm.alloc_planes(c, hi, wi, p.in_pitch);
  p.out_base = gm.alloc_planes(f, p.Ho, p.Wo, p.out_pitch);
  p.filt_base = gm.alloc_floats(f * c * k * k);

  sim::SharedLayout smem;
  const i64 pad = arch.smem_bank_bytes / sizeof(float);
  p.stride_a = cfg.bm + pad;
  p.stride_b = cfg.bn;
  p.sh_a = smem.alloc<float>(cfg.bk * p.stride_a);
  p.sh_b = smem.alloc<float>(cfg.bk * p.stride_b);

  xray::KernelModel m;
  m.kernel = "implicit_gemm";
  m.cfg.grid = sim::Dim3{static_cast<u32>(ceil_div(p.Np, cfg.bn)),
                         static_cast<u32>(ceil_div(f, cfg.bm)), 1};
  m.cfg.block = sim::Dim3{static_cast<u32>(p.TXg), static_cast<u32>(p.TYg),
                          1};
  m.cfg.shared_bytes = smem.size();
  m.cfg.regs_per_thread = static_cast<u32>(std::min<i64>(
      cfg.tm * cfg.tn + cfg.tm + cfg.tn + 2 * kMaxStage + 24,
      arch.max_regs_per_thread));
  // The baseline's own tiling bound (not the paper's §3/§4 conv bound): the
  // A panel once per pixel-block column, the implicit B panel once per
  // filter-block row, each output written once. Its gap to the §3/§4 bound
  // is exactly the K*K re-read Fig. 7 measures.
  const double fs = static_cast<double>(sizeof(float));
  m.min_gm_bytes =
      fs * static_cast<double>(f * p.Kdim) *
          static_cast<double>(m.cfg.grid.x) +
      fs * static_cast<double>(p.Kdim * p.Np) *
          static_cast<double>(m.cfg.grid.y) +
      fs * static_cast<double>(f) * static_cast<double>(p.Np);

  enum Site : u32 {
    kGmAStage, kSmAStage, kGmBStage, kSmBStage,
    kSmACompute, kSmBCompute,
    kGmANext, kGmBNext, kSmAPublish, kSmBPublish,
    kGmWriteback,
  };
  m.sites = {
      {"gm-a-stage", sim::Op::LoadGlobal, "§5 baseline [8] filter panel",
       false},
      {"sm-a-stage", sim::Op::StoreShared, "§5 baseline [8] padded A panel",
       false},
      {"gm-b-stage", sim::Op::LoadGlobal, "§5 baseline [8] im2col decode",
       false},
      {"sm-b-stage", sim::Op::StoreShared, "§5 baseline [8] B panel", false},
      {"sm-a-compute", sim::Op::LoadShared, "§5 baseline [8]", false},
      {"sm-b-compute", sim::Op::LoadShared, "§5 baseline [8]", false},
      {"gm-a-next", sim::Op::LoadGlobal, "§5 baseline [8] filter panel",
       false},
      {"gm-b-next", sim::Op::LoadGlobal, "§5 baseline [8] im2col decode",
       false},
      {"sm-a-publish", sim::Op::StoreShared, "§5 baseline [8] padded A panel",
       false},
      {"sm-b-publish", sim::Op::StoreShared, "§5 baseline [8] B panel",
       false},
      {"gm-writeback", sim::Op::StoreGlobal, "§5 baseline [8] scatter",
       false},
  };

  m.emit = [p](sim::Dim3 b, xray::ModelSink& sink) {
    constexpr u32 kNone = ~0u;
    const u32 vb = static_cast<u32>(p.N * sizeof(float));
    const u32 sb = static_cast<u32>(sizeof(float));
    const i64 m0 = static_cast<i64>(b.y) * p.BM;
    const i64 p0 = static_cast<i64>(b.x) * p.BN;
    const i64 KK = p.K * p.K;
    const auto in_addr = [&p](i64 ci, i64 y, i64 x) {
      return p.in_base + static_cast<u64>(
                             (((ci * p.Hi + y) * p.in_pitch) + x) *
                             static_cast<i64>(sizeof(float)));
    };
    const auto out_addr = [&p](i64 pf, i64 y, i64 x) {
      return p.out_base + static_cast<u64>(
                              (((pf * p.Ho + y) * p.out_pitch) + x) *
                              static_cast<i64>(sizeof(float)));
    };
    const auto filt_addr = [&p](i64 idx) {
      return p.filt_base + static_cast<u64>(idx) * sizeof(float);
    };
    const auto sm_a = [&p](i64 idx) {
      return p.sh_a + static_cast<u64>(idx) * sizeof(float);
    };
    const auto sm_b = [&p](i64 idx) {
      return p.sh_b + static_cast<u64>(idx) * sizeof(float);
    };
    std::vector<xray::LaneAccess> lanes(static_cast<size_t>(p.nthreads));
    const auto each = [&](auto&& fill) {
      for (i64 t = 0; t < p.nthreads; ++t) {
        lanes[static_cast<size_t>(t)] = fill(t);
      }
    };

    // The A-panel staging loop for K-slab base `kbase`: GM-load and/or
    // SM-store halves (prefetch splits them across a barrier). The SM
    // store's predicate is the block-invariant `e < a_elems` — out-of-range
    // filter rows stage zeros.
    const auto a_stage = [&](i64 kbase, u32 gm_site, u32 sm_site) {
      for (i64 it = 0; it < p.a_iters; ++it) {
        if (gm_site != kNone) {
          each([&](i64 t) -> xray::LaneAccess {
            const i64 e = t + it * p.nthreads;
            const i64 mm = (e / p.BK) % p.BM;
            const i64 kk = kbase + e % p.BK;
            const bool ok = e < p.a_elems && m0 + mm < p.F && kk < p.Kdim;
            return {ok ? filt_addr((m0 + mm) * p.Kdim + kk) : 0, sb, ok, ok};
          });
          sink.site(gm_site, lanes);
        }
        if (sm_site != kNone) {
          each([&](i64 t) -> xray::LaneAccess {
            const i64 e = t + it * p.nthreads;
            const i64 mm = (e / p.BK) % p.BM;
            const bool ok = e < p.a_elems;
            return {sm_a((e % p.BK) * p.stride_a + mm), sb, ok, ok};
          });
          sink.site(sm_site, lanes);
        }
      }
    };
    // The B-panel staging loop: each GM iteration spends 12 uniform ALU
    // lane-ops on the im2col div/mod decode before the load issues.
    const auto b_stage = [&](i64 kbase, u32 gm_site, u32 sm_site) {
      for (i64 it = 0; it < p.b_iters; ++it) {
        if (gm_site != kNone) {
          sink.alu(12);
          each([&](i64 t) -> xray::LaneAccess {
            const i64 e = t + it * p.nthreads;
            const i64 r = kbase + (e / p.BN) % p.BK;
            const i64 col = e % p.BN;
            const bool ok = e < p.b_elems && r < p.Kdim && p0 + col < p.Np;
            const i64 ci = r / KK, dy = (r % KK) / p.K, dx = r % p.K;
            const i64 y = (p0 + col) / p.Wo, x = (p0 + col) % p.Wo;
            return {ok ? in_addr(ci, y + dy, x + dx) : 0, sb, ok, ok};
          });
          sink.site(gm_site, lanes);
        }
        if (sm_site != kNone) {
          each([&](i64 t) -> xray::LaneAccess {
            const i64 e = t + it * p.nthreads;
            const i64 r = (e / p.BN) % p.BK;
            const bool ok = e < p.b_elems;
            return {sm_b(r * p.stride_b + e % p.BN), sb, ok, ok};
          });
          sink.site(sm_site, lanes);
        }
      }
    };

    // The initial fill.
    a_stage(0, kGmAStage, kSmAStage);
    b_stage(0, kGmBStage, kSmBStage);
    sink.sync();

    for (i64 s = 0; s < p.steps; ++s) {
      const i64 kb = s * p.BK;
      const bool has_next = s + 1 < p.steps;

      if (p.prefetch && has_next) {
        a_stage(kb + p.BK, kGmANext, kNone);
        b_stage(kb + p.BK, kGmBNext, kNone);
      }

      // The micro-tiled GEMM inner loop: A fragments broadcast across the
      // warp's X extent, B fragments stride conflict-free.
      for (i64 kk = 0; kk < p.BK; ++kk) {
        for (i64 u = 0; u * p.N < p.TM; ++u) {
          each([&](i64 t) -> xray::LaneAccess {
            const i64 ty = t / p.TXg;
            return {sm_a(kk * p.stride_a + (ty + u * p.TYg) * p.N), vb, true,
                    true};
          });
          sink.site(kSmACompute, lanes);
        }
        for (i64 u = 0; u * p.N < p.TN; ++u) {
          each([&](i64 t) -> xray::LaneAccess {
            const i64 tx = t % p.TXg;
            return {sm_b(kk * p.stride_b + (tx + u * p.TXg) * p.N), vb, true,
                    true};
          });
          sink.site(kSmBCompute, lanes);
        }
        sink.fma(static_cast<u64>(p.TM * p.TN));
      }
      sink.sync();

      if (has_next) {
        if (p.prefetch) {
          a_stage(0, kNone, kSmAPublish);
          b_stage(0, kNone, kSmBPublish);
        } else {
          a_stage(kb + p.BK, kGmANext, kSmAPublish);
          b_stage(kb + p.BK, kGmBNext, kSmBPublish);
        }
      }
      sink.sync();
    }

    // Scatter the micro-tile: rows are filters, so contiguous X threads hit
    // different output planes.
    for (i64 i = 0; i < p.TM; ++i) {
      for (i64 j = 0; j < p.TN; ++j) {
        sink.alu(2);
        each([&](i64 t) -> xray::LaneAccess {
          const i64 tx = t % p.TXg, ty = t / p.TXg;
          const i64 ff = m0 + (ty + (i / p.N) * p.TYg) * p.N + i % p.N;
          const i64 pp = p0 + (tx + (j / p.N) * p.TXg) * p.N + j % p.N;
          const bool ok = ff < p.F && pp < p.Np;
          return {ok ? out_addr(ff, pp / p.Wo, pp % p.Wo) : 0, sb, ok, true};
        });
        sink.site(kGmWriteback, lanes);
      }
    }
  };
  return m;
}

ImplicitGemmConfig implicit_gemm_auto_config(i64 f, i64 c, i64 k) {
  // cuDNN v5 ships a small menu of pre-compiled SASS GEMM tiles; the
  // 128-row, K-slab-32 shape is the workhorse. Problems smaller than the
  // tile are zero-padded into it — the source of its special-case (C=1,
  // modest F) collapse that Fig. 7 measures.
  ImplicitGemmConfig cfg;
  cfg.bk = 32;
  cfg.bm = 128;
  cfg.tm = 8;
  cfg.bn = 64;
  cfg.tn = 4;
  (void)f;
  (void)c;
  (void)k;
  return cfg;
}

KernelRun implicit_gemm_conv(sim::Device& dev, const tensor::Tensor& input,
                             const tensor::Tensor& filters,
                             const ImplicitGemmConfig& cfg,
                             const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "implicit GEMM operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");

  i64 n = cfg.vec_width;
  if (n == 0) n = dev.arch().smem_bank_bytes / sizeof(float);
  KCONV_CHECK(n == 1 || n == 2 || n == 4, "unsupported vector width");
  KCONV_CHECK(cfg.tm >= 1 && cfg.tm <= kMaxMicro && cfg.tn >= 1 &&
                  cfg.tn <= kMaxMicro,
              "micro-tile exceeds register capacity");
  KCONV_CHECK(cfg.bm % cfg.tm == 0 && cfg.bn % cfg.tn == 0,
              "tile extents must be multiples of the micro-tile");
  KCONV_CHECK(cfg.tm % n == 0 && cfg.tn % n == 0,
              "micro-tile must be a multiple of the vector width");

  switch (n) {
    case 1: return run_implicit<1>(dev, input, filters, cfg, opt);
    case 2: return run_implicit<2>(dev, input, filters, cfg, opt);
    default: return run_implicit<4>(dev, input, filters, cfg, opt);
  }
}

}  // namespace kconv::kernels
