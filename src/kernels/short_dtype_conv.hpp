// Short-data-type convolution — the paper's conclusion made concrete.
//
// "One of the recent development trends of CNNs is to use shorter data
//  types... For these data types, mismatch between the SM bank width and
//  the computation data width exists even for architectures with 4-byte SM
//  bank width. As a result, our proposed model and method will benefit
//  applications using these data types."
//
// This runs Algorithm 1 with fp16 or int8 storage (fp32 arithmetic). The
// matched vector width follows Eq. 1: n = W_SMB / sizeof(T) — half8 /
// char8 on Kepler's 8-byte banks, half2 / char4 on 4-byte-bank parts.
// vec_width = 1 gives the conventional (mismatched) kernel for the E1
// extension experiment.
#pragma once

#include "src/common/types.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct ShortDtypeConvConfig {
  i64 block_w = 256;
  i64 block_h = 8;
  /// Elements per thread unit; 0 = match the bank width (Eq. 1).
  i64 vec_width = 0;
  /// Storage element type for the image and output (filters stay fp32 in
  /// constant memory; arithmetic is fp32).
  DType dtype = DType::F16;
};

/// Special-case (C = 1) convolution over short storage types. The returned
/// output tensor is fp32 on the host, with the storage type's rounding or
/// saturation applied (that is the point: the numerics match a real
/// short-dtype pipeline, not the fp32 oracle bit-for-bit).
KernelRun short_dtype_conv(sim::Device& dev, const tensor::Tensor& input,
                           const tensor::Tensor& filters,
                           const ShortDtypeConvConfig& cfg = {},
                           const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
