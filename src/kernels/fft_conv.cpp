#include "src/kernels/fft_conv.hpp"

#include <algorithm>
#include <cmath>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"
#include "src/tensor/fft_ref.hpp"

namespace kconv::kernels {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Complex planes live in a flat float buffer: plane b, row r, column x at
/// float index ((b*rows + r)*cols + x) * 2 (interleaved re, im). Every
/// complex access is an 8-byte vec2f — matched to Kepler's bank width.
i64 cidx(i64 b, i64 rows, i64 cols, i64 r, i64 x) {
  return ((b * rows + r) * cols + x) * 2;
}

/// Bit reversal of `i` within `bits` bits.
u32 bit_reverse(u32 i, u32 bits) {
  u32 r = 0;
  for (u32 b = 0; b < bits; ++b) {
    r = (r << 1) | ((i >> b) & 1);
  }
  return r;
}

/// Stage 1a: zero-pad image channels into complex planes.
class PadImageKernel {
 public:
  PlanesView in;                 // (C, Hi, Wi)
  sim::BufferView<float> planes; // C * P * Q complex
  i64 P = 0, Q = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 x = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 r = t.block_idx.y % P;
    const i64 c = t.block_idx.y / P;
    const bool live = x < Q;
    const bool inside = live && r < in.h && x < in.w;
    const float v =
        co_await t.ld_global_if(inside, in.buf, inside ? in.idx(c, r, x) : 0);
    vec2f z;
    z[0] = v;
    z[1] = 0.0f;
    co_await t.st_global_if(live, planes, live ? cidx(c, P, Q, r, x) : 0, z);
  }
};

/// Stage 1b: zero-pad FLIPPED filters into complex planes (full linear
/// convolution with the flipped kernel == cross-correlation).
class PadFilterKernel {
 public:
  sim::BufferView<float> filt;    // F*C*K*K filter-major
  sim::BufferView<float> planes;  // (F*C) * P * Q complex
  i64 K = 0, C = 0, P = 0, Q = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 x = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 r = t.block_idx.y % P;
    const i64 fc = t.block_idx.y / P;
    const bool live = x < Q;
    const bool inside = live && r < K && x < K;
    t.alu(2);
    const float v = co_await t.ld_global_if(
        inside, filt,
        inside ? fc * K * K + (K - 1 - r) * K + (K - 1 - x) : 0);
    vec2f z;
    z[0] = v;
    z[1] = 0.0f;
    co_await t.st_global_if(live, planes, live ? cidx(fc, P, Q, r, x) : 0,
                            z);
  }
};

/// Batched in-place radix-2 FFT along rows of length L (a power of two).
/// One thread block per row: bit-reversed load into shared memory, log2(L)
/// butterfly stages with constant-memory twiddles, coalesced store back.
class FftRowsKernel {
 public:
  sim::BufferView<float> planes;  // B * L complex, row-major
  sim::ConstView<float> twiddles; // interleaved re,im; tw[len/2 + j]
  i64 L = 0;
  u32 log2_l = 0;
  bool inverse = false;
  u32 sh_off = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 row = t.block_idx.x;
    const i64 tid = t.thread_idx.x;
    const i64 threads = t.block_dim.x;
    auto sh = t.shared<float>(sh_off, 2 * L);

    // Load with bit-reversal scatter into SM.
    const i64 load_iters = ceil_div(L, threads);
    for (i64 it = 0; it < load_iters; ++it) {
      const i64 i = tid + it * threads;
      const bool ok = i < L;
      vec2f z = co_await t.template ld_global_if<vec2f>(
          ok, planes, ok ? (row * L + i) * 2 : 0);
      const i64 rev =
          ok ? static_cast<i64>(
                   bit_reverse(static_cast<u32>(i), log2_l))
             : 0;
      t.alu(2);
      co_await t.st_shared_if(ok, sh, rev * 2, z);
    }
    co_await t.sync();

    // Butterfly stages.
    const i64 bf_iters = std::max<i64>(1, (L / 2) / threads);
    for (i64 len = 2; len <= L; len <<= 1) {
      for (i64 it = 0; it < bf_iters; ++it) {
        const i64 b = tid + it * threads;
        const bool ok = b < L / 2;
        const i64 j = ok ? b % (len / 2) : 0;
        const i64 base = ok ? (b / (len / 2)) * len : 0;
        t.alu(4);

        vec2f w = co_await t.template ld_const<vec2f>(twiddles,
                                                      (len / 2 + j) * 2);
        if (inverse) w[1] = -w[1];
        vec2f u = co_await t.template ld_shared<vec2f>(
            sh, ok ? (base + j) * 2 : 0);
        vec2f v = co_await t.template ld_shared<vec2f>(
            sh, ok ? (base + j + len / 2) * 2 : 0);
        // vw = v * w (complex), then u +/- vw.
        float vw_re = t.fma(v[0], w[0], -v[1] * w[1]);
        float vw_im = t.fma(v[0], w[1], v[1] * w[0]);
        t.alu(2);
        vec2f hi, lo;
        hi[0] = u[0] + vw_re;
        hi[1] = u[1] + vw_im;
        lo[0] = u[0] - vw_re;
        lo[1] = u[1] - vw_im;
        t.alu(4);
        co_await t.st_shared_if(ok, sh, ok ? (base + j) * 2 : 0, hi);
        co_await t.st_shared_if(ok, sh,
                                ok ? (base + j + len / 2) * 2 : 0, lo);
      }
      co_await t.sync();
    }

    // Coalesced store back.
    for (i64 it = 0; it < load_iters; ++it) {
      const i64 i = tid + it * threads;
      const bool ok = i < L;
      vec2f z = co_await t.template ld_shared<vec2f>(sh, ok ? i * 2 : 0);
      co_await t.st_global_if(ok, planes, ok ? (row * L + i) * 2 : 0, z);
    }
  }
};

/// Tiled complex transpose: (B, rows, cols) -> (B, cols, rows). 16x16
/// complex tiles staged in SM with one complex of row padding — the same
/// bank-conflict-avoidance trick as the general kernel's filter store.
class TransposeKernel {
 public:
  sim::BufferView<float> src;  // B * rows * cols complex
  sim::BufferView<float> dst;  // B * cols * rows complex
  i64 rows = 0, cols = 0;
  u32 sh_off = 0;

  static constexpr i64 kTile = 16;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 tiles_x = ceil_div(cols, kTile);
    const i64 tile_x = t.block_idx.x % tiles_x;
    const i64 tile_y = t.block_idx.x / tiles_x;
    const i64 b = t.block_idx.y;
    const i64 tx = t.thread_idx.x;  // 16
    const i64 ty = t.thread_idx.y;  // 16
    auto sh = t.shared<float>(sh_off, kTile * (kTile + 1) * 2);

    const i64 sr = tile_y * kTile + ty;
    const i64 sc = tile_x * kTile + tx;
    const bool in_ok = sr < rows && sc < cols;
    vec2f z = co_await t.template ld_global_if<vec2f>(
        in_ok, src, in_ok ? cidx(b, rows, cols, sr, sc) : 0);
    co_await t.st_shared_if(in_ok, sh, (ty * (kTile + 1) + tx) * 2, z);
    co_await t.sync();

    const i64 dr = tile_x * kTile + ty;  // transposed coordinates
    const i64 dc = tile_y * kTile + tx;
    const bool out_ok = dr < cols && dc < rows;
    vec2f w = co_await t.template ld_shared<vec2f>(
        sh, out_ok ? (tx * (kTile + 1) + ty) * 2 : 0);
    co_await t.st_global_if(out_ok, dst,
                            out_ok ? cidx(b, cols, rows, dr, dc) : 0, w);
  }
};

/// Pointwise complex multiply-accumulate over channels:
/// Y[f][p] = sum_c X[c][p] * G[f*C + c][p].
class MacKernel {
 public:
  sim::BufferView<float> x;  // C planes
  sim::BufferView<float> g;  // F*C planes
  sim::BufferView<float> y;  // F planes
  i64 C = 0, plane = 0;      // plane = P*Q complex elements

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 p = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 f = t.block_idx.y;
    const bool live = p < plane;
    float acc_re = 0.0f, acc_im = 0.0f;
    for (i64 c = 0; c < C; ++c) {
      vec2f xv = co_await t.template ld_global_if<vec2f>(
          live, x, live ? (c * plane + p) * 2 : 0);
      vec2f gv = co_await t.template ld_global_if<vec2f>(
          live, g, live ? ((f * C + c) * plane + p) * 2 : 0);
      acc_re = t.fma(xv[0], gv[0], acc_re);
      acc_re = t.fma(-xv[1], gv[1], acc_re);
      acc_im = t.fma(xv[0], gv[1], acc_im);
      acc_im = t.fma(xv[1], gv[0], acc_im);
    }
    vec2f out;
    out[0] = acc_re;
    out[1] = acc_im;
    co_await t.st_global_if(live, y, live ? (f * plane + p) * 2 : 0, out);
  }
};

/// Extract the valid region (offset K-1) and apply the 1/(P*Q) scale.
class ExtractKernel {
 public:
  sim::BufferView<float> acc;  // F planes of P*Q complex
  PlanesView out;              // (F, Ho, Wo)
  i64 K = 0, P = 0, Q = 0;
  float scale = 1.0f;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 x = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const i64 yy = t.block_idx.y % out.h;
    const i64 f = t.block_idx.y / out.h;
    const bool live = x < out.w;
    vec2f z = co_await t.template ld_global_if<vec2f>(
        live, acc, live ? cidx(f, P, Q, yy + K - 1, x + K - 1) : 0);
    t.alu(1);
    co_await t.st_global_if(live, out.buf, live ? out.idx(f, yy, x) : 0,
                            z[0] * scale);
  }
};

/// Host-side twiddle table for length L: tw[len/2 + j] = exp(-2*pi*i*j/len).
std::vector<float> make_twiddles(i64 l) {
  std::vector<float> tw(static_cast<std::size_t>(2 * l), 0.0f);
  for (i64 len = 2; len <= l; len <<= 1) {
    for (i64 j = 0; j < len / 2; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(len);
      tw[static_cast<std::size_t>((len / 2 + j) * 2)] =
          static_cast<float>(std::cos(ang));
      tw[static_cast<std::size_t>((len / 2 + j) * 2 + 1)] =
          static_cast<float>(std::sin(ang));
    }
  }
  return tw;
}

u32 ilog2(i64 v) {
  u32 b = 0;
  while ((i64{1} << b) < v) ++b;
  return b;
}

/// Launch helper: full 1D-FFT pass over `batch_rows` rows of length L.
sim::LaunchResult run_fft_rows(sim::Device& dev,
                               sim::BufferView<float> planes, i64 batch_rows,
                               i64 l, bool inverse,
                               const sim::ConstView<float>& tw,
                               const sim::LaunchOptions& opt) {
  FftRowsKernel k;
  k.planes = planes;
  k.twiddles = tw;
  k.L = l;
  k.log2_l = ilog2(l);
  k.inverse = inverse;
  sim::SharedLayout smem;
  k.sh_off = smem.alloc<float>(2 * l);
  sim::LaunchConfig lc;
  lc.block = sim::Dim3{
      static_cast<u32>(std::clamp<i64>(l / 2, 32, 256)), 1, 1};
  lc.grid = sim::Dim3{static_cast<u32>(batch_rows), 1, 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = 24;
  return sim::launch(dev, k, lc, opt);
}

/// Launch helper: transpose `batch` planes of (rows x cols).
sim::LaunchResult run_transpose(sim::Device& dev,
                                sim::BufferView<float> src,
                                sim::BufferView<float> dst, i64 batch,
                                i64 rows, i64 cols,
                                const sim::LaunchOptions& opt) {
  TransposeKernel k;
  k.src = src;
  k.dst = dst;
  k.rows = rows;
  k.cols = cols;
  sim::SharedLayout smem;
  k.sh_off = smem.alloc<float>(TransposeKernel::kTile *
                               (TransposeKernel::kTile + 1) * 2);
  sim::LaunchConfig lc;
  lc.block = sim::Dim3{16, 16, 1};
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(cols, TransposeKernel::kTile) *
                                       ceil_div(rows, TransposeKernel::kTile)),
                      static_cast<u32>(batch), 1};
  lc.shared_bytes = smem.size();
  lc.regs_per_thread = 16;
  return sim::launch(dev, k, lc, opt);
}

/// Forward (or inverse) 2D FFT over `batch` planes of (P x Q), leaving the
/// data TRANSPOSED as (Q x P) — pointwise stages don't care, and it saves
/// two transposes per direction. Returns aggregate seconds.
double run_fft2d_to_transposed(sim::Device& dev,
                               sim::BufferView<float> planes,
                               sim::BufferView<float> scratch, i64 batch,
                               i64 p, i64 q, bool inverse,
                               const sim::ConstView<float>& tw_q,
                               const sim::ConstView<float>& tw_p,
                               const sim::LaunchOptions& opt, int* launches) {
  double secs = 0.0;
  // Rows of length Q, batch * P of them.
  secs += run_fft_rows(dev, planes, batch * p, q, inverse, tw_q, opt)
              .timing.seconds;
  // Transpose each plane (P x Q) -> (Q x P) into scratch, then copy-free:
  // continue operating on scratch.
  secs += run_transpose(dev, planes, scratch, batch, p, q, opt)
              .timing.seconds;
  // Rows of length P on the transposed planes.
  secs += run_fft_rows(dev, scratch, batch * q, p, inverse, tw_p, opt)
              .timing.seconds;
  *launches += 3;
  return secs;
}

}  // namespace

FftConvRun fft_conv(sim::Device& dev, const tensor::Tensor& input,
                    const tensor::Tensor& filters,
                    const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "fft conv operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 C = input.c(), F = filters.n(), K = filters.h();
  const i64 Ho = tensor::conv_out_extent(input.h(), K, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), K, 0);
  const i64 P = tensor::next_pow2(std::max(input.h(), K));
  const i64 Q = tensor::next_pow2(std::max(input.w(), K));
  const i64 plane = P * Q;

  FftConvRun run;
  run.workspace_bytes =
      static_cast<u64>(2 * (C + F * C + F) * plane) * sizeof(float) * 2;

  // Twiddle tables in constant memory (one per FFT length).
  const auto twq_host = make_twiddles(Q);
  const auto twp_host = make_twiddles(P);
  auto twq_buf = dev.alloc_const<float>(twq_host);
  auto twp_buf = dev.alloc_const<float>(twp_host);
  const sim::ConstView<float> tw_q(twq_buf.get(), 0,
                                   static_cast<i64>(twq_host.size()));
  const sim::ConstView<float> tw_p(twp_buf.get(), 0,
                                   static_cast<i64>(twp_host.size()));

  // Workspaces (double-buffered for the transposes).
  auto x_a = dev.alloc<float>(2 * C * plane);
  auto x_b = dev.alloc<float>(2 * C * plane);
  auto g_a = dev.alloc<float>(2 * F * C * plane);
  auto g_b = dev.alloc<float>(2 * F * C * plane);
  auto y_a = dev.alloc<float>(2 * F * plane);
  auto y_b = dev.alloc<float>(2 * F * plane);

  // --- Stage 1: padding -----------------------------------------------------
  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  {
    PadImageKernel k;
    k.in = d_in.view();
    k.planes = x_a.view();
    k.P = P;
    k.Q = Q;
    sim::LaunchConfig lc;
    lc.block = sim::Dim3{128, 1, 1};
    lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Q, 128)),
                        static_cast<u32>(C * P), 1};
    lc.regs_per_thread = 12;
    run.pad_seconds += sim::launch(dev, k, lc, opt).timing.seconds;
    ++run.launches;
  }
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  {
    PadFilterKernel k;
    k.filt = d_filt.view();
    k.planes = g_a.view();
    k.K = K;
    k.C = C;
    k.P = P;
    k.Q = Q;
    sim::LaunchConfig lc;
    lc.block = sim::Dim3{128, 1, 1};
    lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Q, 128)),
                        static_cast<u32>(F * C * P), 1};
    lc.regs_per_thread = 12;
    run.pad_seconds += sim::launch(dev, k, lc, opt).timing.seconds;
    ++run.launches;
  }

  // --- Stage 2: forward transforms (results land transposed in *_b) --------
  run.image_fft_seconds += run_fft2d_to_transposed(
      dev, x_a.view(), x_b.view(), C, P, Q, false, tw_q, tw_p, opt,
      &run.launches);
  run.filter_fft_seconds += run_fft2d_to_transposed(
      dev, g_a.view(), g_b.view(), F * C, P, Q, false, tw_q, tw_p, opt,
      &run.launches);

  // --- Stage 3: pointwise MAC over channels (transposed layout) ------------
  {
    MacKernel k;
    k.x = x_b.view();
    k.g = g_b.view();
    k.y = y_a.view();
    k.C = C;
    k.plane = plane;
    sim::LaunchConfig lc;
    lc.block = sim::Dim3{128, 1, 1};
    lc.grid = sim::Dim3{static_cast<u32>(ceil_div(plane, 128)),
                        static_cast<u32>(F), 1};
    lc.regs_per_thread = 20;
    run.mac_seconds += sim::launch(dev, k, lc, opt).timing.seconds;
    ++run.launches;
  }

  // --- Stage 4: inverse transform (from transposed (Q x P) back) -----------
  run.inverse_seconds += run_fft2d_to_transposed(
      dev, y_a.view(), y_b.view(), F, Q, P, true, tw_p, tw_q, opt,
      &run.launches);

  DevicePlanes d_out(dev, F, Ho, Wo);
  {
    ExtractKernel k;
    k.acc = y_b.view();
    k.out = d_out.view();
    k.K = K;
    k.P = P;
    k.Q = Q;
    k.scale = 1.0f / static_cast<float>(plane);
    sim::LaunchConfig lc;
    lc.block = sim::Dim3{128, 1, 1};
    lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Wo, 128)),
                        static_cast<u32>(F * Ho), 1};
    lc.regs_per_thread = 12;
    run.inverse_seconds += sim::launch(dev, k, lc, opt).timing.seconds;
    ++run.launches;
  }

  if (opt.sample_max_blocks == 0) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace kconv::kernels
