// FFT-based convolution on the simulator — the paper's method category (3)
// ([12-14] Mathieu/Vasilache/Highlander).
//
// Pipeline (all stages are device kernels):
//   1. pad: image channels and FLIPPED filters into P x Q complex planes
//      (P, Q = next powers of two — the "filters need to be padded to the
//      same size as the input image" memory cost the paper criticizes)
//   2. forward 2D FFT per plane: batched row FFT -> tiled transpose ->
//      batched row FFT (twiddle factors ride in constant memory; complex
//      values are 8-byte units, i.e. naturally matched to Kepler's banks)
//   3. pointwise complex multiply-accumulate over channels
//   4. inverse 2D FFT per output plane, extract + scale the valid region
//
// The arithmetic crossover vs direct convolution is K-dependent (wins for
// large K, loses for 3x3) — bench_ext_fft measures it.
#pragma once

#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct FftConvRun {
  tensor::Tensor output;
  bool output_valid = false;
  /// Complex workspace: image + filter + accumulator planes.
  u64 workspace_bytes = 0;
  /// Aggregate model time per stage.
  double pad_seconds = 0.0;
  double image_fft_seconds = 0.0;
  /// Filter transforms: reusable across a batch — "in order to reuse the
  /// Fourier transform of the filters, the batch size should be big
  /// enough" (paper §1). seconds_amortized() models that steady state.
  double filter_fft_seconds = 0.0;
  double mac_seconds = 0.0;
  double inverse_seconds = 0.0;   // inverse FFT + extract
  /// Total launches issued (the pipeline-depth cost of the FFT route).
  int launches = 0;

  double seconds() const {
    return pad_seconds + image_fft_seconds + filter_fft_seconds +
           mac_seconds + inverse_seconds;
  }

  /// Per-image time once filter transforms are amortized over a large batch.
  double seconds_amortized() const {
    return pad_seconds + image_fft_seconds + mac_seconds + inverse_seconds;
  }
};

/// input (1, C, Hi, Wi), filters (F, C, K, K) -> valid output (1, F, ...).
/// Works for any square K (cross-correlation semantics, like every other
/// kernel in this library).
FftConvRun fft_conv(sim::Device& dev, const tensor::Tensor& input,
                    const tensor::Tensor& filters,
                    const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
