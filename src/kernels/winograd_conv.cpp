#include "src/kernels/winograd_conv.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"
#include "src/tensor/winograd_ref.hpp"

namespace kconv::kernels {

namespace {

/// Stage 1: one thread per (channel, tile) computes V = B^T d B and
/// scatters the 16 taps into tap-major planes V[tap][c][tile].
class InputTransformKernel {
 public:
  PlanesView in;                // (C, Hi, Wi)
  sim::BufferView<float> v;     // 16 * C * T
  i64 C = 0, T = 0, tx_count = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 tile = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                     t.thread_idx.x;
    const i64 c = t.block_idx.y;
    const bool live = tile < T;
    const i64 ty = live ? tile / tx_count : 0;
    const i64 tx = live ? tile % tx_count : 0;

    // Load the 4x4 tile; out-of-image taps are exact zeros (their
    // contribution to retained outputs cancels algebraically).
    float d[16];
    for (int i = 0; i < 16; ++i) {
      const i64 y = ty * 2 + i / 4;
      const i64 x = tx * 2 + i % 4;
      const bool ok = live && y < in.h && x < in.w;
      d[i] = co_await t.ld_global_if(ok, in.buf, ok ? in.idx(c, y, x) : 0);
    }

    // B^T d B: 32 adds (the matrices are 0/±1) — charged as ALU work.
    float vv[16];
    tensor::winograd_input_transform(d, vv);
    t.alu(32);

    for (int tap = 0; tap < 16; ++tap) {
      co_await t.st_global_if(live, v, (tap * C + c) * T + tile, vv[tap]);
    }
  }
};

/// Stage 3: one thread per (filter, tile) gathers the 16 taps of M,
/// computes Y = A^T M A and writes the 2x2 output patch.
class OutputTransformKernel {
 public:
  sim::BufferView<float> m;  // 16 * F * T
  PlanesView out;            // (F, Ho, Wo)
  i64 F = 0, T = 0, tx_count = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 tile = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                     t.thread_idx.x;
    const i64 f = t.block_idx.y;
    const bool live = tile < T;
    const i64 ty = live ? tile / tx_count : 0;
    const i64 tx = live ? tile % tx_count : 0;

    float mm[16];
    for (int tap = 0; tap < 16; ++tap) {
      mm[tap] = co_await t.ld_global_if(live, m,
                                        live ? (tap * F + f) * T + tile : 0);
    }
    float y[4];
    tensor::winograd_output_transform(mm, y);
    t.alu(24);

    for (int i = 0; i < 4; ++i) {
      const i64 oy = ty * 2 + i / 2;
      const i64 ox = tx * 2 + i % 2;
      const bool ok = live && oy < out.h && ox < out.w;
      co_await t.st_global_if(ok, out.buf, ok ? out.idx(f, oy, ox) : 0,
                              y[i]);
    }
  }
};

}  // namespace

GemmConfig winograd_gemm_config(i64 f) {
  if (f >= 96) return gemm_cublas_like();
  GemmConfig cfg;
  cfg.bm = std::max<i64>(16, round_up(f, 16));
  cfg.bn = 64;
  cfg.bk = 8;
  cfg.tm = 4;
  cfg.tn = 4;
  return cfg;
}

WinogradConvRun winograd_conv(sim::Device& dev, const tensor::Tensor& input,
                              const tensor::Tensor& filters,
                              const GemmConfig& gemm_cfg_in,
                              const sim::LaunchOptions& opt) {
  const GemmConfig gemm_cfg =
      gemm_cfg_in.bm == 0 ? winograd_gemm_config(filters.n()) : gemm_cfg_in;
  KCONV_CHECK(input.n() == 1, "winograd conv operates on a single image");
  KCONV_CHECK(filters.h() == 3 && filters.w() == 3,
              "Winograd F(2x2,3x3) requires 3x3 filters");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  const i64 C = input.c(), F = filters.n();
  const i64 Ho = tensor::conv_out_extent(input.h(), 3, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), 3, 0);
  const i64 ty_count = ceil_div(Ho, 2), tx_count = ceil_div(Wo, 2);
  const i64 T = ty_count * tx_count;

  WinogradConvRun run;
  run.workspace_bytes =
      static_cast<u64>(16 * C * T + 16 * F * T) * sizeof(float);

  // --- Stage 1: input transform ------------------------------------------
  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  auto d_v = dev.alloc<float>(16 * C * T);

  InputTransformKernel itk;
  itk.in = d_in.view();
  itk.v = d_v.view();
  itk.C = C;
  itk.T = T;
  itk.tx_count = tx_count;

  sim::LaunchConfig ilc;
  ilc.block = sim::Dim3{128, 1, 1};
  ilc.grid = sim::Dim3{static_cast<u32>(ceil_div(T, 128)),
                       static_cast<u32>(C), 1};
  ilc.regs_per_thread = 40;  // d + v tiles live in registers
  run.input_tf_launch = sim::launch(dev, itk, ilc, opt);
  const bool functional = !run.input_tf_launch.sampled;

  // --- Stage 2: 16 per-tap GEMMs  M[tap] = U[tap] x V[tap] -----------------
  // Filter transform on the host (tiny: F*C*16 values, uploaded once on a
  // real device; the GEMM launches charge its GM reads).
  std::vector<float> u_host(static_cast<std::size_t>(16 * F * C));
  for (i64 f = 0; f < F; ++f) {
    for (i64 c = 0; c < C; ++c) {
      float g[9];
      for (int i = 0; i < 9; ++i) g[i] = filters.at(f, c, i / 3, i % 3);
      float u[16];
      tensor::winograd_filter_transform(g, u);
      for (int tap = 0; tap < 16; ++tap) {
        u_host[static_cast<std::size_t>((tap * F + f) * C + c)] = u[tap];
      }
    }
  }

  std::vector<float> v_host;
  if (functional) v_host = d_v.download();

  std::vector<tensor::Matrix> m_taps;
  m_taps.reserve(16);
  for (int tap = 0; tap < 16; ++tap) {
    tensor::Matrix u_m(F, C);
    std::copy(u_host.begin() + static_cast<std::ptrdiff_t>(tap) * F * C,
              u_host.begin() + static_cast<std::ptrdiff_t>(tap + 1) * F * C,
              u_m.data.begin());
    tensor::Matrix v_m(C, T);
    if (functional) {
      std::copy(v_host.begin() + static_cast<std::ptrdiff_t>(tap) * C * T,
                v_host.begin() + static_cast<std::ptrdiff_t>(tap + 1) * C * T,
                v_m.data.begin());
    }
    GemmRun g = gemm(dev, u_m, v_m, gemm_cfg, opt);
    run.gemm_seconds += g.launch.timing.seconds;
    run.gemm_flops += g.launch.stats.fma_lane_ops * 2;
    m_taps.push_back(g.output_valid ? std::move(g.c) : tensor::Matrix(F, T));
  }

  // --- Stage 3: output transform -------------------------------------------
  auto d_m = dev.alloc<float>(16 * F * T);
  if (functional) {
    std::vector<float> m_host(static_cast<std::size_t>(16 * F * T));
    for (int tap = 0; tap < 16; ++tap) {
      std::copy(m_taps[static_cast<std::size_t>(tap)].data.begin(),
                m_taps[static_cast<std::size_t>(tap)].data.end(),
                m_host.begin() + static_cast<std::ptrdiff_t>(tap) * F * T);
    }
    d_m.upload(m_host);
  }
  DevicePlanes d_out(dev, F, Ho, Wo);

  OutputTransformKernel otk;
  otk.m = d_m.view();
  otk.out = d_out.view();
  otk.F = F;
  otk.T = T;
  otk.tx_count = tx_count;

  sim::LaunchConfig olc;
  olc.block = sim::Dim3{128, 1, 1};
  olc.grid = sim::Dim3{static_cast<u32>(ceil_div(T, 128)),
                       static_cast<u32>(F), 1};
  olc.regs_per_thread = 40;
  run.output_tf_launch = sim::launch(dev, otk, olc, opt);

  if (functional && !run.output_tf_launch.sampled) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace kconv::kernels
