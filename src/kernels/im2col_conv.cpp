#include "src/kernels/im2col_conv.hpp"

#include <algorithm>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

/// Writes the patch matrix: row kb = (c*K+dy)*K+dx, column p = y*Wo+x.
class Im2colKernel {
 public:
  PlanesView in;
  sim::BufferView<float> col;  // Kdim x Np, row-major
  i64 K = 0, C = 0, Ho = 0, Wo = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 KK = K * K;
    const i64 Np = Ho * Wo;
    const i64 kb = t.block_idx.y;  // one patch-row per block row
    const i64 p = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    if (p >= Np) co_return;
    const i64 c = kb / KK, dy = (kb % KK) / K, dx = kb % K;
    const i64 y = p / Wo, x = p % Wo;
    t.alu(4);
    const float v = co_await t.ld_global(in.buf, in.idx(c, y + dy, x + dx));
    co_await t.st_global(col, kb * Np + p, v);
  }
};

/// Writes the transposed patch matrix: row p = y*Wo+x, column
/// kb = (c*K+dy)*K+dx.
class Im2colTKernel {
 public:
  PlanesView in;
  sim::BufferView<float> cols_t;  // Np x Kdim, row-major
  i64 K = 0, C = 0, Ho = 0, Wo = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    const i64 KK = K * K;
    const i64 Kdim = C * KK;
    const i64 Np = Ho * Wo;
    const i64 kb = t.block_idx.y;
    const i64 p = static_cast<i64>(t.block_idx.x) * t.block_dim.x +
                  t.thread_idx.x;
    const bool live = p < Np;
    const i64 c = kb / KK, dy = (kb % KK) / K, dx = kb % K;
    const i64 y = live ? p / Wo : 0, x = live ? p % Wo : 0;
    t.alu(4);
    const float v = co_await t.ld_global_if(
        live, in.buf, live ? in.idx(c, y + dy, x + dx) : 0);
    co_await t.st_global_if(live, cols_t, live ? p * Kdim + kb : 0, v);
  }
};

}  // namespace

Im2colTRun im2col_transposed(sim::Device& dev, const tensor::Tensor& input,
                             i64 k, const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "im2col operates on a single image");
  const i64 C = input.c();
  const i64 Ho = tensor::conv_out_extent(input.h(), k, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), k, 0);
  const i64 Kdim = C * k * k;
  const i64 Np = Ho * Wo;

  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  auto d_out = dev.alloc<float>(Np * Kdim);

  Im2colTKernel kern;
  kern.in = d_in.view();
  kern.cols_t = d_out.view();
  kern.K = k;
  kern.C = C;
  kern.Ho = Ho;
  kern.Wo = Wo;

  sim::LaunchConfig lc;
  lc.block = sim::Dim3{256, 1, 1};
  lc.grid = sim::Dim3{static_cast<u32>(ceil_div(Np, 256)),
                      static_cast<u32>(Kdim), 1};
  lc.regs_per_thread = 16;

  Im2colTRun run;
  run.launch = sim::launch(dev, kern, lc, opt);
  if (!run.launch.sampled) {
    run.cols_t = tensor::Matrix(Np, Kdim);
    run.cols_t.data = d_out.download();
    run.output_valid = true;
  }
  return run;
}

Im2colGemmRun im2col_gemm_conv(sim::Device& dev, const tensor::Tensor& input,
                               const tensor::Tensor& filters,
                               const GemmConfig& gemm_cfg,
                               const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "im2col conv operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 K = filters.h();
  const i64 C = input.c();
  const i64 F = filters.n();
  const i64 Ho = tensor::conv_out_extent(input.h(), K, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), K, 0);
  const i64 Kdim = C * K * K;
  const i64 Np = Ho * Wo;

  DevicePlanes d_in(dev, C, input.h(), input.w());
  d_in.upload(input);
  auto d_col = dev.alloc<float>(Kdim * Np);

  Im2colKernel ik;
  ik.in = d_in.view();
  ik.col = d_col.view();
  ik.K = K;
  ik.C = C;
  ik.Ho = Ho;
  ik.Wo = Wo;

  sim::LaunchConfig ilc;
  ilc.block = sim::Dim3{256, 1, 1};
  ilc.grid = sim::Dim3{static_cast<u32>(ceil_div(Np, 256)),
                       static_cast<u32>(Kdim), 1};
  ilc.regs_per_thread = 16;

  Im2colGemmRun run;
  run.workspace_bytes = static_cast<u64>(Kdim * Np) * sizeof(float);
  run.im2col_launch = sim::launch(dev, ik, ilc, opt);

  // GEMM: (F x Kdim) * (Kdim x Np). The filter matrix rides along as a
  // host matrix; the patch matrix already lives on the device, so we hand
  // the gemm runner host copies only when running functionally.
  tensor::Matrix fm = tensor::filters_as_matrix(filters);
  tensor::Matrix col_host(0, 0);
  if (!run.im2col_launch.sampled) {
    col_host = tensor::Matrix(Kdim, Np);
    col_host.data = d_col.download();
  } else {
    // Benchmark mode: contents don't matter for the timing model, but the
    // GEMM still needs a correctly-shaped operand.
    col_host = tensor::Matrix(Kdim, Np);
  }

  GemmRun g = gemm(dev, fm, col_host, gemm_cfg, opt);
  run.gemm_launch = g.launch;
  if (g.output_valid && !run.im2col_launch.sampled) {
    run.output = tensor::Tensor(1, F, Ho, Wo);
    tensor::col2im_output(g.c, 0, run.output);
    run.output_valid = true;
  }
  return run;
}

}  // namespace kconv::kernels
