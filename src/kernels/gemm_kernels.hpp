// Blocked single-precision GEMM kernels on the simulator (Fig. 2).
//
// One parameterized kernel family covers the paper's three contenders:
//  - gemm_cublas_like(): large 96x96 tiles, 6x6 micro-tiles, matched
//    (float2) SM fragments, double-buffered GM staging — a stand-in for the
//    cuBLAS Kepler SGEMM.
//  - gemm_magma_fermi(): the MAGMA Fermi kernel [19] — 64x64 tiles, 4x4
//    micro-tiles, SCALAR (float) SM fragments. Matched on Fermi's 4-byte
//    banks, mismatched on Kepler's 8-byte banks, where each request cycle
//    moves only half the available SM bandwidth.
//  - gemm_magma_mod(): the paper's modification — same kernel, fragments
//    read as float2 so W_CD = W_SMB again.
//
// A tiles are stored transposed in SM (shA[k][m]) with one bank word of
// padding per row to keep the transposing stores conflict-free.
#pragma once

#include "src/common/types.hpp"
#include "src/sim/launch.hpp"
#include "src/tensor/im2col.hpp"

namespace kconv::kernels {

struct GemmConfig {
  i64 bm = 64;  ///< C-tile rows per thread block
  i64 bn = 64;  ///< C-tile columns per thread block
  i64 bk = 16;  ///< K-depth staged per iteration
  i64 tm = 4;   ///< micro-tile rows per thread
  i64 tn = 4;   ///< micro-tile columns per thread
  /// SM fragment width in floats; 0 = match the bank width, 1 = scalar.
  i64 vec_width = 0;
  bool prefetch = true;
  bool pad_a = true;  ///< pad transposed A rows by one bank word
};

GemmConfig gemm_cublas_like();
GemmConfig gemm_magma_fermi();
GemmConfig gemm_magma_mod();

struct GemmRun {
  sim::LaunchResult launch;
  tensor::Matrix c;
  bool output_valid = false;
};

/// C = A * B on the simulator (row-major host matrices).
GemmRun gemm(sim::Device& dev, const tensor::Matrix& a,
             const tensor::Matrix& b, const GemmConfig& cfg = {},
             const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
