// Device-side implementation of the paper's Algorithm 1, shared between the
// fp32 special-case kernel (special_conv.cpp) and the short-data-type
// extension kernels (short_dtype_conv.cpp).
//
// Template parameters: T = storage element (float, f16, i8q), N = elements
// per thread unit (the computation data width the paper matches against the
// SM bank width: N * sizeof(T) == W_SMB in the matched configuration).
// Arithmetic is fp32 regardless of T; loads/stores convert at the edges,
// as a real mixed-precision pipeline would.
//
// Boundary handling uses the simulator's predicated memory operations
// (ld_global_if / st_*_if): inactive lanes keep their slot in the warp
// instruction, exactly like hardware predication, so warps stay in
// lockstep and constant reads stay broadcast at image edges.
#pragma once

#include <algorithm>
#include <concepts>

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"

namespace kconv::kernels::detail {

/// Register-window capacity: K <= 7 and N <= 8 (rounded-up window columns).
inline constexpr i64 kSpecialKernelMaxK = 7;
inline constexpr i64 kSpecialKernelMaxWinCols = 24;

template <typename T, int N>
class SpecialKernelT {
 public:
  PlanesViewT<T> in;           // (1, Hi, Wi)
  PlanesViewT<T> out;          // (F, Ho, Wo)
  sim::ConstView<float> filt;  // F*K*K, filter-major
  sim::ConstView<float> bias;  // F scalars; read only when fused
  i64 K = 0, F = 0, Ho = 0, Wo = 0;
  i64 W = 0, H = 0;   // tile extents
  i64 sh_stride = 0;  // elements of T per SM row slot
  i64 n_tail = 0;     // threads loading the right halo piece
  u32 sh_off = 0;
  bool fused = false;  // write-back applies max(0, acc + bias[f])

  /// Block equivalence class for trace replay (docs/MODEL.md §5b). Lane
  /// predicates here are per-thread constants (main_ok / tail_ok /
  /// write_ok) plus the row count, and because lanes are ordered by column
  /// each predicate is characterized by its count of active lanes. Packing
  /// the exact counts — rather than edge/interior flags — matters: the
  /// tail loads of the second-to-last column can clip at the image edge
  /// too, so "last block" alone would not determine the masks.
  u64 replay_class(sim::Dim3 b) const {
    const i64 nthreads = W / N;
    const auto active = [](i64 base, i64 bound, i64 cap) {
      // Lanes with base + lane*N < bound, lane in [0, cap).
      if (bound <= base) return i64{0};
      return std::min(cap, ceil_div(bound - base, i64{N}));
    };
    const i64 main_n = active(b.x * W, in.w, nthreads);
    const i64 tail_n = active(b.x * W + W, in.w, n_tail);
    const i64 write_n = active(b.x * W, Wo, nthreads);
    const i64 rows = std::min<i64>(H, Ho - static_cast<i64>(b.y) * H);
    return static_cast<u64>(main_n) | (static_cast<u64>(tail_n) << 16) |
           (static_cast<u64>(write_n) << 32) | (static_cast<u64>(rows) << 48);
  }

  /// Per-block buffer anchors for coroutine-free functional replay
  /// (docs/MODEL.md §5b): image accesses are affine in the tile's top-left
  /// pixel, and the constant filter bank is block-independent. Declared for
  /// the fp32 instantiation only — the short-dtype variants convert on
  /// load/store, which the tape's float value slots cannot represent, so
  /// they keep the coroutine fast-forward path.
  void replay_origins(sim::Dim3 b, sim::ReplayOrigins& o) const
      requires std::same_as<T, float>
  {
    const i64 row0 = static_cast<i64>(b.y) * H;
    const i64 col0 = static_cast<i64>(b.x) * W;
    o.add(in.buf, in.idx(0, row0, col0));
    o.add(out.buf, out.idx(0, row0, col0));
    o.add(filt, 0);
    if (fused) o.add(bias, 0);
  }

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    using VecN = Vec<T, N>;
    const i64 tid = t.thread_idx.x;
    const i64 bx = t.block_idx.x;
    const i64 by = t.block_idx.y;
    const i64 Wi = in.w;
    const i64 row0 = by * H;
    const i64 col0 = bx * W + tid * N;  // leftmost output col of this thread
    const i64 rows = std::min<i64>(H, Ho - row0);
    auto sh = t.shared<T>(sh_off, K * sh_stride);

    // Lane predicates for the cooperative row loads (constant per thread).
    const bool main_ok = col0 < Wi;
    const i64 tail_col = bx * W + W + tid * N;
    const bool tail_ok = tid < n_tail && tail_col < Wi;

    // Register window: K rows x (K+N-1) pixels (padded to whole N-units) —
    // the vertical data-sharing store of §3.1. Converted to fp32 once, on
    // load, so the compute loop is dtype-agnostic.
    const i64 wcols = round_up(K + N - 1, N);
    float win[kSpecialKernelMaxK][kSpecialKernelMaxWinCols] = {};

    // Algorithm 1, line 1: stage the first K input rows in shared memory.
    // Phase scopes only re-label the accesses for kconv-prof; the access
    // order is exactly the unannotated kernel's.
    for (i64 r = 0; r < K; ++r) {
      const i64 ir = row0 + r;  // always < Hi for a valid convolution
      VecN v{}, v2{};
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v = co_await t.template ld_global_if<VecN>(
            main_ok, in.buf, main_ok ? in.idx(0, ir, col0) : 0);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(main_ok, sh, r * sh_stride + tid * N, v);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::GmLoad);
        v2 = co_await t.template ld_global_if<VecN>(
            tail_ok, in.buf, tail_ok ? in.idx(0, ir, tail_col) : 0);
      }
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(tail_ok, sh, r * sh_stride + W + tid * N, v2);
      }
    }
    co_await t.sync();

    // Line 3: first K-1 rows into the register window.
    {
      sim::ProfilePhase phase(t, profile::Phase::SmemStage);
      for (i64 r = 0; r + 1 < K; ++r) {
        for (i64 i = 0; i < wcols; i += N) {
          VecN v = co_await t.template ld_shared<VecN>(
              sh, r * sh_stride + tid * N + i);
          for (int j = 0; j < N; ++j) win[r][i + j] = static_cast<float>(v[j]);
        }
      }
    }

    // Lines 4-11: one output row per iteration.
    for (i64 rr = 0; rr < rows; ++rr) {
      const i64 orow = row0 + rr;

      // Line 6: latest row from SM into the window's last row.
      const i64 slot = (rr + K - 1) % K;
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        for (i64 i = 0; i < wcols; i += N) {
          VecN v = co_await t.template ld_shared<VecN>(
              sh, slot * sh_stride + tid * N + i);
          for (int j = 0; j < N; ++j)
            win[K - 1][i + j] = static_cast<float>(v[j]);
        }
      }

      // Lines 7-8: N convolutions per filter, entirely from registers and
      // broadcast constant reads; results written straight to GM. Lanes
      // stay uniform here (stores are predicated), so every constant read
      // is a single warp broadcast — the best case of §3.3.
      const bool write_ok = col0 < Wo;
      for (i64 f = 0; f < F; ++f) {
        Vec<float, N> acc{};
        {
          sim::ProfilePhase phase(t, profile::Phase::Compute);
          for (i64 dy = 0; dy < K; ++dy) {
            for (i64 dx = 0; dx < K; ++dx) {
              const float wv =
                  co_await t.ld_const(filt, (f * K + dy) * K + dx);
              Vec<float, N> xs;
              for (int j = 0; j < N; ++j) xs[j] = win[dy][dx + j];
              acc = t.fma(xs, wv, acc);
            }
          }
        }
        if (fused) {
          // `fused` is launch-uniform and f is warp-uniform, so the bias
          // read stays a single constant-memory broadcast per filter.
          sim::ProfilePhase phase(t, profile::Phase::Writeback);
          const float bv = co_await t.ld_const(bias, f);
          acc = t.bias_relu(acc, bv);
        }
        VecN sv;
        for (int j = 0; j < N; ++j) sv[j] = T(acc[j]);
        {
          sim::ProfilePhase phase(t, profile::Phase::Writeback);
          co_await t.st_global_if(write_ok, out.buf,
                                  write_ok ? out.idx(f, orow, col0) : 0, sv);
        }
      }

      // Line 5: prefetch the next input row into registers. The paper
      // issues these loads before the compute to overlap their latency; in
      // the simulator that overlap is captured by the timing model's
      // pipe-max combiner, so issue order inside the segment is free.
      const bool pf = rr + 1 < rows;
      const i64 ir = row0 + rr + K;
      VecN pf_main{}, pf_tail{};
      {
        sim::ProfilePhase phase(t, profile::Phase::Prefetch);
        pf_main = co_await t.template ld_global_if<VecN>(
            pf && main_ok, in.buf, pf && main_ok ? in.idx(0, ir, col0) : 0);
        pf_tail = co_await t.template ld_global_if<VecN>(
            pf && tail_ok, in.buf,
            pf && tail_ok ? in.idx(0, ir, tail_col) : 0);
      }
      co_await t.sync();  // line 9

      // Line 10: publish the prefetched row to its SM slot.
      {
        sim::ProfilePhase phase(t, profile::Phase::SmemStage);
        co_await t.st_shared_if(pf && main_ok, sh,
                                (rr % K) * sh_stride + tid * N, pf_main);
        co_await t.st_shared_if(pf && tail_ok, sh,
                                (rr % K) * sh_stride + W + tid * N, pf_tail);
      }
      co_await t.sync();  // line 11

      // Slide the register window down one row.
      for (i64 r = 0; r + 1 < K; ++r) {
        for (i64 i = 0; i < wcols; ++i) win[r][i] = win[r + 1][i];
      }
    }
  }
};

}  // namespace kconv::kernels::detail
