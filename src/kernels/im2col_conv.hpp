// Explicit im2col + GEMM convolution — the Caffe default [7, 18].
//
// Two launches: (1) an im2col kernel materializes the (C*K*K) x (Ho*Wo)
// patch matrix in global memory — the "huge amount of additional memory"
// the paper calls out — then (2) the blocked GEMM kernel multiplies the
// flattened filter bank against it. Reported time is the sum of both
// launches; workspace_bytes quantifies the extra allocation.
#pragma once

#include "src/kernels/gemm_kernels.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct Im2colGemmRun {
  sim::LaunchResult im2col_launch;
  sim::LaunchResult gemm_launch;
  tensor::Tensor output;
  bool output_valid = false;
  /// Bytes of the materialized patch matrix.
  u64 workspace_bytes = 0;

  double seconds() const {
    return im2col_launch.timing.seconds + gemm_launch.timing.seconds;
  }
  double gflops() const {
    // Count only the convolution's useful flops, over the combined time.
    return gemm_launch.timing.gflops * gemm_launch.timing.seconds /
           std::max(seconds(), 1e-30);
  }
};

/// input (1, C, Hi, Wi), filters (F, C, K, K) -> valid output.
Im2colGemmRun im2col_gemm_conv(sim::Device& dev, const tensor::Tensor& input,
                               const tensor::Tensor& filters,
                               const GemmConfig& gemm_cfg = gemm_cublas_like(),
                               const sim::LaunchOptions& opt = {});

/// Materializes the TRANSPOSED patch matrix im2col(input)^T of shape
/// (Ho*Wo) x (C*K*K) on the device. Building block for the weight-gradient
/// convolution: dW = dY_flat x im2col(X)^T.
struct Im2colTRun {
  sim::LaunchResult launch;
  tensor::Matrix cols_t;
  bool output_valid = false;
};
Im2colTRun im2col_transposed(sim::Device& dev, const tensor::Tensor& input,
                             i64 k, const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
