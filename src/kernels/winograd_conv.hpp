// Winograd F(2x2, 3x3) convolution on the simulator — the fast-algorithm
// alternative the paper's related work discusses ([15, 16]): 36/16 = 2.25x
// fewer multiplications per output than direct convolution, at the cost of
// a transformed-domain workspace and filter-size-specific processing.
//
// Pipeline (three device stages, like cuDNN's WINOGRAD algo):
//   1. input transform:  V[tap][c][tile]  = (B^T d B) per 4x4 tile
//   2. 16 batched GEMMs: M[tap] = U[tap] (F x C) * V[tap] (C x tiles)
//      (U is the host-side filter transform, uploaded once)
//   3. output transform: Y = A^T M A, scattered to the output planes
//
// Included to complete the algorithm landscape the paper positions itself
// in; bench_ext_winograd compares it against the paper's direct kernel.
#pragma once

#include "src/kernels/gemm_kernels.hpp"
#include "src/kernels/kernel_run.hpp"
#include "src/sim/launch.hpp"

namespace kconv::kernels {

struct WinogradConvRun {
  sim::LaunchResult input_tf_launch;
  sim::LaunchResult output_tf_launch;
  /// Aggregate over the 16 per-tap GEMM launches.
  double gemm_seconds = 0.0;
  u64 gemm_flops = 0;  // executed lane-flops in the GEMM stage
  tensor::Tensor output;
  bool output_valid = false;
  /// Transformed-domain workspace: V + M buffers (the memory cost the
  /// paper's related-work section calls out).
  u64 workspace_bytes = 0;

  double seconds() const {
    return input_tf_launch.timing.seconds + gemm_seconds +
           output_tf_launch.timing.seconds;
  }
};

/// GEMM tiling adapted to Winograd's tap matrices: M = F is often small,
/// so the default 96x96 tile would drown in padding; this shrinks the
/// M-tile to fit.
GemmConfig winograd_gemm_config(i64 f);

/// input (1, C, Hi, Wi), 3x3 filters (F, C, 3, 3) -> valid output.
/// Throws kconv::Error unless K == 3. `gemm_cfg.bm == 0` (the default)
/// selects winograd_gemm_config(F) automatically.
WinogradConvRun winograd_conv(sim::Device& dev, const tensor::Tensor& input,
                              const tensor::Tensor& filters,
                              const GemmConfig& gemm_cfg = GemmConfig{.bm = 0},
                              const sim::LaunchOptions& opt = {});

}  // namespace kconv::kernels
