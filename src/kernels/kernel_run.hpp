// Common result type returned by the host-side kernel runners.
//
// Kernel classes may additionally declare the trace-replay hook
//
//   u64 replay_class(sim::Dim3 block_idx) const;
//
// mapping each block to an equivalence class of congruent blocks (same
// control flow, predication masks and shared-memory offsets; only
// global/constant addresses shifted). With LaunchOptions::replay set,
// launch() then schedules one representative per class and fast-forwards
// the rest (docs/MODEL.md §5b); kernels without the hook always take the
// exact legacy path. GeneralConv, SpecialConv (including the short-dtype
// variants) and ImplicitGemmConv declare it.
#pragma once

#include "src/sim/launch.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::kernels {

/// Outcome of running a convolution/GEMM kernel on the simulator.
struct KernelRun {
  sim::LaunchResult launch;
  /// Functional output. Only populated when the launch executed every block
  /// (sampled benchmark runs skip the download; check output_valid).
  tensor::Tensor output;
  bool output_valid = false;
};

}  // namespace kconv::kernels
