// Common result type returned by the host-side kernel runners.
#pragma once

#include "src/sim/launch.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::kernels {

/// Outcome of running a convolution/GEMM kernel on the simulator.
struct KernelRun {
  sim::LaunchResult launch;
  /// Functional output. Only populated when the launch executed every block
  /// (sampled benchmark runs skip the download; check output_valid).
  tensor::Tensor output;
  bool output_valid = false;
};

}  // namespace kconv::kernels
