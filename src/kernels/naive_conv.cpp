#include "src/kernels/naive_conv.hpp"

#include "src/kernels/device_tensor.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {

namespace {

class NaiveKernel {
 public:
  PlanesView in;
  PlanesView out;
  sim::BufferView<float> filt;  // F*C*K*K
  i64 K = 0, C = 0, F = 0, Ho = 0, Wo = 0;
  i64 tiles_x = 0;

  sim::ThreadProgram operator()(sim::ThreadCtx& t) const {
    // grid.y enumerates (spatial tile row, filter) pairs.
    const i64 f = t.block_idx.y / ((Ho + t.block_dim.y - 1) / t.block_dim.y);
    const i64 ty_blk = t.block_idx.y % ((Ho + t.block_dim.y - 1) / t.block_dim.y);
    const i64 y = ty_blk * t.block_dim.y + t.thread_idx.y;
    const i64 x = (t.block_idx.x % tiles_x) * t.block_dim.x + t.thread_idx.x;
    if (y >= Ho || x >= Wo) co_return;

    float acc = 0.0f;
    for (i64 c = 0; c < C; ++c) {
      for (i64 dy = 0; dy < K; ++dy) {
        for (i64 dx = 0; dx < K; ++dx) {
          const float px =
              co_await t.ld_global(in.buf, in.idx(c, y + dy, x + dx));
          const float wv =
              co_await t.ld_global(filt, ((f * C + c) * K + dy) * K + dx);
          acc = t.fma(px, wv, acc);
        }
      }
    }
    co_await t.st_global(out.buf, out.idx(f, y, x), acc);
  }
};

}  // namespace

KernelRun naive_conv(sim::Device& dev, const tensor::Tensor& input,
                     const tensor::Tensor& filters,
                     const NaiveConvConfig& cfg,
                     const sim::LaunchOptions& opt) {
  KCONV_CHECK(input.n() == 1, "naive conv operates on a single image");
  KCONV_CHECK(filters.c() == input.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  KCONV_CHECK(cfg.tile_w >= 1 && cfg.tile_h >= 1, "empty tile");
  const i64 K = filters.h();
  const i64 Ho = tensor::conv_out_extent(input.h(), K, 0);
  const i64 Wo = tensor::conv_out_extent(input.w(), K, 0);

  NaiveKernel k;
  k.K = K;
  k.C = input.c();
  k.F = filters.n();
  k.Ho = Ho;
  k.Wo = Wo;
  k.tiles_x = ceil_div(Wo, cfg.tile_w);

  DevicePlanes d_in(dev, k.C, input.h(), input.w());
  d_in.upload(input);
  DevicePlanes d_out(dev, k.F, Ho, Wo);
  const auto flat = flatten_filters(filters);
  auto d_filt = dev.alloc<float>(std::span<const float>(flat));
  k.in = d_in.view();
  k.out = d_out.view();
  k.filt = d_filt.view();

  sim::LaunchConfig lc;
  lc.grid = sim::Dim3{static_cast<u32>(k.tiles_x),
                      static_cast<u32>(ceil_div(Ho, cfg.tile_h) * k.F), 1};
  lc.block = sim::Dim3{static_cast<u32>(cfg.tile_w),
                       static_cast<u32>(cfg.tile_h), 1};
  lc.regs_per_thread = 24;

  KernelRun run;
  run.launch = sim::launch(dev, k, lc, opt);
  if (!run.launch.sampled) {
    run.output = d_out.download();
    run.output_valid = true;
  }
  return run;
}

}  // namespace kconv::kernels
