// Shared-memory bank model — the heart of the paper's §2.1.
//
// Shared memory is organized as `banks` banks of width `bank_bytes` (W_SMB:
// 8 on Kepler, 4 elsewhere). Per warp transaction, each bank can deliver one
// W_SMB-wide word per request cycle; lanes addressing the *same* word in a
// bank are merged (multicast), lanes addressing *different* words in the
// same bank serialize into extra request cycles.
//
// This reproduces the paper's observation mechanically: a conventional
// per-lane `float` access pattern on Kepler touches only 16 distinct 8-byte
// words (two lanes share each word), so one request cycle moves 128 B — half
// of the 32x8 = 256 B the banks could deliver. Matching W_CD to W_SMB with
// float2 units makes the same request cycle move the full 256 B, doubling
// the effective SM bandwidth (Fig. 1).
#pragma once

#include <span>

#include "src/sim/event.hpp"

namespace kconv::sim {

/// Result of analyzing one warp shared-memory transaction.
struct SmemCost {
  /// Request cycles consumed (>= 1; > 1 means bank-conflict replays).
  u32 request_cycles = 0;
  /// Distinct bytes actually transferred across all banks.
  u64 unique_bytes = 0;
  /// Sum of the bytes each lane asked for (>= unique when lanes broadcast).
  u64 lane_bytes = 0;
};

/// Analyzes the per-lane accesses of one warp shared-memory instruction.
/// Addresses are byte offsets into the block's shared memory.
SmemCost analyze_smem(std::span<const Access> lanes, u32 banks,
                      u32 bank_bytes);

}  // namespace kconv::sim
