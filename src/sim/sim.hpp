// Umbrella header for the kconv GPU simulator.
//
// See DESIGN.md §4 for the execution and timing model; start from Device
// (device.hpp) and launch() (launch.hpp).
#pragma once

#include "src/sim/arch.hpp"        // IWYU pragma: export
#include "src/sim/banks.hpp"       // IWYU pragma: export
#include "src/sim/block_exec.hpp"  // IWYU pragma: export
#include "src/sim/coalescing.hpp"  // IWYU pragma: export
#include "src/sim/config.hpp"      // IWYU pragma: export
#include "src/sim/constmem.hpp"    // IWYU pragma: export
#include "src/sim/device.hpp"      // IWYU pragma: export
#include "src/sim/dim.hpp"         // IWYU pragma: export
#include "src/sim/event.hpp"       // IWYU pragma: export
#include "src/sim/l2cache.hpp"     // IWYU pragma: export
#include "src/sim/launch.hpp"      // IWYU pragma: export
#include "src/sim/memory.hpp"      // IWYU pragma: export
#include "src/sim/replay.hpp"      // IWYU pragma: export
#include "src/sim/report.hpp"      // IWYU pragma: export
#include "src/sim/shared.hpp"      // IWYU pragma: export
#include "src/sim/stats.hpp"       // IWYU pragma: export
#include "src/sim/task.hpp"        // IWYU pragma: export
#include "src/sim/thread_ctx.hpp"  // IWYU pragma: export
#include "src/sim/trace.hpp"       // IWYU pragma: export
#include "src/sim/timing.hpp"      // IWYU pragma: export
