#include "src/sim/arch.hpp"

namespace kconv::sim {

Arch kepler_k40m() {
  Arch a;
  a.name = "Kepler K40m";
  a.smem_banks = 32;
  a.smem_bank_bytes = 8;  // cudaSharedMemBankSizeEightByte (default profit mode)
  a.smem_per_sm = 48 * 1024;
  a.smem_per_block = 48 * 1024;
  a.gm_sector_bytes = 32;
  a.dram_bytes_per_s = 288.0e9;
  a.l2_bytes_per_s = 590.0e9;
  a.l2_capacity = 1536 * 1024;
  a.gm_latency = 400;
  a.const_capacity = 64 * 1024;
  a.const_line_bytes = 64;
  a.const_cache_per_sm = 8 * 1024;
  a.warp_size = 32;
  a.fp32_lanes_per_sm = 192;
  a.issue_slots_per_cycle = 8;
  a.smem_requests_per_cycle = 1;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 16;
  a.max_threads_per_block = 1024;
  a.regs_per_sm = 65536;
  a.max_regs_per_thread = 255;
  a.sm_count = 15;
  a.clock_ghz = 0.745;  // base clock; 15*192*2*0.745 = 4291 GFlop/s SP peak
  a.barrier_cost = 30;
  return a;
}

Arch fermi_m2090() {
  Arch a;
  a.name = "Fermi M2090";
  a.smem_banks = 32;
  a.smem_bank_bytes = 4;
  a.smem_per_sm = 48 * 1024;
  a.smem_per_block = 48 * 1024;
  a.gm_sector_bytes = 32;
  a.dram_bytes_per_s = 177.0e9;
  a.l2_bytes_per_s = 350.0e9;
  a.l2_capacity = 768 * 1024;
  a.gm_latency = 500;
  a.const_capacity = 64 * 1024;
  a.const_line_bytes = 64;
  a.const_cache_per_sm = 8 * 1024;
  a.warp_size = 32;
  a.fp32_lanes_per_sm = 32;
  a.issue_slots_per_cycle = 2;
  a.smem_requests_per_cycle = 1;
  a.max_threads_per_sm = 1536;
  a.max_blocks_per_sm = 8;
  a.max_threads_per_block = 1024;
  a.regs_per_sm = 32768;
  a.max_regs_per_thread = 63;
  a.sm_count = 16;
  a.clock_ghz = 1.3;
  a.barrier_cost = 30;
  return a;
}

Arch maxwell_like() {
  Arch a;
  a.name = "Maxwell-class";
  a.smem_banks = 32;
  a.smem_bank_bytes = 4;
  a.smem_per_sm = 96 * 1024;
  a.smem_per_block = 48 * 1024;
  a.gm_sector_bytes = 32;
  a.dram_bytes_per_s = 224.0e9;
  a.l2_bytes_per_s = 450.0e9;
  a.l2_capacity = 2048 * 1024;
  a.gm_latency = 380;
  a.const_capacity = 64 * 1024;
  a.const_line_bytes = 64;
  a.const_cache_per_sm = 10 * 1024;  // Maxwell's larger read-only path
  a.warp_size = 32;
  a.fp32_lanes_per_sm = 128;
  a.issue_slots_per_cycle = 8;
  a.smem_requests_per_cycle = 1;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.max_threads_per_block = 1024;
  a.regs_per_sm = 65536;
  a.max_regs_per_thread = 255;
  a.sm_count = 16;
  a.clock_ghz = 1.1;
  a.barrier_cost = 25;
  return a;
}

Arch kepler_k40m_4byte_banks() {
  Arch a = kepler_k40m();
  a.name = "Kepler K40m (4-byte bank mode)";
  a.smem_bank_bytes = 4;
  return a;
}

}  // namespace kconv::sim
