#include "src/sim/launch.hpp"

#include <vector>

#include "src/common/strutil.hpp"

namespace kconv::sim::detail {

LaunchResult launch_impl(Device& dev, const KernelBody& body,
                         const LaunchConfig& cfg, const LaunchOptions& opt) {
  KCONV_CHECK(cfg.grid.count() >= 1, "empty grid");
  // Validates thread/smem/register limits up front (throws on bad configs).
  (void)compute_occupancy(dev.arch(), cfg);

  if (opt.reset_l2) {
    dev.l2().invalidate();
  }
  dev.l2().reset_counters();

  // Per-SM constant cache (Kepler: 8 KiB read-only path for __constant__).
  L2Cache const_cache(8 * 1024, dev.arch().const_line_bytes, 4);

  LaunchResult res;
  res.blocks_total = cfg.grid.count();

  // Choose the block set: everything, or an evenly spaced sample.
  std::vector<u64> flat_ids;
  if (opt.sample_max_blocks > 0 &&
      opt.sample_max_blocks < res.blocks_total) {
    res.sampled = true;
    const u64 n = opt.sample_max_blocks;
    flat_ids.reserve(n);
    // Deterministic even spacing, offset to avoid always hitting border
    // blocks (block 0 often touches image edges and is atypical).
    const double stride = static_cast<double>(res.blocks_total) / n;
    for (u64 i = 0; i < n; ++i) {
      flat_ids.push_back(
          static_cast<u64>((static_cast<double>(i) + 0.5) * stride));
    }
  } else {
    flat_ids.reserve(res.blocks_total);
    for (u64 i = 0; i < res.blocks_total; ++i) flat_ids.push_back(i);
  }

  for (const u64 flat : flat_ids) {
    const Dim3 bidx{static_cast<u32>(flat % cfg.grid.x),
                    static_cast<u32>((flat / cfg.grid.x) % cfg.grid.y),
                    static_cast<u32>(flat / (static_cast<u64>(cfg.grid.x) *
                                             cfg.grid.y))};
    run_block(dev, body, cfg, bidx, opt.trace, opt.max_rounds_per_block,
              &const_cache, res.stats);
  }
  res.blocks_executed = res.stats.blocks_executed;

  if (opt.trace == TraceLevel::Timing) {
    res.timing = estimate_time(dev.arch(), cfg, res.stats, res.blocks_total);
  }
  return res;
}

}  // namespace kconv::sim::detail
