#include "src/sim/launch.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/analysis/hazard.hpp"
#include "src/analysis/lint.hpp"
#include "src/common/strutil.hpp"
#include "src/common/thread_pool.hpp"

namespace kconv::sim::detail {

namespace {

/// The set of blocks a launch executes: either the whole grid or a
/// deterministic, evenly spaced sample. Ids are computed on the fly — a
/// full-grid launch never materializes the (possibly multi-million-entry)
/// id list.
struct BlockSet {
  u64 count = 0;
  bool sampled = false;
  double stride = 1.0;

  static BlockSet pick(u64 blocks_total, u64 sample_max_blocks) {
    BlockSet set;
    if (sample_max_blocks > 0 && sample_max_blocks < blocks_total) {
      set.sampled = true;
      set.count = sample_max_blocks;
      // Deterministic even spacing, offset to avoid always hitting border
      // blocks (block 0 often touches image edges and is atypical).
      set.stride = static_cast<double>(blocks_total) / sample_max_blocks;
    } else {
      set.count = blocks_total;
    }
    return set;
  }

  u64 flat_id(u64 i) const {
    if (!sampled) return i;
    return static_cast<u64>((static_cast<double>(i) + 0.5) * stride);
  }
};

Dim3 unflatten(const Dim3& grid, u64 flat) {
  return Dim3{static_cast<u32>(flat % grid.x),
              static_cast<u32>((flat / grid.x) % grid.y),
              static_cast<u32>(flat / (static_cast<u64>(grid.x) * grid.y))};
}

/// One access-pattern cache per launch chunk, scoped like the L2 shadow and
/// constant-cache replica (docs/MODEL.md §5c): private state keeps parallel
/// launches lock-free and deterministic. Folds its hit counters into the
/// chunk's stats shard on destruction-free drain.
struct ChunkPatternCache {
  std::optional<PatternCache> cache;

  ChunkPatternCache(const Arch& arch, bool enabled) {
    if (enabled) {
      cache.emplace(arch.smem_banks, arch.smem_bank_bytes,
                    arch.gm_sector_bytes);
    }
  }
  PatternCache* get() { return cache.has_value() ? &*cache : nullptr; }
  void drain(KernelStats& stats) {
    if (cache.has_value()) {
      stats.pattern_lookups += cache->lookups();
      stats.pattern_hits += cache->hits();
    }
  }
};

}  // namespace

LaunchResult launch_impl(Device& dev, const KernelBody& body,
                         const LaunchConfig& cfg, const LaunchOptions& opt,
                         const BlockClassifier& classify,
                         const ReplayOriginsFn& origins) {
  KCONV_CHECK(cfg.grid.count() >= 1, "empty grid");
  // Validates thread/smem/register limits up front (throws on bad configs).
  (void)compute_occupancy(dev.arch(), cfg);

  const Arch& arch = dev.arch();
  if (opt.reset_l2) {
    dev.l2().invalidate();
  }
  dev.l2().reset_counters();

  LaunchResult res;
  res.blocks_total = cfg.grid.count();

  const BlockSet set = BlockSet::pick(res.blocks_total, opt.sample_max_blocks);
  res.sampled = set.sampled;

  const u32 threads = static_cast<u32>(std::min<u64>(
      ThreadPool::resolve_threads(opt.num_threads), set.count));

  // Replay engages only when both the caller opted in AND the kernel
  // declared a classifier; otherwise every block is unique (legacy path).
  const bool replaying = opt.replay && static_cast<bool>(classify);

  const bool profiling = opt.profile;
  res.profile.enabled = profiling;

  if (threads <= 1) {
    // Exact-legacy serial path: one shared per-SM constant cache, every
    // block's sectors through the device's single L2 (which therefore stays
    // warm across blocks — and across launches when reset_l2 is off).
    L2Cache const_cache(arch.const_cache_per_sm, arch.const_line_bytes, 4);
    ChunkPatternCache pattern(arch, opt.pattern_cache);
    std::optional<analysis::BlockChecker> checker;
    if (opt.hazard_check) checker.emplace(cfg, arch.warp_size);
    analysis::BlockChecker* chk = checker.has_value() ? &*checker : nullptr;
    // Timeline capture is capped at the first profile_timeline_blocks of
    // the launch order; blocks that replay record no slices and are
    // dropped (their phases still land in res.profile.phases).
    profile::BlockTimeline scratch_tl;
    const auto want_timeline = [&](u64 i, Dim3 bidx) -> profile::BlockTimeline* {
      if (!profiling || i >= opt.profile_timeline_blocks) return nullptr;
      scratch_tl = profile::BlockTimeline{};
      scratch_tl.block = bidx;
      scratch_tl.seq = i;
      return &scratch_tl;
    };
    const auto keep_timeline = [&](profile::BlockTimeline* tl) {
      if (tl != nullptr && !tl->slices.empty()) {
        res.profile.timelines.push_back(std::move(*tl));
      }
    };
    if (replaying) {
      ReplayRunner runner(arch, body, cfg, opt.trace,
                          opt.max_rounds_per_block, classify, origins,
                          pattern.get(), chk,
                          profiling ? &res.profile.phases : nullptr);
      for (u64 i = 0; i < set.count; ++i) {
        const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
        profile::BlockTimeline* tl = want_timeline(i, bidx);
        runner.run(bidx, &const_cache, dev.l2(), res.stats, tl);
        keep_timeline(tl);
      }
      runner.finish(res.stats);
      res.blocks_replayed = runner.blocks_replayed();
    } else {
      for (u64 i = 0; i < set.count; ++i) {
        const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
        profile::BlockTimeline* tl = want_timeline(i, bidx);
        std::optional<profile::BlockProfiler> bp;
        if (profiling) bp.emplace(res.profile.phases, tl);
        run_block(arch, body, cfg, bidx, opt.trace, opt.max_rounds_per_block,
                  &const_cache, dev.l2(), res.stats, nullptr, pattern.get(),
                  chk, bp ? &*bp : nullptr);
        keep_timeline(tl);
      }
    }
    pattern.drain(res.stats);
    if (chk != nullptr) analysis::finalize_hazards({chk}, res.analysis);
  } else {
    // Parallel path: contiguous chunks of the block list, one stats shard,
    // L2 shadow, and constant-cache replica per chunk. Shard state depends
    // only on the chunk partition (a pure function of count and thread
    // count), not on host scheduling, so a given num_threads is exactly
    // reproducible; outputs and all non-cache counters match the serial
    // path bit for bit (docs/MODEL.md §5a).
    const u64 grain = static_cast<u64>(
        ceil_div(static_cast<i64>(set.count), static_cast<i64>(threads)));
    const u64 n_chunks = static_cast<u64>(
        ceil_div(static_cast<i64>(set.count), static_cast<i64>(grain)));
    std::vector<KernelStats> shards(n_chunks);
    std::vector<u64> replayed(n_chunks, 0);
    // Per-chunk phase shards and timeline shards, merged in index order
    // like the stats shards; the timeline cap uses the GLOBAL launch index
    // so the captured set is thread-count-invariant.
    std::vector<profile::PhaseProfile> pshards(profiling ? n_chunks : 0);
    std::vector<std::vector<profile::BlockTimeline>> tshards(
        profiling ? n_chunks : 0);
    // One checker per chunk, merged in index order like the stats shards, so
    // the hazard report is a pure function of the chunk partition too.
    std::vector<std::unique_ptr<analysis::BlockChecker>> checkers(n_chunks);
    if (opt.hazard_check) {
      for (u64 c = 0; c < n_chunks; ++c) {
        checkers[c] =
            std::make_unique<analysis::BlockChecker>(cfg, arch.warp_size);
      }
    }
    ThreadPool pool(threads);
    pool.parallel_for(0, set.count, grain, [&](u64 b, u64 e, u32 chunk) {
      L2Cache l2_shadow(arch.l2_capacity, arch.gm_sector_bytes);
      L2Cache const_cache(arch.const_cache_per_sm, arch.const_line_bytes, 4);
      ChunkPatternCache pattern(arch, opt.pattern_cache);
      KernelStats& stats = shards[chunk];
      analysis::BlockChecker* chk = checkers[chunk].get();
      profile::PhaseProfile* psink = profiling ? &pshards[chunk] : nullptr;
      profile::BlockTimeline scratch_tl;
      const auto want_timeline = [&](u64 i,
                                     Dim3 bidx) -> profile::BlockTimeline* {
        if (!profiling || i >= opt.profile_timeline_blocks) return nullptr;
        scratch_tl = profile::BlockTimeline{};
        scratch_tl.block = bidx;
        scratch_tl.seq = i;
        return &scratch_tl;
      };
      const auto keep_timeline = [&](profile::BlockTimeline* tl) {
        if (tl != nullptr && !tl->slices.empty()) {
          tshards[chunk].push_back(std::move(*tl));
        }
      };
      if (replaying) {
        // Per-chunk trace table, like the per-chunk cache replicas: each
        // chunk captures its own class representatives, so shard contents
        // stay a pure function of the chunk partition.
        ReplayRunner runner(arch, body, cfg, opt.trace,
                            opt.max_rounds_per_block, classify, origins,
                            pattern.get(), chk, psink);
        for (u64 i = b; i < e; ++i) {
          const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
          profile::BlockTimeline* tl = want_timeline(i, bidx);
          runner.run(bidx, &const_cache, l2_shadow, stats, tl);
          keep_timeline(tl);
        }
        runner.finish(stats);
        replayed[chunk] = runner.blocks_replayed();
      } else {
        for (u64 i = b; i < e; ++i) {
          const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
          profile::BlockTimeline* tl = want_timeline(i, bidx);
          std::optional<profile::BlockProfiler> bp;
          if (psink != nullptr) bp.emplace(*psink, tl);
          run_block(arch, body, cfg, bidx, opt.trace,
                    opt.max_rounds_per_block, &const_cache, l2_shadow, stats,
                    nullptr, pattern.get(), chk, bp ? &*bp : nullptr);
          keep_timeline(tl);
        }
      }
      pattern.drain(stats);
    });
    for (const KernelStats& s : shards) res.stats += s;  // index order
    for (const u64 r : replayed) res.blocks_replayed += r;
    for (profile::PhaseProfile& p : pshards) res.profile.phases += p;
    for (std::vector<profile::BlockTimeline>& ts : tshards) {
      for (profile::BlockTimeline& tl : ts) {
        res.profile.timelines.push_back(std::move(tl));
      }
    }
    if (opt.hazard_check) {
      std::vector<analysis::BlockChecker*> ordered;
      ordered.reserve(n_chunks);
      for (const auto& c : checkers) ordered.push_back(c.get());
      analysis::finalize_hazards(ordered, res.analysis);
    }
  }
  res.blocks_executed = res.stats.blocks_executed;

  if (opt.trace == TraceLevel::Timing) {
    res.timing = estimate_time(arch, cfg, res.stats, res.blocks_total);
    if (opt.lint) {
      res.analysis.linted = true;
      res.analysis.lints = analysis::lint_stats(arch, cfg, res.stats,
                                                res.timing);
    }
  }
  return res;
}

}  // namespace kconv::sim::detail
