#include "src/sim/launch.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/analysis/hazard.hpp"
#include "src/analysis/lint.hpp"
#include "src/common/strutil.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/plan_cache.hpp"
#include "src/sim/plan_io.hpp"

namespace kconv::sim::detail {

namespace {

/// Grids smaller than this skip the tape sidecar on both the load and the
/// store side of the plan cache. Tape blobs scale with the instruction
/// stream (tens of MB for filter-heavy kernels) while their benefit over
/// fast-forward replay scales with the number of blocks that share the
/// load; a handful of blocks never pays the I/O back. The threshold is a
/// host-side amortization heuristic, not a correctness knob — below it warm
/// replay fast-forwards every block with identical outputs and counters.
constexpr u64 kTapeSidecarMinBlocks = 16;

/// The set of blocks a launch executes: either the whole grid or a
/// deterministic, evenly spaced sample. Ids are computed on the fly — a
/// full-grid launch never materializes the (possibly multi-million-entry)
/// id list.
struct BlockSet {
  u64 count = 0;
  bool sampled = false;
  double stride = 1.0;

  static BlockSet pick(u64 blocks_total, u64 sample_max_blocks) {
    BlockSet set;
    if (sample_max_blocks > 0 && sample_max_blocks < blocks_total) {
      set.sampled = true;
      set.count = sample_max_blocks;
      // Deterministic even spacing, offset to avoid always hitting border
      // blocks (block 0 often touches image edges and is atypical).
      set.stride = static_cast<double>(blocks_total) / sample_max_blocks;
    } else {
      set.count = blocks_total;
    }
    return set;
  }

  u64 flat_id(u64 i) const {
    if (!sampled) return i;
    return static_cast<u64>((static_cast<double>(i) + 0.5) * stride);
  }
};

Dim3 unflatten(const Dim3& grid, u64 flat) {
  return Dim3{static_cast<u32>(flat % grid.x),
              static_cast<u32>((flat / grid.x) % grid.y),
              static_cast<u32>(flat / (static_cast<u64>(grid.x) * grid.y))};
}

/// One access-pattern cache per launch chunk, scoped like the L2 shadow and
/// constant-cache replica (docs/MODEL.md §5c): private state keeps parallel
/// launches lock-free and deterministic. Folds its hit counters into the
/// chunk's stats shard on destruction-free drain.
struct ChunkPatternCache {
  std::optional<PatternCache> cache;

  ChunkPatternCache(const Arch& arch, bool enabled) {
    if (enabled) {
      cache.emplace(arch.smem_banks, arch.smem_bank_bytes,
                    arch.gm_sector_bytes);
    }
  }
  PatternCache* get() { return cache.has_value() ? &*cache : nullptr; }
  void drain(KernelStats& stats) {
    if (cache.has_value()) {
      stats.pattern_lookups += cache->lookups();
      stats.pattern_hits += cache->hits();
    }
  }
};

}  // namespace

LaunchResult launch_impl(Device& dev, const KernelBody& body,
                         const LaunchConfig& cfg, const LaunchOptions& opt,
                         const BlockClassifier& classify,
                         const ReplayOriginsFn& origins) {
  KCONV_CHECK(cfg.grid.count() >= 1, "empty grid");
  // Validates thread/smem/register limits up front (throws on bad configs).
  (void)compute_occupancy(dev.arch(), cfg);

  const Arch& arch = dev.arch();
  if (opt.reset_l2) {
    dev.l2().invalidate();
  }
  dev.l2().reset_counters();

  LaunchResult res;
  res.blocks_total = cfg.grid.count();

  const BlockSet set = BlockSet::pick(res.blocks_total, opt.sample_max_blocks);
  res.sampled = set.sampled;

  const u32 threads = static_cast<u32>(std::min<u64>(
      ThreadPool::resolve_threads(opt.num_threads), set.count));

  // Replay engages only when both the caller opted in AND the kernel
  // declared a classifier; otherwise every block is unique (legacy path).
  // Analytic mode is replay that never materializes: it hard-requires the
  // classifier (there is no trace to serve from otherwise).
  const bool analytic = opt.analytic;
  if (analytic) {
    KCONV_CHECK(static_cast<bool>(classify),
                "analytic launch requires a kernel with a replay_class hook");
    KCONV_CHECK(!opt.hazard_check,
                "analytic launch cannot run the hazard checker");
  }
  const bool replaying =
      (opt.replay || analytic) && static_cast<bool>(classify);
  res.analytic = analytic;

  // Multi-device sharding (docs/MODEL.md §9). The shard partition is fixed
  // before anything runs — a pure function of grid, strategy and device
  // count — so fleet launches are exactly reproducible like the parallel
  // path. Analytic launches have no per-block execution to shard, and
  // sampling would break the shard/transfer geometry; both are rejected
  // loudly (the CLI turns these into exit-2 flag errors first).
  const bool fleet_on = opt.fleet.devices > 1;
  if (fleet_on) {
    KCONV_CHECK(!analytic,
                "multi-device launch is unsupported with analytic execution");
    KCONV_CHECK(!set.sampled,
                "multi-device launch cannot combine with block sampling");
  }

  const bool profiling = opt.profile;
  res.profile.enabled = profiling;

  // kconv-scope (docs/MODEL.md §11): open the launch span. Purely
  // observational — the sink only ever receives appends, so the launch's
  // outputs and counters are untouched by telemetry being on.
  const obs::TelemetryScope tel = opt.telemetry;
  u64 tel_span = 0;
  if (tel.on()) {
    const char* mode = analytic     ? "analytic"
                       : replaying  ? "replay"
                       : threads > 1 ? "parallel"
                                     : "serial";
    tel_span = tel.sink->begin_span(
        tel.trace, tel.parent, "launch", "launch",
        strf("{\"blocks\":%llu,\"mode\":\"%s\",\"devices\":%u}",
             static_cast<unsigned long long>(res.blocks_total), mode,
             fleet_on ? opt.fleet.devices : 1u));
  }

  // Cross-launch plan persistence (docs/MODEL.md §5d). A warm plan seeds
  // every runner's class table before any block runs; any load-side
  // mismatch (version, key, arch, config, payload damage) is a loud miss
  // that falls back to capture. Saving is skipped when nothing fresh was
  // captured this launch.
  PlanCache* const plans = opt.plan_cache;
  const bool plan_enabled = plans != nullptr && !opt.plan_key.empty() &&
                            replaying && !opt.hazard_check;
  LaunchPlan plan;
  bool plan_hit = false;
  std::string store_key;
  if (plans != nullptr) {
    res.plan_cache_status = plan_enabled ? "miss" : "disabled";
  }
  // Only a functional, non-analytic launch executes tapes, so only it pays
  // for loading the tape sidecar — the heavyweight part of a stored plan.
  // Analytic launches load the trace payload alone, which is what makes
  // their warm path nearly free.
  //
  // The grid-size gate is an amortization cutoff: interpreting a tape beats
  // fast-forward per block, but the sidecar can run to tens of megabytes
  // (it scales with lane count x instruction stream, not with grid size),
  // and reading it back only pays for itself when enough blocks share the
  // cost. Below the cutoff warm replay uses per-block fast-forward, which
  // is bit-identical — the tape is purely a throughput tier. The store key
  // pins the launch config, so load and store sides of a key always agree
  // on the gate.
  const bool want_tapes = !analytic &&
                          opt.trace == TraceLevel::Functional &&
                          res.blocks_total >= kTapeSidecarMinBlocks;
  if (plan_enabled) {
    store_key = plan_store_key(opt.plan_key, arch, cfg, opt.trace,
                               opt.profile);
    std::string blob;
    std::string_view payload;
    std::string why;
    // kconv-xray pre-validation (docs/MODEL.md §10): a plan whose recorded
    // static signature disagrees with the launching kernel's is a capture
    // of a *different* access pattern under the same key — reject it
    // before trusting a byte, same as any other staleness. Either side
    // reporting 0 (no describer) degrades to the key-only contract.
    const auto signature_matches = [&](const LaunchPlan& p,
                                       std::string* reason) {
      if (opt.plan_static_signature == 0 || p.static_signature == 0 ||
          p.static_signature == opt.plan_static_signature) {
        return true;
      }
      if (reason != nullptr) *reason = "stale-static-signature";
      return false;
    };
    if (plans->load_view(store_key, blob, payload, &why)) {
      if (deserialize_plan(payload, plan, &why) &&
          plan_matches(plan, arch, cfg, opt.trace, &why) &&
          signature_matches(plan, &why)) {
        plan_hit = true;
        why = "hit";
        if (want_tapes) {
          std::string tape_blob;
          std::string_view tape_payload;
          // A missing/damaged sidecar is not a plan miss: the traces are
          // intact, so warm replay still serves every block — through
          // per-block fast-forward instead of the tape interpreter.
          if (plans->load_view(plan_tape_key(store_key), tape_blob,
                               tape_payload)) {
            (void)deserialize_tapes(tape_payload, plan);
          }
        }
      } else {
        plan = LaunchPlan{};
      }
    }
    res.plan_cache_status = why;
  }
  res.plan_cache_hit = plan_hit;
  const auto store_plan = [&](const LaunchPlan& out) {
    plans->store(store_key, serialize_plan(out));
    // An analytic warm launch never loaded the sidecar, so its view of the
    // tapes is incomplete — leave the stored sidecar alone rather than
    // shrink it to the freshly captured classes. Small grids skip the
    // sidecar symmetrically with the load gate: no future launch of this
    // key (same config, same grid) would ever read it.
    if (analytic && plan_hit) return;
    if (res.blocks_total < kTapeSidecarMinBlocks) return;
    const std::string tapes = serialize_tapes(out);
    if (!tapes.empty()) plans->store(plan_tape_key(store_key), tapes);
  };
  const auto saved_plan = [&](LaunchPlan&& loaded) {
    LaunchPlan out;
    out.arch = arch_fingerprint(arch);
    out.trace_level = static_cast<u8>(opt.trace);
    out.cfg = cfg;
    // Prefer the launching kernel's signature; a signature-less re-store
    // of a signed warm plan keeps the stored value instead of erasing it.
    out.static_signature = opt.plan_static_signature != 0
                               ? opt.plan_static_signature
                               : loaded.static_signature;
    // Keep every loaded class (a sampled warm launch may not even visit
    // some of them); export_plan appends only ids not already present.
    out.classes = std::move(loaded.classes);
    out.pattern_blob = std::move(loaded.pattern_blob);
    return out;
  };

  if (fleet_on) {
    // Fleet path: the chunk unit is a (device, block-range, transfer-ledger)
    // triple. Each device runs its shard's block ranges against its own L2
    // and constant-cache replica — per-device state depends only on the
    // shard partition, never on host scheduling, so outputs and all
    // scheduling-invariant counters are bit-identical to devices == 1
    // (docs/MODEL.md §5a contract, §9 for the transfer layer on top).
    const u32 D = opt.fleet.devices;
    std::vector<FleetShard> fshards =
        shard_grid(cfg.grid, opt.fleet, opt.fleet_hints);
    model_transfers(opt.fleet, opt.fleet_hints, res.blocks_total, fshards);
    DeviceFleet fleet(arch, D);
    std::vector<KernelStats> shards(D);
    std::vector<u64> replayed(D, 0);
    // Device runners outlive the pool so captured classes merge into the
    // shared plan in device-index order — one store for the whole fleet.
    std::vector<std::unique_ptr<ReplayRunner>> runners(replaying ? D : 0);
    std::vector<std::string> pattern_blobs(plan_enabled ? D : 0);
    std::vector<profile::PhaseProfile> pshards(profiling ? D : 0);
    std::vector<std::vector<profile::BlockTimeline>> tshards(profiling ? D
                                                                       : 0);
    std::vector<std::unique_ptr<analysis::BlockChecker>> checkers(D);
    if (opt.hazard_check) {
      for (u32 d = 0; d < D; ++d) {
        checkers[d] =
            std::make_unique<analysis::BlockChecker>(cfg, arch.warp_size);
      }
    }
    const u32 workers = static_cast<u32>(
        std::min<u64>(ThreadPool::resolve_threads(opt.num_threads), D));
    ThreadPool pool(workers);
    pool.parallel_for(0, D, 1, [&](u64 db, u64 de, u32 /*chunk*/) {
      for (u64 dvc = db; dvc < de; ++dvc) {
        const FleetShard& fs = fshards[dvc];
        if (fs.blocks == 0) continue;
        Device& fdev = fleet.device(static_cast<u32>(dvc));
        L2Cache const_cache(arch.const_cache_per_sm, arch.const_line_bytes,
                            4);
        ChunkPatternCache pattern(arch, opt.pattern_cache);
        KernelStats& stats = shards[dvc];
        analysis::BlockChecker* chk = checkers[dvc].get();
        profile::PhaseProfile* psink = profiling ? &pshards[dvc] : nullptr;
        profile::BlockTimeline scratch_tl;
        // The timeline cap keys on the FLAT block id (== the serial launch
        // index — fleet launches never sample), so the captured block set
        // is device-count-invariant.
        const auto want_timeline =
            [&](u64 flat, Dim3 bidx) -> profile::BlockTimeline* {
          if (!profiling || flat >= opt.profile_timeline_blocks) {
            return nullptr;
          }
          scratch_tl = profile::BlockTimeline{};
          scratch_tl.block = bidx;
          scratch_tl.seq = flat;
          return &scratch_tl;
        };
        const auto keep_timeline = [&](profile::BlockTimeline* tl) {
          if (tl != nullptr && !tl->slices.empty()) {
            tshards[dvc].push_back(std::move(*tl));
          }
        };
        if (replaying) {
          runners[dvc] = std::make_unique<ReplayRunner>(
              arch, body, cfg, opt.trace, opt.max_rounds_per_block, classify,
              origins, pattern.get(), chk, psink, analytic);
          ReplayRunner& runner = *runners[dvc];
          if (plan_hit) {
            runner.prime(plan);
            if (!plan.pattern_blob.empty() && pattern.get() != nullptr) {
              PlanReader pr(plan.pattern_blob);
              (void)pattern.get()->restore(pr);
            }
          }
          for (const BlockRange& r : fs.runs) {
            for (u64 flat = r.begin; flat < r.end; ++flat) {
              const Dim3 bidx = unflatten(cfg.grid, flat);
              profile::BlockTimeline* tl = want_timeline(flat, bidx);
              runner.run(bidx, &const_cache, fdev.l2(), stats, tl);
              keep_timeline(tl);
            }
          }
          runner.finish(stats);
          replayed[dvc] = runner.blocks_replayed();
          if (plan_enabled && pattern.get() != nullptr) {
            PlanWriter pw;
            pattern.get()->save(pw);
            pattern_blobs[dvc] = pw.take();
          }
        } else {
          for (const BlockRange& r : fs.runs) {
            for (u64 flat = r.begin; flat < r.end; ++flat) {
              const Dim3 bidx = unflatten(cfg.grid, flat);
              profile::BlockTimeline* tl = want_timeline(flat, bidx);
              std::optional<profile::BlockProfiler> bp;
              if (psink != nullptr) bp.emplace(*psink, tl);
              run_block(arch, body, cfg, bidx, opt.trace,
                        opt.max_rounds_per_block, &const_cache, fdev.l2(),
                        stats, nullptr, pattern.get(), chk,
                        bp ? &*bp : nullptr);
              keep_timeline(tl);
            }
          }
        }
        pattern.drain(stats);
      }
    });
    for (const KernelStats& s : shards) res.stats += s;  // device order
    for (const u64 r : replayed) res.blocks_replayed += r;
    if (plan_enabled) {
      // Store-once across the fleet: classes merge in device-index order
      // (first device to own a class wins) and exactly one store call runs
      // after every device finished — concurrent devices never race a
      // sidecar write.
      bool dirty = false;
      for (const auto& r : runners) {
        dirty = dirty || (r != nullptr && r->captured_fresh());
      }
      if (dirty) {
        LaunchPlan out = saved_plan(std::move(plan));
        for (const auto& r : runners) {
          if (r != nullptr) r->export_plan(out);
        }
        for (std::string& blob : pattern_blobs) {
          if (!blob.empty()) {
            out.pattern_blob = std::move(blob);
            break;
          }
        }
        store_plan(out);
      }
    }
    for (profile::PhaseProfile& p : pshards) res.profile.phases += p;
    for (std::vector<profile::BlockTimeline>& ts : tshards) {
      for (profile::BlockTimeline& tl : ts) {
        res.profile.timelines.push_back(std::move(tl));
      }
    }
    // Channel shards interleave flat ids across devices; restore launch
    // order so the timeline list reads like the serial one.
    std::stable_sort(res.profile.timelines.begin(),
                     res.profile.timelines.end(),
                     [](const profile::BlockTimeline& a,
                        const profile::BlockTimeline& b) {
                       return a.seq < b.seq;
                     });
    if (opt.hazard_check) {
      std::vector<analysis::BlockChecker*> ordered;
      ordered.reserve(D);
      for (const auto& c : checkers) ordered.push_back(c.get());
      analysis::finalize_hazards(ordered, res.analysis);
    }
    // Per-device compute seconds: each device executes only its shard, so
    // its time is the unscaled estimate over the shard's own blocks.
    std::vector<double> dev_seconds(D, 0.0);
    if (opt.trace == TraceLevel::Timing) {
      for (u32 d = 0; d < D; ++d) {
        if (fshards[d].blocks > 0) {
          dev_seconds[d] =
              estimate_time(arch, cfg, shards[d], fshards[d].blocks).seconds;
        }
      }
    }
    res.fleet = analyze_fleet(arch, opt.fleet, opt.fleet_hints,
                              res.blocks_total, fshards, shards, dev_seconds);
    // One telemetry event per device chunk, in device order (deterministic:
    // device_reports is built by analyze_fleet in index order).
    if (tel.on()) {
      for (const FleetDeviceReport& d : res.fleet.device_reports) {
        tel.sink->fleet_device_event(
            tel.trace, tel_span, d.device, d.blocks, d.ledger.h2d_bytes,
            d.ledger.d2h_bytes, d.ledger.d2d_bytes, d.transfer_seconds,
            d.compute_seconds, d.comm_ratio);
      }
    }
  } else if (threads <= 1) {
    // Exact-legacy serial path: one shared per-SM constant cache, every
    // block's sectors through the device's single L2 (which therefore stays
    // warm across blocks — and across launches when reset_l2 is off).
    L2Cache const_cache(arch.const_cache_per_sm, arch.const_line_bytes, 4);
    ChunkPatternCache pattern(arch, opt.pattern_cache);
    std::optional<analysis::BlockChecker> checker;
    if (opt.hazard_check) checker.emplace(cfg, arch.warp_size);
    analysis::BlockChecker* chk = checker.has_value() ? &*checker : nullptr;
    // Timeline capture is capped at the first profile_timeline_blocks of
    // the launch order; blocks that replay record no slices and are
    // dropped (their phases still land in res.profile.phases).
    profile::BlockTimeline scratch_tl;
    const auto want_timeline = [&](u64 i, Dim3 bidx) -> profile::BlockTimeline* {
      if (!profiling || i >= opt.profile_timeline_blocks) return nullptr;
      scratch_tl = profile::BlockTimeline{};
      scratch_tl.block = bidx;
      scratch_tl.seq = i;
      return &scratch_tl;
    };
    const auto keep_timeline = [&](profile::BlockTimeline* tl) {
      if (tl != nullptr && !tl->slices.empty()) {
        res.profile.timelines.push_back(std::move(*tl));
      }
    };
    if (replaying) {
      ReplayRunner runner(arch, body, cfg, opt.trace,
                          opt.max_rounds_per_block, classify, origins,
                          pattern.get(), chk,
                          profiling ? &res.profile.phases : nullptr,
                          analytic);
      if (plan_hit) {
        // Moved, not copied: the serial path has exactly one runner, and a
        // post-capture store re-exports classes from live runner state.
        runner.prime(std::move(plan));
        if (!plan.pattern_blob.empty() && pattern.get() != nullptr) {
          PlanReader pr(plan.pattern_blob);
          (void)pattern.get()->restore(pr);  // priming only; safe to skip
        }
      }
      for (u64 i = 0; i < set.count; ++i) {
        const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
        profile::BlockTimeline* tl = want_timeline(i, bidx);
        runner.run(bidx, &const_cache, dev.l2(), res.stats, tl);
        keep_timeline(tl);
      }
      runner.finish(res.stats);
      res.blocks_replayed = runner.blocks_replayed();
      if (plan_enabled && runner.captured_fresh()) {
        LaunchPlan out = saved_plan(std::move(plan));
        runner.export_plan(out);
        if (pattern.get() != nullptr) {
          PlanWriter pw;
          pattern.get()->save(pw);
          out.pattern_blob = pw.take();
        }
        store_plan(out);
      }
    } else {
      for (u64 i = 0; i < set.count; ++i) {
        const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
        profile::BlockTimeline* tl = want_timeline(i, bidx);
        std::optional<profile::BlockProfiler> bp;
        if (profiling) bp.emplace(res.profile.phases, tl);
        run_block(arch, body, cfg, bidx, opt.trace, opt.max_rounds_per_block,
                  &const_cache, dev.l2(), res.stats, nullptr, pattern.get(),
                  chk, bp ? &*bp : nullptr);
        keep_timeline(tl);
      }
    }
    pattern.drain(res.stats);
    if (chk != nullptr) analysis::finalize_hazards({chk}, res.analysis);
  } else {
    // Parallel path: contiguous chunks of the block list, one stats shard,
    // L2 shadow, and constant-cache replica per chunk. Shard state depends
    // only on the chunk partition (a pure function of count and thread
    // count), not on host scheduling, so a given num_threads is exactly
    // reproducible; outputs and all non-cache counters match the serial
    // path bit for bit (docs/MODEL.md §5a).
    const u64 grain = static_cast<u64>(
        ceil_div(static_cast<i64>(set.count), static_cast<i64>(threads)));
    const u64 n_chunks = static_cast<u64>(
        ceil_div(static_cast<i64>(set.count), static_cast<i64>(grain)));
    std::vector<KernelStats> shards(n_chunks);
    std::vector<u64> replayed(n_chunks, 0);
    // Chunk runners live past the pool so captured classes can be merged
    // into the saved plan in index order (deterministic store contents).
    std::vector<std::unique_ptr<ReplayRunner>> runners(
        replaying ? n_chunks : 0);
    std::vector<std::string> pattern_blobs(plan_enabled ? n_chunks : 0);
    // Per-chunk phase shards and timeline shards, merged in index order
    // like the stats shards; the timeline cap uses the GLOBAL launch index
    // so the captured set is thread-count-invariant.
    std::vector<profile::PhaseProfile> pshards(profiling ? n_chunks : 0);
    std::vector<std::vector<profile::BlockTimeline>> tshards(
        profiling ? n_chunks : 0);
    // One checker per chunk, merged in index order like the stats shards, so
    // the hazard report is a pure function of the chunk partition too.
    std::vector<std::unique_ptr<analysis::BlockChecker>> checkers(n_chunks);
    if (opt.hazard_check) {
      for (u64 c = 0; c < n_chunks; ++c) {
        checkers[c] =
            std::make_unique<analysis::BlockChecker>(cfg, arch.warp_size);
      }
    }
    ThreadPool pool(threads);
    pool.parallel_for(0, set.count, grain, [&](u64 b, u64 e, u32 chunk) {
      L2Cache l2_shadow(arch.l2_capacity, arch.gm_sector_bytes);
      L2Cache const_cache(arch.const_cache_per_sm, arch.const_line_bytes, 4);
      ChunkPatternCache pattern(arch, opt.pattern_cache);
      KernelStats& stats = shards[chunk];
      analysis::BlockChecker* chk = checkers[chunk].get();
      profile::PhaseProfile* psink = profiling ? &pshards[chunk] : nullptr;
      profile::BlockTimeline scratch_tl;
      const auto want_timeline = [&](u64 i,
                                     Dim3 bidx) -> profile::BlockTimeline* {
        if (!profiling || i >= opt.profile_timeline_blocks) return nullptr;
        scratch_tl = profile::BlockTimeline{};
        scratch_tl.block = bidx;
        scratch_tl.seq = i;
        return &scratch_tl;
      };
      const auto keep_timeline = [&](profile::BlockTimeline* tl) {
        if (tl != nullptr && !tl->slices.empty()) {
          tshards[chunk].push_back(std::move(*tl));
        }
      };
      if (replaying) {
        // Per-chunk trace table, like the per-chunk cache replicas: each
        // chunk captures its own class representatives, so shard contents
        // stay a pure function of the chunk partition. A warm plan primes
        // every chunk's table, so no chunk executes a representative.
        runners[chunk] = std::make_unique<ReplayRunner>(
            arch, body, cfg, opt.trace, opt.max_rounds_per_block, classify,
            origins, pattern.get(), chk, psink, analytic);
        ReplayRunner& runner = *runners[chunk];
        if (plan_hit) {
          runner.prime(plan);
          if (!plan.pattern_blob.empty() && pattern.get() != nullptr) {
            PlanReader pr(plan.pattern_blob);
            (void)pattern.get()->restore(pr);
          }
        }
        for (u64 i = b; i < e; ++i) {
          const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
          profile::BlockTimeline* tl = want_timeline(i, bidx);
          runner.run(bidx, &const_cache, l2_shadow, stats, tl);
          keep_timeline(tl);
        }
        runner.finish(stats);
        replayed[chunk] = runner.blocks_replayed();
        if (plan_enabled && pattern.get() != nullptr) {
          PlanWriter pw;
          pattern.get()->save(pw);
          pattern_blobs[chunk] = pw.take();
        }
      } else {
        for (u64 i = b; i < e; ++i) {
          const Dim3 bidx = unflatten(cfg.grid, set.flat_id(i));
          profile::BlockTimeline* tl = want_timeline(i, bidx);
          std::optional<profile::BlockProfiler> bp;
          if (psink != nullptr) bp.emplace(*psink, tl);
          run_block(arch, body, cfg, bidx, opt.trace,
                    opt.max_rounds_per_block, &const_cache, l2_shadow, stats,
                    nullptr, pattern.get(), chk, bp ? &*bp : nullptr);
          keep_timeline(tl);
        }
      }
      pattern.drain(stats);
    });
    for (const KernelStats& s : shards) res.stats += s;  // index order
    for (const u64 r : replayed) res.blocks_replayed += r;
    if (plan_enabled) {
      bool dirty = false;
      for (const auto& r : runners) {
        dirty = dirty || (r != nullptr && r->captured_fresh());
      }
      if (dirty) {
        LaunchPlan out = saved_plan(std::move(plan));
        for (const auto& r : runners) {
          if (r != nullptr) r->export_plan(out);  // index order, first wins
        }
        // One chunk's pattern tables are as good as another's (all are
        // analyzer outputs); chunk 0's go to disk for determinism.
        if (!pattern_blobs.empty() && !pattern_blobs[0].empty()) {
          out.pattern_blob = std::move(pattern_blobs[0]);
        }
        store_plan(out);
      }
    }
    for (profile::PhaseProfile& p : pshards) res.profile.phases += p;
    for (std::vector<profile::BlockTimeline>& ts : tshards) {
      for (profile::BlockTimeline& tl : ts) {
        res.profile.timelines.push_back(std::move(tl));
      }
    }
    if (opt.hazard_check) {
      std::vector<analysis::BlockChecker*> ordered;
      ordered.reserve(n_chunks);
      for (const auto& c : checkers) ordered.push_back(c.get());
      analysis::finalize_hazards(ordered, res.analysis);
    }
  }
  res.blocks_executed = res.stats.blocks_executed;

  if (opt.trace == TraceLevel::Timing) {
    res.timing = estimate_time(arch, cfg, res.stats, res.blocks_total);
    if (opt.lint) {
      res.analysis.linted = true;
      res.analysis.lints = analysis::lint_stats(arch, cfg, res.stats,
                                                res.timing);
    }
  }
  if (tel.on()) {
    tel.sink->plan_cache_event(tel.trace, tel_span, res.plan_cache_status,
                               res.blocks_replayed);
    tel.sink->end_span(tel_span);
  }
  return res;
}

}  // namespace kconv::sim::detail
