#include "src/sim/constmem.hpp"

#include "src/common/error.hpp"

namespace kconv::sim {

ConstCost analyze_const(std::span<const Access> lanes, u32 line_bytes) {
  KCONV_ASSERT(line_bytes > 0);
  ConstCost cost;
  u64 addrs[32];
  u32 n_addrs = 0;
  for (const Access& a : lanes) {
    if (a.bytes == 0) continue;  // predicated-off lane
    bool seen = false;
    for (u32 i = 0; i < n_addrs; ++i) {
      if (addrs[i] == a.addr) {
        seen = true;
        break;
      }
    }
    if (!seen && n_addrs < 32) addrs[n_addrs++] = a.addr;

    const u64 line = (a.addr / line_bytes) * line_bytes;
    bool line_seen = false;
    for (u32 i = 0; i < cost.lines_touched; ++i) {
      if (cost.line_addrs[i] == line) {
        line_seen = true;
        break;
      }
    }
    if (!line_seen && cost.lines_touched < 32) {
      cost.line_addrs[cost.lines_touched++] = line;
    }
  }
  cost.requests = n_addrs == 0 ? 1 : n_addrs;
  return cost;
}

}  // namespace kconv::sim
