// Inter-device transfer model for sharded (multi-device) launches.
//
// The functional simulator executes every block against shared host-side
// memory, so sharding a grid across N simulated devices changes no output
// byte and no execution counter. What sharding DOES create is traffic that
// a single device never pays: staging each device's working set over the
// host link and exchanging halo rows between spatial neighbors. This header
// models exactly that layer — `Interconnect` is the Arch-style profile of
// the links, `TransferLedger` the per-device byte/op accounting, and
// `FleetOptions`/`FleetHints` the knobs kernel runners and callers use to
// request a sharded launch (docs/MODEL.md §9: the ledger is MODELED from
// shard geometry, unlike the execution counters, which stay counter-exact).
#pragma once

#include <string>

#include "src/common/types.hpp"

namespace kconv::sim {

/// How a fleet launch splits the block grid across devices.
enum class ShardStrategy : u8 {
  /// Contiguous slabs of the flat block list (images, when the caller
  /// shards a batch; otherwise a naive block split). Each device stages a
  /// full input replica — the baseline the other strategies beat.
  Batch,
  /// Slabs along the kernel's output-channel (filter-group) grid axis.
  /// Every device reads the whole input but only its filter slice.
  Channel,
  /// Slabs of output-row blocks with explicit halo exchange: each device
  /// stages only its input rows and receives the (K-1)-row halo from its
  /// lower neighbor device-to-device.
  Spatial,
};

const char* shard_name(ShardStrategy s);
/// Parses "batch" | "channel" | "spatial"; returns false on anything else.
bool parse_shard(const std::string& s, ShardStrategy& out);

/// Arch-style profile of the links connecting host and devices. Values are
/// achievable (not datasheet-peak) bandwidths; latency is charged once per
/// staging/exchange operation.
struct Interconnect {
  std::string name = "pcie3-x16";
  /// Host -> device staging bandwidth, bytes/second.
  double h2d_bytes_per_s = 12.0e9;
  /// Device -> host write-back bandwidth, bytes/second.
  double d2h_bytes_per_s = 12.0e9;
  /// Device -> device bandwidth. Without peer-to-peer this is the
  /// store-and-forward rate through host memory (each byte crosses the
  /// host link twice).
  double d2d_bytes_per_s = 6.0e9;
  /// Per-operation launch latency in seconds (DMA setup + driver).
  double latency_s = 10.0e-6;
  /// Direct device-to-device DMA (NVLink-class). Affects only the modeled
  /// d2d rate above; the byte accounting is identical either way.
  bool p2p = false;
};

/// PCIe gen3 x16 per device, no peer-to-peer: the K40m-era deployment the
/// paper's hardware actually shipped in.
Interconnect pcie3_x16();
/// NVLink-class mesh with peer-to-peer DMA, for what-if comparisons.
Interconnect nvlink_like();

/// Per-device transfer accounting for one sharded launch. Bytes are exact
/// consequences of the shard geometry; seconds come from the Interconnect
/// model.
struct TransferLedger {
  u64 h2d_bytes = 0;  ///< host -> device staging (input shard + filters)
  u64 d2h_bytes = 0;  ///< device -> host write-back (output shard)
  u64 d2d_bytes = 0;  ///< device <-> device halo/reduce exchange
  u64 h2d_ops = 0;
  u64 d2h_ops = 0;
  u64 d2d_ops = 0;

  u64 total_bytes() const { return h2d_bytes + d2h_bytes + d2d_bytes; }

  /// Modeled wall time of this ledger over `link` (transfers serialize
  /// with compute in the fleet model; see docs/MODEL.md §9).
  double seconds(const Interconnect& link) const;

  TransferLedger& operator+=(const TransferLedger& o) {
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    d2d_bytes += o.d2d_bytes;
    h2d_ops += o.h2d_ops;
    d2h_ops += o.d2h_ops;
    d2d_ops += o.d2d_ops;
    return *this;
  }
};

/// Caller-facing fleet request, carried on LaunchOptions. devices == 1 is
/// the single-device path (everything below is ignored).
struct FleetOptions {
  u32 devices = 1;
  ShardStrategy strategy = ShardStrategy::Batch;
  Interconnect interconnect;
};

/// Shard geometry a kernel runner declares so the launch layer can split
/// its grid and model the resulting traffic. Axis conventions:
///   - the spatial axis is the grid axis enumerating output-row blocks,
///     with `spatial_minor` column blocks folded in below each row block
///     (general kernel: grid.y = rows * nbx, minor = nbx);
///   - the channel axis enumerates filter groups (general: grid.x).
/// A kernel that cannot shard along a strategy leaves its axis at -1; the
/// launch layer rejects the request loudly instead of mis-sharding.
struct FleetHints {
  bool provided = false;
  i32 channel_axis = -1;
  i32 spatial_axis = -1;
  u32 spatial_minor = 1;
  /// Full-problem staging footprints, bytes.
  u64 input_bytes = 0;
  u64 filter_bytes = 0;
  u64 output_bytes = 0;
  /// Input bytes re-read across one interior spatial cut ((K-1) rows).
  u64 halo_bytes_per_cut = 0;
};

}  // namespace kconv::sim
