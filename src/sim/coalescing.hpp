// Global-memory coalescing model.
//
// Kepler services global loads through L2 in 32-byte sectors. One warp
// memory instruction generates one transaction per *distinct* sector its
// lanes touch: fully coalesced unit-stride float accesses touch 4 sectors
// (128 B), scattered accesses touch up to 32. The convolution kernels in
// this repo are designed so contiguous threads access contiguous addresses
// (at n-pixel granularity), keeping this number minimal.
#pragma once

#include <span>
#include <vector>

#include "src/sim/event.hpp"

namespace kconv::sim {

/// Result of analyzing one warp global-memory transaction.
struct GmemCost {
  /// Distinct sector base addresses touched (each is one L2 request).
  std::vector<u64> sectors;
  /// Sum of bytes the lanes asked for.
  u64 lane_bytes = 0;
};

/// Groups the lanes' byte ranges into `sector_bytes`-aligned sectors,
/// reusing `out`'s capacity. This is the hot-loop form: one warp global
/// instruction is analyzed per call, so executors keep a single GmemCost
/// alive for the whole block instead of allocating a sector vector per
/// transaction.
void analyze_gmem(std::span<const Access> lanes, u32 sector_bytes,
                  GmemCost& out);

/// Convenience form returning a fresh GmemCost (tests, one-off callers).
inline GmemCost analyze_gmem(std::span<const Access> lanes, u32 sector_bytes) {
  GmemCost cost;
  analyze_gmem(lanes, sector_bytes, cost);
  return cost;
}

}  // namespace kconv::sim
