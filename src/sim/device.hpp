// The simulated GPU device: architecture + memory allocators + L2.
//
// A Device is the root object user code creates; everything else (buffers,
// constant banks, launches) hangs off it. Addresses are handed out
// monotonically so that no two allocations ever alias.
#pragma once

#include <memory>
#include <span>

#include "src/sim/arch.hpp"
#include "src/sim/l2cache.hpp"
#include "src/sim/memory.hpp"

namespace kconv::sim {

class Device {
 public:
  explicit Device(Arch arch)
      : arch_(std::move(arch)),
        l2_(arch_.l2_capacity, arch_.gm_sector_bytes) {}

  const Arch& arch() const { return arch_; }
  L2Cache& l2() { return l2_; }

  /// Allocates `bytes` of simulated global memory (256-byte aligned base,
  /// like cudaMalloc).
  std::unique_ptr<DeviceBuffer> alloc_bytes(std::size_t bytes) {
    const u64 base = next_gm_;
    next_gm_ = round_up(static_cast<i64>(base + bytes), 256);
    return std::make_unique<DeviceBuffer>(base, bytes);
  }

  /// Allocates a typed global array of `count` elements.
  template <typename T>
  DeviceArray<T> alloc(i64 count) {
    KCONV_CHECK(count >= 0, "negative allocation");
    return DeviceArray<T>(alloc_bytes(static_cast<std::size_t>(count) *
                                      sizeof(T)),
                          count);
  }

  /// Allocates a typed global array and uploads `src` into it.
  template <typename T>
  DeviceArray<T> alloc(std::span<const T> src) {
    auto arr = alloc<T>(static_cast<i64>(src.size()));
    arr.upload(src);
    return arr;
  }

  /// Creates a constant-memory bank holding `src` (rejected if it exceeds
  /// the architecture's constant capacity — the paper's reason for moving
  /// general-case filters to global memory).
  template <typename T>
  std::unique_ptr<ConstBuffer> alloc_const(std::span<const T> src) {
    const u64 base = next_const_;
    next_const_ = round_up(static_cast<i64>(base + src.size_bytes()), 256);
    auto buf = std::make_unique<ConstBuffer>(base, src.size_bytes(),
                                             arch_.const_capacity);
    buf->upload(src);
    return buf;
  }

 private:
  Arch arch_;
  L2Cache l2_;
  u64 next_gm_ = 0x1000;     // leave page 0 unmapped to catch null-ish bugs
  u64 next_const_ = 0x1000;  // constant space is separate from global space
};

}  // namespace kconv::sim
