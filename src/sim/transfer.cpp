#include "src/sim/transfer.hpp"

namespace kconv::sim {

const char* shard_name(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::Batch: return "batch";
    case ShardStrategy::Channel: return "channel";
    case ShardStrategy::Spatial: return "spatial";
  }
  return "?";
}

bool parse_shard(const std::string& s, ShardStrategy& out) {
  if (s == "batch") out = ShardStrategy::Batch;
  else if (s == "channel") out = ShardStrategy::Channel;
  else if (s == "spatial") out = ShardStrategy::Spatial;
  else return false;
  return true;
}

Interconnect pcie3_x16() { return Interconnect{}; }

Interconnect nvlink_like() {
  Interconnect link;
  link.name = "nvlink";
  link.h2d_bytes_per_s = 40.0e9;
  link.d2h_bytes_per_s = 40.0e9;
  link.d2d_bytes_per_s = 40.0e9;
  link.latency_s = 5.0e-6;
  link.p2p = true;
  return link;
}

double TransferLedger::seconds(const Interconnect& link) const {
  double s = 0.0;
  if (h2d_bytes > 0 && link.h2d_bytes_per_s > 0) {
    s += static_cast<double>(h2d_bytes) / link.h2d_bytes_per_s;
  }
  if (d2h_bytes > 0 && link.d2h_bytes_per_s > 0) {
    s += static_cast<double>(d2h_bytes) / link.d2h_bytes_per_s;
  }
  if (d2d_bytes > 0 && link.d2d_bytes_per_s > 0) {
    s += static_cast<double>(d2d_bytes) / link.d2d_bytes_per_s;
  }
  s += static_cast<double>(h2d_ops + d2h_ops + d2d_ops) * link.latency_s;
  return s;
}

}  // namespace kconv::sim
