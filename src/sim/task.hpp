// Coroutine plumbing for device-thread programs.
//
// A device kernel body is a C++20 coroutine returning ThreadProgram. Each
// simulated thread (lane) is one coroutine instance; it suspends at every
// memory operation, publishing an Access into its promise. The
// BlockExecutor resumes lanes warp-by-warp so that the k-th suspension of
// every lane in a warp retires as one warp transaction — the lockstep
// execution real hardware provides implicitly.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "src/sim/event.hpp"

namespace kconv::sim {

/// Handle to one lane's coroutine. Move-only RAII owner.
class ThreadProgram {
 public:
  struct promise_type {
    /// The access this lane suspended on (valid while suspended mid-body).
    Access pending{};
    /// Error escaping the body; rethrown by the executor.
    std::exception_ptr error;

    ThreadProgram get_return_object() {
      return ThreadProgram(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ThreadProgram() = default;
  explicit ThreadProgram(Handle h) : h_(h) {}
  ThreadProgram(ThreadProgram&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  ThreadProgram& operator=(ThreadProgram&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ThreadProgram(const ThreadProgram&) = delete;
  ThreadProgram& operator=(const ThreadProgram&) = delete;
  ~ThreadProgram() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_.done(); }
  void resume() { h_.resume(); }
  promise_type& promise() const { return h_.promise(); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

namespace detail {

/// Awaitable for a load: the functional read already happened when the
/// awaitable was built; suspension only exists so the executor can charge
/// the warp transaction. Memory effects thus apply in lane-resume order
/// within a round — the same contract as warp-synchronous CUDA code that
/// separates conflicting accesses with __syncthreads (all kconv kernels do).
/// That contract is also what lets replay mode set `ready`: with no
/// conflicting cross-lane accesses between barriers, skipping the
/// suspension entirely leaves memory state bit-identical (MODEL.md §5b).
template <typename V>
struct LoadAwait {
  Access acc;
  V value;
  bool ready = false;

  bool await_ready() const noexcept { return ready; }
  void await_suspend(ThreadProgram::Handle h) const noexcept {
    h.promise().pending = acc;
  }
  V await_resume() const noexcept { return value; }
};

/// Awaitable for a store (write already applied) or a barrier.
struct VoidAwait {
  Access acc;
  bool ready = false;

  bool await_ready() const noexcept { return ready; }
  void await_suspend(ThreadProgram::Handle h) const noexcept {
    h.promise().pending = acc;
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

}  // namespace kconv::sim
