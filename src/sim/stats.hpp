// Counters accumulated while executing device code.
//
// KernelStats is the interface between the functional/transaction layer and
// the timing model: it holds exactly the quantities the paper reasons about
// (GM sectors, SM request cycles and conflicts, CM broadcasts, FMA work).
#pragma once

#include "src/common/types.hpp"

namespace kconv::sim {

/// Aggregated execution statistics for one or more thread blocks.
struct KernelStats {
  // --- Compute --------------------------------------------------------------
  /// Total FMA lane-operations executed (one lane-FMA = 2 flops).
  u64 fma_lane_ops = 0;
  /// Warp-level FMA instructions (per warp: max over lanes of its FMA count).
  u64 fma_warp_instrs = 0;
  /// Non-FMA arithmetic charged by kernels (address math, adds); lane ops.
  u64 alu_lane_ops = 0;
  u64 alu_warp_instrs = 0;

  // --- Shared memory ---------------------------------------------------------
  /// Warp-level shared-memory instructions issued (loads + stores).
  u64 smem_instrs = 0;
  /// Request cycles consumed after bank-conflict analysis. For a
  /// conflict-free access this equals 1 per instruction; conflicts add
  /// replays. This is the quantity the paper's §2.1 model halves by
  /// matching W_CD to W_SMB.
  u64 smem_request_cycles = 0;
  /// Useful bytes moved to/from shared memory (sum of unique lane bytes).
  u64 smem_bytes = 0;
  /// Sum of the bytes each lane asked for, per SM instruction (counts
  /// broadcast reads at full width, unlike smem_bytes). Divided by
  /// warp_size * smem_instrs this is the average lane access width the
  /// bank-width-mismatch lint compares against W_SMB.
  u64 smem_lane_bytes = 0;
  /// Store-side split of smem_instrs / smem_request_cycles: the paper's
  /// transposed-filter conflicts (§4.2) live entirely on stores and would
  /// be diluted by conflict-free loads in the combined replay factor.
  u64 smem_store_instrs = 0;
  u64 smem_store_request_cycles = 0;

  // --- Global memory ----------------------------------------------------------
  /// Warp-level global-memory instructions issued.
  u64 gm_instrs = 0;
  /// 32B sectors requested (after coalescing, before L2).
  u64 gm_sectors = 0;
  /// Sectors that missed L2 and were served by DRAM.
  u64 gm_sectors_dram = 0;
  /// Useful bytes requested by lanes (not padded to sector granularity).
  u64 gm_bytes_useful = 0;

  // --- Constant memory ---------------------------------------------------------
  /// Warp-level constant loads issued.
  u64 const_instrs = 0;
  /// Serialized constant requests (1 when the whole warp broadcasts).
  u64 const_requests = 0;
  /// Constant-cache line misses (charged as GM sectors as well).
  u64 const_line_misses = 0;

  // --- Control ------------------------------------------------------------------
  /// __syncthreads barriers executed (per block).
  u64 barriers = 0;
  /// Barrier-separated program segments that contain >= 1 GM load.
  u64 gm_phases = 0;
  /// Segments containing BOTH a GM load and a shared-memory store: the
  /// load's latency sits on the critical path into the following barrier
  /// (no prefetch distance). Kernels that prefetch into registers and
  /// publish to SM in a later segment avoid this — the timing model's
  /// latency floor charges only these dependent phases.
  u64 gm_dep_phases = 0;
  /// Warp transactions that retired with lane subgroups (divergence replays).
  u64 divergent_retires = 0;

  // --- Analyzer memoization -------------------------------------------------
  /// Warp transactions looked up in the access-pattern cache (MODEL.md §5c;
  /// 0 when the cache is disabled — all-predicated-off groups bypass it).
  u64 pattern_lookups = 0;
  /// Lookups served from the cache without re-running the analyzer.
  u64 pattern_hits = 0;

  /// Longest per-warp instruction stream (critical path for the latency floor).
  u64 max_warp_instrs = 0;

  /// Thread blocks whose statistics are accumulated here.
  u64 blocks_executed = 0;

  KernelStats& operator+=(const KernelStats& o) {
    fma_lane_ops += o.fma_lane_ops;
    fma_warp_instrs += o.fma_warp_instrs;
    alu_lane_ops += o.alu_lane_ops;
    alu_warp_instrs += o.alu_warp_instrs;
    smem_instrs += o.smem_instrs;
    smem_request_cycles += o.smem_request_cycles;
    smem_bytes += o.smem_bytes;
    smem_lane_bytes += o.smem_lane_bytes;
    smem_store_instrs += o.smem_store_instrs;
    smem_store_request_cycles += o.smem_store_request_cycles;
    gm_instrs += o.gm_instrs;
    gm_sectors += o.gm_sectors;
    gm_sectors_dram += o.gm_sectors_dram;
    gm_bytes_useful += o.gm_bytes_useful;
    const_instrs += o.const_instrs;
    const_requests += o.const_requests;
    const_line_misses += o.const_line_misses;
    barriers += o.barriers;
    gm_phases += o.gm_phases;
    gm_dep_phases += o.gm_dep_phases;
    divergent_retires += o.divergent_retires;
    pattern_lookups += o.pattern_lookups;
    pattern_hits += o.pattern_hits;
    max_warp_instrs = max_warp_instrs > o.max_warp_instrs ? max_warp_instrs
                                                          : o.max_warp_instrs;
    blocks_executed += o.blocks_executed;
    return *this;
  }

  /// Total floating-point operations (FMA counts as 2).
  double flops() const { return 2.0 * static_cast<double>(fma_lane_ops); }

  /// Average SM request cycles per SM instruction (1.0 = conflict-free).
  double smem_replay_factor() const {
    return smem_instrs == 0 ? 0.0
                            : static_cast<double>(smem_request_cycles) /
                                  static_cast<double>(smem_instrs);
  }

  /// Average SM request cycles per SM *store* instruction.
  double smem_store_replay_factor() const {
    return smem_store_instrs == 0
               ? 0.0
               : static_cast<double>(smem_store_request_cycles) /
                     static_cast<double>(smem_store_instrs);
  }

  /// Access-pattern-cache hit rate (0.0 when the cache never engaged).
  double pattern_hit_rate() const {
    return pattern_lookups == 0 ? 0.0
                                : static_cast<double>(pattern_hits) /
                                      static_cast<double>(pattern_lookups);
  }

  /// GM over-fetch: sector bytes actually moved / bytes the lanes asked for.
  double gm_overfetch(u32 sector_bytes) const {
    return gm_bytes_useful == 0
               ? 0.0
               : static_cast<double>(gm_sectors) * sector_bytes /
                     static_cast<double>(gm_bytes_useful);
  }
};

}  // namespace kconv::sim
