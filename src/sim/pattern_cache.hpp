// Warp access-pattern memoization (docs/MODEL.md §5c).
//
// Convolution kernels are massively repetitive: a handful of affine warp
// access shapes — fixed lane-to-lane address deltas, per-lane widths and
// active masks — account for nearly all warp transactions of a launch. The
// analyzers those transactions feed (analyze_smem's bank walk and
// analyze_gmem's sector grouping) are pure functions of a
// *translation-invariant signature* of the access vector:
//
//   * shared memory: shifting every lane address by a multiple of the bank
//     width permutes the banks (a rotation), leaving the replay factor and
//     the distinct-byte count unchanged — so (lane deltas, widths, active
//     mask, base % bank_bytes) determines the whole SmemCost;
//   * global memory: the warp's sector layout *relative to the base lane's
//     aligned sector* is determined by (lane deltas, widths, active mask,
//     base % sector_bytes) — absolute sectors are recovered by adding the
//     base's sector address back (rebasing), preserving the analyzer's
//     sorted probe order.
//
// A PatternCache memoizes both analyzers on that signature. A hit skips the
// per-lane division/sort work entirely; rebased gmem sectors feed the L2 and
// the coalescing counters exactly as a recomputation would, so results are
// bit-identical with the cache on or off, through the serial, parallel and
// trace-replay launch paths alike. One cache lives per launch chunk (like
// the L2 shadow and constant-cache replica), so parallel launches stay
// deterministic without locks.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "src/sim/banks.hpp"
#include "src/sim/coalescing.hpp"
#include "src/sim/plan_cache.hpp"

namespace kconv::sim {

/// Translation-invariant signature of one warp access vector. Lane order is
/// part of the signature (the analyzers are order-sensitive only in probe
/// order, but keying on the exact vector keeps equality trivially exact).
struct PatternSig {
  static constexpr u32 kMaxLanes = 32;
  u32 n = 0;      // lanes in the transaction group
  u32 phase = 0;  // base address modulo the space's alignment period
  i64 delta[kMaxLanes];  // lane addr - base addr (0 for predicated-off lanes)
  u32 bytes[kMaxLanes];  // lane access width (0 = predicated off)

  friend bool operator==(const PatternSig& a, const PatternSig& b) {
    return a.n == b.n && a.phase == b.phase &&
           std::memcmp(a.delta, b.delta, a.n * sizeof(i64)) == 0 &&
           std::memcmp(a.bytes, b.bytes, a.n * sizeof(u32)) == 0;
  }
};

class PatternCache {
 public:
  PatternCache(u32 banks, u32 bank_bytes, u32 sector_bytes)
      : banks_(banks), bank_bytes_(bank_bytes), sector_bytes_(sector_bytes) {}

  /// Memoized analyze_smem over this cache's bank geometry.
  SmemCost smem(std::span<const Access> lanes);

  /// Memoized analyze_gmem: absolute sectors land in `out`, rebased from
  /// the cached relative layout on a hit.
  void gmem(std::span<const Access> lanes, GmemCost& out);

  /// Cacheable lookups served (excludes all-predicated-off and oversized
  /// groups, which bypass the cache and run the analyzer directly).
  u64 lookups() const { return lookups_; }
  /// Lookups that matched a cached signature.
  u64 hits() const { return hits_; }

  /// Number of memoized signatures (smem + gmem tables).
  std::size_t entries() const {
    return smem_tab_.sigs.size() + gmem_tab_.sigs.size();
  }

  /// Serializes the memoized tables (not the hit counters) for the plan
  /// cache (docs/MODEL.md §5d). Geometry is embedded so a blob can only
  /// prime a cache with matching bank/sector parameters.
  void save(PlanWriter& w) const;

  /// Primes this cache from a saved blob. Returns false (cache unchanged
  /// beyond already-inserted entries) on malformed bytes or a geometry
  /// mismatch — priming is an optimization, so the caller just skips it.
  /// Memoized values are the analyzers' own outputs either way, so a primed
  /// cache stays bit-identical to a cold one.
  bool restore(PlanReader& r);

 private:
  /// Cached gmem layout: sector byte addresses relative to the base lane's
  /// aligned sector, in the analyzer's sorted probe order.
  struct GmemPattern {
    u64 lane_bytes = 0;
    std::vector<u64> rel_sectors;
  };

  /// Open-addressed signature table. Values live in a stable side vector so
  /// rehashing never moves them; beyond kMaxEntries new signatures stop
  /// being inserted (a safety valve for pattern-free kernels — lookups
  /// still answer, they just keep missing).
  template <typename V>
  struct Table {
    static constexpr std::size_t kMaxEntries = 1u << 15;
    struct Slot {
      u64 hash = 0;
      u32 idx = 0;  // index + 1 into sigs/values; 0 = empty
    };
    std::vector<Slot> slots = std::vector<Slot>(128);
    std::vector<PatternSig> sigs;
    std::vector<V> values;

    /// Returns the value slot for `sig`, creating it when absent (and the
    /// table has room). `hit` reports whether the signature was present.
    V* find_or_insert(const PatternSig& sig, u64 hash, bool& hit) {
      std::size_t mask = slots.size() - 1;
      std::size_t i = hash & mask;
      while (slots[i].idx != 0) {
        if (slots[i].hash == hash && sigs[slots[i].idx - 1] == sig) {
          hit = true;
          return &values[slots[i].idx - 1];
        }
        i = (i + 1) & mask;
      }
      hit = false;
      if (sigs.size() >= kMaxEntries) return nullptr;
      if ((sigs.size() + 1) * 10 >= slots.size() * 7) {
        grow();
        mask = slots.size() - 1;
        i = hash & mask;
        while (slots[i].idx != 0) i = (i + 1) & mask;
      }
      sigs.push_back(sig);
      values.emplace_back();
      slots[i] = Slot{hash, static_cast<u32>(sigs.size())};
      return &values.back();
    }

    void grow() {
      std::vector<Slot> bigger(slots.size() * 2);
      const std::size_t mask = bigger.size() - 1;
      for (const Slot& s : slots) {
        if (s.idx == 0) continue;
        std::size_t i = s.hash & mask;
        while (bigger[i].idx != 0) i = (i + 1) & mask;
        bigger[i] = s;
      }
      slots.swap(bigger);
    }
  };

  /// Builds the signature over `period`-relative phase; returns false for
  /// groups the cache bypasses (no active lane, or more lanes than a warp
  /// can have). `base` receives the first active lane's address.
  static bool build_sig(std::span<const Access> lanes, u32 period,
                        PatternSig& sig, u64& base, u64& hash);

  /// Hash of an already-built signature (same value build_sig derives while
  /// filling it) — the restore path's re-insertion key.
  static u64 sig_hash(const PatternSig& sig);

  u32 banks_;
  u32 bank_bytes_;
  u32 sector_bytes_;
  u64 lookups_ = 0;
  u64 hits_ = 0;
  Table<SmemCost> smem_tab_;
  Table<GmemPattern> gmem_tab_;
};

}  // namespace kconv::sim
