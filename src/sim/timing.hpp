// Analytical timing model.
//
// Converts per-block transaction counts (KernelStats) into a cycle estimate
// using a pipeline-roofline with a latency floor:
//
//   wave_cycles = max over pipes of (resident_blocks x per-block demand
//                                    / pipe capacity),
//   floored by the per-block critical path (a lone warp's serial issue,
//   barrier costs, and GM latency exposed when occupancy is too low).
//
// Pipes: FP32 compute, instruction issue, shared-memory request cycles
// (where the paper's bank-width matching pays off), global-memory bandwidth
// split DRAM/L2, and constant-cache throughput. Prefetching in the kernels
// shows up naturally: overlapped work makes `max` rather than `sum` the
// right combiner, and the latency floor captures what cannot be hidden.
#pragma once

#include <string>

#include "src/sim/arch.hpp"
#include "src/sim/config.hpp"
#include "src/sim/stats.hpp"

namespace kconv::sim {

/// Which resource caps the number of concurrently resident blocks per SM.
enum class OccupancyLimiter : u8 { Threads, SharedMem, Registers, Blocks };

struct Occupancy {
  u32 blocks_per_sm = 0;
  u32 warps_per_sm = 0;
  OccupancyLimiter limiter = OccupancyLimiter::Threads;
  /// warps_per_sm / max warps the SM supports.
  double fraction = 0.0;
};

/// Static occupancy calculation (the CUDA occupancy calculator's job).
/// Throws if the block cannot run at all (too many threads/smem/regs).
Occupancy compute_occupancy(const Arch& arch, const LaunchConfig& cfg);

/// Non-throwing feasibility probe: empty string when `cfg` can run on
/// `arch`, otherwise the reason it cannot (what compute_occupancy would
/// throw). Lets sweeps reject illegal configurations without using
/// exceptions as control flow.
std::string launch_feasibility_error(const Arch& arch,
                                     const LaunchConfig& cfg);

/// The timing estimate for a full grid.
struct TimingEstimate {
  double total_cycles = 0.0;
  double seconds = 0.0;
  double gflops = 0.0;           // achieved, from functional FMA counts
  double dram_gbps = 0.0;        // achieved DRAM bandwidth
  double sm_efficiency = 0.0;    // achieved / peak GFlop/s

  // Per-wave pipe demands in SM-cycles (resident blocks included).
  double pipe_compute = 0.0;
  double pipe_issue = 0.0;
  double pipe_smem = 0.0;
  double pipe_gmem = 0.0;
  double pipe_const = 0.0;
  double latency_floor = 0.0;
  std::string bound;  // name of the binding pipe

  Occupancy occupancy;
  double waves = 0.0;
};

/// Estimates grid execution time. `stats` may cover a sampled subset of
/// blocks (stats.blocks_executed of them); demands are averaged per block
/// and scaled to `blocks_total`.
TimingEstimate estimate_time(const Arch& arch, const LaunchConfig& cfg,
                             const KernelStats& stats, u64 blocks_total);

}  // namespace kconv::sim
