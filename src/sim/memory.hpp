// Simulated device memory: global buffers, constant banks, and typed views.
//
// Every buffer lives at a unique flat 64-bit byte address handed out by the
// owning Device; transaction analyzers operate on those addresses while
// functional reads/writes go straight to host storage. Views are cheap,
// trivially-copyable handles that device programs capture by value (like
// pointers in CUDA kernel arguments).
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"
#include "src/common/types.hpp"

namespace kconv::sim {

/// An untyped allocation in simulated global memory.
///
/// Owns its storage; the base address is assigned once by the Device and is
/// never reused, so stale views fail loudly on bounds checks rather than
/// aliasing a new allocation.
class DeviceBuffer {
 public:
  DeviceBuffer(u64 base_addr, std::size_t bytes)
      : base_(base_addr), bytes_(bytes), data_(bytes) {}

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  u64 base_addr() const { return base_; }
  std::size_t size_bytes() const { return bytes_; }
  std::byte* data() { return data_.data(); }
  const std::byte* data() const { return data_.data(); }

  /// Copies host data into the buffer starting at byte `offset`.
  template <typename T>
  void upload(std::span<const T> src, std::size_t byte_offset = 0) {
    const std::size_t n = src.size_bytes();
    KCONV_CHECK(byte_offset + n <= bytes_,
                strf("upload of %zu bytes at offset %zu exceeds buffer of %zu",
                     n, byte_offset, bytes_));
    std::memcpy(data_.data() + byte_offset, src.data(), n);
  }

  /// Copies the whole buffer (or a prefix) back to the host.
  template <typename T>
  std::vector<T> download(std::size_t count = SIZE_MAX,
                          std::size_t byte_offset = 0) const {
    if (count == SIZE_MAX) count = (bytes_ - byte_offset) / sizeof(T);
    KCONV_CHECK(byte_offset + count * sizeof(T) <= bytes_,
                "download range exceeds buffer");
    std::vector<T> out(count);
    std::memcpy(out.data(), data_.data() + byte_offset, count * sizeof(T));
    return out;
  }

  void fill_bytes(std::byte value) {
    std::fill(data_.begin(), data_.end(), value);
  }

 private:
  u64 base_;
  std::size_t bytes_;
  std::vector<std::byte> data_;
};

/// Typed, bounds-checked handle over a DeviceBuffer region.
///
/// `V` in read/write may be the element type T itself or a Vec<T, N>: vector
/// accesses require natural alignment, exactly like float2/float4 on real
/// hardware — a misaligned vector access throws (and tests rely on that).
template <typename T>
class BufferView {
 public:
  BufferView() = default;
  BufferView(DeviceBuffer* buf, i64 elem_offset, i64 count)
      : buf_(buf), elem_offset_(elem_offset), count_(count) {
    KCONV_CHECK(buf != nullptr, "view over null buffer");
    KCONV_CHECK(elem_offset >= 0 && count >= 0 &&
                    (elem_offset + count) * static_cast<i64>(sizeof(T)) <=
                        static_cast<i64>(buf->size_bytes()),
                "view range exceeds buffer");
  }

  i64 size() const { return count_; }
  bool valid() const { return buf_ != nullptr; }

  /// The backing allocation (identity anchor for replay-origin declarations
  /// and the functional storage the dataflow tape reads/writes).
  DeviceBuffer* buffer() const { return buf_; }

  /// Flat device byte address of element `idx` (for transaction analysis).
  u64 addr_of(i64 idx) const {
    return buf_->base_addr() + (elem_offset_ + idx) * sizeof(T);
  }

  /// Functional read of V (scalar T or Vec<T,N>) at element index `idx`.
  template <typename V = T>
  V read(i64 idx) const {
    check_access<V>(idx);
    V out;
    std::memcpy(&out, byte_ptr(idx), sizeof(V));
    return out;
  }

  /// Functional write of V at element index `idx`.
  template <typename V = T>
  void write(i64 idx, const V& value) const {
    check_access<V>(idx);
    std::memcpy(byte_ptr(idx), &value, sizeof(V));
  }

 private:
  template <typename V>
  void check_access(i64 idx) const {
    constexpr i64 n = static_cast<i64>(sizeof(V) / sizeof(T));
    static_assert(sizeof(V) % sizeof(T) == 0, "V must pack whole elements");
    KCONV_CHECK(buf_ != nullptr, "access through null view");
    KCONV_CHECK(idx >= 0 && idx + n <= count_,
                strf("device access out of bounds: idx=%lld width=%lld size=%lld",
                     static_cast<long long>(idx), static_cast<long long>(n),
                     static_cast<long long>(count_)));
    KCONV_CHECK(addr_of(idx) % sizeof(V) == 0,
                strf("misaligned %zu-byte vector access at device address %llu",
                     sizeof(V), static_cast<unsigned long long>(addr_of(idx))));
  }

  std::byte* byte_ptr(i64 idx) const {
    return buf_->data() + (elem_offset_ + idx) * sizeof(T);
  }

  DeviceBuffer* buf_ = nullptr;
  i64 elem_offset_ = 0;
  i64 count_ = 0;
};

/// A constant-memory bank (read-only to device code, max 64 KiB on all
/// modeled arches). The paper stores special-case filters here to exploit
/// the warp broadcast path.
class ConstBuffer {
 public:
  ConstBuffer(u64 base_addr, std::size_t bytes, u32 capacity)
      : base_(base_addr), data_(bytes) {
    KCONV_CHECK(bytes <= capacity,
                strf("constant bank of %zu bytes exceeds %u-byte capacity",
                     bytes, capacity));
  }

  u64 base_addr() const { return base_; }
  std::size_t size_bytes() const { return data_.size(); }
  const std::byte* data() const { return data_.data(); }

  template <typename T>
  void upload(std::span<const T> src, std::size_t byte_offset = 0) {
    KCONV_CHECK(byte_offset + src.size_bytes() <= data_.size(),
                "constant upload exceeds bank");
    std::memcpy(data_.data() + byte_offset, src.data(), src.size_bytes());
  }

 private:
  u64 base_;
  std::vector<std::byte> data_;
};

/// Typed read-only view over a ConstBuffer.
template <typename T>
class ConstView {
 public:
  ConstView() = default;
  ConstView(const ConstBuffer* buf, i64 elem_offset, i64 count)
      : buf_(buf), elem_offset_(elem_offset), count_(count) {
    KCONV_CHECK(buf != nullptr, "view over null constant bank");
    KCONV_CHECK((elem_offset + count) * sizeof(T) <= buf->size_bytes(),
                "constant view range exceeds bank");
  }

  i64 size() const { return count_; }
  bool valid() const { return buf_ != nullptr; }

  /// The backing bank (identity anchor for replay-origin declarations).
  const ConstBuffer* buffer() const { return buf_; }

  u64 addr_of(i64 idx) const {
    return buf_->base_addr() + (elem_offset_ + idx) * sizeof(T);
  }

  template <typename V = T>
  V read(i64 idx) const {
    constexpr i64 n = static_cast<i64>(sizeof(V) / sizeof(T));
    KCONV_CHECK(buf_ != nullptr, "access through null constant view");
    KCONV_CHECK(idx >= 0 && idx + n <= count_, "constant access out of bounds");
    V out;
    std::memcpy(&out, buf_->data() + (elem_offset_ + idx) * sizeof(T),
                sizeof(V));
    return out;
  }

 private:
  const ConstBuffer* buf_ = nullptr;
  i64 elem_offset_ = 0;
  i64 count_ = 0;
};

/// Typed owning convenience wrapper: allocation + upload/download in one.
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;
  DeviceArray(std::unique_ptr<DeviceBuffer> buf, i64 count)
      : buf_(std::move(buf)), count_(count) {}

  BufferView<T> view() { return BufferView<T>(buf_.get(), 0, count_); }
  i64 size() const { return count_; }

  void upload(std::span<const T> src) { buf_->upload<T>(src); }
  std::vector<T> download() const {
    return buf_->download<T>(static_cast<std::size_t>(count_));
  }
  void zero() { buf_->fill_bytes(std::byte{0}); }

 private:
  std::unique_ptr<DeviceBuffer> buf_;
  i64 count_ = 0;
};

}  // namespace kconv::sim
