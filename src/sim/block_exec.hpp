// BlockExecutor — runs one thread block in lockstep warps.
//
// Scheduling model: execution proceeds in rounds. In each round every
// runnable lane advances to its next suspension point (memory access,
// barrier, or completion). Within a warp, the pending accesses of lanes
// that suspended on the same operation kind retire together as ONE warp
// transaction through the space-specific analyzer; mixed kinds (branch
// divergence) retire as separate subgroups, modeling hardware replay. A
// barrier releases once every live lane of the block is blocked on sync.
#pragma once

#include <functional>

#include "src/sim/arch.hpp"
#include "src/sim/config.hpp"
#include "src/sim/l2cache.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/task.hpp"
#include "src/sim/thread_ctx.hpp"

namespace kconv::analysis {
class BlockChecker;
}  // namespace kconv::analysis

namespace kconv::profile {
class BlockProfiler;
}  // namespace kconv::profile

namespace kconv::sim {

struct BlockTrace;
class PatternCache;

/// Type-erased kernel body: builds one lane's coroutine from its context.
using KernelBody = std::function<ThreadProgram(ThreadCtx&)>;

/// Executes the block at `block_idx` and accumulates its statistics.
///
/// `const_cache` models the per-SM constant cache (pass nullptr to treat
/// every constant line as resident); `gm_l2` is the L2 the block's global
/// sectors probe — the device's own L2 on the serial path, a per-worker
/// shadow on parallel launches. Throws kconv::Error on device faults
/// (OOB/misaligned accesses, runaway loops) and rethrows exceptions escaping
/// the kernel body.
///
/// When `capture` is non-null the executor additionally records the block's
/// replayable trace (trace.hpp): its global/constant warp transactions in
/// retire order and each lane's event-stream hash. Execution itself is
/// unchanged — a captured block charges exactly what it would have anyway.
///
/// `pattern` (optional) memoizes the shared/global analyzers across the
/// chunk's warp transactions (docs/MODEL.md §5c); nullptr re-runs them on
/// every transaction. Either way the counters are bit-identical.
///
/// `checker` (optional) runs the shadow-state hazard detector over the
/// block (docs/MODEL.md §6): every retired access is fed in retire order,
/// each barrier release advances its epoch. Purely observational — outputs,
/// counters and retire order are bit-identical with or without it.
///
/// `prof` (optional) charges the block's costs to kconv-prof phases
/// (docs/MODEL.md §7): each retired transaction goes to the phase stamped
/// on its accesses, lane arithmetic is drained per phase at every barrier,
/// and barrier releases land on the sync phase. Purely observational like
/// the checker — the base counters are charged identically either way.
void run_block(const Arch& arch, const KernelBody& body,
               const LaunchConfig& cfg, Dim3 block_idx, TraceLevel trace,
               u64 max_rounds, L2Cache* const_cache, L2Cache& gm_l2,
               KernelStats& stats, BlockTrace* capture = nullptr,
               PatternCache* pattern = nullptr,
               analysis::BlockChecker* checker = nullptr,
               profile::BlockProfiler* prof = nullptr);

}  // namespace kconv::sim
