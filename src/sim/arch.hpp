// GPU architecture descriptors for the kconv simulator.
//
// An Arch bundles every microarchitectural constant the functional and
// timing models consume: shared-memory geometry (bank count and — central to
// the paper — bank WIDTH), global-memory transaction granularity and
// bandwidth, per-SM execution resources, and occupancy limits. Presets for
// the machines discussed in the paper (Kepler K40m, Fermi-class, and a
// 4-byte-bank Maxwell-class device for the short-dtype extension) live in
// arch.cpp with datasheet-sourced values.
#pragma once

#include <string>

#include "src/common/types.hpp"

namespace kconv::sim {

/// Static description of a simulated GPU.
///
/// Invariant-free aggregate (C.2): all fields are independent knobs; the
/// presets keep them mutually consistent with the real devices.
struct Arch {
  std::string name;

  // --- Shared memory (the paper's §2.1 model) -----------------------------
  /// Number of shared-memory banks per SM (32 on all NVIDIA parts modeled).
  u32 smem_banks = 32;
  /// Bank width W_SMB in bytes: 8 on Kepler, 4 on Fermi/Maxwell/Pascal.
  /// The mismatch n = smem_bank_bytes / W_CD is what the paper exploits.
  u32 smem_bank_bytes = 8;
  /// Shared memory capacity per SM in bytes (occupancy limit).
  u32 smem_per_sm = 48 * 1024;
  /// Max shared memory per thread block.
  u32 smem_per_block = 48 * 1024;

  // --- Global memory -------------------------------------------------------
  /// Minimum GM transaction (sector) size in bytes; 32 on Kepler via L2.
  u32 gm_sector_bytes = 32;
  /// Aggregate DRAM bandwidth in bytes/second.
  double dram_bytes_per_s = 288.0e9;
  /// Aggregate L2-hit bandwidth in bytes/second.
  double l2_bytes_per_s = 590.0e9;
  /// L2 cache capacity in bytes.
  u32 l2_capacity = 1536 * 1024;
  /// Global memory load latency in core cycles (exposed when not hidden).
  u32 gm_latency = 400;

  // --- Constant memory -----------------------------------------------------
  /// Constant memory size (a launch whose constant bank exceeds this is
  /// rejected — the reason the paper's general case cannot use CM).
  u32 const_capacity = 64 * 1024;
  /// Constant cache line size; misses are charged as GM sectors.
  u32 const_line_bytes = 64;
  /// Per-SM constant cache capacity (the read-only path __constant__ loads
  /// hit). 8 KiB on Kepler/Fermi; Maxwell-class parts differ.
  u32 const_cache_per_sm = 8 * 1024;
  /// Broadcast constant requests serviceable per cycle. High because a
  /// warp-uniform constant read folds into an FMA operand on real hardware
  /// (FFMA Rd, Ra, c[bank][ofs], Rc) — only *divergent* constant accesses
  /// serialize into real requests.
  double const_broadcasts_per_cycle = 8.0;

  // --- Execution resources per SM ------------------------------------------
  u32 warp_size = 32;
  /// FP32 lanes per SM (192 on Kepler SMX) => warp-FMA throughput per cycle.
  u32 fp32_lanes_per_sm = 192;
  /// Peak warp-instruction issue slots per cycle (4 schedulers, dual issue).
  u32 issue_slots_per_cycle = 8;
  /// Shared-memory request cycles serviceable per cycle (one 256B access).
  u32 smem_requests_per_cycle = 1;
  /// Fraction of peak FMA issue slots a well-tuned kernel can sustain
  /// (operand-collector conflicts, dual-issue pairing losses). Kepler
  /// cuBLAS SGEMM lands near 0.75-0.8 of peak; we derate all compute by it.
  double fma_efficiency = 0.78;
  /// Fraction of datasheet DRAM bandwidth achievable with a mixed
  /// read/write stream (row-buffer and turnaround losses).
  double dram_efficiency = 0.75;
  u32 max_threads_per_sm = 2048;
  u32 max_blocks_per_sm = 16;
  u32 max_threads_per_block = 1024;
  u32 regs_per_sm = 65536;
  u32 max_regs_per_thread = 255;

  // --- Chip-level ----------------------------------------------------------
  u32 sm_count = 15;
  /// Core clock in GHz (K40m base clock; peak SP = lanes*2*clock*sm_count).
  double clock_ghz = 0.745;
  /// Cost of a __syncthreads barrier in cycles.
  u32 barrier_cost = 30;

  /// Warp FMA-instruction throughput per SM per cycle (e.g. 192/32 = 6).
  double warp_fma_per_cycle() const {
    return static_cast<double>(fp32_lanes_per_sm) / warp_size;
  }
  /// Peak single-precision GFlop/s (FMA = 2 flops).
  double peak_sp_gflops() const {
    return 2.0 * fp32_lanes_per_sm * sm_count * clock_ghz;
  }
  /// DRAM bytes deliverable per SM per core cycle.
  double dram_bytes_per_sm_cycle() const {
    return dram_bytes_per_s / (sm_count * clock_ghz * 1e9);
  }
  /// L2-hit bytes deliverable per SM per core cycle.
  double l2_bytes_per_sm_cycle() const {
    return l2_bytes_per_s / (sm_count * clock_ghz * 1e9);
  }
};

/// Kepler K40m: 15 SMX, 745 MHz, 4290 SP GFlop/s, 288 GB/s, 8-byte banks.
/// The paper's evaluation platform.
Arch kepler_k40m();

/// Fermi-class (M2090-like): 4-byte banks, 16 SMs. Used to show why the
/// MAGMA Fermi kernel was matched on Fermi but mismatched on Kepler (Fig. 2).
Arch fermi_m2090();

/// Maxwell-class device: 4-byte banks. On such parts fp32 is matched but
/// fp16/int8 are not — the paper's conclusion (extension experiment E1).
Arch maxwell_like();

/// A K40m variant configured for 4-byte bank mode (cudaSharedMemBankSizeFourByte),
/// useful for isolating the bank-width effect with everything else fixed.
Arch kepler_k40m_4byte_banks();

}  // namespace kconv::sim
