#include "src/sim/pattern_cache.hpp"

namespace kconv::sim {

namespace {

// Lane-independent multiply-xor fold. Signature equality in the table is
// exact (full memcmp), so the hash only has to spread buckets — which lets
// each lane be folded independently of the previous one and the CPU overlap
// the multiplies, instead of serializing a per-lane FNV chain.
inline u64 mix_lane(u64 w, std::size_t i) {
  return (w + 0xA24BAED4963EE407ull * static_cast<u64>(i + 1)) *
         0x9FB21C651E98DF25ull;
}

}  // namespace

bool PatternCache::build_sig(std::span<const Access> lanes, u32 period,
                             PatternSig& sig, u64& base, u64& hash) {
  const std::size_t n = lanes.size();
  if (n == 0 || n > PatternSig::kMaxLanes) return false;
  std::size_t lead = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (lanes[i].bytes != 0) {
      lead = i;
      break;
    }
  }
  if (lead == n) return false;  // every lane predicated off
  base = lanes[lead].addr;
  sig.n = static_cast<u32>(n);
  sig.phase = static_cast<u32>(base % period);
  u64 h = ((static_cast<u64>(sig.n) << 32) | sig.phase) *
          0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    const Access& a = lanes[i];
    // Predicated-off lanes normalize to (0, 0) so their junk addresses
    // cannot split otherwise-identical patterns.
    const i64 d = a.bytes == 0 ? 0 : static_cast<i64>(a.addr - base);
    sig.delta[i] = d;
    sig.bytes[i] = a.bytes;
    h ^= mix_lane(static_cast<u64>(d) ^ (static_cast<u64>(a.bytes) << 48), i);
  }
  h *= 0x2545F4914F6CDD1Dull;  // final avalanche: the table masks low bits
  h ^= h >> 32;
  hash = h;
  return true;
}

SmemCost PatternCache::smem(std::span<const Access> lanes) {
  PatternSig sig;
  u64 base = 0, hash = 0;
  if (!build_sig(lanes, bank_bytes_, sig, base, hash)) {
    return analyze_smem(lanes, banks_, bank_bytes_);
  }
  ++lookups_;
  bool hit = false;
  SmemCost* slot = smem_tab_.find_or_insert(sig, hash, hit);
  if (hit) {
    ++hits_;
    return *slot;
  }
  const SmemCost cost = analyze_smem(lanes, banks_, bank_bytes_);
  if (slot != nullptr) *slot = cost;
  return cost;
}

void PatternCache::gmem(std::span<const Access> lanes, GmemCost& out) {
  PatternSig sig;
  u64 base = 0, hash = 0;
  if (!build_sig(lanes, sector_bytes_, sig, base, hash)) {
    analyze_gmem(lanes, sector_bytes_, out);
    return;
  }
  ++lookups_;
  bool hit = false;
  GmemPattern* slot = gmem_tab_.find_or_insert(sig, hash, hit);
  const u64 aligned = base - sig.phase;  // the base lane's sector address
  if (hit) {
    ++hits_;
    out.lane_bytes = slot->lane_bytes;
    out.sectors.resize(slot->rel_sectors.size());
    for (std::size_t i = 0; i < slot->rel_sectors.size(); ++i) {
      out.sectors[i] = aligned + slot->rel_sectors[i];
    }
    return;
  }
  analyze_gmem(lanes, sector_bytes_, out);
  if (slot != nullptr) {
    slot->lane_bytes = out.lane_bytes;
    slot->rel_sectors.resize(out.sectors.size());
    for (std::size_t i = 0; i < out.sectors.size(); ++i) {
      // Wrapping subtraction: a lane below the base keeps the layout exact
      // through two's-complement round trip on rebase.
      slot->rel_sectors[i] = out.sectors[i] - aligned;
    }
  }
}

}  // namespace kconv::sim
