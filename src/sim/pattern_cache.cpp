#include "src/sim/pattern_cache.hpp"

namespace kconv::sim {

namespace {

// Lane-independent multiply-xor fold. Signature equality in the table is
// exact (full memcmp), so the hash only has to spread buckets — which lets
// each lane be folded independently of the previous one and the CPU overlap
// the multiplies, instead of serializing a per-lane FNV chain.
inline u64 mix_lane(u64 w, std::size_t i) {
  return (w + 0xA24BAED4963EE407ull * static_cast<u64>(i + 1)) *
         0x9FB21C651E98DF25ull;
}

}  // namespace

bool PatternCache::build_sig(std::span<const Access> lanes, u32 period,
                             PatternSig& sig, u64& base, u64& hash) {
  const std::size_t n = lanes.size();
  if (n == 0 || n > PatternSig::kMaxLanes) return false;
  std::size_t lead = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (lanes[i].bytes != 0) {
      lead = i;
      break;
    }
  }
  if (lead == n) return false;  // every lane predicated off
  base = lanes[lead].addr;
  sig.n = static_cast<u32>(n);
  sig.phase = static_cast<u32>(base % period);
  u64 h = ((static_cast<u64>(sig.n) << 32) | sig.phase) *
          0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    const Access& a = lanes[i];
    // Predicated-off lanes normalize to (0, 0) so their junk addresses
    // cannot split otherwise-identical patterns.
    const i64 d = a.bytes == 0 ? 0 : static_cast<i64>(a.addr - base);
    sig.delta[i] = d;
    sig.bytes[i] = a.bytes;
    h ^= mix_lane(static_cast<u64>(d) ^ (static_cast<u64>(a.bytes) << 48), i);
  }
  h *= 0x2545F4914F6CDD1Dull;  // final avalanche: the table masks low bits
  h ^= h >> 32;
  hash = h;
  return true;
}

u64 PatternCache::sig_hash(const PatternSig& sig) {
  // Must stay in lockstep with build_sig's fused fold: restore() re-inserts
  // saved signatures under exactly the hash a live lookup would derive.
  u64 h = ((static_cast<u64>(sig.n) << 32) | sig.phase) *
          0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < sig.n; ++i) {
    h ^= mix_lane(static_cast<u64>(sig.delta[i]) ^
                      (static_cast<u64>(sig.bytes[i]) << 48),
                  i);
  }
  h *= 0x2545F4914F6CDD1Dull;
  h ^= h >> 32;
  return h;
}

namespace {

void save_sig(PlanWriter& w, const PatternSig& sig) {
  w.put_u32(sig.n);
  w.put_u32(sig.phase);
  for (u32 i = 0; i < sig.n; ++i) w.put_i64(sig.delta[i]);
  for (u32 i = 0; i < sig.n; ++i) w.put_u32(sig.bytes[i]);
}

bool restore_sig(PlanReader& r, PatternSig& sig) {
  sig.n = r.get_u32();
  sig.phase = r.get_u32();
  if (!r.ok() || sig.n == 0 || sig.n > PatternSig::kMaxLanes) return false;
  for (u32 i = 0; i < sig.n; ++i) sig.delta[i] = r.get_i64();
  for (u32 i = 0; i < sig.n; ++i) sig.bytes[i] = r.get_u32();
  return r.ok();
}

}  // namespace

void PatternCache::save(PlanWriter& w) const {
  w.put_u32(banks_);
  w.put_u32(bank_bytes_);
  w.put_u32(sector_bytes_);
  w.put_u64(smem_tab_.sigs.size());
  for (std::size_t i = 0; i < smem_tab_.sigs.size(); ++i) {
    save_sig(w, smem_tab_.sigs[i]);
    const SmemCost& c = smem_tab_.values[i];
    w.put_u32(c.request_cycles);
    w.put_u64(c.unique_bytes);
    w.put_u64(c.lane_bytes);
  }
  w.put_u64(gmem_tab_.sigs.size());
  for (std::size_t i = 0; i < gmem_tab_.sigs.size(); ++i) {
    save_sig(w, gmem_tab_.sigs[i]);
    const GmemPattern& p = gmem_tab_.values[i];
    w.put_u64(p.lane_bytes);
    w.put_u64(p.rel_sectors.size());
    for (const u64 s : p.rel_sectors) w.put_u64(s);
  }
}

bool PatternCache::restore(PlanReader& r) {
  if (r.get_u32() != banks_ || r.get_u32() != bank_bytes_ ||
      r.get_u32() != sector_bytes_ || !r.ok()) {
    return false;
  }
  const u64 n_smem = r.get_u64();
  if (!r.ok() || n_smem > Table<SmemCost>::kMaxEntries) return false;
  for (u64 i = 0; i < n_smem; ++i) {
    PatternSig sig;
    if (!restore_sig(r, sig)) return false;
    SmemCost c;
    c.request_cycles = r.get_u32();
    c.unique_bytes = r.get_u64();
    c.lane_bytes = r.get_u64();
    if (!r.ok()) return false;
    bool hit = false;
    SmemCost* slot = smem_tab_.find_or_insert(sig, sig_hash(sig), hit);
    if (slot != nullptr && !hit) *slot = c;
  }
  const u64 n_gmem = r.get_u64();
  if (!r.ok() || n_gmem > Table<GmemPattern>::kMaxEntries) return false;
  for (u64 i = 0; i < n_gmem; ++i) {
    PatternSig sig;
    if (!restore_sig(r, sig)) return false;
    GmemPattern p;
    p.lane_bytes = r.get_u64();
    const u64 n_sec = r.get_u64();
    if (!r.ok() || n_sec > 64) return false;
    p.rel_sectors.resize(n_sec);
    for (u64 s = 0; s < n_sec; ++s) p.rel_sectors[s] = r.get_u64();
    if (!r.ok()) return false;
    bool hit = false;
    GmemPattern* slot = gmem_tab_.find_or_insert(sig, sig_hash(sig), hit);
    if (slot != nullptr && !hit) *slot = std::move(p);
  }
  return r.ok();
}

SmemCost PatternCache::smem(std::span<const Access> lanes) {
  PatternSig sig;
  u64 base = 0, hash = 0;
  if (!build_sig(lanes, bank_bytes_, sig, base, hash)) {
    return analyze_smem(lanes, banks_, bank_bytes_);
  }
  ++lookups_;
  bool hit = false;
  SmemCost* slot = smem_tab_.find_or_insert(sig, hash, hit);
  if (hit) {
    ++hits_;
    return *slot;
  }
  const SmemCost cost = analyze_smem(lanes, banks_, bank_bytes_);
  if (slot != nullptr) *slot = cost;
  return cost;
}

void PatternCache::gmem(std::span<const Access> lanes, GmemCost& out) {
  PatternSig sig;
  u64 base = 0, hash = 0;
  if (!build_sig(lanes, sector_bytes_, sig, base, hash)) {
    analyze_gmem(lanes, sector_bytes_, out);
    return;
  }
  ++lookups_;
  bool hit = false;
  GmemPattern* slot = gmem_tab_.find_or_insert(sig, hash, hit);
  const u64 aligned = base - sig.phase;  // the base lane's sector address
  if (hit) {
    ++hits_;
    out.lane_bytes = slot->lane_bytes;
    out.sectors.resize(slot->rel_sectors.size());
    for (std::size_t i = 0; i < slot->rel_sectors.size(); ++i) {
      out.sectors[i] = aligned + slot->rel_sectors[i];
    }
    return;
  }
  analyze_gmem(lanes, sector_bytes_, out);
  if (slot != nullptr) {
    slot->lane_bytes = out.lane_bytes;
    slot->rel_sectors.resize(out.sectors.size());
    for (std::size_t i = 0; i < out.sectors.size(); ++i) {
      // Wrapping subtraction: a lane below the base keeps the layout exact
      // through two's-complement round trip on rebase.
      slot->rel_sectors[i] = out.sectors[i] - aligned;
    }
  }
}

}  // namespace kconv::sim
