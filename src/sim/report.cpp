#include "src/sim/report.hpp"

#include "src/analysis/report.hpp"
#include "src/common/strutil.hpp"
#include "src/profile/roofline.hpp"

namespace kconv::sim {

namespace {
const char* limiter_name(OccupancyLimiter l) {
  switch (l) {
    case OccupancyLimiter::Threads: return "threads";
    case OccupancyLimiter::SharedMem: return "shared memory";
    case OccupancyLimiter::Registers: return "registers";
    case OccupancyLimiter::Blocks: return "block slots";
  }
  return "?";
}
}  // namespace

std::string format_report(const Arch& arch, const LaunchResult& res) {
  const KernelStats& s = res.stats;
  const TimingEstimate& t = res.timing;
  std::string out;
  out += strf("=== %s ===\n", arch.name.c_str());
  out += strf("blocks: %llu total, %llu executed%s%s\n",
              static_cast<unsigned long long>(res.blocks_total),
              static_cast<unsigned long long>(res.blocks_executed),
              res.sampled ? " (sampled)" : "",
              res.analytic ? " (analytic: outputs not materialized, "
                             "gm/const miss counters approximate)"
                           : "");
  if (!res.plan_cache_status.empty()) {
    out += strf("plan cache: %s (%llu blocks replayed)\n",
                res.plan_cache_status.c_str(),
                static_cast<unsigned long long>(res.blocks_replayed));
  }
  out += strf("time: %.3f ms  (%.0f cycles, %.1f waves)\n", t.seconds * 1e3,
              t.total_cycles, t.waves);
  out += strf("perf: %.1f GFlop/s  (%.1f%% of %.0f GFlop/s peak), bound: %s\n",
              t.gflops, 100.0 * t.sm_efficiency, arch.peak_sp_gflops(),
              t.bound.c_str());
  out += strf("occupancy: %u blocks/SM, %u warps/SM (%.0f%%), limited by %s\n",
              t.occupancy.blocks_per_sm, t.occupancy.warps_per_sm,
              100.0 * t.occupancy.fraction, limiter_name(t.occupancy.limiter));
  out += strf("pipes (SM-cycles/wave): compute %.0f, issue %.0f, smem %.0f, "
              "gmem %.0f, const %.0f, latency floor %.0f\n",
              t.pipe_compute, t.pipe_issue, t.pipe_smem, t.pipe_gmem,
              t.pipe_const, t.latency_floor);
  if (s.smem_instrs > 0) {
    out += strf("smem: %llu instrs, %llu request cycles (replay factor "
                "%.2f), %s moved\n",
                static_cast<unsigned long long>(s.smem_instrs),
                static_cast<unsigned long long>(s.smem_request_cycles),
                s.smem_replay_factor(),
                human_bytes(static_cast<double>(s.smem_bytes)).c_str());
  }
  if (s.gm_instrs > 0) {
    out += strf("gmem: %llu instrs, %llu sectors (%llu DRAM / %llu L2-hit), "
                "overfetch %.2fx, %.1f GB/s DRAM\n",
                static_cast<unsigned long long>(s.gm_instrs),
                static_cast<unsigned long long>(s.gm_sectors),
                static_cast<unsigned long long>(s.gm_sectors_dram),
                static_cast<unsigned long long>(s.gm_sectors -
                                                s.gm_sectors_dram),
                s.gm_overfetch(arch.gm_sector_bytes), t.dram_gbps);
  }
  if (s.const_instrs > 0) {
    out += strf("const: %llu instrs, %llu requests (%.2f per instr), "
                "%llu line misses\n",
                static_cast<unsigned long long>(s.const_instrs),
                static_cast<unsigned long long>(s.const_requests),
                static_cast<double>(s.const_requests) /
                    static_cast<double>(s.const_instrs),
                static_cast<unsigned long long>(s.const_line_misses));
  }
  if (s.pattern_lookups > 0) {
    out += strf("pattern cache: %llu lookups, %llu hits (%.1f%%)\n",
                static_cast<unsigned long long>(s.pattern_lookups),
                static_cast<unsigned long long>(s.pattern_hits),
                100.0 * s.pattern_hit_rate());
  }
  out += strf("fma: %llu lane-ops (%llu warp instrs); divergent retires: "
              "%llu; barriers/block: %.1f\n",
              static_cast<unsigned long long>(s.fma_lane_ops),
              static_cast<unsigned long long>(s.fma_warp_instrs),
              static_cast<unsigned long long>(s.divergent_retires),
              s.blocks_executed
                  ? static_cast<double>(s.barriers) /
                        static_cast<double>(s.blocks_executed)
                  : 0.0);
  if (res.fleet.enabled) {
    const FleetResult& f = res.fleet;
    out += strf("fleet: %u devices, shard=%s, link=%s%s\n", f.devices,
                shard_name(f.strategy), f.interconnect.c_str(),
                f.p2p ? " (p2p)" : "");
    out += strf("fleet time: %.3f ms makespan (compute %.3f ms + transfers "
                "%.3f ms total)\n",
                f.seconds * 1e3, f.compute_seconds * 1e3,
                f.transfer_seconds * 1e3);
    out += strf("fleet traffic: h2d %s, d2h %s, d2d %s\n",
                human_bytes(static_cast<double>(f.h2d_bytes)).c_str(),
                human_bytes(static_cast<double>(f.d2h_bytes)).c_str(),
                human_bytes(static_cast<double>(f.d2d_bytes)).c_str());
    out += strf("fleet bounds: inter-device %.2fx of Demmel-Dinh (%s), "
                "inter-level %.2fx (%s)\n",
                f.interdevice_ratio, f.interdevice_verdict.c_str(),
                f.interlevel_ratio, f.interlevel_verdict.c_str());
    for (const FleetDeviceReport& d : f.device_reports) {
      out += strf("  dev%u: %llu blocks, h2d %s, d2h %s, d2d %s, "
                  "transfer %.3f ms, compute %.3f ms\n",
                  d.device, static_cast<unsigned long long>(d.blocks),
                  human_bytes(static_cast<double>(d.ledger.h2d_bytes)).c_str(),
                  human_bytes(static_cast<double>(d.ledger.d2h_bytes)).c_str(),
                  human_bytes(static_cast<double>(d.ledger.d2d_bytes)).c_str(),
                  d.transfer_seconds * 1e3, d.compute_seconds * 1e3);
    }
  }
  if (res.analysis.hazard_checked || res.analysis.linted) {
    out += analysis::format_analysis(res.analysis);
  }
  if (res.profile.enabled) {
    out += profile::format_profile(arch, res.profile);
  }
  return out;
}

std::string fleet_to_json(const FleetResult& f, int indent) {
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  const std::string pad4(indent + 4, ' ');
  std::string out = "{\n";
  out += pad2 + strf("\"devices\": %u,\n", f.devices);
  out += pad2 + strf("\"shard\": \"%s\",\n", shard_name(f.strategy));
  out += pad2 + strf("\"interconnect\": \"%s\",\n", f.interconnect.c_str());
  out += pad2 + strf("\"p2p\": %s,\n", f.p2p ? "true" : "false");
  out += pad2 + strf("\"seconds\": %.9g,\n", f.seconds);
  out += pad2 + strf("\"transfer_seconds\": %.9g,\n", f.transfer_seconds);
  out += pad2 + strf("\"compute_seconds\": %.9g,\n", f.compute_seconds);
  out += pad2 + strf("\"h2d_bytes\": %llu,\n",
                     static_cast<unsigned long long>(f.h2d_bytes));
  out += pad2 + strf("\"d2h_bytes\": %llu,\n",
                     static_cast<unsigned long long>(f.d2h_bytes));
  out += pad2 + strf("\"d2d_bytes\": %llu,\n",
                     static_cast<unsigned long long>(f.d2d_bytes));
  out += pad2 + strf("\"interdevice_bound_bytes\": %.9g,\n",
                     f.interdevice_bound_bytes);
  out += pad2 + strf("\"interdevice_moved_bytes\": %.9g,\n",
                     f.interdevice_moved_bytes);
  out += pad2 + strf("\"interdevice_ratio\": %.6g,\n", f.interdevice_ratio);
  out += pad2 + strf("\"interdevice_verdict\": \"%s\",\n",
                     f.interdevice_verdict.c_str());
  out += pad2 + strf("\"interlevel_bound_bytes\": %.9g,\n",
                     f.interlevel_bound_bytes);
  out += pad2 + strf("\"interlevel_moved_bytes\": %.9g,\n",
                     f.interlevel_moved_bytes);
  out += pad2 + strf("\"interlevel_ratio\": %.6g,\n", f.interlevel_ratio);
  out += pad2 + strf("\"interlevel_verdict\": \"%s\",\n",
                     f.interlevel_verdict.c_str());
  out += pad2 + "\"device_reports\": [\n";
  for (std::size_t i = 0; i < f.device_reports.size(); ++i) {
    const FleetDeviceReport& d = f.device_reports[i];
    out += pad4 +
           strf("{\"device\": %u, \"blocks\": %llu, \"h2d_bytes\": %llu, "
                "\"d2h_bytes\": %llu, \"d2d_bytes\": %llu, "
                "\"transfer_seconds\": %.9g, \"compute_seconds\": %.9g, "
                "\"comm_bound_bytes\": %.9g, \"comm_ratio\": %.6g}%s\n",
                d.device, static_cast<unsigned long long>(d.blocks),
                static_cast<unsigned long long>(d.ledger.h2d_bytes),
                static_cast<unsigned long long>(d.ledger.d2h_bytes),
                static_cast<unsigned long long>(d.ledger.d2d_bytes),
                d.transfer_seconds, d.compute_seconds, d.comm_bound_bytes,
                d.comm_ratio,
                i + 1 < f.device_reports.size() ? "," : "");
  }
  out += pad2 + "]\n";
  out += pad + "}";
  return out;
}

std::string to_json(const Arch& arch, const LaunchResult& res) {
  const KernelStats& s = res.stats;
  const TimingEstimate& t = res.timing;
  std::string out = "{\n";
  out += strf("  \"arch\": \"%s\",\n", arch.name.c_str());
  out += strf("  \"blocks_total\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_total));
  out += strf("  \"blocks_executed\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_executed));
  out += strf("  \"sampled\": %s,\n", res.sampled ? "true" : "false");
  out += strf("  \"analytic\": %s,\n", res.analytic ? "true" : "false");
  out += strf("  \"blocks_replayed\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_replayed));
  if (!res.plan_cache_status.empty()) {
    out += strf("  \"plan_cache_hit\": %s,\n",
                res.plan_cache_hit ? "true" : "false");
    out += strf("  \"plan_cache_status\": \"%s\",\n",
                res.plan_cache_status.c_str());
  }
  out += strf("  \"seconds\": %.9g,\n", t.seconds);
  out += strf("  \"gflops\": %.6g,\n", t.gflops);
  out += strf("  \"bound\": \"%s\",\n", t.bound.c_str());
  out += strf("  \"occupancy_blocks_per_sm\": %u,\n",
              t.occupancy.blocks_per_sm);
  out += strf("  \"pipes\": {\"compute\": %.6g, \"issue\": %.6g, "
              "\"smem\": %.6g, \"gmem\": %.6g, \"const\": %.6g, "
              "\"latency_floor\": %.6g},\n",
              t.pipe_compute, t.pipe_issue, t.pipe_smem, t.pipe_gmem,
              t.pipe_const, t.latency_floor);
  out += strf("  \"fma_lane_ops\": %llu,\n",
              static_cast<unsigned long long>(s.fma_lane_ops));
  out += strf("  \"smem_instrs\": %llu,\n",
              static_cast<unsigned long long>(s.smem_instrs));
  out += strf("  \"smem_request_cycles\": %llu,\n",
              static_cast<unsigned long long>(s.smem_request_cycles));
  out += strf("  \"smem_lane_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.smem_lane_bytes));
  out += strf("  \"smem_store_instrs\": %llu,\n",
              static_cast<unsigned long long>(s.smem_store_instrs));
  out += strf("  \"smem_store_request_cycles\": %llu,\n",
              static_cast<unsigned long long>(s.smem_store_request_cycles));
  out += strf("  \"gm_sectors\": %llu,\n",
              static_cast<unsigned long long>(s.gm_sectors));
  out += strf("  \"gm_sectors_dram\": %llu,\n",
              static_cast<unsigned long long>(s.gm_sectors_dram));
  out += strf("  \"const_requests\": %llu,\n",
              static_cast<unsigned long long>(s.const_requests));
  out += strf("  \"pattern_lookups\": %llu,\n",
              static_cast<unsigned long long>(s.pattern_lookups));
  out += strf("  \"pattern_hits\": %llu,\n",
              static_cast<unsigned long long>(s.pattern_hits));
  const bool with_analysis = res.analysis.hazard_checked || res.analysis.linted;
  const bool with_profile = res.profile.enabled;
  const bool with_fleet = res.fleet.enabled;
  out += strf("  \"barriers\": %llu%s\n",
              static_cast<unsigned long long>(s.barriers),
              with_analysis || with_profile || with_fleet ? "," : "");
  if (with_fleet) {
    out += "  \"fleet\": " + fleet_to_json(res.fleet, 2) +
           (with_analysis || with_profile ? ",\n" : "\n");
  }
  if (with_analysis) {
    out += "  \"analysis\": " + analysis::to_json(res.analysis, 2) +
           (with_profile ? ",\n" : "\n");
  }
  if (with_profile) {
    out += "  \"profile\": " + profile::profile_to_json(arch, res.profile, 2) +
           "\n";
  }
  out += "}";
  return out;
}

std::string format_brief(const LaunchResult& res) {
  return strf("%8.1f GFlop/s  %8.3f ms  bound=%-7s  smem-replay=%.2f",
              res.timing.gflops, res.timing.seconds * 1e3,
              res.timing.bound.c_str(), res.stats.smem_replay_factor());
}

}  // namespace kconv::sim
