#include "src/sim/report.hpp"

#include "src/analysis/report.hpp"
#include "src/common/strutil.hpp"
#include "src/profile/roofline.hpp"

namespace kconv::sim {

namespace {
const char* limiter_name(OccupancyLimiter l) {
  switch (l) {
    case OccupancyLimiter::Threads: return "threads";
    case OccupancyLimiter::SharedMem: return "shared memory";
    case OccupancyLimiter::Registers: return "registers";
    case OccupancyLimiter::Blocks: return "block slots";
  }
  return "?";
}
}  // namespace

std::string format_report(const Arch& arch, const LaunchResult& res) {
  const KernelStats& s = res.stats;
  const TimingEstimate& t = res.timing;
  std::string out;
  out += strf("=== %s ===\n", arch.name.c_str());
  out += strf("blocks: %llu total, %llu executed%s%s\n",
              static_cast<unsigned long long>(res.blocks_total),
              static_cast<unsigned long long>(res.blocks_executed),
              res.sampled ? " (sampled)" : "",
              res.analytic ? " (analytic: outputs not materialized, "
                             "gm/const miss counters approximate)"
                           : "");
  if (!res.plan_cache_status.empty()) {
    out += strf("plan cache: %s (%llu blocks replayed)\n",
                res.plan_cache_status.c_str(),
                static_cast<unsigned long long>(res.blocks_replayed));
  }
  out += strf("time: %.3f ms  (%.0f cycles, %.1f waves)\n", t.seconds * 1e3,
              t.total_cycles, t.waves);
  out += strf("perf: %.1f GFlop/s  (%.1f%% of %.0f GFlop/s peak), bound: %s\n",
              t.gflops, 100.0 * t.sm_efficiency, arch.peak_sp_gflops(),
              t.bound.c_str());
  out += strf("occupancy: %u blocks/SM, %u warps/SM (%.0f%%), limited by %s\n",
              t.occupancy.blocks_per_sm, t.occupancy.warps_per_sm,
              100.0 * t.occupancy.fraction, limiter_name(t.occupancy.limiter));
  out += strf("pipes (SM-cycles/wave): compute %.0f, issue %.0f, smem %.0f, "
              "gmem %.0f, const %.0f, latency floor %.0f\n",
              t.pipe_compute, t.pipe_issue, t.pipe_smem, t.pipe_gmem,
              t.pipe_const, t.latency_floor);
  if (s.smem_instrs > 0) {
    out += strf("smem: %llu instrs, %llu request cycles (replay factor "
                "%.2f), %s moved\n",
                static_cast<unsigned long long>(s.smem_instrs),
                static_cast<unsigned long long>(s.smem_request_cycles),
                s.smem_replay_factor(),
                human_bytes(static_cast<double>(s.smem_bytes)).c_str());
  }
  if (s.gm_instrs > 0) {
    out += strf("gmem: %llu instrs, %llu sectors (%llu DRAM / %llu L2-hit), "
                "overfetch %.2fx, %.1f GB/s DRAM\n",
                static_cast<unsigned long long>(s.gm_instrs),
                static_cast<unsigned long long>(s.gm_sectors),
                static_cast<unsigned long long>(s.gm_sectors_dram),
                static_cast<unsigned long long>(s.gm_sectors -
                                                s.gm_sectors_dram),
                s.gm_overfetch(arch.gm_sector_bytes), t.dram_gbps);
  }
  if (s.const_instrs > 0) {
    out += strf("const: %llu instrs, %llu requests (%.2f per instr), "
                "%llu line misses\n",
                static_cast<unsigned long long>(s.const_instrs),
                static_cast<unsigned long long>(s.const_requests),
                static_cast<double>(s.const_requests) /
                    static_cast<double>(s.const_instrs),
                static_cast<unsigned long long>(s.const_line_misses));
  }
  if (s.pattern_lookups > 0) {
    out += strf("pattern cache: %llu lookups, %llu hits (%.1f%%)\n",
                static_cast<unsigned long long>(s.pattern_lookups),
                static_cast<unsigned long long>(s.pattern_hits),
                100.0 * s.pattern_hit_rate());
  }
  out += strf("fma: %llu lane-ops (%llu warp instrs); divergent retires: "
              "%llu; barriers/block: %.1f\n",
              static_cast<unsigned long long>(s.fma_lane_ops),
              static_cast<unsigned long long>(s.fma_warp_instrs),
              static_cast<unsigned long long>(s.divergent_retires),
              s.blocks_executed
                  ? static_cast<double>(s.barriers) /
                        static_cast<double>(s.blocks_executed)
                  : 0.0);
  if (res.analysis.hazard_checked || res.analysis.linted) {
    out += analysis::format_analysis(res.analysis);
  }
  if (res.profile.enabled) {
    out += profile::format_profile(arch, res.profile);
  }
  return out;
}

std::string to_json(const Arch& arch, const LaunchResult& res) {
  const KernelStats& s = res.stats;
  const TimingEstimate& t = res.timing;
  std::string out = "{\n";
  out += strf("  \"arch\": \"%s\",\n", arch.name.c_str());
  out += strf("  \"blocks_total\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_total));
  out += strf("  \"blocks_executed\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_executed));
  out += strf("  \"sampled\": %s,\n", res.sampled ? "true" : "false");
  out += strf("  \"analytic\": %s,\n", res.analytic ? "true" : "false");
  out += strf("  \"blocks_replayed\": %llu,\n",
              static_cast<unsigned long long>(res.blocks_replayed));
  if (!res.plan_cache_status.empty()) {
    out += strf("  \"plan_cache_hit\": %s,\n",
                res.plan_cache_hit ? "true" : "false");
    out += strf("  \"plan_cache_status\": \"%s\",\n",
                res.plan_cache_status.c_str());
  }
  out += strf("  \"seconds\": %.9g,\n", t.seconds);
  out += strf("  \"gflops\": %.6g,\n", t.gflops);
  out += strf("  \"bound\": \"%s\",\n", t.bound.c_str());
  out += strf("  \"occupancy_blocks_per_sm\": %u,\n",
              t.occupancy.blocks_per_sm);
  out += strf("  \"pipes\": {\"compute\": %.6g, \"issue\": %.6g, "
              "\"smem\": %.6g, \"gmem\": %.6g, \"const\": %.6g, "
              "\"latency_floor\": %.6g},\n",
              t.pipe_compute, t.pipe_issue, t.pipe_smem, t.pipe_gmem,
              t.pipe_const, t.latency_floor);
  out += strf("  \"fma_lane_ops\": %llu,\n",
              static_cast<unsigned long long>(s.fma_lane_ops));
  out += strf("  \"smem_instrs\": %llu,\n",
              static_cast<unsigned long long>(s.smem_instrs));
  out += strf("  \"smem_request_cycles\": %llu,\n",
              static_cast<unsigned long long>(s.smem_request_cycles));
  out += strf("  \"smem_lane_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.smem_lane_bytes));
  out += strf("  \"smem_store_instrs\": %llu,\n",
              static_cast<unsigned long long>(s.smem_store_instrs));
  out += strf("  \"smem_store_request_cycles\": %llu,\n",
              static_cast<unsigned long long>(s.smem_store_request_cycles));
  out += strf("  \"gm_sectors\": %llu,\n",
              static_cast<unsigned long long>(s.gm_sectors));
  out += strf("  \"gm_sectors_dram\": %llu,\n",
              static_cast<unsigned long long>(s.gm_sectors_dram));
  out += strf("  \"const_requests\": %llu,\n",
              static_cast<unsigned long long>(s.const_requests));
  out += strf("  \"pattern_lookups\": %llu,\n",
              static_cast<unsigned long long>(s.pattern_lookups));
  out += strf("  \"pattern_hits\": %llu,\n",
              static_cast<unsigned long long>(s.pattern_hits));
  const bool with_analysis = res.analysis.hazard_checked || res.analysis.linted;
  const bool with_profile = res.profile.enabled;
  out += strf("  \"barriers\": %llu%s\n",
              static_cast<unsigned long long>(s.barriers),
              with_analysis || with_profile ? "," : "");
  if (with_analysis) {
    out += "  \"analysis\": " + analysis::to_json(res.analysis, 2) +
           (with_profile ? ",\n" : "\n");
  }
  if (with_profile) {
    out += "  \"profile\": " + profile::profile_to_json(arch, res.profile, 2) +
           "\n";
  }
  out += "}";
  return out;
}

std::string format_brief(const LaunchResult& res) {
  return strf("%8.1f GFlop/s  %8.3f ms  bound=%-7s  smem-replay=%.2f",
              res.timing.gflops, res.timing.seconds * 1e3,
              res.timing.bound.c_str(), res.stats.smem_replay_factor());
}

}  // namespace kconv::sim
