// Block traces for the capture/replay engine (docs/MODEL.md §5b).
//
// The kconv kernels issue congruent access patterns from every block of an
// equivalence class: identical control flow, identical predication masks,
// identical shared-memory offsets (SharedView addresses are block-local
// already), with only global/constant addresses shifted by the block
// origin. Running the scheduler once per class is therefore enough: the
// first block of a class is executed normally and leaves behind a
// BlockTrace; every later block of the class *replays* against it
// (replay.hpp), re-running only the address-dependent analyzers
// (coalescing + L2) on that block's own addresses and taking every
// translation-invariant counter from the trace.
#pragma once

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/types.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/event.hpp"
#include "src/sim/memory.hpp"
#include "src/sim/stats.hpp"

namespace kconv::sim {

// --- Event-stream hashing ------------------------------------------------
//
// Capture and replay both fold each lane's event stream (operation kind,
// width, shared-memory offset; sync points) into an FNV-1a hash. Equal
// hashes certify that a replayed block is congruent with the trace — the
// contract a replay_class declaration promises — so a misdeclared
// classifier is detected instead of silently producing wrong counters.

inline constexpr u64 kTraceHashInit = 1469598103934665603ull;

inline constexpr u64 trace_hash_fold(u64 h, u64 v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

/// Folds one lane event. Global/constant addresses are excluded — they are
/// the part that legitimately shifts between blocks of a class — while
/// shared-memory offsets (block-local, must match exactly) are included.
/// The profiling phase participates too: a replayed block inherits its
/// representative's per-phase profile, which is only sound if the phase
/// placement matches event for event.
inline constexpr u64 trace_hash_access(u64 h, const Access& a) {
  h = trace_hash_fold(h, (static_cast<u64>(a.op) << 40) |
                             (static_cast<u64>(a.phase) << 32) | a.bytes);
  if (a.op == Op::LoadShared || a.op == Op::StoreShared) {
    h = trace_hash_fold(h, a.addr);
  }
  return h;
}

/// One retired warp transaction whose cost depends on addresses (global or
/// constant): replay re-analyzes it against the replayed lanes' own
/// addresses. `lane_begin/lane_count` index BlockTrace::tx_lanes, listing
/// the lanes that participated, in the captured retire order.
struct ReplayTx {
  Op op;
  u32 lane_begin = 0;
  u32 lane_count = 0;
};

/// Everything recorded from the first executed block of a class.
struct BlockTrace {
  /// Per-block stat delta for every translation-invariant counter: shared
  /// memory (bank conflicts), constant broadcasts, instruction/byte counts,
  /// barriers, phase structure, divergence. The address-dependent counters
  /// (gm_sectors, gm_sectors_dram, const_line_misses) and the compute
  /// attribution (fma/alu/max_warp_instrs, recomputed from the replayed
  /// lanes) are zero here.
  KernelStats invariant;
  /// The captured block's compute attribution (fma/alu lane-ops, warp
  /// instructions, max_warp_instrs) — class-invariant, since congruent
  /// blocks execute identical control flow. Fast-forward replay recomputes
  /// these from the replayed lanes; the coroutine-free tape path adds this
  /// delta instead.
  KernelStats compute;
  /// The captured block's own address-dependent counters. Replay never
  /// reads these (it recomputes them against each block's addresses);
  /// analytic launches (docs/MODEL.md §5d) charge them per served block as
  /// the class's approximation, keeping phase sums and launch totals
  /// consistent without a transaction walk.
  struct AddrDep {
    u64 gm_sectors = 0;
    u64 gm_sectors_dram = 0;
    u64 const_line_misses = 0;
  };
  AddrDep addr_dep;
  /// Global/constant transactions in retire order (= cache probe order).
  std::vector<ReplayTx> txs;
  std::vector<u32> tx_lanes;
  /// Per-lane congruence certificate: event-stream hash + retired events.
  std::vector<u64> lane_hash;
  std::vector<u32> lane_events;
  /// Per-phase split of `invariant` / `compute` (kconv-prof, MODEL.md §7).
  /// Populated only on profiling launches; replayed blocks charge
  /// `phase_invariant` wholesale and recompute the rest live, mirroring
  /// the KernelStats split above.
  profile::PhaseProfile phase_invariant;
  profile::PhaseProfile phase_compute;
  /// Per-phase slice of `addr_dep` (the representative's address-dependent
  /// profile), charged wholesale by analytic launches so the per-phase sum
  /// invariant holds there too.
  profile::PhaseProfile phase_addr_dep;
  /// Block the trace was captured from (for diagnostics, and the block a
  /// warm-loaded plan re-resolves its origin anchors against).
  Dim3 captured_block{};
};

/// Per-lane recorder driving fast-forward execution. While a ThreadCtx is
/// bound to one, memory operations do not suspend; `sync()` still suspends
/// (it is the only scheduling point fast-forward preserves). The event cap
/// bounds runaway loops that the round limit would have caught on a
/// suspension-per-event path. Two modes:
///
///  * Replay validation (replay.hpp, `reset`): each access is folded into
///    the stream hash, and global/constant accesses — the ones whose cost
///    must be re-analyzed per block — are kept for the transaction walk.
///  * Stream retirement (block_exec.cpp, `reset_stream`): every event of
///    the current barrier-delimited segment is kept verbatim so the
///    executor can regroup warp transactions in lockstep round order after
///    the segment ran; hashing (needed only when capturing) is done by the
///    walk, not per note.
struct LaneRecorder {
  std::vector<Access> analyzed;
  u64 hash = kTraceHashInit;
  u32 events = 0;
  u32 max_events = 0;
  bool keep_all = false;

  void reset(u32 cap) {
    analyzed.clear();
    hash = kTraceHashInit;
    events = 0;
    max_events = cap;
    keep_all = false;
  }

  void reset_stream(u32 cap) {
    reset(cap);
    keep_all = true;
  }

  /// Drops the previous segment's events; `events` (the cap and the
  /// per-lane instruction count) keeps accumulating across segments.
  void begin_segment() { analyzed.clear(); }

  void note(const Access& a) {
    if (events >= max_events) [[unlikely]] overflow();
    ++events;
    if (keep_all) {
      analyzed.push_back(a);
      return;
    }
    hash = trace_hash_access(hash, a);
    if (a.op == Op::LoadGlobal || a.op == Op::StoreGlobal ||
        a.op == Op::LoadConst) {
      analyzed.push_back(a);
    }
  }

  /// Out of line so the hot note() stays small; the message distinguishes
  /// the direct-path runaway guard from a replay congruence violation.
  [[noreturn]] void overflow() const;
};

// --- Functional dataflow tape --------------------------------------------
//
// Fast-forward execution still pays for the lane coroutines; at functional
// trace level that cost dominates, and the arithmetic itself (every FMA
// goes through ThreadCtx) is recordable. Kernels that additionally declare
//
//   void replay_origins(Dim3 block_idx, ReplayOrigins& out) const;
//
// promise that congruent blocks' global/constant addresses differ from the
// captured block's by exactly the difference of the declared per-buffer
// anchor addresses (a uniform per-buffer shift). For such kernels the
// captured block is re-run once in *tagging* mode: loads return NaN-boxed
// value slots instead of data, ThreadCtx::fma decodes its operands' slots
// and records the multiply-add, and stores record which slots leave the
// block. The result is a relocatable load-compute-store tape; later blocks
// of the class are produced by interpreting the tape against their own
// rebased addresses — no coroutines at all. The first replayed block of a
// class still executes in fast-forward and is checked event-by-event
// against the rebased tape before the class is trusted.
//
// The tagging contract (violations throw): every arithmetic operation on
// loaded values must go through ThreadCtx::fma — plain C++ may only *copy*
// values (register shuffles, float-to-float casts) — and control flow must
// not depend on them. All kconv float kernels satisfy this by construction
// (flops must be counted to be timed).

/// Per-buffer address anchors a kernel declares for one block.
struct ReplayOrigins {
  static constexpr u32 kMaxOrigins = 8;
  struct Entry {
    const void* id = nullptr;        // buffer identity (pointer compare)
    std::byte* data = nullptr;       // host storage (null for const banks)
    const std::byte* cdata = nullptr;
    u64 bytes = 0;
    u64 addr = 0;  // device byte address the tape's offsets are relative to
    u64 anchor_off = 0;  // byte offset of the anchor within the storage
    bool is_const = false;
  };
  Entry entries[kMaxOrigins];
  u32 count = 0;

  template <typename T>
  void add(const BufferView<T>& v, i64 anchor_elem) {
    DeviceBuffer* b = v.buffer();
    const u64 addr = v.addr_of(anchor_elem);
    push({b, b->data(), b->data(), b->size_bytes(), addr,
          addr - b->base_addr(), false});
  }
  template <typename T>
  void add(const ConstView<T>& v, i64 anchor_elem) {
    const ConstBuffer* b = v.buffer();
    const u64 addr = v.addr_of(anchor_elem);
    push({b, nullptr, b->data(), b->size_bytes(), addr,
          addr - b->base_addr(), true});
  }

 private:
  void push(const Entry& e) {
    KCONV_CHECK(count < kMaxOrigins, "too many replay origins declared");
    entries[count++] = e;
  }
};

/// True when V is made of float elements the tape can tag (float or
/// Vec<float, N>). Kernels with other storage types (f16, i8q) keep the
/// coroutine fast-forward path.
template <typename V>
inline constexpr bool kTapeFloatElems = std::is_same_v<V, float>;
template <int N>
inline constexpr bool kTapeFloatElems<Vec<float, N>> = true;

enum class TapeOp : u8 {
  LoadGm,     // regs[dst..dst+w) <- origin a, byte offset rel (zeros if masked)
  LoadConst,  // same, constant bank origin
  LoadSm,     // regs[dst..dst+w) <- shared bytes [rel, rel+4w)
  LoadLit,    // regs[dst] <- bit_cast<float>(u32(rel))
  StoreGm,    // origin a, byte offset rel <- regs[b..b+w) (no-op if masked)
  StoreSm,    // shared bytes [rel, rel+4w) <- regs[b..b+w)
  Axpy,       // regs[dst+i] = regs[b+i] * regs[a] + regs[u32(rel)+i]
  FmaVec,     // regs[dst+i] = regs[a+i] * regs[b+i] + regs[u32(rel)+i]
  Gather,     // regs[dst+i] = regs[gather[a+i]]
  Sync,       // barrier segment boundary
  BiasRelu,   // regs[dst+i] = max(0, regs[a+i] + regs[b])  (fused epilogue)
};

/// One recorded dataflow step. `rel` is narrow on purpose: global offsets
/// are relative to the block's own declared anchor, so they span only the
/// block's footprint — the builder rejects kernels whose accesses stray
/// further than ±2 GiB from their anchors. Keeping the entry at 20 bytes
/// matters; the interpreter streams the whole tape once per block.
struct TapeEntry {
  TapeOp op;
  u8 flags = 0;  // kTapeMasked: predicated-off lane slot
  u16 width = 0;
  u32 dst = 0;  // first destination slot (slot-producing ops)
  u32 a = 0;
  u32 b = 0;
  i32 rel = 0;
};
static_assert(sizeof(TapeEntry) == 20);

/// Slot-producing entries (the ones whose `dst` run is meaningful).
inline constexpr bool tape_op_allocates(TapeOp op) {
  return op == TapeOp::LoadGm || op == TapeOp::LoadConst ||
         op == TapeOp::LoadSm || op == TapeOp::LoadLit ||
         op == TapeOp::Axpy || op == TapeOp::FmaVec || op == TapeOp::Gather ||
         op == TapeOp::BiasRelu;
}

inline constexpr u8 kTapeMasked = 1;

/// One lane's recorded dataflow for one block of the class.
struct LaneTape {
  std::vector<TapeEntry> entries;
  std::vector<u32> gather;  // slot lists for Gather entries
  u32 n_slots = 0;
};

/// Renames the tape's value slots through an exact-size free list so the
/// interpreter's register file shrinks from one-slot-per-produced-value
/// (SSA-style, as the builder allocates) to roughly the tape's peak number
/// of simultaneously live values. Without this the register file is tens
/// of megabytes per block and the interpreter is DRAM-bound; compacted it
/// is cache-resident. Runs once per lane at capture time.
void compact_lane_tape(LaneTape& lt);

/// The class's functional tape: one LaneTape per lane of the block.
///
/// Per-origin spans summarize every global/constant offset the tape
/// touches, so the interpreter validates a whole block with one bounds
/// check per origin (offsets are class-invariant; only the anchor moves)
/// and one alignment check per distinct access width (the captured block's
/// own addresses were checked by its direct run — a rebased address keeps
/// natural alignment exactly when the anchor delta is a multiple of the
/// width). Shared offsets are block-invariant and validated at capture.
struct FuncTape {
  struct OriginSpan {
    i64 min_rel = 0;
    i64 max_rel_end = 0;  // one past the last byte touched
    u32 widths = 0;       // bit i set: some access of 4*(i+1) bytes
    bool used = false;
    bool has_store = false;
  };
  std::vector<LaneTape> lanes;
  OriginSpan spans[ReplayOrigins::kMaxOrigins];
  u32 max_slots = 0;
};

/// Builds one LaneTape while the captured block re-executes in tagging
/// mode (bound to a ThreadCtx like a LaneRecorder). Values are NaN-boxed
/// slot ids: quiet-NaN prefix + 22-bit payload `slot + 1`.
class LaneTapeBuilder {
 public:
  static constexpr u32 kTagBits = 0x7FC00000u;
  static constexpr u32 kTagMask = 0xFFC00000u;
  static constexpr u32 kPayloadMask = 0x003FFFFFu;
  static constexpr u32 kMaxSlots = kPayloadMask - 1;

  void reset(LaneTape* tape, const ReplayOrigins* origins) {
    tape_ = tape;
    origins_ = origins;
    literals_.clear();
    last_merge_ = SIZE_MAX;
    last_merge_dst_end_ = 0;
  }

  static float tag_value(u32 slot) {
    const u32 bits = kTagBits | (slot + 1);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
  }

  u32 note_load_gm(const void* buf, u64 addr, u32 n, bool pred);
  u32 note_load_const(const void* buf, u64 addr, u32 n);
  u32 note_load_sm(u64 byte_off, u32 n);
  void note_store_gm(const void* buf, u64 addr, const float* elems, u32 n,
                     bool pred);
  void note_store_sm(u64 byte_off, const float* elems, u32 n, bool pred);
  u32 note_axpy(const float* xs, float w, const float* acc, u32 n);
  u32 note_fma_vec(const float* xs, const float* ys, const float* acc, u32 n);
  u32 note_bias_relu(const float* xs, float bias, u32 n);
  void note_sync();
  [[noreturn]] void unsupported(const char* what) const;

 private:
  u32 alloc(u32 n);
  /// Slot of a value: decodes the tag, or interns a literal (emitting its
  /// LoadLit on first use).
  u32 slot_of(float v);
  /// Base slot of `n` consecutive value slots, emitting a Gather when the
  /// operands are not already contiguous.
  u32 run_of(const float* elems, u32 n);
  u32 origin_index(const void* buf, bool want_const) const;

  LaneTape* tape_ = nullptr;
  const ReplayOrigins* origins_ = nullptr;
  std::unordered_map<u32, u32> literals_;  // float bits -> slot
  // Merge window for note_axpy / note_load_sm: index of the last mergeable
  // entry and one past its destination slots. Widening is only legal while
  // no other entry (or slot allocation) has intervened, keeping the merged
  // entry's destination run contiguous in slot space.
  std::size_t last_merge_ = SIZE_MAX;
  u32 last_merge_dst_end_ = 0;
};

}  // namespace kconv::sim
