// Constant-memory broadcast model.
//
// The constant cache serves one address per warp per request: if all 32
// lanes read the same address the access is a single broadcast (the best
// case — the special-case kernel is arranged so every warp reads the same
// filter tap simultaneously); k distinct addresses serialize into k
// requests.
#pragma once

#include <span>

#include "src/sim/event.hpp"

namespace kconv::sim {

struct ConstCost {
  /// Serialized requests (number of distinct addresses in the warp).
  u32 requests = 0;
  /// Distinct `line_bytes`-aligned line base addresses (for miss modeling).
  u32 lines_touched = 0;
  u64 line_addrs[32] = {};  // the distinct line addresses, lines_touched used
};

ConstCost analyze_const(std::span<const Access> lanes, u32 line_bytes);

}  // namespace kconv::sim
