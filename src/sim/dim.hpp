// 3-component launch geometry, mirroring CUDA's dim3.
#pragma once

#include "src/common/types.hpp"

namespace kconv::sim {

struct Dim3 {
  u32 x = 1;
  u32 y = 1;
  u32 z = 1;

  constexpr u64 count() const {
    return static_cast<u64>(x) * y * z;
  }
  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

}  // namespace kconv::sim
