// Trace replay: per-class fast-forward execution of thread blocks.
//
// A ReplayRunner owns the launch's trace table (one ClassState per block
// equivalence class, trace.hpp). The first block of each class runs through
// the normal BlockExecutor with capture enabled; every later block of the
// class is *replayed*:
//
//   * Functional outputs come from the lane coroutines themselves, run in
//     fast-forward: with a LaneRecorder bound, memory operations skip their
//     suspension, so a lane executes a whole barrier-delimited segment in
//     one resume. Arithmetic is native C++ — outputs are bit-identical to
//     direct execution (loads/stores already apply at awaitable
//     construction, and kernels separate conflicting cross-lane shared
//     accesses with sync(), so per-lane order within a segment is free).
//   * Translation-invariant counters (bank conflicts, constant broadcasts,
//     instruction/byte counts, barriers, phases) are added from the trace.
//   * Address-dependent counters are recomputed against this block's own
//     addresses: the recorded transactions are regrouped from the replayed
//     lanes' access streams in the captured retire order and re-analyzed
//     through coalescing + L2 (and the constant cache), so cache behavior
//     matches direct execution exactly.
//
// Kernels that additionally declare replay_origins (trace.hpp) get the
// coroutine-free tier on functional launches: the captured block is re-run
// once in tagging mode to record its load-compute-store dataflow, the
// first replayed block of the class runs in fast-forward and is checked
// event-by-event against the rebased tape, and every block after that is
// produced by interpreting the tape directly — a tight vectorized loop
// over wide multiply-add entries, with global/constant offsets rebased by
// the per-buffer origin deltas. Stats for tape blocks are the class's
// invariant + compute deltas (both class-invariant by congruence).
//
// Congruence is verified, not assumed: each lane's event-stream hash and
// event count must match the trace, otherwise kconv::Error reports the
// misdeclared replay_class. See docs/MODEL.md §5b.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/profile/collector.hpp"
#include "src/sim/block_exec.hpp"
#include "src/sim/coalescing.hpp"
#include "src/sim/pattern_cache.hpp"
#include "src/sim/plan_io.hpp"
#include "src/sim/trace.hpp"

namespace kconv::sim {

/// Maps a block index to its equivalence class. Empty = no hook declared:
/// every block unique, replay never engages (exact legacy behavior).
using BlockClassifier = std::function<u64(Dim3)>;

/// Fills a block's per-buffer address anchors (the kernel's replay_origins
/// hook). Empty = kernel not relocatable: replay stays on fast-forward.
using ReplayOriginsFn = std::function<void(Dim3, ReplayOrigins&)>;

/// Runs the blocks of one launch (or one parallel chunk — the trace table
/// is as local as the caches it probes), capturing the first block of each
/// class and replaying the rest.
class ReplayRunner {
 public:
  /// `pattern` (optional) memoizes the chunk's warp access-pattern analysis
  /// for both captured and replayed blocks (docs/MODEL.md §5c).
  ///
  /// `checker` (optional) enables hazard checking (docs/MODEL.md §6): each
  /// class representative runs under the full shadow-state detector; if it
  /// raced, the whole class is tainted and every later block of it falls
  /// back to full execution with checking (a racy trace has no trustworthy
  /// event order to replay, and each block must report its own hazards).
  /// Congruent blocks of clean classes replay as usual — congruence hashes
  /// cover their shared-memory pattern — with only their global writes
  /// harvested for the cross-block overlap scan. The coroutine-free tape
  /// tier is disabled while checking (it records no access streams).
  /// `psink` (optional) enables kconv-prof phase accounting (docs/MODEL.md
  /// §7): class representatives charge phases directly and store their
  /// per-phase split in the trace; replayed blocks add the stored
  /// invariant profile and recompute the address-dependent and compute
  /// parts live, so per-phase sums match the launch totals exactly in
  /// every mode.
  /// `analytic` (docs/MODEL.md §5d) serves every block of a known class
  /// straight from the class trace: invariant + compute + the captured
  /// addr_dep counters, no coroutines, no functional memory. Class
  /// representatives still execute (and capture) normally on a cold class.
  ReplayRunner(const Arch& arch, const KernelBody& body,
               const LaunchConfig& cfg, TraceLevel trace, u64 max_rounds,
               const BlockClassifier& classify, const ReplayOriginsFn& origins,
               PatternCache* pattern = nullptr,
               analysis::BlockChecker* checker = nullptr,
               profile::PhaseProfile* psink = nullptr, bool analytic = false);

  /// Executes or replays `block_idx`, accumulating into `stats` exactly
  /// what the direct path would have (serially, including cache counters).
  /// Tape-served blocks may be deferred for batched interpretation — call
  /// finish() after the last block to flush them.
  ///
  /// `tl` (optional, profiling only) receives the block's phase timeline
  /// when the block actually executes (class representative or tainted
  /// re-execution); replayed blocks record none and leave it empty.
  void run(Dim3 block_idx, L2Cache* const_cache, L2Cache& gm_l2,
           KernelStats& stats, profile::BlockTimeline* tl = nullptr);

  /// Flushes tape blocks still queued for batched interpretation. Their
  /// outputs and stats land only after this runs.
  void finish(KernelStats& stats);

  u64 blocks_replayed() const { return blocks_replayed_; }

  /// Seeds the class table from a warm plan (docs/MODEL.md §5d) before any
  /// block runs: primed classes replay from block one with zero
  /// representative execution. Tapes are adopted only on the launch modes
  /// that would have captured them, with origin anchors re-resolved against
  /// the live kernel's replay_origins for the captured block (plans store
  /// no addresses). A tape the capturing launch validated is trusted
  /// outright (every block goes to the batched interpreter); an
  /// unvalidated one is fast-forward-checked by this launch's first
  /// replayed block of the class before the class trusts it.
  void prime(const LaunchPlan& plan);

  /// Move variant for launch paths whose plan is not reused afterwards
  /// (the serial runner): adopts traces and tapes without the multi-
  /// megabyte copies. Leaves `plan.classes` empty so a later export
  /// re-exports everything from live runner state.
  void prime(LaunchPlan&& plan);

  /// Appends this runner's captured classes (skipping ids already in
  /// `plan`, raced classes, and nothing else) sorted by id, so merged
  /// multi-chunk exports are deterministic.
  void export_plan(LaunchPlan& plan) const;

  /// True when any class was captured by execution in this run — the
  /// signal that the store holds less than this runner now knows.
  bool captured_fresh() const { return captured_fresh_; }

 private:
  /// Everything a class accumulates: the capture trace, and (on functional
  /// launches of relocatable kernels) the dataflow tape plus its
  /// validation status.
  struct ClassState {
    BlockTrace trace;
    FuncTape tape;
    ReplayOrigins origins;  // anchors declared for the captured block
    bool tape_ready = false;
    bool validated = false;
    /// The class representative raced under the hazard checker: every
    /// later block of the class executes fully instead of replaying.
    bool raced = false;
    /// Blocks queued for batched tape interpretation: per-origin base
    /// pointers, already rebased and prologue-validated at enqueue time.
    struct PendingBlock {
      const std::byte* rbase[ReplayOrigins::kMaxOrigins];
      std::byte* wbase[ReplayOrigins::kMaxOrigins];
    };
    std::vector<PendingBlock> pending;
  };

  /// Tape blocks interpreted per batch: the batch dimension is the
  /// innermost stride of the interpreter's register file, so entry dispatch
  /// and tape streaming amortize over the batch while the multiply-add
  /// loops vectorize across it (congruent blocks share one tape; only the
  /// origin base pointers differ).
  static constexpr u32 kTapeBatch = 32;

  void replay(Dim3 block_idx, const BlockTrace& trace, L2Cache* const_cache,
              L2Cache& gm_l2, KernelStats& stats);
  /// Analytic serving: charges the class's invariant + compute + addr_dep
  /// deltas (and the matching phase slices) without touching memory.
  void serve_analytic(const ClassState& cs, KernelStats& stats);
  /// Feeds the global stores of the block just replayed (still in the
  /// recorders) to the checker's cross-block overlap map.
  void harvest_gm_stores(Dim3 block_idx);
  /// Re-runs the captured block in tagging mode, filling cs.tape.
  void capture_tape(Dim3 block_idx, ClassState& cs);
  /// Checks the fast-forward recorders of the block just replayed against
  /// the rebased tape, event by event (call directly after replay()).
  void validate_tape(Dim3 block_idx, const ClassState& cs);
  /// Validates this block's origins against the tape's per-origin spans
  /// and queues its rebased base pointers (flushing a full batch).
  void enqueue_tape(Dim3 block_idx, ClassState& cs, KernelStats& stats);
  /// Coroutine-free execution: interprets the tape once for every queued
  /// block and adds the class's invariant + compute deltas per block.
  void flush_tape(ClassState& cs, KernelStats& stats);
  template <u32 NB>
  void run_tape_batch(const ClassState& cs, u32 batch);
  /// This block's origins, checked shape-congruent with the captured ones.
  ReplayOrigins resolve_origins(Dim3 block_idx, const ClassState& cs) const;

  const Arch& arch_;
  const KernelBody& body_;
  const LaunchConfig& cfg_;
  TraceLevel trace_level_;
  u64 max_rounds_;
  const BlockClassifier& classify_;
  const ReplayOriginsFn& origins_fn_;
  PatternCache* pattern_;
  analysis::BlockChecker* checker_;
  profile::PhaseProfile* psink_;

  bool analytic_ = false;
  std::unordered_map<u64, ClassState> classes_;
  u64 blocks_replayed_ = 0;
  bool captured_fresh_ = false;

  // Per-block scratch, allocated once and reused.
  struct ReplayLane {
    ThreadProgram prog;
    ThreadCtx ctx;
    bool done = false;
  };
  std::vector<ReplayLane> lanes_;
  std::vector<LaneRecorder> recorders_;
  std::vector<profile::LaneProfile> lane_profiles_;
  std::vector<LaneTapeBuilder> builders_;
  std::vector<std::byte> smem_;
  std::vector<u32> cursors_;
  std::vector<Access> group_;
  GmemCost gmem_scratch_;
  // Tape-interpreter scratch: value slots and shared memory, both laid out
  // with the batch as the innermost dimension, plus per-lane walk state.
  std::vector<float> regs_;
  std::vector<float> smem_batch_;
  std::vector<u32> tape_cursors_;
};

}  // namespace kconv::sim
