// DeviceFleet: sharding one launch's block grid across N simulated devices.
//
// A fleet launch partitions the grid by ShardStrategy into per-device block
// ranges — the chunk unit of the parallel launcher generalized to a
// (device, block-range, transfer-ledger) triple. Execution semantics are
// unchanged: every block runs against the same functional memory, so
// outputs are byte-identical and all scheduling-invariant counters are
// exact versus a single-device launch (each device's L2/constant-cache
// replica is cold, so the two cache-warmth counters are partition-dependent
// exactly as in docs/MODEL.md §5a). What the fleet ADDS is the modeled
// inter-device layer: per-device staging/halo ledgers (transfer.hpp) and a
// FleetAnalyzer that compares the traffic each shard strategy creates
// against Demmel–Dinh-style communication lower bounds (docs/MODEL.md §9).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sim/device.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/transfer.hpp"

namespace kconv::sim {

/// Half-open interval of flat block ids, in launch (row-major flat) order.
struct BlockRange {
  u64 begin = 0;
  u64 end = 0;
};

/// One device's slice of a sharded launch: the (device, block-range,
/// transfer-ledger) triple the chunk machinery executes.
struct FleetShard {
  u32 device = 0;
  std::vector<BlockRange> runs;
  u64 blocks = 0;
  /// Spatial strategy: this device's output-row-group interval [row_begin,
  /// row_end) — drives the halo-exchange model. Unused otherwise.
  u64 row_begin = 0;
  u64 row_end = 0;
  TransferLedger ledger;
};

/// Splits `grid` into per-device shards. Throws kconv::Error when the
/// strategy needs an axis the kernel did not declare in `hints` (e.g.
/// channel-sharding a kernel with no filter-group axis) or when the grid
/// geometry cannot be sharded that way. Devices beyond the shardable
/// extent receive zero blocks (and stage nothing).
std::vector<FleetShard> shard_grid(const Dim3& grid, const FleetOptions& fleet,
                                   const FleetHints& hints);

/// Fills every shard's TransferLedger from the shard geometry: staging
/// (host->device input shard + filters, device->host output shard) plus
/// device->device halo bytes for interior spatial cuts. Bytes are charged
/// to the receiving device; ops count DMA operations.
void model_transfers(const FleetOptions& fleet, const FleetHints& hints,
                     u64 blocks_total, std::vector<FleetShard>& shards);

/// N simulated devices sharing one architecture. Each device owns a fresh
/// (cold) L2; fleet launches run each shard's blocks against its device's
/// L2 and a per-device constant-cache replica.
class DeviceFleet {
 public:
  DeviceFleet(const Arch& arch, u32 devices);

  u32 size() const { return static_cast<u32>(devices_.size()); }
  Device& device(u32 d) { return *devices_[d]; }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

// ---------------------------------------------------------------------------
// FleetAnalyzer: communication-lower-bound attribution (docs/MODEL.md §9).

/// Per-device roll-up reported to the user.
struct FleetDeviceReport {
  u32 device = 0;
  u64 blocks = 0;
  TransferLedger ledger;
  /// Modeled staging/exchange time of this device's ledger.
  double transfer_seconds = 0.0;
  /// Modeled execution time of this device's blocks (0 under Functional
  /// traces, which carry no timing).
  double compute_seconds = 0.0;
  /// Demmel–Dinh inter-device bound: bytes this device's outputs provably
  /// require over the interconnect (input footprint + filter slice +
  /// output write-back).
  double comm_bound_bytes = 0.0;
  /// ledger.total_bytes() / comm_bound_bytes.
  double comm_ratio = 0.0;
};

/// Launch-level fleet report, embedded in LaunchResult and the report/JSON
/// `fleet` block.
struct FleetResult {
  bool enabled = false;
  u32 devices = 0;
  ShardStrategy strategy = ShardStrategy::Batch;
  std::string interconnect;
  bool p2p = false;

  /// Fleet makespan: max over devices of (transfer + compute) seconds.
  double seconds = 0.0;
  double transfer_seconds = 0.0;  ///< sum over devices
  double compute_seconds = 0.0;   ///< max over devices
  u64 h2d_bytes = 0, d2h_bytes = 0, d2d_bytes = 0;

  /// Inter-device attribution: measured(modeled) interconnect bytes vs the
  /// Demmel–Dinh footprint bound summed over devices.
  double interdevice_bound_bytes = 0.0;
  double interdevice_moved_bytes = 0.0;
  double interdevice_ratio = 0.0;
  /// "optimal" | "within-<k>x" | "communication-bound".
  std::string interdevice_verdict;

  /// Inter-level (GM) attribution: measured GM sector bytes vs
  /// max(footprint, flops/sqrt(M_smem)) per device, summed.
  double interlevel_bound_bytes = 0.0;
  double interlevel_moved_bytes = 0.0;
  double interlevel_ratio = 0.0;
  std::string interlevel_verdict;

  std::vector<FleetDeviceReport> device_reports;
};

/// Builds the fleet report: per-device ledger times, Demmel–Dinh bounds
/// (the memory-independent footprint bound per device plus the
/// flops/sqrt(M) inter-level bound, constant factors dropped — see
/// docs/MODEL.md §9), and the verdicts. `per_device_stats` and
/// `compute_seconds` are indexed like `shards`.
FleetResult analyze_fleet(const Arch& arch, const FleetOptions& fleet,
                          const FleetHints& hints, u64 blocks_total,
                          const std::vector<FleetShard>& shards,
                          const std::vector<KernelStats>& per_device_stats,
                          const std::vector<double>& compute_seconds);

}  // namespace kconv::sim
