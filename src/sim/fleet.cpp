#include "src/sim/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"

namespace kconv::sim {

namespace {

/// Slab boundary i of E items split across D devices: balanced to within
/// one item, and a pure function of (i, E, D) — never of host scheduling.
u64 slab_bound(u64 i, u64 extent, u32 devices) {
  return extent * i / devices;
}

/// bytes * part / whole in exact integer arithmetic (byte shares of the
/// staged tensors stay deterministic across hosts).
u64 byte_share(u64 bytes, u64 part, u64 whole) {
  if (whole == 0) return 0;
  return static_cast<u64>(static_cast<unsigned __int128>(bytes) * part /
                          whole);
}

u32 axis_extent(const Dim3& grid, i32 axis) {
  switch (axis) {
    case 0: return grid.x;
    case 1: return grid.y;
    case 2: return grid.z;
    default: return 0;
  }
}

}  // namespace

std::vector<FleetShard> shard_grid(const Dim3& grid, const FleetOptions& fleet,
                                   const FleetHints& hints) {
  const u64 total = grid.count();
  const u32 D = fleet.devices;
  KCONV_CHECK(D >= 1, "fleet needs at least one device");
  std::vector<FleetShard> shards(D);
  for (u32 d = 0; d < D; ++d) shards[d].device = d;

  switch (fleet.strategy) {
    case ShardStrategy::Batch: {
      // Contiguous slabs of the flat block list — no axis knowledge needed.
      for (u32 d = 0; d < D; ++d) {
        const u64 b = slab_bound(d, total, D);
        const u64 e = slab_bound(d + 1, total, D);
        if (e > b) shards[d].runs.push_back({b, e});
        shards[d].blocks = e - b;
      }
      break;
    }
    case ShardStrategy::Spatial: {
      KCONV_CHECK(hints.provided && hints.spatial_axis == 1,
                  "kernel declares no spatial (output-row) shard axis");
      KCONV_CHECK(grid.z == 1,
                  "spatial sharding requires a 2D grid (z == 1)");
      const u64 minor = std::max<u32>(hints.spatial_minor, 1);
      const u64 extent = axis_extent(grid, hints.spatial_axis);
      KCONV_CHECK(extent % minor == 0,
                  "spatial axis extent not divisible by its minor fold");
      const u64 rows = extent / minor;
      // Row group g occupies the contiguous flat range
      // [g * minor * grid.x, (g+1) * minor * grid.x): the spatial axis is
      // the outermost non-trivial axis, so row slabs are flat slabs.
      const u64 per_row = minor * grid.x;
      for (u32 d = 0; d < D; ++d) {
        const u64 r0 = slab_bound(d, rows, D);
        const u64 r1 = slab_bound(d + 1, rows, D);
        shards[d].row_begin = r0;
        shards[d].row_end = r1;
        if (r1 > r0) shards[d].runs.push_back({r0 * per_row, r1 * per_row});
        shards[d].blocks = (r1 - r0) * per_row;
      }
      break;
    }
    case ShardStrategy::Channel: {
      KCONV_CHECK(hints.provided && hints.channel_axis == 0,
                  "kernel declares no output-channel shard axis");
      KCONV_CHECK(grid.z == 1,
                  "channel sharding requires a 2D grid (z == 1)");
      const u64 groups = grid.x;
      // Device d owns filter groups [x0, x1) of every spatial block: one
      // strided run per grid.y row, in launch order.
      for (u32 d = 0; d < D; ++d) {
        const u64 x0 = slab_bound(d, groups, D);
        const u64 x1 = slab_bound(d + 1, groups, D);
        if (x1 > x0) {
          shards[d].runs.reserve(grid.y);
          for (u64 y = 0; y < grid.y; ++y) {
            shards[d].runs.push_back({y * groups + x0, y * groups + x1});
          }
        }
        shards[d].blocks = (x1 - x0) * grid.y;
      }
      break;
    }
  }

  u64 covered = 0;
  for (const FleetShard& s : shards) covered += s.blocks;
  KCONV_ASSERT(covered == total);
  return shards;
}

void model_transfers(const FleetOptions& fleet, const FleetHints& hints,
                     u64 blocks_total, std::vector<FleetShard>& shards) {
  if (!hints.provided) return;
  // The last device that owns at least one spatial row: halos flow from a
  // device to its upward neighbor (output rows [r0, r1) depend on input
  // rows up to r1 * block_h + K - 1, which the next shard staged).
  for (FleetShard& s : shards) {
    if (s.blocks == 0) continue;
    TransferLedger& l = s.ledger;
    switch (fleet.strategy) {
      case ShardStrategy::Batch:
        // Naive block slab: the device cannot prove which input region its
        // blocks touch before staging, so it replicates the full input.
        l.h2d_bytes = hints.input_bytes + hints.filter_bytes;
        l.h2d_ops = 2;
        break;
      case ShardStrategy::Channel:
        // Every output channel reads the whole image; only the filter bank
        // splits.
        l.h2d_bytes =
            hints.input_bytes +
            byte_share(hints.filter_bytes, s.blocks, blocks_total);
        l.h2d_ops = 2;
        break;
      case ShardStrategy::Spatial:
        // Interior rows stage once; the (K-1)-row overlap into the next
        // shard arrives device-to-device below.
        l.h2d_bytes = byte_share(hints.input_bytes, s.blocks, blocks_total) +
                      hints.filter_bytes;
        l.h2d_ops = 2;
        break;
    }
    l.d2h_bytes = byte_share(hints.output_bytes, s.blocks, blocks_total);
    l.d2h_ops = 1;
  }
  if (fleet.strategy == ShardStrategy::Spatial &&
      hints.halo_bytes_per_cut > 0) {
    // One exchange per interior cut, charged to the receiving device (the
    // one whose bottom rows need its neighbor's top input rows).
    for (std::size_t d = 0; d + 1 < shards.size(); ++d) {
      if (shards[d].blocks == 0) continue;
      // Find the next shard that actually owns rows.
      std::size_t next = d + 1;
      while (next < shards.size() && shards[next].blocks == 0) ++next;
      if (next == shards.size()) break;
      shards[d].ledger.d2d_bytes += hints.halo_bytes_per_cut;
      shards[d].ledger.d2d_ops += 1;
    }
  }
}

DeviceFleet::DeviceFleet(const Arch& arch, u32 devices) {
  KCONV_CHECK(devices >= 1, "fleet needs at least one device");
  devices_.reserve(devices);
  for (u32 d = 0; d < devices; ++d) {
    devices_.push_back(std::make_unique<Device>(arch));
  }
}

namespace {

std::string bound_verdict(double ratio, double transfer_s, double compute_s) {
  // Transfers dominating execution is the louder diagnosis: the shard is
  // limited by the interconnect no matter how tight its byte ratio is.
  if (transfer_s > compute_s && compute_s > 0.0) {
    return "communication-bound";
  }
  if (ratio <= 1.15) return "optimal";
  return strf("within-%.0fx", std::ceil(ratio));
}

}  // namespace

FleetResult analyze_fleet(const Arch& arch, const FleetOptions& fleet,
                          const FleetHints& hints, u64 blocks_total,
                          const std::vector<FleetShard>& shards,
                          const std::vector<KernelStats>& per_device_stats,
                          const std::vector<double>& compute_seconds) {
  FleetResult res;
  res.enabled = true;
  res.devices = fleet.devices;
  res.strategy = fleet.strategy;
  res.interconnect = fleet.interconnect.name;
  res.p2p = fleet.interconnect.p2p;

  // Fast-memory size for the inter-level bound: shared-memory words per SM
  // (registers ignored; constant factors of the Demmel–Dinh bound dropped —
  // see docs/MODEL.md §9).
  const double m_words =
      std::max(1.0, static_cast<double>(arch.smem_per_sm) / sizeof(float));

  // Devices stage and compute concurrently, so the communication-bound
  // diagnosis compares the slowest single device's transfer time against
  // the slowest device's compute time — not the fleet-wide transfer sum.
  double max_transfer = 0.0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const FleetShard& s = shards[d];
    FleetDeviceReport rep;
    rep.device = s.device;
    rep.blocks = s.blocks;
    rep.ledger = s.ledger;
    rep.transfer_seconds = s.ledger.seconds(fleet.interconnect);
    rep.compute_seconds =
        d < compute_seconds.size() ? compute_seconds[d] : 0.0;

    if (s.blocks > 0 && hints.provided) {
      // Inter-device footprint bound: what the device's outputs provably
      // require over the interconnect. Channel shards genuinely need the
      // whole input; batch/spatial slabs need their row share plus the
      // halo; everyone writes back its output share and reads (its slice
      // of) the filters.
      const double share = static_cast<double>(s.blocks) /
                           static_cast<double>(blocks_total);
      double in_need = 0.0, flt_need = 0.0;
      if (fleet.strategy == ShardStrategy::Channel) {
        in_need = static_cast<double>(hints.input_bytes);
        flt_need = static_cast<double>(hints.filter_bytes) * share;
      } else {
        in_need = static_cast<double>(hints.input_bytes) * share +
                  static_cast<double>(s.ledger.d2d_bytes);
        flt_need = static_cast<double>(hints.filter_bytes);
      }
      const double out_need =
          static_cast<double>(hints.output_bytes) * share;
      rep.comm_bound_bytes = in_need + flt_need + out_need;
      rep.comm_ratio =
          rep.comm_bound_bytes > 0
              ? static_cast<double>(rep.ledger.total_bytes()) /
                    rep.comm_bound_bytes
              : 0.0;

      // Inter-level (GM) bound for this device: its footprint must cross
      // GM at least once, and a fast memory of M words caps data reuse at
      // sqrt(M) per word moved (Demmel–Dinh / Hong–Kung form).
      const KernelStats& st =
          d < per_device_stats.size() ? per_device_stats[d] : KernelStats{};
      const double flops = st.flops();
      const double gm_bound = std::max(
          rep.comm_bound_bytes,
          sizeof(float) * flops / (2.0 * std::sqrt(m_words)));
      res.interlevel_bound_bytes += gm_bound;
      res.interlevel_moved_bytes +=
          static_cast<double>(st.gm_sectors) * arch.gm_sector_bytes;
    }

    res.h2d_bytes += s.ledger.h2d_bytes;
    res.d2h_bytes += s.ledger.d2h_bytes;
    res.d2d_bytes += s.ledger.d2d_bytes;
    res.transfer_seconds += rep.transfer_seconds;
    max_transfer = std::max(max_transfer, rep.transfer_seconds);
    res.compute_seconds = std::max(res.compute_seconds, rep.compute_seconds);
    res.seconds =
        std::max(res.seconds, rep.transfer_seconds + rep.compute_seconds);
    res.interdevice_bound_bytes += rep.comm_bound_bytes;
    res.interdevice_moved_bytes +=
        static_cast<double>(rep.ledger.total_bytes());
    res.device_reports.push_back(std::move(rep));
  }

  res.interdevice_ratio =
      res.interdevice_bound_bytes > 0
          ? res.interdevice_moved_bytes / res.interdevice_bound_bytes
          : 0.0;
  res.interdevice_verdict = bound_verdict(
      res.interdevice_ratio, max_transfer, res.compute_seconds);
  res.interlevel_ratio =
      res.interlevel_bound_bytes > 0
          ? res.interlevel_moved_bytes / res.interlevel_bound_bytes
          : 0.0;
  // The inter-level verdict is about the memory hierarchy, not the links:
  // never "communication-bound" (pass equal times so the ratio decides).
  res.interlevel_verdict = bound_verdict(res.interlevel_ratio, 0.0, 1.0);
  return res;
}

}  // namespace kconv::sim
