#include "src/sim/plan_io.hpp"

#include <cstring>
#include <type_traits>

#include "src/common/strutil.hpp"

namespace kconv::sim {

namespace {

// Every count read from the payload is sanity-capped against the bytes
// actually remaining, so a corrupted length can at worst fail a read — it
// can never drive a multi-gigabyte resize before the reader notices.
bool fits(const PlanReader& r, u64 n, u64 elem_bytes) {
  return n <= r.remaining() / (elem_bytes == 0 ? 1 : elem_bytes);
}

// The bulk vectors (tape entries, transaction lane lists, congruence
// hashes) dominate a plan payload; element-wise put/get loops were the
// serialization bottleneck, so they move as single memcpys. The byte
// layout equals the element-wise little-endian stream for these types
// (packed fields, natural alignment), asserted where it matters.
template <typename T>
void save_vec(PlanWriter& w, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.put_u64(v.size());
  w.raw(v.data(), v.size() * sizeof(T));
}

template <typename T>
bool load_vec(PlanReader& r, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const u64 n = r.get_u64();
  if (!r.ok() || !fits(r, n, sizeof(T))) return false;
  v.resize(n);
  return n == 0 || r.raw(v.data(), n * sizeof(T));
}

void save_stats(PlanWriter& w, const KernelStats& s) {
  w.put_u64(s.fma_lane_ops);
  w.put_u64(s.fma_warp_instrs);
  w.put_u64(s.alu_lane_ops);
  w.put_u64(s.alu_warp_instrs);
  w.put_u64(s.smem_instrs);
  w.put_u64(s.smem_request_cycles);
  w.put_u64(s.smem_bytes);
  w.put_u64(s.smem_lane_bytes);
  w.put_u64(s.smem_store_instrs);
  w.put_u64(s.smem_store_request_cycles);
  w.put_u64(s.gm_instrs);
  w.put_u64(s.gm_sectors);
  w.put_u64(s.gm_sectors_dram);
  w.put_u64(s.gm_bytes_useful);
  w.put_u64(s.const_instrs);
  w.put_u64(s.const_requests);
  w.put_u64(s.const_line_misses);
  w.put_u64(s.barriers);
  w.put_u64(s.gm_phases);
  w.put_u64(s.gm_dep_phases);
  w.put_u64(s.divergent_retires);
  w.put_u64(s.pattern_lookups);
  w.put_u64(s.pattern_hits);
  w.put_u64(s.max_warp_instrs);
  w.put_u64(s.blocks_executed);
}

void load_stats(PlanReader& r, KernelStats& s) {
  s.fma_lane_ops = r.get_u64();
  s.fma_warp_instrs = r.get_u64();
  s.alu_lane_ops = r.get_u64();
  s.alu_warp_instrs = r.get_u64();
  s.smem_instrs = r.get_u64();
  s.smem_request_cycles = r.get_u64();
  s.smem_bytes = r.get_u64();
  s.smem_lane_bytes = r.get_u64();
  s.smem_store_instrs = r.get_u64();
  s.smem_store_request_cycles = r.get_u64();
  s.gm_instrs = r.get_u64();
  s.gm_sectors = r.get_u64();
  s.gm_sectors_dram = r.get_u64();
  s.gm_bytes_useful = r.get_u64();
  s.const_instrs = r.get_u64();
  s.const_requests = r.get_u64();
  s.const_line_misses = r.get_u64();
  s.barriers = r.get_u64();
  s.gm_phases = r.get_u64();
  s.gm_dep_phases = r.get_u64();
  s.divergent_retires = r.get_u64();
  s.pattern_lookups = r.get_u64();
  s.pattern_hits = r.get_u64();
  s.max_warp_instrs = r.get_u64();
  s.blocks_executed = r.get_u64();
}

void save_phases(PlanWriter& w, const profile::PhaseProfile& pp) {
  for (u32 i = 0; i < profile::kNumPhases; ++i) {
    const profile::PhaseStats& p = pp.p[i];
    w.put_u64(p.fma_lane_ops);
    w.put_u64(p.alu_lane_ops);
    w.put_u64(p.smem_instrs);
    w.put_u64(p.smem_request_cycles);
    w.put_u64(p.smem_bytes);
    w.put_u64(p.smem_lane_bytes);
    w.put_u64(p.smem_store_instrs);
    w.put_u64(p.smem_store_request_cycles);
    w.put_u64(p.smem_store_lane_bytes);
    w.put_u64(p.gm_instrs);
    w.put_u64(p.gm_sectors);
    w.put_u64(p.gm_sectors_dram);
    w.put_u64(p.gm_bytes_useful);
    w.put_u64(p.const_instrs);
    w.put_u64(p.const_requests);
    w.put_u64(p.const_line_misses);
    w.put_u64(p.barriers);
    w.put_u64(p.pattern_lookups);
    w.put_u64(p.pattern_hits);
  }
}

void load_phases(PlanReader& r, profile::PhaseProfile& pp) {
  for (u32 i = 0; i < profile::kNumPhases; ++i) {
    profile::PhaseStats& p = pp.p[i];
    p.fma_lane_ops = r.get_u64();
    p.alu_lane_ops = r.get_u64();
    p.smem_instrs = r.get_u64();
    p.smem_request_cycles = r.get_u64();
    p.smem_bytes = r.get_u64();
    p.smem_lane_bytes = r.get_u64();
    p.smem_store_instrs = r.get_u64();
    p.smem_store_request_cycles = r.get_u64();
    p.smem_store_lane_bytes = r.get_u64();
    p.gm_instrs = r.get_u64();
    p.gm_sectors = r.get_u64();
    p.gm_sectors_dram = r.get_u64();
    p.gm_bytes_useful = r.get_u64();
    p.const_instrs = r.get_u64();
    p.const_requests = r.get_u64();
    p.const_line_misses = r.get_u64();
    p.barriers = r.get_u64();
    p.pattern_lookups = r.get_u64();
    p.pattern_hits = r.get_u64();
  }
}

void save_trace(PlanWriter& w, const BlockTrace& t) {
  save_stats(w, t.invariant);
  save_stats(w, t.compute);
  w.put_u64(t.addr_dep.gm_sectors);
  w.put_u64(t.addr_dep.gm_sectors_dram);
  w.put_u64(t.addr_dep.const_line_misses);
  w.put_u64(t.txs.size());
  for (const ReplayTx& tx : t.txs) {
    w.put_u8(static_cast<u8>(tx.op));
    w.put_u32(tx.lane_begin);
    w.put_u32(tx.lane_count);
  }
  save_vec(w, t.tx_lanes);
  save_vec(w, t.lane_hash);
  save_vec(w, t.lane_events);
  save_phases(w, t.phase_invariant);
  save_phases(w, t.phase_compute);
  save_phases(w, t.phase_addr_dep);
  w.put_u32(t.captured_block.x);
  w.put_u32(t.captured_block.y);
  w.put_u32(t.captured_block.z);
}

bool load_trace(PlanReader& r, u64 n_lanes, BlockTrace& t) {
  load_stats(r, t.invariant);
  load_stats(r, t.compute);
  t.addr_dep.gm_sectors = r.get_u64();
  t.addr_dep.gm_sectors_dram = r.get_u64();
  t.addr_dep.const_line_misses = r.get_u64();
  const u64 n_txs = r.get_u64();
  if (!r.ok() || !fits(r, n_txs, 9)) return false;
  t.txs.resize(n_txs);
  for (ReplayTx& tx : t.txs) {
    const u8 op = r.get_u8();
    if (op != static_cast<u8>(Op::LoadGlobal) &&
        op != static_cast<u8>(Op::StoreGlobal) &&
        op != static_cast<u8>(Op::LoadConst)) {
      return false;
    }
    tx.op = static_cast<Op>(op);
    tx.lane_begin = r.get_u32();
    tx.lane_count = r.get_u32();
  }
  if (!load_vec(r, t.tx_lanes)) return false;
  for (const u32 l : t.tx_lanes) {
    if (l >= n_lanes) return false;
  }
  for (const ReplayTx& tx : t.txs) {
    if (static_cast<u64>(tx.lane_begin) + tx.lane_count > t.tx_lanes.size()) {
      return false;
    }
  }
  if (!load_vec(r, t.lane_hash) || t.lane_hash.size() != n_lanes) {
    return false;
  }
  if (!load_vec(r, t.lane_events) || t.lane_events.size() != n_lanes) {
    return false;
  }
  load_phases(r, t.phase_invariant);
  load_phases(r, t.phase_compute);
  load_phases(r, t.phase_addr_dep);
  t.captured_block.x = r.get_u32();
  t.captured_block.y = r.get_u32();
  t.captured_block.z = r.get_u32();
  return r.ok();
}

// A TapeEntry's in-memory layout (packed u8/u8/u16/u32/u32/u32/i32, natural
// alignment, no padding) is byte-identical to its field-by-field
// little-endian stream, so whole entry vectors move as one memcpy.
static_assert(sizeof(TapeEntry) == 20);
static_assert(std::is_trivially_copyable_v<TapeEntry>);

// Tape entries dominate the sidecar payload (and therefore the warm
// launch's read+checksum+parse bill), and almost all of their 32-bit slot
// fields hold small values: a lane whose widths fit a byte and whose slot
// indices fit 16 bits stores 12 bytes per entry instead of 20. `rel` stays
// full-width (global-memory entries hold anchor-relative byte offsets).
// The raw layout remains as a per-lane fallback, so packing is purely a
// size optimization — never a capture constraint.
constexpr u8 kLanePacked = 0;
constexpr u8 kLaneRaw = 1;
constexpr u8 kPackedMaskBit = 0x80;
constexpr std::size_t kPackedEntryBytes = 12;

bool lane_packable(const LaneTape& lt) {
  for (const TapeEntry& e : lt.entries) {
    if (e.width > 0xFF || e.dst > 0xFFFF || e.a > 0xFFFF || e.b > 0xFFFF ||
        (e.flags & ~kTapeMasked) != 0 ||
        static_cast<u8>(e.op) >= kPackedMaskBit) {
      return false;
    }
  }
  return true;
}

void save_entries(PlanWriter& w, const LaneTape& lt) {
  if (!lane_packable(lt)) {
    w.put_u8(kLaneRaw);
    save_vec(w, lt.entries);
    return;
  }
  w.put_u8(kLanePacked);
  w.put_u64(lt.entries.size());
  std::string buf(lt.entries.size() * kPackedEntryBytes, '\0');
  char* p = buf.data();
  for (const TapeEntry& e : lt.entries) {
    const u8 op = static_cast<u8>(static_cast<u8>(e.op) |
                                  (e.flags != 0 ? kPackedMaskBit : 0));
    const u8 width = static_cast<u8>(e.width);
    const u16 dst = static_cast<u16>(e.dst);
    const u16 a = static_cast<u16>(e.a);
    const u16 b = static_cast<u16>(e.b);
    std::memcpy(p, &op, 1);
    std::memcpy(p + 1, &width, 1);
    std::memcpy(p + 2, &dst, 2);
    std::memcpy(p + 4, &a, 2);
    std::memcpy(p + 6, &b, 2);
    std::memcpy(p + 8, &e.rel, 4);
    p += kPackedEntryBytes;
  }
  w.raw(buf.data(), buf.size());
}

bool load_entries(PlanReader& r, LaneTape& lt) {
  const u8 mode = r.get_u8();
  if (!r.ok()) return false;
  if (mode == kLaneRaw) return load_vec(r, lt.entries);
  if (mode != kLanePacked) return false;
  const u64 n = r.get_u64();
  if (!r.ok() || !fits(r, n, kPackedEntryBytes)) return false;
  lt.entries.resize(n);
  const char* p = r.view(n * kPackedEntryBytes);
  if (p == nullptr) return false;
  for (TapeEntry& e : lt.entries) {
    u8 op, width;
    u16 dst, a, b;
    std::memcpy(&op, p, 1);
    std::memcpy(&width, p + 1, 1);
    std::memcpy(&dst, p + 2, 2);
    std::memcpy(&a, p + 4, 2);
    std::memcpy(&b, p + 6, 2);
    std::memcpy(&e.rel, p + 8, 4);
    e.op = static_cast<TapeOp>(op & ~kPackedMaskBit);
    e.flags = (op & kPackedMaskBit) != 0 ? kTapeMasked : 0;
    e.width = width;
    e.dst = dst;
    e.a = a;
    e.b = b;
    p += kPackedEntryBytes;
  }
  return true;
}

void save_tape(PlanWriter& w, const FuncTape& tape) {
  w.put_u64(tape.lanes.size());
  for (const LaneTape& lt : tape.lanes) {
    save_entries(w, lt);
    save_vec(w, lt.gather);
    w.put_u32(lt.n_slots);
  }
  for (u32 i = 0; i < ReplayOrigins::kMaxOrigins; ++i) {
    const FuncTape::OriginSpan& sp = tape.spans[i];
    w.put_i64(sp.min_rel);
    w.put_i64(sp.max_rel_end);
    w.put_u32(sp.widths);
    w.put_u8(sp.used ? 1 : 0);
    w.put_u8(sp.has_store ? 1 : 0);
  }
  w.put_u32(tape.max_slots);
}

/// Per-entry slot/offset validation mirroring what capture guarantees by
/// construction, so the unchecked batched interpreter can trust a loaded
/// tape exactly as far as it trusts a captured one.
bool tape_entry_valid(const TapeEntry& e, const LaneTape& lt,
                      u32 shared_bytes) {
  const u64 slots = lt.n_slots;
  const u64 dst_end = static_cast<u64>(e.dst) + e.width;
  const bool masked = (e.flags & kTapeMasked) != 0;
  switch (e.op) {
    case TapeOp::LoadGm:
    case TapeOp::LoadConst:
      return e.a < ReplayOrigins::kMaxOrigins && dst_end <= slots;
    case TapeOp::StoreGm:
      return e.a < ReplayOrigins::kMaxOrigins &&
             static_cast<u64>(e.b) + e.width <= slots;
    case TapeOp::LoadSm:
      return dst_end <= slots &&
             (masked || (e.rel >= 0 && static_cast<u64>(e.rel) +
                                               4ull * e.width <=
                                           shared_bytes));
    case TapeOp::StoreSm:
      return static_cast<u64>(e.b) + e.width <= slots &&
             (masked || (e.rel >= 0 && static_cast<u64>(e.rel) +
                                               4ull * e.width <=
                                           shared_bytes));
    case TapeOp::LoadLit:
      return dst_end <= slots;
    case TapeOp::Axpy:
      return dst_end <= slots && e.a < slots &&
             static_cast<u64>(e.b) + e.width <= slots &&
             static_cast<u64>(static_cast<u32>(e.rel)) + e.width <= slots;
    case TapeOp::FmaVec:
      return dst_end <= slots && static_cast<u64>(e.a) + e.width <= slots &&
             static_cast<u64>(e.b) + e.width <= slots &&
             static_cast<u64>(static_cast<u32>(e.rel)) + e.width <= slots;
    case TapeOp::Gather:
      return dst_end <= slots &&
             static_cast<u64>(e.a) + e.width <= lt.gather.size();
    case TapeOp::BiasRelu:
      return dst_end <= slots && static_cast<u64>(e.a) + e.width <= slots &&
             e.b < slots;
    case TapeOp::Sync:
      return true;
  }
  return false;
}

bool load_tape(PlanReader& r, u64 n_lanes, u32 shared_bytes, FuncTape& tape) {
  const u64 n_tapes = r.get_u64();
  if (!r.ok() || n_tapes != n_lanes) return false;
  tape.lanes.resize(n_tapes);
  for (LaneTape& lt : tape.lanes) {
    if (!load_entries(r, lt)) return false;
    if (!load_vec(r, lt.gather)) return false;
    lt.n_slots = r.get_u32();
    if (!r.ok() || lt.n_slots > LaneTapeBuilder::kMaxSlots) return false;
    for (const u32 g : lt.gather) {
      if (g >= lt.n_slots) return false;
    }
    for (const TapeEntry& e : lt.entries) {
      if (static_cast<u8>(e.op) > static_cast<u8>(TapeOp::BiasRelu)) {
        return false;
      }
      if (!tape_entry_valid(e, lt, shared_bytes)) return false;
    }
  }
  for (u32 i = 0; i < ReplayOrigins::kMaxOrigins; ++i) {
    FuncTape::OriginSpan& sp = tape.spans[i];
    sp.min_rel = r.get_i64();
    sp.max_rel_end = r.get_i64();
    sp.widths = r.get_u32();
    sp.used = r.get_u8() != 0;
    sp.has_store = r.get_u8() != 0;
  }
  tape.max_slots = r.get_u32();
  if (!r.ok() || tape.max_slots > LaneTapeBuilder::kMaxSlots) return false;
  for (const LaneTape& lt : tape.lanes) {
    if (lt.n_slots > tape.max_slots) return false;
  }
  return true;
}

}  // namespace

std::string arch_fingerprint(const Arch& arch) {
  // Exactly the parameters that shape what a capture records: warp/bank/
  // sector geometry, cache shapes and line sizes. Clock/bandwidth numbers
  // only scale the timing estimate and deliberately stay out.
  return strf("%s/w%u/b%ux%u/sec%u/cl%u/cc%u/l2%u", arch.name.c_str(),
              arch.warp_size, arch.smem_banks, arch.smem_bank_bytes,
              arch.gm_sector_bytes, arch.const_line_bytes,
              arch.const_cache_per_sm, arch.l2_capacity);
}

std::string plan_store_key(std::string_view kernel_key, const Arch& arch,
                           const LaunchConfig& cfg, TraceLevel level,
                           bool profiled) {
  // Profiled and unprofiled captures are separate entries: only a capture
  // that ran with a phase collector carries the per-phase splits a warm
  // profiled launch must replay (the phase-sum invariant would otherwise
  // break on a plan captured without profiling).
  return strf("%.*s|%s|grid=%ux%ux%u|block=%ux%ux%u|smem=%u|regs=%u|%s|%s",
              static_cast<int>(kernel_key.size()), kernel_key.data(),
              arch_fingerprint(arch).c_str(), cfg.grid.x, cfg.grid.y,
              cfg.grid.z, cfg.block.x, cfg.block.y, cfg.block.z,
              cfg.shared_bytes, cfg.regs_per_thread,
              level == TraceLevel::Timing ? "timing" : "functional",
              profiled ? "prof" : "noprof");
}

std::string plan_tape_key(const std::string& store_key) {
  return store_key + "|tapes";
}

std::string serialize_plan(const LaunchPlan& plan) {
  PlanWriter w;
  w.put_str(plan.arch);
  w.put_u8(plan.trace_level);
  w.put_u32(plan.cfg.grid.x);
  w.put_u32(plan.cfg.grid.y);
  w.put_u32(plan.cfg.grid.z);
  w.put_u32(plan.cfg.block.x);
  w.put_u32(plan.cfg.block.y);
  w.put_u32(plan.cfg.block.z);
  w.put_u32(plan.cfg.shared_bytes);
  w.put_u32(plan.cfg.regs_per_thread);
  w.put_u64(plan.static_signature);
  w.put_u64(plan.classes.size());
  for (const PlanClass& pc : plan.classes) {
    w.put_u64(pc.id);
    save_trace(w, pc.trace);
  }
  w.put_str(plan.pattern_blob);
  return w.take();
}

bool deserialize_plan(std::string_view payload, LaunchPlan& out,
                      std::string* why) {
  const auto fail = [&](const char* reason) {
    out = LaunchPlan{};
    if (why != nullptr) *why = reason;
    return false;
  };
  PlanReader r(payload);
  out = LaunchPlan{};
  out.arch = r.get_str();
  out.trace_level = r.get_u8();
  out.cfg.grid.x = r.get_u32();
  out.cfg.grid.y = r.get_u32();
  out.cfg.grid.z = r.get_u32();
  out.cfg.block.x = r.get_u32();
  out.cfg.block.y = r.get_u32();
  out.cfg.block.z = r.get_u32();
  out.cfg.shared_bytes = r.get_u32();
  out.cfg.regs_per_thread = r.get_u32();
  out.static_signature = r.get_u64();
  if (!r.ok() || out.cfg.block.count() == 0 ||
      out.cfg.block.count() > (1u << 20)) {
    return fail("corrupt-payload");
  }
  const u64 n_lanes = out.cfg.block.count();
  const u64 n_classes = r.get_u64();
  if (!r.ok() || !fits(r, n_classes, 8)) return fail("corrupt-payload");
  out.classes.resize(n_classes);
  for (PlanClass& pc : out.classes) {
    pc.id = r.get_u64();
    if (!load_trace(r, n_lanes, pc.trace)) return fail("corrupt-payload");
  }
  out.pattern_blob = r.get_str();
  if (!r.at_end()) return fail("corrupt-payload");
  return true;
}

std::string serialize_tapes(const LaunchPlan& plan) {
  u64 n = 0;
  for (const PlanClass& pc : plan.classes) n += pc.has_tape ? 1 : 0;
  if (n == 0) return {};
  PlanWriter w;
  w.put_u64(n);
  for (const PlanClass& pc : plan.classes) {
    if (!pc.has_tape) continue;
    w.put_u64(pc.id);
    w.put_u8(pc.validated ? 1 : 0);
    save_tape(w, pc.tape);
  }
  return w.take();
}

bool deserialize_tapes(std::string_view payload, LaunchPlan& plan,
                       std::string* why) {
  const auto fail = [&](const char* reason) {
    for (PlanClass& pc : plan.classes) {
      pc.tape = FuncTape{};
      pc.has_tape = false;
      pc.validated = false;
    }
    if (why != nullptr) *why = reason;
    return false;
  };
  const u64 n_lanes = plan.cfg.block.count();
  PlanReader r(payload);
  const u64 n = r.get_u64();
  if (!r.ok() || n > plan.classes.size()) return fail("corrupt-tapes");
  for (u64 i = 0; i < n; ++i) {
    const u64 id = r.get_u64();
    const bool validated = r.get_u8() != 0;
    PlanClass* pc = nullptr;
    for (PlanClass& cand : plan.classes) {
      if (cand.id == id) {
        pc = &cand;
        break;
      }
    }
    // A tape for a class the plan does not know is a cross-write between
    // store entries; nothing in this sidecar is trustworthy.
    if (pc == nullptr || pc->has_tape) return fail("stale-tapes");
    if (!load_tape(r, n_lanes, plan.cfg.shared_bytes, pc->tape)) {
      return fail("corrupt-tapes");
    }
    pc->has_tape = true;
    pc->validated = validated;
  }
  if (!r.at_end()) return fail("corrupt-tapes");
  if (why != nullptr) *why = "hit";
  return true;
}

bool plan_matches(const LaunchPlan& plan, const Arch& arch,
                  const LaunchConfig& cfg, TraceLevel level,
                  std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (plan.arch != arch_fingerprint(arch)) return fail("stale-arch");
  if (plan.trace_level != static_cast<u8>(level)) return fail("stale-trace-level");
  if (plan.cfg.grid.x != cfg.grid.x || plan.cfg.grid.y != cfg.grid.y ||
      plan.cfg.grid.z != cfg.grid.z || plan.cfg.block.x != cfg.block.x ||
      plan.cfg.block.y != cfg.block.y || plan.cfg.block.z != cfg.block.z ||
      plan.cfg.shared_bytes != cfg.shared_bytes) {
    return fail("stale-config");
  }
  return true;
}

}  // namespace kconv::sim
