// ThreadCtx — the device-side programming interface of the simulator.
//
// A kernel body receives `ThreadCtx& t` (its blockIdx/threadIdx plus the
// operations a CUDA thread would have):
//
//   float v  = co_await t.ld_global(img, i);          // scalar load
//   vec2f u  = co_await t.ld_shared<vec2f>(sh, j);    // matched 8B unit load
//   co_await t.st_global(out, i, t.fma(u[0], w, a));  // FMA is free-running
//   co_await t.sync();                                // __syncthreads()
//
// Loads/stores suspend so the BlockExecutor can retire them as warp
// transactions; arithmetic only bumps per-lane counters. Vector units
// (Vec<T,N>) are how a kernel matches its computation data width W_CD to the
// shared-memory bank width W_SMB, per the paper's Eq. (1).
#pragma once

#include <algorithm>

#include "src/common/types.hpp"
#include "src/profile/phase.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/memory.hpp"
#include "src/sim/shared.hpp"
#include "src/sim/task.hpp"
#include "src/sim/trace.hpp"

namespace kconv::sim {

class ThreadCtx {
 public:
  // Launch geometry (same names as CUDA built-ins).
  Dim3 block_idx;
  Dim3 thread_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// Flattened thread index within the block (x fastest).
  u32 flat_tid() const {
    return thread_idx.x + block_dim.x * (thread_idx.y + block_dim.y * thread_idx.z);
  }

  // --- Arithmetic (non-suspending; counted for the timing model) -----------

  /// Scalar fused multiply-add: returns a*b + c, charges one FMA lane-op.
  float fma(float a, float b, float c) {
    charge_fma(1);
    if (tape_ != nullptr) [[unlikely]] {
      return LaneTapeBuilder::tag_value(tape_->note_axpy(&a, b, &c, 1));
    }
    return a * b + c;
  }

  /// Vector FMA with a scalar multiplier: out[i] = x[i]*w + acc[i].
  /// Charges N lane-ops — a thread computing n pixels per unit does n times
  /// the arithmetic per instruction, which is exactly the point.
  template <int N>
  Vec<float, N> fma(const Vec<float, N>& x, float w,
                    const Vec<float, N>& acc) {
    charge_fma(N);
    if (tape_ != nullptr) [[unlikely]] {
      return tape_tagged<Vec<float, N>>(
          tape_->note_axpy(&x[0], w, &acc[0], N));
    }
    Vec<float, N> out;
    for (int i = 0; i < N; ++i) out[i] = x[i] * w + acc[i];
    return out;
  }

  /// Elementwise vector FMA: out[i] = x[i]*y[i] + acc[i].
  template <int N>
  Vec<float, N> fma(const Vec<float, N>& x, const Vec<float, N>& y,
                    const Vec<float, N>& acc) {
    charge_fma(N);
    if (tape_ != nullptr) [[unlikely]] {
      return tape_tagged<Vec<float, N>>(
          tape_->note_fma_vec(&x[0], &y[0], &acc[0], N));
    }
    Vec<float, N> out;
    for (int i = 0; i < N; ++i) out[i] = x[i] * y[i] + acc[i];
    return out;
  }

  /// Fused bias+ReLU epilogue: out = max(0, x + bias). Charges 2 ALU
  /// lane-ops (one add, one clamp — the same cost the standalone
  /// bias_relu kernel charges per element), and is tape-recordable so
  /// fused kernels keep their coroutine-free replay path.
  float bias_relu(float x, float bias) {
    charge_alu(2);
    if (tape_ != nullptr) [[unlikely]] {
      return LaneTapeBuilder::tag_value(tape_->note_bias_relu(&x, bias, 1));
    }
    return std::max(0.0f, x + bias);
  }

  /// Vector fused bias+ReLU: out[i] = max(0, x[i] + bias).
  template <int N>
  Vec<float, N> bias_relu(const Vec<float, N>& x, float bias) {
    charge_alu(2 * N);
    if (tape_ != nullptr) [[unlikely]] {
      return tape_tagged<Vec<float, N>>(tape_->note_bias_relu(&x[0], bias, N));
    }
    Vec<float, N> out;
    for (int i = 0; i < N; ++i) out[i] = std::max(0.0f, x[i] + bias);
    return out;
  }

  /// Charges `n` generic ALU lane-ops (index arithmetic a real kernel would
  /// spend instructions on but that host C++ does for free).
  void alu(u64 n = 1) { charge_alu(n); }

  // --- Global memory ---------------------------------------------------------

  template <typename V, typename T>
  detail::LoadAwait<V> ld_global(const BufferView<T>& view, i64 idx) {
    charge_alu(1);  // address computation a real kernel spends an IADD on
    const Access a{Op::LoadGlobal, view.addr_of(idx), sizeof(V), phase_};
    if (tape_ != nullptr) [[unlikely]] {
      return {a, tape_load<V>(view.buffer(), a.addr, true, false), true};
    }
    return {a, view.template read<V>(idx), record(a)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_global(const BufferView<T>& view, i64 idx) {
    return ld_global<T, T>(view, idx);
  }

  /// Predicated load: like `pred ? value : V{}` on hardware — the lane
  /// still occupies its slot in the warp instruction (keeping the warp in
  /// lockstep) but an inactive lane touches no memory and costs nothing.
  /// Use at divergence sites (boundary handling) instead of `if (...)
  /// co_await`, which would let lanes drift out of phase.
  template <typename V, typename T>
  detail::LoadAwait<V> ld_global_if(bool pred, const BufferView<T>& view,
                                    i64 idx) {
    if (!pred) {
      const Access a{Op::LoadGlobal, 0, 0, phase_};
      if (tape_ != nullptr) [[unlikely]] {
        return {a, tape_load<V>(nullptr, 0, false, false), true};
      }
      return {a, V{}, record(a)};
    }
    return ld_global<V, T>(view, idx);
  }
  template <typename T>
  detail::LoadAwait<T> ld_global_if(bool pred, const BufferView<T>& view,
                                    i64 idx) {
    return ld_global_if<T, T>(pred, view, idx);
  }

  template <typename T, typename V>
  detail::VoidAwait st_global(const BufferView<T>& view, i64 idx,
                              const V& value) {
    charge_alu(1);
    const Access a{Op::StoreGlobal, view.addr_of(idx), sizeof(V), phase_};
    if (tape_ != nullptr) [[unlikely]] {
      tape_store(value, [&](const float* e, u32 n) {
        tape_->note_store_gm(view.buffer(), a.addr, e, n, true);
      });
      return {a, true};
    }
    view.template write<V>(idx, value);
    return {a, record(a)};
  }

  /// Predicated store (see ld_global_if).
  template <typename T, typename V>
  detail::VoidAwait st_global_if(bool pred, const BufferView<T>& view,
                                 i64 idx, const V& value) {
    if (!pred) {
      const Access a{Op::StoreGlobal, 0, 0, phase_};
      if (tape_ != nullptr) [[unlikely]] {
        tape_store(value, [&](const float* e, u32 n) {
          tape_->note_store_gm(nullptr, 0, e, n, false);
        });
        return {a, true};
      }
      return {a, record(a)};
    }
    return st_global(view, idx, value);
  }

  // --- Shared memory ----------------------------------------------------------

  /// Materializes a typed view over this block's shared memory.
  template <typename T>
  SharedView<T> shared(u32 byte_off, i64 count) {
    return SharedView<T>(smem_base_, smem_bytes_, byte_off, count);
  }

  template <typename V, typename T>
  detail::LoadAwait<V> ld_shared(const SharedView<T>& view, i64 idx) {
    charge_alu(1);
    const Access a{Op::LoadShared, view.addr_of(idx), sizeof(V), phase_};
    if (tape_ != nullptr) [[unlikely]] {
      if constexpr (kTapeFloatElems<V>) {
        constexpr u32 n = sizeof(V) / sizeof(float);
        return {a, tape_tagged<V>(tape_->note_load_sm(a.addr, n)), true};
      } else {
        tape_->unsupported("non-float shared load");
      }
    }
    return {a, view.template read<V>(idx), record(a)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_shared(const SharedView<T>& view, i64 idx) {
    return ld_shared<T, T>(view, idx);
  }

  template <typename T, typename V>
  detail::VoidAwait st_shared(const SharedView<T>& view, i64 idx,
                              const V& value) {
    charge_alu(1);
    const Access a{Op::StoreShared, view.addr_of(idx), sizeof(V), phase_};
    if (tape_ != nullptr) [[unlikely]] {
      tape_store(value, [&](const float* e, u32 n) {
        tape_->note_store_sm(a.addr, e, n, true);
      });
      return {a, true};
    }
    view.template write<V>(idx, value);
    return {a, record(a)};
  }

  /// Predicated shared store (see ld_global_if).
  template <typename T, typename V>
  detail::VoidAwait st_shared_if(bool pred, const SharedView<T>& view,
                                 i64 idx, const V& value) {
    if (!pred) {
      const Access a{Op::StoreShared, 0, 0, phase_};
      if (tape_ != nullptr) [[unlikely]] {
        tape_store(value, [&](const float* e, u32 n) {
          tape_->note_store_sm(0, e, n, false);
        });
        return {a, true};
      }
      return {a, record(a)};
    }
    return st_shared(view, idx, value);
  }

  // --- Constant memory ---------------------------------------------------------

  template <typename V, typename T>
  detail::LoadAwait<V> ld_const(const ConstView<T>& view, i64 idx) {
    const Access a{Op::LoadConst, view.addr_of(idx), sizeof(V), phase_};
    if (tape_ != nullptr) [[unlikely]] {
      if constexpr (kTapeFloatElems<V>) {
        constexpr u32 n = sizeof(V) / sizeof(float);
        return {a,
                tape_tagged<V>(
                    tape_->note_load_const(view.buffer(), a.addr, n)),
                true};
      } else {
        tape_->unsupported("non-float constant load");
      }
    }
    return {a, view.template read<V>(idx), record(a)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_const(const ConstView<T>& view, i64 idx) {
    return ld_const<T, T>(view, idx);
  }

  // --- Synchronization -----------------------------------------------------------

  /// __syncthreads(): suspends until every live lane of the block arrives.
  /// Under replay the barrier is still a real suspension — it is the one
  /// scheduling point fast-forward execution preserves — but it is recorded
  /// like any other event so the congruence hash covers sync placement.
  detail::VoidAwait sync() {
    // Barriers are attributed automatically; kernels never annotate them.
    const Access a{Op::Sync, 0, 0, profile::Phase::Sync};
    if (tape_ != nullptr) [[unlikely]] {
      tape_->note_sync();
    }
    (void)record(a);
    return {a, false};
  }

  // --- Executor interface ----------------------------------------------------------

  void bind_smem(std::byte* base, u32 bytes) {
    smem_base_ = base;
    smem_bytes_ = bytes;
  }
  /// Replay mode (MODEL.md §5b): while a recorder is bound, memory ops are
  /// noted instead of suspending, so a lane runs barrier-to-barrier in one
  /// resume. nullptr (default) restores exact direct-execution behavior.
  void bind_recorder(LaneRecorder* rec) { recorder_ = rec; }
  /// Tagging mode (MODEL.md §5b): while a tape builder is bound, loads
  /// return NaN-boxed value slots, fma records the dataflow, and stores
  /// record which slots leave the block — no functional memory is touched.
  /// Like fast-forward, only sync() suspends.
  void bind_tape(LaneTapeBuilder* tape) { tape_ = tape; }
  /// Profiling mode (MODEL.md §7): while a lane profile is bound, fma/alu
  /// charges are additionally attributed to the lane's current phase. The
  /// base counters are maintained either way, so binding one never changes
  /// simulation results.
  void bind_profile(profile::LaneProfile* p) { profile_ = p; }
  u64 fma_ops() const { return fma_ops_; }
  u64 alu_ops() const { return alu_ops_; }

  /// Current phase, stamped into every Access this lane issues. Kernels
  /// set it via ProfilePhase scopes; stamping is unconditional so traces
  /// and hashes are independent of whether profiling is enabled.
  profile::Phase phase() const { return phase_; }
  void set_phase(profile::Phase p) { phase_ = p; }

 private:
  /// Notes `a` in the bound recorder; returns whether the awaitable should
  /// skip its suspension (true exactly in replay mode).
  bool record(const Access& a) {
    if (recorder_ == nullptr) return false;
    recorder_->note(a);
    return true;
  }

  /// A value of type V whose float elements are the tags of `width`
  /// consecutive slots starting at `base`.
  template <typename V>
  V tape_tagged(u32 base) {
    static_assert(kTapeFloatElems<V>);
    if constexpr (std::is_same_v<V, float>) {
      return LaneTapeBuilder::tag_value(base);
    } else {
      V out;
      for (u32 i = 0; i < sizeof(V) / sizeof(float); ++i) {
        out[static_cast<int>(i)] = LaneTapeBuilder::tag_value(base + i);
      }
      return out;
    }
  }

  /// Tag-mode global/const load: records the entry, returns fresh tags.
  template <typename V>
  V tape_load(const DeviceBuffer* buf, u64 addr, bool pred, bool is_const) {
    if constexpr (kTapeFloatElems<V>) {
      constexpr u32 n = sizeof(V) / sizeof(float);
      (void)is_const;
      return tape_tagged<V>(tape_->note_load_gm(buf, addr, n, pred));
    } else {
      tape_->unsupported("non-float global load");
    }
  }

  /// Tag-mode store: decomposes V into float elements and hands them to the
  /// builder (which resolves each element's slot).
  template <typename V, typename F>
  void tape_store(const V& value, F&& note) {
    if constexpr (kTapeFloatElems<V>) {
      constexpr u32 n = sizeof(V) / sizeof(float);
      if constexpr (std::is_same_v<V, float>) {
        note(&value, n);
      } else {
        note(&value[0], n);
      }
    } else {
      tape_->unsupported("non-float store");
    }
  }

  void charge_fma(u64 n) {
    fma_ops_ += n;
    if (profile_ != nullptr) [[unlikely]] {
      profile_->fma[profile::phase_index(phase_)] += n;
    }
  }
  void charge_alu(u64 n) {
    alu_ops_ += n;
    if (profile_ != nullptr) [[unlikely]] {
      profile_->alu[profile::phase_index(phase_)] += n;
    }
  }

  std::byte* smem_base_ = nullptr;
  u32 smem_bytes_ = 0;
  u64 fma_ops_ = 0;
  u64 alu_ops_ = 0;
  LaneRecorder* recorder_ = nullptr;
  LaneTapeBuilder* tape_ = nullptr;
  profile::LaneProfile* profile_ = nullptr;
  profile::Phase phase_ = profile::Phase::Other;
};

/// RAII phase scope (MODEL.md §7): tags everything the lane does while the
/// scope is alive — loads, stores, fma/alu — with `p`, restoring the
/// enclosing phase on exit. Nesting works (inner scope wins); barriers are
/// always attributed to Phase::Sync regardless of the open scope.
class ProfilePhase {
 public:
  ProfilePhase(ThreadCtx& t, profile::Phase p) : t_(&t), prev_(t.phase()) {
    t.set_phase(p);
  }
  ~ProfilePhase() { t_->set_phase(prev_); }
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  ThreadCtx* t_;
  profile::Phase prev_;
};

}  // namespace kconv::sim
