// ThreadCtx — the device-side programming interface of the simulator.
//
// A kernel body receives `ThreadCtx& t` (its blockIdx/threadIdx plus the
// operations a CUDA thread would have):
//
//   float v  = co_await t.ld_global(img, i);          // scalar load
//   vec2f u  = co_await t.ld_shared<vec2f>(sh, j);    // matched 8B unit load
//   co_await t.st_global(out, i, t.fma(u[0], w, a));  // FMA is free-running
//   co_await t.sync();                                // __syncthreads()
//
// Loads/stores suspend so the BlockExecutor can retire them as warp
// transactions; arithmetic only bumps per-lane counters. Vector units
// (Vec<T,N>) are how a kernel matches its computation data width W_CD to the
// shared-memory bank width W_SMB, per the paper's Eq. (1).
#pragma once

#include "src/common/types.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/memory.hpp"
#include "src/sim/shared.hpp"
#include "src/sim/task.hpp"

namespace kconv::sim {

class ThreadCtx {
 public:
  // Launch geometry (same names as CUDA built-ins).
  Dim3 block_idx;
  Dim3 thread_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// Flattened thread index within the block (x fastest).
  u32 flat_tid() const {
    return thread_idx.x + block_dim.x * (thread_idx.y + block_dim.y * thread_idx.z);
  }

  // --- Arithmetic (non-suspending; counted for the timing model) -----------

  /// Scalar fused multiply-add: returns a*b + c, charges one FMA lane-op.
  float fma(float a, float b, float c) {
    ++fma_ops_;
    return a * b + c;
  }

  /// Vector FMA with a scalar multiplier: out[i] = x[i]*w + acc[i].
  /// Charges N lane-ops — a thread computing n pixels per unit does n times
  /// the arithmetic per instruction, which is exactly the point.
  template <int N>
  Vec<float, N> fma(const Vec<float, N>& x, float w,
                    const Vec<float, N>& acc) {
    Vec<float, N> out;
    for (int i = 0; i < N; ++i) out[i] = x[i] * w + acc[i];
    fma_ops_ += N;
    return out;
  }

  /// Elementwise vector FMA: out[i] = x[i]*y[i] + acc[i].
  template <int N>
  Vec<float, N> fma(const Vec<float, N>& x, const Vec<float, N>& y,
                    const Vec<float, N>& acc) {
    Vec<float, N> out;
    for (int i = 0; i < N; ++i) out[i] = x[i] * y[i] + acc[i];
    fma_ops_ += N;
    return out;
  }

  /// Charges `n` generic ALU lane-ops (index arithmetic a real kernel would
  /// spend instructions on but that host C++ does for free).
  void alu(u64 n = 1) { alu_ops_ += n; }

  // --- Global memory ---------------------------------------------------------

  template <typename V, typename T>
  detail::LoadAwait<V> ld_global(const BufferView<T>& view, i64 idx) {
    ++alu_ops_;  // address computation a real kernel spends an IADD on
    return {Access{Op::LoadGlobal, view.addr_of(idx), sizeof(V)},
            view.template read<V>(idx)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_global(const BufferView<T>& view, i64 idx) {
    return ld_global<T, T>(view, idx);
  }

  /// Predicated load: like `pred ? value : V{}` on hardware — the lane
  /// still occupies its slot in the warp instruction (keeping the warp in
  /// lockstep) but an inactive lane touches no memory and costs nothing.
  /// Use at divergence sites (boundary handling) instead of `if (...)
  /// co_await`, which would let lanes drift out of phase.
  template <typename V, typename T>
  detail::LoadAwait<V> ld_global_if(bool pred, const BufferView<T>& view,
                                    i64 idx) {
    if (!pred) return {Access{Op::LoadGlobal, 0, 0}, V{}};
    return ld_global<V, T>(view, idx);
  }
  template <typename T>
  detail::LoadAwait<T> ld_global_if(bool pred, const BufferView<T>& view,
                                    i64 idx) {
    return ld_global_if<T, T>(pred, view, idx);
  }

  template <typename T, typename V>
  detail::VoidAwait st_global(const BufferView<T>& view, i64 idx,
                              const V& value) {
    ++alu_ops_;
    view.template write<V>(idx, value);
    return {Access{Op::StoreGlobal, view.addr_of(idx), sizeof(V)}};
  }

  /// Predicated store (see ld_global_if).
  template <typename T, typename V>
  detail::VoidAwait st_global_if(bool pred, const BufferView<T>& view,
                                 i64 idx, const V& value) {
    if (!pred) return {Access{Op::StoreGlobal, 0, 0}};
    return st_global(view, idx, value);
  }

  // --- Shared memory ----------------------------------------------------------

  /// Materializes a typed view over this block's shared memory.
  template <typename T>
  SharedView<T> shared(u32 byte_off, i64 count) {
    return SharedView<T>(smem_base_, smem_bytes_, byte_off, count);
  }

  template <typename V, typename T>
  detail::LoadAwait<V> ld_shared(const SharedView<T>& view, i64 idx) {
    ++alu_ops_;
    return {Access{Op::LoadShared, view.addr_of(idx), sizeof(V)},
            view.template read<V>(idx)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_shared(const SharedView<T>& view, i64 idx) {
    return ld_shared<T, T>(view, idx);
  }

  template <typename T, typename V>
  detail::VoidAwait st_shared(const SharedView<T>& view, i64 idx,
                              const V& value) {
    ++alu_ops_;
    view.template write<V>(idx, value);
    return {Access{Op::StoreShared, view.addr_of(idx), sizeof(V)}};
  }

  /// Predicated shared store (see ld_global_if).
  template <typename T, typename V>
  detail::VoidAwait st_shared_if(bool pred, const SharedView<T>& view,
                                 i64 idx, const V& value) {
    if (!pred) return {Access{Op::StoreShared, 0, 0}};
    return st_shared(view, idx, value);
  }

  // --- Constant memory ---------------------------------------------------------

  template <typename V, typename T>
  detail::LoadAwait<V> ld_const(const ConstView<T>& view, i64 idx) {
    return {Access{Op::LoadConst, view.addr_of(idx), sizeof(V)},
            view.template read<V>(idx)};
  }
  template <typename T>
  detail::LoadAwait<T> ld_const(const ConstView<T>& view, i64 idx) {
    return ld_const<T, T>(view, idx);
  }

  // --- Synchronization -----------------------------------------------------------

  /// __syncthreads(): suspends until every live lane of the block arrives.
  detail::VoidAwait sync() { return {Access{Op::Sync, 0, 0}}; }

  // --- Executor interface ----------------------------------------------------------

  void bind_smem(std::byte* base, u32 bytes) {
    smem_base_ = base;
    smem_bytes_ = bytes;
  }
  u64 fma_ops() const { return fma_ops_; }
  u64 alu_ops() const { return alu_ops_; }

 private:
  std::byte* smem_base_ = nullptr;
  u32 smem_bytes_ = 0;
  u64 fma_ops_ = 0;
  u64 alu_ops_ = 0;
};

}  // namespace kconv::sim
