// Disk-backed launch-plan store (docs/MODEL.md §5d).
//
// A PlanCache is a directory of versioned, checksummed blobs keyed by a
// caller-built string (kernel id + shape + launch config + arch). The store
// is deliberately dumb: it moves opaque payload bytes and owns exactly the
// envelope-level integrity story —
//
//   * every blob carries a magic, the format version, the full key string
//     and an FNV checksum of the payload;
//   * load() re-derives all four and reports any mismatch as a distinct
//     miss reason ("stale-version", "stale-key", "corrupt", ...) instead of
//     returning questionable bytes — a stale or truncated store can only
//     ever cost a re-capture, never a silently wrong plan;
//   * store() writes to a unique temp file and renames it into place, so
//     concurrent writers (parallel autotune candidates, several processes
//     sharing one cache dir) leave either the old blob or a complete new
//     one, never a torn file.
//
// What the payload *means* (serialized traces, tapes, pattern tables) is
// plan_io.hpp's business; what a hit is worth is the launch layer's.
#pragma once

#include <atomic>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/types.hpp"

namespace kconv::sim {

/// Envelope format version: bump whenever plan_io's payload layout changes
/// incompatibly, so old stores are rejected loudly instead of misparsed.
/// v2: tape op set grew (TapeOp::BiasRelu, the fused conv epilogue).
/// v3: plan header records the capturing kernel's static access signature
///     (kconv-xray, docs/MODEL.md §10) for warm-side pre-validation.
inline constexpr u32 kPlanFormatVersion = 3;

/// Little-endian byte-buffer writer for plan payloads.
class PlanWriter {
 public:
  void put_u8(u8 v) { raw(&v, 1); }
  void put_u16(u16 v) { raw(&v, 2); }
  void put_u32(u32 v) { raw(&v, 4); }
  void put_u64(u64 v) { raw(&v, 8); }
  void put_i32(i32 v) { raw(&v, 4); }
  void put_i64(i64 v) { raw(&v, 8); }
  void put_f64(double v) { raw(&v, 8); }
  void put_str(std::string_view s) {
    put_u32(static_cast<u32>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  const std::string& buf() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a plan payload. Any out-of-range read flips
/// ok() to false and yields zeros; callers validate once at the end (or at
/// structural checkpoints) instead of per field.
class PlanReader {
 public:
  explicit PlanReader(std::string_view bytes) : p_(bytes.data()), n_(bytes.size()) {}

  u8 get_u8() { return get<u8>(); }
  u16 get_u16() { return get<u16>(); }
  u32 get_u32() { return get<u32>(); }
  u64 get_u64() { return get<u64>(); }
  i32 get_i32() { return get<i32>(); }
  i64 get_i64() { return get<i64>(); }
  double get_f64() { return get<double>(); }
  std::string get_str() {
    const u32 len = get_u32();
    if (!can(len)) return {};
    std::string s(p_ + off_, len);
    off_ += len;
    return s;
  }
  bool raw(void* out, std::size_t n) {
    if (!can(n)) return false;
    std::memcpy(out, p_ + off_, n);
    off_ += n;
    return true;
  }
  /// Zero-copy read: a pointer to the next `n` payload bytes (valid while
  /// the underlying buffer lives), or nullptr past the end.
  const char* view(std::size_t n) {
    if (!can(n)) return nullptr;
    const char* p = p_ + off_;
    off_ += n;
    return p;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && off_ == n_; }
  std::size_t remaining() const { return n_ - off_; }

 private:
  template <typename T>
  T get() {
    T v{};
    raw(&v, sizeof(T));
    return v;
  }
  bool can(std::size_t n) {
    if (!ok_ || n > n_ - off_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte range, folded 8 bytes at a time (payload checksums).
u64 plan_checksum(std::string_view bytes);

/// The directory store. Construction probes the directory (creating it if
/// absent) and throws kconv::Error when it is not a readable+writable
/// directory — callers that want a clean exit (kconv_cli) probe by
/// constructing early, before any simulation work.
class PlanCache {
 public:
  /// `byte_budget` caps the directory's total blob bytes (0 = unbounded):
  /// when a store pushes the directory past the cap, least-recently-used
  /// entries are evicted — a plan blob and its `<key>|tapes` sidecar always
  /// leave together, so a surviving entry is never left half-warm. Eviction
  /// only costs a re-capture (an evicted key is an ordinary "miss" later);
  /// the entry just stored is never evicted, even when it alone exceeds the
  /// cap.
  explicit PlanCache(std::string dir, u64 byte_budget = 0);

  const std::string& dir() const { return dir_; }

  /// Adjusts the byte cap; takes effect at the next store() (0 disables).
  void set_byte_budget(u64 bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  u64 byte_budget() const { return budget_.load(std::memory_order_relaxed); }

  /// Total bytes currently held by the directory's plan blobs.
  u64 disk_bytes() const;

  /// Loads and envelope-validates the blob for `key`. True on a valid hit
  /// (payload filled); false otherwise with `*why` one of "miss",
  /// "corrupt", "stale-version" or "stale-key".
  bool load(const std::string& key, std::string& payload,
            std::string* why = nullptr);

  /// Zero-copy variant: fills `blob` with the raw file and points `payload`
  /// at the validated payload bytes inside it. The view is valid as long as
  /// `blob` is alive and unmodified. The hot path for multi-megabyte plans —
  /// load() costs one extra full-payload copy on top of this.
  bool load_view(const std::string& key, std::string& blob,
                 std::string_view& payload, std::string* why = nullptr);

  /// Atomically (tmp + rename) writes the blob for `key`, replacing any
  /// previous version. Throws kconv::Error on I/O failure.
  void store(const std::string& key, std::string_view payload);

  /// Final on-disk path of a key's blob (hash-named; the full key string
  /// lives inside the envelope and is verified on load).
  std::string path_for(const std::string& key) const;

  u64 loads() const { return loads_.load(std::memory_order_relaxed); }
  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 stores() const { return stores_.load(std::memory_order_relaxed); }
  /// Files removed by budget eviction (a blob and its sidecar count as two).
  u64 evictions() const { return evictions_.load(std::memory_order_relaxed); }

 private:
  void evict_to_budget(const std::string& keep_key);

  std::string dir_;
  std::atomic<u64> budget_{0};
  // One store may serve several host threads (parallel autotune probes,
  // concurrent warm launches) — count with relaxed atomics.
  std::atomic<u64> loads_{0};
  std::atomic<u64> hits_{0};
  std::atomic<u64> stores_{0};
  std::atomic<u64> evictions_{0};
};

}  // namespace kconv::sim
