// Memory / synchronization events published by device threads.
//
// Every suspension point of a device-thread coroutine carries one Access.
// The BlockExecutor groups the per-lane Accesses of a warp into a single
// warp transaction and feeds it to the space-specific analyzer (bank model,
// coalescing model, constant broadcast model).
#pragma once

#include "src/common/types.hpp"
#include "src/profile/phase.hpp"

namespace kconv::sim {

/// Operation kinds a lane can suspend on.
enum class Op : u8 {
  LoadGlobal,
  StoreGlobal,
  LoadShared,
  StoreShared,
  LoadConst,
  Sync,
};

constexpr const char* op_name(Op op) {
  switch (op) {
    case Op::LoadGlobal: return "ld.global";
    case Op::StoreGlobal: return "st.global";
    case Op::LoadShared: return "ld.shared";
    case Op::StoreShared: return "st.shared";
    case Op::LoadConst: return "ld.const";
    case Op::Sync: return "sync";
  }
  return "?";
}

/// One lane's contribution to a warp transaction.
///
/// `addr` is a byte address: flat device address for global/constant space,
/// block-local byte offset for shared space. `bytes` is the full width of
/// the lane's access unit (e.g. 8 for a float2 — vector accesses are the
/// paper's mechanism for matching W_CD to W_SMB).
struct Access {
  Op op = Op::Sync;
  u64 addr = 0;
  u32 bytes = 0;
  /// Kernel phase the issuing lane was in (kconv-prof, docs/MODEL.md §7).
  /// Always stamped by ThreadCtx — Phase::Other unless the kernel opened a
  /// ProfilePhase scope — so execution never branches on profiling state.
  profile::Phase phase = profile::Phase::Other;
};

}  // namespace kconv::sim
