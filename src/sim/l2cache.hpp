// Sector-granular set-associative L2 cache model.
//
// Kepler routes all global loads through L2 (L1 is reserved for local data),
// so the DRAM traffic a kernel generates equals its L2 *miss* sectors. The
// GEMM-based convolution baselines lean on L2 to soften their K×K-fold
// re-reads of the input image; modeling L2 keeps the comparison with the
// paper's kernels honest instead of charging the baselines full DRAM cost.
#pragma once

#include <vector>

#include "src/common/types.hpp"

namespace kconv::sim {

/// Set-associative, LRU, write-allocate cache over fixed-size sectors.
class L2Cache {
 public:
  /// `capacity_bytes` and `sector_bytes` come from the Arch; `ways` is the
  /// associativity (16 approximates Kepler's L2).
  L2Cache(u32 capacity_bytes, u32 sector_bytes, u32 ways = 16);

  /// Touches one sector address (byte address; rounded down to the sector).
  /// Returns true on hit. Misses fill the sector, evicting LRU.
  bool access(u64 addr);

  /// Drops all cached sectors (between independent launches).
  void invalidate();

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

 private:
  struct Way {
    u64 tag = 0;
    u64 lru = 0;  // larger = more recently used
    bool valid = false;
  };

  u32 sector_bytes_;
  u32 ways_;
  u64 sets_;
  u64 tick_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
  std::vector<Way> lines_;  // sets_ * ways_, row-major by set
};

}  // namespace kconv::sim
