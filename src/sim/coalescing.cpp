#include "src/sim/coalescing.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace kconv::sim {

void analyze_gmem(std::span<const Access> lanes, u32 sector_bytes,
                  GmemCost& cost) {
  KCONV_ASSERT(sector_bytes > 0);
  cost.sectors.clear();
  cost.lane_bytes = 0;
  for (const Access& a : lanes) {
    if (a.bytes == 0) continue;  // predicated-off lane
    cost.lane_bytes += a.bytes;
    const u64 first = a.addr / sector_bytes;
    const u64 last = (a.addr + a.bytes - 1) / sector_bytes;
    for (u64 s = first; s <= last; ++s) {
      cost.sectors.push_back(s * sector_bytes);
    }
  }
  std::sort(cost.sectors.begin(), cost.sectors.end());
  cost.sectors.erase(std::unique(cost.sectors.begin(), cost.sectors.end()),
                     cost.sectors.end());
}

}  // namespace kconv::sim
