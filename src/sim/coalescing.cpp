#include "src/sim/coalescing.hpp"

#include <algorithm>
#include <bit>

#include "src/common/error.hpp"

namespace kconv::sim {

namespace {

/// Fallback for warps whose sectors span a wide window (or oversized
/// groups): collect, sort, dedup. Recomputes lane_bytes so callers can hand
/// it a freshly cleared cost.
void analyze_gmem_generic(std::span<const Access> lanes, u32 sector_bytes,
                          GmemCost& cost) {
  cost.sectors.clear();
  cost.lane_bytes = 0;
  for (const Access& a : lanes) {
    if (a.bytes == 0) continue;  // predicated-off lane
    cost.lane_bytes += a.bytes;
    const u64 first = a.addr / sector_bytes;
    const u64 last = (a.addr + a.bytes - 1) / sector_bytes;
    for (u64 s = first; s <= last; ++s) {
      cost.sectors.push_back(s * sector_bytes);
    }
  }
  std::sort(cost.sectors.begin(), cost.sectors.end());
  cost.sectors.erase(std::unique(cost.sectors.begin(), cost.sectors.end()),
                     cost.sectors.end());
}

}  // namespace

void analyze_gmem(std::span<const Access> lanes, u32 sector_bytes,
                  GmemCost& cost) {
  KCONV_ASSERT(sector_bytes > 0);
  if (lanes.size() > 64) {
    analyze_gmem_generic(lanes, sector_bytes, cost);
    return;
  }

  // Pass 1: per-lane sector ranges and the warp's sector window.
  cost.sectors.clear();
  cost.lane_bytes = 0;
  u64 first[64];
  u64 last[64];
  u32 n = 0;
  u64 min_s = ~0ull;
  u64 max_s = 0;
  for (const Access& a : lanes) {
    if (a.bytes == 0) continue;  // predicated-off lane
    cost.lane_bytes += a.bytes;
    const u64 f = a.addr / sector_bytes;
    const u64 l = (a.addr + a.bytes - 1) / sector_bytes;
    first[n] = f;
    last[n] = l;
    ++n;
    min_s = std::min(min_s, f);
    max_s = std::max(max_s, l);
  }
  if (n == 0) return;

  // Fully scattered 32-lane warps touch at most 64 sectors, but their
  // *window* can be arbitrarily wide; 256 sectors (8 KiB at 32 B) covers
  // every coalescable pattern while keeping the dedup a 4-word bitmap.
  if (max_s - min_s >= 256) {
    analyze_gmem_generic(lanes, sector_bytes, cost);
    return;
  }

  // Pass 2: dedup via the bitmap; reading the bits out low-to-high emits
  // the sectors already sorted — no sort+unique on the hot path.
  u64 bm[4] = {};
  for (u32 i = 0; i < n; ++i) {
    for (u64 s = first[i] - min_s; s <= last[i] - min_s; ++s) {
      bm[s >> 6] |= 1ull << (s & 63);
    }
  }
  for (u32 w = 0; w < 4; ++w) {
    u64 b = bm[w];
    while (b != 0) {
      const u32 bit = static_cast<u32>(std::countr_zero(b));
      b &= b - 1;
      cost.sectors.push_back((min_s + 64ull * w + bit) * sector_bytes);
    }
  }
}

}  // namespace kconv::sim
