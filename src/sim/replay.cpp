#include "src/sim/replay.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

#include "src/analysis/hazard.hpp"
#include "src/common/strutil.hpp"
#include "src/sim/constmem.hpp"

namespace kconv::sim {

ReplayRunner::ReplayRunner(const Arch& arch, const KernelBody& body,
                           const LaunchConfig& cfg, TraceLevel trace,
                           u64 max_rounds, const BlockClassifier& classify,
                           const ReplayOriginsFn& origins,
                           PatternCache* pattern,
                           analysis::BlockChecker* checker,
                           profile::PhaseProfile* psink, bool analytic)
    : arch_(arch),
      body_(body),
      cfg_(cfg),
      trace_level_(trace),
      max_rounds_(max_rounds),
      classify_(classify),
      origins_fn_(origins),
      pattern_(pattern),
      checker_(checker),
      psink_(psink),
      analytic_(analytic) {
  KCONV_CHECK(!(analytic_ && checker_ != nullptr),
              "analytic mode cannot run the hazard checker");
  gmem_scratch_.sectors.reserve(2 * arch.warp_size);
}

void ReplayRunner::run(Dim3 block_idx, L2Cache* const_cache, L2Cache& gm_l2,
                       KernelStats& stats, profile::BlockTimeline* tl) {
  const u64 cls = classify_(block_idx);
  const auto it = classes_.find(cls);
  if (it != classes_.end()) {
    ClassState& cs = it->second;
    if (cs.raced) {
      // Tainted class: the representative raced, so this block re-executes
      // fully under the checker (counted as executed, not replayed).
      std::optional<profile::BlockProfiler> bp;
      if (psink_ != nullptr) bp.emplace(*psink_, tl);
      run_block(arch_, body_, cfg_, block_idx, trace_level_, max_rounds_,
                const_cache, gm_l2, stats, nullptr, pattern_, checker_,
                bp ? &*bp : nullptr);
      return;
    }
    if (analytic_) {
      serve_analytic(cs, stats);
      ++blocks_replayed_;
      return;
    }
    if (cs.tape_ready && cs.validated) {
      enqueue_tape(block_idx, cs, stats);
    } else {
      replay(block_idx, cs.trace, const_cache, gm_l2, stats);
      if (checker_ != nullptr) harvest_gm_stores(block_idx);
      if (cs.tape_ready) {
        // The first fast-forward block of the class doubles as the tape's
        // relocation proof: its recorded access streams must match the
        // rebased tape exactly before later blocks skip the coroutines.
        validate_tape(block_idx, cs);
        cs.validated = true;
      }
    }
    ++blocks_replayed_;
    return;
  }

  // First block of its class: direct execution with trace capture. The
  // block-local stat delta, minus everything replay recomputes per block,
  // becomes the class's invariant contribution; the compute attribution is
  // kept separately for the tape path (which has no lanes to recount).
  ClassState cs;
  KernelStats local;
  // The representative's phase profile is collected block-locally so it
  // can be split into the trace like the KernelStats delta below.
  profile::PhaseProfile local_phases;
  std::optional<profile::BlockProfiler> bp;
  if (psink_ != nullptr) bp.emplace(local_phases, tl);
  run_block(arch_, body_, cfg_, block_idx, trace_level_, max_rounds_,
            const_cache, gm_l2, local, &cs.trace, pattern_, checker_,
            bp ? &*bp : nullptr);
  cs.raced = checker_ != nullptr && checker_->current_block_raced();
  if (psink_ != nullptr) {
    *psink_ += local_phases;
    profile::split_replay_profile(local_phases, cs.trace.phase_invariant,
                                  cs.trace.phase_compute);
    profile::split_addr_dep_profile(local_phases, cs.trace.phase_addr_dep);
  }
  cs.trace.addr_dep.gm_sectors = local.gm_sectors;
  cs.trace.addr_dep.gm_sectors_dram = local.gm_sectors_dram;
  cs.trace.addr_dep.const_line_misses = local.const_line_misses;
  cs.trace.invariant = local;
  KernelStats& cmp = cs.trace.compute;
  cmp.fma_lane_ops = local.fma_lane_ops;
  cmp.fma_warp_instrs = local.fma_warp_instrs;
  cmp.alu_lane_ops = local.alu_lane_ops;
  cmp.alu_warp_instrs = local.alu_warp_instrs;
  cmp.max_warp_instrs = local.max_warp_instrs;
  KernelStats& inv = cs.trace.invariant;
  inv.fma_lane_ops = 0;
  inv.fma_warp_instrs = 0;
  inv.alu_lane_ops = 0;
  inv.alu_warp_instrs = 0;
  inv.gm_sectors = 0;
  inv.gm_sectors_dram = 0;
  inv.const_line_misses = 0;
  inv.max_warp_instrs = 0;
  inv.blocks_executed = 0;
  stats += local;
  // The dataflow tape only serves functional launches (timing launches
  // need the per-block transaction walk anyway) of relocatable kernels —
  // and never under the hazard checker, whose GM overlap scan needs the
  // access streams the tape tier skips.
  if (trace_level_ == TraceLevel::Functional && origins_fn_ &&
      checker_ == nullptr) {
    capture_tape(block_idx, cs);
  }
  classes_.emplace(cls, std::move(cs));
  captured_fresh_ = true;
}

void ReplayRunner::serve_analytic(const ClassState& cs, KernelStats& stats) {
  stats += cs.trace.invariant;
  stats += cs.trace.compute;
  stats.gm_sectors += cs.trace.addr_dep.gm_sectors;
  stats.gm_sectors_dram += cs.trace.addr_dep.gm_sectors_dram;
  stats.const_line_misses += cs.trace.addr_dep.const_line_misses;
  ++stats.blocks_executed;
  if (psink_ != nullptr) {
    *psink_ += cs.trace.phase_invariant;
    *psink_ += cs.trace.phase_compute;
    *psink_ += cs.trace.phase_addr_dep;
  }
}

void ReplayRunner::prime(const LaunchPlan& plan) {
  // Copy-and-adopt: the parallel path primes several runners from one
  // loaded plan, so each gets its own class state.
  LaunchPlan copy;
  copy.classes = plan.classes;
  prime(std::move(copy));
}

void ReplayRunner::prime(LaunchPlan&& plan) {
  const u64 n_lanes = cfg_.block.count();
  for (PlanClass& pc : plan.classes) {
    if (classes_.count(pc.id) != 0) continue;
    KCONV_CHECK(pc.trace.lane_events.size() == n_lanes &&
                    pc.trace.lane_hash.size() == n_lanes,
                "plan class lane count does not match the launch config");
    ClassState cs;
    cs.trace = std::move(pc.trace);
    // Adopt the tape only on launch modes that would have captured one
    // (functional, relocatable kernel, no checker); otherwise the class
    // replays through fast-forward exactly like a post-capture class.
    // Origins are re-resolved against this process's buffers — the tape's
    // offsets are anchor-relative, so only the anchors are process-local.
    if (pc.has_tape && trace_level_ == TraceLevel::Functional &&
        origins_fn_ && checker_ == nullptr && !analytic_) {
      cs.tape = std::move(pc.tape);
      origins_fn_(cs.trace.captured_block, cs.origins);
      bool origins_ok = true;
      for (u32 i = 0; i < ReplayOrigins::kMaxOrigins; ++i) {
        if (cs.tape.spans[i].used && i >= cs.origins.count) {
          origins_ok = false;
        }
      }
      if (origins_ok) {
        cs.tape_ready = true;
        // A tape the capturing launch already fast-forward-validated
        // against a second block of the class is adopted as validated:
        // the store key pins kernel/config/arch and the envelope checksum
        // pins the bytes, so the relocation proof holds here too and every
        // block goes straight to the batched interpreter. A tape whose
        // class never got a second block at capture time keeps
        // validated=false — this launch's first replayed block runs the
        // event-by-event check before the class trusts it.
        cs.validated = pc.validated;
      } else {
        cs.tape = FuncTape{};
      }
    }
    classes_.emplace(pc.id, std::move(cs));
  }
  plan.classes.clear();
}

void ReplayRunner::export_plan(LaunchPlan& plan) const {
  std::vector<const std::pair<const u64, ClassState>*> fresh;
  fresh.reserve(classes_.size());
  for (const auto& entry : classes_) {
    if (entry.second.raced) continue;
    bool present = false;
    for (const PlanClass& pc : plan.classes) {
      if (pc.id == entry.first) {
        present = true;
        break;
      }
    }
    if (!present) fresh.push_back(&entry);
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : fresh) {
    PlanClass pc;
    pc.id = entry->first;
    pc.trace = entry->second.trace;
    if (entry->second.tape_ready) {
      pc.has_tape = true;
      pc.tape = entry->second.tape;
      pc.validated = entry->second.validated;
    }
    plan.classes.push_back(std::move(pc));
  }
}

void ReplayRunner::replay(Dim3 block_idx, const BlockTrace& trace,
                          L2Cache* const_cache, L2Cache& gm_l2,
                          KernelStats& stats) {
  const u32 n_lanes = static_cast<u32>(cfg_.block.count());
  KCONV_ASSERT(trace.lane_events.size() == n_lanes);

  // Fresh zeroed shared memory, exactly like a direct run_block.
  smem_.assign(cfg_.shared_bytes, std::byte{0});
  recorders_.resize(n_lanes);
  lanes_.clear();
  lanes_.resize(n_lanes);  // capacity reused; fresh ctx/prog per block
  if (psink_ != nullptr) {
    lane_profiles_.assign(n_lanes, profile::LaneProfile{});
  }
  for (u32 t = 0; t < n_lanes; ++t) {
    recorders_[t].reset(trace.lane_events[t]);
    ReplayLane& lane = lanes_[t];
    lane.ctx.grid_dim = cfg_.grid;
    lane.ctx.block_dim = cfg_.block;
    lane.ctx.block_idx = block_idx;
    lane.ctx.thread_idx = Dim3{t % cfg_.block.x,
                               (t / cfg_.block.x) % cfg_.block.y,
                               t / (cfg_.block.x * cfg_.block.y)};
    lane.ctx.bind_smem(smem_.data(), cfg_.shared_bytes);
    lane.ctx.bind_recorder(&recorders_[t]);
    if (psink_ != nullptr) lane.ctx.bind_profile(&lane_profiles_[t]);
    lane.prog = body_(lane.ctx);
    KCONV_CHECK(lane.prog.valid(), "kernel body returned an empty program");
  }

  // Fast-forward: one pass resumes every live lane to its next barrier (or
  // to completion) — the lane's memory ops record instead of suspending.
  // Each pass is one barrier segment, so pass boundaries ARE the barrier
  // semantics; per-lane order within a segment is free (task.hpp contract).
  // Runaway loops are caught by the recorder's event cap.
  u32 done_count = 0;
  while (done_count < n_lanes) {
    for (u32 t = 0; t < n_lanes; ++t) {
      ReplayLane& lane = lanes_[t];
      if (lane.done) continue;
      lane.prog.resume();
      if (lane.prog.done()) {
        if (lane.prog.promise().error) {
          std::rethrow_exception(lane.prog.promise().error);
        }
        lane.done = true;
        ++done_count;
      } else {
        KCONV_ASSERT(lane.prog.promise().pending.op == Op::Sync);
      }
    }
  }

  // Congruence check: the replayed block must have issued the same event
  // stream (ops, widths, shared offsets, sync placement) as the captured
  // one. A mismatch means the kernel's replay_class is wrong — fail loudly
  // rather than charge wrong counters.
  for (u32 t = 0; t < n_lanes; ++t) {
    KCONV_CHECK(
        recorders_[t].events == trace.lane_events[t] &&
            recorders_[t].hash == trace.lane_hash[t],
        strf("replay congruence violation in lane %u: block (%u,%u,%u) is "
             "not congruent with captured block (%u,%u,%u) — the kernel's "
             "replay_class declares non-equivalent blocks equivalent",
             t, block_idx.x, block_idx.y, block_idx.z,
             trace.captured_block.x, trace.captured_block.y,
             trace.captured_block.z));
  }

  stats += trace.invariant;
  // Translation-invariant phase slices come from the representative; the
  // address-dependent and compute slices are recharged live below, mirroring
  // the KernelStats split (trace.hpp).
  if (psink_ != nullptr) *psink_ += trace.phase_invariant;

  if (trace_level_ == TraceLevel::Timing) {
    // Walk the recorded global/constant transactions in retire order,
    // regrouping this block's own addresses, and re-run the
    // address-dependent analyzers. Probe order matches direct execution,
    // so on a serial launch even the cache counters are bit-identical.
    cursors_.assign(n_lanes, 0);
    for (const ReplayTx& tx : trace.txs) {
      group_.clear();
      for (u32 i = 0; i < tx.lane_count; ++i) {
        const u32 t = trace.tx_lanes[tx.lane_begin + i];
        LaneRecorder& rec = recorders_[t];
        KCONV_ASSERT(cursors_[t] < rec.analyzed.size());
        const Access& a = rec.analyzed[cursors_[t]++];
        KCONV_ASSERT(a.op == tx.op);
        group_.push_back(a);
      }
      profile::PhaseStats* ps =
          psink_ != nullptr ? &psink_->at(group_[0].phase) : nullptr;
      if (tx.op == Op::LoadConst) {
        const ConstCost c = analyze_const(group_, arch_.const_line_bytes);
        if (const_cache != nullptr) {
          for (u32 i = 0; i < c.lines_touched; ++i) {
            if (!const_cache->access(c.line_addrs[i])) {
              ++stats.const_line_misses;
              if (ps != nullptr) ++ps->const_line_misses;
            }
          }
        }
      } else {
        // Rebased addresses, same signatures: the pattern cache primed by
        // the captured block serves nearly every replayed transaction.
        const u64 plk = pattern_ != nullptr ? pattern_->lookups() : 0;
        const u64 pht = pattern_ != nullptr ? pattern_->hits() : 0;
        if (pattern_ != nullptr) {
          pattern_->gmem(group_, gmem_scratch_);
        } else {
          analyze_gmem(group_, arch_.gm_sector_bytes, gmem_scratch_);
        }
        stats.gm_sectors += gmem_scratch_.sectors.size();
        u64 dram = 0;
        for (const u64 sector : gmem_scratch_.sectors) {
          if (!gm_l2.access(sector)) {
            ++stats.gm_sectors_dram;
            ++dram;
          }
        }
        if (ps != nullptr) {
          ps->gm_sectors += gmem_scratch_.sectors.size();
          ps->gm_sectors_dram += dram;
          if (pattern_ != nullptr) {
            ps->pattern_lookups += pattern_->lookups() - plk;
            ps->pattern_hits += pattern_->hits() - pht;
          }
        }
      }
    }
    for (u32 t = 0; t < n_lanes; ++t) {
      KCONV_ASSERT(cursors_[t] == recorders_[t].analyzed.size());
    }
  }

  // Compute attribution, identical to run_block's per-warp aggregation
  // (recorder event counts equal the direct path's retired suspensions).
  const u32 warp_size = arch_.warp_size;
  const u32 n_warps = static_cast<u32>(ceil_div(n_lanes, warp_size));
  for (u32 w = 0; w < n_warps; ++w) {
    const u32 lo = w * warp_size;
    const u32 hi = std::min(lo + warp_size, n_lanes);
    u64 max_fma = 0, max_alu = 0, max_events = 0;
    for (u32 t = lo; t < hi; ++t) {
      stats.fma_lane_ops += lanes_[t].ctx.fma_ops();
      stats.alu_lane_ops += lanes_[t].ctx.alu_ops();
      max_fma = std::max(max_fma, lanes_[t].ctx.fma_ops());
      max_alu = std::max(max_alu, lanes_[t].ctx.alu_ops());
      max_events = std::max(max_events, static_cast<u64>(recorders_[t].events));
    }
    stats.fma_warp_instrs += max_fma;
    stats.alu_warp_instrs += max_alu;
    stats.max_warp_instrs =
        std::max(stats.max_warp_instrs, max_events + max_fma + max_alu);
  }
  if (psink_ != nullptr) {
    // Per-phase arithmetic, recounted from the replayed lanes themselves
    // (congruence makes it equal the representative's compute profile, but
    // counting live keeps the observational guarantee trivially exact).
    for (const profile::LaneProfile& lp : lane_profiles_) {
      for (u32 i = 0; i < profile::kNumPhases; ++i) {
        psink_->p[i].fma_lane_ops += lp.fma[i];
        psink_->p[i].alu_lane_ops += lp.alu[i];
      }
    }
  }
  ++stats.blocks_executed;
}

void ReplayRunner::harvest_gm_stores(Dim3 block_idx) {
  // The fast-forward recorders keep every global/constant access of the
  // replayed block; feed the stores (lane-major — interval order does not
  // matter, the overlap scan sorts globally) to the cross-block map.
  checker_->gm_begin(block_idx);
  for (const LaneRecorder& rec : recorders_) {
    for (const Access& a : rec.analyzed) {
      if (a.op == Op::StoreGlobal && a.bytes != 0) {
        checker_->gm_note(a.addr, a.bytes);
      }
    }
  }
  checker_->gm_end();
}

void ReplayRunner::capture_tape(Dim3 block_idx, ClassState& cs) {
  origins_fn_(block_idx, cs.origins);
  const u32 n_lanes = static_cast<u32>(cfg_.block.count());
  cs.tape.lanes.assign(n_lanes, LaneTape{});
  builders_.resize(n_lanes);

  // Tagging re-run of the captured block: same fast-forward scheduling as
  // replay(), but with a tape builder bound instead of a recorder — loads
  // return NaN-boxed slots, fma records the dataflow, no functional memory
  // is touched (the capture run already produced the block's outputs).
  smem_.assign(cfg_.shared_bytes, std::byte{0});
  lanes_.clear();
  lanes_.resize(n_lanes);
  for (u32 t = 0; t < n_lanes; ++t) {
    builders_[t].reset(&cs.tape.lanes[t], &cs.origins);
    ReplayLane& lane = lanes_[t];
    lane.ctx.grid_dim = cfg_.grid;
    lane.ctx.block_dim = cfg_.block;
    lane.ctx.block_idx = block_idx;
    lane.ctx.thread_idx = Dim3{t % cfg_.block.x,
                               (t / cfg_.block.x) % cfg_.block.y,
                               t / (cfg_.block.x * cfg_.block.y)};
    lane.ctx.bind_smem(smem_.data(), cfg_.shared_bytes);
    lane.ctx.bind_tape(&builders_[t]);
    lane.prog = body_(lane.ctx);
    KCONV_CHECK(lane.prog.valid(), "kernel body returned an empty program");
  }
  u32 done_count = 0;
  while (done_count < n_lanes) {
    for (u32 t = 0; t < n_lanes; ++t) {
      ReplayLane& lane = lanes_[t];
      if (lane.done) continue;
      lane.prog.resume();
      if (lane.prog.done()) {
        if (lane.prog.promise().error) {
          std::rethrow_exception(lane.prog.promise().error);
        }
        lane.done = true;
        ++done_count;
      } else {
        KCONV_ASSERT(lane.prog.promise().pending.op == Op::Sync);
      }
    }
  }

  // Shrink each lane's register file to its peak liveness — the builder's
  // SSA-style allocation would otherwise make the interpreter DRAM-bound.
  for (LaneTape& lt : cs.tape.lanes) compact_lane_tape(lt);

  // Summarize and pre-validate the tape so the interpreter's hot loop can
  // run unchecked: shared offsets are block-invariant (checked here, once),
  // and global/constant offsets reduce to per-origin spans that run_tape
  // checks against each block's own anchor.
  cs.tape.max_slots = 0;
  for (const LaneTape& lt : cs.tape.lanes) {
    cs.tape.max_slots = std::max(cs.tape.max_slots, lt.n_slots);
    for (const TapeEntry& e : lt.entries) {
      switch (e.op) {
        case TapeOp::LoadSm:
        case TapeOp::StoreSm: {
          const bool masked = (e.flags & kTapeMasked) != 0;
          KCONV_CHECK(masked || (e.rel >= 0 &&
                                 static_cast<u64>(e.rel) + 4ull * e.width <=
                                     cfg_.shared_bytes),
                      "tape shared access outside the block's shared memory");
          break;
        }
        case TapeOp::LoadGm:
        case TapeOp::LoadConst:
        case TapeOp::StoreGm: {
          if ((e.flags & kTapeMasked) != 0) break;
          FuncTape::OriginSpan& sp = cs.tape.spans[e.a];
          const i64 rel_end = e.rel + 4ll * e.width;
          if (!sp.used) {
            sp.used = true;
            sp.min_rel = e.rel;
            sp.max_rel_end = rel_end;
          } else {
            sp.min_rel = std::min(sp.min_rel, static_cast<i64>(e.rel));
            sp.max_rel_end = std::max(sp.max_rel_end, rel_end);
          }
          sp.widths |= 1u << (e.width - 1);
          sp.has_store = sp.has_store || e.op == TapeOp::StoreGm;
          break;
        }
        default:
          break;
      }
    }
  }
  cs.tape_ready = true;
}

ReplayOrigins ReplayRunner::resolve_origins(Dim3 block_idx,
                                            const ClassState& cs) const {
  ReplayOrigins o;
  origins_fn_(block_idx, o);
  KCONV_CHECK(o.count == cs.origins.count,
              "replay_origins declared a different buffer set for blocks of "
              "the same class");
  for (u32 i = 0; i < o.count; ++i) {
    KCONV_CHECK(o.entries[i].id == cs.origins.entries[i].id &&
                    o.entries[i].is_const == cs.origins.entries[i].is_const &&
                    o.entries[i].bytes == cs.origins.entries[i].bytes,
                "replay_origins declared a different buffer set for blocks "
                "of the same class");
  }
  return o;
}

void ReplayRunner::validate_tape(Dim3 block_idx, const ClassState& cs) {
  const ReplayOrigins o = resolve_origins(block_idx, cs);
  const u32 n_lanes = static_cast<u32>(cfg_.block.count());
  for (u32 t = 0; t < n_lanes; ++t) {
    const LaneRecorder& rec = recorders_[t];
    std::size_t j = 0;
    for (const TapeEntry& e : cs.tape.lanes[t].entries) {
      Op op;
      switch (e.op) {
        case TapeOp::LoadGm: op = Op::LoadGlobal; break;
        case TapeOp::StoreGm: op = Op::StoreGlobal; break;
        case TapeOp::LoadConst: op = Op::LoadConst; break;
        default: continue;
      }
      const bool ok = j < rec.analyzed.size();
      KCONV_CHECK(
          ok, strf("tape validation failed in lane %u of block (%u,%u,%u): "
                   "fewer accesses than the tape records",
                   t, block_idx.x, block_idx.y, block_idx.z));
      const Access& a = rec.analyzed[j++];
      const bool masked = (e.flags & kTapeMasked) != 0;
      const u64 want_addr = masked ? 0 : o.entries[e.a].addr + e.rel;
      const u32 want_bytes = masked ? 0 : 4u * e.width;
      KCONV_CHECK(
          a.op == op && a.addr == want_addr && a.bytes == want_bytes,
          strf("tape validation failed in lane %u of block (%u,%u,%u): the "
               "replay_origins declaration does not relocate this block's "
               "accesses (got addr=%llu bytes=%u, tape expects addr=%llu "
               "bytes=%u)",
               t, block_idx.x, block_idx.y, block_idx.z,
               static_cast<unsigned long long>(a.addr), a.bytes,
               static_cast<unsigned long long>(want_addr), want_bytes));
    }
    KCONV_CHECK(
        j == rec.analyzed.size(),
        strf("tape validation failed in lane %u of block (%u,%u,%u): more "
             "accesses than the tape records",
             t, block_idx.x, block_idx.y, block_idx.z));
  }
}

void ReplayRunner::enqueue_tape(Dim3 block_idx, ClassState& cs,
                                KernelStats& stats) {
  const ReplayOrigins o = resolve_origins(block_idx, cs);

  // Whole-block validation against the per-origin spans, so the batched
  // interpreter runs unchecked: the captured block's accesses were bounds-
  // and alignment-checked by its direct run, offsets are class-invariant,
  // and this block shifts them by a per-origin delta — so it stays in
  // bounds iff the span does, and stays naturally aligned iff the delta is
  // a multiple of every access width the origin sees.
  ClassState::PendingBlock pb{};
  for (u32 i = 0; i < o.count; ++i) {
    const FuncTape::OriginSpan& sp = cs.tape.spans[i];
    if (!sp.used) continue;
    const ReplayOrigins::Entry& og = o.entries[i];
    const i64 anchor = static_cast<i64>(og.anchor_off);
    const i64 delta = static_cast<i64>(og.addr) -
                      static_cast<i64>(cs.origins.entries[i].addr);
    bool aligned = true;
    for (u32 w = sp.widths; w != 0; w &= w - 1) {
      const i64 bytes = 4ll * (std::countr_zero(w) + 1);
      aligned = aligned && delta % bytes == 0;
    }
    KCONV_CHECK(
        anchor + sp.min_rel >= 0 &&
            anchor + sp.max_rel_end <= static_cast<i64>(og.bytes) && aligned &&
            (!sp.has_store || og.data != nullptr),
        strf("tape relocation failed for block (%u,%u,%u): the "
             "replay_origins declaration does not keep this block's "
             "accesses in bounds and aligned",
             block_idx.x, block_idx.y, block_idx.z));
    pb.rbase[i] = og.cdata + anchor;
    pb.wbase[i] = og.data == nullptr ? nullptr : og.data + anchor;
  }
  cs.pending.push_back(pb);
  if (cs.pending.size() >= kTapeBatch) flush_tape(cs, stats);
}

void ReplayRunner::flush_tape(ClassState& cs, KernelStats& stats) {
  const u32 batch = static_cast<u32>(cs.pending.size());
  if (batch == 0) return;
  if (batch == kTapeBatch) {
    run_tape_batch<kTapeBatch>(cs, batch);
  } else {
    run_tape_batch<0>(cs, batch);
  }
  for (u32 b = 0; b < batch; ++b) {
    stats += cs.trace.invariant;
    stats += cs.trace.compute;
    if (psink_ != nullptr) {
      // Tape blocks run no coroutines, so both phase slices come from the
      // representative — exactly matching the KernelStats treatment above.
      *psink_ += cs.trace.phase_invariant;
      *psink_ += cs.trace.phase_compute;
    }
    ++stats.blocks_executed;
  }
  cs.pending.clear();
}

void ReplayRunner::finish(KernelStats& stats) {
  for (auto& [cls, cs] : classes_) flush_tape(cs, stats);
}

namespace {

// Multiply-add inner loops of the batched interpreter, over wB = width * B
// contiguous floats with the batch innermost. A destination run never
// aliases the entry's operand runs (the operands are live at the entry, and
// compaction only hands out dead or fresh slots) — hence the restrict.
//
// The x86 paths are spelled out with intrinsics: GCC completely unrolls the
// natural nested batch loop into scalar code and never re-vectorizes it,
// which measures ~9x slower than SSE on the replay benchmark. Multiplies
// and adds stay separate instructions — a fused multiply-add would break
// bit-identity with direct execution's unfused arithmetic.

/// dst[i] = xs[i] * wv[i % B] + ac[i]: one weight vector scaling `width`
/// stacked x vectors (the merged-Axpy shape note_axpy records).
template <u32 B>
inline void axpy_batch(float* __restrict dst, const float* __restrict xs,
                       const float* __restrict wv, const float* __restrict ac,
                       u32 wB) {
#if defined(__SSE2__)
  if constexpr (B % 4 == 0) {
    __m128 w[B / 4];
    for (u32 v = 0; v < B / 4; ++v) w[v] = _mm_loadu_ps(wv + 4 * v);
    for (u32 i = 0; i < wB; i += B) {
      for (u32 v = 0; v < B / 4; ++v) {
        const u32 o = i + 4 * v;
        _mm_storeu_ps(dst + o,
                      _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(xs + o), w[v]),
                                 _mm_loadu_ps(ac + o)));
      }
    }
    return;
  }
#endif
  for (u32 i = 0; i < wB; i += B) {
    for (u32 b = 0; b < B; ++b) {
      dst[i + b] = xs[i + b] * wv[b] + ac[i + b];
    }
  }
}

/// dst[i] = xs[i] * ys[i] + ac[i]: plain elementwise multiply-add.
template <u32 B>
inline void fma_vec_batch(float* __restrict dst, const float* __restrict xs,
                          const float* __restrict ys,
                          const float* __restrict ac, u32 wB) {
#if defined(__SSE2__)
  if constexpr (B % 4 == 0) {
    for (u32 i = 0; i < wB; i += 4) {
      _mm_storeu_ps(dst + i,
                    _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(xs + i),
                                          _mm_loadu_ps(ys + i)),
                               _mm_loadu_ps(ac + i)));
    }
    return;
  }
#endif
  for (u32 i = 0; i < wB; ++i) {
    dst[i] = xs[i] * ys[i] + ac[i];
  }
}

}  // namespace

/// The batched interpreter. Value slots and shared memory are interleaved
/// with the batch innermost — regs[slot * B + b] — so a shared-memory copy
/// for all B blocks is one contiguous memcpy, and the multiply-add loops
/// run contiguously across the batch (vectorizing when NB is a compile-time
/// constant). Only global loads/stores touch per-block memory and pay a
/// scalar scatter/gather against each block's rebased base pointers.
template <u32 NB>
void ReplayRunner::run_tape_batch(const ClassState& cs, u32 batch) {
  const u32 B = NB == 0 ? batch : NB;
  const u32 n_lanes = static_cast<u32>(cfg_.block.count());
  const u32 max_slots = cs.tape.max_slots;
  const std::size_t sm_floats = (cfg_.shared_bytes + 3) / 4;
  regs_.resize(static_cast<std::size_t>(n_lanes) * max_slots * B);
  smem_batch_.assign(sm_floats * B, 0.0f);
  tape_cursors_.assign(n_lanes, 0);
  const ClassState::PendingBlock* pend = cs.pending.data();
  float* const sm = smem_batch_.data();

  // Same barrier semantics as the coroutine paths: each outer pass runs
  // every unfinished lane to its next Sync (or to completion), so shared
  // memory written in one segment is visible to every lane in the next.
  bool pending = true;
  while (pending) {
    pending = false;
    for (u32 t = 0; t < n_lanes; ++t) {
      const LaneTape& tape = cs.tape.lanes[t];
      const TapeEntry* es = tape.entries.data();
      const u32 n_e = static_cast<u32>(tape.entries.size());
      u32 cur = tape_cursors_[t];
      if (cur >= n_e) continue;
      float* regs =
          regs_.data() + static_cast<std::size_t>(t) * max_slots * B;
      bool hit_sync = false;
      for (; cur < n_e && !hit_sync; ++cur) {
        const TapeEntry& e = es[cur];
        switch (e.op) {
          case TapeOp::Axpy: {
            const float* wv = regs + static_cast<std::size_t>(e.a) * B;
            const float* xs = regs + static_cast<std::size_t>(e.b) * B;
            const float* ac =
                regs + static_cast<std::size_t>(static_cast<u32>(e.rel)) * B;
            float* dst = regs + static_cast<std::size_t>(e.dst) * B;
            const u32 wB = static_cast<u32>(e.width) * B;
            if constexpr (NB != 0) {
              axpy_batch<NB>(dst, xs, wv, ac, wB);
            } else {
              for (u32 i = 0; i < wB; i += B) {
                for (u32 b = 0; b < B; ++b) {
                  dst[i + b] = xs[i + b] * wv[b] + ac[i + b];
                }
              }
            }
            break;
          }
          case TapeOp::FmaVec: {
            const float* xs = regs + static_cast<std::size_t>(e.a) * B;
            const float* ys = regs + static_cast<std::size_t>(e.b) * B;
            const float* ac =
                regs + static_cast<std::size_t>(static_cast<u32>(e.rel)) * B;
            float* dst = regs + static_cast<std::size_t>(e.dst) * B;
            const u32 wB = static_cast<u32>(e.width) * B;
            if constexpr (NB != 0) {
              fma_vec_batch<NB>(dst, xs, ys, ac, wB);
            } else {
              for (u32 i = 0; i < wB; ++i) {
                dst[i] = xs[i] * ys[i] + ac[i];
              }
            }
            break;
          }
          case TapeOp::LoadSm: {
            std::memcpy(regs + static_cast<std::size_t>(e.dst) * B,
                        sm + static_cast<std::size_t>(e.rel / 4) * B,
                        4ull * e.width * B);
            break;
          }
          case TapeOp::StoreSm: {
            if ((e.flags & kTapeMasked) == 0) {
              std::memcpy(sm + static_cast<std::size_t>(e.rel / 4) * B,
                          regs + static_cast<std::size_t>(e.b) * B,
                          4ull * e.width * B);
            }
            break;
          }
          case TapeOp::LoadGm:
          case TapeOp::LoadConst: {
            float* d = regs + static_cast<std::size_t>(e.dst) * B;
            if ((e.flags & kTapeMasked) != 0) {
              std::memset(d, 0, 4ull * e.width * B);
            } else {
              for (u32 b = 0; b < B; ++b) {
                const std::byte* src = pend[b].rbase[e.a] + e.rel;
                for (u32 i = 0; i < e.width; ++i) {
                  std::memcpy(&d[static_cast<std::size_t>(i) * B + b],
                              src + 4ull * i, 4);
                }
              }
            }
            break;
          }
          case TapeOp::StoreGm: {
            if ((e.flags & kTapeMasked) == 0) {
              const float* s = regs + static_cast<std::size_t>(e.b) * B;
              for (u32 b = 0; b < B; ++b) {
                std::byte* d = pend[b].wbase[e.a] + e.rel;
                for (u32 i = 0; i < e.width; ++i) {
                  std::memcpy(d + 4ull * i,
                              &s[static_cast<std::size_t>(i) * B + b], 4);
                }
              }
            }
            break;
          }
          case TapeOp::LoadLit: {
            const u32 bits = static_cast<u32>(e.rel);
            float lit;
            std::memcpy(&lit, &bits, sizeof(lit));
            float* d = regs + static_cast<std::size_t>(e.dst) * B;
            for (u32 b = 0; b < B; ++b) d[b] = lit;
            break;
          }
          case TapeOp::Gather: {
            const u32* g = tape.gather.data() + e.a;
            float* d = regs + static_cast<std::size_t>(e.dst) * B;
            for (u32 i = 0; i < e.width; ++i) {
              std::memcpy(d + static_cast<std::size_t>(i) * B,
                          regs + static_cast<std::size_t>(g[i]) * B,
                          4ull * B);
            }
            break;
          }
          case TapeOp::BiasRelu: {
            // std::max (not maxps) to stay bit-identical with direct
            // execution's std::max for NaN and signed-zero inputs.
            const float* xs = regs + static_cast<std::size_t>(e.a) * B;
            const float* bv = regs + static_cast<std::size_t>(e.b) * B;
            float* dst = regs + static_cast<std::size_t>(e.dst) * B;
            const u32 wB = static_cast<u32>(e.width) * B;
            for (u32 i = 0; i < wB; i += B) {
              for (u32 b = 0; b < B; ++b) {
                dst[i + b] = std::max(0.0f, xs[i + b] + bv[b]);
              }
            }
            break;
          }
          case TapeOp::Sync: {
            hit_sync = true;  // consumed by the loop increment
            break;
          }
        }
      }
      tape_cursors_[t] = cur;
      if (cur < n_e) pending = true;
    }
  }
}

}  // namespace kconv::sim
