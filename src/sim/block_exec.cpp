#include "src/sim/block_exec.hpp"

#include <algorithm>
#include <vector>

#include "src/common/strutil.hpp"
#include "src/sim/banks.hpp"
#include "src/sim/coalescing.hpp"
#include "src/sim/constmem.hpp"
#include "src/sim/trace.hpp"

namespace kconv::sim {

namespace {

enum class LaneState : u8 { Ready, Pending, Blocked, Done };

struct Lane {
  ThreadProgram prog;
  ThreadCtx ctx;
  LaneState state = LaneState::Ready;
  u64 events = 0;  // retired suspensions (memory instrs + barriers)
  u64 hash = kTraceHashInit;  // event-stream hash (capture mode only)
};

/// Charges one retired warp transaction to the stats. `gmem_scratch` is the
/// per-block sector buffer: reused across every transaction of the block so
/// the hot loop performs no allocations once its capacity is warm.
void retire_group(const Arch& arch, TraceLevel trace, L2Cache* const_cache,
                  L2Cache& gm_l2, Op op, std::span<const Access> accesses,
                  KernelStats& stats, bool& segment_had_gm_load,
                  bool& segment_had_sm_store, GmemCost& gmem_scratch) {
  if (trace != TraceLevel::Timing) return;
  switch (op) {
    case Op::LoadShared:
    case Op::StoreShared: {
      const SmemCost c = analyze_smem(accesses, arch.smem_banks,
                                      arch.smem_bank_bytes);
      if (c.lane_bytes == 0) break;  // every lane predicated off
      ++stats.smem_instrs;
      stats.smem_request_cycles += c.request_cycles;
      stats.smem_bytes += c.unique_bytes;
      if (op == Op::StoreShared) segment_had_sm_store = true;
      break;
    }
    case Op::LoadGlobal:
    case Op::StoreGlobal: {
      analyze_gmem(accesses, arch.gm_sector_bytes, gmem_scratch);
      const GmemCost& c = gmem_scratch;
      if (c.lane_bytes == 0) break;  // every lane predicated off
      ++stats.gm_instrs;
      stats.gm_sectors += c.sectors.size();
      stats.gm_bytes_useful += c.lane_bytes;
      for (const u64 sector : c.sectors) {
        if (!gm_l2.access(sector)) ++stats.gm_sectors_dram;
      }
      if (op == Op::LoadGlobal) segment_had_gm_load = true;
      break;
    }
    case Op::LoadConst: {
      const ConstCost c = analyze_const(accesses, arch.const_line_bytes);
      ++stats.const_instrs;
      stats.const_requests += c.requests;
      if (const_cache != nullptr) {
        for (u32 i = 0; i < c.lines_touched; ++i) {
          if (!const_cache->access(c.line_addrs[i])) ++stats.const_line_misses;
        }
      }
      break;
    }
    case Op::Sync:
      break;  // handled by the barrier logic
  }
}

}  // namespace

void run_block(const Arch& arch, const KernelBody& body,
               const LaunchConfig& cfg, Dim3 block_idx, TraceLevel trace,
               u64 max_rounds, L2Cache* const_cache, L2Cache& gm_l2,
               KernelStats& stats, BlockTrace* capture) {
  const u32 n_lanes = static_cast<u32>(cfg.block.count());
  const u32 warp_size = arch.warp_size;
  KCONV_ASSERT(n_lanes > 0);

  std::vector<std::byte> smem(cfg.shared_bytes);

  // Lanes must not relocate once their coroutines capture ctx by reference.
  std::vector<Lane> lanes(n_lanes);
  for (u32 t = 0; t < n_lanes; ++t) {
    Lane& lane = lanes[t];
    lane.ctx.grid_dim = cfg.grid;
    lane.ctx.block_dim = cfg.block;
    lane.ctx.block_idx = block_idx;
    lane.ctx.thread_idx = Dim3{t % cfg.block.x,
                               (t / cfg.block.x) % cfg.block.y,
                               t / (cfg.block.x * cfg.block.y)};
    lane.ctx.bind_smem(smem.data(), cfg.shared_bytes);
    lane.prog = body(lane.ctx);
    KCONV_CHECK(lane.prog.valid(), "kernel body returned an empty program");
  }

  const u32 n_warps = static_cast<u32>(ceil_div(n_lanes, warp_size));
  bool segment_had_gm_load = false;
  bool segment_had_sm_store = false;
  u64 rounds = 0;
  u32 done_count = 0;

  // Scratch reused across retires.
  std::vector<Access> group_acc;
  std::vector<u32> group_lanes;
  GmemCost gmem_scratch;
  group_acc.reserve(warp_size);
  group_lanes.reserve(warp_size);
  gmem_scratch.sectors.reserve(2 * warp_size);

  while (done_count < n_lanes) {
    KCONV_CHECK(++rounds <= max_rounds,
                strf("device program exceeded %llu scheduling rounds "
                     "(runaway loop?)",
                     static_cast<unsigned long long>(max_rounds)));

    for (u32 w = 0; w < n_warps; ++w) {
      const u32 lo = w * warp_size;
      const u32 hi = std::min(lo + warp_size, n_lanes);

      // Advance every runnable lane of this warp to its next event.
      for (u32 t = lo; t < hi; ++t) {
        Lane& lane = lanes[t];
        if (lane.state != LaneState::Ready) continue;
        lane.prog.resume();
        if (lane.prog.done()) {
          if (lane.prog.promise().error) {
            std::rethrow_exception(lane.prog.promise().error);
          }
          lane.state = LaneState::Done;
          ++done_count;
        } else {
          lane.state = lane.prog.promise().pending.op == Op::Sync
                           ? LaneState::Blocked
                           : LaneState::Pending;
        }
      }

      // Retire the pending accesses, grouped by operation kind.
      u32 groups_this_round = 0;
      for (const Op op : {Op::LoadGlobal, Op::StoreGlobal, Op::LoadShared,
                          Op::StoreShared, Op::LoadConst}) {
        group_acc.clear();
        group_lanes.clear();
        for (u32 t = lo; t < hi; ++t) {
          if (lanes[t].state == LaneState::Pending &&
              lanes[t].prog.promise().pending.op == op) {
            group_acc.push_back(lanes[t].prog.promise().pending);
            group_lanes.push_back(t);
          }
        }
        if (group_acc.empty()) continue;
        ++groups_this_round;
        retire_group(arch, trace, const_cache, gm_l2, op, group_acc, stats,
                     segment_had_gm_load, segment_had_sm_store, gmem_scratch);
        for (const u32 t : group_lanes) {
          lanes[t].state = LaneState::Ready;
          ++lanes[t].events;
        }
        if (capture != nullptr) {
          for (u32 i = 0; i < group_lanes.size(); ++i) {
            lanes[group_lanes[i]].hash =
                trace_hash_access(lanes[group_lanes[i]].hash, group_acc[i]);
          }
          // Address-dependent transactions keep their lane lists so replay
          // can regroup that block's own accesses in the same retire order
          // (= the L2 / constant-cache probe order).
          if (op == Op::LoadGlobal || op == Op::StoreGlobal ||
              op == Op::LoadConst) {
            capture->txs.push_back(
                {op, static_cast<u32>(capture->tx_lanes.size()),
                 static_cast<u32>(group_lanes.size())});
            capture->tx_lanes.insert(capture->tx_lanes.end(),
                                     group_lanes.begin(), group_lanes.end());
          }
        }
      }
      if (groups_this_round > 1) {
        stats.divergent_retires += groups_this_round - 1;
      }
    }

    // Barrier: release once every live lane is blocked on sync.
    if (done_count < n_lanes) {
      bool all_blocked = true;
      bool any_blocked = false;
      for (const Lane& lane : lanes) {
        if (lane.state == LaneState::Done) continue;
        if (lane.state == LaneState::Blocked) {
          any_blocked = true;
        } else {
          all_blocked = false;
        }
      }
      if (any_blocked && all_blocked) {
        for (Lane& lane : lanes) {
          if (lane.state == LaneState::Blocked) {
            lane.state = LaneState::Ready;
            ++lane.events;
            if (capture != nullptr) {
              lane.hash = trace_hash_access(lane.hash, Access{Op::Sync, 0, 0});
            }
          }
        }
        ++stats.barriers;
        if (segment_had_gm_load) ++stats.gm_phases;
        if (segment_had_gm_load && segment_had_sm_store) {
          ++stats.gm_dep_phases;
        }
        segment_had_gm_load = false;
        segment_had_sm_store = false;
      }
    }
  }
  if (segment_had_gm_load) ++stats.gm_phases;
  if (segment_had_gm_load && segment_had_sm_store) ++stats.gm_dep_phases;

  // Attribute arithmetic at warp granularity: a warp instruction covers up
  // to 32 lane-ops, and a warp is as slow as its busiest lane.
  for (u32 w = 0; w < n_warps; ++w) {
    const u32 lo = w * warp_size;
    const u32 hi = std::min(lo + warp_size, n_lanes);
    u64 max_fma = 0, max_alu = 0, max_events = 0;
    for (u32 t = lo; t < hi; ++t) {
      stats.fma_lane_ops += lanes[t].ctx.fma_ops();
      stats.alu_lane_ops += lanes[t].ctx.alu_ops();
      max_fma = std::max(max_fma, lanes[t].ctx.fma_ops());
      max_alu = std::max(max_alu, lanes[t].ctx.alu_ops());
      max_events = std::max(max_events, lanes[t].events);
    }
    stats.fma_warp_instrs += max_fma;
    stats.alu_warp_instrs += max_alu;
    stats.max_warp_instrs =
        std::max(stats.max_warp_instrs, max_events + max_fma + max_alu);
  }
  ++stats.blocks_executed;

  if (capture != nullptr) {
    capture->captured_block = block_idx;
    capture->lane_hash.resize(n_lanes);
    capture->lane_events.resize(n_lanes);
    for (u32 t = 0; t < n_lanes; ++t) {
      capture->lane_hash[t] = lanes[t].hash;
      capture->lane_events[t] = static_cast<u32>(lanes[t].events);
    }
  }
}

}  // namespace kconv::sim
