#include "src/sim/block_exec.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "src/analysis/hazard.hpp"
#include "src/common/strutil.hpp"
#include "src/profile/collector.hpp"
#include "src/sim/banks.hpp"
#include "src/sim/coalescing.hpp"
#include "src/sim/constmem.hpp"
#include "src/sim/pattern_cache.hpp"
#include "src/sim/trace.hpp"

namespace kconv::sim {

namespace {

struct Lane {
  ThreadProgram prog;
  ThreadCtx ctx;
  bool done = false;
  u64 hash = kTraceHashInit;  // event-stream hash (capture mode only)
};

/// Charges one retired warp transaction to the stats. `gmem_scratch` is the
/// per-block sector buffer: reused across every transaction of the block so
/// the hot loop performs no allocations once its capacity is warm.
void retire_group(const Arch& arch, TraceLevel trace, L2Cache* const_cache,
                  L2Cache& gm_l2, Op op, std::span<const Access> accesses,
                  KernelStats& stats, bool& segment_had_gm_load,
                  bool& segment_had_sm_store, GmemCost& gmem_scratch,
                  PatternCache* pattern, profile::BlockProfiler* prof) {
  if (trace != TraceLevel::Timing) return;
  // The group retires under the phase of its first lane; lanes of one warp
  // transaction share their issue site, hence their phase.
  const profile::Phase ph = accesses[0].phase;
  // Pattern-cache activity is attributed by lookup-counter deltas because
  // the analyzers below consult the cache internally (and fully
  // predicated-off groups still perform a lookup before breaking).
  const u64 plk = (prof != nullptr && pattern != nullptr) ? pattern->lookups()
                                                          : 0;
  const u64 pht = (prof != nullptr && pattern != nullptr) ? pattern->hits()
                                                          : 0;
  switch (op) {
    case Op::LoadShared:
    case Op::StoreShared: {
      const SmemCost c = pattern != nullptr
                             ? pattern->smem(accesses)
                             : analyze_smem(accesses, arch.smem_banks,
                                            arch.smem_bank_bytes);
      if (c.lane_bytes == 0) break;  // every lane predicated off
      ++stats.smem_instrs;
      stats.smem_request_cycles += c.request_cycles;
      stats.smem_bytes += c.unique_bytes;
      stats.smem_lane_bytes += c.lane_bytes;
      if (op == Op::StoreShared) {
        ++stats.smem_store_instrs;
        stats.smem_store_request_cycles += c.request_cycles;
        segment_had_sm_store = true;
      }
      if (prof != nullptr) {
        prof->smem(ph, c.request_cycles, c.unique_bytes, c.lane_bytes,
                   op == Op::StoreShared);
      }
      break;
    }
    case Op::LoadGlobal:
    case Op::StoreGlobal: {
      if (pattern != nullptr) {
        pattern->gmem(accesses, gmem_scratch);
      } else {
        analyze_gmem(accesses, arch.gm_sector_bytes, gmem_scratch);
      }
      const GmemCost& c = gmem_scratch;
      if (c.lane_bytes == 0) break;  // every lane predicated off
      ++stats.gm_instrs;
      stats.gm_sectors += c.sectors.size();
      stats.gm_bytes_useful += c.lane_bytes;
      u64 dram = 0;
      for (const u64 sector : c.sectors) {
        if (!gm_l2.access(sector)) {
          ++stats.gm_sectors_dram;
          ++dram;
        }
      }
      if (prof != nullptr) prof->gmem(ph, c.sectors.size(), dram, c.lane_bytes);
      if (op == Op::LoadGlobal) segment_had_gm_load = true;
      break;
    }
    case Op::LoadConst: {
      const ConstCost c = analyze_const(accesses, arch.const_line_bytes);
      ++stats.const_instrs;
      stats.const_requests += c.requests;
      u64 misses = 0;
      if (const_cache != nullptr) {
        for (u32 i = 0; i < c.lines_touched; ++i) {
          if (!const_cache->access(c.line_addrs[i])) {
            ++stats.const_line_misses;
            ++misses;
          }
        }
      }
      if (prof != nullptr) prof->cmem(ph, c.requests, misses);
      break;
    }
    case Op::Sync:
      break;  // handled by the barrier logic
  }
  if (prof != nullptr && pattern != nullptr) {
    prof->pattern(ph, pattern->lookups() - plk, pattern->hits() - pht);
  }
}

/// Notes one retired address-dependent transaction in the capture trace so
/// replay can regroup that block's own accesses in the same retire order
/// (= the L2 / constant-cache probe order).
void record_tx(BlockTrace* capture, Op op, const std::vector<u32>& lanes) {
  if (capture == nullptr) return;
  if (op != Op::LoadGlobal && op != Op::StoreGlobal && op != Op::LoadConst) {
    return;
  }
  capture->txs.push_back({op, static_cast<u32>(capture->tx_lanes.size()),
                          static_cast<u32>(lanes.size())});
  capture->tx_lanes.insert(capture->tx_lanes.end(), lanes.begin(),
                           lanes.end());
}

}  // namespace

void run_block(const Arch& arch, const KernelBody& body,
               const LaunchConfig& cfg, Dim3 block_idx, TraceLevel trace,
               u64 max_rounds, L2Cache* const_cache, L2Cache& gm_l2,
               KernelStats& stats, BlockTrace* capture,
               PatternCache* pattern, analysis::BlockChecker* checker,
               profile::BlockProfiler* prof) {
  const u32 n_lanes = static_cast<u32>(cfg.block.count());
  const u32 warp_size = arch.warp_size;
  KCONV_ASSERT(n_lanes > 0);
  if (checker != nullptr) checker->begin_block(block_idx);

  std::vector<std::byte> smem(cfg.shared_bytes);

  // A lane retires at most one event per scheduling round, so capping each
  // recorder at max_rounds preserves the round limit's runaway guarantee —
  // including for loops that never suspend in fast-forward.
  const u32 event_cap = static_cast<u32>(
      std::min<u64>(max_rounds, std::numeric_limits<u32>::max()));

  // Lanes must not relocate once their coroutines capture ctx by reference.
  std::vector<Lane> lanes(n_lanes);
  std::vector<LaneRecorder> recs(n_lanes);
  // Per-lane per-phase arithmetic, drained into the profiler at each
  // barrier (prev_profiles holds the last drained snapshot).
  std::vector<profile::LaneProfile> lane_profiles;
  std::vector<profile::LaneProfile> prev_profiles;
  if (prof != nullptr) {
    lane_profiles.resize(n_lanes);
    prev_profiles.resize(n_lanes);
  }
  for (u32 t = 0; t < n_lanes; ++t) {
    Lane& lane = lanes[t];
    lane.ctx.grid_dim = cfg.grid;
    lane.ctx.block_dim = cfg.block;
    lane.ctx.block_idx = block_idx;
    lane.ctx.thread_idx = Dim3{t % cfg.block.x,
                               (t / cfg.block.x) % cfg.block.y,
                               t / (cfg.block.x * cfg.block.y)};
    lane.ctx.bind_smem(smem.data(), cfg.shared_bytes);
    recs[t].reset_stream(event_cap);
    lane.ctx.bind_recorder(&recs[t]);
    if (prof != nullptr) lane.ctx.bind_profile(&lane_profiles[t]);
    lane.prog = body(lane.ctx);
    KCONV_CHECK(lane.prog.valid(), "kernel body returned an empty program");
  }

  const u32 n_warps = static_cast<u32>(ceil_div(n_lanes, warp_size));
  bool segment_had_gm_load = false;
  bool segment_had_sm_store = false;
  u64 rounds = 0;
  u32 done_count = 0;

  // Scratch reused across retires.
  std::vector<Access> group_acc;
  std::vector<Access> sub_acc;
  std::vector<u32> group_lanes;
  std::vector<u32> sub_lanes;
  std::vector<u32> seg_len(n_lanes, 0);
  // Index of each lane's first event of the current segment within its full
  // retired stream, so the hazard checker can report stable op indices.
  std::vector<u32> seg_base(n_lanes, 0);
  GmemCost gmem_scratch;
  group_acc.reserve(warp_size);
  sub_acc.reserve(warp_size);
  group_lanes.reserve(warp_size);
  sub_lanes.reserve(warp_size);
  gmem_scratch.sectors.reserve(2 * warp_size);

  // Execute the block one barrier-delimited segment at a time: every live
  // lane fast-forwards to its next sync (or completion) in a single resume,
  // recording its events, and the recorded streams are then walked in
  // lockstep round order — the k-th event of each lane in a warp retires as
  // one warp transaction, exactly as a suspension-per-event scheduler would
  // have ordered them (round-major, then warp, then operation kind). This
  // keeps coroutine switches off the per-event cost while preserving the
  // retire order that the stateful cache models observe.
  while (done_count < n_lanes) {
    u32 seg_rounds = 0;
    for (u32 t = 0; t < n_lanes; ++t) {
      Lane& lane = lanes[t];
      if (lane.done) {
        seg_len[t] = 0;
        continue;
      }
      recs[t].begin_segment();
      lane.prog.resume();
      if (lane.prog.done()) {
        if (lane.prog.promise().error) {
          std::rethrow_exception(lane.prog.promise().error);
        }
        lane.done = true;
        ++done_count;
      }
      const u32 len = static_cast<u32>(recs[t].analyzed.size());
      seg_len[t] = len;
      seg_base[t] = recs[t].events - len;
      seg_rounds = std::max(seg_rounds, len);
      if (capture != nullptr) {
        for (const Access& a : recs[t].analyzed) {
          lane.hash = trace_hash_access(lane.hash, a);
        }
      }
    }
    rounds += seg_rounds;
    KCONV_CHECK(rounds <= max_rounds,
                strf("device program exceeded %llu scheduling rounds "
                     "(runaway loop?)",
                     static_cast<unsigned long long>(max_rounds)));

    for (u32 r = 0; r < seg_rounds; ++r) {
      for (u32 w = 0; w < n_warps; ++w) {
        const u32 lo = w * warp_size;
        const u32 hi = std::min(lo + warp_size, n_lanes);

        // One scan collects this warp's round-r accesses; lockstep warps
        // (the overwhelmingly common case) retire them as a single group.
        group_acc.clear();
        group_lanes.clear();
        u32 op_mask = 0;
        for (u32 t = lo; t < hi; ++t) {
          if (r >= seg_len[t]) continue;
          const Access& a = recs[t].analyzed[r];
          if (a.op == Op::Sync) continue;
          op_mask |= 1u << static_cast<u32>(a.op);
          group_acc.push_back(a);
          group_lanes.push_back(t);
        }
        if (group_acc.empty()) continue;

        if (checker != nullptr) {
          // Retire order within the group (lane order) is irrelevant to the
          // detector: intra-warp same-round pairs are unordered by
          // definition, and it checks both directions of each pair.
          for (std::size_t i = 0; i < group_acc.size(); ++i) {
            const u32 t = group_lanes[i];
            checker->on_access(t, r, seg_base[t] + r, group_acc[i]);
          }
        }

        if ((op_mask & (op_mask - 1)) == 0) {
          const Op op = static_cast<Op>(std::countr_zero(op_mask));
          retire_group(arch, trace, const_cache, gm_l2, op, group_acc, stats,
                       segment_had_gm_load, segment_had_sm_store,
                       gmem_scratch, pattern, prof);
          record_tx(capture, op, group_lanes);
        } else {
          // Divergent warp: split by operation kind in the canonical
          // retire order, preserving lane order within each group.
          for (const Op op : {Op::LoadGlobal, Op::StoreGlobal, Op::LoadShared,
                              Op::StoreShared, Op::LoadConst}) {
            if ((op_mask >> static_cast<u32>(op) & 1u) == 0) continue;
            sub_acc.clear();
            sub_lanes.clear();
            for (u32 i = 0; i < group_acc.size(); ++i) {
              if (group_acc[i].op == op) {
                sub_acc.push_back(group_acc[i]);
                sub_lanes.push_back(group_lanes[i]);
              }
            }
            retire_group(arch, trace, const_cache, gm_l2, op, sub_acc, stats,
                         segment_had_gm_load, segment_had_sm_store,
                         gmem_scratch, pattern, prof);
            record_tx(capture, op, sub_lanes);
          }
          stats.divergent_retires +=
              static_cast<u64>(std::popcount(op_mask)) - 1;
        }
      }
    }

    // Drain the segment's arithmetic into the profiler, phase by phase,
    // before the barrier closes the segment's timeline slices.
    if (prof != nullptr) {
      u64 dfma[profile::kNumPhases] = {};
      u64 dalu[profile::kNumPhases] = {};
      for (u32 t = 0; t < n_lanes; ++t) {
        for (u32 i = 0; i < profile::kNumPhases; ++i) {
          dfma[i] += lane_profiles[t].fma[i] - prev_profiles[t].fma[i];
          dalu[i] += lane_profiles[t].alu[i] - prev_profiles[t].alu[i];
        }
        prev_profiles[t] = lane_profiles[t];
      }
      for (u32 i = 0; i < profile::kNumPhases; ++i) {
        prof->compute(static_cast<profile::Phase>(i), dfma[i], dalu[i]);
      }
    }

    // Any lane still live is suspended at its sync (the only suspension
    // point in fast-forward), so reaching here with live lanes means the
    // barrier releases.
    if (checker != nullptr) checker->on_barrier();
    if (done_count < n_lanes) {
      ++stats.barriers;
      if (prof != nullptr) prof->barrier();
      if (segment_had_gm_load) ++stats.gm_phases;
      if (segment_had_gm_load && segment_had_sm_store) {
        ++stats.gm_dep_phases;
      }
      segment_had_gm_load = false;
      segment_had_sm_store = false;
    }
  }
  if (segment_had_gm_load) ++stats.gm_phases;
  if (segment_had_gm_load && segment_had_sm_store) ++stats.gm_dep_phases;

  // Attribute arithmetic at warp granularity: a warp instruction covers up
  // to 32 lane-ops, and a warp is as slow as its busiest lane.
  for (u32 w = 0; w < n_warps; ++w) {
    const u32 lo = w * warp_size;
    const u32 hi = std::min(lo + warp_size, n_lanes);
    u64 max_fma = 0, max_alu = 0, max_events = 0;
    for (u32 t = lo; t < hi; ++t) {
      stats.fma_lane_ops += lanes[t].ctx.fma_ops();
      stats.alu_lane_ops += lanes[t].ctx.alu_ops();
      max_fma = std::max(max_fma, lanes[t].ctx.fma_ops());
      max_alu = std::max(max_alu, lanes[t].ctx.alu_ops());
      max_events = std::max(max_events, static_cast<u64>(recs[t].events));
    }
    stats.fma_warp_instrs += max_fma;
    stats.alu_warp_instrs += max_alu;
    stats.max_warp_instrs =
        std::max(stats.max_warp_instrs, max_events + max_fma + max_alu);
  }
  ++stats.blocks_executed;
  if (checker != nullptr) checker->end_block();

  if (capture != nullptr) {
    capture->captured_block = block_idx;
    capture->lane_hash.resize(n_lanes);
    capture->lane_events.resize(n_lanes);
    for (u32 t = 0; t < n_lanes; ++t) {
      capture->lane_hash[t] = lanes[t].hash;
      capture->lane_events[t] = recs[t].events;
    }
  }
}

}  // namespace kconv::sim
