// Human-readable rendering of launch results.
#pragma once

#include <string>

#include "src/sim/arch.hpp"
#include "src/sim/launch.hpp"

namespace kconv::sim {

/// Multi-line summary: timing, binding pipe, occupancy, traffic breakdown.
std::string format_report(const Arch& arch, const LaunchResult& res);

/// One-line summary (for benchmark tables).
std::string format_brief(const LaunchResult& res);

/// Machine-readable JSON export of a launch's statistics and timing —
/// the hook for external analysis/plotting of simulator runs.
std::string to_json(const Arch& arch, const LaunchResult& res);

/// JSON object for a fleet report (the `fleet` block of to_json; also used
/// by bench_fleet_scaling). `indent` is the caller's current indent depth.
std::string fleet_to_json(const FleetResult& f, int indent);

}  // namespace kconv::sim
