#include "src/sim/l2cache.hpp"

#include <bit>

#include "src/common/error.hpp"

namespace kconv::sim {

L2Cache::L2Cache(u32 capacity_bytes, u32 sector_bytes, u32 ways)
    : sector_bytes_(sector_bytes), ways_(ways) {
  KCONV_CHECK(sector_bytes > 0 && ways > 0 && capacity_bytes >= sector_bytes,
              "invalid L2 geometry");
  const u64 sectors = capacity_bytes / sector_bytes;
  sets_ = sectors / ways < 1 ? 1 : std::bit_floor(sectors / ways);
  // access() indexes sets by masking, which is only a modulo when the set
  // count is a power of two — assert it rather than silently aliasing.
  KCONV_ASSERT(std::has_single_bit(sets_));
  lines_.assign(sets_ * ways_, Way{});
}

bool L2Cache::access(u64 addr) {
  const u64 sector = addr / sector_bytes_;
  const u64 set = sector & (sets_ - 1);
  Way* row = &lines_[set * ways_];
  ++tick_;

  Way* victim = &row[0];
  for (u32 w = 0; w < ways_; ++w) {
    if (row[w].valid && row[w].tag == sector) {
      row[w].lru = tick_;
      ++hits_;
      return true;
    }
    if (!row[w].valid) {
      victim = &row[w];
    } else if (victim->valid && row[w].lru < victim->lru) {
      victim = &row[w];
    }
  }
  victim->valid = true;
  victim->tag = sector;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void L2Cache::invalidate() {
  for (auto& w : lines_) w.valid = false;
}

}  // namespace kconv::sim
