// Shared-memory layout planning and typed block-local views.
//
// Kernels plan their shared memory on the host with SharedLayout (like
// computing `extern __shared__` offsets), store the byte offsets as kernel
// members, and materialize typed SharedView handles inside device code via
// ThreadCtx::shared<T>(). Offsets are aligned so that vector accesses — the
// paper's W_CD-matching mechanism — are naturally aligned.
#pragma once

#include <cstring>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"
#include "src/common/types.hpp"

namespace kconv::sim {

/// Host-side bump allocator for a block's shared memory.
class SharedLayout {
 public:
  /// Reserves `count` elements of T aligned to `align` bytes (default: a
  /// full 16 so float4 accesses are always legal). Returns the byte offset.
  template <typename T>
  u32 alloc(i64 count, u32 align = 16) {
    KCONV_CHECK(count >= 0, "negative shared allocation");
    KCONV_CHECK(align != 0 && (align & (align - 1)) == 0,
                strf("shared alignment %u is not a nonzero power of two",
                     align));
    // All arithmetic in i64: a hostile count must not wrap the u32 size.
    const i64 aligned = round_up(static_cast<i64>(size_), align);
    const i64 end = aligned + count * static_cast<i64>(sizeof(T));
    KCONV_CHECK(end <= static_cast<i64>(std::numeric_limits<u32>::max()),
                strf("shared layout overflows: %lld elements of %zu bytes "
                     "at offset %lld",
                     static_cast<long long>(count), sizeof(T),
                     static_cast<long long>(aligned)));
    size_ = static_cast<u32>(end);
    return static_cast<u32>(aligned);
  }

  /// Total bytes to request in the LaunchConfig.
  u32 size() const { return size_; }

 private:
  u32 size_ = 0;
};

/// Typed, bounds-checked view over a region of the executing block's shared
/// memory. Only constructible inside device code (via ThreadCtx::shared).
template <typename T>
class SharedView {
 public:
  SharedView() = default;
  SharedView(std::byte* base, u32 smem_bytes, u32 byte_off, i64 count)
      : base_(base), byte_off_(byte_off), count_(count) {
    KCONV_CHECK(byte_off + count * static_cast<i64>(sizeof(T)) <=
                    static_cast<i64>(smem_bytes),
                strf("shared view [%u, +%lld*%zu) exceeds %u-byte allocation",
                     byte_off, static_cast<long long>(count), sizeof(T),
                     smem_bytes));
  }

  i64 size() const { return count_; }

  /// Byte offset of element `idx` within the block's shared space — the
  /// address the bank model analyzes.
  u64 addr_of(i64 idx) const {
    return byte_off_ + static_cast<u64>(idx) * sizeof(T);
  }

  template <typename V = T>
  V read(i64 idx) const {
    check_access<V>(idx);
    V out;
    std::memcpy(&out, base_ + addr_of(idx), sizeof(V));
    return out;
  }

  template <typename V = T>
  void write(i64 idx, const V& value) const {
    check_access<V>(idx);
    std::memcpy(base_ + addr_of(idx), &value, sizeof(V));
  }

 private:
  template <typename V>
  void check_access(i64 idx) const {
    constexpr i64 n = static_cast<i64>(sizeof(V) / sizeof(T));
    static_assert(sizeof(V) % sizeof(T) == 0, "V must pack whole elements");
    KCONV_CHECK(base_ != nullptr, "access through null shared view");
    KCONV_CHECK(idx >= 0 && idx + n <= count_,
                strf("shared access out of bounds: idx=%lld width=%lld size=%lld",
                     static_cast<long long>(idx), static_cast<long long>(n),
                     static_cast<long long>(count_)));
    KCONV_CHECK(addr_of(idx) % sizeof(V) == 0,
                strf("misaligned %zu-byte shared vector access at offset %llu",
                     sizeof(V),
                     static_cast<unsigned long long>(addr_of(idx))));
  }

  std::byte* base_ = nullptr;
  u32 byte_off_ = 0;
  i64 count_ = 0;
};

}  // namespace kconv::sim
