#include "src/sim/timing.hpp"

#include <algorithm>
#include <limits>

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"

namespace kconv::sim {

std::string launch_feasibility_error(const Arch& arch,
                                     const LaunchConfig& cfg) {
  const u64 threads = cfg.block.count();
  if (threads < 1 || threads > arch.max_threads_per_block) {
    return strf("block of %llu threads unsupported (max %u)",
                static_cast<unsigned long long>(threads),
                arch.max_threads_per_block);
  }
  if (cfg.shared_bytes > arch.smem_per_block) {
    return strf("block requests %u B shared memory (max %u)",
                cfg.shared_bytes, arch.smem_per_block);
  }
  if (cfg.regs_per_thread < 1 ||
      cfg.regs_per_thread > arch.max_regs_per_thread) {
    return strf("%u registers/thread unsupported (max %u)",
                cfg.regs_per_thread, arch.max_regs_per_thread);
  }
  const u64 by_smem = cfg.shared_bytes == 0
                          ? 1
                          : arch.smem_per_sm / cfg.shared_bytes;
  const u64 by_regs = arch.regs_per_sm / (threads * cfg.regs_per_thread);
  if (arch.max_threads_per_sm / threads < 1 || by_smem < 1 || by_regs < 1) {
    return "launch configuration cannot fit a single block on an SM";
  }
  return {};
}

Occupancy compute_occupancy(const Arch& arch, const LaunchConfig& cfg) {
  const std::string err = launch_feasibility_error(arch, cfg);
  KCONV_CHECK(err.empty(), err);
  const u64 threads = cfg.block.count();

  const u32 by_threads =
      static_cast<u32>(arch.max_threads_per_sm / threads);
  const u32 by_smem =
      cfg.shared_bytes == 0
          ? std::numeric_limits<u32>::max()
          : static_cast<u32>(arch.smem_per_sm / cfg.shared_bytes);
  const u32 by_regs = static_cast<u32>(
      arch.regs_per_sm / (threads * cfg.regs_per_thread));
  const u32 by_blocks = arch.max_blocks_per_sm;

  Occupancy occ;
  occ.blocks_per_sm = std::min({by_threads, by_smem, by_regs, by_blocks});
  KCONV_CHECK(occ.blocks_per_sm >= 1,
              "launch configuration cannot fit a single block on an SM");
  if (occ.blocks_per_sm == by_threads) {
    occ.limiter = OccupancyLimiter::Threads;
  } else if (occ.blocks_per_sm == by_smem) {
    occ.limiter = OccupancyLimiter::SharedMem;
  } else if (occ.blocks_per_sm == by_regs) {
    occ.limiter = OccupancyLimiter::Registers;
  } else {
    occ.limiter = OccupancyLimiter::Blocks;
  }
  const u32 warps_per_block =
      static_cast<u32>(ceil_div(static_cast<i64>(threads), arch.warp_size));
  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.fraction = static_cast<double>(occ.warps_per_sm) /
                 (static_cast<double>(arch.max_threads_per_sm) / arch.warp_size);
  return occ;
}

TimingEstimate estimate_time(const Arch& arch, const LaunchConfig& cfg,
                             const KernelStats& stats, u64 blocks_total) {
  KCONV_CHECK(stats.blocks_executed > 0,
              "timing estimate requires at least one executed block");
  TimingEstimate t;
  t.occupancy = compute_occupancy(arch, cfg);
  const double R = t.occupancy.blocks_per_sm;
  const double nb = static_cast<double>(stats.blocks_executed);

  // Per-block averaged demands.
  const double fma_wi = static_cast<double>(stats.fma_warp_instrs) / nb;
  const double alu_wi = static_cast<double>(stats.alu_warp_instrs) / nb;
  const double smem_cycles =
      static_cast<double>(stats.smem_request_cycles) / nb;
  const double smem_instrs = static_cast<double>(stats.smem_instrs) / nb;
  const double gm_instrs = static_cast<double>(stats.gm_instrs) / nb;
  const double const_reqs = static_cast<double>(stats.const_requests) / nb;
  const double sectors = static_cast<double>(stats.gm_sectors) / nb;
  const double sectors_dram =
      static_cast<double>(stats.gm_sectors_dram) / nb;
  const double sectors_l2 = sectors - sectors_dram;
  const double barriers = static_cast<double>(stats.barriers) / nb;
  const double dep_phases = static_cast<double>(stats.gm_dep_phases) / nb;

  // Pipe demands for one wave of R resident blocks, in SM-cycles.
  t.pipe_compute = R * (fma_wi + alu_wi) /
                   (arch.warp_fma_per_cycle() * arch.fma_efficiency);
  // Constant instructions are absent from the issue pipe: broadcast reads
  // fold into FMA operands on the modeled architectures.
  const double total_wi = fma_wi + alu_wi + smem_instrs + gm_instrs;
  t.pipe_issue = R * total_wi / arch.issue_slots_per_cycle;
  t.pipe_smem = R * smem_cycles / arch.smem_requests_per_cycle;
  t.pipe_gmem = R * (sectors_dram * arch.gm_sector_bytes /
                         (arch.dram_bytes_per_sm_cycle() *
                          arch.dram_efficiency) +
                     sectors_l2 * arch.gm_sector_bytes /
                         arch.l2_bytes_per_sm_cycle());
  t.pipe_const = R * const_reqs / arch.const_broadcasts_per_cycle;

  // Latency floor: a single block's critical path. One warp issues at most
  // one instruction per cycle; barriers serialize; GM latency in each
  // barrier-delimited phase is exposed inversely to how many warps are
  // around to hide it (4 concurrently pending warps per phase hide it
  // fully — a Little's-law stand-in).
  const double hide =
      std::max(1.0, static_cast<double>(t.occupancy.warps_per_sm) / 4.0);
  // A lone warp dual-issues at best, hence the /2 on its serial stream.
  t.latency_floor = static_cast<double>(stats.max_warp_instrs) / nb / 2.0 +
                    barriers * arch.barrier_cost +
                    dep_phases * arch.gm_latency / hide;

  const double throughput = std::max(
      {t.pipe_compute, t.pipe_issue, t.pipe_smem, t.pipe_gmem, t.pipe_const});
  const double wave_cycles = std::max(throughput, t.latency_floor);

  // Continuous wave count (identical blocks; tail quantization ignored).
  t.waves = static_cast<double>(blocks_total) / (R * arch.sm_count);
  t.total_cycles = std::max(wave_cycles * t.waves, t.latency_floor);
  t.seconds = t.total_cycles / (arch.clock_ghz * 1e9);

  const double flops_total =
      stats.flops() / nb * static_cast<double>(blocks_total);
  t.gflops = flops_total / t.seconds / 1e9;
  t.sm_efficiency = t.gflops / arch.peak_sp_gflops();
  t.dram_gbps = sectors_dram * arch.gm_sector_bytes *
                static_cast<double>(blocks_total) / t.seconds / 1e9;

  const struct {
    double v;
    const char* n;
  } pipes[] = {{t.pipe_compute, "compute"}, {t.pipe_issue, "issue"},
               {t.pipe_smem, "smem"},       {t.pipe_gmem, "gmem"},
               {t.pipe_const, "const"},     {t.latency_floor, "latency"}};
  t.bound = "compute";
  double best = -1.0;
  for (const auto& p : pipes) {
    if (p.v > best) {
      best = p.v;
      t.bound = p.n;
    }
  }
  return t;
}

}  // namespace kconv::sim
