#include "src/sim/trace.hpp"

#include <algorithm>

#include "src/common/strutil.hpp"

namespace kconv::sim {

namespace {

/// Tape offsets must fit the entry's 32-bit field; they are relative to the
/// block's own anchor, so only a kernel whose accesses stray gigabytes from
/// its declared origins can overflow.
i32 tape_rel(i64 v, const LaneTapeBuilder& b) {
  if (v < INT32_MIN || v > INT32_MAX) {
    b.unsupported("an access lies too far (>2 GiB) from its declared "
                  "replay origin");
  }
  return static_cast<i32>(v);
}

}  // namespace

void LaneRecorder::overflow() const {
  if (keep_all) {
    KCONV_CHECK(false,
                strf("device program exceeded %u retired events per lane "
                     "(runaway loop?)",
                     max_events));
  }
  KCONV_CHECK(false,
              "replayed lane exceeded its recorded event count — "
              "replay_class declared two non-congruent blocks equivalent");
}

u32 LaneTapeBuilder::alloc(u32 n) {
  KCONV_CHECK(tape_->n_slots + n <= kMaxSlots,
              "dataflow tape exceeded its value-slot capacity "
              "(runaway loop in a replay_origins kernel?)");
  const u32 base = tape_->n_slots;
  tape_->n_slots += n;
  return base;
}

u32 LaneTapeBuilder::slot_of(float v) {
  u32 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & kTagMask) == kTagBits) {
    const u32 payload = bits & kPayloadMask;
    if (payload != 0 && payload <= tape_->n_slots) return payload - 1;
    // A NaN that is not one of our live tags: the kernel transformed a
    // tagged value through arithmetic the tape cannot see.
    unsupported("a value reached the tape in an untraceable form; kernels "
                "declaring replay_origins must route all arithmetic on "
                "loaded values through ThreadCtx::fma");
  }
  const auto it = literals_.find(bits);
  if (it != literals_.end()) return it->second;
  const u32 s = alloc(1);
  literals_.emplace(bits, s);
  tape_->entries.push_back(
      {TapeOp::LoadLit, 0, 1, s, 0, 0, static_cast<i32>(bits)});
  return s;
}

u32 LaneTapeBuilder::run_of(const float* elems, u32 n) {
  const u32 s0 = slot_of(elems[0]);
  bool contiguous = true;
  u32 prev = s0;
  for (u32 i = 1; i < n; ++i) {
    const u32 s = slot_of(elems[i]);
    if (s != prev + 1) contiguous = false;
    // Decode every element first: slot_of may intern literals, and the
    // interpreter must see those LoadLits before the Gather that uses them.
    prev = s;
  }
  if (contiguous) return s0;
  const u32 start = static_cast<u32>(tape_->gather.size());
  for (u32 i = 0; i < n; ++i) tape_->gather.push_back(slot_of(elems[i]));
  const u32 dst = alloc(n);
  tape_->entries.push_back(
      {TapeOp::Gather, 0, static_cast<u16>(n), dst, start, 0, 0});
  return dst;
}

u32 LaneTapeBuilder::origin_index(const void* buf, bool want_const) const {
  for (u32 i = 0; i < origins_->count; ++i) {
    const ReplayOrigins::Entry& e = origins_->entries[i];
    if (e.id == buf && e.is_const == want_const) return i;
  }
  unsupported("the kernel touched a buffer its replay_origins hook did not "
              "declare");
}

u32 LaneTapeBuilder::note_load_gm(const void* buf, u64 addr, u32 n,
                                  bool pred) {
  TapeEntry e{TapeOp::LoadGm, 0, static_cast<u16>(n), 0, 0, 0, 0};
  if (pred) {
    e.a = origin_index(buf, false);
    e.rel = tape_rel(
        static_cast<i64>(addr) -
            static_cast<i64>(origins_->entries[e.a].addr),
        *this);
  } else {
    e.flags = kTapeMasked;
  }
  e.dst = alloc(n);
  tape_->entries.push_back(e);
  return e.dst;
}

u32 LaneTapeBuilder::note_load_const(const void* buf, u64 addr, u32 n) {
  const u32 o = origin_index(buf, true);
  const i32 rel = tape_rel(
      static_cast<i64>(addr) - static_cast<i64>(origins_->entries[o].addr),
      *this);
  const u32 dst = alloc(n);
  tape_->entries.push_back(
      {TapeOp::LoadConst, 0, static_cast<u16>(n), dst, o, 0, rel});
  return dst;
}

u32 LaneTapeBuilder::note_load_sm(u64 byte_off, u32 n) {
  // Back-to-back shared loads of adjacent bytes widen the previous entry
  // (the kernels' row-staging loops), like note_axpy's merge window.
  if (last_merge_ != SIZE_MAX && last_merge_ + 1 == tape_->entries.size() &&
      last_merge_dst_end_ == tape_->n_slots) {
    TapeEntry& p = tape_->entries[last_merge_];
    if (p.op == TapeOp::LoadSm &&
        p.rel + 4ll * p.width == static_cast<i64>(byte_off) &&
        static_cast<u32>(p.width) + n <= 0xFFFF) {
      const u32 dst = alloc(n);
      p.width = static_cast<u16>(p.width + n);
      last_merge_dst_end_ = tape_->n_slots;
      return dst;
    }
  }
  const u32 dst = alloc(n);
  tape_->entries.push_back({TapeOp::LoadSm, 0, static_cast<u16>(n), dst, 0, 0,
                            tape_rel(static_cast<i64>(byte_off), *this)});
  last_merge_ = tape_->entries.size() - 1;
  last_merge_dst_end_ = tape_->n_slots;
  return dst;
}

void LaneTapeBuilder::note_store_gm(const void* buf, u64 addr,
                                    const float* elems, u32 n, bool pred) {
  TapeEntry e{TapeOp::StoreGm, 0, static_cast<u16>(n), 0, 0, 0, 0};
  if (pred) {
    e.a = origin_index(buf, false);
    e.rel = tape_rel(
        static_cast<i64>(addr) -
            static_cast<i64>(origins_->entries[e.a].addr),
        *this);
    e.b = run_of(elems, n);
  } else {
    e.flags = kTapeMasked;
  }
  tape_->entries.push_back(e);
}

void LaneTapeBuilder::note_store_sm(u64 byte_off, const float* elems, u32 n,
                                    bool pred) {
  TapeEntry e{TapeOp::StoreSm, 0, static_cast<u16>(n), 0, 0, 0,
              tape_rel(static_cast<i64>(byte_off), *this)};
  if (pred) {
    e.b = run_of(elems, n);
  } else {
    e.flags = kTapeMasked;
  }
  tape_->entries.push_back(e);
}

u32 LaneTapeBuilder::note_axpy(const float* xs, float w, const float* acc,
                               u32 n) {
  const u32 sx = run_of(xs, n);
  const u32 sw = slot_of(w);
  const u32 sa = run_of(acc, n);
  // Consecutive multiply-adds with the same scalar weight over adjacent
  // slot runs fuse into one wide entry (the kernels' per-pixel unrolls),
  // which is what lets the interpreter vectorize. Only legal while the
  // previous Axpy is still the last entry AND the last allocation — the
  // merged entry's destination run must stay contiguous.
  if (last_merge_ != SIZE_MAX && last_merge_ + 1 == tape_->entries.size() &&
      last_merge_dst_end_ == tape_->n_slots) {
    TapeEntry& p = tape_->entries[last_merge_];
    if (p.op == TapeOp::Axpy && p.a == sw && p.b + p.width == sx &&
        static_cast<u32>(p.rel) + p.width == sa &&
        static_cast<u32>(p.width) + n <= 0xFFFF) {
      const u32 dst = alloc(n);
      p.width = static_cast<u16>(p.width + n);
      last_merge_dst_end_ = tape_->n_slots;
      return dst;
    }
  }
  const u32 dst = alloc(n);
  tape_->entries.push_back({TapeOp::Axpy, 0, static_cast<u16>(n), dst, sw, sx,
                            static_cast<i32>(sa)});
  last_merge_ = tape_->entries.size() - 1;
  last_merge_dst_end_ = tape_->n_slots;
  return dst;
}

u32 LaneTapeBuilder::note_fma_vec(const float* xs, const float* ys,
                                  const float* acc, u32 n) {
  const u32 sx = run_of(xs, n);
  const u32 sy = run_of(ys, n);
  const u32 sa = run_of(acc, n);
  const u32 dst = alloc(n);
  tape_->entries.push_back({TapeOp::FmaVec, 0, static_cast<u16>(n), dst, sx,
                            sy, static_cast<i32>(sa)});
  return dst;
}

u32 LaneTapeBuilder::note_bias_relu(const float* xs, float bias, u32 n) {
  const u32 sx = run_of(xs, n);
  const u32 sb = slot_of(bias);
  const u32 dst = alloc(n);
  tape_->entries.push_back(
      {TapeOp::BiasRelu, 0, static_cast<u16>(n), dst, sx, sb, 0});
  return dst;
}

void LaneTapeBuilder::note_sync() {
  tape_->entries.push_back({TapeOp::Sync, 0, 0, 0, 0, 0, 0});
}

void LaneTapeBuilder::unsupported(const char* what) const {
  throw Error(strf("functional tape capture failed: %s", what));
}

// --- Register compaction --------------------------------------------------
//
// The builder allocates SSA-style: every produced value takes fresh slots,
// so a lane's register file grows with the tape's length even though values
// die almost immediately (an accumulator chain keeps only its newest link
// live). This pass renames slots to recycle dead ones.
//
// The one constraint is contiguity: operand runs address consecutive slots,
// and a run may span several entries' destination runs (the builder's merge
// windows and the kernels' window shuffles produce such bridges). Renaming
// therefore works on *groups* — maximal chains of destination runs bridged
// by some operand run. Group members are consecutive in the original slot
// space (a bridging run is itself contiguous there), so relocating the
// whole group by one offset preserves every operand run inside it.
//
// Recycling uses exact-size free lists: the tape's steady state repeats the
// same few run shapes every row/filter iteration, so freed blocks are
// reclaimed by identical requests and fragmentation never builds up.
void compact_lane_tape(LaneTape& lt) {
  const u32 n_old = lt.n_slots;
  const u32 n_e = static_cast<u32>(lt.entries.size());
  if (n_old == 0 || n_e == 0) return;

  // Destination runs ("units") in allocation order; old slot -> unit.
  struct Unit {
    u32 entry;
    u32 base;
    u32 width;
  };
  std::vector<Unit> units;
  std::vector<u32> unit_of(n_old);
  for (u32 i = 0; i < n_e; ++i) {
    const TapeEntry& e = lt.entries[i];
    if (!tape_op_allocates(e.op)) continue;
    for (u32 j = 0; j < e.width; ++j) {
      unit_of[e.dst + j] = static_cast<u32>(units.size());
    }
    units.push_back({i, e.dst, e.width});
  }
  const u32 n_u = static_cast<u32>(units.size());

  // Operand runs fuse the units they span and extend those units' lives.
  std::vector<u8> fuse(n_u, 0);  // fuse[u]: units u and u+1 share a group
  std::vector<u32> last_use(n_u, 0);
  const auto touch = [&](u32 s, u32 w, u32 at) {
    const u32 u1 = unit_of[s];
    const u32 u2 = unit_of[s + w - 1];
    for (u32 u = u1; u < u2; ++u) fuse[u] = 1;
    for (u32 u = u1; u <= u2; ++u) last_use[u] = std::max(last_use[u], at);
  };
  for (u32 i = 0; i < n_e; ++i) {
    const TapeEntry& e = lt.entries[i];
    switch (e.op) {
      case TapeOp::Axpy:
        touch(e.a, 1, i);
        touch(e.b, e.width, i);
        touch(static_cast<u32>(e.rel), e.width, i);
        break;
      case TapeOp::FmaVec:
        touch(e.a, e.width, i);
        touch(e.b, e.width, i);
        touch(static_cast<u32>(e.rel), e.width, i);
        break;
      case TapeOp::Gather:
        for (u32 j = 0; j < e.width; ++j) touch(lt.gather[e.a + j], 1, i);
        break;
      case TapeOp::BiasRelu:
        touch(e.a, e.width, i);
        touch(e.b, 1, i);
        break;
      case TapeOp::StoreGm:
      case TapeOp::StoreSm:
        if ((e.flags & kTapeMasked) == 0) touch(e.b, e.width, i);
        break;
      default:
        break;
    }
  }

  // Groups: maximal fused chains, contiguous in old slot space. A group is
  // released after its last operand use — or after its last member's
  // allocation, for values that are produced but never read (masked lanes).
  struct Group {
    u32 old_base;
    u32 size;
    u32 death;
    u32 new_base = 0;
  };
  std::vector<Group> groups;
  std::vector<u32> group_of(n_u);
  for (u32 u = 0; u < n_u;) {
    Group g{units[u].base, 0, 0};
    u32 v = u;
    for (; v < n_u; ++v) {
      group_of[v] = static_cast<u32>(groups.size());
      g.size += units[v].width;
      g.death = std::max({g.death, last_use[v], units[v].entry});
      if (!fuse[v]) break;
    }
    groups.push_back(g);
    u = v + 1;
  }

  // Bucket releases by the entry after which they happen.
  std::vector<u32> free_head(n_e, UINT32_MAX);
  std::vector<u32> free_next(groups.size(), UINT32_MAX);
  for (u32 g = 0; g < groups.size(); ++g) {
    free_next[g] = free_head[groups[g].death];
    free_head[groups[g].death] = g;
  }

  // Rename in program order: operands reference already-renamed slots;
  // destinations acquire from the free list (exact size match) or extend
  // the register file.
  std::vector<u32> new_of(n_old);
  std::unordered_map<u32, std::vector<u32>> freelist;  // size -> bases
  u32 next_new = 0;
  for (u32 i = 0; i < n_e; ++i) {
    TapeEntry& e = lt.entries[i];
    switch (e.op) {
      case TapeOp::Axpy:
        e.a = new_of[e.a];
        e.b = new_of[e.b];
        e.rel = static_cast<i32>(new_of[static_cast<u32>(e.rel)]);
        break;
      case TapeOp::FmaVec:
        e.a = new_of[e.a];
        e.b = new_of[e.b];
        e.rel = static_cast<i32>(new_of[static_cast<u32>(e.rel)]);
        break;
      case TapeOp::Gather:
        for (u32 j = 0; j < e.width; ++j) {
          lt.gather[e.a + j] = new_of[lt.gather[e.a + j]];
        }
        break;
      case TapeOp::BiasRelu:
        e.a = new_of[e.a];
        e.b = new_of[e.b];
        break;
      case TapeOp::StoreGm:
      case TapeOp::StoreSm:
        if ((e.flags & kTapeMasked) == 0) e.b = new_of[e.b];
        break;
      default:
        break;
    }
    if (tape_op_allocates(e.op)) {
      Group& g = groups[group_of[unit_of[e.dst]]];
      if (e.dst == g.old_base) {  // first member: acquire the group's base
        auto& fl = freelist[g.size];
        if (fl.empty()) {
          g.new_base = next_new;
          next_new += g.size;
        } else {
          g.new_base = fl.back();
          fl.pop_back();
        }
      }
      const u32 nb = g.new_base + (e.dst - g.old_base);
      for (u32 j = 0; j < e.width; ++j) new_of[e.dst + j] = nb + j;
      e.dst = nb;
    }
    for (u32 g = free_head[i]; g != UINT32_MAX; g = free_next[g]) {
      freelist[groups[g].size].push_back(groups[g].new_base);
    }
  }
  lt.n_slots = next_new;
}

}  // namespace kconv::sim
