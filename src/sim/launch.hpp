// Kernel launch: the host-side entry point of the simulator.
//
//   sim::Device dev(sim::kepler_k40m());
//   MyKernel k{...views...};
//   auto res = sim::launch(dev, k, {.grid = {64}, .block = {256}});
//   // res.stats: transaction counts; res.timing: cycles / GFlop/s
//
// A kernel is any object invocable as `ThreadProgram operator()(ThreadCtx&)
// const`. Launches run every block by default (functional output complete);
// benchmark callers set LaunchOptions::sample_max_blocks to execute a
// deterministic, evenly spaced subset and scale the timing estimate.
// LaunchOptions::num_threads > 1 simulates the block list on multiple host
// threads (contiguous chunks, per-chunk stats shards and L2/constant-cache
// replicas, merged in index order): outputs and all non-cache counters are
// bit-identical to the serial path; see docs/MODEL.md §5a.
#pragma once

#include <concepts>
#include <string>

#include "src/analysis/diagnostics.hpp"
#include "src/profile/collector.hpp"
#include "src/sim/block_exec.hpp"
#include "src/sim/device.hpp"
#include "src/sim/fleet.hpp"
#include "src/sim/replay.hpp"
#include "src/sim/timing.hpp"

namespace kconv::sim {

/// Anything that can produce a lane program from a thread context.
template <typename K>
concept DeviceKernel = requires(const K k, ThreadCtx& t) {
  { k(t) } -> std::same_as<ThreadProgram>;
};

/// Kernels opting into trace replay declare which blocks are congruent
/// (identical control flow, predication and shared-memory offsets; only
/// global/constant addresses may shift). See docs/MODEL.md §5b for the
/// contract — violations are detected at replay time, not silent.
template <typename K>
concept ReplayClassified = requires(const K k, Dim3 b) {
  { k.replay_class(b) } -> std::convertible_to<u64>;
};

/// Kernels additionally declaring per-block buffer anchors promise their
/// blocks are *relocatable*: congruent blocks' global/constant addresses
/// differ by exactly the per-buffer anchor deltas. Functional replay of
/// such kernels skips the lane coroutines entirely and interprets the
/// class's recorded dataflow tape (trace.hpp) on rebased addresses.
template <typename K>
concept ReplayRelocatable = requires(const K k, Dim3 b, ReplayOrigins& o) {
  { k.replay_origins(b, o) };
};

struct LaunchResult {
  /// Raw statistics over the blocks actually executed.
  KernelStats stats;
  /// Timing scaled to the full grid.
  TimingEstimate timing;
  u64 blocks_total = 0;
  u64 blocks_executed = 0;
  /// Blocks served by trace replay instead of per-event scheduling (always
  /// counted in blocks_executed too; 0 unless LaunchOptions::replay is set
  /// and the kernel declares a replay_class hook).
  u64 blocks_replayed = 0;
  bool sampled = false;
  /// Analytic launch (LaunchOptions::analytic): counters were served from
  /// class traces; output tensors were NOT materialized and the
  /// address-dependent counters are per-class approximations (§5d).
  bool analytic = false;
  /// A warm plan (LaunchOptions::plan_cache) seeded the class tables:
  /// every block of a planned class replayed with zero representative
  /// execution.
  bool plan_cache_hit = false;
  /// Why the store (when configured) did or did not serve: "hit", "miss",
  /// "corrupt", "corrupt-payload", "stale-version", "stale-key",
  /// "stale-arch", "stale-config", "stale-trace-level",
  /// "stale-static-signature" (the stored plan's kconv-xray signature
  /// disagrees with the launching kernel's, docs/MODEL.md §10), or
  /// "disabled" (non-replay launch, empty key, or hazard_check). Empty
  /// when no plan_cache was configured.
  std::string plan_cache_status;
  /// kconv-check results (docs/MODEL.md §6). Populated only when
  /// LaunchOptions::hazard_check and/or ::lint are set; analysis.clean()
  /// is the pass/fail verdict.
  analysis::AnalysisReport analysis;
  /// kconv-prof phase accounting (docs/MODEL.md §7). Populated only when
  /// LaunchOptions::profile is set; per-phase counters sum exactly to the
  /// matching fields of `stats` in every launch mode. Kernel runners fill
  /// profile.hints so the roofline attribution knows the paper bound that
  /// applies to the kernel that ran.
  profile::LaunchProfile profile;
  /// Multi-device sharding report (LaunchOptions::fleet.devices > 1):
  /// per-device blocks + transfer ledgers, the modeled fleet makespan, and
  /// the Demmel–Dinh communication-bound attribution (docs/MODEL.md §9).
  /// fleet.enabled is false on single-device launches.
  FleetResult fleet;
};

namespace detail {
/// Non-template core: validates the config, picks the block set, runs it.
/// `classify` and `origins` may be empty (hooks not declared).
LaunchResult launch_impl(Device& dev, const KernelBody& body,
                         const LaunchConfig& cfg, const LaunchOptions& opt,
                         const BlockClassifier& classify = {},
                         const ReplayOriginsFn& origins = {});
}  // namespace detail

/// Launches `kernel` over `cfg.grid` x `cfg.block` threads on `dev`.
template <DeviceKernel K>
LaunchResult launch(Device& dev, const K& kernel, const LaunchConfig& cfg,
                    const LaunchOptions& opt = {}) {
  BlockClassifier classify;
  ReplayOriginsFn origins;
  if constexpr (ReplayClassified<K>) {
    classify = [&kernel](Dim3 b) {
      return static_cast<u64>(kernel.replay_class(b));
    };
    if constexpr (ReplayRelocatable<K>) {
      origins = [&kernel](Dim3 b, ReplayOrigins& o) {
        kernel.replay_origins(b, o);
      };
    }
  }
  return detail::launch_impl(
      dev, [&kernel](ThreadCtx& t) { return kernel(t); }, cfg, opt, classify,
      origins);
}

}  // namespace kconv::sim
