// Kernel launch: the host-side entry point of the simulator.
//
//   sim::Device dev(sim::kepler_k40m());
//   MyKernel k{...views...};
//   auto res = sim::launch(dev, k, {.grid = {64}, .block = {256}});
//   // res.stats: transaction counts; res.timing: cycles / GFlop/s
//
// A kernel is any object invocable as `ThreadProgram operator()(ThreadCtx&)
// const`. Launches run every block by default (functional output complete);
// benchmark callers set LaunchOptions::sample_max_blocks to execute a
// deterministic, evenly spaced subset and scale the timing estimate.
// LaunchOptions::num_threads > 1 simulates the block list on multiple host
// threads (contiguous chunks, per-chunk stats shards and L2/constant-cache
// replicas, merged in index order): outputs and all non-cache counters are
// bit-identical to the serial path; see docs/MODEL.md §5a.
#pragma once

#include <concepts>

#include "src/sim/block_exec.hpp"
#include "src/sim/device.hpp"
#include "src/sim/timing.hpp"

namespace kconv::sim {

/// Anything that can produce a lane program from a thread context.
template <typename K>
concept DeviceKernel = requires(const K k, ThreadCtx& t) {
  { k(t) } -> std::same_as<ThreadProgram>;
};

struct LaunchResult {
  /// Raw statistics over the blocks actually executed.
  KernelStats stats;
  /// Timing scaled to the full grid.
  TimingEstimate timing;
  u64 blocks_total = 0;
  u64 blocks_executed = 0;
  bool sampled = false;
};

namespace detail {
/// Non-template core: validates the config, picks the block set, runs it.
LaunchResult launch_impl(Device& dev, const KernelBody& body,
                         const LaunchConfig& cfg, const LaunchOptions& opt);
}  // namespace detail

/// Launches `kernel` over `cfg.grid` x `cfg.block` threads on `dev`.
template <DeviceKernel K>
LaunchResult launch(Device& dev, const K& kernel, const LaunchConfig& cfg,
                    const LaunchOptions& opt = {}) {
  return detail::launch_impl(
      dev, [&kernel](ThreadCtx& t) { return kernel(t); }, cfg, opt);
}

}  // namespace kconv::sim
