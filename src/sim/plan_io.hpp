// Launch-plan payload serialization (docs/MODEL.md §5d).
//
// A LaunchPlan is everything a warm launch needs to replay *every* block of
// a repeated kernel invocation with zero representative execution: the
// per-class capture traces (stats splits, congruence hashes, transaction
// schedules), the functional dataflow tapes where captured, and the chunk's
// memoized access-pattern tables. The plan also records the identity it was
// captured under — arch fingerprint, launch config, trace level — and
// plan_matches() rejects any divergence before a single byte is trusted.
//
// Addresses are deliberately absent from the payload: traces store only
// translation-invariant data (shared offsets, event hashes, lane schedules)
// and tapes store anchor-relative offsets, so a plan written by one process
// replays in another whose buffers live at different simulated addresses.
// Origin anchors are re-resolved against the live kernel's replay_origins
// declaration at prime time (replay.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/sim/arch.hpp"
#include "src/sim/config.hpp"
#include "src/sim/plan_cache.hpp"
#include "src/sim/trace.hpp"

namespace kconv::sim {

/// One block-equivalence class: its capture trace and (when the class was
/// captured on a functional launch of a relocatable kernel) its tape.
struct PlanClass {
  u64 id = 0;
  BlockTrace trace;
  FuncTape tape;
  bool has_tape = false;
  /// True when the capturing launch fast-forward-validated the tape against
  /// a second block of the class (replay.hpp): a warm launch adopting a
  /// validated tape serves every block through the batched interpreter
  /// without re-running the relocation proof. Unvalidated tapes (single
  /// block classes) keep the warm-side check.
  bool validated = false;
};

/// The unit the plan cache stores per (kernel, shape, config, arch) key.
struct LaunchPlan {
  std::string arch;  // arch_fingerprint() of the capturing device
  u8 trace_level = 0;
  LaunchConfig cfg;
  /// kconv-xray signature (docs/MODEL.md §10) of the kernel that captured
  /// this plan: a hash of the symbolic per-site access profile of block 0.
  /// 0 when the capturing runner did not compute one. A warm launch whose
  /// own signature disagrees rejects the plan ("stale-static-signature")
  /// before trusting a byte of it — the capture predates a kernel change
  /// the plan key's version tag missed.
  u64 static_signature = 0;
  std::vector<PlanClass> classes;
  /// Serialized PatternCache tables (empty when the capture ran with the
  /// pattern cache disabled).
  std::string pattern_blob;
};

/// Stable identity string of the arch parameters a trace depends on. Two
/// arches with equal fingerprints produce interchangeable plans.
std::string arch_fingerprint(const Arch& arch);

/// The full store key: the caller's kernel/shape key qualified by arch,
/// launch geometry, trace level and profiling mode — everything that
/// changes what a capture would record.
std::string plan_store_key(std::string_view kernel_key, const Arch& arch,
                           const LaunchConfig& cfg, TraceLevel level,
                           bool profiled);

/// The key the plan's tape sidecar is stored under. Tapes are by far the
/// heaviest part of a plan and only functional warm launches execute them,
/// so they live in their own store entry: an analytic launch (and any
/// timing-level launch) loads just the trace payload and never pays the
/// tape bytes.
std::string plan_tape_key(const std::string& store_key);

/// Serializes everything but the tapes: identity, per-class traces, the
/// pattern blob. This is the payload stored under the base key.
std::string serialize_plan(const LaunchPlan& plan);

/// Parses and structurally validates a payload (vector sizes, index bounds,
/// lane counts against the embedded config). False with a reason on any
/// inconsistency — the envelope checksum makes this unlikely, but a plan is
/// never half-trusted. Classes come back with has_tape=false; attach the
/// sidecar with deserialize_tapes() when the launch will execute tapes.
bool deserialize_plan(std::string_view payload, LaunchPlan& out,
                      std::string* why = nullptr);

/// Serializes the tape sidecar: the tapes (and validation verdicts) of
/// every class that has one. Empty string when no class has a tape (timing
/// captures, checked launches) — nothing worth a store entry.
std::string serialize_tapes(const LaunchPlan& plan);

/// Attaches a tape sidecar to an already-deserialized plan, matching
/// classes by id and validating every entry against the plan's launch
/// config. All-or-nothing: any unknown id or structural damage leaves the
/// plan tape-free (warm replay falls back to per-block fast-forward, which
/// is always correct).
bool deserialize_tapes(std::string_view payload, LaunchPlan& plan,
                       std::string* why = nullptr);

/// True when a loaded plan was captured under this exact launch identity.
bool plan_matches(const LaunchPlan& plan, const Arch& arch,
                  const LaunchConfig& cfg, TraceLevel level,
                  std::string* why = nullptr);

}  // namespace kconv::sim
