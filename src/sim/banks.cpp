#include "src/sim/banks.hpp"

#include <algorithm>
#include <array>

#include "src/common/error.hpp"

namespace kconv::sim {

namespace {

/// kByteMask[off][len]: the byte mask of `len` contiguous bytes starting at
/// byte `off` of a bank word (off + len <= 8). Precomputed so the hot loop
/// sets a chunk's bytes in one table load instead of a per-byte shift loop.
constexpr auto kByteMask = [] {
  std::array<std::array<u8, 9>, 8> m{};
  for (u32 off = 0; off < 8; ++off) {
    for (u32 len = 0; off + len <= 8; ++len) {
      m[off][len] = static_cast<u8>(((1u << len) - 1u) << off);
    }
  }
  return m;
}();

}  // namespace

SmemCost analyze_smem(std::span<const Access> lanes, u32 banks,
                      u32 bank_bytes) {
  KCONV_ASSERT(banks > 0 && bank_bytes > 0 && bank_bytes <= 8);
  SmemCost cost;
  if (lanes.empty()) return cost;

  // A warp touches at most 32 lanes x a handful of words each; a small flat
  // vector with linear probing beats a hash map at this size.
  struct WordUse {
    u64 word = 0;  // word index = byte_addr / bank_bytes
    u8 mask = 0;   // bytes of the word actually used (bank_bytes <= 8)
  };
  WordUse words[128];
  std::size_t n_words = 0;

  bool any_active = false;
  for (const Access& a : lanes) {
    if (a.bytes == 0) continue;  // predicated-off lane
    any_active = true;
    cost.lane_bytes += a.bytes;
    u64 begin = a.addr;
    const u64 end = a.addr + a.bytes;
    while (begin < end) {
      const u64 word = begin / bank_bytes;
      const u32 off = static_cast<u32>(begin - word * bank_bytes);
      const u32 len =
          static_cast<u32>(std::min<u64>(end - begin, bank_bytes - off));
      const u8 mask = kByteMask[off][len];
      bool found = false;
      for (std::size_t i = 0; i < n_words; ++i) {
        if (words[i].word == word) {
          words[i].mask = static_cast<u8>(words[i].mask | mask);
          found = true;
          break;
        }
      }
      if (!found) {
        KCONV_ASSERT(n_words < 128);
        words[n_words++] = WordUse{word, mask};
      }
      begin += len;
    }
  }

  // Request cycles = max over banks of distinct words addressed in that bank.
  u32 per_bank[64] = {};
  KCONV_ASSERT(banks <= 64);
  for (std::size_t i = 0; i < n_words; ++i) {
    const u32 bank = static_cast<u32>(words[i].word % banks);
    ++per_bank[bank];
    cost.unique_bytes += static_cast<u64>(__builtin_popcount(words[i].mask));
  }
  for (u32 b = 0; b < banks; ++b) {
    cost.request_cycles = std::max(cost.request_cycles, per_bank[b]);
  }
  if (cost.request_cycles == 0 && any_active) cost.request_cycles = 1;
  return cost;
}

}  // namespace kconv::sim
