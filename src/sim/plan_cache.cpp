#include "src/sim/plan_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"

namespace kconv::sim {

namespace fs = std::filesystem;

namespace {

constexpr char kPlanMagic[8] = {'K', 'C', 'N', 'V', 'P', 'L', 'N', '\n'};

u64 key_hash(std::string_view key) {
  u64 h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads a whole file; empty-with-false when it does not exist or errors.
/// Sized up front and read in one call — plan blobs run to tens of
/// megabytes and the chunked append-loop's extra copy was measurable on
/// every warm launch.
bool slurp(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return false;
  }
  std::string data(static_cast<std::size_t>(size), '\0');
  const bool ok =
      std::fread(data.data(), 1, data.size(), f) == data.size() &&
      std::ferror(f) == 0;
  std::fclose(f);
  if (ok) out = std::move(data);
  return ok;
}

u64 process_tag() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<u64>(::getpid());
#else
  return 0;
#endif
}

/// Reads just the envelope header of a blob and returns its embedded key
/// (empty when the file is not a recognizable plan envelope). The eviction
/// sweep uses this to pair a plan blob with its `<key>|tapes` sidecar
/// without slurping multi-megabyte payloads. Any envelope version is
/// accepted — stale-version files are prime eviction candidates.
std::string peek_key(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char head[16];
  if (std::fread(head, 1, sizeof(head), f) != sizeof(head) ||
      std::memcmp(head, kPlanMagic, 8) != 0) {
    std::fclose(f);
    return {};
  }
  u32 len = 0;
  std::memcpy(&len, head + 12, 4);
  if (len > (1u << 20)) {  // sane key-length cap; larger = corrupt
    std::fclose(f);
    return {};
  }
  std::string key(len, '\0');
  const bool ok = std::fread(key.data(), 1, len, f) == len;
  std::fclose(f);
  return ok ? key : std::string{};
}

constexpr std::string_view kTapeSuffix = "|tapes";

/// The plan key a file belongs to: its own key, with a tape sidecar mapped
/// to its primary's key so the pair lives and dies together.
std::string primary_key_of(const std::string& key) {
  if (key.size() > kTapeSuffix.size() &&
      key.compare(key.size() - kTapeSuffix.size(), kTapeSuffix.size(),
                  kTapeSuffix) == 0) {
    return key.substr(0, key.size() - kTapeSuffix.size());
  }
  return key;
}

}  // namespace

u64 plan_checksum(std::string_view bytes) {
  u64 h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    u64 w;
    std::memcpy(&w, bytes.data() + i, 8);
    h ^= w;
    h *= 1099511628211ull;
  }
  u64 tail = 0;
  std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
  h ^= tail;
  h *= 1099511628211ull;
  h ^= static_cast<u64>(bytes.size());
  h *= 1099511628211ull;
  return h;
}

PlanCache::PlanCache(std::string dir, u64 byte_budget)
    : dir_(std::move(dir)), budget_(byte_budget) {
  KCONV_CHECK(!dir_.empty(), "plan cache directory path is empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  KCONV_CHECK(!ec && fs::is_directory(dir_, ec),
              strf("plan cache path '%s' is not a usable directory",
                   dir_.c_str()));
  // Probe writability (and implicitly readability) once, up front: a launch
  // deep in an autotune sweep must not be the first thing to find out the
  // directory is read-only.
  const std::string probe =
      dir_ + strf("/.probe-%llx",
                  static_cast<unsigned long long>(process_tag()));
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  KCONV_CHECK(f != nullptr,
              strf("plan cache directory '%s' is not writable", dir_.c_str()));
  std::fclose(f);
  fs::remove(probe, ec);
}

std::string PlanCache::path_for(const std::string& key) const {
  return dir_ + strf("/%016llx.kplan",
                     static_cast<unsigned long long>(key_hash(key)));
}

bool PlanCache::load(const std::string& key, std::string& payload,
                     std::string* why) {
  std::string blob;
  std::string_view view;
  if (!load_view(key, blob, view, why)) return false;
  payload.assign(view);
  return true;
}

bool PlanCache::load_view(const std::string& key, std::string& blob,
                          std::string_view& payload, std::string* why) {
  ++loads_;
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  const std::string path = path_for(key);
  if (!slurp(path, blob)) return fail("miss");
  PlanReader r(blob);
  char magic[8];
  if (!r.raw(magic, 8) || std::memcmp(magic, kPlanMagic, 8) != 0) {
    return fail("corrupt");
  }
  const u32 version = r.get_u32();
  if (!r.ok()) return fail("corrupt");
  if (version != kPlanFormatVersion) return fail("stale-version");
  const std::string stored_key = r.get_str();
  if (!r.ok()) return fail("corrupt");
  // A hash-named file holding a different key means either a (vanishingly
  // unlikely) hash collision or a blob copied/renamed across stores; both
  // must re-capture rather than replay a foreign plan.
  if (stored_key != key) return fail("stale-key");
  const u64 len = r.get_u64();
  const u64 sum = r.get_u64();
  if (!r.ok() || len != r.remaining()) return fail("corrupt");
  std::string_view body(blob.data() + (blob.size() - len), len);
  if (plan_checksum(body) != sum) return fail("corrupt");
  payload = body;
  ++hits_;
  // Under a byte budget, a hit refreshes the blob's recency so the LRU
  // sweep evicts cold keys first. Touch only when budgeted: the unbounded
  // default keeps mtimes as pure write stamps.
  if (byte_budget() > 0) {
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  }
  if (why != nullptr) *why = "hit";
  return true;
}

u64 PlanCache::disk_bytes() const {
  u64 total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (de.path().extension() != ".kplan") continue;
    std::error_code fec;
    const u64 sz = static_cast<u64>(de.file_size(fec));
    if (!fec) total += sz;
  }
  return total;
}

void PlanCache::store(const std::string& key, std::string_view payload) {
  PlanWriter w;
  w.raw(kPlanMagic, 8);
  w.put_u32(kPlanFormatVersion);
  w.put_str(key);
  w.put_u64(payload.size());
  w.put_u64(plan_checksum(payload));
  w.raw(payload.data(), payload.size());

  // Unique temp name per process + store call: concurrent writers race only
  // on the final atomic rename, last-done-wins with both blobs complete.
  static std::atomic<u64> seq{0};
  const std::string path = path_for(key);
  const std::string tmp =
      path + strf(".tmp-%llx-%llx",
                  static_cast<unsigned long long>(process_tag()),
                  static_cast<unsigned long long>(
                      seq.fetch_add(1, std::memory_order_relaxed)));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  KCONV_CHECK(f != nullptr, strf("cannot create plan file in '%s'",
                                 dir_.c_str()));
  const std::string& blob = w.buf();
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) ==
                     blob.size();
  const bool flushed = std::fclose(f) == 0;
  if (!wrote || !flushed) {
    std::error_code ec;
    fs::remove(tmp, ec);
    KCONV_CHECK(false, strf("short write persisting plan to '%s'",
                            tmp.c_str()));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    KCONV_CHECK(false, strf("cannot move plan into place at '%s'",
                            path.c_str()));
  }
  ++stores_;
  if (byte_budget() > 0) evict_to_budget(primary_key_of(key));
}

void PlanCache::evict_to_budget(const std::string& keep_key) {
  const u64 budget = byte_budget();
  // One group per primary key: the plan blob plus its tape sidecar, aged by
  // the newest member (loading either refreshes the pair). Files that are
  // not valid envelopes (foreign debris, torn historical writes) form
  // singleton groups keyed by path — evictable like anything else.
  struct Group {
    std::vector<std::string> paths;
    u64 bytes = 0;
    fs::file_time_type mtime = fs::file_time_type::min();
  };
  std::unordered_map<std::string, Group> groups;
  u64 total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (de.path().extension() != ".kplan") continue;
    std::error_code fec;
    const u64 sz = static_cast<u64>(de.file_size(fec));
    if (fec) continue;
    const std::string path = de.path().string();
    std::string key = peek_key(path);
    if (key.empty()) key = path;
    Group& g = groups[primary_key_of(key)];
    g.paths.push_back(path);
    g.bytes += sz;
    const fs::file_time_type mt = de.last_write_time(fec);
    if (!fec) g.mtime = std::max(g.mtime, mt);
    total += sz;
  }
  if (total <= budget) return;
  std::vector<std::pair<std::string, const Group*>> order;
  order.reserve(groups.size());
  for (const auto& [k, g] : groups) {
    if (k == keep_key) continue;  // never evict the entry just stored
    order.emplace_back(k, &g);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second->mtime != b.second->mtime) {
      return a.second->mtime < b.second->mtime;
    }
    return a.first < b.first;  // deterministic tie-break
  });
  for (const auto& [k, g] : order) {
    if (total <= budget) break;
    for (const std::string& path : g->paths) {
      std::error_code rec;
      if (fs::remove(path, rec) && !rec) ++evictions_;
    }
    total -= std::min(total, g->bytes);
  }
}

}  // namespace kconv::sim
