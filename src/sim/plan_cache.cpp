#include "src/sim/plan_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/common/error.hpp"
#include "src/common/strutil.hpp"

namespace kconv::sim {

namespace fs = std::filesystem;

namespace {

constexpr char kPlanMagic[8] = {'K', 'C', 'N', 'V', 'P', 'L', 'N', '\n'};

u64 key_hash(std::string_view key) {
  u64 h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads a whole file; empty-with-false when it does not exist or errors.
/// Sized up front and read in one call — plan blobs run to tens of
/// megabytes and the chunked append-loop's extra copy was measurable on
/// every warm launch.
bool slurp(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return false;
  }
  std::string data(static_cast<std::size_t>(size), '\0');
  const bool ok =
      std::fread(data.data(), 1, data.size(), f) == data.size() &&
      std::ferror(f) == 0;
  std::fclose(f);
  if (ok) out = std::move(data);
  return ok;
}

u64 process_tag() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<u64>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

u64 plan_checksum(std::string_view bytes) {
  u64 h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    u64 w;
    std::memcpy(&w, bytes.data() + i, 8);
    h ^= w;
    h *= 1099511628211ull;
  }
  u64 tail = 0;
  std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
  h ^= tail;
  h *= 1099511628211ull;
  h ^= static_cast<u64>(bytes.size());
  h *= 1099511628211ull;
  return h;
}

PlanCache::PlanCache(std::string dir) : dir_(std::move(dir)) {
  KCONV_CHECK(!dir_.empty(), "plan cache directory path is empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  KCONV_CHECK(!ec && fs::is_directory(dir_, ec),
              strf("plan cache path '%s' is not a usable directory",
                   dir_.c_str()));
  // Probe writability (and implicitly readability) once, up front: a launch
  // deep in an autotune sweep must not be the first thing to find out the
  // directory is read-only.
  const std::string probe =
      dir_ + strf("/.probe-%llx",
                  static_cast<unsigned long long>(process_tag()));
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  KCONV_CHECK(f != nullptr,
              strf("plan cache directory '%s' is not writable", dir_.c_str()));
  std::fclose(f);
  fs::remove(probe, ec);
}

std::string PlanCache::path_for(const std::string& key) const {
  return dir_ + strf("/%016llx.kplan",
                     static_cast<unsigned long long>(key_hash(key)));
}

bool PlanCache::load(const std::string& key, std::string& payload,
                     std::string* why) {
  std::string blob;
  std::string_view view;
  if (!load_view(key, blob, view, why)) return false;
  payload.assign(view);
  return true;
}

bool PlanCache::load_view(const std::string& key, std::string& blob,
                          std::string_view& payload, std::string* why) {
  ++loads_;
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (!slurp(path_for(key), blob)) return fail("miss");
  PlanReader r(blob);
  char magic[8];
  if (!r.raw(magic, 8) || std::memcmp(magic, kPlanMagic, 8) != 0) {
    return fail("corrupt");
  }
  const u32 version = r.get_u32();
  if (!r.ok()) return fail("corrupt");
  if (version != kPlanFormatVersion) return fail("stale-version");
  const std::string stored_key = r.get_str();
  if (!r.ok()) return fail("corrupt");
  // A hash-named file holding a different key means either a (vanishingly
  // unlikely) hash collision or a blob copied/renamed across stores; both
  // must re-capture rather than replay a foreign plan.
  if (stored_key != key) return fail("stale-key");
  const u64 len = r.get_u64();
  const u64 sum = r.get_u64();
  if (!r.ok() || len != r.remaining()) return fail("corrupt");
  std::string_view body(blob.data() + (blob.size() - len), len);
  if (plan_checksum(body) != sum) return fail("corrupt");
  payload = body;
  ++hits_;
  if (why != nullptr) *why = "hit";
  return true;
}

void PlanCache::store(const std::string& key, std::string_view payload) {
  PlanWriter w;
  w.raw(kPlanMagic, 8);
  w.put_u32(kPlanFormatVersion);
  w.put_str(key);
  w.put_u64(payload.size());
  w.put_u64(plan_checksum(payload));
  w.raw(payload.data(), payload.size());

  // Unique temp name per process + store call: concurrent writers race only
  // on the final atomic rename, last-done-wins with both blobs complete.
  static std::atomic<u64> seq{0};
  const std::string path = path_for(key);
  const std::string tmp =
      path + strf(".tmp-%llx-%llx",
                  static_cast<unsigned long long>(process_tag()),
                  static_cast<unsigned long long>(
                      seq.fetch_add(1, std::memory_order_relaxed)));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  KCONV_CHECK(f != nullptr, strf("cannot create plan file in '%s'",
                                 dir_.c_str()));
  const std::string& blob = w.buf();
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) ==
                     blob.size();
  const bool flushed = std::fclose(f) == 0;
  if (!wrote || !flushed) {
    std::error_code ec;
    fs::remove(tmp, ec);
    KCONV_CHECK(false, strf("short write persisting plan to '%s'",
                            tmp.c_str()));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    KCONV_CHECK(false, strf("cannot move plan into place at '%s'",
                            path.c_str()));
  }
  ++stores_;
}

}  // namespace kconv::sim
