// Launch configuration and execution options.
#pragma once

#include <string>

#include "src/common/types.hpp"
#include "src/obs/scope.hpp"
#include "src/sim/dim.hpp"
#include "src/sim/transfer.hpp"

namespace kconv::sim {

class PlanCache;

/// What the executor records while running device code.
enum class TraceLevel : u8 {
  /// Functional semantics only — fastest; stats stay near-empty.
  Functional,
  /// Full transaction analysis feeding the timing model.
  Timing,
};

/// The per-launch geometry and resource declaration (CUDA's <<<...>>>).
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  /// Dynamic shared memory per block, bytes (from SharedLayout::size()).
  u32 shared_bytes = 0;
  /// Register estimate per thread; drives the occupancy model the way the
  /// compiler-reported register count does on real hardware.
  u32 regs_per_thread = 32;
};

/// Host-side execution options.
struct LaunchOptions {
  TraceLevel trace = TraceLevel::Timing;
  /// When > 0 and less than the grid size, execute only this many evenly
  /// spaced blocks and scale the timing estimate (benchmark mode — blocks of
  /// the kconv kernels are statistically identical). Functional output of
  /// skipped blocks is NOT produced.
  u64 sample_max_blocks = 0;
  /// Invalidate L2 before the launch (true mimics a cold kernel call).
  bool reset_l2 = true;
  /// Host worker threads simulating the grid's blocks. 1 (default) is the
  /// exact-legacy serial path: every block runs through the device's single
  /// L2 and one shared constant cache. >1 shards the block list into
  /// contiguous chunks, each with its own L2 shadow and constant-cache
  /// replica (closer to real concurrent SMXs; see docs/MODEL.md §5a —
  /// outputs and all non-cache counters are identical to the serial path).
  /// 0 means std::thread::hardware_concurrency().
  u32 num_threads = 1;
  /// Trace-capture block replay (docs/MODEL.md §5b): run the scheduler once
  /// per block equivalence class and fast-forward the remaining blocks,
  /// re-analyzing only their address-dependent costs. Takes effect only for
  /// kernels that declare a replay_class hook; outputs stay bit-identical
  /// and serial-launch counters exact. Off by default (exact legacy path).
  bool replay = false;
  /// Memoize warp access-pattern analysis (docs/MODEL.md §5c): each launch
  /// chunk keys warp transactions by a translation-invariant signature and
  /// reuses the analyzer outputs (bank replay factor, relative sector
  /// layout) across repeats. Results are bit-identical with the cache on or
  /// off; disabling it is an A/B escape hatch (`--no-pattern-cache`).
  bool pattern_cache = true;
  /// Run the shadow-state hazard detector (docs/MODEL.md §6) alongside
  /// execution: shared-memory races within a block (same barrier epoch,
  /// different warps — or unordered intra-warp pairs) and cross-block
  /// global-memory write overlaps land in LaunchResult::analysis.
  /// Simulation outputs and all existing counters are unchanged.
  bool hazard_check = false;
  /// Run the memory-efficiency lints (docs/MODEL.md §6) over the launch's
  /// aggregate statistics. Requires a Timing trace (the lints read the
  /// transaction counters); findings land in LaunchResult::analysis.
  bool lint = false;
  /// kconv-prof (docs/MODEL.md §7): collect per-phase counter deltas,
  /// block timelines, and the roofline attribution into
  /// LaunchResult::profile. Purely observational — outputs and every
  /// pre-existing counter are bit-identical with this on or off, in all
  /// launch modes (enforced by tests/profile/profile_identity_test.cpp).
  bool profile = false;
  /// With `profile` on, record an ordered phase timeline (for the Perfetto
  /// exporter) for the first this-many executed blocks of the launch, by
  /// launch iteration index. Replayed blocks carry no timeline of their
  /// own; only class representatives and fully-executed blocks do.
  u64 profile_timeline_blocks = 8;
  /// Safety valve against runaway device programs (resume rounds per block).
  u64 max_rounds_per_block = 50'000'000;
  /// Cross-launch plan persistence (docs/MODEL.md §5d): when set together
  /// with a non-empty `plan_key` on a replay-capable launch, captured class
  /// traces (and tapes, and the pattern-cache tables) are loaded from and
  /// saved to this store, so a repeated launch replays every block with
  /// zero representative execution. Stale or corrupt stores fall back to
  /// capture (LaunchResult::plan_cache_status says why) — never silently
  /// wrong. Ignored under hazard_check (a checking run must execute).
  PlanCache* plan_cache = nullptr;
  /// Caller-provided kernel+shape identity for the plan store. The launch
  /// layer qualifies it with arch, grid/block geometry and trace level;
  /// kernel runners must fold in every parameter that changes the kernel's
  /// access pattern (and bump their embedded version tag when the kernel
  /// code itself changes).
  std::string plan_key;
  /// kconv-xray pre-validation (docs/MODEL.md §10): the static access
  /// signature of the kernel about to launch. When non-zero, a loaded plan
  /// whose recorded signature is non-zero and different is rejected as
  /// "stale-static-signature" (capture predates a kernel change the key's
  /// version tag missed), and fresh captures are stored carrying this
  /// value. 0 (default) disables the check and stores 0. Kernel runners
  /// with an xray describer fill it automatically when a plan cache is
  /// attached.
  u64 plan_static_signature = 0;
  /// Analytic execution (docs/MODEL.md §5d): serve every non-representative
  /// block's counters straight from its class trace — no lane coroutines,
  /// no functional memory, no output tensors (callers must not download).
  /// Translation-invariant counters and the compute attribution stay exact;
  /// the address-dependent counters (gm_sectors, gm_sectors_dram,
  /// const_line_misses) are the representative's values scaled by block
  /// count — approximate. Requires a replay_class kernel; implies replay.
  bool analytic = false;
  /// Multi-device sharding (docs/MODEL.md §9): fleet.devices > 1 splits the
  /// grid across N simulated devices by fleet.strategy, each shard running
  /// against its own Device (cold L2/constant caches) with a modeled
  /// host<->device staging + device<->device halo transfer ledger. Outputs
  /// stay byte-identical and scheduling-invariant counters exact versus
  /// devices == 1 (same contract as num_threads, §5a). Unsupported with
  /// `analytic` (no per-block execution to shard) and with sampling.
  FleetOptions fleet;
  /// Shard-axis geometry, filled by kernel runners (conv2d and friends)
  /// before the launch; direct launch() callers sharding a raw kernel must
  /// fill it themselves. Required for channel/spatial strategies and for
  /// the transfer ledger; a Batch fleet without hints still shards but
  /// stages nothing.
  FleetHints fleet_hints;
  /// kconv-scope (docs/MODEL.md §11): request-scoped telemetry handle.
  /// Default state is off (null sink) and every hook is a guarded append,
  /// so outputs and all scheduling-invariant counters are byte-identical
  /// with telemetry on or off, in every launch mode. The serving driver
  /// mints trace = request id; run_graph re-parents the scope per node;
  /// the launch layer records its span, the §5d plan-cache outcome, and
  /// one event per fleet device chunk.
  obs::TelemetryScope telemetry;
};

}  // namespace kconv::sim
