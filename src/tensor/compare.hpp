// Numeric comparison helpers for tests and examples.
#pragma once

#include <cmath>

#include "src/tensor/tensor.hpp"

namespace kconv::tensor {

struct DiffReport {
  double max_abs = 0.0;
  double max_rel = 0.0;
  i64 worst_index = -1;
  i64 count = 0;

  bool within(double atol, double rtol) const {
    return max_abs <= atol || max_rel <= rtol;
  }
};

/// Elementwise comparison of two equal-shaped tensors.
inline DiffReport diff(const Tensor& a, const Tensor& b) {
  KCONV_CHECK(a.shape() == b.shape(), "diff of differently shaped tensors");
  DiffReport r;
  r.count = a.size();
  auto fa = a.flat();
  auto fb = b.flat();
  for (i64 i = 0; i < a.size(); ++i) {
    const double da = fa[static_cast<std::size_t>(i)];
    const double db = fb[static_cast<std::size_t>(i)];
    const double abs_err = std::abs(da - db);
    const double denom = std::max(std::abs(da), std::abs(db));
    const double rel_err = denom > 0 ? abs_err / denom : 0.0;
    if (abs_err > r.max_abs) {
      r.max_abs = abs_err;
      r.worst_index = i;
    }
    r.max_rel = std::max(r.max_rel, rel_err);
  }
  return r;
}

/// True when every element matches within atol OR rtol (numpy-allclose-ish,
/// tolerant of fp32 reassociation in the device kernels).
inline bool allclose(const Tensor& a, const Tensor& b, double atol = 1e-4,
                     double rtol = 1e-4) {
  KCONV_CHECK(a.shape() == b.shape(), "allclose of differently shaped tensors");
  auto fa = a.flat();
  auto fb = b.flat();
  for (i64 i = 0; i < a.size(); ++i) {
    const double da = fa[static_cast<std::size_t>(i)];
    const double db = fb[static_cast<std::size_t>(i)];
    const double abs_err = std::abs(da - db);
    if (abs_err > atol + rtol * std::max(std::abs(da), std::abs(db))) {
      return false;
    }
  }
  return true;
}

}  // namespace kconv::tensor
