// Host-side dense tensors in NCHW layout.
//
// The minimal tensor type the library needs: owning float storage, shape
// arithmetic, deterministic fills. Convolution inputs are (N, C, H, W);
// filter banks are (F, C, K, K) — matching the paper's Fig. 3 nomenclature
// (C input channels, F filters of size K x K).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/strutil.hpp"
#include "src/common/types.hpp"

namespace kconv::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Creates an (n, c, h, w) tensor initialized to zero.
  Tensor(i64 n, i64 c, i64 h, i64 w)
      : shape_{n, c, h, w}, data_(checked_size(n, c, h, w), 0.0f) {}

  /// Shorthand for a single (1, c, h, w) image.
  static Tensor image(i64 c, i64 h, i64 w) { return Tensor(1, c, h, w); }
  /// Shorthand for an (f, c, k, k) filter bank.
  static Tensor filters(i64 f, i64 c, i64 k) { return Tensor(f, c, k, k); }

  i64 n() const { return shape_[0]; }
  i64 c() const { return shape_[1]; }
  i64 h() const { return shape_[2]; }
  i64 w() const { return shape_[3]; }
  const std::array<i64, 4>& shape() const { return shape_; }
  i64 size() const { return static_cast<i64>(data_.size()); }

  float& at(i64 n, i64 c, i64 h, i64 w) { return data_[index(n, c, h, w)]; }
  float at(i64 n, i64 c, i64 h, i64 w) const {
    return data_[index(n, c, h, w)];
  }

  /// Zero-padded read: coordinates outside the tensor return 0. Used by the
  /// reference convolution to define `same`-style boundary handling.
  float at_or_zero(i64 n, i64 c, i64 h, i64 w) const {
    if (h < 0 || w < 0 || h >= shape_[2] || w >= shape_[3]) return 0.0f;
    return at(n, c, h, w);
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Fills with uniform random values in [lo, hi) from `rng`.
  void fill_random(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    for (float& v : data_) v = rng.uniform(lo, hi);
  }

  /// Fills with a smooth deterministic pattern (useful for eyeballable
  /// examples where random noise would hide bugs).
  void fill_pattern() {
    for (i64 nn = 0; nn < shape_[0]; ++nn)
      for (i64 cc = 0; cc < shape_[1]; ++cc)
        for (i64 hh = 0; hh < shape_[2]; ++hh)
          for (i64 ww = 0; ww < shape_[3]; ++ww)
            at(nn, cc, hh, ww) =
                0.01f * static_cast<float>((hh * 7 + ww * 3 + cc * 5 + nn) % 97) -
                0.5f;
  }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  static std::size_t checked_size(i64 n, i64 c, i64 h, i64 w) {
    KCONV_CHECK(n >= 0 && c >= 0 && h >= 0 && w >= 0,
                strf("negative tensor extent (%lld,%lld,%lld,%lld)",
                     static_cast<long long>(n), static_cast<long long>(c),
                     static_cast<long long>(h), static_cast<long long>(w)));
    return static_cast<std::size_t>(n * c * h * w);
  }

  std::size_t index(i64 n, i64 c, i64 h, i64 w) const {
    KCONV_ASSERT(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                 h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3]);
    return static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w);
  }

  std::array<i64, 4> shape_ = {0, 0, 0, 0};
  std::vector<float> data_;
};

}  // namespace kconv::tensor
