#include "src/tensor/fft_ref.hpp"

#include <cmath>

#include "src/tensor/conv_ref.hpp"

namespace kconv::tensor {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool is_pow2(i64 n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

i64 next_pow2(i64 n) {
  i64 p = 1;
  while (p < n) p *= 2;
  return p;
}

void fft1d(std::vector<cfloat>& data, bool inverse) {
  const std::size_t n = data.size();
  KCONV_CHECK(is_pow2(static_cast<i64>(n)), "FFT length must be a power of 2");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const cfloat wlen(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      cfloat w(1.0f, 0.0f);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cfloat u = data[i + j];
        const cfloat v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft2d(std::vector<cfloat>& data, i64 rows, i64 cols, bool inverse) {
  KCONV_CHECK(static_cast<i64>(data.size()) == rows * cols,
              "fft2d buffer size mismatch");
  std::vector<cfloat> scratch(static_cast<std::size_t>(
      std::max(rows, cols)));
  for (i64 r = 0; r < rows; ++r) {
    scratch.assign(data.begin() + static_cast<std::ptrdiff_t>(r * cols),
                   data.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    fft1d(scratch, inverse);
    std::copy(scratch.begin(), scratch.end(),
              data.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  scratch.resize(static_cast<std::size_t>(rows));
  for (i64 c = 0; c < cols; ++c) {
    for (i64 r = 0; r < rows; ++r) {
      scratch[static_cast<std::size_t>(r)] =
          data[static_cast<std::size_t>(r * cols + c)];
    }
    fft1d(scratch, inverse);
    for (i64 r = 0; r < rows; ++r) {
      data[static_cast<std::size_t>(r * cols + c)] =
          scratch[static_cast<std::size_t>(r)];
    }
  }
}

Tensor fft_conv_reference(const Tensor& input, const Tensor& filters) {
  KCONV_CHECK(input.n() == 1, "single image");
  KCONV_CHECK(input.c() == filters.c(), "channel mismatch");
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  const i64 C = input.c(), F = filters.n(), K = filters.h();
  const i64 Ho = conv_out_extent(input.h(), K, 0);
  const i64 Wo = conv_out_extent(input.w(), K, 0);
  const i64 P = next_pow2(std::max(input.h(), K));
  const i64 Q = next_pow2(std::max(input.w(), K));
  const std::size_t plane = static_cast<std::size_t>(P * Q);

  // Transform every input channel.
  std::vector<std::vector<cfloat>> X(static_cast<std::size_t>(C));
  for (i64 c = 0; c < C; ++c) {
    auto& x = X[static_cast<std::size_t>(c)];
    x.assign(plane, cfloat{});
    for (i64 y = 0; y < input.h(); ++y)
      for (i64 xx = 0; xx < input.w(); ++xx)
        x[static_cast<std::size_t>(y * Q + xx)] = input.at(0, c, y, xx);
    fft2d(x, P, Q, false);
  }

  Tensor out(1, F, Ho, Wo);
  std::vector<cfloat> acc(plane);
  std::vector<cfloat> g(plane);
  for (i64 f = 0; f < F; ++f) {
    std::fill(acc.begin(), acc.end(), cfloat{});
    for (i64 c = 0; c < C; ++c) {
      // Flipped filter: full linear convolution with the flipped kernel is
      // cross-correlation, extracted at offset (K-1, K-1).
      std::fill(g.begin(), g.end(), cfloat{});
      for (i64 y = 0; y < K; ++y)
        for (i64 x = 0; x < K; ++x)
          g[static_cast<std::size_t>(y * Q + x)] =
              filters.at(f, c, K - 1 - y, K - 1 - x);
      fft2d(g, P, Q, false);
      const auto& x = X[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < plane; ++i) acc[i] += x[i] * g[i];
    }
    fft2d(acc, P, Q, true);
    const float scale = 1.0f / static_cast<float>(P * Q);
    for (i64 y = 0; y < Ho; ++y)
      for (i64 x = 0; x < Wo; ++x)
        out.at(0, f, y, x) =
            acc[static_cast<std::size_t>((y + K - 1) * Q + (x + K - 1))]
                .real() *
            scale;
  }
  return out;
}

}  // namespace kconv::tensor
