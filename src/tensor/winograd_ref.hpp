// Reference Winograd F(2x2, 3x3) transforms (Lavin & Gray, CVPR'16 [15]).
//
// The paper's related work discusses Winograd as the fast-algorithm
// alternative to direct convolution for 3x3 filters: 2.25x fewer
// multiplications per output at the cost of extra memory and
// transform work. These host-side helpers define the algebra; the device
// pipeline in src/kernels/winograd_conv.* uses the same matrices.
//
//   Y = A^T [ (G g G^T) (.) (B^T d B) ] A
//
// with d a 4x4 input tile (stride-2 overlapping), g the 3x3 filter, Y the
// 2x2 output tile, and (.) elementwise.
#pragma once

#include "src/tensor/tensor.hpp"

namespace kconv::tensor {

/// V = B^T d B for a 4x4 input tile (in/out row-major 16 floats).
void winograd_input_transform(const float d[16], float v[16]);

/// U = G g G^T for a 3x3 filter (g row-major 9 floats, u 16 floats).
void winograd_filter_transform(const float g[9], float u[16]);

/// Y = A^T m A for a 4x4 elementwise-product tile (y: 4 floats, 2x2).
void winograd_output_transform(const float m[16], float y[4]);

/// Full reference Winograd convolution (valid, K = 3): input (1, C, Hi, Wi),
/// filters (F, C, 3, 3). Slow and obviously correct; used as the oracle for
/// the device pipeline and as a cross-check against conv2d_reference.
Tensor winograd_conv_reference(const Tensor& input, const Tensor& filters);

}  // namespace kconv::tensor
