// Reference im2col lowering (Chellapilla et al. [7] / Caffe [18]).
//
// Unrolls a convolution into a GEMM: the filter bank becomes an
// F x (C*K*K) matrix, the input becomes a (C*K*K) x (Ho*Wo) patch matrix,
// and their product is the (F x Ho*Wo) output. This is the memory-hungry
// baseline the paper contrasts against — each input pixel is duplicated up
// to K*K times in the patch matrix.
#pragma once

#include "src/tensor/tensor.hpp"

namespace kconv::tensor {

/// Row-major matrix holder for the GEMM helpers.
struct Matrix {
  i64 rows = 0;
  i64 cols = 0;
  std::vector<float> data;

  Matrix() = default;
  Matrix(i64 r, i64 c)
      : rows(r), cols(c), data(static_cast<std::size_t>(r * c), 0.0f) {
    KCONV_CHECK(r >= 0 && c >= 0, "negative matrix extent");
  }

  float& at(i64 r, i64 c) { return data[static_cast<std::size_t>(r * cols + c)]; }
  float at(i64 r, i64 c) const {
    return data[static_cast<std::size_t>(r * cols + c)];
  }
};

/// Lowers image `n` of `input` into the (C*K*K) x (Ho*Wo) patch matrix.
/// Row index = (c*K + dy)*K + dx; column index = y*Wo + x.
Matrix im2col(const Tensor& input, i64 n, i64 k, i64 pad = 0);

/// Flattens an (F, C, K, K) filter bank into an F x (C*K*K) matrix whose
/// column order matches im2col's row order.
Matrix filters_as_matrix(const Tensor& filters);

/// Reshapes an F x (Ho*Wo) product back into an output tensor image.
void col2im_output(const Matrix& product, i64 n, Tensor& out);

}  // namespace kconv::tensor
