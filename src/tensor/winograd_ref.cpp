#include "src/tensor/winograd_ref.hpp"

#include "src/tensor/conv_ref.hpp"

namespace kconv::tensor {

// F(2x2, 3x3) transform matrices:
//   B^T = [1  0 -1  0]   G = [ 1    0    0 ]   A^T = [1 1  1  0]
//         [0  1  1  0]       [ 1/2  1/2  1/2]        [0 1 -1 -1]
//         [0 -1  1  0]       [ 1/2 -1/2  1/2]
//         [0  1  0 -1]       [ 0    0    1 ]

void winograd_input_transform(const float d[16], float v[16]) {
  // t = B^T d (rows), then v = t B (columns) — both matrices are sparse
  // 0/±1, so this is pure adds, exactly as a real kernel computes it.
  float t[16];
  for (int c = 0; c < 4; ++c) {
    t[0 * 4 + c] = d[0 * 4 + c] - d[2 * 4 + c];
    t[1 * 4 + c] = d[1 * 4 + c] + d[2 * 4 + c];
    t[2 * 4 + c] = d[2 * 4 + c] - d[1 * 4 + c];
    t[3 * 4 + c] = d[1 * 4 + c] - d[3 * 4 + c];
  }
  for (int r = 0; r < 4; ++r) {
    v[r * 4 + 0] = t[r * 4 + 0] - t[r * 4 + 2];
    v[r * 4 + 1] = t[r * 4 + 1] + t[r * 4 + 2];
    v[r * 4 + 2] = t[r * 4 + 2] - t[r * 4 + 1];
    v[r * 4 + 3] = t[r * 4 + 1] - t[r * 4 + 3];
  }
}

void winograd_filter_transform(const float g[9], float u[16]) {
  // t = G g (4x3), then u = t G^T (4x4).
  float t[12];
  for (int c = 0; c < 3; ++c) {
    const float g0 = g[0 * 3 + c], g1 = g[1 * 3 + c], g2 = g[2 * 3 + c];
    t[0 * 3 + c] = g0;
    t[1 * 3 + c] = 0.5f * (g0 + g1 + g2);
    t[2 * 3 + c] = 0.5f * (g0 - g1 + g2);
    t[3 * 3 + c] = g2;
  }
  for (int r = 0; r < 4; ++r) {
    const float t0 = t[r * 3 + 0], t1 = t[r * 3 + 1], t2 = t[r * 3 + 2];
    u[r * 4 + 0] = t0;
    u[r * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[r * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[r * 4 + 3] = t2;
  }
}

void winograd_output_transform(const float m[16], float y[4]) {
  // t = A^T m (2x4), then y = t A (2x2).
  float t[8];
  for (int c = 0; c < 4; ++c) {
    t[0 * 4 + c] = m[0 * 4 + c] + m[1 * 4 + c] + m[2 * 4 + c];
    t[1 * 4 + c] = m[1 * 4 + c] - m[2 * 4 + c] - m[3 * 4 + c];
  }
  for (int r = 0; r < 2; ++r) {
    y[r * 2 + 0] = t[r * 4 + 0] + t[r * 4 + 1] + t[r * 4 + 2];
    y[r * 2 + 1] = t[r * 4 + 1] - t[r * 4 + 2] - t[r * 4 + 3];
  }
}

Tensor winograd_conv_reference(const Tensor& input, const Tensor& filters) {
  KCONV_CHECK(filters.h() == 3 && filters.w() == 3,
              "Winograd F(2x2,3x3) requires 3x3 filters");
  KCONV_CHECK(input.c() == filters.c(), "channel mismatch");
  KCONV_CHECK(input.n() == 1, "single image");
  const i64 C = input.c(), F = filters.n();
  const i64 Ho = conv_out_extent(input.h(), 3, 0);
  const i64 Wo = conv_out_extent(input.w(), 3, 0);
  Tensor out(1, F, Ho, Wo);

  // Pre-transform all filters.
  std::vector<float> U(static_cast<std::size_t>(F * C * 16));
  for (i64 f = 0; f < F; ++f) {
    for (i64 c = 0; c < C; ++c) {
      float g[9];
      for (int i = 0; i < 9; ++i) g[i] = filters.at(f, c, i / 3, i % 3);
      winograd_filter_transform(g, &U[static_cast<std::size_t>((f * C + c) * 16)]);
    }
  }

  const i64 ty_count = ceil_div(Ho, 2), tx_count = ceil_div(Wo, 2);
  for (i64 f = 0; f < F; ++f) {
    for (i64 ty = 0; ty < ty_count; ++ty) {
      for (i64 tx = 0; tx < tx_count; ++tx) {
        float m[16] = {};
        for (i64 c = 0; c < C; ++c) {
          float d[16];
          for (int i = 0; i < 16; ++i) {
            d[i] = input.at_or_zero(0, c, ty * 2 + i / 4, tx * 2 + i % 4);
          }
          float v[16];
          winograd_input_transform(d, v);
          const float* u = &U[static_cast<std::size_t>((f * C + c) * 16)];
          for (int i = 0; i < 16; ++i) m[i] += u[i] * v[i];
        }
        float y[4];
        winograd_output_transform(m, y);
        for (int i = 0; i < 4; ++i) {
          const i64 oy = ty * 2 + i / 2, ox = tx * 2 + i % 2;
          if (oy < Ho && ox < Wo) out.at(0, f, oy, ox) = y[i];
        }
      }
    }
  }
  return out;
}

}  // namespace kconv::tensor
