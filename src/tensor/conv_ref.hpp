// Reference CPU convolution — the oracle every device kernel is tested
// against.
//
// Semantics follow the paper / CNN convention: cross-correlation (no filter
// flip), NCHW input (N, C, Hi, Wi), filter bank (F, C, K, K), output
// (N, F, Ho, Wo) with Ho = Hi + 2*pad - K + 1. pad = 0 is the `valid` mode
// the device kernels implement natively.
#pragma once

#include "src/tensor/tensor.hpp"

namespace kconv::tensor {

/// Direct triple-loop convolution. Slow and obviously correct.
Tensor conv2d_reference(const Tensor& input, const Tensor& filters,
                        i64 pad = 0);

/// Output spatial extent for the given input extent / filter / padding.
inline i64 conv_out_extent(i64 in, i64 k, i64 pad) {
  const i64 out = in + 2 * pad - k + 1;
  KCONV_CHECK(out >= 1, strf("filter of size %lld does not fit input of "
                             "size %lld with pad %lld",
                             static_cast<long long>(k),
                             static_cast<long long>(in),
                             static_cast<long long>(pad)));
  return out;
}

/// Zero-pads an image tensor spatially by `pad` on every side. Used by the
/// public API to offer `same`-style convolution on top of `valid` kernels.
Tensor pad_image(const Tensor& input, i64 pad);

}  // namespace kconv::tensor
