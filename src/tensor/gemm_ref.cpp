#include "src/tensor/gemm_ref.hpp"

namespace kconv::tensor {

Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  KCONV_CHECK(a.cols == b.rows,
              strf("GEMM shape mismatch: %lldx%lld * %lldx%lld",
                   static_cast<long long>(a.rows),
                   static_cast<long long>(a.cols),
                   static_cast<long long>(b.rows),
                   static_cast<long long>(b.cols)));
  Matrix c(a.rows, b.cols);
  // ikj order for cache-friendliness; double accumulation in a row buffer
  // keeps the oracle accurate for large K.
  std::vector<double> row(static_cast<std::size_t>(b.cols));
  for (i64 i = 0; i < a.rows; ++i) {
    std::fill(row.begin(), row.end(), 0.0);
    for (i64 k = 0; k < a.cols; ++k) {
      const double av = a.at(i, k);
      if (av == 0.0) continue;
      for (i64 j = 0; j < b.cols; ++j) {
        row[static_cast<std::size_t>(j)] += av * b.at(k, j);
      }
    }
    for (i64 j = 0; j < b.cols; ++j) {
      c.at(i, j) = static_cast<float>(row[static_cast<std::size_t>(j)]);
    }
  }
  return c;
}

}  // namespace kconv::tensor
