// Reference CPU GEMM for oracles and the im2col pipeline.
#pragma once

#include "src/tensor/im2col.hpp"

namespace kconv::tensor {

/// C = A * B for row-major matrices (A: M x K, B: K x N).
Matrix gemm_reference(const Matrix& a, const Matrix& b);

}  // namespace kconv::tensor
