#include "src/tensor/conv_ref.hpp"

namespace kconv::tensor {

Tensor conv2d_reference(const Tensor& input, const Tensor& filters,
                        i64 pad) {
  KCONV_CHECK(input.c() == filters.c(),
              strf("channel mismatch: input has %lld, filters expect %lld",
                   static_cast<long long>(input.c()),
                   static_cast<long long>(filters.c())));
  KCONV_CHECK(filters.h() == filters.w(), "non-square filters unsupported");
  KCONV_CHECK(pad >= 0, "negative padding");
  const i64 k = filters.h();
  const i64 ho = conv_out_extent(input.h(), k, pad);
  const i64 wo = conv_out_extent(input.w(), k, pad);

  Tensor out(input.n(), filters.n(), ho, wo);
  for (i64 n = 0; n < input.n(); ++n) {
    for (i64 f = 0; f < filters.n(); ++f) {
      for (i64 y = 0; y < ho; ++y) {
        for (i64 x = 0; x < wo; ++x) {
          double acc = 0.0;  // double accumulation keeps the oracle tight
          for (i64 c = 0; c < input.c(); ++c) {
            for (i64 dy = 0; dy < k; ++dy) {
              for (i64 dx = 0; dx < k; ++dx) {
                acc += static_cast<double>(input.at_or_zero(
                           n, c, y + dy - pad, x + dx - pad)) *
                       static_cast<double>(filters.at(f, c, dy, dx));
              }
            }
          }
          out.at(n, f, y, x) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor pad_image(const Tensor& input, i64 pad) {
  KCONV_CHECK(pad >= 0, "negative padding");
  if (pad == 0) return input;
  Tensor out(input.n(), input.c(), input.h() + 2 * pad, input.w() + 2 * pad);
  for (i64 n = 0; n < input.n(); ++n)
    for (i64 c = 0; c < input.c(); ++c)
      for (i64 h = 0; h < input.h(); ++h)
        for (i64 w = 0; w < input.w(); ++w)
          out.at(n, c, h + pad, w + pad) = input.at(n, c, h, w);
  return out;
}

}  // namespace kconv::tensor
