#include "src/tensor/im2col.hpp"

#include "src/tensor/conv_ref.hpp"

namespace kconv::tensor {

Matrix im2col(const Tensor& input, i64 n, i64 k, i64 pad) {
  KCONV_CHECK(n >= 0 && n < input.n(), "image index out of range");
  const i64 ho = conv_out_extent(input.h(), k, pad);
  const i64 wo = conv_out_extent(input.w(), k, pad);
  Matrix m(input.c() * k * k, ho * wo);
  for (i64 c = 0; c < input.c(); ++c) {
    for (i64 dy = 0; dy < k; ++dy) {
      for (i64 dx = 0; dx < k; ++dx) {
        const i64 row = (c * k + dy) * k + dx;
        for (i64 y = 0; y < ho; ++y) {
          for (i64 x = 0; x < wo; ++x) {
            m.at(row, y * wo + x) =
                input.at_or_zero(n, c, y + dy - pad, x + dx - pad);
          }
        }
      }
    }
  }
  return m;
}

Matrix filters_as_matrix(const Tensor& filters) {
  const i64 k = filters.h();
  KCONV_CHECK(filters.w() == k, "non-square filters unsupported");
  Matrix m(filters.n(), filters.c() * k * k);
  for (i64 f = 0; f < filters.n(); ++f)
    for (i64 c = 0; c < filters.c(); ++c)
      for (i64 dy = 0; dy < k; ++dy)
        for (i64 dx = 0; dx < k; ++dx)
          m.at(f, (c * k + dy) * k + dx) = filters.at(f, c, dy, dx);
  return m;
}

void col2im_output(const Matrix& product, i64 n, Tensor& out) {
  KCONV_CHECK(product.rows == out.c() && product.cols == out.h() * out.w(),
              "product shape does not match output tensor");
  for (i64 f = 0; f < out.c(); ++f)
    for (i64 y = 0; y < out.h(); ++y)
      for (i64 x = 0; x < out.w(); ++x)
        out.at(n, f, y, x) = product.at(f, y * out.w() + x);
}

}  // namespace kconv::tensor
