// Reference FFT machinery for FFT-based convolution (the paper's method
// category (3), refs [12-14]).
//
// The frequency-domain route trades arithmetic for memory: filters are
// zero-padded to the (power-of-two) image size — "which incurs additional
// memory and computation time" (§1) — transformed once, multiplied
// pointwise, and inverse-transformed. These host-side helpers define the
// semantics; the device pipeline lives in src/kernels/fft_conv.*.
#pragma once

#include <complex>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace kconv::tensor {

using cfloat = std::complex<float>;

/// In-place iterative radix-2 FFT (bit-reversal + butterflies).
/// `data.size()` must be a power of two. `inverse` applies the conjugate
/// transform WITHOUT the 1/N scale (callers scale once at the end).
void fft1d(std::vector<cfloat>& data, bool inverse);

/// In-place 2D FFT over a row-major `rows x cols` buffer (both powers of
/// two): rows pass then columns pass.
void fft2d(std::vector<cfloat>& data, i64 rows, i64 cols, bool inverse);

/// Smallest power of two >= n.
i64 next_pow2(i64 n);

/// Full FFT-based valid convolution (cross-correlation semantics, matching
/// conv2d_reference): input (1, C, Hi, Wi), filters (F, C, K, K).
/// Internally pads to P x Q = next_pow2 extents; the cyclic wraparound
/// lands entirely in the discarded border because the valid region starts
/// at (K-1, K-1).
Tensor fft_conv_reference(const Tensor& input, const Tensor& filters);

}  // namespace kconv::tensor
