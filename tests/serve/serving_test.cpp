// Serving-driver suite (docs/MODEL.md §8).
//
// The contracts under test: replies are deterministic — bit-identical for
// any worker-thread count and any fuse setting; same-(network, shape) work
// coalesces into batches; and a shared PlanCache moves traffic from cold to
// warm to analytic with the outputs (when they exist) unchanged.
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/serving.hpp"

namespace kconv::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("kconv_serving_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

bool bit_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.flat().size() == b.flat().size() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

std::vector<ServeReply> serve_n(const Network& net, ServeOptions opt,
                                int n) {
  ServingDriver driver(std::move(opt));
  for (int i = 0; i < n; ++i) {
    driver.enqueue(net, make_network_input(net, static_cast<u64>(i)));
  }
  return driver.drain();
}

TEST(Serving, RepliesArriveInRequestIdOrder) {
  const Network net = make_network("lenet");
  const auto replies = serve_n(net, {}, 3);
  ASSERT_EQ(replies.size(), 3u);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].id, i);
    EXPECT_TRUE(replies[i].ok);
    ASSERT_EQ(replies[i].output.c(), 10);
  }
}

TEST(Serving, DeterministicAcrossThreadCounts) {
  const Network net = make_network("lenet");
  ServeOptions serial;
  serial.threads = 1;
  ServeOptions wide;
  wide.threads = 4;
  const auto a = serve_n(net, serial, 4);
  const auto b = serve_n(net, wide, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_TRUE(bit_equal(a[i].output, b[i].output)) << "request " << i;
    // Simulated time is a device-side quantity: identical too.
    EXPECT_EQ(a[i].sim_seconds, b[i].sim_seconds);
  }
}

TEST(Serving, FuseOffProducesBitIdenticalOutputs) {
  const Network net = make_network("vgg-tiny");
  ServeOptions fused;
  ServeOptions unfused;
  unfused.fuse = false;
  const auto a = serve_n(net, fused, 2);
  const auto b = serve_n(net, unfused, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bit_equal(a[i].output, b[i].output));
  }
}

TEST(Serving, BatchesBySameNetworkAndShape) {
  const Network lenet = make_network("lenet");
  const Network vgg = make_network("vgg-tiny");
  ServingDriver driver({});
  driver.enqueue(lenet, make_network_input(lenet, 0));
  driver.enqueue(vgg, make_network_input(vgg, 1));
  driver.enqueue(lenet, make_network_input(lenet, 2));
  driver.enqueue(vgg, make_network_input(vgg, 3));
  const auto replies = driver.drain();
  ASSERT_EQ(replies.size(), 4u);
  const ServeStats s = driver.stats();
  EXPECT_EQ(s.processed, 4u);
  EXPECT_EQ(s.batches, 2u);  // interleaved arrivals, two groups
}

TEST(Serving, SharedPlanCacheWarmsWithinOneDrain) {
  const std::string dir = fresh_dir("warm_drain");
  sim::PlanCache plans(dir);
  const Network net = make_network("lenet");
  ServeOptions opt;
  opt.plan_cache = &plans;
  ServingDriver driver(opt);
  for (int i = 0; i < 3; ++i) {
    driver.enqueue(net, make_network_input(net, static_cast<u64>(i)));
  }
  const auto replies = driver.drain();
  const ServeStats s = driver.stats();
  EXPECT_EQ(s.cold, 1u);  // first request captures the plans
  EXPECT_EQ(s.warm, 2u);  // the rest replay them
  for (const auto& r : replies) EXPECT_TRUE(r.ok);
  fs::remove_all(dir);
}

TEST(Serving, ColdWarmAnalyticProgressionAcrossDrivers) {
  const std::string dir = fresh_dir("progression");
  sim::PlanCache plans(dir);
  const Network net = make_network("lenet");

  ServeOptions opt;
  opt.plan_cache = &plans;
  const auto cold = serve_n(net, opt, 1);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_TRUE(cold[0].ok);
  EXPECT_FALSE(cold[0].warm);

  // A fresh driver (fresh process, in production) over the same store.
  const auto warm = serve_n(net, opt, 1);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm[0].warm);
  EXPECT_TRUE(bit_equal(cold[0].output, warm[0].output));
  EXPECT_EQ(cold[0].sim_seconds, warm[0].sim_seconds);

  // Analytic: zero representative execution, timings only.
  opt.analytic = true;
  const auto fast = serve_n(net, opt, 1);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_TRUE(fast[0].analytic);
  EXPECT_FALSE(fast[0].ok);  // no activations materialized
  EXPECT_EQ(fast[0].sim_seconds, cold[0].sim_seconds);
  fs::remove_all(dir);
}

TEST(Serving, AnalyticRepliesAreDeterministicAcrossThreadCounts) {
  const std::string dir = fresh_dir("analytic_threads");
  sim::PlanCache plans(dir);
  const Network net = make_network("lenet");
  ServeOptions opt;
  opt.plan_cache = &plans;
  (void)serve_n(net, opt, 1);  // seed the store

  opt.analytic = true;
  opt.threads = 1;
  const auto a = serve_n(net, opt, 3);
  opt.threads = 3;
  const auto b = serve_n(net, opt, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].analytic);
    EXPECT_TRUE(b[i].analytic);
    EXPECT_EQ(a[i].sim_seconds, b[i].sim_seconds);
  }
  fs::remove_all(dir);
}

TEST(Serving, StatsAccumulateAcrossDrains) {
  const Network net = make_network("lenet");
  ServingDriver driver({});
  driver.enqueue(net, make_network_input(net, 0));
  (void)driver.drain();
  driver.enqueue(net, make_network_input(net, 1));
  driver.enqueue(net, make_network_input(net, 2));
  (void)driver.drain();
  const ServeStats s = driver.stats();
  EXPECT_EQ(s.processed, 3u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_GT(s.fused_pairs, 0u);
  EXPECT_GT(s.fusion_gm_bytes_eliminated, 0.0);
}

TEST(Serving, EmptyDrainIsANoOp) {
  ServingDriver driver({});
  EXPECT_TRUE(driver.drain().empty());
  EXPECT_EQ(driver.stats().processed, 0u);
  EXPECT_EQ(driver.stats().batches, 0u);
}

}  // namespace
}  // namespace kconv::serve
