// Layer-graph runner suite (docs/MODEL.md §8).
//
// The load-bearing contract: graph execution — with or without the fused
// conv+bias+ReLU epilogue, under every launch mode — produces logits that
// are bit-identical to hand-sequencing the same kernels, and the tensor
// arena's slot reuse never aliases two live activations.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/core/conv_api.hpp"
#include "src/kernels/gemm_kernels.hpp"
#include "src/kernels/layer_ops.hpp"
#include "src/serve/graph.hpp"
#include "src/serve/networks.hpp"
#include "src/sim/plan_cache.hpp"
#include "src/sim/sim.hpp"

#include <filesystem>

namespace kconv::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("kconv_serve_test_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

bool bit_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.n() != b.n() || a.c() != b.c() || a.h() != b.h() || a.w() != b.w()) {
    return false;
  }
  return std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(float)) == 0;
}

/// Runs `net` hand-sequenced — each kernel called explicitly, every
/// intermediate materialized, no fusion — the way the examples did before
/// the graph runner existed.
tensor::Tensor run_hand_sequenced(const Network& net,
                                  const tensor::Tensor& input,
                                  const sim::LaunchOptions& launch = {}) {
  sim::Device dev(sim::kepler_k40m());
  const auto& nodes = net.graph.nodes();
  std::vector<tensor::Tensor> outs(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    const tensor::Tensor& in =
        n.kind == OpKind::Input ? input
                                : outs[static_cast<std::size_t>(n.input)];
    switch (n.kind) {
      case OpKind::Input:
        outs[i] = input;
        break;
      case OpKind::Conv: {
        core::ConvOptions copt;
        copt.launch = launch;
        auto r = core::conv2d(dev, in, n.filters, copt);
        EXPECT_TRUE(r.output_valid);
        outs[i] = std::move(r.output);
        break;
      }
      case OpKind::BiasRelu: {
        auto r = kernels::bias_relu(dev, in, n.bias, launch);
        EXPECT_TRUE(r.output_valid);
        outs[i] = std::move(r.output);
        break;
      }
      case OpKind::MaxPool: {
        auto r = kernels::max_pool_2x2(dev, in, launch);
        EXPECT_TRUE(r.output_valid);
        outs[i] = std::move(r.output);
        break;
      }
      case OpKind::Dense: {
        tensor::Matrix xin(n.weights.cols, 1);
        for (i64 f = 0; f < n.weights.cols; ++f) {
          xin.data[static_cast<std::size_t>(f)] =
              in.flat()[static_cast<std::size_t>(f)];
        }
        auto fc = kernels::gemm(dev, n.weights, xin,
                                kernels::gemm_magma_mod(), launch);
        EXPECT_TRUE(fc.output_valid);
        tensor::Tensor logits(1, n.weights.rows, 1, 1);
        for (i64 r = 0; r < n.weights.rows; ++r) {
          logits.at(0, r, 0, 0) = fc.c.data[static_cast<std::size_t>(r)];
        }
        outs[i] = std::move(logits);
        break;
      }
    }
  }
  return outs[static_cast<std::size_t>(net.graph.output_node())];
}

// --- graph construction -----------------------------------------------------

TEST(GraphBuild, RejectsOutOfRangeInputId) {
  Graph g;
  g.add_input(1, 8, 8);
  EXPECT_THROW(g.add_max_pool(5), Error);
  EXPECT_THROW(g.add_max_pool(-1), Error);
}

TEST(GraphBuild, RejectsSecondInput) {
  Graph g;
  g.add_input(1, 8, 8);
  EXPECT_THROW(g.add_input(1, 8, 8), Error);
}

TEST(GraphBuild, ShapesValidatePerNode) {
  {
    Graph g;  // bias arity != channels
    const i32 x = g.add_input(2, 8, 8);
    g.add_bias_relu(x, {0.0f, 0.0f, 0.0f});
    EXPECT_THROW(g.shapes(), Error);
  }
  {
    Graph g;  // filter channels != input channels
    const i32 x = g.add_input(3, 8, 8);
    g.add_conv(x, tensor::Tensor::filters(4, 2, 3));
    EXPECT_THROW(g.shapes(), Error);
  }
  {
    Graph g;  // dense feature count mismatch
    const i32 x = g.add_input(1, 4, 4);
    g.add_dense(x, tensor::Matrix(10, 99));
    EXPECT_THROW(g.shapes(), Error);
  }
}

TEST(GraphBuild, ShapesFollowTheLenetChain) {
  const Network net = make_network("lenet");
  const std::vector<Shape> s = net.graph.shapes();
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s[1], (Shape{8, 24, 24}));   // conv1
  EXPECT_EQ(s[3], (Shape{8, 12, 12}));   // pool1
  EXPECT_EQ(s[4], (Shape{16, 8, 8}));    // conv2
  EXPECT_EQ(s[6], (Shape{16, 4, 4}));    // pool2
  EXPECT_EQ(s[7], (Shape{10, 1, 1}));    // logits
}

// --- arena planning ---------------------------------------------------------

TEST(Arena, ChainReusesTwoSlots) {
  const Network net = make_network("lenet");
  const ArenaPlan p = plan_arena(net.graph);
  EXPECT_EQ(validate_arena_plan(net.graph, p), "");
  // A pure chain ping-pongs between producer and consumer: 2 slots for 8
  // activations is the whole point of liveness planning.
  EXPECT_EQ(p.num_slots, 2);
}

TEST(Arena, ValidatorCatchesAliasedLiveTensors) {
  const Network net = make_network("lenet");
  ArenaPlan p = plan_arena(net.graph);
  ASSERT_EQ(validate_arena_plan(net.graph, p), "");
  // Force node 1 (conv1) into node 0's slot: node 0 (the input) is still
  // live at step 1 — conv1 is reading it.
  p.slot[1] = p.slot[0];
  EXPECT_NE(validate_arena_plan(net.graph, p), "");
}

TEST(Arena, ValidatorCatchesOutOfRangeSlots) {
  const Network net = make_network("lenet");
  ArenaPlan p = plan_arena(net.graph);
  p.slot[3] = p.num_slots;  // one past the end
  EXPECT_NE(validate_arena_plan(net.graph, p), "");
  p.slot[3] = -1;
  EXPECT_NE(validate_arena_plan(net.graph, p), "");
}

TEST(Arena, FanOutHoldsSlotsUntilLastConsumer) {
  // input feeds two pools; its slot must not be recycled for the first
  // pool's output.
  Graph g;
  const i32 x = g.add_input(1, 8, 8);
  const i32 p1 = g.add_max_pool(x, "p1");
  g.add_max_pool(p1, "p2");  // chain so there is a single sink
  ArenaPlan p = plan_arena(g);
  EXPECT_EQ(validate_arena_plan(g, p), "");
  EXPECT_NE(p.slot[1], p.slot[0]);  // p1 can't overwrite its own input
}

// --- execution: byte-identity -----------------------------------------------

TEST(RunGraph, FusedMatchesUnfusedBitExact) {
  for (const char* name : {"lenet", "vgg-tiny"}) {
    const Network net = make_network(name);
    const tensor::Tensor in = make_network_input(net);
    GraphRunOptions fused, unfused;
    unfused.fuse = false;
    sim::Device d1(sim::kepler_k40m());
    sim::Device d2(sim::kepler_k40m());
    const GraphRun a = run_graph(d1, net.graph, in, fused);
    const GraphRun b = run_graph(d2, net.graph, in, unfused);
    ASSERT_TRUE(a.output_valid);
    ASSERT_TRUE(b.output_valid);
    EXPECT_TRUE(bit_equal(a.output, b.output)) << name;
    EXPECT_EQ(a.fused_pairs, 2u);
    EXPECT_EQ(b.fused_pairs, 0u);
    EXPECT_GT(a.fusion_gm_bytes_eliminated, 0.0);
    // Fusion skips the two standalone bias_relu launches.
    EXPECT_EQ(a.nodes.size() + 2, b.nodes.size());
  }
}

TEST(RunGraph, MatchesHandSequencedBitExact) {
  for (const bool fuse : {true, false}) {
    const Network net = make_network("lenet");
    const tensor::Tensor in = make_network_input(net);
    GraphRunOptions opt;
    opt.fuse = fuse;
    sim::Device dev(sim::kepler_k40m());
    const GraphRun run = run_graph(dev, net.graph, in, opt);
    ASSERT_TRUE(run.output_valid);
    EXPECT_TRUE(bit_equal(run.output, run_hand_sequenced(net, in)))
        << "fuse=" << fuse;
  }
}

TEST(RunGraph, FusedMatchesUnfusedUnderParallelLaunch) {
  const Network net = make_network("lenet");
  const tensor::Tensor in = make_network_input(net);
  GraphRunOptions serial, parallel;
  parallel.launch.num_threads = 4;
  sim::Device d1(sim::kepler_k40m());
  sim::Device d2(sim::kepler_k40m());
  const GraphRun a = run_graph(d1, net.graph, in, serial);
  const GraphRun b = run_graph(d2, net.graph, in, parallel);
  ASSERT_TRUE(a.output_valid && b.output_valid);
  EXPECT_TRUE(bit_equal(a.output, b.output));
}

TEST(RunGraph, FusedMatchesUnfusedUnderReplay) {
  const Network net = make_network("lenet");
  const tensor::Tensor in = make_network_input(net);
  GraphRunOptions fused, unfused;
  fused.launch.replay = true;
  unfused.fuse = false;
  unfused.launch.replay = true;
  sim::Device d1(sim::kepler_k40m());
  sim::Device d2(sim::kepler_k40m());
  const GraphRun a = run_graph(d1, net.graph, in, fused);
  const GraphRun b = run_graph(d2, net.graph, in, unfused);
  ASSERT_TRUE(a.output_valid && b.output_valid);
  EXPECT_TRUE(bit_equal(a.output, b.output));
}

TEST(RunGraph, WarmReplayAndAnalyticFastPaths) {
  const std::string dir = fresh_dir("warm_analytic");
  sim::PlanCache plans(dir);
  const Network net = make_network("lenet");
  const tensor::Tensor in = make_network_input(net);

  GraphRunOptions opt;
  opt.launch.plan_cache = &plans;
  opt.launch.replay = true;

  sim::Device d1(sim::kepler_k40m());
  const GraphRun cold = run_graph(d1, net.graph, in, opt);
  ASSERT_TRUE(cold.output_valid);
  EXPECT_FALSE(cold.warm);

  sim::Device d2(sim::kepler_k40m());
  const GraphRun warm = run_graph(d2, net.graph, in, opt);
  ASSERT_TRUE(warm.output_valid);
  EXPECT_TRUE(warm.warm);
  EXPECT_TRUE(bit_equal(cold.output, warm.output));
  EXPECT_EQ(cold.total_seconds, warm.total_seconds);

  // Analytic: timings served straight from the stored tapes, no outputs.
  opt.launch.analytic = true;
  sim::Device d3(sim::kepler_k40m());
  const GraphRun fast = run_graph(d3, net.graph, in, opt);
  EXPECT_TRUE(fast.analytic);
  EXPECT_FALSE(fast.output_valid);
  EXPECT_EQ(fast.total_seconds, cold.total_seconds);
  fs::remove_all(dir);
}

TEST(RunGraph, FusedLaunchesStayHazardClean) {
  // The fused epilogue adds a bias load to the conv write-back and the
  // arena aliases activation buffers across steps; kconv-check's race
  // detector and cross-block GM overlap tracker must both stay silent.
  // (Perf lints are excluded: the small lenet shapes trip pre-existing
  // advisory lints on the unfused kernels too.)
  const Network net = make_network("lenet");
  const tensor::Tensor in = make_network_input(net);
  GraphRunOptions opt;
  opt.launch.hazard_check = true;
  sim::Device dev(sim::kepler_k40m());
  const GraphRun run = run_graph(dev, net.graph, in, opt);
  ASSERT_TRUE(run.output_valid);
  for (const NodeRun& nr : run.nodes) {
    EXPECT_EQ(nr.launch.analysis.races_total, 0u) << nr.name;
    EXPECT_EQ(nr.launch.analysis.gm_overlaps_total, 0u) << nr.name;
  }
}

TEST(RunGraph, RejectsWrongInputShape) {
  const Network net = make_network("lenet");
  sim::Device dev(sim::kepler_k40m());
  EXPECT_THROW(run_graph(dev, net.graph, tensor::Tensor(1, 1, 27, 27), {}),
               Error);
}

TEST(RunGraph, ArenaPeakStaysBelowKeepEverything) {
  const Network net = make_network("lenet");
  const tensor::Tensor in = make_network_input(net);
  sim::Device dev(sim::kepler_k40m());
  const GraphRun run = run_graph(dev, net.graph, in, {});
  EXPECT_LT(run.arena_peak_bytes, run.naive_peak_bytes);
  EXPECT_EQ(run.arena_slots, 2);
}

// --- conv-level fused epilogue ----------------------------------------------

TEST(FusedEpilogue, SpecialConvMatchesSeparatePassBitExact) {
  Rng rng(21);
  tensor::Tensor img = tensor::Tensor::image(1, 20, 20);
  img.fill_random(rng, -1.0f, 1.0f);
  tensor::Tensor flt = tensor::Tensor::filters(6, 1, 5);
  flt.fill_random(rng, -0.5f, 0.5f);
  std::vector<float> bias(6);
  for (auto& b : bias) b = rng.uniform(-0.4f, 0.4f);

  sim::Device d1(sim::kepler_k40m());
  core::ConvOptions fused;
  fused.algo = core::Algo::Special;
  fused.fuse_bias_relu = bias;
  const auto a = core::conv2d(d1, img, flt, fused);
  ASSERT_TRUE(a.output_valid);

  sim::Device d2(sim::kepler_k40m());
  core::ConvOptions plain;
  plain.algo = core::Algo::Special;
  const auto c = core::conv2d(d2, img, flt, plain);
  ASSERT_TRUE(c.output_valid);
  const auto b = kernels::bias_relu(d2, c.output, bias);
  ASSERT_TRUE(b.output_valid);
  EXPECT_TRUE(bit_equal(a.output, b.output));
}

TEST(FusedEpilogue, GeneralConvMatchesSeparatePassBitExact) {
  Rng rng(22);
  tensor::Tensor img = tensor::Tensor::image(5, 16, 16);
  img.fill_random(rng, -1.0f, 1.0f);
  // F = 10 exercises the ragged filter tail (f_padded > F): the zero-padded
  // bias entries must never leak into real outputs.
  tensor::Tensor flt = tensor::Tensor::filters(10, 5, 3);
  flt.fill_random(rng, -0.5f, 0.5f);
  std::vector<float> bias(10);
  for (auto& b : bias) b = rng.uniform(-0.4f, 0.4f);

  sim::Device d1(sim::kepler_k40m());
  core::ConvOptions fused;
  fused.algo = core::Algo::General;
  fused.fuse_bias_relu = bias;
  const auto a = core::conv2d(d1, img, flt, fused);
  ASSERT_TRUE(a.output_valid);

  sim::Device d2(sim::kepler_k40m());
  core::ConvOptions plain;
  plain.algo = core::Algo::General;
  const auto c = core::conv2d(d2, img, flt, plain);
  ASSERT_TRUE(c.output_valid);
  const auto b = kernels::bias_relu(d2, c.output, bias);
  ASSERT_TRUE(b.output_valid);
  EXPECT_TRUE(bit_equal(a.output, b.output));
}

TEST(FusedEpilogue, RejectedForAlgosWithoutAnEpilogue) {
  Rng rng(23);
  tensor::Tensor img = tensor::Tensor::image(4, 12, 12);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 4, 3);
  flt.fill_random(rng);
  std::vector<float> bias(4, 0.1f);
  sim::Device dev(sim::kepler_k40m());
  core::ConvOptions opt;
  opt.algo = core::Algo::Im2colGemm;
  opt.fuse_bias_relu = bias;
  EXPECT_THROW(core::conv2d(dev, img, flt, opt), Error);
}

TEST(FusedEpilogue, PlanKeysDifferFusedVsUnfused) {
  // A fused plan replayed as an unfused launch (or vice versa) would be
  // wrong: the cache key must separate them.
  const std::string dir = fresh_dir("plan_keys");
  sim::PlanCache plans(dir);
  Rng rng(24);
  tensor::Tensor img = tensor::Tensor::image(1, 16, 16);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 1, 3);
  flt.fill_random(rng);
  std::vector<float> bias(4, 0.1f);

  core::ConvOptions opt;
  opt.algo = core::Algo::Special;
  opt.launch.plan_cache = &plans;
  opt.launch.replay = true;

  sim::Device d1(sim::kepler_k40m());
  (void)core::conv2d(d1, img, flt, opt);  // unfused: stores its plan

  opt.fuse_bias_relu = bias;
  sim::Device d2(sim::kepler_k40m());
  const auto fused = core::conv2d(d2, img, flt, opt);
  EXPECT_FALSE(fused.launch.plan_cache_hit);  // distinct key → cold
  ASSERT_TRUE(fused.output_valid);

  sim::Device d3(sim::kepler_k40m());
  const auto warm = core::conv2d(d3, img, flt, opt);
  EXPECT_TRUE(warm.launch.plan_cache_hit);
  EXPECT_TRUE(bit_equal(fused.output, warm.output));
  fs::remove_all(dir);
}

// --- networks ---------------------------------------------------------------

TEST(Networks, UnknownNameThrows) {
  EXPECT_THROW(make_network("resnet-152"), Error);
}

TEST(Networks, SameNameSameSeedIsBitIdentical) {
  const Network a = make_network("vgg-tiny");
  const Network b = make_network("vgg-tiny");
  ASSERT_EQ(a.graph.nodes().size(), b.graph.nodes().size());
  for (std::size_t i = 0; i < a.graph.nodes().size(); ++i) {
    const Node& na = a.graph.nodes()[i];
    const Node& nb = b.graph.nodes()[i];
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.bias, nb.bias);
    if (na.kind == OpKind::Conv) {
      EXPECT_TRUE(bit_equal(na.filters, nb.filters));
    }
  }
}

}  // namespace
}  // namespace kconv::serve
