// kconv-prof is purely observational: simulation outputs and every
// existing counter must be bit-identical with profiling on or off, in all
// three launch modes (serial, parallel, replay). docs/MODEL.md §7.
// Mirrors tests/analysis/identity_test.cpp for kconv-check.
#include <gtest/gtest.h>

#include "src/kernels/general_conv.hpp"
#include "src/kernels/implicit_gemm_conv.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::profile {
namespace {

void expect_same_stats(const sim::KernelStats& a, const sim::KernelStats& b) {
  EXPECT_EQ(a.fma_lane_ops, b.fma_lane_ops);
  EXPECT_EQ(a.fma_warp_instrs, b.fma_warp_instrs);
  EXPECT_EQ(a.alu_lane_ops, b.alu_lane_ops);
  EXPECT_EQ(a.smem_instrs, b.smem_instrs);
  EXPECT_EQ(a.smem_request_cycles, b.smem_request_cycles);
  EXPECT_EQ(a.smem_bytes, b.smem_bytes);
  EXPECT_EQ(a.smem_lane_bytes, b.smem_lane_bytes);
  EXPECT_EQ(a.smem_store_instrs, b.smem_store_instrs);
  EXPECT_EQ(a.smem_store_request_cycles, b.smem_store_request_cycles);
  EXPECT_EQ(a.gm_instrs, b.gm_instrs);
  EXPECT_EQ(a.gm_sectors, b.gm_sectors);
  EXPECT_EQ(a.gm_sectors_dram, b.gm_sectors_dram);
  EXPECT_EQ(a.gm_bytes_useful, b.gm_bytes_useful);
  EXPECT_EQ(a.const_instrs, b.const_instrs);
  EXPECT_EQ(a.const_requests, b.const_requests);
  EXPECT_EQ(a.const_line_misses, b.const_line_misses);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.gm_phases, b.gm_phases);
  EXPECT_EQ(a.gm_dep_phases, b.gm_dep_phases);
  EXPECT_EQ(a.divergent_retires, b.divergent_retires);
  EXPECT_EQ(a.max_warp_instrs, b.max_warp_instrs);
  EXPECT_EQ(a.blocks_executed, b.blocks_executed);
}

void expect_same_output(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (i64 n = 0; n < a.n(); ++n)
    for (i64 c = 0; c < a.c(); ++c)
      for (i64 y = 0; y < a.h(); ++y)
        for (i64 x = 0; x < a.w(); ++x)
          ASSERT_EQ(a.at(n, c, y, x), b.at(n, c, y, x));
}

struct ModeCase {
  const char* name;
  u32 threads;
  bool replay;
};

constexpr ModeCase kModes[] = {
    {"serial", 1, false},
    {"parallel", 3, false},
    {"replay", 1, true},
};

TEST(ProfileIdentity, SpecialConvBitIdenticalWithProfilingOn) {
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 20, 300);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 1, 3);
  flt.fill_random(rng);

  for (const ModeCase& m : kModes) {
    SCOPED_TRACE(m.name);
    sim::Device dev(sim::kepler_k40m());
    sim::LaunchOptions off;
    off.num_threads = m.threads;
    off.replay = m.replay;
    const auto base = kernels::special_conv(dev, img, flt, {}, off);

    sim::LaunchOptions on = off;
    on.profile = true;
    const auto profiled = kernels::special_conv(dev, img, flt, {}, on);

    expect_same_stats(base.launch.stats, profiled.launch.stats);
    EXPECT_DOUBLE_EQ(base.launch.timing.total_cycles,
                     profiled.launch.timing.total_cycles);
    ASSERT_TRUE(base.output_valid);
    ASSERT_TRUE(profiled.output_valid);
    expect_same_output(base.output, profiled.output);
    // Phase stamps are folded into the replay congruence hash either way,
    // so the class structure must not move when profiling turns on.
    EXPECT_EQ(base.launch.blocks_replayed, profiled.launch.blocks_replayed);
    EXPECT_FALSE(base.launch.profile.enabled);
    EXPECT_TRUE(base.launch.profile.timelines.empty());
    EXPECT_TRUE(profiled.launch.profile.enabled);
  }
}

TEST(ProfileIdentity, GeneralConvBitIdenticalWithProfilingOn) {
  Rng rng(11);
  tensor::Tensor img = tensor::Tensor::image(4, 12, 66);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(64, 4, 3);
  flt.fill_random(rng);

  for (const ModeCase& m : kModes) {
    SCOPED_TRACE(m.name);
    sim::Device dev(sim::kepler_k40m());
    sim::LaunchOptions off;
    off.num_threads = m.threads;
    off.replay = m.replay;
    const auto base = kernels::general_conv(dev, img, flt, {}, off);

    sim::LaunchOptions on = off;
    on.profile = true;
    const auto profiled = kernels::general_conv(dev, img, flt, {}, on);

    expect_same_stats(base.launch.stats, profiled.launch.stats);
    ASSERT_TRUE(base.output_valid);
    ASSERT_TRUE(profiled.output_valid);
    expect_same_output(base.output, profiled.output);
    EXPECT_EQ(base.launch.blocks_replayed, profiled.launch.blocks_replayed);
  }
}

TEST(ProfileIdentity, ImplicitGemmBitIdenticalWithProfilingOn) {
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(2, 14, 30);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(16, 2, 3);
  flt.fill_random(rng);

  for (const ModeCase& m : kModes) {
    SCOPED_TRACE(m.name);
    sim::Device dev(sim::kepler_k40m());
    sim::LaunchOptions off;
    off.num_threads = m.threads;
    off.replay = m.replay;
    const auto base = kernels::implicit_gemm_conv(dev, img, flt, {}, off);

    sim::LaunchOptions on = off;
    on.profile = true;
    const auto profiled = kernels::implicit_gemm_conv(dev, img, flt, {}, on);

    expect_same_stats(base.launch.stats, profiled.launch.stats);
    ASSERT_TRUE(base.output_valid);
    ASSERT_TRUE(profiled.output_valid);
    expect_same_output(base.output, profiled.output);
  }
}

TEST(ProfileIdentity, LaunchProfileEmptyWhenOff) {
  sim::Device dev(sim::kepler_k40m());
  Rng rng(3);
  tensor::Tensor img = tensor::Tensor::image(1, 12, 140);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 1, 3);
  flt.fill_random(rng);
  const auto res = kernels::special_conv(dev, img, flt, {}, {});
  EXPECT_FALSE(res.launch.profile.enabled);
  EXPECT_TRUE(res.launch.profile.timelines.empty());
  for (u32 i = 0; i < kNumPhases; ++i)
    EXPECT_TRUE(res.launch.profile.phases.p[i].empty()) << phase_name(
        static_cast<Phase>(i));
  EXPECT_EQ(res.launch.profile.hints.kind, RooflineHints::Kind::None);
}

}  // namespace
}  // namespace kconv::profile
