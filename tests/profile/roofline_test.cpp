// Roofline attribution against the paper's closed-form bounds
// (docs/MODEL.md §7): the special case's one-GM-read-per-pixel bound (§3),
// the general case's SM loads-per-FMA bound (§4), and the implicit-GEMM
// baseline's exact staging model.
#include <gtest/gtest.h>

#include <string>

#include "src/kernels/general_conv.hpp"
#include "src/kernels/implicit_gemm_conv.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/profile/roofline.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::profile {
namespace {

constexpr i64 kHi = 20, kWi = 300, kK = 3;

kernels::KernelRun profiled_special(sim::Device& dev) {
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, kHi, kWi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 1, kK);
  flt.fill_random(rng);
  sim::LaunchOptions opt;
  opt.profile = true;
  return kernels::special_conv(dev, img, flt, {}, opt);
}

TEST(Roofline, SpecialCaseReproducesOneReadPerPixelBound) {
  sim::Device dev(sim::kepler_k40m());
  const auto run = profiled_special(dev);
  const RooflineReport r = attribute_roofline(dev.arch(), run.launch.profile);

  ASSERT_EQ(r.hints.kind, RooflineHints::Kind::Special);
  EXPECT_EQ(r.hints.k, static_cast<u32>(kK));
  // Paper §3: the lower bound is one 4-byte GM read per input pixel.
  EXPECT_DOUBLE_EQ(r.hints.gm_load_bound_bytes, 4.0 * kHi * kWi);

  // The kernel meets the bound modulo the inter-tile halo: every in-tile
  // pixel is staged exactly once, only halo columns/rows re-read. For the
  // default 256x8 tile on a 20x300 image the halo overhead stays well
  // under (1 + (K-1+n)/W_tail)(1 + (K-1)/H_tail).
  EXPECT_GE(r.gm_load_ratio, 1.0);
  EXPECT_LE(r.gm_load_ratio, 1.35);
  EXPECT_GT(r.gm_load_bytes, 0.0);
}

TEST(Roofline, SpecialCaseTextReportNamesCaseAndRatio) {
  sim::Device dev(sim::kepler_k40m());
  const auto run = profiled_special(dev);
  const std::string text = format_profile(dev.arch(), run.launch.profile);
  EXPECT_NE(text.find("--- profile (per phase) ---"), std::string::npos);
  EXPECT_NE(text.find("roofline (special case):"), std::string::npos);
  EXPECT_NE(text.find("GM staging reads"), std::string::npos);
  // Every named phase of the annotated kernel shows up with a bound label.
  for (const char* phase :
       {"gm_load", "smem_stage", "sync", "compute", "writeback"}) {
    EXPECT_NE(text.find(phase), std::string::npos) << phase;
  }
  for (const PhaseAttribution& a :
       attribute_roofline(dev.arch(), run.launch.profile).phases) {
    EXPECT_TRUE(a.bound == "gm-bound" || a.bound == "sm-bound" ||
                a.bound == "bank-conflict-bound" || a.bound == "compute-bound" ||
                a.bound == "const-bound" || a.bound == "sync-bound" ||
                a.bound == "idle")
        << a.bound;
    EXPECT_GE(a.efficiency, 0.0);
    EXPECT_LE(a.efficiency, 1.0);
  }
}

TEST(Roofline, GeneralCaseSmemLoadsPerFmaMeetBound) {
  Rng rng(11);
  tensor::Tensor img = tensor::Tensor::image(4, 12, 66);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(64, 4, kK);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  sim::LaunchOptions opt;
  opt.profile = true;
  const auto run = kernels::general_conv(dev, img, flt, {}, opt);
  const RooflineReport r = attribute_roofline(dev.arch(), run.launch.profile);

  ASSERT_EQ(r.hints.kind, RooflineHints::Kind::General);
  const kernels::GeneralConvConfig cfg;  // the launch used the defaults
  EXPECT_EQ(r.hints.wt, static_cast<u32>(cfg.wt));
  EXPECT_EQ(r.hints.ft, static_cast<u32>(cfg.ft));

  // Paper §4: each thread's row of WT+K-1 staged pixels serves K rounds of
  // WT FMAs across FT filters, plus one filter element per round.
  const double wt = static_cast<double>(cfg.wt);
  const double ft = static_cast<double>(cfg.ft);
  const double bound = (wt + kK - 1) / (kK * ft * wt) + 1.0 / wt;
  EXPECT_DOUBLE_EQ(r.hints.smem_load_elems_per_fma_bound, bound);
  EXPECT_GE(r.smem_load_elems_per_fma, bound * 0.999);
  EXPECT_LE(r.smem_load_elems_per_fma, bound * 1.5);

  // Headline §4 SM-traffic reduction ratio (WT+K-1)/(WT*K).
  EXPECT_DOUBLE_EQ(r.sm_reduction_bound, (wt + kK - 1) / (wt * kK));
  // GM staging stays within a halo+filter-reload factor of its bound too.
  EXPECT_GE(r.gm_load_ratio, 1.0);
  EXPECT_LE(r.gm_load_ratio, 2.0);

  const std::string text = format_profile(dev.arch(), run.launch.profile);
  EXPECT_NE(text.find("roofline (general case):"), std::string::npos);
  EXPECT_NE(text.find("SM loads/FMA"), std::string::npos);
  EXPECT_NE(text.find("(WT+K-1)/(WT*K)"), std::string::npos);
}

TEST(Roofline, ImplicitGemmStagingModelIsExact) {
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(2, 14, 30);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(16, 2, kK);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  sim::LaunchOptions opt;
  opt.profile = true;
  const auto run = kernels::implicit_gemm_conv(dev, img, flt, {}, opt);
  const RooflineReport r = attribute_roofline(dev.arch(), run.launch.profile);

  ASSERT_EQ(r.hints.kind, RooflineHints::Kind::ImplicitGemm);
  // The hint models exactly what the staging loops read (predicated-off
  // lanes count zero bytes), so measured/bound is 1 to rounding.
  EXPECT_GT(r.hints.gm_load_bound_bytes, 0.0);
  EXPECT_NEAR(r.gm_load_ratio, 1.0, 1e-6);

  const std::string text = format_profile(dev.arch(), run.launch.profile);
  EXPECT_NE(text.find("roofline (implicit_gemm case):"), std::string::npos);
}

TEST(Roofline, PipeCyclesTotalIsMaxOfPipes) {
  sim::Device dev(sim::kepler_k40m());
  const auto run = profiled_special(dev);
  for (u32 i = 0; i < kNumPhases; ++i) {
    const PhaseStats& s = run.launch.profile.phases.p[i];
    if (s.empty()) continue;
    const PipeCycles p = phase_pipe_cycles(dev.arch(), s);
    EXPECT_GE(p.total, p.compute);
    EXPECT_GE(p.total, p.issue);
    EXPECT_GE(p.total, p.smem);
    EXPECT_GE(p.total, p.gmem);
    EXPECT_GE(p.total, p.cmem);
    EXPECT_GE(p.total, p.sync);
    EXPECT_GT(p.total, 0.0);
  }
}

}  // namespace
}  // namespace kconv::profile
