// The kconv-prof metrics registry invariant (docs/MODEL.md §7): summing a
// per-phase counter over the seven phases equals the matching launch-total
// KernelStats field, exactly, in every launch mode — and the per-phase
// roll-up itself is identical across serial, parallel (any thread count),
// and trace-replay launches.
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "src/kernels/general_conv.hpp"
#include "src/kernels/special_conv.hpp"
#include "src/tensor/tensor.hpp"

namespace kconv::profile {
namespace {

struct ModeCase {
  const char* name;
  u32 threads;
  bool replay;
};

constexpr ModeCase kModes[] = {
    {"serial", 1, false},
    {"parallel", 3, false},
    {"replay", 1, true},
};

/// Every PhaseStats field with a KernelStats counterpart must sum exactly
/// to it (smem_store_lane_bytes is profile-only and has none).
void expect_sums_to_launch_totals(const PhaseProfile& phases,
                                  const sim::KernelStats& s) {
  EXPECT_EQ(phases.total(&PhaseStats::fma_lane_ops), s.fma_lane_ops);
  EXPECT_EQ(phases.total(&PhaseStats::alu_lane_ops), s.alu_lane_ops);
  EXPECT_EQ(phases.total(&PhaseStats::smem_instrs), s.smem_instrs);
  EXPECT_EQ(phases.total(&PhaseStats::smem_request_cycles),
            s.smem_request_cycles);
  EXPECT_EQ(phases.total(&PhaseStats::smem_bytes), s.smem_bytes);
  EXPECT_EQ(phases.total(&PhaseStats::smem_lane_bytes), s.smem_lane_bytes);
  EXPECT_EQ(phases.total(&PhaseStats::smem_store_instrs), s.smem_store_instrs);
  EXPECT_EQ(phases.total(&PhaseStats::smem_store_request_cycles),
            s.smem_store_request_cycles);
  EXPECT_EQ(phases.total(&PhaseStats::gm_instrs), s.gm_instrs);
  EXPECT_EQ(phases.total(&PhaseStats::gm_sectors), s.gm_sectors);
  EXPECT_EQ(phases.total(&PhaseStats::gm_sectors_dram), s.gm_sectors_dram);
  EXPECT_EQ(phases.total(&PhaseStats::gm_bytes_useful), s.gm_bytes_useful);
  EXPECT_EQ(phases.total(&PhaseStats::const_instrs), s.const_instrs);
  EXPECT_EQ(phases.total(&PhaseStats::const_requests), s.const_requests);
  EXPECT_EQ(phases.total(&PhaseStats::const_line_misses), s.const_line_misses);
  EXPECT_EQ(phases.total(&PhaseStats::barriers), s.barriers);
  EXPECT_EQ(phases.total(&PhaseStats::pattern_lookups), s.pattern_lookups);
  EXPECT_EQ(phases.total(&PhaseStats::pattern_hits), s.pattern_hits);
}

/// Cross-mode / cross-thread-count comparison. Mirrors the determinism
/// suite's contract: the cache-warmth counters (gm_sectors_dram,
/// const_line_misses) and the pattern-cache counters depend on the chunk
/// partition (one L2 shadow / pattern cache per chunk) and on how much
/// work replay fast-forwards, so they are excluded here — the sum tests
/// above already pin them against each run's own launch totals.
void expect_same_deterministic_phase_stats(const PhaseStats& a,
                                           const PhaseStats& b) {
  EXPECT_EQ(a.fma_lane_ops, b.fma_lane_ops);
  EXPECT_EQ(a.alu_lane_ops, b.alu_lane_ops);
  EXPECT_EQ(a.smem_instrs, b.smem_instrs);
  EXPECT_EQ(a.smem_request_cycles, b.smem_request_cycles);
  EXPECT_EQ(a.smem_bytes, b.smem_bytes);
  EXPECT_EQ(a.smem_lane_bytes, b.smem_lane_bytes);
  EXPECT_EQ(a.smem_store_instrs, b.smem_store_instrs);
  EXPECT_EQ(a.smem_store_request_cycles, b.smem_store_request_cycles);
  EXPECT_EQ(a.smem_store_lane_bytes, b.smem_store_lane_bytes);
  EXPECT_EQ(a.gm_instrs, b.gm_instrs);
  EXPECT_EQ(a.gm_sectors, b.gm_sectors);
  EXPECT_EQ(a.gm_bytes_useful, b.gm_bytes_useful);
  EXPECT_EQ(a.const_instrs, b.const_instrs);
  EXPECT_EQ(a.const_requests, b.const_requests);
  EXPECT_EQ(a.barriers, b.barriers);
}

kernels::KernelRun run_special(const ModeCase& m, u64 timeline_blocks = 8) {
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 20, 300);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  sim::LaunchOptions opt;
  opt.num_threads = m.threads;
  opt.replay = m.replay;
  opt.profile = true;
  opt.profile_timeline_blocks = timeline_blocks;
  return kernels::special_conv(dev, img, flt, {}, opt);
}

kernels::KernelRun run_general(const ModeCase& m) {
  Rng rng(11);
  tensor::Tensor img = tensor::Tensor::image(4, 12, 66);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(64, 4, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  sim::LaunchOptions opt;
  opt.num_threads = m.threads;
  opt.replay = m.replay;
  opt.profile = true;
  return kernels::general_conv(dev, img, flt, {}, opt);
}

TEST(PhaseSum, SpecialConvPhaseDeltasSumToLaunchTotals) {
  for (const ModeCase& m : kModes) {
    SCOPED_TRACE(m.name);
    const auto run = run_special(m);
    ASSERT_TRUE(run.launch.profile.enabled);
    expect_sums_to_launch_totals(run.launch.profile.phases, run.launch.stats);
    // The annotated kernel leaves nothing in the default bucket: every
    // access and op lands in a named phase.
    EXPECT_TRUE(run.launch.profile.phases.at(Phase::Other).empty());
    // And the phases the paper reasons about are populated.
    EXPECT_GT(run.launch.profile.phases.at(Phase::GmLoad).gm_instrs, 0u);
    EXPECT_GT(run.launch.profile.phases.at(Phase::SmemStage).smem_store_instrs,
              0u);
    EXPECT_GT(run.launch.profile.phases.at(Phase::Compute).fma_lane_ops, 0u);
    EXPECT_GT(run.launch.profile.phases.at(Phase::Writeback).gm_instrs, 0u);
    EXPECT_GT(run.launch.profile.phases.at(Phase::Sync).barriers, 0u);
    EXPECT_EQ(run.launch.profile.phases.at(Phase::Sync).barriers,
              run.launch.stats.barriers);
  }
}

TEST(PhaseSum, GeneralConvPhaseDeltasSumToLaunchTotals) {
  for (const ModeCase& m : kModes) {
    SCOPED_TRACE(m.name);
    const auto run = run_general(m);
    ASSERT_TRUE(run.launch.profile.enabled);
    expect_sums_to_launch_totals(run.launch.profile.phases, run.launch.stats);
    EXPECT_TRUE(run.launch.profile.phases.at(Phase::Other).empty());
    // The general kernel prefetches (double buffering on by default), so
    // the prefetch phase carries real GM traffic.
    EXPECT_GT(run.launch.profile.phases.at(Phase::Prefetch).gm_instrs, 0u);
    // Compute reads shared memory but never stages into it.
    EXPECT_GT(run.launch.profile.phases.at(Phase::Compute).smem_instrs, 0u);
    EXPECT_EQ(run.launch.profile.phases.at(Phase::Compute).smem_store_instrs,
              0u);
  }
}

TEST(PhaseSum, PhaseRollupIdenticalAcrossLaunchModes) {
  const auto serial = run_special(kModes[0]);
  for (size_t i = 1; i < std::size(kModes); ++i) {
    SCOPED_TRACE(kModes[i].name);
    const auto other = run_special(kModes[i]);
    for (u32 p = 0; p < kNumPhases; ++p) {
      SCOPED_TRACE(phase_name(static_cast<Phase>(p)));
      expect_same_deterministic_phase_stats(serial.launch.profile.phases.p[p],
                              other.launch.profile.phases.p[p]);
    }
  }
}

TEST(PhaseSum, PhaseRollupThreadCountInvariant) {
  const auto one = run_special({"t1", 1, false});
  for (u32 threads : {2u, 5u}) {
    SCOPED_TRACE(threads);
    const auto many = run_special({"tN", threads, false});
    for (u32 p = 0; p < kNumPhases; ++p) {
      expect_same_deterministic_phase_stats(one.launch.profile.phases.p[p],
                              many.launch.profile.phases.p[p]);
    }
    // Timeline selection is by GLOBAL launch index, so the recorded set
    // doesn't depend on how blocks were sharded across host threads.
    ASSERT_EQ(many.launch.profile.timelines.size(),
              one.launch.profile.timelines.size());
    for (size_t i = 0; i < one.launch.profile.timelines.size(); ++i) {
      EXPECT_EQ(many.launch.profile.timelines[i].seq,
                one.launch.profile.timelines[i].seq);
    }
  }
}

TEST(PhaseSum, TimelinesCappedAndOrdered) {
  const auto run = run_special(kModes[0], /*timeline_blocks=*/3);
  const auto& tls = run.launch.profile.timelines;
  ASSERT_EQ(tls.size(), 3u);  // launch has 6 blocks, the cap wins
  for (size_t i = 0; i < tls.size(); ++i) {
    EXPECT_EQ(tls[i].seq, i);
    EXPECT_FALSE(tls[i].slices.empty());
  }
}

TEST(PhaseSum, TimelineSlicesSumToLaunchTotalsWhenAllBlocksRecorded) {
  // Record every block (6 < 100): the concatenation of all timeline
  // slices is then a partition of the launch, so slice-level counters sum
  // back to the same totals the phase roll-up does.
  const auto run = run_special(kModes[0], /*timeline_blocks=*/100);
  ASSERT_EQ(run.launch.profile.timelines.size(),
            run.launch.stats.blocks_executed);
  PhaseStats sum;
  for (const auto& tl : run.launch.profile.timelines)
    for (const PhaseSlice& sl : tl.slices) sum += sl.stats;
  const sim::KernelStats& s = run.launch.stats;
  EXPECT_EQ(sum.fma_lane_ops, s.fma_lane_ops);
  EXPECT_EQ(sum.smem_instrs, s.smem_instrs);
  EXPECT_EQ(sum.smem_request_cycles, s.smem_request_cycles);
  EXPECT_EQ(sum.smem_store_instrs, s.smem_store_instrs);
  EXPECT_EQ(sum.gm_instrs, s.gm_instrs);
  EXPECT_EQ(sum.gm_sectors, s.gm_sectors);
  EXPECT_EQ(sum.gm_bytes_useful, s.gm_bytes_useful);
  EXPECT_EQ(sum.const_instrs, s.const_instrs);
  EXPECT_EQ(sum.barriers, s.barriers);
}

TEST(PhaseSum, ReplayedBlocksRecordNoTimeline) {
  const auto run = run_special(kModes[2]);  // replay mode
  ASSERT_GT(run.launch.blocks_replayed, 0u);
  // Replayed blocks reuse their representative's profile and have no
  // retirement sequence: only live-executed blocks among the first 8 may
  // carry a timeline.
  EXPECT_LE(run.launch.profile.timelines.size(), 8u);
  u64 prev_seq = 0;
  bool first = true;
  for (const auto& tl : run.launch.profile.timelines) {
    EXPECT_LT(tl.seq, 8u);
    if (!first) {
      EXPECT_GT(tl.seq, prev_seq);
    }
    prev_seq = tl.seq;
    first = false;
    EXPECT_FALSE(tl.slices.empty());
  }
}

}  // namespace
}  // namespace kconv::profile
