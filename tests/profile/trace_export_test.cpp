// Perfetto / Chrome trace-event export sanity (docs/MODEL.md §7): the
// emitted document is valid JSON, one metadata-named track per recorded
// block, complete ("X") slices with monotonically non-decreasing
// timestamps per track, and counter ("C") tracks for GM/SM bandwidth.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/kernels/special_conv.hpp"
#include "src/profile/trace_export.hpp"
#include "src/tensor/tensor.hpp"
#include "tests/support/json_reader.hpp"

namespace kconv::profile {
namespace {

using testsupport::JsonReader;
using testsupport::JsonValue;
using testsupport::field;

std::string export_trace(sim::Arch arch, const sim::LaunchOptions& opt,
                         LaunchProfile* prof_out = nullptr) {
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 20, 300);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(arch);
  const auto run = kernels::special_conv(dev, img, flt, {}, opt);
  if (prof_out != nullptr) *prof_out = run.launch.profile;
  return chrome_trace_json(dev.arch(), run.launch.profile);
}

TEST(TraceExport, ValidJsonWithExpectedEventTypes) {
  sim::LaunchOptions opt;
  opt.profile = true;
  LaunchProfile prof;
  const std::string j = export_trace(sim::kepler_k40m(), opt, &prof);
  ASSERT_FALSE(prof.timelines.empty());

  const auto root = JsonReader(j).parse();
  ASSERT_EQ(root->type, JsonValue::Type::Object);
  EXPECT_EQ(field(*root, "displayTimeUnit").str, "ms");

  const JsonValue& events = field(*root, "traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::Array);
  ASSERT_FALSE(events.array.empty());

  std::set<std::string> ph_types;
  std::set<u64> slice_pids, meta_pids;
  std::set<std::string> slice_names;
  for (const auto& ev : events.array) {
    ASSERT_EQ(ev->type, JsonValue::Type::Object);
    const std::string ph = field(*ev, "ph").str;
    ph_types.insert(ph);
    const u64 pid = static_cast<u64>(field(*ev, "pid").number);
    if (ph == "M") {
      meta_pids.insert(pid);
      EXPECT_EQ(field(*ev, "args").type, JsonValue::Type::Object);
    } else if (ph == "X") {
      slice_pids.insert(pid);
      slice_names.insert(field(*ev, "name").str);
      EXPECT_GE(field(*ev, "dur").number, 0.0);
      const JsonValue& args = field(*ev, "args");
      for (const char* key : {"gm_sectors", "smem_request_cycles",
                              "const_requests", "fma_lane_ops", "barriers"}) {
        EXPECT_EQ(field(args, key).type, JsonValue::Type::Number) << key;
      }
    } else {
      ASSERT_EQ(ph, "C");
      EXPECT_EQ(field(field(*ev, "args"), "value").type,
                JsonValue::Type::Number);
    }
  }
  EXPECT_EQ(ph_types, (std::set<std::string>{"M", "X", "C"}));
  // One slice track per recorded timeline, and every track is named.
  EXPECT_EQ(slice_pids.size(), prof.timelines.size());
  EXPECT_EQ(meta_pids, slice_pids);
  // Slices are named after phases of the taxonomy.
  for (const std::string& n : slice_names) {
    EXPECT_TRUE(n == "gm_load" || n == "smem_stage" || n == "sync" ||
                n == "compute" || n == "writeback" || n == "prefetch" ||
                n == "other")
        << n;
  }
  EXPECT_TRUE(slice_names.count("compute")) << "no compute slice recorded";
}

TEST(TraceExport, TimestampsMonotonePerTrack) {
  sim::LaunchOptions opt;
  opt.profile = true;
  const std::string j = export_trace(sim::kepler_k40m(), opt);
  const auto root = JsonReader(j).parse();

  // Per (pid, tid, phase-type) cursor; "X" slices must also not overlap:
  // the next slice starts at or after the previous one's end.
  std::map<std::pair<u64, std::string>, double> cursor;
  for (const auto& ev : field(*root, "traceEvents").array) {
    const std::string ph = field(*ev, "ph").str;
    if (ph == "M") continue;
    const u64 pid = static_cast<u64>(field(*ev, "pid").number);
    const double ts = field(*ev, "ts").number;
    const auto key = std::make_pair(pid, ph);
    const auto it = cursor.find(key);
    if (it != cursor.end()) {
      // ts and dur are printed with 6 decimals each; allow their combined
      // rounding when comparing the parsed-back values.
      EXPECT_GE(ts, it->second - 2e-6) << "pid " << pid << " ph " << ph;
    }
    cursor[key] = ph == "X" ? ts + field(*ev, "dur").number : ts;
  }
}

TEST(TraceExport, EmptyProfileYieldsEmptyEventArray) {
  LaunchProfile prof;  // disabled, no timelines
  const auto root =
      JsonReader(chrome_trace_json(sim::kepler_k40m(), prof)).parse();
  EXPECT_TRUE(field(*root, "traceEvents").array.empty());
}

TEST(TraceExport, RespectsTimelineBlockCap) {
  sim::LaunchOptions opt;
  opt.profile = true;
  opt.profile_timeline_blocks = 2;
  LaunchProfile prof;
  const std::string j = export_trace(sim::kepler_k40m(), opt, &prof);
  ASSERT_EQ(prof.timelines.size(), 2u);
  const auto root = JsonReader(j).parse();
  std::set<u64> pids;
  for (const auto& ev : field(*root, "traceEvents").array)
    pids.insert(static_cast<u64>(field(*ev, "pid").number));
  EXPECT_EQ(pids.size(), 2u);
}

}  // namespace
}  // namespace kconv::profile
