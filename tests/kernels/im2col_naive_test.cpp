#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/kernels/im2col_conv.hpp"
#include "src/kernels/naive_conv.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {
namespace {

struct BShape {
  i64 k, c, f, hi, wi;
};

class BaselineCorrectness : public ::testing::TestWithParam<BShape> {};

TEST_P(BaselineCorrectness, Im2colGemmMatchesReference) {
  const BShape s = GetParam();
  Rng rng(411);
  tensor::Tensor img = tensor::Tensor::image(s.c, s.hi, s.wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(s.f, s.c, s.k);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = im2col_gemm_conv(dev, img, flt);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output,
                               tensor::conv2d_reference(img, flt), 2e-4,
                               2e-4));
}

TEST_P(BaselineCorrectness, NaiveMatchesReference) {
  const BShape s = GetParam();
  Rng rng(412);
  tensor::Tensor img = tensor::Tensor::image(s.c, s.hi, s.wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(s.f, s.c, s.k);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = naive_conv(dev, img, flt);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output,
                               tensor::conv2d_reference(img, flt), 2e-4,
                               2e-4));
}

INSTANTIATE_TEST_SUITE_P(Shapes, BaselineCorrectness,
                         ::testing::Values(BShape{3, 2, 4, 14, 18},
                                           BShape{1, 3, 2, 8, 8},
                                           BShape{5, 1, 6, 16, 12},
                                           BShape{7, 2, 2, 18, 18},
                                           BShape{3, 4, 8, 33, 9}));

TEST(Im2colGemm, WorkspaceBytesMatchFormula) {
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(3, 12, 10);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(2, 3, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = im2col_gemm_conv(dev, img, flt);
  // (C*K*K) x (Ho*Wo) floats — "a huge amount of additional memory".
  EXPECT_EQ(run.workspace_bytes, 3ull * 9 * 10 * 8 * 4);
}

TEST(Im2colGemm, TotalTimeIncludesBothLaunches) {
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(2, 16, 16);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 2, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = im2col_gemm_conv(dev, img, flt);
  EXPECT_GT(run.im2col_launch.timing.seconds, 0.0);
  EXPECT_GT(run.gemm_launch.timing.seconds, 0.0);
  EXPECT_NEAR(run.seconds(), run.im2col_launch.timing.seconds +
                                 run.gemm_launch.timing.seconds,
              1e-12);
  EXPECT_LT(run.gflops(), run.gemm_launch.timing.gflops);
}

TEST(Naive, ReReadsInputManyTimes) {
  // The naive kernel's defining sin: GM read traffic ~ K*K*F times the
  // input size (L2 absorbs most, but the requests are issued).
  Rng rng(6);
  tensor::Tensor img = tensor::Tensor::image(1, 20, 20);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = naive_conv(dev, img, flt);
  const double input_bytes = 20.0 * 20 * 4;
  // Useful GM bytes include 2 loads (pixel+weight) per MAC plus stores.
  EXPECT_GT(static_cast<double>(run.launch.stats.gm_bytes_useful),
            10.0 * input_bytes);
}

}  // namespace
}  // namespace kconv::kernels
