#include "src/kernels/gemm_kernels.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/gemm_ref.hpp"

namespace kconv::kernels {
namespace {

tensor::Matrix random_matrix(i64 r, i64 c, u64 seed) {
  Rng rng(seed);
  tensor::Matrix m(r, c);
  for (auto& v : m.data) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

void expect_matches_reference(const tensor::Matrix& a,
                              const tensor::Matrix& b,
                              const GemmConfig& cfg) {
  sim::Device dev(sim::kepler_k40m());
  const auto run = gemm(dev, a, b, cfg);
  ASSERT_TRUE(run.output_valid);
  const tensor::Matrix ref = tensor::gemm_reference(a, b);
  for (std::size_t i = 0; i < ref.data.size(); ++i) {
    ASSERT_NEAR(run.c.data[i], ref.data[i], 2e-4f) << "at " << i;
  }
}

class GemmPresets : public ::testing::TestWithParam<int> {};

GemmConfig preset(int which) {
  switch (which) {
    case 0: return gemm_cublas_like();
    case 1: return gemm_magma_fermi();
    default: return gemm_magma_mod();
  }
}

TEST_P(GemmPresets, SquareMatchesReference) {
  expect_matches_reference(random_matrix(96, 96, 1), random_matrix(96, 96, 2),
                           preset(GetParam()));
}

TEST_P(GemmPresets, RaggedShapesMatchReference) {
  expect_matches_reference(random_matrix(70, 33, 3), random_matrix(33, 101, 4),
                           preset(GetParam()));
}

TEST_P(GemmPresets, SkinnyInnerDimension) {
  // The degenerate Kdim regime the special-case convolution hits.
  expect_matches_reference(random_matrix(64, 5, 5), random_matrix(5, 130, 6),
                           preset(GetParam()));
}

TEST_P(GemmPresets, TinyProblem) {
  expect_matches_reference(random_matrix(3, 3, 7), random_matrix(3, 3, 8),
                           preset(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, GemmPresets, ::testing::Values(0, 1, 2));

TEST(Gemm, NoPrefetchVariantStillCorrect) {
  GemmConfig cfg = gemm_magma_mod();
  cfg.prefetch = false;
  expect_matches_reference(random_matrix(80, 48, 9), random_matrix(48, 72, 10),
                           cfg);
}

TEST(Gemm, ShapeMismatchThrows) {
  sim::Device dev(sim::kepler_k40m());
  EXPECT_THROW(gemm(dev, random_matrix(4, 5, 1), random_matrix(6, 4, 2), {}),
               Error);
}

TEST(Gemm, BadMicroTileThrows) {
  sim::Device dev(sim::kepler_k40m());
  GemmConfig cfg;
  cfg.tm = 3;  // not a multiple of the matched width 2
  EXPECT_THROW(
      gemm(dev, random_matrix(8, 8, 1), random_matrix(8, 8, 2), cfg), Error);
}

// --- Fig. 2's ordering, as model predictions ---------------------------------

TEST(Gemm, Fig2OrderingCublasFastestMagmaSlowest) {
  const auto a = random_matrix(576, 576, 11);
  const auto b = random_matrix(576, 576, 12);
  sim::LaunchOptions opt;
  opt.sample_max_blocks = 2;

  auto time_of = [&](const GemmConfig& cfg) {
    sim::Device dev(sim::kepler_k40m());
    return gemm(dev, a, b, cfg, opt).launch.timing.seconds;
  };
  const double t_cublas = time_of(gemm_cublas_like());
  const double t_magma = time_of(gemm_magma_fermi());
  const double t_mod = time_of(gemm_magma_mod());

  EXPECT_LT(t_cublas, t_mod * 1.02);  // cublas-like fastest (or ties mod)
  EXPECT_LT(t_mod, t_magma);          // the paper's fix helps
  // The paper: MAGMA ~2.4x slower than cuBLAS on Kepler; the bank-width
  // component alone should put it at >= 1.5x in the model.
  EXPECT_GT(t_magma / t_cublas, 1.5);
  // And the fix saves a large fraction of MAGMA's time (paper: 36%).
  EXPECT_LT(t_mod / t_magma, 0.8);
}

TEST(Gemm, MagmaScalarKernelConflictFreeOnBothBankWidths) {
  // The MAGMA kernel's scalar fragment reads are conflict-free on Fermi
  // AND on Kepler — the Kepler penalty is not replays but that each
  // request cycle moves only half the available bank width, which shows up
  // as the instruction-count gap the mod variant closes (Fig2Ordering).
  const auto a = random_matrix(256, 256, 13);
  const auto b = random_matrix(256, 256, 14);
  sim::LaunchOptions opt;
  opt.sample_max_blocks = 2;

  sim::Device fermi(sim::fermi_m2090());
  const auto on_fermi = gemm(fermi, a, b, gemm_magma_fermi(), opt);
  EXPECT_LE(on_fermi.launch.stats.smem_replay_factor(), 1.05);

  sim::Device kepler(sim::kepler_k40m());
  const auto on_kepler = gemm(kepler, a, b, gemm_magma_fermi(), opt);
  EXPECT_LE(on_kepler.launch.stats.smem_replay_factor(), 1.05);
  // Identical kernel, near-identical request-cycle count on both (the
  // transpose padding is one bank word, whose size differs slightly): the
  // Kepler loss is bandwidth per cycle, not extra cycles per instruction.
  EXPECT_NEAR(static_cast<double>(on_kepler.launch.stats.smem_request_cycles),
              static_cast<double>(on_fermi.launch.stats.smem_request_cycles),
              0.05 * static_cast<double>(on_fermi.launch.stats.smem_request_cycles));

  // The mod (float2) variant halves the fragment instructions on Kepler.
  const auto mod = gemm(kepler, a, b, gemm_magma_mod(), opt);
  EXPECT_LT(static_cast<double>(mod.launch.stats.smem_request_cycles),
            0.7 * static_cast<double>(on_kepler.launch.stats.smem_request_cycles));
}

}  // namespace
}  // namespace kconv::kernels
