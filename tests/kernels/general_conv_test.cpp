// Functional, ablation and traffic tests for the paper's general-case
// kernel (Algorithm 2).
#include "src/kernels/general_conv.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {
namespace {

struct GShape {
  i64 k, c, f, hi, wi;
  GeneralConvConfig cfg;
};

GeneralConvConfig small_cfg(i64 w, i64 h, i64 ftb, i64 wt, i64 ft, i64 csh) {
  GeneralConvConfig c;
  c.block_w = w;
  c.block_h = h;
  c.ftb = ftb;
  c.wt = wt;
  c.ft = ft;
  c.csh = csh;
  return c;
}

class GeneralConvCorrectness : public ::testing::TestWithParam<GShape> {};

TEST_P(GeneralConvCorrectness, MatchesReference) {
  const GShape s = GetParam();
  Rng rng(211);
  tensor::Tensor img = tensor::Tensor::image(s.c, s.hi, s.wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(s.f, s.c, s.k);
  flt.fill_random(rng);
  const tensor::Tensor ref = tensor::conv2d_reference(img, flt);

  sim::Device dev(sim::kepler_k40m());
  const auto run = general_conv(dev, img, flt, s.cfg);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output, ref, 2e-4, 2e-4))
      << tensor::diff(run.output, ref).max_abs;
}

GShape ablate(GShape s, bool pad, bool prefetch, i64 vec) {
  s.cfg.pad_filters = pad;
  s.cfg.prefetch = prefetch;
  s.cfg.vec_width = vec;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneralConvCorrectness,
    ::testing::Values(
        // Filter sizes of Fig. 8 (3, 5, 7) plus 1x1.
        GShape{3, 4, 8, 18, 20, small_cfg(16, 4, 8, 8, 4, 2)},
        GShape{5, 2, 16, 20, 20, small_cfg(8, 4, 16, 4, 8, 1)},
        GShape{7, 2, 8, 22, 22, small_cfg(8, 4, 8, 4, 4, 1)},
        GShape{1, 4, 8, 12, 12, small_cfg(8, 2, 8, 4, 4, 2)},
        // Sizes that do not divide the tile (edge predication).
        GShape{3, 2, 8, 17, 23, small_cfg(16, 4, 8, 8, 4, 2)},
        GShape{5, 3, 8, 25, 19, small_cfg(8, 4, 8, 4, 4, 3)},
        // CSH sweeps: 1, 2, 4 staged channels.
        GShape{3, 4, 8, 16, 16, small_cfg(8, 4, 8, 4, 4, 1)},
        GShape{3, 4, 8, 16, 16, small_cfg(8, 4, 8, 4, 4, 4)},
        // Multiple filter groups in grid X.
        GShape{3, 2, 16, 14, 14, small_cfg(8, 4, 8, 4, 4, 2)},
        // WT spanning multiple SM vec units, FT = n.
        GShape{3, 2, 4, 18, 34, small_cfg(16, 4, 4, 16, 2, 1)},
        // Ablations: unmatched, no padding, no prefetch, all off.
        ablate(GShape{3, 4, 8, 18, 20, small_cfg(16, 4, 8, 8, 4, 2)}, true,
               true, 1),
        ablate(GShape{3, 4, 8, 18, 20, small_cfg(16, 4, 8, 8, 4, 2)}, false,
               true, 0),
        ablate(GShape{5, 2, 16, 20, 20, small_cfg(8, 4, 16, 4, 8, 1)}, true,
               false, 0),
        ablate(GShape{3, 4, 8, 18, 20, small_cfg(16, 4, 8, 8, 4, 2)}, false,
               false, 1)));

TEST(GeneralConv, Table1ConfigsRunOnPaperLikeShapes) {
  Rng rng(5);
  for (const i64 k : {3, 5, 7}) {
    const auto cfg = table1_config(k);
    tensor::Tensor img = tensor::Tensor::image(4, 40, 70);
    img.fill_random(rng);
    tensor::Tensor flt =
        tensor::Tensor::filters(cfg.ftb, 4, k);  // one filter group
    flt.fill_random(rng);
    sim::Device dev(sim::kepler_k40m());
    const auto run = general_conv(dev, img, flt, cfg);
    ASSERT_TRUE(run.output_valid);
    EXPECT_TRUE(tensor::allclose(run.output,
                                 tensor::conv2d_reference(img, flt), 2e-4,
                                 2e-4))
        << "K=" << k;
  }
}

TEST(GeneralConv, Table1MatchesPaperValues) {
  const auto k3 = table1_config(3);
  EXPECT_EQ(k3.block_w, 32);
  EXPECT_EQ(k3.block_h, 4);
  EXPECT_EQ(k3.ftb, 64);
  EXPECT_EQ(k3.wt, 16);
  EXPECT_EQ(k3.ft, 4);
  EXPECT_EQ(k3.csh, 2);
  const auto k5 = table1_config(5);
  EXPECT_EQ(k5.block_w, 32);
  EXPECT_EQ(k5.block_h, 8);
  EXPECT_EQ(k5.ftb, 32);
  const auto k7 = table1_config(7);
  EXPECT_EQ(k7.block_w, 64);
  EXPECT_EQ(k7.block_h, 4);
  EXPECT_THROW(table1_config(4), Error);
}

TEST(GeneralConv, RejectsIndivisibleShapes) {
  sim::Device dev(sim::kepler_k40m());
  Rng rng(1);
  tensor::Tensor img = tensor::Tensor::image(3, 16, 16);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 3, 3);
  flt.fill_random(rng);
  {
    auto cfg = small_cfg(8, 4, 8, 4, 4, 2);  // C=3 % CSH=2 != 0
    EXPECT_THROW(general_conv(dev, img, flt, cfg), Error);
  }
  {
    auto cfg = small_cfg(8, 4, 16, 4, 4, 1);  // F=8 % FTB=16 != 0
    EXPECT_THROW(general_conv(dev, img, flt, cfg), Error);
  }
  {
    auto cfg = small_cfg(8, 4, 8, 3, 4, 1);  // WT=3 not multiple of n=2
    EXPECT_THROW(general_conv(dev, img, flt, cfg), Error);
  }
  {
    auto cfg = small_cfg(10, 4, 8, 4, 4, 1);  // W=10 not multiple of 4
    EXPECT_THROW(general_conv(dev, img, flt, cfg), Error);
  }
  {
    auto cfg = small_cfg(8, 4, 8, 4, 3, 1);  // FTB=8 % FT=3 != 0
    EXPECT_THROW(general_conv(dev, img, flt, cfg), Error);
  }
}

// --- Ablation/traffic assertions from §4.2 -----------------------------------

tensor::Tensor test_image(i64 c, i64 n, u64 seed) {
  Rng rng(seed);
  tensor::Tensor t = tensor::Tensor::image(c, n, n);
  t.fill_random(rng);
  return t;
}

TEST(GeneralConv, FilterPaddingRemovesBankConflicts) {
  // The paper's Fig. 6 gray box: without padding, the transposed filter
  // stores hit one bank; the replay factor jumps.
  tensor::Tensor img = test_image(8, 20, 3);
  Rng rng(4);
  tensor::Tensor flt = tensor::Tensor::filters(32, 8, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  auto cfg = small_cfg(16, 4, 32, 8, 4, 2);
  const auto padded = general_conv(dev, img, flt, cfg);
  cfg.pad_filters = false;
  const auto bare = general_conv(dev, img, flt, cfg);
  EXPECT_GT(bare.launch.stats.smem_replay_factor(),
            padded.launch.stats.smem_replay_factor() * 1.5);
  EXPECT_TRUE(tensor::allclose(padded.output, bare.output));
}

TEST(GeneralConv, PrefetchRemovesDependentPhases) {
  tensor::Tensor img = test_image(8, 20, 5);
  Rng rng(6);
  tensor::Tensor flt = tensor::Tensor::filters(8, 8, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  auto cfg = small_cfg(16, 4, 8, 8, 4, 2);
  const auto with = general_conv(dev, img, flt, cfg);
  cfg.prefetch = false;
  const auto without = general_conv(dev, img, flt, cfg);
  // With prefetch: 1 dependent phase per block (initial fill). Without:
  // one per channel step.
  EXPECT_EQ(with.launch.stats.gm_dep_phases,
            with.launch.stats.blocks_executed);
  EXPECT_GT(without.launch.stats.gm_dep_phases,
            with.launch.stats.gm_dep_phases * 2);
  EXPECT_TRUE(tensor::allclose(with.output, without.output));
}

TEST(GeneralConv, SmemImageTrafficFollowsWtFormula) {
  // §4.2: image pixels read from SM per output = (WT+K-1)/WT per round,
  // so halving WT raises per-output SM image traffic according to
  // (WT+K-1)/(WT*K). We compare two WT settings against the closed form.
  tensor::Tensor img = test_image(4, 36, 9);
  Rng rng(8);
  tensor::Tensor flt = tensor::Tensor::filters(8, 4, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const i64 k = 3;

  auto measure = [&](i64 wt) {
    auto cfg = small_cfg(16, 4, 8, wt, 4, 2);
    const auto run = general_conv(dev, img, flt, cfg);
    // Count SM *load* bytes attributable to image rows: approximate by
    // lane bytes via instrs; instead use total request bytes and subtract
    // nothing — the filter-read traffic is identical across WT settings,
    // so the DIFFERENCE tracks the image term.
    return static_cast<double>(run.launch.stats.smem_bytes);
  };
  const double b16 = measure(16);
  const double b4 = measure(4);
  // Expected image-read ratio per §4.2: ((4+2)/(4*3)) / ((16+2)/(16*3)) =
  // 0.5/0.375 = 1.33x more image traffic at WT=4; with equal filter and
  // staging traffic the total ratio sits between 1 and 1.33.
  EXPECT_GT(b4, b16 * 1.02);
  EXPECT_LT(b4, b16 * 1.4);
  (void)k;
}

TEST(GeneralConv, GlobalImageTrafficNearOnePassPerChannelBlock) {
  // Each block stages each of its C channel tiles exactly once (plus
  // halo): GM image loads ~= blocks * C * (W+K-1)(H+K-1).
  tensor::Tensor img = test_image(8, 32, 10);
  Rng rng(10);
  tensor::Tensor flt = tensor::Tensor::filters(8, 8, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  auto cfg = small_cfg(16, 4, 8, 8, 4, 2);
  const auto run = general_conv(dev, img, flt, cfg);

  const double blocks = 2.0 * 8.0;  // (30/16)->2 x (30/4)->8 spatial tiles
  const double img_px = blocks * 8 * (16 + 2) * (4 + 2);
  const double flt_px = blocks * 8.0 * 9 * 8;       // C*KK*FTB per block
  const double out_px = 8.0 * 30 * 30;              // stores
  const double expected_bytes = (img_px + flt_px + out_px) * 4.0;
  const double measured =
      static_cast<double>(run.launch.stats.gm_bytes_useful);
  EXPECT_NEAR(measured / expected_bytes, 1.0, 0.15);
}

TEST(GeneralConv, UnmatchedNeedsMoreSmemCyclesPerByte) {
  tensor::Tensor img = test_image(8, 24, 11);
  Rng rng(12);
  tensor::Tensor flt = tensor::Tensor::filters(8, 8, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  auto cfg = small_cfg(16, 4, 8, 8, 4, 2);
  const auto matched = general_conv(dev, img, flt, cfg);
  cfg.vec_width = 1;
  const auto unmatched = general_conv(dev, img, flt, cfg);
  const double cm = static_cast<double>(matched.launch.stats.smem_bytes) /
                    matched.launch.stats.smem_request_cycles;
  const double cu = static_cast<double>(unmatched.launch.stats.smem_bytes) /
                    unmatched.launch.stats.smem_request_cycles;
  EXPECT_GT(cm, cu * 1.5);  // ~2x in the limit; staging dilutes slightly
}

}  // namespace
}  // namespace kconv::kernels
