#include "src/kernels/device_tensor.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"

namespace kconv::kernels {
namespace {

TEST(DevicePlanesTest, PitchIsAlignedPerElementType) {
  sim::Device dev(sim::kepler_k40m());
  DevicePlanesT<float> f(dev, 1, 4, 5);
  EXPECT_EQ(f.view().pitch, 8);  // round_up(5, 4)
  DevicePlanesT<f16> h(dev, 1, 4, 5);
  EXPECT_EQ(h.view().pitch, 8);  // round_up(5, 8)
  DevicePlanesT<i8q> b(dev, 1, 4, 5);
  EXPECT_EQ(b.view().pitch, 16);  // round_up(5, 16)
}

TEST(DevicePlanesTest, UploadDownloadRoundTrip) {
  sim::Device dev(sim::kepler_k40m());
  Rng rng(3);
  tensor::Tensor t = tensor::Tensor::image(3, 6, 7);
  t.fill_random(rng);
  DevicePlanes planes(dev, 3, 6, 7);
  planes.upload(t);
  EXPECT_TRUE(planes.download() == t);
}

TEST(DevicePlanesTest, F16RoundTripQuantizes) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor t = tensor::Tensor::image(1, 2, 2);
  t.at(0, 0, 0, 0) = 1.0f;        // exact in half
  t.at(0, 0, 0, 1) = 0.1f;        // rounds
  DevicePlanesT<f16> planes(dev, 1, 2, 2);
  planes.upload(t);
  const tensor::Tensor back = planes.download();
  EXPECT_EQ(back.at(0, 0, 0, 0), 1.0f);
  EXPECT_NE(back.at(0, 0, 0, 1), 0.1f);  // not exactly representable
  EXPECT_NEAR(back.at(0, 0, 0, 1), 0.1f, 1e-4f);
}

TEST(DevicePlanesTest, IndexMathUsesPitch) {
  sim::Device dev(sim::kepler_k40m());
  DevicePlanes planes(dev, 2, 3, 5);
  const auto& v = planes.view();
  EXPECT_EQ(v.idx(0, 0, 0), 0);
  EXPECT_EQ(v.idx(0, 1, 0), v.pitch);
  EXPECT_EQ(v.idx(1, 0, 0), 3 * v.pitch);
}

TEST(DevicePlanesTest, ShapeMismatchOnUploadThrows) {
  sim::Device dev(sim::kepler_k40m());
  DevicePlanes planes(dev, 2, 3, 5);
  tensor::Tensor wrong = tensor::Tensor::image(2, 3, 6);
  EXPECT_THROW(planes.upload(wrong), Error);
}

TEST(DevicePlanesTest, EmptyAllocationRejected) {
  sim::Device dev(sim::kepler_k40m());
  EXPECT_THROW(DevicePlanes(dev, 0, 3, 5), Error);
}

TEST(FlattenFilters, FilterMajorOrder) {
  tensor::Tensor flt = tensor::Tensor::filters(2, 3, 3);
  flt.at(1, 2, 0, 1) = 7.0f;
  const auto flat = flatten_filters(flt);
  ASSERT_EQ(flat.size(), 2u * 3 * 9);
  // Index of (f=1, c=2, y=0, x=1): ((1*3+2)*3+0)*3+1 = 46.
  EXPECT_EQ(flat[46], 7.0f);
}

}  // namespace
}  // namespace kconv::kernels
