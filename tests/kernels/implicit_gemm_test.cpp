#include "src/kernels/implicit_gemm_conv.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {
namespace {

struct IShape {
  i64 k, c, f, hi, wi;
};

class ImplicitGemmCorrectness : public ::testing::TestWithParam<IShape> {};

TEST_P(ImplicitGemmCorrectness, MatchesReference) {
  const IShape s = GetParam();
  Rng rng(311);
  tensor::Tensor img = tensor::Tensor::image(s.c, s.hi, s.wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(s.f, s.c, s.k);
  flt.fill_random(rng);
  const tensor::Tensor ref = tensor::conv2d_reference(img, flt);

  sim::Device dev(sim::kepler_k40m());
  ImplicitGemmConfig cfg;  // small default 64x64x8 tiles
  const auto run = implicit_gemm_conv(dev, img, flt, cfg);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output, ref, 2e-4, 2e-4))
      << tensor::diff(run.output, ref).max_abs;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ImplicitGemmCorrectness,
    ::testing::Values(IShape{3, 4, 8, 16, 20},   // multi-channel
                      IShape{3, 1, 6, 18, 18},   // special case C=1
                      IShape{5, 2, 4, 20, 14},   // K=5
                      IShape{1, 3, 8, 10, 10},   // pointwise
                      IShape{7, 2, 4, 16, 16},   // K=7
                      IShape{3, 2, 70, 9, 9},    // F > tile rows
                      IShape{3, 2, 4, 40, 7}));  // pixels spanning rows

TEST(ImplicitGemm, CudnnAutoConfigUsesRigidTiles) {
  const auto cfg = implicit_gemm_auto_config(256, 64, 3);
  EXPECT_EQ(cfg.bk, 32);
  EXPECT_EQ(cfg.bm, 128);
}

TEST(ImplicitGemm, AutoConfigRunsCorrectly) {
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(2, 14, 14);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 2, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = implicit_gemm_conv(dev, img, flt,
                                      implicit_gemm_auto_config(8, 2, 3));
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output,
                               tensor::conv2d_reference(img, flt), 2e-4,
                               2e-4));
}

TEST(ImplicitGemm, ZeroPaddedDepthWastesFlops) {
  // With C=1, K=3 the real depth is 9 but the rigid 32-slab computes 32:
  // executed FMA ~= (32/9) x useful — measurable in the stats and the
  // mechanism behind cuDNN's special-case collapse in Fig. 7.
  Rng rng(6);
  tensor::Tensor img = tensor::Tensor::image(1, 34, 34);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = implicit_gemm_conv(dev, img, flt,
                                      implicit_gemm_auto_config(8, 1, 3));
  const double useful = 2.0 * 32 * 32 * 9 * 8;
  const double executed = run.launch.stats.flops();
  // Padding waste: both the K-depth (32 vs 9) and the M-tile (128 vs 8).
  EXPECT_GT(executed / useful, 3.0);
}

TEST(ImplicitGemm, RejectsBadConfig) {
  sim::Device dev(sim::kepler_k40m());
  Rng rng(2);
  tensor::Tensor img = tensor::Tensor::image(2, 10, 10);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 2, 3);
  flt.fill_random(rng);
  ImplicitGemmConfig cfg;
  cfg.tm = 5;  // not a multiple of matched width
  EXPECT_THROW(implicit_gemm_conv(dev, img, flt, cfg), Error);
}

TEST(ImplicitGemm, ChannelMismatchThrows) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(2, 10, 10);
  tensor::Tensor flt = tensor::Tensor::filters(4, 3, 3);
  EXPECT_THROW(implicit_gemm_conv(dev, img, flt), Error);
}

}  // namespace
}  // namespace kconv::kernels
