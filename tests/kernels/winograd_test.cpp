#include "src/kernels/winograd_conv.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"
#include "src/tensor/winograd_ref.hpp"

namespace kconv::kernels {
namespace {

// --- The transform algebra itself ------------------------------------------

TEST(WinogradRef, SingleTileMatchesDirectConvolution) {
  // One 4x4 tile, one 3x3 filter: the Winograd identity, checked directly.
  Rng rng(3);
  float d[16], g[9];
  for (auto& x : d) x = rng.uniform(-1, 1);
  for (auto& x : g) x = rng.uniform(-1, 1);
  float v[16], u[16], m[16], y[4];
  tensor::winograd_input_transform(d, v);
  tensor::winograd_filter_transform(g, u);
  for (int i = 0; i < 16; ++i) m[i] = u[i] * v[i];
  tensor::winograd_output_transform(m, y);

  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      float direct = 0.0f;
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          direct += d[(oy + ky) * 4 + ox + kx] * g[ky * 3 + kx];
      EXPECT_NEAR(y[oy * 2 + ox], direct, 1e-5f);
    }
  }
}

TEST(WinogradRef, DeltaFilterTransformsToIdentityResponse) {
  // A centered delta filter must make Winograd behave like a shift.
  float g[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  float u[16];
  tensor::winograd_filter_transform(g, u);
  float d[16] = {};
  d[1 * 4 + 1] = 5.0f;  // value at the center of the first output's window
  float v[16], m[16], y[4];
  tensor::winograd_input_transform(d, v);
  for (int i = 0; i < 16; ++i) m[i] = u[i] * v[i];
  tensor::winograd_output_transform(m, y);
  EXPECT_NEAR(y[0], 5.0f, 1e-5f);
}

class WinogradRefShapes
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64>> {};

TEST_P(WinogradRefShapes, MatchesConvReference) {
  const auto [c, f, hi, wi] = GetParam();
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(c, hi, wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, 3);
  flt.fill_random(rng);
  EXPECT_TRUE(tensor::allclose(tensor::winograd_conv_reference(img, flt),
                               tensor::conv2d_reference(img, flt), 2e-4,
                               2e-4));
}

INSTANTIATE_TEST_SUITE_P(Shapes, WinogradRefShapes,
                         ::testing::Values(std::make_tuple(1, 1, 6, 6),
                                           std::make_tuple(3, 2, 9, 7),
                                           std::make_tuple(2, 4, 10, 10),
                                           std::make_tuple(4, 3, 13, 11)));

// --- The device pipeline -----------------------------------------------------

class WinogradDeviceShapes
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64>> {};

TEST_P(WinogradDeviceShapes, MatchesConvReference) {
  const auto [c, f, hi, wi] = GetParam();
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(c, hi, wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = winograd_conv(dev, img, flt);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output,
                               tensor::conv2d_reference(img, flt), 5e-4,
                               5e-4))
      << tensor::diff(run.output, tensor::conv2d_reference(img, flt)).max_abs;
}

INSTANTIATE_TEST_SUITE_P(Shapes, WinogradDeviceShapes,
                         ::testing::Values(std::make_tuple(2, 4, 10, 10),
                                           std::make_tuple(3, 2, 9, 13),
                                           std::make_tuple(4, 8, 18, 18),
                                           std::make_tuple(1, 1, 4, 4),
                                           std::make_tuple(2, 2, 11, 7)));

TEST(WinogradDevice, RejectsNon3x3) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(1, 10, 10);
  tensor::Tensor flt = tensor::Tensor::filters(1, 1, 5);
  EXPECT_THROW(winograd_conv(dev, img, flt), Error);
}

TEST(WinogradDevice, WorkspaceBytesMatchFormula) {
  Rng rng(9);
  tensor::Tensor img = tensor::Tensor::image(2, 10, 14);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(4, 2, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = winograd_conv(dev, img, flt);
  // Ho=8, Wo=12 -> 4x6=24 tiles; (16*C + 16*F) * T floats.
  EXPECT_EQ(run.workspace_bytes, (16ull * 2 + 16 * 4) * 24 * 4);
}

TEST(WinogradDevice, ArithmeticReductionNearTheory) {
  // The point of Winograd: GEMM-stage multiplications per output = 16*C/4
  // vs direct's 9*C — a 2.25x reduction (transforms excluded).
  Rng rng(11);
  tensor::Tensor img = tensor::Tensor::image(8, 34, 34);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(16, 8, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = winograd_conv(dev, img, flt);
  const double direct_flops = 2.0 * 8 * 16 * 9 * 32 * 32;
  // GEMM flops include tile padding (T rounded up by the GEMM tiling), so
  // allow headroom above the exact 1/2.25 ratio.
  EXPECT_LT(static_cast<double>(run.gemm_flops), direct_flops);
  EXPECT_GT(static_cast<double>(run.gemm_flops), direct_flops / 2.25 * 0.9);
}

}  // namespace
}  // namespace kconv::kernels
