// Randomized shape fuzzing: every convolution algorithm must agree with
// the CPU oracle on arbitrary (legal) shapes, not just the curated sweeps.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/conv_api.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::core {
namespace {

class FuzzConv : public ::testing::TestWithParam<Algo> {};

TEST_P(FuzzConv, RandomShapesMatchReference) {
  const Algo algo = GetParam();
  Rng rng(0xC0FF + static_cast<u64>(algo));
  for (int trial = 0; trial < 12; ++trial) {
    const i64 k = algo == Algo::Winograd
                      ? 3
                      : static_cast<i64>(1 + 2 * rng.below(4));  // 1,3,5,7
    const i64 c = algo == Algo::Special
                      ? 1
                      : static_cast<i64>(1 + rng.below(6));
    const i64 f = static_cast<i64>(1 + rng.below(12));
    const i64 hi = k + static_cast<i64>(rng.below(24));
    const i64 wi = k + static_cast<i64>(rng.below(24));

    tensor::Tensor img = tensor::Tensor::image(c, hi, wi);
    img.fill_random(rng);
    tensor::Tensor flt = tensor::Tensor::filters(f, c, k);
    flt.fill_random(rng);

    sim::Device dev(sim::kepler_k40m());
    ConvOptions opt;
    opt.algo = algo;
    const auto res = conv2d(dev, img, flt, opt);
    ASSERT_TRUE(res.output_valid)
        << algo_name(algo) << " K=" << k << " C=" << c << " F=" << f << " "
        << hi << "x" << wi;
    const auto ref = tensor::conv2d_reference(img, flt);
    const double tol = algo == Algo::Fft ? 3e-3 : 5e-4;  // fp32 transforms
    ASSERT_TRUE(tensor::allclose(res.output, ref, tol, tol))
        << algo_name(algo) << " K=" << k << " C=" << c << " F=" << f << " "
        << hi << "x" << wi << " maxabs "
        << tensor::diff(res.output, ref).max_abs;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, FuzzConv,
                         ::testing::Values(Algo::Special, Algo::General,
                                           Algo::ImplicitGemm,
                                           Algo::Im2colGemm,
                                           Algo::NaiveDirect, Algo::Winograd,
                                           Algo::Fft),
                         [](const auto& info) {
                           std::string s = algo_name(info.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace kconv::core
