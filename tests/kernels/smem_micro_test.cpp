// The Fig. 1 microbenchmark as assertions: matched access patterns move n
// times the SM bytes per request cycle of conventional ones.
#include "src/kernels/smem_microbench.hpp"

#include <gtest/gtest.h>

#include "src/sim/sim.hpp"

namespace kconv::kernels {
namespace {

double bytes_per_cycle(const sim::Arch& arch, DType dt, i64 vw,
                       i64 stride = 1) {
  sim::Device dev(arch);
  SmemMicrobenchConfig cfg;
  cfg.dtype = dt;
  cfg.vec_width = vw;
  cfg.stride_units = stride;
  return smem_microbench(dev, cfg).bytes_per_request_cycle;
}

TEST(SmemMicro, KeplerFloatConventionalIsHalfBandwidth) {
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::F32, 1), 128.0);
}

TEST(SmemMicro, KeplerFloatMatchedIsFullBandwidth) {
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::F32, 0), 256.0);
}

TEST(SmemMicro, KeplerShortDtypesScaleWithWidth) {
  // f16: 64 -> 256 (4x); i8: 32 -> 256 (8x) — Eq. 1 exactly.
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::F16, 1), 64.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::F16, 0), 256.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::I8, 1), 32.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::kepler_k40m(), DType::I8, 0), 256.0);
}

TEST(SmemMicro, MaxwellFloatAlreadyMatched) {
  // 4-byte banks: conventional float IS the matched pattern.
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::F32, 1), 128.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::F32, 0), 128.0);
}

TEST(SmemMicro, MaxwellShortDtypesStillMismatch) {
  // The paper's conclusion: on 4-byte banks, fp16 wastes 2x, int8 4x.
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::F16, 1), 64.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::F16, 0), 128.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::I8, 1), 32.0);
  EXPECT_DOUBLE_EQ(bytes_per_cycle(sim::maxwell_like(), DType::I8, 0), 128.0);
}

TEST(SmemMicro, BankConflictStrideCollapsesBandwidth) {
  // Stride of one full bank row: every lane in the same bank.
  const double conflicted =
      bytes_per_cycle(sim::kepler_k40m(), DType::F32, 2, 32);
  EXPECT_LT(conflicted, 16.0);
}

TEST(SmemMicro, ReplayFactorDetectsConflicts) {
  sim::Device dev(sim::kepler_k40m());
  SmemMicrobenchConfig cfg;
  cfg.vec_width = 2;
  cfg.stride_units = 32;
  const auto r = smem_microbench(dev, cfg);
  EXPECT_GT(r.replay_factor, 16.0);

  cfg.stride_units = 1;
  const auto clean = smem_microbench(dev, cfg);
  EXPECT_DOUBLE_EQ(clean.replay_factor, 1.0);
}

TEST(SmemMicro, RejectsBadConfig) {
  sim::Device dev(sim::kepler_k40m());
  SmemMicrobenchConfig cfg;
  cfg.threads = 8;  // below a warp
  EXPECT_THROW(smem_microbench(dev, cfg), Error);
}

}  // namespace
}  // namespace kconv::kernels
