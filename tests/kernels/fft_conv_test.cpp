#include "src/kernels/fft_conv.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"
#include "src/tensor/fft_ref.hpp"

namespace kconv::kernels {
namespace {

// --- Host FFT machinery -------------------------------------------------------

TEST(FftRef, ForwardInverseRoundTrip) {
  Rng rng(3);
  std::vector<tensor::cfloat> data(64);
  std::vector<tensor::cfloat> orig(64);
  for (std::size_t i = 0; i < 64; ++i) {
    orig[i] = data[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  tensor::fft1d(data, false);
  tensor::fft1d(data, true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real() / 64.0f, orig[i].real(), 1e-5f);
    EXPECT_NEAR(data[i].imag() / 64.0f, orig[i].imag(), 1e-5f);
  }
}

TEST(FftRef, DeltaTransformsToAllOnes) {
  std::vector<tensor::cfloat> data(16, {0, 0});
  data[0] = {1, 0};
  tensor::fft1d(data, false);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-6f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-6f);
  }
}

TEST(FftRef, ParsevalHolds) {
  Rng rng(5);
  std::vector<tensor::cfloat> data(128);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(v);
  }
  tensor::fft1d(data, false);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-3);
}

TEST(FftRef, RejectsNonPowerOfTwo) {
  std::vector<tensor::cfloat> data(12);
  EXPECT_THROW(tensor::fft1d(data, false), Error);
}

TEST(FftRef, NextPow2) {
  EXPECT_EQ(tensor::next_pow2(1), 1);
  EXPECT_EQ(tensor::next_pow2(2), 2);
  EXPECT_EQ(tensor::next_pow2(3), 4);
  EXPECT_EQ(tensor::next_pow2(17), 32);
}

class FftRefConv
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64, i64>> {};

TEST_P(FftRefConv, MatchesDirectReference) {
  const auto [c, f, k, hi, wi] = GetParam();
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(c, hi, wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, k);
  flt.fill_random(rng);
  EXPECT_TRUE(tensor::allclose(tensor::fft_conv_reference(img, flt),
                               tensor::conv2d_reference(img, flt), 2e-3,
                               2e-3));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FftRefConv,
    ::testing::Values(std::make_tuple(2, 3, 3, 10, 14),
                      std::make_tuple(1, 1, 5, 9, 9),
                      std::make_tuple(3, 2, 7, 16, 11),
                      std::make_tuple(2, 2, 1, 8, 8)));

// --- Device pipeline ----------------------------------------------------------

class FftDeviceConv
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64, i64>> {};

TEST_P(FftDeviceConv, MatchesDirectReference) {
  const auto [c, f, k, hi, wi] = GetParam();
  Rng rng(9);
  tensor::Tensor img = tensor::Tensor::image(c, hi, wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, c, k);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = fft_conv(dev, img, flt);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output,
                               tensor::conv2d_reference(img, flt), 2e-3,
                               2e-3))
      << tensor::diff(run.output, tensor::conv2d_reference(img, flt)).max_abs;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FftDeviceConv,
    ::testing::Values(std::make_tuple(2, 3, 3, 10, 14),
                      std::make_tuple(1, 2, 5, 9, 9),
                      std::make_tuple(3, 2, 7, 16, 11),
                      std::make_tuple(2, 2, 1, 8, 8),
                      std::make_tuple(4, 4, 3, 32, 32),
                      std::make_tuple(1, 1, 7, 7, 7)));

TEST(FftDevice, WorkspaceIsThePaddingCost) {
  // "The filters need to be padded to the same size as the input image":
  // F*C filter planes of P*Q complex dominate the workspace.
  Rng rng(11);
  tensor::Tensor img = tensor::Tensor::image(4, 30, 30);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(8, 4, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = fft_conv(dev, img, flt);
  // P = Q = 32; planes: C=4 + F*C=32 + F=8 = 44 complex planes, double
  // buffered: 2 * 44 * 32*32 * 8 bytes.
  EXPECT_EQ(run.workspace_bytes, 2ull * 44 * 32 * 32 * 8);
  // The filter padding alone inflates 8*4*9 filter floats (1152 B) into a
  // ~700 KiB workspace — a >600x blowup. That's the paper's objection.
  EXPECT_GT(static_cast<double>(run.workspace_bytes),
            600.0 * 8 * 4 * 9 * 4);
}

TEST(FftDevice, PipelineDepthIsThirteenLaunches) {
  Rng rng(13);
  tensor::Tensor img = tensor::Tensor::image(1, 8, 8);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(1, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = fft_conv(dev, img, flt);
  EXPECT_EQ(run.launches, 13);
  EXPECT_GT(run.pad_seconds, 0.0);
  EXPECT_GT(run.image_fft_seconds, 0.0);
  EXPECT_GE(run.filter_fft_seconds, run.image_fft_seconds);
  EXPECT_GT(run.mac_seconds, 0.0);
  EXPECT_GT(run.inverse_seconds, 0.0);
}

TEST(FftDevice, ChannelMismatchThrows) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(2, 8, 8);
  tensor::Tensor flt = tensor::Tensor::filters(1, 3, 3);
  EXPECT_THROW(fft_conv(dev, img, flt), Error);
}

}  // namespace
}  // namespace kconv::kernels
