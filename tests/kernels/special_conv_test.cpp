// Functional and traffic tests for the paper's special-case kernel
// (Algorithm 1).
#include "src/kernels/special_conv.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"
#include "src/tensor/conv_ref.hpp"

namespace kconv::kernels {
namespace {

struct Shape {
  i64 k, f, hi, wi, block_w, block_h, vec;
};

class SpecialConvCorrectness : public ::testing::TestWithParam<Shape> {};

TEST_P(SpecialConvCorrectness, MatchesReference) {
  const Shape s = GetParam();
  Rng rng(101);
  tensor::Tensor img = tensor::Tensor::image(1, s.hi, s.wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(s.f, 1, s.k);
  flt.fill_random(rng);
  const tensor::Tensor ref = tensor::conv2d_reference(img, flt);

  sim::Device dev(sim::kepler_k40m());
  SpecialConvConfig cfg;
  cfg.block_w = s.block_w;
  cfg.block_h = s.block_h;
  cfg.vec_width = s.vec;
  const auto run = special_conv(dev, img, flt, cfg);
  ASSERT_TRUE(run.output_valid);
  EXPECT_TRUE(tensor::allclose(run.output, ref))
      << tensor::diff(run.output, ref).max_abs;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpecialConvCorrectness,
    ::testing::Values(
        // Every filter size the paper evaluates (1, 3, 5) plus 7.
        Shape{1, 4, 12, 16, 8, 4, 0}, Shape{3, 4, 16, 16, 8, 4, 0},
        Shape{5, 3, 18, 20, 8, 4, 0}, Shape{7, 2, 20, 24, 8, 4, 0},
        // Sizes that do not divide the tile (edge predication).
        Shape{3, 2, 17, 19, 8, 4, 0}, Shape{5, 2, 23, 31, 16, 8, 0},
        Shape{3, 1, 9, 9, 16, 8, 0},
        // Unmatched (n=1) and wide (n=4) variants.
        Shape{3, 4, 16, 16, 8, 4, 1}, Shape{5, 3, 18, 20, 8, 4, 1},
        Shape{3, 4, 20, 20, 8, 4, 4}, Shape{7, 2, 21, 33, 12, 4, 1},
        // Single output row/column extremes.
        Shape{3, 2, 3, 40, 16, 4, 0}, Shape{3, 2, 40, 3, 4, 4, 1},
        // Paper's default tile on a small image.
        Shape{3, 4, 24, 30, 256, 8, 0}));

TEST(SpecialConv, RejectsMultiChannelInput) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(2, 8, 8);
  tensor::Tensor flt = tensor::Tensor::filters(1, 2, 3);
  EXPECT_THROW(special_conv(dev, img, flt), Error);
}

TEST(SpecialConv, RejectsOversizedFilter) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(1, 20, 20);
  tensor::Tensor flt = tensor::Tensor::filters(1, 1, 9);
  EXPECT_THROW(special_conv(dev, img, flt), Error);
}

TEST(SpecialConv, RejectsBadTileWidth) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(1, 20, 20);
  tensor::Tensor flt = tensor::Tensor::filters(1, 1, 3);
  SpecialConvConfig cfg;
  cfg.block_w = 6;  // not a multiple of 4
  EXPECT_THROW(special_conv(dev, img, flt, cfg), Error);
}

TEST(SpecialConv, RejectsFiltersBeyondConstantMemory) {
  sim::Device dev(sim::kepler_k40m());
  tensor::Tensor img = tensor::Tensor::image(1, 20, 20);
  // 400 filters x 7 x 7 x 4B = 78 KiB > 64 KiB constant capacity.
  tensor::Tensor flt = tensor::Tensor::filters(400, 1, 7);
  EXPECT_THROW(special_conv(dev, img, flt), Error);
}

TEST(SpecialConv, MatchedWidthFollowsBankWidth) {
  // vec_width = 0 resolves to 2 on Kepler (8B banks) and 1 on Fermi-like
  // 4B banks: observable through the thread count = W / n.
  tensor::Tensor img = tensor::Tensor::image(1, 16, 32);
  tensor::Tensor flt = tensor::Tensor::filters(1, 1, 3);
  Rng rng(1);
  img.fill_random(rng);
  flt.fill_random(rng);

  sim::Device kepler(sim::kepler_k40m());
  const auto k = special_conv(kepler, img, flt, {.block_w = 16, .block_h = 4});
  sim::Device fourb(sim::kepler_k40m_4byte_banks());
  const auto f = special_conv(fourb, img, flt, {.block_w = 16, .block_h = 4});
  // Same work, but the matched Kepler kernel runs W/2 threads; per-block
  // smem instructions halve while moved bytes stay equal.
  EXPECT_LT(k.launch.stats.smem_instrs, f.launch.stats.smem_instrs);
  EXPECT_TRUE(tensor::allclose(k.output, f.output));
}

// --- Traffic invariants from §3.2 -------------------------------------------

TEST(SpecialConv, GlobalReadsAreWithinEpsilonOfLowerBound) {
  // Interior blocks read each needed pixel exactly once: total GM read
  // traffic ~= blocks * (W+K-1)*(H+K-1) pixels. We check the whole-image
  // useful-byte count against that closed form.
  Rng rng(7);
  const i64 hi = 64, wi = 64, k = 3, f = 2;
  tensor::Tensor img = tensor::Tensor::image(1, hi, wi);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(f, 1, k);
  flt.fill_random(rng);

  sim::Device dev(sim::kepler_k40m());
  SpecialConvConfig cfg;
  cfg.block_w = 16;
  cfg.block_h = 8;
  const auto run = special_conv(dev, img, flt, cfg);

  // Loads: every block reads at most (W+K-1)*(H+K-1) pixels; stores write
  // F*Ho*Wo outputs exactly once.
  const double blocks = ceil_div(wi - k + 1, cfg.block_w) *
                        ceil_div(hi - k + 1, cfg.block_h);
  const double max_load_px =
      blocks * (cfg.block_w + k - 1) * (cfg.block_h + k - 1);
  const double store_px = double(f) * (hi - k + 1) * (wi - k + 1);
  const double measured_bytes =
      static_cast<double>(run.launch.stats.gm_bytes_useful);
  EXPECT_LE(measured_bytes, (max_load_px + store_px) * 4.0 * 1.01);
  // And not dramatically less either (the kernel really does the work).
  EXPECT_GE(measured_bytes, store_px * 4.0);
}

TEST(SpecialConv, ConstantReadsFullyBroadcast) {
  // §3.3: all threads of a warp read the same filter tap at the same time,
  // so every constant instruction is a single broadcast request.
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 32, 32);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(3, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = special_conv(dev, img, flt, {.block_w = 16, .block_h = 4});
  EXPECT_EQ(run.launch.stats.const_requests, run.launch.stats.const_instrs);
}

TEST(SpecialConv, SharedAccessesConflictFree) {
  // §3.3: contiguous threads read contiguous n-pixel units -> no replays
  // beyond vector splitting.
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 40, 40);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(2, 1, 5);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = special_conv(dev, img, flt, {.block_w = 32, .block_h = 8});
  EXPECT_LE(run.launch.stats.smem_replay_factor(), 1.10);
}

TEST(SpecialConv, MatchedNeedsFewerSmemRequestCycles) {
  // The §2.1 claim end-to-end: for the same problem, the matched (float2)
  // kernel spends substantially fewer SM request cycles than the unmatched
  // (float) kernel — half the threads each moving twice the data, plus
  // fewer instructions from the rounded register window.
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 64, 64);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(2, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  SpecialConvConfig matched{.block_w = 64, .block_h = 8, .vec_width = 2};
  SpecialConvConfig unmatched{.block_w = 64, .block_h = 8, .vec_width = 1};
  const auto m = special_conv(dev, img, flt, matched);
  const auto u = special_conv(dev, img, flt, unmatched);
  EXPECT_GT(static_cast<double>(u.launch.stats.smem_request_cycles),
            1.3 * static_cast<double>(m.launch.stats.smem_request_cycles));
  // Both move a comparable useful payload (the scalar variant reads
  // slightly more due to the rounded vector window on the matched side).
  EXPECT_NEAR(static_cast<double>(u.launch.stats.smem_bytes),
              static_cast<double>(m.launch.stats.smem_bytes),
              0.40 * static_cast<double>(m.launch.stats.smem_bytes));
}

TEST(SpecialConv, PrefetchDecouplesStagingFromLoads) {
  // With prefetching, only the initial fill is a dependent GM->SM phase.
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 48, 48);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(2, 1, 3);
  flt.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = special_conv(dev, img, flt, {.block_w = 16, .block_h = 8});
  EXPECT_EQ(run.launch.stats.gm_dep_phases, run.launch.stats.blocks_executed);
}

TEST(SpecialConv, DeterministicStats) {
  Rng rng(7);
  tensor::Tensor img = tensor::Tensor::image(1, 32, 32);
  img.fill_random(rng);
  tensor::Tensor flt = tensor::Tensor::filters(2, 1, 3);
  flt.fill_random(rng);
  auto once = [&] {
    sim::Device dev(sim::kepler_k40m());
    return special_conv(dev, img, flt, {.block_w = 16, .block_h = 4});
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.launch.stats.gm_sectors, b.launch.stats.gm_sectors);
  EXPECT_EQ(a.launch.stats.smem_request_cycles,
            b.launch.stats.smem_request_cycles);
  EXPECT_TRUE(a.output == b.output);
}

}  // namespace
}  // namespace kconv::kernels
