#include "src/kernels/layer_ops.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/sim.hpp"
#include "src/tensor/compare.hpp"

namespace kconv::kernels {
namespace {

TEST(MaxPool, MatchesScalarReference) {
  Rng rng(3);
  tensor::Tensor img = tensor::Tensor::image(3, 10, 14);
  img.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = max_pool_2x2(dev, img);
  ASSERT_TRUE(run.output_valid);
  ASSERT_EQ(run.output.h(), 5);
  ASSERT_EQ(run.output.w(), 7);
  for (i64 c = 0; c < 3; ++c) {
    for (i64 y = 0; y < 5; ++y) {
      for (i64 x = 0; x < 7; ++x) {
        const float expect = std::max(
            std::max(img.at(0, c, 2 * y, 2 * x), img.at(0, c, 2 * y, 2 * x + 1)),
            std::max(img.at(0, c, 2 * y + 1, 2 * x),
                     img.at(0, c, 2 * y + 1, 2 * x + 1)));
        EXPECT_EQ(run.output.at(0, c, y, x), expect);
      }
    }
  }
}

TEST(MaxPool, OddTailTruncates) {
  tensor::Tensor img = tensor::Tensor::image(1, 5, 7);
  sim::Device dev(sim::kepler_k40m());
  const auto run = max_pool_2x2(dev, img);
  EXPECT_EQ(run.output.h(), 2);
  EXPECT_EQ(run.output.w(), 3);
}

TEST(MaxPool, RejectsTinyInput) {
  tensor::Tensor img = tensor::Tensor::image(1, 1, 8);
  sim::Device dev(sim::kepler_k40m());
  EXPECT_THROW(max_pool_2x2(dev, img), Error);
}

TEST(BiasRelu, AppliesBiasThenClamps) {
  tensor::Tensor img = tensor::Tensor::image(2, 3, 4);
  for (i64 y = 0; y < 3; ++y)
    for (i64 x = 0; x < 4; ++x) {
      img.at(0, 0, y, x) = -1.0f;
      img.at(0, 1, y, x) = 0.25f;
    }
  const std::vector<float> bias = {0.4f, 0.5f};
  sim::Device dev(sim::kepler_k40m());
  const auto run = bias_relu(dev, img, bias);
  ASSERT_TRUE(run.output_valid);
  EXPECT_EQ(run.output.at(0, 0, 1, 1), 0.0f);    // -1 + 0.4 clamps to 0
  EXPECT_EQ(run.output.at(0, 1, 1, 1), 0.75f);   // 0.25 + 0.5
}

TEST(BiasRelu, BiasSizeMismatchThrows) {
  tensor::Tensor img = tensor::Tensor::image(2, 3, 4);
  const std::vector<float> bias = {1.0f};
  sim::Device dev(sim::kepler_k40m());
  EXPECT_THROW(bias_relu(dev, img, bias), Error);
}

// --- batched (N > 1) operation ----------------------------------------------

tensor::Tensor slice_image(const tensor::Tensor& batch, i64 n) {
  tensor::Tensor img(1, batch.c(), batch.h(), batch.w());
  for (i64 c = 0; c < batch.c(); ++c)
    for (i64 y = 0; y < batch.h(); ++y)
      for (i64 x = 0; x < batch.w(); ++x)
        img.at(0, c, y, x) = batch.at(n, c, y, x);
  return img;
}

TEST(MaxPool, BatchedMatchesPerImageRuns) {
  Rng rng(11);
  tensor::Tensor batch(3, 2, 6, 8);
  batch.fill_random(rng);
  sim::Device dev(sim::kepler_k40m());
  const auto run = max_pool_2x2(dev, batch);
  ASSERT_TRUE(run.output_valid);
  ASSERT_EQ(run.output.n(), 3);
  ASSERT_EQ(run.output.c(), 2);
  for (i64 n = 0; n < 3; ++n) {
    sim::Device solo(sim::kepler_k40m());
    const auto one = max_pool_2x2(solo, slice_image(batch, n));
    ASSERT_TRUE(one.output_valid);
    for (i64 c = 0; c < 2; ++c)
      for (i64 y = 0; y < 3; ++y)
        for (i64 x = 0; x < 4; ++x)
          EXPECT_EQ(run.output.at(n, c, y, x), one.output.at(0, c, y, x));
  }
}

TEST(BiasRelu, BatchedMatchesPerImageRuns) {
  Rng rng(13);
  tensor::Tensor batch(4, 3, 5, 6);
  batch.fill_random(rng, -1.0f, 1.0f);
  const std::vector<float> bias = {0.2f, -0.1f, 0.05f};
  sim::Device dev(sim::kepler_k40m());
  const auto run = bias_relu(dev, batch, bias);
  ASSERT_TRUE(run.output_valid);
  ASSERT_EQ(run.output.n(), 4);
  for (i64 n = 0; n < 4; ++n) {
    sim::Device solo(sim::kepler_k40m());
    const auto one = bias_relu(solo, slice_image(batch, n), bias);
    ASSERT_TRUE(one.output_valid);
    for (i64 c = 0; c < 3; ++c)
      for (i64 y = 0; y < 5; ++y)
        for (i64 x = 0; x < 6; ++x)
          EXPECT_EQ(run.output.at(n, c, y, x), one.output.at(0, c, y, x));
  }
}

TEST(BiasRelu, BatchBiasIsPerChannelNotPerPlane) {
  tensor::Tensor batch(3, 2, 4, 4);
  sim::Device dev(sim::kepler_k40m());
  // N*C = 6 entries is the wrong contract; the bias indexes channels.
  const std::vector<float> per_plane(6, 0.1f);
  EXPECT_THROW(bias_relu(dev, batch, per_plane), Error);
  const std::vector<float> per_channel(2, 0.1f);
  EXPECT_NO_THROW(bias_relu(dev, batch, per_channel));
}

TEST(BiasRelu, CoalescedAndBroadcastTraffic) {
  // Per warp: one uniform bias sector plus coalesced row accesses.
  Rng rng(5);
  tensor::Tensor img = tensor::Tensor::image(1, 4, 128);
  img.fill_random(rng);
  const std::vector<float> bias = {0.1f};
  sim::Device dev(sim::kepler_k40m());
  const auto run = bias_relu(dev, img, bias);
  // 4 rows x 128 cols: loads 512 px + 16 bias reads (1/warp), stores 512.
  // Useful bytes ~ (512*2 + 16) * 4; overfetch should be tiny.
  EXPECT_LT(run.launch.stats.gm_overfetch(dev.arch().gm_sector_bytes), 1.2);
}

}  // namespace
}  // namespace kconv::kernels
